file(REMOVE_RECURSE
  "CMakeFiles/fig06_vp_speedup.dir/bench/fig06_vp_speedup.cc.o"
  "CMakeFiles/fig06_vp_speedup.dir/bench/fig06_vp_speedup.cc.o.d"
  "fig06_vp_speedup"
  "fig06_vp_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_vp_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
