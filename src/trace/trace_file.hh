/**
 * @file
 * eole-trace-v1: the on-disk FrozenTrace format.
 *
 * A trace file is a byte-stable serialization of one FrozenTrace —
 * fixed header, architectural register seed block, packed TraceUop
 * array, SHA-256 footer — designed so the reader can hand the µ-op
 * array to the replay path zero-copy: the array on disk uses the
 * in-memory TraceUop layout (padding bytes written as zero), the file
 * is mmap'd read-only, and FrozenTrace::uops points straight into the
 * mapping. A billion-µ-op trace therefore costs address space and
 * evictable page cache, not resident heap, and is exempt from the
 * trace-cache RAM budget (sim/trace_cache.hh).
 *
 * Layout (all integers little-endian; offsets fixed):
 *
 *   0    char[8]  magic "EOLETRC1"
 *   8    u32      header bytes (== traceFileHeaderBytes)
 *   12   u32      format version (== 1)
 *   16   u32      record bytes (== sizeof(TraceUop))
 *   20   u32      flags: bit0 complete, bit1 isFp
 *   24   u64      µ-op count
 *   32   u64      TraceUop layout hash (offset/size of every field)
 *   40   u32      endianness tag 0x01020304 as written
 *   44   u32      reserved (0)
 *   48   char[64] workload name, NUL-padded
 *   112  char[16] source kind ("generated", "rv64i"), NUL-padded
 *   128  u64[32]  initIntRegs
 *   384  u64[32]  initFpRegs
 *   640  µ-op array: count * sizeof(TraceUop)
 *   then char[8]  footer magic "EOLETRCF"
 *        u64      µ-op count echo
 *        char[64] SHA-256 (lowercase hex) of every byte before the
 *                 footer
 *
 * Byte stability: the writer serializes each TraceUop field-by-field
 * at its offsetof() position into a zeroed buffer — copying whole
 * structs would copy indeterminate padding and break `cmp`-equality
 * of independently produced files. The layout hash rejects files
 * written by a binary whose TraceUop layout differs (field added,
 * reordered, ABI drift) before any µ-op is interpreted.
 *
 * Readers report structural problems with byte offsets (the
 * ckpt/shard reader convention); the CLI turns them into exit-2
 * diagnostics.
 */

#ifndef EOLE_TRACE_TRACE_FILE_HH
#define EOLE_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "isa/frozen_trace.hh"

namespace eole {

constexpr char traceFileMagic[8] =
    {'E', 'O', 'L', 'E', 'T', 'R', 'C', '1'};
constexpr char traceFileFooterMagic[8] =
    {'E', 'O', 'L', 'E', 'T', 'R', 'C', 'F'};
constexpr std::uint32_t traceFileVersion = 1;
constexpr std::size_t traceFileHeaderBytes = 640;
constexpr std::size_t traceFileFooterBytes = 8 + 8 + 64;
constexpr std::size_t traceFileNameBytes = 64;
constexpr std::size_t traceFileSourceBytes = 16;

/** Order-sensitive hash over (offsetof, sizeof) of every TraceUop
 *  field plus the struct size — the layout fingerprint stamped into
 *  and checked against every file. */
std::uint64_t traceUopLayoutHash();

/**
 * Write @p trace to @p path as eole-trace-v1.
 *
 * @param source provenance tag for the header ("generated", "rv64i")
 * @param err diagnostic on failure
 * @return false (with @p err set) on I/O failure or an over-long
 *         workload name; the partial file is removed.
 */
bool writeTraceFile(const FrozenTrace &trace, const std::string &path,
                    const std::string &source, std::string *err);

/**
 * Map @p path and return a FrozenTrace whose µ-op view aliases the
 * read-only mapping (mmapBacked, residentBytes() == 0). The whole
 * file is validated up front — structure, layout hash, and the
 * SHA-256 footer — so a load that succeeds can never fault on a
 * truncated tail mid-replay. Returns null with a byte-offset
 * diagnostic in @p err on any validation failure.
 */
std::shared_ptr<const FrozenTrace>
loadTraceFile(const std::string &path, std::string *err);

/** Header fields `eole trace info` prints without touching the µ-op
 *  array (the checksum is still verified — info is the integrity
 *  check). */
struct TraceFileInfo
{
    std::string name;
    std::string source;
    std::uint64_t uopCount = 0;
    bool complete = false;
    bool isFp = false;
    std::uint64_t fileBytes = 0;
};

/** Validate @p path like loadTraceFile and fill @p out. */
bool readTraceFileInfo(const std::string &path, TraceFileInfo *out,
                       std::string *err);

} // namespace eole

#endif // EOLE_TRACE_TRACE_FILE_HH
