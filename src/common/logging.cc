#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace eole {

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

namespace {

LogLevel
levelFromEnv()
{
    const char *v = std::getenv("EOLE_LOG");
    if (!v)
        return LogLevel::Normal;
    if (std::strcmp(v, "quiet") == 0)
        return LogLevel::Quiet;
    if (std::strcmp(v, "debug") == 0)
        return LogLevel::Debug;
    return LogLevel::Normal;
}

std::atomic<int> &
levelSlot()
{
    static std::atomic<int> slot{static_cast<int>(levelFromEnv())};
    return slot;
}

} // namespace

LogLevel
logLevel()
{
    return static_cast<LogLevel>(levelSlot().load(std::memory_order_relaxed));
}

void
setLogLevel(LogLevel level)
{
    levelSlot().store(static_cast<int>(level), std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Normal)
        std::fprintf(stderr, "%s\n", msg.c_str());
}

void
noticeImpl(const std::string &msg)
{
    std::fprintf(stderr, "%s\n", msg.c_str());
}

void
verboseImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace eole
