#include "isa/kernel_vm.hh"

#include <cstring>

#include "isa/functional.hh"

namespace eole {

KernelVM::KernelVM(const Program &program, std::size_t mem_bytes)
    : prog(program), mem(mem_bytes, 0)
{
    fatal_if(prog.code.empty(), "KernelVM: empty program");
}

RegVal
KernelVM::readMem(Addr addr, unsigned size) const
{
    panic_if(addr + size > mem.size(),
             "VM load out of bounds: addr %#lx size %u (mem %zu)",
             static_cast<unsigned long>(addr), size, mem.size());
    RegVal v = 0;
    std::memcpy(&v, mem.data() + addr, size);
    return v;
}

void
KernelVM::writeMem(Addr addr, unsigned size, RegVal value)
{
    panic_if(addr + size > mem.size(),
             "VM store out of bounds: addr %#lx size %u (mem %zu)",
             static_cast<unsigned long>(addr), size, mem.size());
    std::memcpy(mem.data() + addr, &value, size);
}

bool
KernelVM::step(TraceUop &out)
{
    if (isHalted)
        return false;

    panic_if(pc >= prog.code.size(), "VM pc %zu past end of program %zu",
             pc, prog.code.size());

    const StaticInst &si = prog.code[pc];

    out = TraceUop{};
    out.pc = Program::pcOf(pc);
    out.sidx = static_cast<std::uint32_t>(pc);
    out.opc = si.opc;
    out.dst = si.dst;
    out.src1 = si.src1;
    out.src2 = si.src2;
    out.imm = si.imm;
    out.memSize = si.memSize;
    out.dstClass = si.dstRegClass();
    out.srcClass[0] = si.srcRegClass(0);
    out.srcClass[1] = si.srcRegClass(1);

    auto read_src = [&](RegIndex r, RegClass cls) -> RegVal {
        if (r == invalidReg)
            return 0;
        return cls == RegClass::Fp ? readFpReg(r) : readIntReg(r);
    };

    const RegVal a = read_src(si.src1, si.srcRegClass(0));
    const RegVal b = read_src(si.src2, si.srcRegClass(1));
    out.srcVals[0] = a;
    out.srcVals[1] = b;

    std::size_t next_pc = pc + 1;

    switch (opClassOf(si.opc)) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::IntDiv:
      case OpClass::FpAlu:
      case OpClass::FpMul:
      case OpClass::FpDiv:
        out.result = execAlu(si.opc, a, b, si.imm);
        break;

      case OpClass::MemRead:
        out.effAddr = effectiveAddr(a, si.imm);
        out.result = readMem(out.effAddr, si.memSize);
        break;

      case OpClass::MemWrite:
        out.effAddr = effectiveAddr(a, si.imm);
        out.result = b;
        writeMem(out.effAddr, si.memSize, b);
        break;

      case OpClass::Branch:
        switch (si.opc) {
          case Opcode::Jmp:
            out.taken = true;
            next_pc = static_cast<std::size_t>(si.target);
            break;
          case Opcode::Jr:
            out.taken = true;
            next_pc = Program::idxOf(a);
            break;
          case Opcode::Call:
            out.taken = true;
            out.result = Program::pcOf(pc + 1);
            next_pc = static_cast<std::size_t>(si.target);
            break;
          case Opcode::Ret:
            out.taken = true;
            next_pc = Program::idxOf(a);
            break;
          default:
            out.taken = evalCondBranch(si.opc, a, b);
            if (out.taken)
                next_pc = static_cast<std::size_t>(si.target);
            break;
        }
        break;

      case OpClass::NoOp:
        if (si.opc == Opcode::Halt) {
            isHalted = true;
            return false;
        }
        break;
    }

    if (si.dst != invalidReg) {
        if (si.dstRegClass() == RegClass::Fp)
            setFpReg(si.dst, out.result);
        else
            setIntReg(si.dst, out.result);
        // Register 0 reads as zero: reflect the architectural result.
        if (si.dstRegClass() == RegClass::Int && si.dst == 0)
            out.result = 0;
    }

    pc = next_pc;
    out.nextPc = Program::pcOf(next_pc);
    ++uopCount;
    return true;
}

std::string
disassemble(const StaticInst &inst)
{
    std::string s = opcodeName(inst.opc);
    if (inst.dst != invalidReg)
        s += csprintf(" d%u", inst.dst);
    if (inst.src1 != invalidReg)
        s += csprintf(" s%u", inst.src1);
    if (inst.src2 != invalidReg)
        s += csprintf(" s%u", inst.src2);
    if (hasImmOperand(inst.opc))
        s += csprintf(" #%lld", static_cast<long long>(inst.imm));
    if (inst.target >= 0)
        s += csprintf(" @%d", inst.target);
    return s;
}

} // namespace eole
