#include "pipeline/pipeline_state.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/pipetrace.hh"
#include "common/profiler.hh"
#include "pipeline/stages/stage.hh"

namespace eole {

PipelineState::PipelineState(const SimConfig &config, const Workload &workload)
    : cfg(config), ts(workload.makeTrace()),
      vp(createValuePredictor(cfg.vp, cfg.seed ^ 0x70)),
      ssets(cfg.ssitLog2Entries, cfg.lfstEntries),
      fus(cfg.numAlu, cfg.numMulDiv, cfg.numFp, cfg.numFpMulDiv,
          cfg.numMemPorts),
      ports(cfg.prfBanks, cfg.eeWritePortsPerBank, cfg.levtReadPortsPerBank),
      frontPipe(cfg.frontEndCycles, cfg.fetchWidth,
                static_cast<size_t>(cfg.frontEndCycles) * cfg.fetchWidth),
      rob(cfg.robEntries), lq(cfg.lqEntries), sq(cfg.sqEntries)
{
    fatal_if(cfg.levtReadPortsPerBank == 1,
             "LE/VT needs >= 2 read ports per bank (a late-executed µ-op "
             "may read two operands from one bank)");
    fatal_if(cfg.prfBanks > 64, "at most 64 PRF banks supported");

    // The branch unit owns the global history; VTAGE folds ride along.
    std::vector<std::pair<int, int>> extra;
    if (vp)
        extra = vp->foldSpecs();
    bu = std::make_unique<BranchUnit>(cfg.bp, extra, cfg.seed ^ 0xb0);
    if (vp)
        vp->bindHistory(bu->history(), bu->extraFoldBase());

    mem = std::make_unique<MemHierarchy>(cfg.mem);

    prf[0] = std::make_unique<PhysRegFile>(cfg.physIntRegs, cfg.prfBanks);
    prf[1] = std::make_unique<PhysRegFile>(cfg.physFpRegs, cfg.prfBanks);
    rmap[0] = std::make_unique<RenameMap>(numArchIntRegs);
    rmap[1] = std::make_unique<RenameMap>(numArchFpRegs);

    // Initial mapping: arch reg i -> phys reg i, holding the VM's
    // post-init architectural values.
    prf[0]->initFreeLists(numArchIntRegs);
    prf[1]->initFreeLists(numArchFpRegs);
    for (int r = 0; r < numArchIntRegs; ++r) {
        rmap[0]->rename(static_cast<RegIndex>(r), static_cast<RegIndex>(r));
        prf[0]->write(static_cast<RegIndex>(r),
                      ts.initialIntReg(static_cast<RegIndex>(r)), 0);
    }
    for (int r = 0; r < numArchFpRegs; ++r) {
        rmap[1]->rename(static_cast<RegIndex>(r), static_cast<RegIndex>(r));
        prf[1]->write(static_cast<RegIndex>(r),
                      ts.initialFpReg(static_cast<RegIndex>(r)), 0);
    }
}

PipelineState::~PipelineState() = default;

void
PipelineState::setSquashOrder(std::vector<Stage *> order)
{
    squashOrder = std::move(order);
}

void
PipelineState::beginCycle()
{
    ports.newCycle();
}

void
PipelineState::endCycle()
{
    ++now;
    ++cycles;
}

int
PipelineState::bankOfReg(RegClass cls, RegIndex phys) const
{
    return prf[int(cls)]->bankOf(phys);
}

RegVal
PipelineState::readOperand(const DynInst &di, int idx) const
{
    const RegIndex src = idx == 0 ? di.uop().src1 : di.uop().src2;
    if (src == invalidReg)
        return 0;
    return prf[int(di.uop().srcClass[idx])]->read(di.physSrc[idx]);
}

bool
PipelineState::operandsReady(const DynInst &di) const
{
    for (int i = 0; i < 2; ++i) {
        const RegIndex src = i == 0 ? di.uop().src1 : di.uop().src2;
        if (src == invalidReg)
            continue;
        if (!prf[int(di.uop().srcClass[i])]->isReady(di.physSrc[i], now))
            return false;
    }
    return true;
}

bool
PipelineState::operandsReadyCaching(DynInst &di) const
{
    if (di.opsReady)
        return true;
    if (di.srcReadyAt != invalidCycle) {
        // Both producers scheduled on an earlier poll: one compare.
        if (now < di.srcReadyAt)
            return false;
        di.opsReady = true;
        return true;
    }
    // Equivalent to operandsReady: all sources ready iff the max of
    // their readyAt cycles is <= now (an unscheduled producer has
    // readyAt == invalidCycle, which also dominates the max and
    // correctly blocks caching).
    Cycle latest = 0;
    for (int i = 0; i < 2; ++i) {
        const RegIndex src = i == 0 ? di.uop().src1 : di.uop().src2;
        if (src == invalidReg)
            continue;
        const Cycle r =
            prf[int(di.uop().srcClass[i])]->readyCycle(di.physSrc[i]);
        if (r > latest)
            latest = r;
    }
    if (latest == invalidCycle)
        return false;
    di.srcReadyAt = latest;
    if (now < latest)
        return false;
    di.opsReady = true;
    return true;
}

void
PipelineState::markSquashed(const DynInstPtr &di)
{
    di->squashed = true;
    if (tracer && tracer->wants(di->seq))
        tracer->squash(now, di->seq);
    if (di->vpLookupValid && vp) {
        prof::ScopedTimer vp_timer(prof::ModelVpred);
        vp->squash(di->uop().pc, di->vp);
    }
    if (di->isStore())
        ssets.storeResolved(di->uop().pc, di->seq);
}

void
PipelineState::undoRename(const DynInstPtr &di)
{
    if (di->physDst != invalidReg) {
        mapOf(di->uop().dstClass).restore(di->uop().dst, di->oldPhysDst);
        prfOf(di->uop().dstClass).freeReg(di->physDst);
    }
}

void
PipelineState::squashAfter(SeqNum keep_seq,
                           const BranchUnit::SnapshotPtr &restore,
                           Cycle resume_fetch_at)
{
    // Stage unwind in the registered order. The order matters: rename's
    // output buffer holds the youngest renamed µ-ops and must restore
    // its map entries before the ROB walk does (youngest first), and
    // the IQ prune relies on the ROB walk having marked its squashed
    // entries.
    for (Stage *stage : squashOrder)
        stage->squash(*this, keep_seq, resume_fetch_at);

    ts.rewindTo(keep_seq + 1);
    bu->restoreTo(restore);
}

void
PipelineState::resolveMispredictedBranch(const DynInstPtr &di)
{
    // Nothing younger was fetched (fetch stalls behind a branch known
    // to be mispredicted), so repair state and redirect fetch.
    bu->repairAfterBranch(di->uop(), di->preSnap);
    for (Stage *stage : squashOrder)
        stage->onFetchRedirect(*this);
    if (fetchBlockedOnBranch && fetchBlockedOnBranch->seq == di->seq)
        fetchBlockedOnBranch.reset();
    fetchStallUntil = std::max(fetchStallUntil, now + 1);
    ++branchMispredicts;
    if (di->bp.highConf)
        ++highConfMispredicts;
}

void
PipelineState::addStats(CoreStats &out) const
{
    out.cycles += cycles;
    out.committedUops += committedUops;
    out.branchMispredicts += branchMispredicts;
    out.highConfMispredicts += highConfMispredicts;
}

void
PipelineState::resetStats()
{
    cycles = 0;
    committedUops = 0;
    branchMispredicts = 0;
    highConfMispredicts = 0;
}

} // namespace eole
