/**
 * @file
 * SHA-256 (FIPS 180-4), self-contained and allocation-free.
 *
 * The content-addressed store (sim/store.hh) keys artifacts and
 * checkpoints by the hash of a canonical key document; a keyed lookup
 * must mean "the inputs are byte-identical", so the hash has to be
 * collision-resistant, stable across platforms and independent of any
 * library version — hence a fixed, standardized digest implemented
 * here rather than std::hash (whose value is unspecified and
 * per-process) or a non-cryptographic mix (whose collisions would
 * silently alias two different experiments onto one cached result).
 */

#ifndef EOLE_COMMON_HASH_HH
#define EOLE_COMMON_HASH_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

namespace eole {

class Sha256
{
  public:
    Sha256() { reset(); }

    void
    reset()
    {
        state = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
                 0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};
        total = 0;
        fill = 0;
    }

    void
    update(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        total += len;
        while (len > 0) {
            const std::size_t take =
                std::min<std::size_t>(len, sizeof(block) - fill);
            std::memcpy(block + fill, p, take);
            fill += take;
            p += take;
            len -= take;
            if (fill == sizeof(block)) {
                compress(block);
                fill = 0;
            }
        }
    }

    void update(const std::string &s) { update(s.data(), s.size()); }

    /** Finish and return the digest as 64 lowercase hex characters.
     *  The object must be reset() before further use. */
    std::string
    hexDigest()
    {
        const std::uint64_t bits = total * 8;
        const unsigned char pad = 0x80;
        update(&pad, 1);
        const unsigned char zero = 0;
        while (fill != 56)
            update(&zero, 1);
        unsigned char lenBytes[8];
        for (int i = 0; i < 8; ++i)
            lenBytes[i] = static_cast<unsigned char>(bits >> (56 - 8 * i));
        update(lenBytes, 8);

        std::string out;
        out.reserve(64);
        for (const std::uint32_t w : state) {
            for (int shift = 28; shift >= 0; shift -= 4)
                out += "0123456789abcdef"[(w >> shift) & 0xf];
        }
        return out;
    }

  private:
    static std::uint32_t
    rotr(std::uint32_t x, int n)
    {
        return (x >> n) | (x << (32 - n));
    }

    void
    compress(const unsigned char *chunk)
    {
        static constexpr std::uint32_t k[64] = {
            0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
            0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
            0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
            0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
            0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
            0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
            0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
            0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
            0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
            0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
            0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
            0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
            0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
        };

        std::uint32_t w[64];
        for (int i = 0; i < 16; ++i) {
            w[i] = (std::uint32_t(chunk[4 * i]) << 24)
                | (std::uint32_t(chunk[4 * i + 1]) << 16)
                | (std::uint32_t(chunk[4 * i + 2]) << 8)
                | std::uint32_t(chunk[4 * i + 3]);
        }
        for (int i = 16; i < 64; ++i) {
            const std::uint32_t s0 = rotr(w[i - 15], 7)
                ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
            const std::uint32_t s1 = rotr(w[i - 2], 17)
                ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16] + s0 + w[i - 7] + s1;
        }

        std::uint32_t a = state[0], b = state[1], c = state[2],
                      d = state[3], e = state[4], f = state[5],
                      g = state[6], h = state[7];
        for (int i = 0; i < 64; ++i) {
            const std::uint32_t s1 =
                rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
            const std::uint32_t ch = (e & f) ^ (~e & g);
            const std::uint32_t t1 = h + s1 + ch + k[i] + w[i];
            const std::uint32_t s0 =
                rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
            const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
            const std::uint32_t t2 = s0 + maj;
            h = g;
            g = f;
            f = e;
            e = d + t1;
            d = c;
            c = b;
            b = a;
            a = t1 + t2;
        }
        state[0] += a;
        state[1] += b;
        state[2] += c;
        state[3] += d;
        state[4] += e;
        state[5] += f;
        state[6] += g;
        state[7] += h;
    }

    std::array<std::uint32_t, 8> state;
    unsigned char block[64];
    std::uint64_t total = 0;
    std::size_t fill = 0;
};

/** One-shot convenience: 64-hex-char SHA-256 of @p text. */
inline std::string
sha256Hex(const std::string &text)
{
    Sha256 h;
    h.update(text);
    return h.hexDigest();
}

} // namespace eole

#endif // EOLE_COMMON_HASH_HH
