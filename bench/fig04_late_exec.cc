/**
 * Figure 4: proportion of committed µ-ops that can be late-executed
 * (value-predicted single-cycle ALU µ-ops and very-high-confidence
 * branches); µ-ops that could also be early-executed are not counted,
 * as in the paper.
 *
 * Thin wrapper over the "fig04" plan; see `eole run fig04`.
 */
#include "bench_common.hh"

int
main()
{
    return eole::runFigure("fig04");
}
