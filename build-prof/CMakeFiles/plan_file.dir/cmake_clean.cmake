file(REMOVE_RECURSE
  "CMakeFiles/plan_file.dir/examples/plan_file.cpp.o"
  "CMakeFiles/plan_file.dir/examples/plan_file.cpp.o.d"
  "plan_file"
  "plan_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
