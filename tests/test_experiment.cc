/**
 * @file
 * Tests for the experiment layer: named configurations, the parallel
 * sweep engine (plans, jobs, seeding, trace cache), artifacts and
 * table helpers.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "sim/artifact.hh"
#include "sim/configs.hh"
#include "sim/experiment.hh"
#include "sim/plans.hh"
#include "sim/sweep.hh"
#include "sim/trace_cache.hh"
#include "workloads/workload.hh"

using namespace eole;

namespace {

/** The 2x2 determinism plan, pinned at explicit run lengths. */
ExperimentPlan
tinyPlan()
{
    ExperimentPlan p = plans::get("smoke");
    p.warmup = 2000;
    p.measure = 20000;
    return p;
}

} // namespace

TEST(Configs, NamesFollowThePaper)
{
    EXPECT_EQ(configs::baseline(6, 64).name, "Baseline_6_64");
    EXPECT_EQ(configs::baselineVp(4, 64).name, "Baseline_VP_4_64");
    EXPECT_EQ(configs::eole(6, 48).name, "EOLE_6_48");
    EXPECT_EQ(configs::eoleConstrained(4, 64, 4, 4).name,
              "EOLE_4_64_4ports_4banks");
    EXPECT_EQ(configs::ole(4, 64, 4, 4).name, "OLE_4_64_4ports_4banks");
    EXPECT_EQ(configs::eoe(4, 64, 4, 4).name, "EOE_4_64_4ports_4banks");
}

TEST(Configs, KnobsAreConsistent)
{
    const SimConfig b = configs::baseline(4, 48);
    EXPECT_EQ(b.issueWidth, 4);
    EXPECT_EQ(b.iqEntries, 48);
    EXPECT_EQ(b.numAlu, 4);  // ALU rank tracks issue width (§6.1)
    EXPECT_FALSE(b.vpEnabled());
    EXPECT_EQ(b.preCommitCycles(), 0);

    const SimConfig v = configs::baselineVp(6, 64);
    EXPECT_TRUE(v.vpEnabled());
    EXPECT_EQ(v.preCommitCycles(), 1);  // the LE/VT stage
    EXPECT_FALSE(v.eoleActive());

    const SimConfig e = configs::eoleConstrained(4, 64, 4, 3);
    EXPECT_TRUE(e.earlyExec);
    EXPECT_TRUE(e.lateExec);
    EXPECT_EQ(e.prfBanks, 4);
    EXPECT_EQ(e.levtReadPortsPerBank, 3);
    EXPECT_EQ(e.eeWritePortsPerBank, 2);

    const SimConfig o = configs::ole(4, 64, 4, 4);
    EXPECT_FALSE(o.earlyExec);
    EXPECT_TRUE(o.lateExec);

    const SimConfig eo = configs::eoe(4, 64, 4, 4);
    EXPECT_TRUE(eo.earlyExec);
    EXPECT_FALSE(eo.lateExec);
}

TEST(Experiment, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Experiment, EnvOverridesRunLengths)
{
    setenv("EOLE_WARMUP", "123", 1);
    setenv("EOLE_INSTS", "456", 1);
    EXPECT_EQ(warmupUops(), 123u);
    EXPECT_EQ(measureUops(), 456u);
    unsetenv("EOLE_WARMUP");
    unsetenv("EOLE_INSTS");
}

TEST(Experiment, GridRunsAllPairsInParallel)
{
    setenv("EOLE_WARMUP", "2000", 1);
    setenv("EOLE_INSTS", "20000", 1);

    const std::vector<SimConfig> cfgs = {configs::baseline(6, 64),
                                         configs::baselineVp(6, 64)};
    const std::vector<std::string> names = {"164.gzip", "186.crafty"};
    const auto results = runGrid(cfgs, names);
    ASSERT_EQ(results.size(), 4u);

    for (const auto &cfg : cfgs) {
        for (const auto &wname : names) {
            const RunResult &r = findResult(results, cfg.name, wname);
            EXPECT_GT(r.ipc(), 0.0) << cfg.name << "/" << wname;
            // A commit group may overshoot the target by < commitWidth.
            EXPECT_GE(r.stats.get("committed_uops"), 20000.0);
            EXPECT_LT(r.stats.get("committed_uops"), 20008.0);
        }
    }
    // VP stats only present (non-zero) on the VP configuration.
    EXPECT_EQ(findResult(results, "Baseline_6_64", "164.gzip")
                  .stats.get("vp_used"),
              0.0);

    unsetenv("EOLE_WARMUP");
    unsetenv("EOLE_INSTS");
}

TEST(Experiment, FindResultDiesOnMissing)
{
    std::vector<RunResult> results;
    EXPECT_DEATH((void)findResult(results, "nope", "nothing"),
                 "no result");
}

// ------------------------- Sweep engine ----------------------------------

TEST(Plans, RegistryCoversTheFigures)
{
    const auto &names = plans::allNames();
    ASSERT_GE(names.size(), 13u);
    for (const char *expected :
         {"fig02", "fig04", "fig06", "fig07", "fig08", "fig10", "fig11",
          "fig12", "fig13", "table3", "abl_fpc", "abl_predictors",
          "smoke"}) {
        EXPECT_TRUE(plans::exists(expected)) << expected;
    }

    const ExperimentPlan fig12 = plans::get("fig12");
    EXPECT_EQ(fig12.configs.size(), 4u);
    EXPECT_EQ(fig12.workloads.size(), 19u);
    ASSERT_EQ(fig12.tables.size(), 1u);
    EXPECT_EQ(fig12.tables[0].normalizeTo, "Baseline_VP_6_64");

    EXPECT_FALSE(plans::exists("not_a_plan"));
    EXPECT_DEATH((void)plans::get("not_a_plan"), "unknown plan");
}

TEST(Plans, JobSeedsAreStableAndCellUnique)
{
    // Per-job seeds are a pure function of (plan seed, config seed,
    // config name, workload) — never of scheduling. Each input must
    // change the seed, including SimConfig::seed alone (so a seed
    // study over same-named configs measures something).
    const std::uint64_t s = jobSeed(1, 1, "EOLE_4_64", "164.gzip");
    EXPECT_EQ(s, jobSeed(1, 1, "EOLE_4_64", "164.gzip"));
    EXPECT_NE(s, jobSeed(2, 1, "EOLE_4_64", "164.gzip"));
    EXPECT_NE(s, jobSeed(1, 2, "EOLE_4_64", "164.gzip"));
    EXPECT_NE(s, jobSeed(1, 1, "EOLE_6_64", "164.gzip"));
    EXPECT_NE(s, jobSeed(1, 1, "EOLE_4_64", "186.crafty"));
}

TEST(Sweep, JobCountDoesNotChangeTheArtifactBytes)
{
    // The headline guarantee: a 2x2 plan serially and on 8 workers
    // produces byte-identical JSON artifacts.
    const ExperimentPlan plan = tinyPlan();

    SweepOptions serial;
    serial.jobs = 1;
    SweepOptions wide;
    wide.jobs = 8;

    const std::string a = jsonArtifactString(runPlan(plan, serial));
    const std::string b = jsonArtifactString(runPlan(plan, wide));
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"schema\": \"eole-sweep-v2\""), std::string::npos);
}

TEST(Sweep, TraceCacheDoesNotChangeTheArtifactBytes)
{
    // Frozen-trace replay is a pure accelerator: live-VM execution
    // must produce the same bytes.
    const ExperimentPlan plan = tinyPlan();

    SweepOptions cached;   // default: cache on
    SweepOptions live;
    live.useTraceCache = false;

    EXPECT_EQ(jsonArtifactString(runPlan(plan, cached)),
              jsonArtifactString(runPlan(plan, live)));
}

TEST(Sweep, FilterSelectsCells)
{
    const ExperimentPlan plan = tinyPlan();
    SweepOptions opt;
    opt.filter = "gzip";
    const PlanResult res = runPlan(plan, opt);
    ASSERT_EQ(res.cells.size(), 2u);
    for (const RunResult &cell : res.cells)
        EXPECT_EQ(cell.workload, "164.gzip");
    EXPECT_NE(res.find("Baseline_6_64", "164.gzip"), nullptr);
    EXPECT_EQ(res.find("Baseline_6_64", "186.crafty"), nullptr);

    opt.filter = "no-such-cell";
    EXPECT_TRUE(runPlan(plan, opt).cells.empty());
}

TEST(Sweep, ProgressReportsEveryJob)
{
    const ExperimentPlan plan = tinyPlan();
    SweepOptions opt;
    opt.jobs = 2;
    std::size_t calls = 0, last_total = 0;
    opt.progress = [&](std::size_t, std::size_t total,
                       const RunResult &) {
        ++calls;
        last_total = total;
    };
    (void)runPlan(plan, opt);
    EXPECT_EQ(calls, 4u);
    EXPECT_EQ(last_total, 4u);
}

TEST(TraceCacheT, ByteBudgetEnforcedUnderPressure)
{
    // PR 2 added the per-trace byte budget; pin its enforcement. A
    // request whose recording cannot fit must be declined (the caller
    // falls back to live-VM execution), while requests within budget
    // still cache.
    setenv("EOLE_TRACE_CACHE_MB", "1", 1);  // 1 MB budget
    TraceCache cache;
    const Workload w = workloads::build("164.gzip");

    const std::uint64_t fits = (512 * 1024) / sizeof(TraceUop);
    const std::uint64_t toobig = (2 * 1024 * 1024) / sizeof(TraceUop);
    EXPECT_EQ(cache.get(w, toobig), nullptr);
    const auto small = cache.get(w, fits);
    ASSERT_NE(small, nullptr);
    EXPECT_LE(small->bytes(), TraceCache::byteBudget());

    // The sweep engine under the same pressure: every job falls back
    // to the live VM, and the artifact bytes must not move (the cache
    // is a pure accelerator even when it declines).
    const ExperimentPlan plan = tinyPlan();
    const std::string pressured =
        jsonArtifactString(runPlan(plan, SweepOptions{}));
    unsetenv("EOLE_TRACE_CACHE_MB");
    const std::string cached =
        jsonArtifactString(runPlan(plan, SweepOptions{}));
    EXPECT_EQ(pressured, cached);
}

TEST(TraceCacheT, RefcountedEvictionOrder)
{
    // drop() is refcounted eviction: the map entry clears immediately,
    // but holders keep the recording alive until their job finishes —
    // and a later get() re-records instead of resurrecting the
    // dropped stream.
    TraceCache cache;
    const Workload w = workloads::build("164.gzip");

    const auto held = cache.get(w, 4000);
    ASSERT_NE(held, nullptr);
    const FrozenTrace *held_raw = held.get();
    EXPECT_EQ(cache.get(w, 4000).get(), held_raw);  // shared, not re-made

    cache.drop(w.name);
    // The held reference survives eviction (jobs in flight).
    EXPECT_GE(held->uops.size(), 4000u);
    // A new request is a fresh recording, not the dropped pointer.
    const auto fresh = cache.get(w, 4000);
    ASSERT_NE(fresh, nullptr);
    EXPECT_NE(fresh.get(), held_raw);
    // Both recordings replay the same functional stream.
    ASSERT_GE(fresh->uops.size(), 4000u);
    for (std::size_t i = 0; i < 4000; ++i) {
        ASSERT_EQ(fresh->uops[i].pc, held->uops[i].pc);
        ASSERT_EQ(fresh->uops[i].result, held->uops[i].result);
    }

    // Dropping with no trace present is a no-op, as is dropping twice.
    cache.drop(w.name);
    cache.drop("never-cached");
    EXPECT_NE(cache.get(w, 4000), nullptr);
}

TEST(TraceCacheT, SharesAndDropsTraces)
{
    TraceCache cache;
    const Workload w = workloads::build("164.gzip");
    const auto a = cache.get(w, 5000);
    ASSERT_NE(a, nullptr);
    EXPECT_GE(a->uops.size(), a->complete ? 0u : 5000u);
    // Second request is the same recording, not a new one.
    EXPECT_EQ(cache.get(w, 5000).get(), a.get());
    // A longer request re-records; a dropped entry re-records too.
    const auto b = cache.get(w, 6000);
    ASSERT_NE(b, nullptr);
    EXPECT_GE(b->uops.size(), b->complete ? 0u : 6000u);
    cache.drop(w.name);
    EXPECT_NE(cache.get(w, 5000), nullptr);
    // Held references stay valid after drop.
    EXPECT_GE(a->uops.size(), 1u);
}

TEST(Artifact, JsonRoundTripsAndCsvAgrees)
{
    const ExperimentPlan plan = tinyPlan();
    const PlanResult res = runPlan(plan);

    std::stringstream json;
    writeJsonArtifact(json, res);
    const PlanResult back = readJsonArtifact(json);

    EXPECT_EQ(back.plan, res.plan);
    EXPECT_EQ(back.seed, res.seed);
    EXPECT_EQ(back.warmup, res.warmup);
    EXPECT_EQ(back.measure, res.measure);
    ASSERT_EQ(back.cells.size(), res.cells.size());
    for (std::size_t i = 0; i < res.cells.size(); ++i) {
        EXPECT_EQ(back.cells[i].config, res.cells[i].config);
        EXPECT_EQ(back.cells[i].seed, res.cells[i].seed);
        ASSERT_EQ(back.cells[i].stats.all().size(),
                  res.cells[i].stats.all().size());
        // %.17g round-trips doubles exactly.
        for (const auto &[name, value] : res.cells[i].stats.all())
            EXPECT_EQ(back.cells[i].stats.get(name), value) << name;
    }

    // Round-tripping again produces identical bytes.
    EXPECT_EQ(jsonArtifactString(back), jsonArtifactString(res));

    std::stringstream csv;
    writeCsvArtifact(csv, res);
    std::string header;
    std::getline(csv, header);
    EXPECT_EQ(header, "plan,config,workload,seed,stat,value");
}

TEST(Artifact, DiffDetectsDivergence)
{
    const ExperimentPlan plan = tinyPlan();
    PlanResult a = runPlan(plan);
    PlanResult b = a;

    std::ostringstream sink;
    EXPECT_EQ(diffArtifacts(a, b, DiffOptions{}, sink), 0u);

    // Perturb one stat: exact diff catches it, a loose tolerance
    // forgives it.
    ASSERT_FALSE(b.cells.empty());
    StatRecord tweaked;
    for (const auto &[name, value] : b.cells[0].stats.all())
        tweaked.add(name, name == "ipc" ? value * 1.0001 : value);
    b.cells[0].stats = tweaked;
    EXPECT_EQ(diffArtifacts(a, b, DiffOptions{}, sink), 1u);
    DiffOptions loose;
    loose.relTol = 0.01;
    EXPECT_EQ(diffArtifacts(a, b, loose, sink), 0u);

    // A missing cell is a difference in both directions.
    b.cells.pop_back();
    EXPECT_GE(diffArtifacts(a, b, loose, sink), 1u);
}

TEST(Artifact, MissingStatKeysAreAlwaysADifference)
{
    // Regression: a stat key present on only one side used to slip
    // through unreported when it was only b that had it, so a loose
    // tolerance could pass artifacts with drifted schemas. Missing
    // keys must be reported in both directions, under any tolerance
    // and in CI-overlap mode.
    const ExperimentPlan plan = tinyPlan();
    const PlanResult a = runPlan(plan);
    PlanResult b = a;

    ASSERT_FALSE(b.cells.empty());
    ASSERT_FALSE(b.cells[0].stats.all().empty());
    // Drop one stat from b and add a novel one only b has.
    const std::string dropped = b.cells[0].stats.all().front().first;
    StatRecord tweaked;
    for (const auto &[name, value] : b.cells[0].stats.all()) {
        if (name != dropped)
            tweaked.add(name, value);
    }
    tweaked.add("novel_stat_only_in_b", 1.0);
    b.cells[0].stats = tweaked;

    DiffOptions loose;
    loose.relTol = 1e9;  // forgives any numeric divergence
    loose.absTol = 1e9;
    std::ostringstream out;
    EXPECT_EQ(diffArtifacts(a, b, loose, out), 2u);
    EXPECT_NE(out.str().find(dropped + " missing from b"),
              std::string::npos);
    EXPECT_NE(out.str().find("novel_stat_only_in_b missing from a"),
              std::string::npos);

    DiffOptions ci = loose;
    ci.ciOverlap = true;
    std::ostringstream out2;
    EXPECT_EQ(diffArtifacts(a, b, ci, out2), 2u);
}

TEST(Artifact, CiOverlapComparesSampledStats)
{
    // Two sampled artifacts whose mean IPCs differ but whose CIs
    // overlap must agree under --ci and disagree without it.
    PlanResult a;
    a.plan = "ci";
    RunResult cell;
    cell.config = "C";
    cell.workload = "W";
    cell.stats.add("ipc", 1.00);
    cell.stats.add("ipc_ci95", 0.05);
    cell.stats.add("ipc_stddev", 0.04);
    a.cells.push_back(cell);

    PlanResult b = a;
    StatRecord other;
    other.add("ipc", 1.07);       // |Δ| = 0.07 <= 0.05 + 0.05
    other.add("ipc_ci95", 0.05);
    other.add("ipc_stddev", 0.09);  // metadata: skipped under --ci
    b.cells[0].stats = other;

    std::ostringstream sink;
    EXPECT_GE(diffArtifacts(a, b, DiffOptions{}, sink), 1u);
    DiffOptions ci;
    ci.ciOverlap = true;
    EXPECT_EQ(diffArtifacts(a, b, ci, sink), 0u);

    // Beyond the overlap it is a difference again.
    StatRecord far;
    far.add("ipc", 1.20);
    far.add("ipc_ci95", 0.05);
    far.add("ipc_stddev", 0.04);
    b.cells[0].stats = far;
    EXPECT_EQ(diffArtifacts(a, b, ci, sink), 1u);
}

TEST(Experiment, DeterministicAcrossRuns)
{
    setenv("EOLE_WARMUP", "1000", 1);
    setenv("EOLE_INSTS", "10000", 1);
    const std::vector<SimConfig> cfgs = {configs::eole(4, 64)};
    const std::vector<std::string> names = {"458.sjeng"};
    const auto a = runGrid(cfgs, names);
    const auto b = runGrid(cfgs, names);
    EXPECT_DOUBLE_EQ(a[0].stats.get("cycles"), b[0].stats.get("cycles"));
    EXPECT_DOUBLE_EQ(a[0].stats.get("early_executed"),
                     b[0].stats.get("early_executed"));
    unsetenv("EOLE_WARMUP");
    unsetenv("EOLE_INSTS");
}
