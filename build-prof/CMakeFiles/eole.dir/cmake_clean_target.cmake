file(REMOVE_RECURSE
  "libeole.a"
)
