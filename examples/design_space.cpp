/**
 * @file
 * Design-space walk: reproduce the paper's §6 argument on one
 * benchmark by stepping from the VP baseline to the final realistic
 * EOLE design, printing IPC and complexity-relevant stats at each
 * step.
 *
 *   ./build/examples/design_space [benchmark]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "pipeline/core.hh"
#include "sim/configs.hh"
#include "workloads/workload.hh"

using namespace eole;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "179.art";

    struct Step
    {
        const char *why;
        SimConfig cfg;
    };

    const std::vector<Step> steps = {
        {"Table 1 machine, no VP", configs::baseline(6, 64)},
        {"+ VTAGE-2DStride, validation at commit",
         configs::baselineVp(6, 64)},
        {"+ Early & Late Execution", configs::eole(6, 64)},
        {"shrink the OoO engine to 4-issue", configs::eole(4, 64)},
        {"bank the PRF (4 banks)", configs::eoleBanked(4, 64, 4)},
        {"restrict LE/VT to 4 reads/bank, EE to 2 writes/bank",
         configs::eoleConstrained(4, 64, 4, 4)},
    };

    std::printf("design-space walk on %s (Section 6 of the paper)\n\n",
                bench.c_str());
    std::printf("%-52s %7s %9s %8s\n", "step", "IPC", "offload",
                "IQ-occ");

    double base_vp_ipc = 0.0;
    for (const Step &s : steps) {
        const Workload w = workloads::build(bench);
        Core core(s.cfg, w);
        core.run(300000, 60000000);
        core.resetStats();
        core.run(1500000, 300000000);
        const StatRecord r = core.record();
        if (s.cfg.name == "Baseline_VP_6_64")
            base_vp_ipc = r.get("ipc");
        std::printf("%-52s %7.3f %8.1f%% %8.1f\n", s.why, r.get("ipc"),
                    100 * r.get("offload_frac"),
                    r.get("avg_iq_occupancy"));
    }

    std::printf("\nThe last row is the paper's Fig 12 design point: a "
                "4-issue OoO engine,\na 4-banked PRF with the same port "
                "count as a 6-issue non-VP core, at\n~the performance "
                "of the 6-issue VP baseline (IPC %.3f here).\n",
                base_vp_ipc);
    return 0;
}
