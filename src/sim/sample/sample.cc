#include "sim/sample/sample.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "common/env.hh"
#include "common/logging.hh"
#include "pipeline/core.hh"
#include "sim/params.hh"
#include "sim/store.hh"
#include "sim/telemetry.hh"
#include "sim/trace_cache.hh"
#include "workloads/workload.hh"

namespace eole {

namespace {

/** Two-sided 97.5th-percentile Student-t critical values, df 1..30;
 *  beyond that the normal 1.96 is within ~1%. */
constexpr double tCrit[] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048,  2.045, 2.042,
};

double
tCritical(std::size_t df)
{
    if (df == 0)
        return 0.0;
    if (df <= std::size(tCrit))
        return tCrit[df - 1];
    return 1.96;
}

/** One interval's measurement. */
struct IntervalResult
{
    std::uint64_t start = 0;      //!< measured-interval start µ-op
    std::uint64_t warmedUops = 0; //!< functionally warmed µ-ops
    std::uint64_t committed = 0;  //!< measured µ-ops
    std::uint64_t cycles = 0;     //!< measured cycles
    bool restored = false;        //!< fed from a v2 checkpoint
};

} // namespace

std::uint64_t
intervalSeed(std::uint64_t cell_seed, std::uint64_t interval_index)
{
    // Reuse the jobSeed mixing discipline: pure function of the cell
    // seed and the interval index, stable across platforms/scheduling.
    return jobSeed(cell_seed, interval_index, "interval", "");
}

std::vector<std::uint64_t>
placeIntervals(std::uint64_t warmup, std::uint64_t measure,
               const SampleSpec &spec, std::uint64_t cell_seed)
{
    std::vector<std::uint64_t> starts;
    if (!spec.enabled() || measure == 0)
        return starts;

    const std::uint64_t w = spec.intervalUops;
    const std::uint64_t region_end = warmup + measure;
    // The region must hold n disjoint intervals: clamp n.
    std::uint64_t n = std::min(spec.intervals, measure / w);
    if (n == 0)
        n = 1;  // degenerate region: one (short) interval at the start
    const std::uint64_t period = measure / n;

    // Deterministic phase within one period (leaving room for W when
    // the period allows it), same for every interval: systematic
    // sampling with a seeded offset.
    const std::uint64_t slack = period > w ? period - w : 0;
    const std::uint64_t phase =
        slack ? intervalSeed(cell_seed, ~0ULL) % (slack + 1) : 0;

    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t start = warmup + i * period + phase;
        // The detailed-warmup prefix [start - D, start) must exist,
        // and intervals must stay disjoint after that clamp (a D
        // larger than the early systematic positions would otherwise
        // collapse them onto one point, biasing the CI narrow).
        start = std::max<std::uint64_t>(start, spec.detailUops);
        if (!starts.empty())
            start = std::max<std::uint64_t>(start, starts.back() + w);
        // Drop intervals pushed past the region by the clamps — the
        // contract is "fewer than N when the region cannot hold N
        // disjoint intervals", except the guaranteed first (short)
        // interval of a degenerate region.
        if (start + w > region_end && !starts.empty())
            break;
        starts.push_back(start);
    }
    return starts;
}

MeanCi
meanCi95(const std::vector<double> &xs)
{
    MeanCi out;
    if (xs.empty())
        return out;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    out.mean = sum / static_cast<double>(xs.size());
    if (xs.size() < 2)
        return out;
    double ss = 0.0;
    for (double x : xs)
        ss += (x - out.mean) * (x - out.mean);
    out.stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
    out.ci95 = tCritical(xs.size() - 1) * out.stddev
        / std::sqrt(static_cast<double>(xs.size()));
    return out;
}

std::vector<std::uint64_t>
warmCheckpointIndices(const std::vector<std::uint64_t> &starts,
                      std::uint64_t trace_len, const SampleSpec &spec)
{
    std::vector<std::uint64_t> idxs;
    idxs.reserve(starts.size());
    for (const std::uint64_t s : starts) {
        const std::uint64_t start = std::min(s, trace_len);
        idxs.push_back(start >= spec.detailUops
                           ? start - spec.detailUops
                           : 0);
    }
    return idxs;
}

std::uint64_t
sampleTraceUopsNeeded(const ExperimentPlan &plan,
                      const SampleSpec &spec, std::uint64_t warmup,
                      std::uint64_t measure, std::uint64_t max_start)
{
    const std::uint64_t furthest =
        std::max(warmup + measure, max_start + spec.intervalUops);
    return furthest + maxInflightUops(plan);
}

std::vector<std::shared_ptr<const Checkpoint>>
warmOnceCheckpoints(const SimConfig &cfg, const Workload &workload,
                    const std::shared_ptr<const FrozenTrace> &trace,
                    const std::vector<std::uint64_t> &ckpt_indices)
{
    Workload wc = workload;
    wc.frozen = trace;
    wc.start.reset();
    Core core(cfg, wc);

    std::vector<std::shared_ptr<const Checkpoint>> out;
    out.reserve(ckpt_indices.size());
    const std::uint64_t len = trace->uops.size();
    std::uint64_t cursor = 0;
    for (std::uint64_t idx : ckpt_indices) {
        idx = std::min(idx, len);
        fatal_if(idx < cursor,
                 "warmOnceCheckpoints: indices must be non-decreasing "
                 "(%llu after %llu)",
                 (unsigned long long)idx, (unsigned long long)cursor);
        core.functionalWarm(*trace, cursor, idx);
        cursor = idx;
        auto ckpt = std::make_shared<Checkpoint>(
            captureAt(*trace, workload.name, idx));
        core.captureWarmState(*ckpt);
        out.push_back(std::move(ckpt));
    }
    return out;
}

PlanResult
runSampledPlan(const ExperimentPlan &plan, const SampleSpec &spec,
               const SweepOptions &options)
{
    fatal_if(!spec.enabled(), "runSampledPlan: spec is disabled");
    validatePlanConfigs(plan);

    // Bounded warming is per-interval by construction (each interval
    // warms at most B µ-ops of its own prefix), so the warm-once
    // checkpoints apply to the continuous (B=0) mode only;
    // options.sampleRewarm forces the legacy path there for
    // differential validation.
    const bool warmOnce = spec.warmBound == 0 && !options.sampleRewarm;

    PlanResult out;
    out.plan = plan.name;
    out.seed = plan.seed;
    out.warmup = resolveRunLength(options.warmup, plan.warmup,
                                  "EOLE_WARMUP", defaultWarmupUops);
    out.measure = resolveRunLength(options.measure, plan.measure,
                                   "EOLE_INSTS", defaultMeasureUops);
    out.filter = options.filter;
    out.sample = spec;

    // Expand matched cells (config-major artifact order) and place
    // each cell's intervals up front — the placement depends only on
    // run lengths and the cell seed, never on the recorded trace.
    struct Cell
    {
        std::size_t cfg;
        std::size_t wl;
        std::vector<std::uint64_t> starts;
        std::vector<IntervalResult> intervals;  //!< pre-assigned slots
        /** Warm-once per-interval checkpoints (phase-1 slots; each
         *  consumed and released by its interval job). */
        std::vector<std::shared_ptr<const Checkpoint>> ckpts;
    };
    std::vector<Cell> cells;
    for (std::size_t c = 0; c < plan.configs.size(); ++c) {
        for (std::size_t w = 0; w < plan.workloads.size(); ++w) {
            if (!cellMatches(options.filter, plan.configs[c].name,
                             plan.workloads[w])
                || !options.shard.owns(plan.seed, plan.configs[c].seed,
                                       plan.configs[c].name,
                                       plan.workloads[w]))
                continue;
            Cell cell;
            cell.cfg = c;
            cell.wl = w;
            cells.push_back(std::move(cell));
        }
    }
    out.cells.resize(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        RunResult &rr = out.cells[i];
        rr.config = plan.configs[cells[i].cfg].name;
        rr.workload = plan.workloads[cells[i].wl];
        rr.seed = jobSeed(plan.seed, plan.configs[cells[i].cfg].seed,
                          rr.config, rr.workload);
        rr.params = configKeyValues(plan.configs[cells[i].cfg]);
        // Per-config `runlen` overrides move that config's sampled
        // region; placement stays a pure function of (lengths, seed).
        cells[i].starts = placeIntervals(
            out.warmup, resolveMeasureFor(options.measure, plan, rr.config),
            spec, rr.seed);
        cells[i].intervals.resize(cells[i].starts.size());
        cells[i].ckpts.resize(cells[i].starts.size());
    }
    if (options.telemetry) {
        for (const RunResult &rr : out.cells)
            options.telemetry->cellQueued(rr.config, rr.workload);
    }

    // Content-addressed store, serial pre-pass (mirrors runPlan): a
    // cached cell loads its reduced stats here and expands into no
    // warming or interval jobs at all — the sample spec is part of
    // the key, so sampled and full results never alias.
    const auto cellStoreKey = [&](std::size_t i) {
        StoreKey key;
        key.kind = "cell";
        key.config = out.cells[i].config;
        key.params = out.cells[i].params;
        key.workload = out.cells[i].workload;
        key.seed = out.cells[i].seed;
        key.warmup = out.warmup;
        key.measure = resolveMeasureFor(options.measure, plan,
                                        out.cells[i].config);
        key.sample = spec;
        return key;
    };
    std::vector<char> cellCached(cells.size(), 0);
    if (options.store) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const std::string hash = storeKeyHash(cellStoreKey(i));
            std::string payload;
            if (!options.store->get(hash, &payload))
                continue;
            std::string err;
            fatal_if(!tryParseCellPayload(payload,
                                          &out.cells[i].stats, &err),
                     "store %s: object %s: %s (delete the store "
                     "directory to rebuild it)",
                     options.store->directory().c_str(), hash.c_str(),
                     err.c_str());
            cellCached[i] = 1;
            ++out.storeHits;
        }
    }
    const auto storeFinish = [&] {
        if (!options.store)
            return;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (cellCached[i])
                continue;
            options.store->put(cellStoreKey(i),
                               cellPayloadText(out.cells[i].stats));
            ++out.storeComputed;
        }
        options.store->flush();
        if (options.telemetry)
            options.telemetry->storeCounts(out.storeHits, out.storeComputed);
    };

    // Flatten (cell, interval) into the job list, workload-major like
    // the full-run engine so trace sharing clusters per workload; the
    // warm-once warming pass adds one phase-1 job per cell in the
    // same order.
    struct Job
    {
        std::size_t cell;
        std::size_t interval;
    };
    std::vector<Job> jobs;
    std::vector<std::size_t> warmJobs;  //!< phase-1 cell indices
    std::vector<std::size_t> jobsPerWorkload(plan.workloads.size(), 0);
    for (std::size_t w = 0; w < plan.workloads.size(); ++w) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (cells[i].wl != w || cellCached[i])
                continue;
            if (warmOnce && !cells[i].starts.empty()) {
                warmJobs.push_back(i);
                ++jobsPerWorkload[w];
            }
            for (std::size_t k = 0; k < cells[i].starts.size(); ++k) {
                jobs.push_back(Job{i, k});
                ++jobsPerWorkload[w];
            }
        }
    }
    if (jobs.empty()) {
        storeFinish();
        return out;
    }

    // The degenerate single interval of a too-short region may run
    // past warmup+measure; size recordings for the furthest fetch any
    // interval can reach.
    std::uint64_t maxStart = 0;
    for (const Cell &cell : cells) {
        for (const std::uint64_t s : cell.starts)
            maxStart = std::max(maxStart, s);
    }
    std::uint64_t longestMeasure = out.measure;
    for (const SimConfig &c : plan.configs) {
        longestMeasure = std::max(
            longestMeasure, resolveMeasureFor(options.measure, plan, c.name));
    }
    const std::uint64_t traceUopsNeeded = sampleTraceUopsNeeded(
        plan, spec, out.warmup, longestMeasure, maxStart);

    TraceCache cache;
    std::vector<std::atomic<std::size_t>> remaining(plan.workloads.size());
    for (std::size_t w = 0; w < plan.workloads.size(); ++w)
        remaining[w].store(jobsPerWorkload[w], std::memory_order_relaxed);

    const std::size_t totalJobs = warmJobs.size() + jobs.size();
    std::atomic<std::size_t> done{0};
    std::mutex progressMu;

    const auto jobFinished = [&](const Cell &cell, const RunResult &rr,
                                 const StatRecord &stats) {
        if (remaining[cell.wl].fetch_sub(1) == 1)
            cache.drop(rr.workload);
        const std::size_t finished = done.fetch_add(1) + 1;
        if (options.progress) {
            RunResult partial;
            partial.config = rr.config;
            partial.workload = rr.workload;
            partial.seed = rr.seed;
            partial.stats = stats;
            std::lock_guard<std::mutex> lock(progressMu);
            options.progress(finished, totalJobs, partial);
        }
    };

    // ---- Phase 1 (warm-once mode): one continuous warming pass per
    // cell, dropping a µarch-bearing v2 checkpoint at each interval's
    // detailed-warmup start. Cells are independent pool jobs; slots
    // (cell.ckpts, interval start/warmedUops accounting) are
    // pre-assigned, so the phase is deterministic regardless of
    // worker count.
    if (warmOnce) {
        runOnWorkerPool(warmJobs.size(), options.jobs,
                        [&](std::size_t j, int worker) {
            Cell &cell = cells[warmJobs[j]];
            const RunResult &rr = out.cells[warmJobs[j]];

            if (options.telemetry)
                options.telemetry->jobStart("warm", rr.config, rr.workload,
                                            worker);
            const auto t0 = std::chrono::steady_clock::now();

            SimConfig cfg = plan.configs[cell.cfg];
            cfg.seed = rr.seed;

            Workload w = workloads::build(rr.workload);
            std::shared_ptr<const FrozenTrace> trace;
            if (options.useTraceCache)
                trace = cache.get(w, traceUopsNeeded);
            if (!trace) {
                // Budget pressure / cache disabled: a private
                // recording bounded to the warming pass's own horizon
                // (the furthest interval start; consistent with the
                // cached clamps because every start <= the request).
                trace = w.freeze(std::min(traceUopsNeeded,
                                          cell.starts.back()));
            }
            const std::uint64_t len = trace->uops.size();

            const std::vector<std::uint64_t> idxs =
                warmCheckpointIndices(cell.starts, len, spec);
            std::uint64_t prev = 0;
            for (std::size_t k = 0; k < cell.starts.size(); ++k) {
                IntervalResult &iv = cell.intervals[k];
                iv.start =
                    std::min<std::uint64_t>(cell.starts[k], len);
                iv.warmedUops = idxs[k] - std::min(prev, idxs[k]);
                prev = idxs[k];
            }
            cell.ckpts = warmOnceCheckpoints(cfg, w, trace, idxs);

            StatRecord stats;
            stats.add("sample_ckpts",
                      static_cast<double>(cell.ckpts.size()));
            if (options.telemetry) {
                const double wall_ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0).count();
                options.telemetry->jobFinish("warm", rr.config, rr.workload,
                                             worker, wall_ms, true);
            }
            jobFinished(cell, rr, stats);
        });
    }

    // ---- Phase 2: the measurement intervals. Warm-once jobs restore
    // the phase-1 checkpoint; the legacy path functionally re-warms
    // its own prefix (bounded by B when set).
    runOnWorkerPool(jobs.size(), options.jobs, [&](std::size_t j,
                                                   int worker) {
        const Job &job = jobs[j];
        Cell &cell = cells[job.cell];
        const RunResult &rr = out.cells[job.cell];
        IntervalResult &iv = cell.intervals[job.interval];

        if (options.telemetry)
            options.telemetry->jobStart("interval", rr.config, rr.workload,
                                        worker,
                                        static_cast<long>(job.interval));
        const auto t0 = std::chrono::steady_clock::now();

        SimConfig cfg = plan.configs[cell.cfg];
        cfg.seed = rr.seed;

        Workload w = workloads::build(rr.workload);
        std::shared_ptr<const FrozenTrace> trace;
        if (options.useTraceCache)
            trace = cache.get(w, traceUopsNeeded);
        if (!trace) {
            // Budget pressure / cache disabled: a private
            // recording (checkpointed starts need a frozen
            // trace), bounded to this interval's own fetch
            // horizon so residency stays proportional to the job
            // instead of the whole run.
            const std::uint64_t jobNeeded =
                std::min(traceUopsNeeded,
                         cell.starts[job.interval]
                             + spec.intervalUops
                             + maxInflightUops(plan));
            trace = w.freeze(jobNeeded);
        }
        const std::uint64_t len = trace->uops.size();

        std::shared_ptr<const Checkpoint> ckpt;
        std::uint64_t start, ckptIdx;
        if (warmOnce) {
            // The phase-1 checkpoint is the start point; its µ-op
            // index already reflects the trace-length clamps.
            ckpt = std::move(cell.ckpts[job.interval]);
            cell.ckpts[job.interval].reset();
            start = iv.start;
            ckptIdx = ckpt->uopIndex;
        } else {
            start = std::min<std::uint64_t>(cell.starts[job.interval],
                                            len);
            ckptIdx =
                start >= spec.detailUops ? start - spec.detailUops : 0;
            ckpt = std::make_shared<Checkpoint>(
                captureAt(*trace, rr.workload, ckptIdx));
            iv.start = start;
        }
        const std::uint64_t detail = start - ckptIdx;

        Workload wc = w;
        wc.frozen = trace;
        wc.start = ckpt;

        iv.restored = warmOnce;
        {
            Core core(cfg, wc);
            if (warmOnce) {
                core.restoreWarmState(*ckpt);
            } else {
                // Bounded warming (spec.warmBound != 0) caps the
                // functionally-warmed window before each interval; 0
                // keeps classic SMARTS continuous warming over the
                // whole prefix.
                const std::uint64_t warmBegin =
                    spec.warmBound && ckptIdx > spec.warmBound
                        ? ckptIdx - spec.warmBound
                        : 0;
                iv.warmedUops = ckptIdx - warmBegin;
                core.functionalWarm(*trace, warmBegin, ckptIdx);
            }
            if (detail) {
                core.run(detail, detail * 60 + 1000000);
            }
            core.resetTiming();
            iv.committed = core.run(spec.intervalUops,
                                    spec.intervalUops * 60 + 1000000);
            iv.cycles = core.pipelineState().cycles;
        }
        wc.frozen.reset();
        wc.start.reset();
        ckpt.reset();
        trace.reset();

        StatRecord stats;
        stats.add("interval_start", static_cast<double>(iv.start));
        stats.add("ipc", ratio(static_cast<double>(iv.committed),
                               static_cast<double>(iv.cycles)));
        if (options.telemetry) {
            const double wall_ms = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0).count();
            options.telemetry->jobFinish("interval", rr.config, rr.workload,
                                         worker, wall_ms, true,
                                         static_cast<long>(job.interval));
        }
        jobFinished(cell, rr, stats);
    });

    if (options.telemetry && options.useTraceCache)
        options.telemetry->traceCacheCounts(cache.hitCount(),
                                            cache.missCount(),
                                            cache.fileHitCount(),
                                            cache.fileMissCount(),
                                            cache.evictCount());

    // Reduce each cell in slot order (deterministic float order).
    // Cached cells carry their reduced stats already (store pre-pass)
    // and must not be re-reduced from their empty interval slots.
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cellCached[i])
            continue;
        RunResult &rr = out.cells[i];
        std::vector<double> ipcs;
        std::uint64_t cycles = 0, committed = 0, warmed = 0;
        std::uint64_t restored = 0;
        for (const IntervalResult &iv : cells[i].intervals) {
            warmed += iv.warmedUops;
            if (iv.restored)
                ++restored;
            if (iv.committed == 0 || iv.cycles == 0)
                continue;  // interval past the end of a short workload
            ipcs.push_back(ratio(static_cast<double>(iv.committed),
                                 static_cast<double>(iv.cycles)));
            cycles += iv.cycles;
            committed += iv.committed;
        }
        const MeanCi ci = meanCi95(ipcs);
        rr.stats.add("ipc", ci.mean);
        rr.stats.add("ipc_ci95", ci.ci95);
        rr.stats.add("ipc_stddev", ci.stddev);
        rr.stats.add("cycles", static_cast<double>(cycles));
        rr.stats.add("committed_uops", static_cast<double>(committed));
        rr.stats.add("sample_intervals",
                     static_cast<double>(ipcs.size()));
        rr.stats.add("sample_interval_uops",
                     static_cast<double>(spec.intervalUops));
        rr.stats.add("sample_detail_uops",
                     static_cast<double>(spec.detailUops));
        rr.stats.add("sample_warm_uops", static_cast<double>(warmed));
        rr.stats.add("sample_restored_intervals",
                     static_cast<double>(restored));
    }
    storeFinish();
    return out;
}

} // namespace eole
