file(REMOVE_RECURSE
  "CMakeFiles/abl_fpc.dir/bench/abl_fpc.cc.o"
  "CMakeFiles/abl_fpc.dir/bench/abl_fpc.cc.o.d"
  "abl_fpc"
  "abl_fpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
