/**
 * @file
 * The cycle-level out-of-order core with EOLE support.
 *
 * Pipeline shape (Table 1 + §3 of the paper):
 *
 *   Fetch (8-wide, 2 taken branches, TAGE/BTB/RAS, value predictor)
 *     -> 15-cycle in-order front end (modeled as a latency/bandwidth
 *        constrained pipe)
 *   Rename (8-wide, banked PRF allocation; EARLY EXECUTION happens
 *     here, in parallel, per §3.2)
 *   Dispatch (ROB/IQ/LSQ allocation; EE results and used predictions
 *     are written to the PRF here, consuming EE write ports)
 *   Issue (6-wide OoO, oldest-first, FU pools, Store Sets)
 *   Execute/Writeback (latency oracle; loads access the hierarchy)
 *   LE/VT pre-commit stage (LATE EXECUTION of predicted single-cycle
 *     ALU µ-ops and very-high-confidence branches; prediction
 *     validation and predictor training; §3.3) -- adds one cycle when
 *     VP is enabled
 *   Commit (8-wide, in order)
 *
 * Recovery is always full pipeline squash + front-end re-fetch: branch
 * mispredictions at execute (or at LE/VT for high-confidence
 * branches), value mispredictions at validation, and memory-order
 * violations at store execute.
 *
 * The simulator is trace-driven (no wrong-path µ-ops; see DESIGN.md
 * §5) and self-checking: at commit, every µ-op's recomputed result is
 * compared against the functional KernelVM oracle.
 */

#ifndef EOLE_PIPELINE_CORE_HH
#define EOLE_PIPELINE_CORE_HH

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/queues.hh"
#include "common/stats.hh"
#include "core/early_exec.hh"
#include "core/port_model.hh"
#include "mem/hierarchy.hh"
#include "pipeline/dyn_inst.hh"
#include "pipeline/fu_pool.hh"
#include "pipeline/regfile.hh"
#include "pipeline/store_sets.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

namespace eole {

/** Aggregate per-run statistics. */
struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t committedUops = 0;

    // Branches.
    std::uint64_t condBranches = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t highConfBranches = 0;
    std::uint64_t highConfMispredicts = 0;
    std::uint64_t btbMissBubbles = 0;

    // Value prediction.
    std::uint64_t vpEligible = 0;
    std::uint64_t vpPredictionsUsed = 0;
    std::uint64_t vpCorrectUsed = 0;
    std::uint64_t vpMispredictSquashes = 0;

    // EOLE.
    std::uint64_t earlyExecuted = 0;
    std::uint64_t lateExecutedAlu = 0;
    std::uint64_t lateExecutedBranches = 0;

    // Memory.
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t storeToLoadForwards = 0;
    std::uint64_t memOrderViolations = 0;

    // Stalls.
    std::uint64_t renameBankStalls = 0;
    std::uint64_t dispatchPortStalls = 0;
    std::uint64_t commitPortStalls = 0;
    std::uint64_t robFullStalls = 0;
    std::uint64_t iqFullStalls = 0;

    // Occupancy.
    std::uint64_t iqOccupancySum = 0;
    std::uint64_t dispatchedToIQ = 0;

    double ipc() const { return ratio(double(committedUops), double(cycles)); }

    StatRecord record() const;
};

/** One core simulation instance: one configuration x one workload. */
class Core
{
  public:
    Core(const SimConfig &config, const Workload &workload);
    ~Core();

    /**
     * Run until @p target_commits more µ-ops commit (or the trace
     * drains / @p max_cycles elapse).
     * @return µ-ops committed during this call
     */
    std::uint64_t run(std::uint64_t target_commits,
                      std::uint64_t max_cycles = ~0ULL);

    /** Zero the statistics (end of warmup). Predictor/cache state and
     *  in-flight pipeline state are preserved. */
    void resetStats();

    const CoreStats &stats() const { return s; }

    /** Full statistics dump including memory-hierarchy counters. */
    StatRecord record() const;

    Cycle cycle() const { return now; }

  private:
    // --- Pipeline stages (called in reverse order each tick) ---
    void tick();
    void completionStage();
    void commitStage();
    void issueStage();
    void dispatchStage();
    void renameStage();
    void fetchStage();

    // --- Helpers ---
    PhysRegFile &prfOf(RegClass cls) { return *prf[int(cls)]; }
    RenameMap &mapOf(RegClass cls) { return *rmap[int(cls)]; }

    RegVal readOperand(const DynInst &di, int idx) const;
    bool operandsReady(const DynInst &di) const;
    bool executeInst(const DynInstPtr &di);
    void finishExec(const DynInstPtr &di, RegVal value, Cycle ready);
    bool storeExecuted(SeqNum store_seq) const;
    void checkStoreViolation(const DynInstPtr &store);
    bool tryEarlyExecute(const DynInstPtr &di);
    int bankOfReg(RegClass cls, RegIndex phys) const;
    bool readyToRetire(const DynInst &di) const;
    int levtReadNeeds(const DynInst &di, int *banks_out) const;

    /** Late-execute a µ-op in the LE/VT stage. */
    void lateExecute(const DynInstPtr &di);

    /**
     * Full squash of everything younger than @p keep_seq.
     *
     * @param keep_seq youngest surviving sequence number
     * @param restore front-end snapshot to restore (state after
     *        keep_seq)
     * @param resume_fetch_at first cycle fetch may run again
     */
    void squashAfter(SeqNum keep_seq, const BranchUnit::SnapshotPtr &restore,
                     Cycle resume_fetch_at);
    void markSquashed(const DynInstPtr &di);
    void undoRename(const DynInstPtr &di);

    /** A mispredicted branch resolved: repair + un-stall fetch. */
    void resolveMispredictedBranch(const DynInstPtr &di);

    // --- Configuration & substrate ---
    SimConfig cfg;
    TraceSource ts;
    std::unique_ptr<ValuePredictor> vp;
    std::unique_ptr<BranchUnit> bu;
    std::unique_ptr<MemHierarchy> mem;
    std::unique_ptr<PhysRegFile> prf[numRegClasses];
    std::unique_ptr<RenameMap> rmap[numRegClasses];
    StoreSets ssets;
    FuPool fus;
    EarlyExecBlock ee;
    PrfPortModel ports;

    // --- Pipeline state ---
    Cycle now = 0;
    DelayedPipe<DynInstPtr> frontPipe;
    std::deque<DynInstPtr> renameOut;
    CircularQueue<DynInstPtr> rob;
    CircularQueue<DynInstPtr> lq;
    CircularQueue<DynInstPtr> sq;
    std::vector<DynInstPtr> iq;
    std::map<Cycle, std::vector<DynInstPtr>> completions;
    std::vector<DynInstPtr> renameGroup;  //!< scratch: this cycle's group

    Cycle fetchStallUntil = 0;
    DynInstPtr fetchBlockedOnBranch;
    int bankCursor = 0;

    CoreStats s;
};

} // namespace eole

#endif // EOLE_PIPELINE_CORE_HH
