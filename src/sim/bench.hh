/**
 * @file
 * `eole bench`: the detailed-mode µops/sec harness.
 *
 * Every speed claim about the tick loop goes through this one
 * instrument: for each (config, workload) cell it replays a frozen
 * trace through a fresh Core, discards a fixed warmup budget, then
 * times a fixed measured budget of detailed simulation — repeated K
 * times with the wall-clock minimum kept (min-of-K filters scheduler
 * noise; the minimum is the least-disturbed observation of a
 * deterministic computation). Results are written as canonical
 * byte-stable JSON (schema eole-bench-v1, sim/json.hh) so a committed
 * BENCH_<label>.json is a durable point on the repo's speed
 * trajectory, and `eole bench --compare` turns two of them into
 * per-cell speedup ratios.
 *
 * The simulated behavior of a bench run is exactly that of a sweep
 * cell at the same lengths and seed (same jobSeed discipline); only
 * wall-clock is measured. Cells run strictly serially — a worker pool
 * would contend for cores and corrupt the timings.
 */

#ifndef EOLE_SIM_BENCH_HH
#define EOLE_SIM_BENCH_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace eole {

/** Knobs for one runBench invocation (CLI flags map 1:1). */
struct BenchOptions
{
    /** Workload registry names; empty = the default smoke set
     *  (defaultBenchWorkloads). */
    std::vector<std::string> workloads;
    /** Named configs; empty = the fig12 config set (the paper's
     *  overall-result grid, the pinned target of the µops/sec
     *  trajectory). */
    std::vector<std::string> configs;
    std::uint64_t budget = 1000000;  //!< measured µ-ops per rep
    std::uint64_t warmup = 100000;   //!< discarded warmup µ-ops
    int reps = 3;                    //!< min-of-K repetitions
    std::string label;               //!< recorded in the artifact
    bool quiet = false;              //!< no per-cell progress on stderr

    /** Attribute each cell's wall time to pipeline stages and models
     *  (common/profiler.hh). Timing overhead lands inside the measured
     *  region, so a profiled artifact is not comparable against an
     *  unprofiled one — the profile explains where time goes, the
     *  plain run is the speed claim. */
    bool profile = false;
};

/** The default bench workloads: a small INT/INT/FP smoke set, long
 *  enough that every default budget fits. */
const std::vector<std::string> &defaultBenchWorkloads();

/** One timed (config, workload) cell. */
struct BenchCell
{
    std::string config;
    std::string workload;
    std::uint64_t uops = 0;    //!< measured µ-ops actually committed
    double secondsMin = 0.0;   //!< min-of-K wall seconds for the budget
    double uopsPerSec = 0.0;   //!< uops / secondsMin
    double ipc = 0.0;          //!< simulated IPC (context, not speed)

    /** `--profile` only: (dotted section name, wall seconds) in
     *  profiler enum order, snapshot of the last rep, with that rep's
     *  own measured seconds as the attribution denominator. model.*
     *  sections nest inside their calling stage.* section, so only
     *  stage.* + warm.* sum toward coverage. Empty when profiling was
     *  off. */
    std::vector<std::pair<std::string, double>> profile;
    double profileSeconds = 0.0;
};

/** Everything one bench run produced; the in-memory artifact form. */
struct BenchResult
{
    std::string label;
    std::uint64_t budget = 0;
    std::uint64_t warmup = 0;
    int reps = 0;
    std::vector<BenchCell> cells;  //!< config-major

    /** Geometric mean of the per-cell µops/sec (0 when empty). */
    double geomeanUopsPerSec() const;

    const BenchCell *find(const std::string &config,
                          const std::string &workload) const;
};

/** Time every (config, workload) cell serially; see file header. */
BenchResult runBench(const BenchOptions &options);

/** Canonical JSON (schema "eole-bench-v1"): fixed key order, cells in
 *  run order, doubles as %.17g — byte-stable for identical inputs. */
void writeBenchJson(std::ostream &os, const BenchResult &result);

/** The same artifact as a string (byte-comparison in tests). */
std::string benchJsonString(const BenchResult &result);

/** Human-readable per-cell stage/model breakdown tables (`eole bench
 *  --profile`); cells without profile data are skipped. */
void writeBenchProfileTable(std::ostream &os, const BenchResult &result);

/** Parse a bench artifact (fatal on malformed input / wrong schema). */
BenchResult readBenchJson(std::istream &is);

/** Convenience: read a bench file (fatal if unreadable). */
BenchResult readBenchJsonFile(const std::string &path);

/**
 * Per-cell speedup report of @p b over @p a (cells matched by
 * config/workload identity), written to @p os. Cells present on only
 * one side are reported and excluded from the mean.
 *
 * @return geomean of the per-cell b/a µops/sec ratios over the common
 *         cells; 0 when no cell is common to both.
 */
double compareBench(const BenchResult &a, const BenchResult &b,
                    std::ostream &os);

} // namespace eole

#endif // EOLE_SIM_BENCH_HH
