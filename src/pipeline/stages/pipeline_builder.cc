#include "pipeline/stages/pipeline_builder.hh"

#include "common/logging.hh"
#include "pipeline/stages/commit.hh"
#include "pipeline/stages/completion.hh"
#include "pipeline/stages/dispatch.hh"
#include "pipeline/stages/fetch.hh"
#include "pipeline/stages/issue.hh"
#include "pipeline/stages/levt.hh"
#include "pipeline/stages/rename.hh"

namespace eole {

Stage *
StagePipeline::byName(const std::string &stage_name) const
{
    for (const auto &stage : stages) {
        if (stage_name == stage->name())
            return stage.get();
    }
    return nullptr;
}

void
StagePipeline::replace(const std::string &stage_name,
                       std::unique_ptr<Stage> replacement)
{
    fatal_if(stage_name != replacement->name(),
             "replacement stage reports name '%s', expected '%s'",
             replacement->name(), stage_name.c_str());
    for (auto &stage : stages) {
        if (stage_name != stage->name())
            continue;
        for (Stage *&sq : squashOrder) {
            if (sq == stage.get())
                sq = replacement.get();
        }
        stage = std::move(replacement);
        wire();
        return;
    }
    fatal("no stage named '%s' to replace", stage_name.c_str());
}

void
StagePipeline::wire()
{
    auto *commit = dynamic_cast<CommitStage *>(byName("commit"));
    if (commit)
        commit->setLevt(dynamic_cast<LevtStage *>(byName("levt")));
}

StagePipeline
buildDefaultPipeline(const SimConfig &cfg)
{
    StagePipeline p;

    auto completion = std::make_unique<CompletionStage>();
    // The LE/VT pre-commit stage exists only when it has work: used
    // predictions to validate/train (VP on) or µ-ops routed to Late
    // Execution.
    std::unique_ptr<LevtStage> levt;
    if (cfg.vpEnabled() || cfg.lateExec)
        levt = std::make_unique<LevtStage>(cfg);
    auto commit = std::make_unique<CommitStage>(cfg, levt.get());
    auto issue = std::make_unique<IssueStage>(cfg);
    auto dispatch = std::make_unique<DispatchStage>(cfg);
    auto rename = std::make_unique<RenameStage>(cfg);
    auto fetch = std::make_unique<FetchStage>(cfg);

    p.squashOrder = {rename.get(), commit.get(), issue.get(), fetch.get()};

    // Tick order: back of the pipeline first.
    p.stages.push_back(std::move(completion));
    if (levt)
        p.stages.push_back(std::move(levt));
    p.stages.push_back(std::move(commit));
    p.stages.push_back(std::move(issue));
    p.stages.push_back(std::move(dispatch));
    p.stages.push_back(std::move(rename));
    p.stages.push_back(std::move(fetch));
    return p;
}

} // namespace eole
