# Empty dependencies file for sample_validation.
# This may be replaced when dependencies are built.
