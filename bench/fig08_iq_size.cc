/**
 * Figure 8: EOLE and the VP baseline as the instruction-queue size
 * shrinks from 64 to 48 entries, normalized to Baseline_VP_6_64.
 *
 * Thin wrapper over the "fig08" plan; see `eole run fig08`.
 */
#include "bench_common.hh"

int
main()
{
    return eole::runFigure("fig08");
}
