
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpred/branch_unit.cc" "CMakeFiles/eole.dir/src/bpred/branch_unit.cc.o" "gcc" "CMakeFiles/eole.dir/src/bpred/branch_unit.cc.o.d"
  "/root/repo/src/bpred/tage.cc" "CMakeFiles/eole.dir/src/bpred/tage.cc.o" "gcc" "CMakeFiles/eole.dir/src/bpred/tage.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/eole.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/eole.dir/src/common/logging.cc.o.d"
  "/root/repo/src/isa/checkpoint.cc" "CMakeFiles/eole.dir/src/isa/checkpoint.cc.o" "gcc" "CMakeFiles/eole.dir/src/isa/checkpoint.cc.o.d"
  "/root/repo/src/isa/frozen_trace.cc" "CMakeFiles/eole.dir/src/isa/frozen_trace.cc.o" "gcc" "CMakeFiles/eole.dir/src/isa/frozen_trace.cc.o.d"
  "/root/repo/src/isa/functional.cc" "CMakeFiles/eole.dir/src/isa/functional.cc.o" "gcc" "CMakeFiles/eole.dir/src/isa/functional.cc.o.d"
  "/root/repo/src/isa/kernel_vm.cc" "CMakeFiles/eole.dir/src/isa/kernel_vm.cc.o" "gcc" "CMakeFiles/eole.dir/src/isa/kernel_vm.cc.o.d"
  "/root/repo/src/mem/cache.cc" "CMakeFiles/eole.dir/src/mem/cache.cc.o" "gcc" "CMakeFiles/eole.dir/src/mem/cache.cc.o.d"
  "/root/repo/src/pipeline/core.cc" "CMakeFiles/eole.dir/src/pipeline/core.cc.o" "gcc" "CMakeFiles/eole.dir/src/pipeline/core.cc.o.d"
  "/root/repo/src/pipeline/core_stats.cc" "CMakeFiles/eole.dir/src/pipeline/core_stats.cc.o" "gcc" "CMakeFiles/eole.dir/src/pipeline/core_stats.cc.o.d"
  "/root/repo/src/pipeline/pipeline_state.cc" "CMakeFiles/eole.dir/src/pipeline/pipeline_state.cc.o" "gcc" "CMakeFiles/eole.dir/src/pipeline/pipeline_state.cc.o.d"
  "/root/repo/src/pipeline/stages/commit.cc" "CMakeFiles/eole.dir/src/pipeline/stages/commit.cc.o" "gcc" "CMakeFiles/eole.dir/src/pipeline/stages/commit.cc.o.d"
  "/root/repo/src/pipeline/stages/completion.cc" "CMakeFiles/eole.dir/src/pipeline/stages/completion.cc.o" "gcc" "CMakeFiles/eole.dir/src/pipeline/stages/completion.cc.o.d"
  "/root/repo/src/pipeline/stages/dispatch.cc" "CMakeFiles/eole.dir/src/pipeline/stages/dispatch.cc.o" "gcc" "CMakeFiles/eole.dir/src/pipeline/stages/dispatch.cc.o.d"
  "/root/repo/src/pipeline/stages/fetch.cc" "CMakeFiles/eole.dir/src/pipeline/stages/fetch.cc.o" "gcc" "CMakeFiles/eole.dir/src/pipeline/stages/fetch.cc.o.d"
  "/root/repo/src/pipeline/stages/issue.cc" "CMakeFiles/eole.dir/src/pipeline/stages/issue.cc.o" "gcc" "CMakeFiles/eole.dir/src/pipeline/stages/issue.cc.o.d"
  "/root/repo/src/pipeline/stages/levt.cc" "CMakeFiles/eole.dir/src/pipeline/stages/levt.cc.o" "gcc" "CMakeFiles/eole.dir/src/pipeline/stages/levt.cc.o.d"
  "/root/repo/src/pipeline/stages/pipeline_builder.cc" "CMakeFiles/eole.dir/src/pipeline/stages/pipeline_builder.cc.o" "gcc" "CMakeFiles/eole.dir/src/pipeline/stages/pipeline_builder.cc.o.d"
  "/root/repo/src/pipeline/stages/rename.cc" "CMakeFiles/eole.dir/src/pipeline/stages/rename.cc.o" "gcc" "CMakeFiles/eole.dir/src/pipeline/stages/rename.cc.o.d"
  "/root/repo/src/sim/artifact.cc" "CMakeFiles/eole.dir/src/sim/artifact.cc.o" "gcc" "CMakeFiles/eole.dir/src/sim/artifact.cc.o.d"
  "/root/repo/src/sim/bench.cc" "CMakeFiles/eole.dir/src/sim/bench.cc.o" "gcc" "CMakeFiles/eole.dir/src/sim/bench.cc.o.d"
  "/root/repo/src/sim/configs.cc" "CMakeFiles/eole.dir/src/sim/configs.cc.o" "gcc" "CMakeFiles/eole.dir/src/sim/configs.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "CMakeFiles/eole.dir/src/sim/experiment.cc.o" "gcc" "CMakeFiles/eole.dir/src/sim/experiment.cc.o.d"
  "/root/repo/src/sim/params.cc" "CMakeFiles/eole.dir/src/sim/params.cc.o" "gcc" "CMakeFiles/eole.dir/src/sim/params.cc.o.d"
  "/root/repo/src/sim/plan.cc" "CMakeFiles/eole.dir/src/sim/plan.cc.o" "gcc" "CMakeFiles/eole.dir/src/sim/plan.cc.o.d"
  "/root/repo/src/sim/planfile.cc" "CMakeFiles/eole.dir/src/sim/planfile.cc.o" "gcc" "CMakeFiles/eole.dir/src/sim/planfile.cc.o.d"
  "/root/repo/src/sim/plans.cc" "CMakeFiles/eole.dir/src/sim/plans.cc.o" "gcc" "CMakeFiles/eole.dir/src/sim/plans.cc.o.d"
  "/root/repo/src/sim/sample/sample.cc" "CMakeFiles/eole.dir/src/sim/sample/sample.cc.o" "gcc" "CMakeFiles/eole.dir/src/sim/sample/sample.cc.o.d"
  "/root/repo/src/sim/sweep.cc" "CMakeFiles/eole.dir/src/sim/sweep.cc.o" "gcc" "CMakeFiles/eole.dir/src/sim/sweep.cc.o.d"
  "/root/repo/src/sim/trace_cache.cc" "CMakeFiles/eole.dir/src/sim/trace_cache.cc.o" "gcc" "CMakeFiles/eole.dir/src/sim/trace_cache.cc.o.d"
  "/root/repo/src/vpred/fcm.cc" "CMakeFiles/eole.dir/src/vpred/fcm.cc.o" "gcc" "CMakeFiles/eole.dir/src/vpred/fcm.cc.o.d"
  "/root/repo/src/vpred/hybrid.cc" "CMakeFiles/eole.dir/src/vpred/hybrid.cc.o" "gcc" "CMakeFiles/eole.dir/src/vpred/hybrid.cc.o.d"
  "/root/repo/src/vpred/stride.cc" "CMakeFiles/eole.dir/src/vpred/stride.cc.o" "gcc" "CMakeFiles/eole.dir/src/vpred/stride.cc.o.d"
  "/root/repo/src/vpred/value_predictor.cc" "CMakeFiles/eole.dir/src/vpred/value_predictor.cc.o" "gcc" "CMakeFiles/eole.dir/src/vpred/value_predictor.cc.o.d"
  "/root/repo/src/vpred/vtage.cc" "CMakeFiles/eole.dir/src/vpred/vtage.cc.o" "gcc" "CMakeFiles/eole.dir/src/vpred/vtage.cc.o.d"
  "/root/repo/src/workloads/torture_gen.cc" "CMakeFiles/eole.dir/src/workloads/torture_gen.cc.o" "gcc" "CMakeFiles/eole.dir/src/workloads/torture_gen.cc.o.d"
  "/root/repo/src/workloads/workload_util.cc" "CMakeFiles/eole.dir/src/workloads/workload_util.cc.o" "gcc" "CMakeFiles/eole.dir/src/workloads/workload_util.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "CMakeFiles/eole.dir/src/workloads/workloads.cc.o" "gcc" "CMakeFiles/eole.dir/src/workloads/workloads.cc.o.d"
  "/root/repo/src/workloads/workloads_fp.cc" "CMakeFiles/eole.dir/src/workloads/workloads_fp.cc.o" "gcc" "CMakeFiles/eole.dir/src/workloads/workloads_fp.cc.o.d"
  "/root/repo/src/workloads/workloads_int.cc" "CMakeFiles/eole.dir/src/workloads/workloads_int.cc.o" "gcc" "CMakeFiles/eole.dir/src/workloads/workloads_int.cc.o.d"
  "/root/repo/src/workloads/workloads_int2.cc" "CMakeFiles/eole.dir/src/workloads/workloads_int2.cc.o" "gcc" "CMakeFiles/eole.dir/src/workloads/workloads_int2.cc.o.d"
  "/root/repo/src/workloads/workloads_micro.cc" "CMakeFiles/eole.dir/src/workloads/workloads_micro.cc.o" "gcc" "CMakeFiles/eole.dir/src/workloads/workloads_micro.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
