#include "bpred/tage.hh"

#include <cmath>

#include "common/logging.hh"

namespace eole {

Tage::Tage(const TageConfig &config, std::uint64_t seed)
    : cfg(config), useAltOnNa(4, 0), rng(seed)
{
    panic_if(cfg.numTagged < 1 || cfg.numTagged > TageLookup::maxComps,
             "unsupported number of tagged components %d", cfg.numTagged);

    // Geometric history lengths from minHist to maxHist.
    histLens.resize(cfg.numTagged);
    const double ratio = cfg.numTagged > 1
        ? std::pow(double(cfg.maxHist) / cfg.minHist,
                   1.0 / (cfg.numTagged - 1))
        : 1.0;
    double len = cfg.minHist;
    int prev = 0;
    for (int i = 0; i < cfg.numTagged; ++i) {
        int l = static_cast<int>(len + 0.5);
        if (l <= prev)
            l = prev + 1;
        histLens[i] = l;
        prev = l;
        len *= ratio;
    }

    tagged.assign(cfg.numTagged,
                  std::vector<TaggedEntry>(1u << cfg.taggedLog2Entries));
    for (auto &comp : tagged) {
        for (auto &e : comp)
            e.ctr = SignedSatCounter(cfg.ctrBits, 0);
    }
    base.assign(1u << cfg.baseLog2Entries, SignedSatCounter(2, 0));
}

std::vector<std::pair<int, int>>
Tage::foldSpecs() const
{
    // Per component: one index fold and two tag folds (widths tagBits
    // and tagBits-1, the classic PPM-like tag hash).
    std::vector<std::pair<int, int>> specs;
    for (int i = 0; i < cfg.numTagged; ++i) {
        specs.emplace_back(histLens[i], cfg.taggedLog2Entries);
        specs.emplace_back(histLens[i], cfg.tagBits);
        specs.emplace_back(histLens[i], cfg.tagBits - 1);
    }
    return specs;
}

std::uint32_t
Tage::baseIndex(Addr pc) const
{
    return static_cast<std::uint32_t>(pc >> 2)
        & ((1u << cfg.baseLog2Entries) - 1);
}

std::uint32_t
Tage::taggedIndex(Addr pc, const GlobalHistory &hist,
                  std::size_t fold_base, int comp) const
{
    const std::uint32_t p = static_cast<std::uint32_t>(pc >> 2);
    const std::uint32_t h = hist.folded(fold_base + 3 * comp);
    return (p ^ (p >> (cfg.taggedLog2Entries - comp % 4)) ^ h)
        & ((1u << cfg.taggedLog2Entries) - 1);
}

std::uint16_t
Tage::taggedTag(Addr pc, const GlobalHistory &hist, std::size_t fold_base,
                int comp) const
{
    const std::uint32_t p = static_cast<std::uint32_t>(pc >> 2);
    const std::uint32_t h1 = hist.folded(fold_base + 3 * comp + 1);
    const std::uint32_t h2 = hist.folded(fold_base + 3 * comp + 2);
    return static_cast<std::uint16_t>((p ^ h1 ^ (h2 << 1))
                                      & ((1u << cfg.tagBits) - 1));
}

bool
Tage::predict(Addr pc, const GlobalHistory &hist, std::size_t fold_base,
              TageLookup &out)
{
    out = TageLookup{};
    out.baseIdx = baseIndex(pc);

    for (int i = 0; i < cfg.numTagged; ++i) {
        out.idx[i] = taggedIndex(pc, hist, fold_base, i);
        out.tag[i] = taggedTag(pc, hist, fold_base, i);
    }

    // Longest-history hit is the provider; next hit is the alternate.
    for (int i = cfg.numTagged - 1; i >= 0; --i) {
        if (tagged[i][out.idx[i]].tag == out.tag[i]) {
            if (out.provider < 0) {
                out.provider = i;
            } else {
                out.altProvider = i;
                break;
            }
        }
    }

    const bool base_pred = base[out.baseIdx].predictTaken();
    out.altPred = out.altProvider >= 0
        ? tagged[out.altProvider][out.idx[out.altProvider]].ctr
              .predictTaken()
        : base_pred;

    bool high_conf;
    if (out.provider >= 0) {
        const TaggedEntry &e = tagged[out.provider][out.idx[out.provider]];
        out.providerPred = e.ctr.predictTaken();
        // Newly-allocated (weak, not yet useful) entries may be
        // bypassed in favour of the alternate prediction.
        out.usedAlt = useAltOnNa.predictTaken() && e.ctr.isWeak()
            && e.u == 0;
        out.predTaken = out.usedAlt ? out.altPred : out.providerPred;
        // Storage-free confidence: saturated provider counter, not
        // overridden by the alternate prediction path.
        high_conf = !out.usedAlt && e.ctr.isSaturated();
    } else {
        out.predTaken = base_pred;
        high_conf = base[out.baseIdx].isSaturated();
    }
    out.highConf = high_conf;
    return out.predTaken;
}

void
Tage::update(Addr pc, bool taken, const TageLookup &lookup)
{
    (void)pc;
    ++updates;

    // Periodic graceful reset of useful bits (alternating halves).
    if (updates % cfg.uResetPeriod == 0) {
        const std::uint8_t mask = (updates / cfg.uResetPeriod) % 2 ? 1 : 2;
        for (auto &comp : tagged) {
            for (auto &e : comp)
                e.u &= mask;
        }
    }

    const bool mispredicted = lookup.predTaken != taken;

    if (lookup.provider >= 0) {
        TaggedEntry &e = tagged[lookup.provider][lookup.idx[lookup.provider]];
        // use_alt_on_na bias update: did bypassing (or not) pay off?
        if (e.ctr.isWeak() && e.u == 0
            && lookup.providerPred != lookup.altPred) {
            useAltOnNa.update(lookup.altPred == taken);
        }
        e.ctr.update(taken);
        if (lookup.providerPred != lookup.altPred) {
            if (lookup.providerPred == taken) {
                if (e.u < ((1u << cfg.uBits) - 1))
                    ++e.u;
            } else {
                if (e.u > 0)
                    --e.u;
            }
        }
    } else {
        base[lookup.baseIdx].update(taken);
    }

    // Allocate a new entry in a longer-history component on a
    // misprediction (provider counter update alone was insufficient).
    if (mispredicted && lookup.provider < cfg.numTagged - 1) {
        const int start = lookup.provider + 1;
        // Find allocation candidates (u == 0).
        int candidates = 0;
        for (int i = start; i < cfg.numTagged; ++i) {
            if (tagged[i][lookup.idx[i]].u == 0)
                ++candidates;
        }
        if (candidates == 0) {
            // Nothing allocatable: age all would-be victims instead.
            for (int i = start; i < cfg.numTagged; ++i) {
                TaggedEntry &e = tagged[i][lookup.idx[i]];
                if (e.u > 0)
                    --e.u;
            }
            return;
        }
        // Pick, with geometric bias toward shorter histories: skip a
        // candidate with probability 1/2 (standard TAGE allocation).
        int chosen = -1;
        for (int i = start; i < cfg.numTagged; ++i) {
            if (tagged[i][lookup.idx[i]].u != 0)
                continue;
            chosen = i;
            if (rng.below(2) == 0)
                break;
        }
        TaggedEntry &e = tagged[chosen][lookup.idx[chosen]];
        e.tag = lookup.tag[chosen];
        e.ctr.reset(taken ? 0 : -1);
        e.u = 0;
    }
}

void
Tage::snapshotState(std::ostream &os) const
{
    SnapshotWriter w(os);
    w.tag("tage")
        .u64(static_cast<std::uint64_t>(cfg.numTagged))
        .u64(tagged.empty() ? 0 : tagged[0].size())
        .u64(base.size())
        .u64(updates);
    w.end();
    for (int i = 0; i < cfg.numTagged; ++i) {
        w.tag("tage.comp").u64(static_cast<std::uint64_t>(i));
        for (const TaggedEntry &e : tagged[i])
            w.u64(e.tag).i64(e.ctr.value()).u64(e.u);
        w.end();
    }
    w.tag("tage.base");
    for (const SignedSatCounter &c : base)
        w.i64(c.value());
    w.end();
    w.tag("tage.meta").i64(useAltOnNa.value());
    w.end();
    w.tag("tage.rng");
    for (int i = 0; i < Rng::stateWords; ++i)
        w.u64(rng.word(i));
    w.end();
}

void
Tage::restoreState(SnapshotReader &r)
{
    r.line("tage");
    r.fatalIf(r.u64("numTagged")
                  != static_cast<std::uint64_t>(cfg.numTagged),
              "TAGE component-count mismatch");
    r.fatalIf(r.u64("taggedEntries")
                  != (tagged.empty() ? 0 : tagged[0].size()),
              "TAGE tagged-table size mismatch");
    r.fatalIf(r.u64("baseEntries") != base.size(),
              "TAGE base-table size mismatch");
    updates = r.u64("updates");
    r.endLine();
    for (int i = 0; i < cfg.numTagged; ++i) {
        r.line("tage.comp");
        r.fatalIf(r.u64("comp") != static_cast<std::uint64_t>(i),
                  "TAGE components out of order");
        const std::uint64_t tag_max = (1u << cfg.tagBits) - 1;
        const std::uint64_t u_max = (1u << cfg.uBits) - 1;
        for (TaggedEntry &e : tagged[i]) {
            e.tag = static_cast<std::uint16_t>(r.u64Max("tag", tag_max));
            const std::int64_t c = r.i64("ctr");
            r.fatalIf(c < e.ctr.min() || c > e.ctr.max(),
                      "TAGE counter out of range");
            e.ctr.reset(static_cast<int>(c));
            e.u = static_cast<std::uint8_t>(r.u64Max("u", u_max));
        }
        r.endLine();
    }
    r.line("tage.base");
    for (SignedSatCounter &c : base) {
        const std::int64_t v = r.i64("ctr");
        r.fatalIf(v < c.min() || v > c.max(),
                  "TAGE base counter out of range");
        c.reset(static_cast<int>(v));
    }
    r.endLine();
    r.line("tage.meta");
    const std::int64_t alt = r.i64("useAltOnNa");
    r.fatalIf(alt < useAltOnNa.min() || alt > useAltOnNa.max(),
              "useAltOnNa out of range");
    useAltOnNa.reset(static_cast<int>(alt));
    r.endLine();
    r.line("tage.rng");
    for (int i = 0; i < Rng::stateWords; ++i)
        rng.setWord(i, r.u64("word"));
    r.endLine();
}

} // namespace eole
