#include "common/build_info.hh"

// CMake defines these on this source file only; the fallbacks keep
// non-CMake compiles (e.g. tooling that parses the TU) working.
#ifndef EOLE_GIT_DESCRIBE
#define EOLE_GIT_DESCRIBE "unknown"
#endif
#ifndef EOLE_COMPILER_ID
#define EOLE_COMPILER_ID "unknown"
#endif
#ifndef EOLE_COMPILER_VERSION
#define EOLE_COMPILER_VERSION "0"
#endif
#ifndef EOLE_BUILD_TYPE
#define EOLE_BUILD_TYPE "unknown"
#endif

namespace eole {

const BuildInfo &
buildInfo()
{
    static const BuildInfo info{
        EOLE_GIT_DESCRIBE,
        EOLE_COMPILER_ID,
        EOLE_COMPILER_VERSION,
        EOLE_BUILD_TYPE,
    };
    return info;
}

const std::string &
buildInfoString()
{
    static const std::string s = std::string(EOLE_GIT_DESCRIBE) + " " +
                                 EOLE_COMPILER_ID "-" EOLE_COMPILER_VERSION
                                 " " EOLE_BUILD_TYPE;
    return s;
}

} // namespace eole
