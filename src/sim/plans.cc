#include "sim/plans.hh"

#include <map>

#include "common/fuzzy.hh"
#include "common/logging.hh"
#include "sim/configs.hh"
#include "sim/params.hh"
#include "workloads/workload.hh"

namespace eole {
namespace plans {

namespace {

std::vector<std::string>
names(std::initializer_list<SimConfig> cfgs)
{
    std::vector<std::string> out;
    for (const SimConfig &c : cfgs)
        out.push_back(c.name);
    return out;
}

// Every config variant below is a named base plus string-keyed
// overrides through the parameter registry (deriveConfig,
// sim/params.hh) — the same path `eole run --set` and plan files use,
// so the registry provably carries the paper's whole figure set (the
// byte-identical-artifact regression in tests/test_params.cc pins it).

ExperimentPlan
fig02()
{
    const SimConfig one = deriveConfig(configs::eole(6, 64),
                                       "EE_1stage", {});
    const SimConfig two = deriveConfig(configs::eole(6, 64),
                                       "EE_2stages", {{"eeStages", "2"}});

    ExperimentPlan p;
    p.name = "fig02";
    p.description = "early-executable fraction, 1 vs 2 ALU stages";
    p.configs = {one, two};
    p.workloads = workloads::allNames();
    p.tables = {{"Fraction of committed u-ops early-executed (Fig 2)",
                 "ee_frac", names({one, two}), ""}};
    return p;
}

ExperimentPlan
fig04()
{
    const SimConfig cfg = configs::eole(6, 64);

    ExperimentPlan p;
    p.name = "fig04";
    p.description =
        "late-executable fraction (high-conf branches + predicted)";
    p.configs = {cfg};
    p.workloads = workloads::allNames();
    p.tables = {
        {"High-confidence branches late-executed (Fig 4, bottom)",
         "le_br_frac", {cfg.name}, ""},
        {"Value-predicted u-ops late-executed (Fig 4, top)", "le_alu_frac",
         {cfg.name}, ""},
        {"Total late-executed fraction (Fig 4)", "le_frac", {cfg.name}, ""},
        {"Total OoO-engine offload incl. EE (end of §3.4)", "offload_frac",
         {cfg.name}, ""},
    };
    return p;
}

ExperimentPlan
fig06()
{
    const SimConfig base = configs::baseline(6, 64);
    const SimConfig vp = configs::baselineVp(6, 64);

    ExperimentPlan p;
    p.name = "fig06";
    p.description = "value-prediction speedup over Baseline_6_64";
    p.configs = {base, vp};
    p.workloads = workloads::allNames();
    p.tables = {
        {"Speedup of VTAGE-2DStride VP over Baseline_6_64 (Fig 6)", "ipc",
         {vp.name}, base.name},
        {"VP coverage (used / eligible)", "vp_coverage", {vp.name}, ""},
        {"VP accuracy on used predictions", "vp_accuracy", {vp.name}, ""},
    };
    return p;
}

ExperimentPlan
fig07()
{
    const SimConfig ref = configs::baselineVp(6, 64);
    const SimConfig bvp4 = configs::baselineVp(4, 64);
    const SimConfig eole4 = configs::eole(4, 64);
    const SimConfig eole6 = configs::eole(6, 64);

    ExperimentPlan p;
    p.name = "fig07";
    p.description = "issue-width sensitivity of EOLE vs baseline";
    p.configs = {ref, bvp4, eole4, eole6};
    p.workloads = workloads::allNames();
    p.tables = {
        {"Speedup over Baseline_VP_6_64 (Fig 7)", "ipc",
         names({bvp4, eole4, eole6}), ref.name},
        {"OoO offload fraction (context)", "offload_frac",
         names({eole4, eole6}), ""},
    };
    return p;
}

ExperimentPlan
fig08()
{
    const SimConfig ref = configs::baselineVp(6, 64);
    const SimConfig bvp48 = configs::baselineVp(6, 48);
    const SimConfig eole48 = configs::eole(6, 48);
    const SimConfig eole64 = configs::eole(6, 64);

    ExperimentPlan p;
    p.name = "fig08";
    p.description = "IQ-size sensitivity of EOLE vs baseline";
    p.configs = {ref, bvp48, eole48, eole64};
    p.workloads = workloads::allNames();
    p.tables = {
        {"Speedup over Baseline_VP_6_64 (Fig 8)", "ipc",
         names({bvp48, eole48, eole64}), ref.name},
        {"Average IQ occupancy (context)", "avg_iq_occupancy",
         names({ref, eole48, eole64}), ""},
    };
    return p;
}

ExperimentPlan
fig10()
{
    const SimConfig ref = configs::eole(4, 64);  // 1 bank
    const SimConfig b2 = configs::eoleBanked(4, 64, 2);
    const SimConfig b4 = configs::eoleBanked(4, 64, 4);
    const SimConfig b8 = configs::eoleBanked(4, 64, 8);

    ExperimentPlan p;
    p.name = "fig10";
    p.description = "PRF banking (allocation imbalance) cost";
    p.configs = {ref, b2, b4, b8};
    p.workloads = workloads::allNames();
    p.tables = {
        {"Speedup over single-bank EOLE_4_64 (Fig 10)", "ipc",
         names({b2, b4, b8}), ref.name},
        {"Rename bank stalls (context)", "rename_bank_stalls",
         names({b2, b4, b8}), ""},
    };
    return p;
}

ExperimentPlan
fig11()
{
    const SimConfig ref = configs::eole(4, 64);  // unconstrained
    const SimConfig p2 = configs::eoleConstrained(4, 64, 4, 2);
    const SimConfig p3 = configs::eoleConstrained(4, 64, 4, 3);
    const SimConfig p4 = configs::eoleConstrained(4, 64, 4, 4);

    ExperimentPlan p;
    p.name = "fig11";
    p.description = "LE/VT read-port constraint cost";
    p.configs = {ref, p2, p3, p4};
    p.workloads = workloads::allNames();
    p.tables = {
        {"Speedup over unconstrained EOLE_4_64 (Fig 11)", "ipc",
         names({p2, p3, p4}), ref.name},
        {"Commit port stalls (context)", "commit_port_stalls",
         names({p2, p3, p4}), ""},
    };
    return p;
}

ExperimentPlan
fig12()
{
    const SimConfig ref = configs::baselineVp(6, 64);
    const SimConfig base = configs::baseline(6, 64);
    const SimConfig eole4 = configs::eole(4, 64);
    const SimConfig real4 = configs::eoleConstrained(4, 64, 4, 4);

    ExperimentPlan p;
    p.name = "fig12";
    p.description = "overall EOLE result vs VP baseline";
    p.configs = {ref, base, eole4, real4};
    p.workloads = workloads::allNames();
    p.tables = {{"Speedup over Baseline_VP_6_64 (Fig 12)", "ipc",
                 names({base, eole4, real4}), ref.name}};
    return p;
}

ExperimentPlan
fig13()
{
    const SimConfig ref = configs::baselineVp(6, 64);
    const SimConfig full = configs::eoleConstrained(4, 64, 4, 4);
    const SimConfig le_only = configs::ole(4, 64, 4, 4);
    const SimConfig ee_only = configs::eoe(4, 64, 4, 4);

    ExperimentPlan p;
    p.name = "fig13";
    p.description = "EOLE vs OLE (LE only) vs EOE (EE only)";
    p.configs = {ref, full, le_only, ee_only};
    p.workloads = workloads::allNames();
    p.tables = {
        {"Speedup over Baseline_VP_6_64 (Fig 13)", "ipc",
         names({full, le_only, ee_only}), ref.name},
        {"Offload fraction (context)", "offload_frac",
         names({full, le_only, ee_only}), ""},
    };
    return p;
}

ExperimentPlan
table3()
{
    const SimConfig base = configs::baseline(6, 64);

    ExperimentPlan p;
    p.name = "table3";
    p.description = "baseline per-benchmark IPC";
    p.configs = {base};
    p.workloads = workloads::allNames();
    p.tables = {
        {"Baseline_6_64 IPC (Table 3)", "ipc", {base.name}, ""},
        {"Branch MPKI (context)", "branch_mpki", {base.name}, ""},
    };
    return p;
}

ExperimentPlan
ablFpc()
{
    const SimConfig base = configs::baseline(6, 64);

    const SimConfig plain =
        deriveConfig(configs::baselineVp(6, 64), "FPC_plain3bit",
                     {{"vp.fpcVector", "1,1,1,1,1,1,1"}});

    const SimConfig paper =
        deriveConfig(configs::baselineVp(6, 64), "FPC_paper", {});

    // 1/64 = 0.015625 and 1/128 = 0.0078125 are exact binary fractions,
    // so the decimal spellings reproduce the old doubles bit-for-bit.
    const SimConfig strict =
        deriveConfig(configs::baselineVp(6, 64), "FPC_strict",
                     {{"vp.fpcVector",
                       "1,0.015625,0.015625,0.015625,0.015625,"
                       "0.0078125,0.0078125"}});

    ExperimentPlan p;
    p.name = "abl_fpc";
    p.description = "FPC probability-vector sweep";
    p.configs = {base, plain, paper, strict};
    p.workloads = workloads::allNames();
    const std::vector<std::string> cols = names({plain, paper, strict});
    p.tables = {
        {"Speedup over Baseline_6_64 by FPC vector", "ipc", cols,
         base.name},
        {"Value-misprediction squashes (per run)", "vp_squashes", cols,
         ""},
        {"Coverage by FPC vector", "vp_coverage", cols, ""},
    };
    return p;
}

ExperimentPlan
ablPredictors()
{
    const SimConfig base = configs::baseline(6, 64);

    ExperimentPlan p;
    p.name = "abl_predictors";
    p.description = "value-predictor family comparison";
    p.configs = {base};
    const std::pair<const char *, const char *> kinds[] = {
        {"LVP", "VP_LVP"},
        {"Stride", "VP_Stride"},
        {"2D-Stride", "VP_2DStride"},
        {"FCM", "VP_FCM"},
        {"VTAGE", "VP_VTAGE"},
        {"VTAGE-2DStride", "VP_Hybrid"},
    };
    std::vector<std::string> cols;
    for (const auto &[kind, name] : kinds) {
        p.configs.push_back(deriveConfig(configs::baselineVp(6, 64),
                                         name, {{"vp.kind", kind}}));
        cols.emplace_back(name);
    }
    p.workloads = workloads::allNames();
    p.tables = {
        {"Speedup over Baseline_6_64 by predictor", "ipc", cols,
         base.name},
        {"Coverage (used/eligible) by predictor", "vp_coverage", cols, ""},
        {"Accuracy on used predictions by predictor", "vp_accuracy", cols,
         ""},
    };
    return p;
}

ExperimentPlan
smoke()
{
    const SimConfig base = configs::baseline(6, 64);
    const SimConfig eole4 = configs::eole(4, 64);

    ExperimentPlan p;
    p.name = "smoke";
    p.description = "tiny 2x2 grid for CI, demos and determinism tests";
    p.configs = {base, eole4};
    p.workloads = {"164.gzip", "186.crafty"};
    p.tables = {
        {"IPC (smoke)", "ipc", names({base, eole4}), ""},
        {"Speedup over Baseline_6_64 (smoke)", "ipc", {eole4.name},
         base.name},
    };
    return p;
}

using Builder = ExperimentPlan (*)();

const std::vector<std::pair<std::string, Builder>> &
registry()
{
    static const std::vector<std::pair<std::string, Builder>> reg = {
        {"fig02", fig02},
        {"fig04", fig04},
        {"fig06", fig06},
        {"fig07", fig07},
        {"fig08", fig08},
        {"fig10", fig10},
        {"fig11", fig11},
        {"fig12", fig12},
        {"fig13", fig13},
        {"table3", table3},
        {"abl_fpc", ablFpc},
        {"abl_predictors", ablPredictors},
        {"smoke", smoke},
    };
    return reg;
}

} // namespace

const std::vector<std::string> &
allNames()
{
    static const std::vector<std::string> all = [] {
        std::vector<std::string> out;
        for (const auto &[name, builder] : registry())
            out.push_back(name);
        return out;
    }();
    return all;
}

bool
exists(const std::string &name)
{
    for (const auto &[n, builder] : registry()) {
        if (n == name)
            return true;
    }
    return false;
}

ExperimentPlan
get(const std::string &name)
{
    for (const auto &[n, builder] : registry()) {
        if (n == name)
            return builder();
    }
    fatal("unknown plan \"%s\"%s (try `eole list`)", name.c_str(),
          didYouMean(closestMatches(name, allNames())).c_str());
}

} // namespace plans
} // namespace eole
