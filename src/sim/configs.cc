#include "sim/configs.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "sim/params.hh"
#include "sim/plans.hh"

namespace eole {
namespace configs {

namespace {

std::string
nameOf(const char *kind, int issue_width, int iq_entries)
{
    return csprintf("%s_%d_%d", kind, issue_width, iq_entries);
}

/** Set-by-key through the parameter registry. Every named config is
 *  built this way, so the string API provably carries the paper's
 *  whole figure set (the golden-artifact regression pins it). */
void
set(SimConfig &c, const char *key, const std::string &value)
{
    ParamRegistry::instance().set(c, key, value);
}

void
setWidth(SimConfig &c, int issue_width, int iq_entries)
{
    set(c, "issueWidth", std::to_string(issue_width));
    set(c, "iqEntries", std::to_string(iq_entries));
    // The ALU rank tracks issue width (a narrower OoO engine has fewer
    // ALUs and a smaller bypass, §6.1); other FU pools are unchanged.
    set(c, "numAlu", std::to_string(issue_width));
}

} // namespace

SimConfig
baseline(int issue_width, int iq_entries)
{
    SimConfig c;
    setWidth(c, issue_width, iq_entries);
    set(c, "name", nameOf("Baseline", issue_width, iq_entries));
    return c;
}

SimConfig
baselineVp(int issue_width, int iq_entries)
{
    SimConfig c = baseline(issue_width, iq_entries);
    set(c, "name", nameOf("Baseline_VP", issue_width, iq_entries));
    set(c, "vp.kind", "VTAGE-2DStride");
    return c;
}

SimConfig
eole(int issue_width, int iq_entries)
{
    SimConfig c = baselineVp(issue_width, iq_entries);
    set(c, "name", nameOf("EOLE", issue_width, iq_entries));
    set(c, "earlyExec", "true");
    set(c, "lateExec", "true");
    return c;
}

SimConfig
eoleBanked(int issue_width, int iq_entries, int banks)
{
    SimConfig c = eole(issue_width, iq_entries);
    set(c, "name", c.name + csprintf("_%dbanks", banks));
    set(c, "prfBanks", std::to_string(banks));
    return c;
}

SimConfig
eoleConstrained(int issue_width, int iq_entries, int banks,
                int levt_read_ports, int ee_write_ports)
{
    SimConfig c = eoleBanked(issue_width, iq_entries, banks);
    set(c, "name", nameOf("EOLE", issue_width, iq_entries)
        + csprintf("_%dports_%dbanks", levt_read_ports, banks));
    set(c, "levtReadPortsPerBank", std::to_string(levt_read_ports));
    set(c, "eeWritePortsPerBank", std::to_string(ee_write_ports));
    return c;
}

SimConfig
ole(int issue_width, int iq_entries, int banks, int levt_read_ports)
{
    SimConfig c = eoleConstrained(issue_width, iq_entries, banks,
                                  levt_read_ports);
    set(c, "name", nameOf("OLE", issue_width, iq_entries)
        + csprintf("_%dports_%dbanks", levt_read_ports, banks));
    set(c, "earlyExec", "false");
    return c;
}

SimConfig
eoe(int issue_width, int iq_entries, int banks, int levt_read_ports)
{
    SimConfig c = eoleConstrained(issue_width, iq_entries, banks,
                                  levt_read_ports);
    set(c, "name", nameOf("EOE", issue_width, iq_entries)
        + csprintf("_%dports_%dbanks", levt_read_ports, banks));
    set(c, "lateExec", "false");
    return c;
}

// ---------------------- name -> config resolution ------------------------

namespace {

/** Parse a strictly positive int from @p tok; 0 on failure. */
int
intToken(const std::string &tok)
{
    if (tok.empty())
        return 0;
    char *end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (end != tok.c_str() + tok.size() || v <= 0 || v > 1 << 20)
        return 0;
    return static_cast<int>(v);
}

/** Parse "<n><suffix>" (e.g. "4ports", "2banks"); 0 on failure. */
int
suffixedToken(const std::string &tok, const char *suffix)
{
    const std::string suf = suffix;
    if (tok.size() <= suf.size()
        || tok.compare(tok.size() - suf.size(), suf.size(), suf) != 0)
        return 0;
    return intToken(tok.substr(0, tok.size() - suf.size()));
}

/** The paper naming scheme, <kind>_<issue>_<iq>[_constraints]. */
bool
parseSchemeName(const std::string &name, SimConfig *out)
{
    std::vector<std::string> tok;
    std::size_t pos = 0;
    while (pos <= name.size()) {
        std::size_t us = name.find('_', pos);
        if (us == std::string::npos)
            us = name.size();
        tok.push_back(name.substr(pos, us - pos));
        pos = us + 1;
    }

    std::size_t i = 0;
    const std::string kind = tok[i++];
    const bool vp = i < tok.size() && tok[i] == "VP";
    if (vp)
        ++i;
    if (i + 1 >= tok.size())
        return false;
    const int width = intToken(tok[i]);
    const int iq = intToken(tok[i + 1]);
    if (width == 0 || iq == 0)
        return false;
    i += 2;

    if (kind == "Baseline" && i == tok.size()) {
        *out = vp ? baselineVp(width, iq) : baseline(width, iq);
        return true;
    }
    if (vp || (kind != "EOLE" && kind != "OLE" && kind != "EOE"))
        return false;
    if (i == tok.size()) {
        // Plain OLE_/EOE_ without constraints is not a paper config.
        if (kind != "EOLE")
            return false;
        *out = eole(width, iq);
        return true;
    }
    if (i + 1 == tok.size() && kind == "EOLE") {
        const int banks = suffixedToken(tok[i], "banks");
        if (banks == 0)
            return false;
        *out = eoleBanked(width, iq, banks);
        return true;
    }
    if (i + 2 == tok.size()) {
        const int ports = suffixedToken(tok[i], "ports");
        const int banks = suffixedToken(tok[i + 1], "banks");
        if (ports == 0 || banks == 0)
            return false;
        if (kind == "EOLE")
            *out = eoleConstrained(width, iq, banks, ports);
        else if (kind == "OLE")
            *out = ole(width, iq, banks, ports);
        else
            *out = eoe(width, iq, banks, ports);
        return true;
    }
    return false;
}

} // namespace

bool
findNamed(const std::string &name, SimConfig *out)
{
    if (parseSchemeName(name, out))
        return true;
    for (const std::string &plan_name : plans::allNames()) {
        const ExperimentPlan plan = plans::get(plan_name);
        for (const SimConfig &c : plan.configs) {
            if (c.name == name) {
                *out = c;
                return true;
            }
        }
    }
    return false;
}

std::vector<std::string>
knownNames()
{
    std::vector<std::string> out;
    for (const std::string &plan_name : plans::allNames()) {
        const ExperimentPlan plan = plans::get(plan_name);
        for (const SimConfig &c : plan.configs) {
            bool seen = false;
            for (const std::string &n : out)
                seen = seen || n == c.name;
            if (!seen)
                out.push_back(c.name);
        }
    }
    return out;
}

} // namespace configs
} // namespace eole
