#!/usr/bin/env bash
# CI entrypoint: tier-1 verify (configure + build + ctest) with short
# run lengths so the experiment grids finish in CI time, plus a
# plan-file smoke lane (a tiny grid via `--plan` + `--set`, verified
# byte-identical to the equivalent compiled-in plan). The run-length
# env overrides are honoured by the sweep engine (see DESIGN.md §5/§7);
# tests that pin golden values use their own explicit run lengths and
# are unaffected.
#
# Usage: scripts/check.sh [--with-bench] [--bench] [--tsan] [--sample]
#                         [--shard] [--obs] [--trace]
#   --with-bench   also run the fig13 modularity bench (stage-swap
#                  self-check + the EOLE/OLE/EOE grid) on the short
#                  run lengths.
#   --bench        simulator-speed regression gate: run `eole bench`
#                  on a reduced budget and `--compare` against the
#                  newest committed BENCH_*.json trajectory file
#                  (by commit date, so the gate tracks the latest
#                  trajectory point instead of a hardcoded name),
#                  `--fail-below 0.8` (fail on a >20% geomean
#                  regression). The committed baseline was measured
#                  on the reference CI host; on other machines, or
#                  when the build is a Debug build, the gate demotes
#                  to a warning (set EOLE_BENCH_BASELINE to a
#                  locally-recorded artifact for a hard gate
#                  anywhere).
#   --shard        sharded-sweep lane: run the smoke plan as 3
#                  `eole shard` slices, `eole merge` them and require
#                  the merged artifact byte-identical to the
#                  single-host run; then run it twice against a fresh
#                  `--store` and require the warm re-run to report
#                  every cell cached (0 computed) with an artifact
#                  byte-identical to the cold one.
#   --obs          observability lane: pipetrace smoke (Kanata header
#                  + retire records on a real cell), proof that
#                  attaching --telemetry leaves the artifact
#                  byte-identical, an exit-2 run whose telemetry
#                  stream must terminate with run_aborted, and a
#                  3-shard sweep whose merged telemetry must summarize
#                  to the full cell set. The zero-cost-off speed claim
#                  is the --bench lane's job: tracer/profiler/telemetry
#                  hooks are compiled into the hot loop, so any
#                  disabled-path cost shows up there as a geomean
#                  regression.
#   --trace        on-disk trace lane: record a workload to an
#                  eole-trace-v1 file, validate it with `trace info`,
#                  run the same smoke cell from `file:` and from the
#                  live generator and require byte-identical
#                  artifacts; ingest a checked-in RV64I log and run a
#                  sweep over the resulting trace; and require the
#                  missing-`file:` path to exit 2 with a did-you-mean
#                  suggestion.
#   --tsan         additionally build with ThreadSanitizer
#                  (-DEOLE_TSAN=ON, build-tsan/) and run the sweep
#                  engine + torture + sampling suites under it, plus
#                  a checkpoint round-trip smoke (the warm-once
#                  differential test) exercising snapshot/restore on
#                  the worker pool.
#   --sample       additionally run the sampling lanes:
#                  (1) the sample_validation bench at a 1M-µop
#                  measure — full vs re-warm vs warm-once-restore,
#                  requiring restore >= 2x over PR 3's B=0 re-warming
#                  with bit-equal interval IPCs (paper-grade 5M-µop
#                  runs demonstrate larger wins);
#                  (2) a warm-once v2 lane: a sampled smoke run whose
#                  artifact must carry nonzero
#                  sample_restored_intervals (proof the restore path,
#                  not silent re-warming, produced the numbers), plus
#                  an `eole ckpt save`/`info` round trip;
#                  (3) the checkpoint/state suites (test_sample,
#                  test_ckpt_state, test_torture incl. the checkpoint
#                  fuzzer) under AddressSanitizer (-DEOLE_ASAN=ON,
#                  build-asan/). The suites also run in the default
#                  ctest pass with the standard per-suite timeout.
#
# Every ctest invocation runs with --timeout (EOLE_TEST_TIMEOUT,
# default 600 s per suite) so a hung worker thread fails CI instead of
# wedging it, and failures are propagated explicitly — they do not rely
# on `set -e` surviving future edits.
set -euo pipefail

cd "$(dirname "$0")/.."

export EOLE_WARMUP="${EOLE_WARMUP:-50000}"
export EOLE_INSTS="${EOLE_INSTS:-100000}"

JOBS="$(nproc 2>/dev/null || echo 4)"
TEST_TIMEOUT="${EOLE_TEST_TIMEOUT:-600}"

WITH_BENCH=0
WITH_SPEED_GATE=0
WITH_TSAN=0
WITH_SAMPLE=0
WITH_SHARD=0
WITH_OBS=0
WITH_TRACE=0
for arg in "$@"; do
    case "$arg" in
      --with-bench) WITH_BENCH=1 ;;
      --bench) WITH_SPEED_GATE=1 ;;
      --tsan) WITH_TSAN=1 ;;
      --sample) WITH_SAMPLE=1 ;;
      --shard) WITH_SHARD=1 ;;
      --obs) WITH_OBS=1 ;;
      --trace) WITH_TRACE=1 ;;
      *)
        echo "check.sh: unknown option '$arg'" >&2
        exit 2
        ;;
    esac
done

run_ctest() {
    local build_dir="$1"
    shift
    # Propagate the ctest exit code under -j explicitly. The per-test
    # TIMEOUT property (set from EOLE_TEST_TIMEOUT at configure time —
    # it overrides ctest's --timeout flag) bounds each suite so one
    # hung binary cannot wedge the run.
    if ! (cd "$build_dir" && ctest --output-on-failure -j "$JOBS" "$@");
    then
        echo "check.sh: ctest FAILED in $build_dir" >&2
        exit 1
    fi
}

cmake -B build -S . -DEOLE_TEST_TIMEOUT="$TEST_TIMEOUT"
cmake --build build -j "$JOBS"
run_ctest build

# Plan-file smoke lane: a tiny grid driven through `--plan` + `--set`
# must be byte-identical to the equivalent compiled-in plan with the
# same `--set` — the reflective-registry contract (DESIGN.md §9) that
# plan files and ad-hoc overrides are the same configs as compiled C++.
echo "check.sh: plan-file smoke lane"
cat > build/smoke.plan <<'EOF'
# The compiled-in smoke plan, expressed as data (examples/README.md).
plan = smoke
description = tiny 2x2 grid for CI, demos and determinism tests
configs = Baseline_6_64, EOLE_4_64
workloads = 164.gzip, 186.crafty
EOF
if ! ./build/eole run --plan build/smoke.plan --set bp.rasEntries=16 \
         --quiet --no-tables --out build/smoke.planfile.json; then
    echo "check.sh: plan-file run FAILED" >&2
    exit 1
fi
if ! ./build/eole run smoke --set bp.rasEntries=16 \
         --quiet --no-tables --out build/smoke.compiled.json; then
    echo "check.sh: compiled smoke run FAILED" >&2
    exit 1
fi
if ! cmp build/smoke.planfile.json build/smoke.compiled.json; then
    echo "check.sh: plan-file artifact differs from compiled plan" >&2
    exit 1
fi
echo "check.sh: plan-file artifact byte-identical to compiled plan"

if [[ "$WITH_BENCH" == 1 ]]; then
    ./build/fig13_modularity
fi

if [[ "$WITH_SPEED_GATE" == 1 ]]; then
    echo "check.sh: simulator-speed regression gate"
    # Baseline: EOLE_BENCH_BASELINE when set, else the newest committed
    # BENCH_*.json by commit date — the latest point of the trajectory,
    # so the gate never pins a stale (or deleted) artifact by name.
    BENCH_BASELINE="${EOLE_BENCH_BASELINE:-}"
    if [[ -n "$BENCH_BASELINE" && ! -f "$BENCH_BASELINE" ]]; then
        echo "check.sh: EOLE_BENCH_BASELINE=$BENCH_BASELINE does not" \
             "exist" >&2
        exit 2
    fi
    if [[ -z "$BENCH_BASELINE" ]]; then
        newest_ts=0
        # ls-files is sorted, so >= makes same-commit ties resolve to
        # the lexicographically last name — the newest snapshot when a
        # trajectory lands in one commit (baseline, pr6, ...).
        while IFS= read -r f; do
            ts="$(git log -1 --format=%ct -- "$f" 2>/dev/null || echo 0)"
            if [[ "${ts:-0}" -ge "$newest_ts" ]]; then
                newest_ts="$ts"
                BENCH_BASELINE="$f"
            fi
        done < <(git ls-files 'BENCH_*.json')
        if [[ -z "$BENCH_BASELINE" ]]; then
            echo "check.sh: no committed BENCH_*.json baseline found;" \
                 "record one with \`eole bench --out BENCH_<label>.json\`" \
                 "and commit it, or set EOLE_BENCH_BASELINE" >&2
            exit 2
        fi
        echo "check.sh: bench baseline $BENCH_BASELINE" \
             "(newest committed BENCH_*.json)"
    fi
    # Reduced budget: µops/sec is a rate, so a 200k-µop measurement is
    # comparable to the committed 1M-µop baseline, just noisier — which
    # is why the threshold is a full 20%.
    if ! ./build/eole bench --budget 200000 --warmup 20000 --reps 2 \
         --label ci --quiet --out build/bench_ci.json; then
        echo "check.sh: eole bench FAILED" >&2
        exit 1
    fi
    BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
                      build/CMakeCache.txt)"
    if [[ "$BUILD_TYPE" == "Debug" || -n "${EOLE_BENCH_SOFT:-}" ]]; then
        # Debug builds (or an explicitly soft run) report but never
        # fail: absolute µops/sec is meaningless without optimization.
        ./build/eole bench --compare "$BENCH_BASELINE" \
            build/bench_ci.json \
          || echo "check.sh: WARNING: bench below baseline" \
                  "(soft: build type '$BUILD_TYPE')" >&2
    elif ! ./build/eole bench --compare "$BENCH_BASELINE" \
           build/bench_ci.json --fail-below 0.8; then
        echo "check.sh: simulator speed regressed >20% vs" \
             "$BENCH_BASELINE" >&2
        exit 1
    fi
fi

if [[ "$WITH_SAMPLE" == 1 ]]; then
    echo "check.sh: sampled-vs-full validation lane"
    # 1M µ-ops, 2x target: long enough to amortize trace recording so
    # the wall-clock check means something, short enough for CI. The
    # bench requires at least one workload that is simultaneously
    # within its sampled CI, bit-equal between the restore and re-warm
    # paths, and >= 2x faster restored than re-warmed.
    if ! EOLE_WARMUP=50000 EOLE_INSTS=1000000 \
         EOLE_SAMPLE_MIN_SPEEDUP=2 ./build/sample_validation; then
        echo "check.sh: sample_validation FAILED" >&2
        exit 1
    fi

    echo "check.sh: warm-once v2 lane (restored-interval stat + ckpt CLI)"
    # The sampled artifact must prove the warm-once path ran: every
    # cell carries sample_restored_intervals, and none may be zero
    # (zero would mean the intervals silently fell back to
    # re-warming).
    if ! ./build/eole run smoke --sample 4:2000:1000 --quiet \
         --no-tables --out build/sample_v2.json; then
        echo "check.sh: sampled smoke run FAILED" >&2
        exit 1
    fi
    if ! grep -q '"sample_restored_intervals"' build/sample_v2.json \
       || grep -Eq '"sample_restored_intervals": 0(\.0+)?([,}]|$)' \
               build/sample_v2.json; then
        echo "check.sh: sampled artifact does not show the warm-once" \
             "path (sample_restored_intervals missing or zero)" >&2
        exit 1
    fi
    # ckpt save -> info round trip: every written v2 file must parse
    # with its sections intact.
    rm -rf build/ckpts
    if ! ./build/eole ckpt save smoke --sample 2:2000:1000 \
         --out build/ckpts --quiet; then
        echo "check.sh: eole ckpt save FAILED" >&2
        exit 1
    fi
    if ! ./build/eole ckpt info build/ckpts/*.ckpt \
         | grep -q 'eole-ckpt-v2.*sections.*branch'; then
        echo "check.sh: eole ckpt info round trip FAILED" >&2
        exit 1
    fi

    echo "check.sh: AddressSanitizer pass (checkpoint/state/slab suites)"
    # test_slab rides in this lane on purpose: the slab poisons free
    # slots under ASan, so a use-after-release of a pooled DynInst (e.g.
    # a completion-wheel handle dropped early) faults here.
    cmake -B build-asan -S . -DEOLE_ASAN=ON \
          -DEOLE_TEST_TIMEOUT="$TEST_TIMEOUT"
    cmake --build build-asan -j "$JOBS" \
          --target test_sample test_ckpt_state test_torture test_slab
    run_ctest build-asan \
        -R '^(test_sample|test_ckpt_state|test_torture|test_slab)$'
fi

if [[ "$WITH_SHARD" == 1 ]]; then
    echo "check.sh: sharded-sweep lane (3 shards + merge + store)"
    rm -rf build/shardlane
    mkdir -p build/shardlane
    if ! ./build/eole run smoke --quiet --no-tables \
         --out build/shardlane/single.json; then
        echo "check.sh: single-host smoke run FAILED" >&2
        exit 1
    fi
    for i in 0 1 2; do
        if ! ./build/eole shard smoke --hosts 3 --host "$i" --quiet \
             --out build/shardlane; then
            echo "check.sh: eole shard --host $i FAILED" >&2
            exit 1
        fi
    done
    if ! ./build/eole merge build/shardlane/smoke.shard*.eoleshard \
         --out build/shardlane/merged.json --quiet; then
        echo "check.sh: eole merge FAILED" >&2
        exit 1
    fi
    if ! cmp build/shardlane/single.json build/shardlane/merged.json;
    then
        echo "check.sh: merged shard artifact differs from the" \
             "single-host artifact" >&2
        exit 1
    fi
    echo "check.sh: merge of 3 shards byte-identical to single host"

    # Content-addressed store: a cold run computes every cell, a warm
    # re-run must compute none and still produce the same bytes.
    rm -rf build/shardlane/store
    if ! ./build/eole run smoke --quiet --no-tables \
         --store build/shardlane/store \
         --out build/shardlane/cold.json \
         2> build/shardlane/cold.err; then
        cat build/shardlane/cold.err >&2
        echo "check.sh: cold --store run FAILED" >&2
        exit 1
    fi
    if ! grep -q 'store .*: 0 cached, 4 computed' \
         build/shardlane/cold.err; then
        cat build/shardlane/cold.err >&2
        echo "check.sh: cold --store run did not compute all 4 cells" >&2
        exit 1
    fi
    if ! ./build/eole run smoke --quiet --no-tables \
         --store build/shardlane/store \
         --out build/shardlane/warm.json \
         2> build/shardlane/warm.err; then
        cat build/shardlane/warm.err >&2
        echo "check.sh: warm --store run FAILED" >&2
        exit 1
    fi
    if ! grep -q 'store .*: 4 cached, 0 computed' \
         build/shardlane/warm.err; then
        cat build/shardlane/warm.err >&2
        echo "check.sh: warm --store re-run recomputed cells (want" \
             "all 4 cached, 0 computed)" >&2
        exit 1
    fi
    if ! cmp build/shardlane/cold.json build/shardlane/warm.json; then
        echo "check.sh: warm-store artifact differs from cold" >&2
        exit 1
    fi
    if ! ./build/eole store ls build/shardlane/store \
         | grep -q '^4 object(s)'; then
        echo "check.sh: eole store ls does not show 4 objects" >&2
        exit 1
    fi
    echo "check.sh: warm store re-run served all 4 cells from cache," \
         "byte-identical"
fi

if [[ "$WITH_OBS" == 1 ]]; then
    echo "check.sh: observability lane (pipetrace + telemetry)"
    rm -rf build/obslane
    mkdir -p build/obslane

    # Pipetrace smoke: a real cell traced in Kanata form must carry the
    # format header and at least one retired record (Konata loads
    # exactly this shape).
    if ! ./build/eole run smoke --filter "EOLE_4_64/164.gzip" --quiet \
         --no-tables --pipetrace build/obslane/trace.kanata \
         --out build/obslane/traced.json; then
        echo "check.sh: --pipetrace run FAILED" >&2
        exit 1
    fi
    if ! head -1 build/obslane/trace.kanata | grep -q $'^Kanata\t0004$' \
       || ! grep -q $'^R\t' build/obslane/trace.kanata; then
        echo "check.sh: Kanata trace malformed (header or retire" \
             "records missing)" >&2
        exit 1
    fi

    # Observers never perturb results: the same cell without any
    # observer attached must produce a byte-identical artifact.
    if ! ./build/eole run smoke --filter "EOLE_4_64/164.gzip" --quiet \
         --no-tables --out build/obslane/plain.json; then
        echo "check.sh: plain comparison run FAILED" >&2
        exit 1
    fi
    if ! cmp build/obslane/traced.json build/obslane/plain.json; then
        echo "check.sh: --pipetrace changed the artifact" >&2
        exit 1
    fi
    if ! ./build/eole run smoke --quiet --no-tables \
         --telemetry build/obslane/run.jsonl \
         --out build/obslane/telem.json \
       || ! ./build/eole run smoke --quiet --no-tables \
            --out build/obslane/notelem.json \
       || ! cmp build/obslane/telem.json build/obslane/notelem.json; then
        echo "check.sh: --telemetry changed the artifact (or a run" \
             "FAILED)" >&2
        exit 1
    fi
    if ! tail -1 build/obslane/run.jsonl \
         | grep -q '"ev":"run_finish"'; then
        echo "check.sh: telemetry stream does not end with run_finish" >&2
        exit 1
    fi
    echo "check.sh: observers leave artifacts byte-identical"

    # Exit-2 paths must terminate the stream: a run that bails before
    # simulating still ends its telemetry with run_aborted.
    if ./build/eole run smoke --filter no_such_cell --quiet --no-tables \
         --telemetry build/obslane/aborted.jsonl 2>/dev/null; then
        echo "check.sh: filter-no-match run unexpectedly succeeded" >&2
        exit 1
    fi
    if ! tail -1 build/obslane/aborted.jsonl \
         | grep -q '"ev":"run_aborted"'; then
        echo "check.sh: exit-2 telemetry stream does not end with" \
             "run_aborted" >&2
        exit 1
    fi

    # Sharded telemetry: three per-shard streams summarize to the full
    # smoke cell set (2 configs x 2 workloads).
    for i in 0 1 2; do
        if ! ./build/eole shard smoke --hosts 3 --host "$i" --quiet \
             --telemetry "build/obslane/shard$i.jsonl" \
             --out build/obslane; then
            echo "check.sh: telemetry shard --host $i FAILED" >&2
            exit 1
        fi
    done
    ./build/eole telemetry summarize build/obslane/shard?.jsonl \
        > build/obslane/summary.txt
    for cell in Baseline_6_64/164.gzip Baseline_6_64/186.crafty \
                EOLE_4_64/164.gzip EOLE_4_64/186.crafty; do
        if ! grep -q "$cell" build/obslane/summary.txt; then
            cat build/obslane/summary.txt >&2
            echo "check.sh: merged telemetry summary is missing $cell" >&2
            exit 1
        fi
    done
    if ! grep -q 'cells (4)' build/obslane/summary.txt; then
        cat build/obslane/summary.txt >&2
        echo "check.sh: merged telemetry summary does not show 4" \
             "distinct cells" >&2
        exit 1
    fi
    echo "check.sh: 3-shard telemetry summarizes to the full cell set"
fi

if [[ "$WITH_TRACE" == 1 ]]; then
    echo "check.sh: on-disk trace lane (record / info / replay / ingest)"
    rm -rf build/tracelane
    mkdir -p build/tracelane

    # Record -> validate: the writer and the reader must agree on the
    # whole file (layout hash + SHA-256 footer), surfaced as the
    # info command's "checksum ok".
    if ! ./build/eole trace record torture:7 \
         --out build/tracelane/t7.trace --quiet; then
        echo "check.sh: eole trace record FAILED" >&2
        exit 1
    fi
    if ! ./build/eole trace info build/tracelane/t7.trace \
         | grep -Eq 'checksum +ok'; then
        echo "check.sh: eole trace info did not validate the recording" >&2
        exit 1
    fi

    # Replay guarantee: the same smoke grid over the file-backed
    # workload must produce the byte-identical artifact the live
    # generator does.
    if ! ./build/eole run smoke \
         --workloads file:build/tracelane/t7.trace --quiet --no-tables \
         --out build/tracelane/replayed.json; then
        echo "check.sh: file-backed smoke run FAILED" >&2
        exit 1
    fi
    if ! ./build/eole run smoke --workloads torture:7 --quiet \
         --no-tables --out build/tracelane/generated.json; then
        echo "check.sh: generated smoke run FAILED" >&2
        exit 1
    fi
    if ! cmp build/tracelane/replayed.json build/tracelane/generated.json;
    then
        echo "check.sh: file-backed artifact differs from the live" \
             "generator's" >&2
        exit 1
    fi
    echo "check.sh: trace replay byte-identical to the live generator"

    # RV64I ingestion: a checked-in committed-instruction log converts
    # into a runnable trace, and a sweep over it completes.
    if ! ./build/eole trace ingest tests/data/rv64/fib.rvlog \
         --out build/tracelane/fib.trace --quiet; then
        echo "check.sh: eole trace ingest FAILED" >&2
        exit 1
    fi
    if ! ./build/eole run smoke \
         --workloads file:build/tracelane/fib.trace --quiet --no-tables \
         --out build/tracelane/fib.json; then
        echo "check.sh: sweep over the ingested RV64I trace FAILED" >&2
        exit 1
    fi
    if ! grep -q '"rv64:fib"' build/tracelane/fib.json; then
        echo "check.sh: ingested-trace artifact does not carry the" \
             "embedded workload name" >&2
        exit 1
    fi
    echo "check.sh: RV64I log ingested and swept (rv64:fib)"

    # Missing-file diagnostics: a bad `file:` spec exits 2 and
    # suggests the sibling .trace files that do exist.
    set +e
    ./build/eole run smoke \
        --workloads file:build/tracelane/t8.trace --quiet --no-tables \
        2> build/tracelane/missing.err
    missing_rc=$?
    set -e
    if [[ "$missing_rc" != 2 ]]; then
        cat build/tracelane/missing.err >&2
        echo "check.sh: missing file: workload exited $missing_rc" \
             "(want 2)" >&2
        exit 1
    fi
    if ! grep -q 'did you mean' build/tracelane/missing.err; then
        cat build/tracelane/missing.err >&2
        echo "check.sh: missing file: diagnostic lacks a did-you-mean" \
             "suggestion" >&2
        exit 1
    fi
    echo "check.sh: missing file: workload exits 2 with a suggestion"
fi

if [[ "$WITH_TSAN" == 1 ]]; then
    echo "check.sh: ThreadSanitizer pass (sweep engine + torture + ckpt)"
    cmake -B build-tsan -S . -DEOLE_TSAN=ON \
          -DEOLE_TEST_TIMEOUT="$TEST_TIMEOUT"
    cmake --build build-tsan -j "$JOBS" \
          --target test_experiment test_torture test_sample \
                   test_ckpt_state
    run_ctest build-tsan \
        -R '^(test_experiment|test_torture|test_sample|test_ckpt_state)$'
fi

echo "check.sh: OK (warmup=$EOLE_WARMUP, insts=$EOLE_INSTS," \
     "timeout=${TEST_TIMEOUT}s$([[ $WITH_TSAN == 1 ]] && echo ', tsan'))"
