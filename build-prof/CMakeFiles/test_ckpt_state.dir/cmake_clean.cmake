file(REMOVE_RECURSE
  "CMakeFiles/test_ckpt_state.dir/tests/test_ckpt_state.cc.o"
  "CMakeFiles/test_ckpt_state.dir/tests/test_ckpt_state.cc.o.d"
  "test_ckpt_state"
  "test_ckpt_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckpt_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
