/**
 * @file
 * Pure functional semantics of the µ-op ISA.
 *
 * Both the functional KernelVM and the timing simulator's execution
 * units call these helpers, so there is a single source of truth for
 * instruction semantics (the lockstep oracle check in the timing core
 * relies on this).
 */

#ifndef EOLE_ISA_FUNCTIONAL_HH
#define EOLE_ISA_FUNCTIONAL_HH

#include <bit>
#include <cstdint>

#include "isa/opcodes.hh"
#include "isa/static_inst.hh"

namespace eole {

inline double toDouble(RegVal v) { return std::bit_cast<double>(v); }
inline RegVal fromDouble(double d) { return std::bit_cast<RegVal>(d); }

/**
 * Compute the result of a non-memory, non-branch µ-op.
 *
 * @param opc the opcode
 * @param a value of src1 (0 if absent)
 * @param b value of src2 (0 if absent)
 * @param imm immediate operand
 * @return the 64-bit result (FP results bit-punned)
 */
RegVal execAlu(Opcode opc, RegVal a, RegVal b, std::int64_t imm);

/**
 * Evaluate a conditional branch.
 *
 * @return true if the branch is taken.
 */
bool evalCondBranch(Opcode opc, RegVal a, RegVal b);

/** Effective address of a load/store: base + immediate offset. */
inline Addr
effectiveAddr(RegVal base, std::int64_t imm)
{
    return base + static_cast<Addr>(imm);
}

} // namespace eole

#endif // EOLE_ISA_FUNCTIONAL_HH
