/**
 * @file
 * Fundamental scalar types shared by every module of the EOLE simulator.
 */

#ifndef EOLE_COMMON_TYPES_HH
#define EOLE_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace eole {

/** Byte address in the simulated memory space. */
using Addr = std::uint64_t;

/** Absolute cycle count since simulation start. */
using Cycle = std::uint64_t;

/** Dynamic instruction sequence number (monotonically increasing). */
using SeqNum = std::uint64_t;

/** Architectural or physical register index. */
using RegIndex = std::uint16_t;

/** 64-bit register value; FP values are stored bit-punned. */
using RegVal = std::uint64_t;

/** Sentinel for "no register". */
constexpr RegIndex invalidReg = std::numeric_limits<RegIndex>::max();

/** Sentinel for "no cycle scheduled". */
constexpr Cycle invalidCycle = std::numeric_limits<Cycle>::max();

/** Sentinel sequence number (greater than any real one). */
constexpr SeqNum invalidSeqNum = std::numeric_limits<SeqNum>::max();

/** Register file class. The paper renames INT and FP separately. */
enum class RegClass : std::uint8_t { Int = 0, Fp = 1 };

constexpr int numRegClasses = 2;

} // namespace eole

#endif // EOLE_COMMON_TYPES_HH
