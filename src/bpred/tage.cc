#include "bpred/tage.hh"

#include <cmath>

#include "common/logging.hh"

namespace eole {

Tage::Tage(const TageConfig &config, std::uint64_t seed)
    : cfg(config), useAltOnNa(4, 0), rng(seed)
{
    panic_if(cfg.numTagged < 1 || cfg.numTagged > TageLookup::maxComps,
             "unsupported number of tagged components %d", cfg.numTagged);

    // Geometric history lengths from minHist to maxHist.
    histLens.resize(cfg.numTagged);
    const double ratio = cfg.numTagged > 1
        ? std::pow(double(cfg.maxHist) / cfg.minHist,
                   1.0 / (cfg.numTagged - 1))
        : 1.0;
    double len = cfg.minHist;
    int prev = 0;
    for (int i = 0; i < cfg.numTagged; ++i) {
        int l = static_cast<int>(len + 0.5);
        if (l <= prev)
            l = prev + 1;
        histLens[i] = l;
        prev = l;
        len *= ratio;
    }

    tagged.assign(cfg.numTagged,
                  std::vector<TaggedEntry>(1u << cfg.taggedLog2Entries));
    for (auto &comp : tagged) {
        for (auto &e : comp)
            e.ctr = SignedSatCounter(cfg.ctrBits, 0);
    }
    base.assign(1u << cfg.baseLog2Entries, SignedSatCounter(2, 0));
}

std::vector<std::pair<int, int>>
Tage::foldSpecs() const
{
    // Per component: one index fold and two tag folds (widths tagBits
    // and tagBits-1, the classic PPM-like tag hash).
    std::vector<std::pair<int, int>> specs;
    for (int i = 0; i < cfg.numTagged; ++i) {
        specs.emplace_back(histLens[i], cfg.taggedLog2Entries);
        specs.emplace_back(histLens[i], cfg.tagBits);
        specs.emplace_back(histLens[i], cfg.tagBits - 1);
    }
    return specs;
}

std::uint32_t
Tage::baseIndex(Addr pc) const
{
    return static_cast<std::uint32_t>(pc >> 2)
        & ((1u << cfg.baseLog2Entries) - 1);
}

std::uint32_t
Tage::taggedIndex(Addr pc, const GlobalHistory &hist,
                  std::size_t fold_base, int comp) const
{
    const std::uint32_t p = static_cast<std::uint32_t>(pc >> 2);
    const std::uint32_t h = hist.folded(fold_base + 3 * comp);
    return (p ^ (p >> (cfg.taggedLog2Entries - comp % 4)) ^ h)
        & ((1u << cfg.taggedLog2Entries) - 1);
}

std::uint16_t
Tage::taggedTag(Addr pc, const GlobalHistory &hist, std::size_t fold_base,
                int comp) const
{
    const std::uint32_t p = static_cast<std::uint32_t>(pc >> 2);
    const std::uint32_t h1 = hist.folded(fold_base + 3 * comp + 1);
    const std::uint32_t h2 = hist.folded(fold_base + 3 * comp + 2);
    return static_cast<std::uint16_t>((p ^ h1 ^ (h2 << 1))
                                      & ((1u << cfg.tagBits) - 1));
}

bool
Tage::predict(Addr pc, const GlobalHistory &hist, std::size_t fold_base,
              TageLookup &out)
{
    out = TageLookup{};
    out.baseIdx = baseIndex(pc);

    for (int i = 0; i < cfg.numTagged; ++i) {
        out.idx[i] = taggedIndex(pc, hist, fold_base, i);
        out.tag[i] = taggedTag(pc, hist, fold_base, i);
    }

    // Longest-history hit is the provider; next hit is the alternate.
    for (int i = cfg.numTagged - 1; i >= 0; --i) {
        if (tagged[i][out.idx[i]].tag == out.tag[i]) {
            if (out.provider < 0) {
                out.provider = i;
            } else {
                out.altProvider = i;
                break;
            }
        }
    }

    const bool base_pred = base[out.baseIdx].predictTaken();
    out.altPred = out.altProvider >= 0
        ? tagged[out.altProvider][out.idx[out.altProvider]].ctr
              .predictTaken()
        : base_pred;

    bool high_conf;
    if (out.provider >= 0) {
        const TaggedEntry &e = tagged[out.provider][out.idx[out.provider]];
        out.providerPred = e.ctr.predictTaken();
        // Newly-allocated (weak, not yet useful) entries may be
        // bypassed in favour of the alternate prediction.
        out.usedAlt = useAltOnNa.predictTaken() && e.ctr.isWeak()
            && e.u == 0;
        out.predTaken = out.usedAlt ? out.altPred : out.providerPred;
        // Storage-free confidence: saturated provider counter, not
        // overridden by the alternate prediction path.
        high_conf = !out.usedAlt && e.ctr.isSaturated();
    } else {
        out.predTaken = base_pred;
        high_conf = base[out.baseIdx].isSaturated();
    }
    out.highConf = high_conf;
    return out.predTaken;
}

void
Tage::update(Addr pc, bool taken, const TageLookup &lookup)
{
    (void)pc;
    ++updates;

    // Periodic graceful reset of useful bits (alternating halves).
    if (updates % cfg.uResetPeriod == 0) {
        const std::uint8_t mask = (updates / cfg.uResetPeriod) % 2 ? 1 : 2;
        for (auto &comp : tagged) {
            for (auto &e : comp)
                e.u &= mask;
        }
    }

    const bool mispredicted = lookup.predTaken != taken;

    if (lookup.provider >= 0) {
        TaggedEntry &e = tagged[lookup.provider][lookup.idx[lookup.provider]];
        // use_alt_on_na bias update: did bypassing (or not) pay off?
        if (e.ctr.isWeak() && e.u == 0
            && lookup.providerPred != lookup.altPred) {
            useAltOnNa.update(lookup.altPred == taken);
        }
        e.ctr.update(taken);
        if (lookup.providerPred != lookup.altPred) {
            if (lookup.providerPred == taken) {
                if (e.u < ((1u << cfg.uBits) - 1))
                    ++e.u;
            } else {
                if (e.u > 0)
                    --e.u;
            }
        }
    } else {
        base[lookup.baseIdx].update(taken);
    }

    // Allocate a new entry in a longer-history component on a
    // misprediction (provider counter update alone was insufficient).
    if (mispredicted && lookup.provider < cfg.numTagged - 1) {
        const int start = lookup.provider + 1;
        // Find allocation candidates (u == 0).
        int candidates = 0;
        for (int i = start; i < cfg.numTagged; ++i) {
            if (tagged[i][lookup.idx[i]].u == 0)
                ++candidates;
        }
        if (candidates == 0) {
            // Nothing allocatable: age all would-be victims instead.
            for (int i = start; i < cfg.numTagged; ++i) {
                TaggedEntry &e = tagged[i][lookup.idx[i]];
                if (e.u > 0)
                    --e.u;
            }
            return;
        }
        // Pick, with geometric bias toward shorter histories: skip a
        // candidate with probability 1/2 (standard TAGE allocation).
        int chosen = -1;
        for (int i = start; i < cfg.numTagged; ++i) {
            if (tagged[i][lookup.idx[i]].u != 0)
                continue;
            chosen = i;
            if (rng.below(2) == 0)
                break;
        }
        TaggedEntry &e = tagged[chosen][lookup.idx[chosen]];
        e.tag = lookup.tag[chosen];
        e.ctr.reset(taken ? 0 : -1);
        e.u = 0;
    }
}

} // namespace eole
