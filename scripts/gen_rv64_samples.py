#!/usr/bin/env python3
"""Generate the checked-in RV64I sample logs in tests/data/rv64/.

A tiny RV64I assembler + functional emulator: each sample program is a
list of (mnemonic, operands...) tuples with symbolic labels. The script
assembles them to machine words, emulates the committed stream, and
writes one `pc insn` hex line per committed instruction — exactly the
log shape `eole trace ingest` consumes (DESIGN.md §13). The samples
deliberately stay inside the ingester's supported subset: no RVC, no
CSR/ECALL, no unsigned or word division, JALR only with imm=0 and
rd != rs1.

Regenerate (byte-stable) with:  python3 scripts/gen_rv64_samples.py
"""

import os
import sys

MASK64 = (1 << 64) - 1


def sext(v, bits):
    v &= (1 << bits) - 1
    return v - (1 << bits) if v & (1 << (bits - 1)) else v


# --- encoders ----------------------------------------------------------

def enc_r(f7, rs2, rs1, f3, rd, op):
    return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) \
        | (rd << 7) | op


def enc_i(imm, rs1, f3, rd, op):
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (f3 << 12) \
        | (rd << 7) | op


def enc_s(imm, rs2, rs1, f3, op):
    return (((imm >> 5) & 0x7F) << 25) | (rs2 << 20) | (rs1 << 15) \
        | (f3 << 12) | ((imm & 0x1F) << 7) | op


def enc_b(imm, rs2, rs1, f3):
    return (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25) \
        | (rs2 << 20) | (rs1 << 15) | (f3 << 12) \
        | (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7) | 0x63


def enc_u(imm, rd, op):
    return (imm & 0xFFFFF000) | (rd << 7) | op


def enc_j(imm, rd):
    return (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21) \
        | (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12) \
        | (rd << 7) | 0x6F


R_OPS = {  # mnemonic: (funct7, funct3, opcode)
    'add': (0x00, 0, 0x33), 'sub': (0x20, 0, 0x33),
    'sll': (0x00, 1, 0x33), 'slt': (0x00, 2, 0x33),
    'sltu': (0x00, 3, 0x33), 'xor': (0x00, 4, 0x33),
    'srl': (0x00, 5, 0x33), 'sra': (0x20, 5, 0x33),
    'or': (0x00, 6, 0x33), 'and': (0x00, 7, 0x33),
    'mul': (0x01, 0, 0x33),
    'addw': (0x00, 0, 0x3B), 'subw': (0x20, 0, 0x3B),
    'sllw': (0x00, 1, 0x3B), 'srlw': (0x00, 5, 0x3B),
    'sraw': (0x20, 5, 0x3B), 'mulw': (0x01, 0, 0x3B),
}
I_OPS = {
    'addi': (0, 0x13), 'slti': (2, 0x13), 'sltiu': (3, 0x13),
    'xori': (4, 0x13), 'ori': (6, 0x13), 'andi': (7, 0x13),
    'addiw': (0, 0x1B),
}
LOADS = {'lb': 0, 'lh': 1, 'lw': 2, 'ld': 3, 'lbu': 4, 'lhu': 5,
         'lwu': 6}
STORES = {'sb': 0, 'sh': 1, 'sw': 2, 'sd': 3}
BRANCHES = {'beq': 0, 'bne': 1, 'blt': 4, 'bge': 5, 'bltu': 6,
            'bgeu': 7}


def assemble(prog, base):
    """Resolve labels and return {pc: (word, decoded)} in layout order."""
    # Pass 1: addresses.
    addr = {}
    pc = base
    for ent in prog:
        if isinstance(ent, str):
            addr[ent] = pc
        else:
            pc += 4
    # Pass 2: encode.
    out = []
    pc = base
    for ent in prog:
        if isinstance(ent, str):
            continue
        m, a = ent[0], list(ent[1:])
        if m in R_OPS:
            f7, f3, op = R_OPS[m]
            word = enc_r(f7, a[1], a[2], f3, a[0], op)
        elif m in I_OPS:
            f3, op = I_OPS[m]
            word = enc_i(a[2], a[1], f3, a[0], op)
        elif m == 'slli':
            word = enc_i(a[2], a[1], 1, a[0], 0x13)
        elif m == 'srli':
            word = enc_i(a[2], a[1], 5, a[0], 0x13)
        elif m == 'srai':
            word = enc_i(0x400 | a[2], a[1], 5, a[0], 0x13)
        elif m == 'slliw':
            word = enc_i(a[2], a[1], 1, a[0], 0x1B)
        elif m == 'srliw':
            word = enc_i(a[2], a[1], 5, a[0], 0x1B)
        elif m == 'sraiw':
            word = enc_i(0x400 | a[2], a[1], 5, a[0], 0x1B)
        elif m in LOADS:
            word = enc_i(a[2], a[1], LOADS[m], a[0], 0x03)
        elif m in STORES:
            word = enc_s(a[2], a[0], a[1], STORES[m], 0x23)
        elif m in BRANCHES:
            word = enc_b(addr[a[2]] - pc, a[1], a[0], BRANCHES[m])
        elif m == 'lui':
            word = enc_u(a[1], a[0], 0x37)
        elif m == 'auipc':
            word = enc_u(a[1], a[0], 0x17)
        elif m == 'jal':
            word = enc_j(addr[a[1]] - pc, a[0])
        elif m == 'jalr':
            word = enc_i(0, a[1], 0, a[0], 0x67)
        else:
            raise ValueError('unknown mnemonic ' + m)
        out.append((pc, word & 0xFFFFFFFF, (m, a, pc)))
        pc += 4
    return out


def emulate(insts, base, max_lines=100000):
    """Run the assembled program, returning committed (pc, word) pairs.
    Execution stops when the pc falls off the end of the program."""
    by_pc = {pc: (word, dec) for pc, word, dec in insts}
    end = base + 4 * len(insts)
    x = [0] * 32
    mem = {}
    log = []
    pc = base

    def load(a, n, signed):
        v = 0
        for i in range(n):
            v |= mem.get(a + i, 0) << (8 * i)
        return sext(v, 8 * n) & MASK64 if signed else v

    def store(a, n, v):
        for i in range(n):
            mem[a + i] = (v >> (8 * i)) & 0xFF

    while pc != end:
        word, (m, a, _) = by_pc[pc]
        log.append((pc, word))
        if len(log) > max_lines:
            raise RuntimeError('runaway program')
        nxt = pc + 4

        def wr(r, v):
            if r != 0:
                x[r] = v & MASK64

        s = lambda r: sext(x[r], 64)
        if m in ('addi', 'addiw'):
            v = s(a[1]) + a[2]
            wr(a[0], sext(v, 32) if m == 'addiw' else v)
        elif m == 'slti':
            wr(a[0], 1 if s(a[1]) < a[2] else 0)
        elif m == 'sltiu':
            wr(a[0], 1 if x[a[1]] < (a[2] & MASK64) else 0)
        elif m == 'xori':
            wr(a[0], x[a[1]] ^ (a[2] & MASK64))
        elif m == 'ori':
            wr(a[0], x[a[1]] | (a[2] & MASK64))
        elif m == 'andi':
            wr(a[0], x[a[1]] & (a[2] & MASK64))
        elif m == 'slli':
            wr(a[0], x[a[1]] << a[2])
        elif m == 'srli':
            wr(a[0], x[a[1]] >> a[2])
        elif m == 'srai':
            wr(a[0], s(a[1]) >> a[2])
        elif m == 'slliw':
            wr(a[0], sext(x[a[1]] << a[2], 32))
        elif m == 'srliw':
            wr(a[0], sext((x[a[1]] & 0xFFFFFFFF) >> a[2], 32))
        elif m == 'sraiw':
            wr(a[0], sext(x[a[1]], 32) >> a[2])
        elif m in ('add', 'sub', 'sll', 'srl', 'sra', 'slt', 'sltu',
                   'xor', 'or', 'and', 'mul'):
            b, c = a[1], a[2]
            v = {'add': lambda: x[b] + x[c],
                 'sub': lambda: x[b] - x[c],
                 'sll': lambda: x[b] << (x[c] & 63),
                 'srl': lambda: x[b] >> (x[c] & 63),
                 'sra': lambda: s(b) >> (x[c] & 63),
                 'slt': lambda: 1 if s(b) < s(c) else 0,
                 'sltu': lambda: 1 if x[b] < x[c] else 0,
                 'xor': lambda: x[b] ^ x[c],
                 'or': lambda: x[b] | x[c],
                 'and': lambda: x[b] & x[c],
                 'mul': lambda: x[b] * x[c]}[m]()
            wr(a[0], v)
        elif m in ('addw', 'subw', 'mulw', 'sllw', 'srlw', 'sraw'):
            b, c = a[1], a[2]
            sh = x[c] & 31
            v = {'addw': lambda: x[b] + x[c],
                 'subw': lambda: x[b] - x[c],
                 'mulw': lambda: x[b] * x[c],
                 'sllw': lambda: x[b] << sh,
                 'srlw': lambda: (x[b] & 0xFFFFFFFF) >> sh,
                 'sraw': lambda: sext(x[b], 32) >> sh}[m]()
            wr(a[0], sext(v, 32))
        elif m == 'lui':
            wr(a[0], sext(a[1] & 0xFFFFF000, 32))
        elif m == 'auipc':
            wr(a[0], pc + sext(a[1] & 0xFFFFF000, 32))
        elif m in LOADS:
            n = 1 << (LOADS[m] & 3)
            wr(a[0], load((x[a[1]] + a[2]) & MASK64, n, LOADS[m] < 4))
        elif m in STORES:
            n = 1 << STORES[m]
            store((x[a[1]] + a[2]) & MASK64, n, x[a[0]])
        elif m in BRANCHES:
            b, c = a[0], a[1]
            take = {'beq': x[b] == x[c], 'bne': x[b] != x[c],
                    'blt': s(b) < s(c), 'bge': s(b) >= s(c),
                    'bltu': x[b] < x[c],
                    'bgeu': x[b] >= x[c]}[m]
            if take:
                nxt = pc + (enc_b_target(word, pc))
        elif m == 'jal':
            wr(a[0], pc + 4)
            nxt = pc + enc_j_target(word)
        elif m == 'jalr':
            t = x[a[1]] & ~1 & MASK64
            wr(a[0], pc + 4)
            nxt = t
        else:
            raise ValueError(m)
        pc = nxt
    return log


def enc_b_target(word, pc):
    imm = (((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11) \
        | (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1)
    return sext(imm, 13)


def enc_j_target(word):
    imm = (((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12) \
        | (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1)
    return sext(imm, 21)


# --- sample programs ---------------------------------------------------

BASE = 0x80000000

# fib: 40 iterations of the Fibonacci recurrence mod 2^64, repeated
# over 8 outer rounds mixing the result back in — pure ALU + branches.
FIB = [
    ('addi', 10, 0, 0),      # x10 = acc
    ('addi', 20, 0, 8),      # outer counter
    'outer',
    ('addi', 5, 0, 0),       # f0
    ('addi', 6, 0, 1),       # f1
    ('addi', 7, 0, 40),      # inner counter
    'fib',
    ('add', 8, 5, 6),
    ('add', 5, 0, 6),        # f0 = f1  (add x5, x0, x6)
    ('add', 6, 0, 8),        # f1 = f
    ('addi', 7, 7, -1),
    ('bne', 7, 0, 'fib'),
    ('xor', 10, 10, 6),      # mix
    ('addi', 20, 20, -1),
    ('bne', 20, 0, 'outer'),
]

# memsum: fill a 64-entry array with addi/sd, then a sum(base, n)
# function called 6 times via jal/jalr — loads, stores, call/ret.
MEMSUM = [
    ('lui', 2, 0x10000),     # x2 = array base 0x10000000
    ('addi', 5, 0, 0),       # i
    ('addi', 6, 0, 64),
    ('add', 7, 0, 2),        # cursor
    'fill',
    ('mul', 8, 5, 5),        # i*i
    ('sd', 8, 7, 0),
    ('addi', 7, 7, 8),
    ('addi', 5, 5, 1),
    ('blt', 5, 6, 'fill'),
    ('addi', 20, 0, 6),      # call counter
    ('addi', 10, 0, 0),      # acc
    'again',
    ('add', 11, 0, 2),       # arg0: base
    ('addi', 12, 0, 64),     # arg1: n
    ('jal', 1, 'sum'),
    ('add', 10, 10, 13),
    ('addi', 20, 20, -1),
    ('bne', 20, 0, 'again'),
    ('jal', 0, 'done'),
    'sum',                   # x13 = sum of x12 doublewords at x11
    ('addi', 13, 0, 0),
    ('add', 14, 0, 11),
    ('add', 15, 0, 12),
    'sumloop',
    ('ld', 16, 14, 0),
    ('add', 13, 13, 16),
    ('addi', 14, 14, 8),
    ('addi', 15, 15, -1),
    ('bne', 15, 0, 'sumloop'),
    ('jalr', 0, 1),          # ret
    'done',
]

# bitops: W-arithmetic, LUI/AUIPC data addressing, variable shifts,
# sltiu, and sub-word loads/stores over a scratch buffer.
BITOPS = [
    ('auipc', 2, 0x100),     # scratch buffer, pc-relative
    ('lui', 5, 0xDEAD1),
    ('addi', 5, 5, 0x7BE),
    ('addi', 20, 0, 48),     # rounds
    ('addi', 21, 0, 0),      # acc
    'round',
    ('andi', 6, 20, 31),     # variable shift amount
    ('sllw', 7, 5, 6),
    ('srlw', 8, 5, 6),
    ('sraw', 9, 5, 6),
    ('xor', 7, 7, 8),
    ('add', 7, 7, 9),
    ('addiw', 7, 7, 0x35),
    ('subw', 7, 7, 20),
    ('mulw', 7, 7, 5),
    ('slliw', 8, 7, 3),
    ('sraiw', 8, 8, 2),
    ('sltiu', 9, 8, 0x400),  # unsigned immediate compare
    ('add', 21, 21, 9),
    ('sw', 7, 2, 0),         # word store / signed halfword load back
    ('lh', 9, 2, 0),
    ('add', 21, 21, 9),
    ('sb', 7, 2, 4),
    ('lbu', 9, 2, 4),
    ('xor', 21, 21, 9),
    ('srai', 5, 5, 1),
    ('add', 5, 5, 21),
    ('addi', 20, 20, -1),
    ('bne', 20, 0, 'round'),
]

SAMPLES = [
    ('fib.rvlog', FIB, [],
     'Iterative Fibonacci, 8 rounds of 40: pure ALU + branch traffic.'),
    ('memsum.rvlog', MEMSUM, [],
     'Fill a 64-entry array, then sum it 6 times through a jal/jalr '
     'function: loads, stores and call/return flow.'),
    ('bitops.rvlog', BITOPS, [],
     'W-arithmetic, variable shifts, sltiu and sub-word memory over a '
     'scratch buffer.'),
]


def main():
    out_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, 'tests', 'data', 'rv64')
    os.makedirs(out_dir, exist_ok=True)
    for name, prog, seeds, desc in SAMPLES:
        insts = assemble(prog, BASE)
        log = emulate(insts, BASE)
        path = os.path.join(out_dir, name)
        with open(path, 'w') as f:
            f.write('# %s\n' % desc)
            f.write('# generated by scripts/gen_rv64_samples.py; '
                    'regenerate rather than editing\n')
            for directive in seeds:
                f.write(directive + '\n')
            for pc, word in log:
                f.write('%x %08x\n' % (pc, word))
        print('%s: %d static insts, %d committed lines'
              % (os.path.relpath(path), len(insts), len(log)))


if __name__ == '__main__':
    sys.exit(main())
