/**
 * @file
 * WarmableComponent: the update-only interface behind functional
 * warming (SMARTS-style sampling, sim/sample/).
 *
 * A warmable component consumes the architecturally-correct committed
 * µ-op stream in order and updates its *predictive* state — predictor
 * tables, histories, cache tags/LRU — without any timing simulation.
 * Streaming a trace prefix through the warmable components of a core
 * puts its substrate close to where a full detailed run would have
 * left it, at a small fraction of the cost; a short detailed warmup
 * then absorbs the residual transient (pipeline occupancy, in-flight
 * predictor instances). See DESIGN.md §8 for the exact fidelity
 * contract of each implementor.
 *
 * Warmed state is *serializable*: snapshotState() writes the complete
 * predictive state (tables, histories, LRU/row/bus state, the warming
 * pseudo-clock and every RNG) as canonical byte-stable text, and
 * restoreState() rebuilds it into a same-geometry instance such that
 * the restored component's future decisions are identical to the
 * original's (pinned by tests/test_ckpt_state.cc). That makes warmed
 * state a first-class artifact: the sampling subsystem warms each
 * (config, workload) cell once and feeds every measurement interval
 * from "eole-ckpt-v2" checkpoints (isa/checkpoint.hh, sim/sample/)
 * instead of re-warming N prefixes, and later sharding PRs can ship
 * checkpoint directories across hosts (`eole ckpt save`).
 *
 * Implementors: BranchUnit (bpred/), ValuePredictor (vpred/),
 * MemHierarchy (mem/).
 */

#ifndef EOLE_ISA_WARMABLE_HH
#define EOLE_ISA_WARMABLE_HH

#include <iosfwd>

#include "isa/trace.hh"

namespace eole {

class WarmableComponent
{
  public:
    virtual ~WarmableComponent() = default;

    /**
     * Observe one µ-op of the committed stream (called in program
     * order) and update internal predictive state only. Must be
     * deterministic: warming the same stream twice from the same
     * initial state yields identical component state.
     */
    virtual void warmUpdate(const TraceUop &uop) = 0;

    /**
     * Serialize the complete predictive state as canonical text
     * (isa/snapshot.hh): writing the same state twice yields identical
     * bytes, and statistics counters are excluded (they are
     * measurement state, zeroed by Core::resetTiming before any
     * measured window opens).
     */
    virtual void snapshotState(std::ostream &os) const = 0;

    /**
     * Rebuild state from a snapshotState() document into an instance
     * of the *same configured geometry* (fatal, with the section name
     * and line number, on geometry mismatch or any malformed/truncated
     * input). Afterwards the component is decision-for-decision
     * identical to the snapshotted one.
     */
    virtual void restoreState(std::istream &is) = 0;
};

} // namespace eole

#endif // EOLE_ISA_WARMABLE_HH
