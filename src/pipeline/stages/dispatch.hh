/**
 * @file
 * Dispatch stage: ROB/IQ/LSQ allocation.
 *
 * Moves renamed µ-ops into the out-of-order window. Early-Execution
 * results and used value predictions are written to the PRF here,
 * consuming the constrained EE write ports (§6.3); early-executed and
 * late-executable µ-ops bypass the IQ entirely.
 */

#ifndef EOLE_PIPELINE_STAGES_DISPATCH_HH
#define EOLE_PIPELINE_STAGES_DISPATCH_HH

#include "pipeline/stages/stage.hh"
#include "sim/config.hh"

namespace eole {

class DispatchStage : public Stage
{
  public:
    explicit DispatchStage(const SimConfig &cfg);

    const char *name() const override { return "dispatch"; }
    void tick(PipelineState &st) override;
    void resetStats() override;
    void addStats(CoreStats &out) const override;

  private:
    struct Stats
    {
        std::uint64_t dispatchPortStalls = 0;
        std::uint64_t robFullStalls = 0;
        std::uint64_t iqFullStalls = 0;
        std::uint64_t dispatchedToIQ = 0;
    };

    int dispatchWidth;
    int iqEntries;

    Stats s;
};

} // namespace eole

#endif // EOLE_PIPELINE_STAGES_DISPATCH_HH
