/**
 * Figure 13: modularity of EOLE. Full EOLE vs OLE (Late Execution
 * only) vs EOE (Early Execution only), each 4-issue with a 4-bank PRF
 * and 4 LE/VT read ports, normalized to Baseline_VP_6_64.
 */
#include "bench_common.hh"

using namespace eole;

int
main()
{
    announce("Fig 13", "EOLE vs OLE (LE only) vs EOE (EE only)");

    const SimConfig ref = configs::baselineVp(6, 64);
    const SimConfig full = configs::eoleConstrained(4, 64, 4, 4);
    const SimConfig le_only = configs::ole(4, 64, 4, 4);
    const SimConfig ee_only = configs::eoe(4, 64, 4, 4);
    const auto &names = workloads::allNames();
    const auto results = runGrid({ref, full, le_only, ee_only}, names);

    printTable("Speedup over Baseline_VP_6_64 (Fig 13)", results,
               {full.name, le_only.name, ee_only.name}, names, "ipc",
               ref.name);
    printTable("Offload fraction (context)", results,
               {full.name, le_only.name, ee_only.name}, names,
               "offload_frac");
    return 0;
}
