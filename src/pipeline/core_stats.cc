#include "pipeline/core_stats.hh"

namespace eole {

StatRecord
CoreStats::record() const
{
    StatRecord r;
    r.add("cycles", double(cycles));
    r.add("committed_uops", double(committedUops));
    r.add("ipc", ipc());
    r.add("cond_branches", double(condBranches));
    r.add("branch_mispredicts", double(branchMispredicts));
    r.add("branch_mpki", ratio(1000.0 * double(branchMispredicts),
                               double(committedUops)));
    r.add("high_conf_branches", double(highConfBranches));
    r.add("high_conf_mispredicts", double(highConfMispredicts));
    r.add("btb_miss_bubbles", double(btbMissBubbles));
    r.add("vp_eligible", double(vpEligible));
    r.add("vp_used", double(vpPredictionsUsed));
    r.add("vp_correct_used", double(vpCorrectUsed));
    r.add("vp_accuracy", ratio(double(vpCorrectUsed),
                               double(vpPredictionsUsed)));
    r.add("vp_coverage", ratio(double(vpPredictionsUsed),
                               double(vpEligible)));
    r.add("vp_squashes", double(vpMispredictSquashes));
    r.add("early_executed", double(earlyExecuted));
    r.add("late_executed_alu", double(lateExecutedAlu));
    r.add("late_executed_branches", double(lateExecutedBranches));
    r.add("ee_frac", ratio(double(earlyExecuted), double(committedUops)));
    r.add("le_alu_frac", ratio(double(lateExecutedAlu),
                               double(committedUops)));
    r.add("le_br_frac", ratio(double(lateExecutedBranches),
                              double(committedUops)));
    r.add("le_frac", ratio(double(lateExecutedAlu + lateExecutedBranches),
                           double(committedUops)));
    r.add("offload_frac",
          ratio(double(earlyExecuted + lateExecutedAlu
                       + lateExecutedBranches),
                double(committedUops)));
    r.add("loads", double(loads));
    r.add("stores", double(stores));
    r.add("stl_forwards", double(storeToLoadForwards));
    r.add("mem_order_violations", double(memOrderViolations));
    r.add("rename_bank_stalls", double(renameBankStalls));
    r.add("dispatch_port_stalls", double(dispatchPortStalls));
    r.add("commit_port_stalls", double(commitPortStalls));
    r.add("rob_full_stalls", double(robFullStalls));
    r.add("iq_full_stalls", double(iqFullStalls));
    r.add("avg_iq_occupancy", ratio(double(iqOccupancySum),
                                    double(cycles)));
    r.add("dispatched_to_iq", double(dispatchedToIQ));
    return r;
}

} // namespace eole
