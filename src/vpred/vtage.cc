#include "vpred/vtage.hh"

#include "common/logging.hh"

namespace eole {

Vtage::Vtage(const VpConfig &config, std::uint64_t seed)
    : cfg(config),
      fpc(config.fpcVector.empty() ? Fpc::paperVector() : config.fpcVector),
      rng(seed)
{
    panic_if(cfg.vtageNumTagged < 1
                 || cfg.vtageNumTagged > VpLookup::maxComps - 1,
             "unsupported VTAGE component count %d", cfg.vtageNumTagged);

    // Geometric histories doubling from minHist to maxHist.
    histLens.resize(cfg.vtageNumTagged);
    int len = cfg.vtageMinHist;
    for (int i = 0; i < cfg.vtageNumTagged; ++i) {
        histLens[i] = len;
        len = len < cfg.vtageMaxHist ? len * 2 : len + 1;
    }

    base.assign(1u << cfg.vtageBaseLog2Entries, BaseEntry{});
    tagged.assign(cfg.vtageNumTagged,
                  std::vector<TaggedEntry>(
                      1u << cfg.vtageTaggedLog2Entries));
}

int
Vtage::tagBitsOf(int comp) const
{
    // Tags are 12 + rank bits, rank 1 for the shortest history.
    const int bits = cfg.vtageTagBits + comp + 1;
    return bits > 15 ? 15 : bits;
}

std::vector<std::pair<int, int>>
Vtage::foldSpecs() const
{
    std::vector<std::pair<int, int>> specs;
    for (int i = 0; i < cfg.vtageNumTagged; ++i) {
        specs.emplace_back(histLens[i], cfg.vtageTaggedLog2Entries);
        specs.emplace_back(histLens[i], tagBitsOf(i));
        specs.emplace_back(histLens[i], tagBitsOf(i) - 1);
    }
    return specs;
}

void
Vtage::bindHistory(const GlobalHistory &h, std::size_t fold_base)
{
    hist = &h;
    foldBase = fold_base;
}

std::uint32_t
Vtage::baseIndex(Addr pc) const
{
    return static_cast<std::uint32_t>(pc >> 2)
        & ((1u << cfg.vtageBaseLog2Entries) - 1);
}

std::uint32_t
Vtage::taggedIndex(Addr pc, int comp) const
{
    const std::uint32_t p = static_cast<std::uint32_t>(pc >> 2);
    const std::uint32_t h = hist->folded(foldBase + 3 * comp);
    return (p ^ (p >> (1 + comp)) ^ h)
        & ((1u << cfg.vtageTaggedLog2Entries) - 1);
}

std::uint16_t
Vtage::taggedTag(Addr pc, int comp) const
{
    const std::uint32_t p = static_cast<std::uint32_t>(pc >> 2);
    const std::uint32_t h1 = hist->folded(foldBase + 3 * comp + 1);
    const std::uint32_t h2 = hist->folded(foldBase + 3 * comp + 2);
    return static_cast<std::uint16_t>(
        (p ^ (p >> 5) ^ h1 ^ (h2 << 1))
        & ((1u << tagBitsOf(comp)) - 1));
}

VpLookup
Vtage::predict(Addr pc)
{
    panic_if(hist == nullptr, "VTAGE history not bound");

    VpLookup l;
    l.idx[0] = baseIndex(pc);
    for (int i = 0; i < cfg.vtageNumTagged; ++i) {
        l.idx[i + 1] = taggedIndex(pc, i);
        l.tag[i + 1] = taggedTag(pc, i);
    }

    // Longest matching tagged component provides; next hit (or the
    // base) is the alternate.
    for (int i = cfg.vtageNumTagged - 1; i >= 0; --i) {
        const TaggedEntry &e = tagged[i][l.idx[i + 1]];
        if (e.valid && e.tag == l.tag[i + 1]) {
            if (l.provider < 0) {
                l.provider = i;
            } else {
                l.altProvider = i;
                break;
            }
        }
    }

    if (l.provider >= 0) {
        const TaggedEntry &e = tagged[l.provider][l.idx[l.provider + 1]];
        l.predictionMade = true;
        l.value = e.value;
        l.confident = fpc.saturated(e.conf);
        l.altValue = l.altProvider >= 0
            ? tagged[l.altProvider][l.idx[l.altProvider + 1]].value
            : base[l.idx[0]].value;
    } else {
        const BaseEntry &b = base[l.idx[0]];
        l.predictionMade = true;
        l.value = b.value;
        l.confident = fpc.saturated(b.conf);
        l.altValue = b.value;
    }
    return l;
}

void
Vtage::commit(Addr pc, RegVal actual, const VpLookup &lookup)
{
    (void)pc;
    const bool correct = lookup.value == actual;

    if (lookup.provider >= 0) {
        TaggedEntry &e = tagged[lookup.provider][lookup.idx[lookup.provider
                                                            + 1]];
        fpc.update(e.conf, correct, rng);
        if (correct) {
            if (lookup.altValue != actual)
                e.u = 1;
        } else {
            // Replace the value only once confidence has drained.
            if (e.conf == 0)
                e.value = actual;
            e.u = 0;
        }
    } else {
        BaseEntry &b = base[lookup.idx[0]];
        fpc.update(b.conf, correct, rng);
        if (!correct && b.conf == 0)
            b.value = actual;
    }

    // ITTAGE-style allocation in a longer-history component on a
    // misprediction.
    if (!correct && lookup.provider < cfg.vtageNumTagged - 1) {
        const int start = lookup.provider + 1;
        bool any_free = false;
        for (int i = start; i < cfg.vtageNumTagged; ++i) {
            if (tagged[i][lookup.idx[i + 1]].u == 0) {
                any_free = true;
                break;
            }
        }
        if (!any_free) {
            for (int i = start; i < cfg.vtageNumTagged; ++i)
                tagged[i][lookup.idx[i + 1]].u = 0;
            return;
        }
        // Pick among free slots with geometric bias toward shorter
        // histories (probability 1/2 to stop at each candidate).
        int chosen = -1;
        for (int i = start; i < cfg.vtageNumTagged; ++i) {
            if (tagged[i][lookup.idx[i + 1]].u != 0)
                continue;
            chosen = i;
            if (rng.below(2) == 0)
                break;
        }
        TaggedEntry &e = tagged[chosen][lookup.idx[chosen + 1]];
        e.valid = true;
        e.tag = lookup.tag[chosen + 1];
        e.value = actual;
        e.conf = 0;
        e.u = 0;
    }
}

void
Vtage::snapshotState(std::ostream &os) const
{
    SnapshotWriter w(os);
    w.tag("vtage")
        .u64(1)
        .u64(base.size())
        .u64(static_cast<std::uint64_t>(cfg.vtageNumTagged))
        .u64(tagged.empty() ? 0 : tagged[0].size());
    w.end();
    w.tag("vtage.base");
    for (const BaseEntry &b : base)
        w.u64(b.value).u64(b.conf);
    w.end();
    for (int i = 0; i < cfg.vtageNumTagged; ++i) {
        w.tag("vtage.comp").u64(static_cast<std::uint64_t>(i));
        for (const TaggedEntry &e : tagged[i]) {
            w.flag(e.valid).u64(e.tag).u64(e.value).u64(e.conf)
                .u64(e.u);
        }
        w.end();
    }
    w.tag("vtage.rng");
    for (int i = 0; i < Rng::stateWords; ++i)
        w.u64(rng.word(i));
    w.end();
}

void
Vtage::restoreStateBody(SnapshotReader &r)
{
    r.line("vtage");
    r.fatalIf(r.u64("version") != 1, "unsupported version");
    r.fatalIf(r.u64("baseEntries") != base.size(),
              "VTAGE base-table size mismatch");
    r.fatalIf(r.u64("numTagged")
                  != static_cast<std::uint64_t>(cfg.vtageNumTagged),
              "VTAGE component-count mismatch");
    r.fatalIf(r.u64("taggedEntries")
                  != (tagged.empty() ? 0 : tagged[0].size()),
              "VTAGE tagged-table size mismatch");
    r.endLine();
    r.line("vtage.base");
    for (BaseEntry &b : base) {
        b.value = r.u64("value");
        b.conf = static_cast<std::uint8_t>(r.u64Max("conf", fpc.max()));
    }
    r.endLine();
    for (int i = 0; i < cfg.vtageNumTagged; ++i) {
        r.line("vtage.comp");
        r.fatalIf(r.u64("comp") != static_cast<std::uint64_t>(i),
                  "VTAGE components out of order");
        const std::uint64_t tag_max = (1u << tagBitsOf(i)) - 1;
        for (TaggedEntry &e : tagged[i]) {
            e.valid = r.flag("valid");
            e.tag =
                static_cast<std::uint16_t>(r.u64Max("tag", tag_max));
            e.value = r.u64("value");
            e.conf =
                static_cast<std::uint8_t>(r.u64Max("conf", fpc.max()));
            e.u = static_cast<std::uint8_t>(r.u64Max("u", 1));
        }
        r.endLine();
    }
    r.line("vtage.rng");
    for (int i = 0; i < Rng::stateWords; ++i)
        rng.setWord(i, r.u64("word"));
    r.endLine();
}

void
Vtage::restoreState(std::istream &is)
{
    SnapshotReader r(is, name());
    restoreStateBody(r);
}

} // namespace eole
