/**
 * @file
 * TraceSource: on-demand generation of the dynamic µ-op stream with
 * rewind support.
 *
 * The timing simulator is trace-driven: it fetches the architecturally
 * correct path from this source. On a squash (branch/value misprediction
 * or memory-order violation) the front end rewinds to the first squashed
 * µ-op and re-fetches the same correct-path stream. Committed µ-ops are
 * retired from the replay window.
 *
 * Two backings produce bit-identical streams:
 *  - a live KernelVM stepped lazily (the original mode), and
 *  - a shared immutable FrozenTrace recorded once and replayed by any
 *    number of concurrently-running cores (the sweep engine's trace
 *    cache, see sim/trace_cache.hh). Replay keeps no window of its
 *    own — rewind/retire are pure index arithmetic over the shared
 *    vector.
 */

#ifndef EOLE_ISA_TRACE_SOURCE_HH
#define EOLE_ISA_TRACE_SOURCE_HH

#include <deque>
#include <functional>
#include <memory>

#include "common/logging.hh"
#include "isa/checkpoint.hh"
#include "isa/frozen_trace.hh"
#include "isa/kernel_vm.hh"
#include "isa/trace.hh"

namespace eole {

/**
 * Sequence-numbered µ-op stream backed by a KernelVM or a FrozenTrace.
 * Sequence numbers start at 1 and are dense. In VM mode, the window of
 * µ-ops between the oldest non-retired and the newest generated is
 * kept for replay.
 */
class TraceSource
{
  public:
    /**
     * Live-VM backing.
     * @param program kernel program (copied; self-contained source)
     * @param mem_bytes VM data-memory size
     * @param init one-time architectural state initializer
     */
    TraceSource(Program program, std::size_t mem_bytes,
                const std::function<void(KernelVM &)> &init)
        : prog(std::make_unique<Program>(std::move(program))),
          vm(std::make_unique<KernelVM>(*prog, mem_bytes))
    {
        if (init)
            init(*vm);
    }

    /** Replay backing over a shared immutable recording. */
    explicit TraceSource(std::shared_ptr<const FrozenTrace> trace)
        : frozen(std::move(trace))
    {
        panic_if(!frozen, "null frozen trace");
        for (int r = 0; r < numArchIntRegs; ++r)
            startIntRegs[r] = frozen->initIntRegs[r];
        for (int r = 0; r < numArchFpRegs; ++r)
            startFpRegs[r] = frozen->initFpRegs[r];
    }

    /**
     * Replay backing resuming mid-stream at @p ckpt: the first fetch
     * returns µ-op ckpt.uopIndex (sequence number uopIndex + 1), and
     * the initial-register accessors return the checkpoint's
     * architectural state instead of the trace's start state. The
     * skipped prefix stays out of the replay window (it can never be
     * rewound into).
     */
    TraceSource(std::shared_ptr<const FrozenTrace> trace,
                const Checkpoint &ckpt)
        : frozen(std::move(trace))
    {
        panic_if(!frozen, "null frozen trace");
        panic_if(ckpt.uopIndex > frozen->uops.size(),
                 "checkpoint at µ-op %llu outside the %zu-µ-op trace",
                 (unsigned long long)ckpt.uopIndex, frozen->uops.size());
        cursor = static_cast<std::size_t>(ckpt.uopIndex);
        highWater = cursor;
        retiredSeq = ckpt.uopIndex;
        for (int r = 0; r < numArchIntRegs; ++r)
            startIntRegs[r] = ckpt.intRegs[r];
        for (int r = 0; r < numArchFpRegs; ++r)
            startFpRegs[r] = ckpt.fpRegs[r];
    }

    bool replaying() const { return frozen != nullptr; }

    /** Is a µ-op available at the cursor? */
    bool
    hasNext()
    {
        if (frozen) {
            if (cursor < frozen->uops.size())
                return true;
            panic_if(!frozen->complete,
                     "frozen trace exhausted after %zu µ-ops but the "
                     "program has not halted; record a longer prefix",
                     frozen->uops.size());
            return false;
        }
        fill();
        return cursor < window.size();
    }

    /** Sequence number the next fetch() will return. */
    SeqNum nextSeq() const { return baseSeq + cursor; }

    /** Peek the µ-op at the cursor without consuming it. */
    const TraceUop &
    peek()
    {
        panic_if(!hasNext(), "peek past end of trace");
        return frozen ? frozen->uops[cursor] : window[cursor];
    }

    /** Consume and return the µ-op at the cursor. */
    const TraceUop &
    fetch()
    {
        panic_if(!hasNext(), "fetch past end of trace");
        const TraceUop &u = frozen ? frozen->uops[cursor] : window[cursor];
        ++cursor;
        if (frozen && cursor > highWater)
            highWater = cursor;
        return u;
    }

    /**
     * Rewind so that the next fetch returns sequence number @p seq.
     * @p seq must still be inside the replay window.
     */
    void
    rewindTo(SeqNum seq)
    {
        if (frozen) {
            panic_if(seq <= retiredSeq || seq > highWater + 1,
                     "rewind to %llu outside window (%llu, %llu]",
                     (unsigned long long)seq,
                     (unsigned long long)retiredSeq,
                     (unsigned long long)(highWater + 1));
            cursor = static_cast<std::size_t>(seq - 1);
            return;
        }
        panic_if(seq < baseSeq || seq > baseSeq + window.size(),
                 "rewind to %llu outside window [%llu, %llu]",
                 (unsigned long long)seq, (unsigned long long)baseSeq,
                 (unsigned long long)(baseSeq + window.size()));
        cursor = static_cast<std::size_t>(seq - baseSeq);
    }

    /** Retire (drop) all window entries with sequence number <= @p seq. */
    void
    retireUpTo(SeqNum seq)
    {
        if (frozen) {
            panic_if(seq > cursor, "retiring unfetched µ-op %llu",
                     (unsigned long long)seq);
            if (seq > retiredSeq)
                retiredSeq = seq;
            return;
        }
        while (!window.empty() && baseSeq <= seq) {
            panic_if(cursor == 0, "retiring unfetched µ-op %llu",
                     (unsigned long long)baseSeq);
            window.pop_front();
            ++baseSeq;
            --cursor;
        }
    }

    /** Total µ-ops generated so far (high-water mark). */
    std::uint64_t
    generated() const
    {
        return frozen ? highWater : vm->executedUops();
    }

    /** The live VM — the escape hatch for ad-hoc tools and debugging
     *  that need architectural state mid-run (VM backing only; replay
     *  has no machine). Core code reads initial register state through
     *  the backing-agnostic accessors below instead. */
    KernelVM &
    machine()
    {
        panic_if(!vm, "no live VM behind a frozen-trace replay");
        return *vm;
    }

    /** Architectural state at the stream's start point — post-init
     *  state, or the checkpoint state for a resumed replay (valid for
     *  both backings). */
    RegVal
    initialIntReg(RegIndex r) const
    {
        return frozen ? startIntRegs[r] : vm->readIntReg(r);
    }

    RegVal
    initialFpReg(RegIndex r) const
    {
        return frozen ? startFpRegs[r] : vm->readFpReg(r);
    }

  private:
    void
    fill()
    {
        if (cursor < window.size() || vm->halted())
            return;
        TraceUop u;
        if (vm->step(u))
            window.push_back(u);
    }

    std::unique_ptr<Program> prog;
    std::unique_ptr<KernelVM> vm;
    std::shared_ptr<const FrozenTrace> frozen;

    // VM mode: sliding replay window. Replay mode: window is the whole
    // frozen stream, so baseSeq stays 1 and cursor is the 0-based index
    // of the next fetch.
    std::deque<TraceUop> window;
    SeqNum baseSeq = 1;     //!< sequence number of window[0] (VM mode)
    std::size_t cursor = 0;
    std::size_t highWater = 0;  //!< replay: max cursor ever reached
    SeqNum retiredSeq = 0;      //!< replay: all seq <= this retired

    // Replay mode: register state at the start point (trace init state,
    // or the checkpoint's image for a mid-stream resume).
    RegVal startIntRegs[numArchIntRegs] = {};
    RegVal startFpRegs[numArchFpRegs] = {};
};

} // namespace eole

#endif // EOLE_ISA_TRACE_SOURCE_HH
