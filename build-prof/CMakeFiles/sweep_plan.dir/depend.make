# Empty dependencies file for sweep_plan.
# This may be replaced when dependencies are built.
