#include "pipeline/core.hh"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/logging.hh"
#include "isa/checkpoint.hh"

namespace eole {

Core::Core(const SimConfig &config, const Workload &workload)
    : Core(config, workload, buildDefaultPipeline(config))
{
}

Core::Core(const SimConfig &config, const Workload &workload,
           StagePipeline pipeline)
    : state(std::make_unique<PipelineState>(config, workload)),
      pipe(std::move(pipeline))
{
    pipe.wire();
    state->setSquashOrder(pipe.squashOrder);
    stageSections.reserve(pipe.stages.size());
    for (const auto &stage : pipe.stages)
        stageSections.push_back(prof::stageSection(stage->name()));
}

Core::~Core() = default;

void
Core::tick()
{
    state->beginCycle();
    if (!prof::enabled()) {
        for (const auto &stage : pipe.stages)
            stage->tick(*state);
    } else {
        // Chained timestamps, not one ScopedTimer per stage: each
        // clock read both ends stage i and starts stage i+1, so the
        // whole tick body — including the reads themselves — lands in
        // some stage section and the per-cycle overhead is halved.
        // Gapped per-stage timers leave the read cost unattributed,
        // which at sub-µs stage ticks is a double-digit share of the
        // profiled run.
        auto t = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < pipe.stages.size(); ++i) {
            pipe.stages[i]->tick(*state);
            const auto t2 = std::chrono::steady_clock::now();
            prof::add(stageSections[i], static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    t2 - t).count()));
            t = t2;
        }
    }
    state->endCycle();
}

std::uint64_t
Core::run(std::uint64_t target_commits, std::uint64_t max_cycles)
{
    const std::uint64_t start_commits = state->committedUops;
    const Cycle start_cycle = state->now;
    while (state->committedUops - start_commits < target_commits
           && state->now - start_cycle < max_cycles) {
        if (state->rob.empty() && state->renameOut.empty()
            && state->frontPipe.empty() && !state->ts.hasNext()) {
            break;  // trace drained
        }
        tick();
    }
    return state->committedUops - start_commits;
}

void
Core::resetStats()
{
    state->resetStats();
    for (const auto &stage : pipe.stages)
        stage->resetStats();
}

void
Core::resetTiming()
{
    resetStats();
    state->mem->resetStats();
}

void
Core::functionalWarm(const FrozenTrace &trace, std::uint64_t begin,
                     std::uint64_t end)
{
    fatal_if(begin > end || end > trace.uops.size(),
             "functionalWarm [%llu, %llu) outside the %zu-µ-op trace",
             (unsigned long long)begin, (unsigned long long)end,
             trace.uops.size());

    prof::ScopedTimer timer(prof::WarmFunctional);
    state->mem->syncWarmClock(state->now);
    for (std::uint64_t i = begin; i < end; ++i) {
        const TraceUop &u = trace.uops[i];
        state->bu->warmUpdate(u);
        if (state->vp)
            state->vp->warmUpdate(u);
        state->mem->warmUpdate(u);
    }
    // Detailed simulation resumes after the warming pseudo-cycles so
    // every warmed fill/busy time is already in the past.
    state->now = std::max(state->now, state->mem->warmClockNow());
}

void
Core::captureWarmState(Checkpoint &ckpt) const
{
    ckpt.config = state->cfg.name;
    ckpt.uarch.clear();
    const auto capture = [&](const char *name,
                             const WarmableComponent &c) {
        std::ostringstream os;
        c.snapshotState(os);
        ckpt.uarch.emplace_back(name, os.str());
    };
    capture("branch", *state->bu);
    if (state->vp)
        capture("vpred", *state->vp);
    capture("mem", *state->mem);
}

void
Core::restoreWarmState(const Checkpoint &ckpt)
{
    if (!ckpt.hasWarmState())
        return;

    prof::ScopedTimer timer(prof::WarmRestore);

    // The section set must match this core's component set exactly: a
    // checkpoint from a different configuration (e.g. with value
    // prediction when this core has none) is an operator error, not
    // something to silently half-restore.
    std::size_t restored = 0;
    for (const auto &[name, payload] : ckpt.uarch) {
        WarmableComponent *target = nullptr;
        if (name == "branch")
            target = state->bu.get();
        else if (name == "vpred")
            target = state->vp.get();
        else if (name == "mem")
            target = state->mem.get();
        fatal_if(name == "vpred" && state->vp == nullptr,
                 "checkpoint carries a \"vpred\" section but this "
                 "configuration has no value predictor");
        fatal_if(target == nullptr,
                 "checkpoint section \"%s\" matches no warmable "
                 "component", name.c_str());
        std::istringstream is(payload);
        target->restoreState(is);
        ++restored;
    }
    const std::size_t expected = 2 + (state->vp ? 1 : 0);
    fatal_if(restored != expected,
             "checkpoint restores %zu of %zu warmable components "
             "(value prediction %s in this configuration)",
             restored, expected, state->vp ? "on" : "off");

    // Detailed simulation resumes after the restored warming
    // pseudo-cycles, exactly as after a live functionalWarm pass.
    state->now = std::max(state->now, state->mem->warmClockNow());
}

const CoreStats &
Core::stats() const
{
    aggregated = CoreStats{};
    state->addStats(aggregated);
    for (const auto &stage : pipe.stages)
        stage->addStats(aggregated);
    return aggregated;
}

StatRecord
Core::record() const
{
    StatRecord r = stats().record();
    r.addAll("mem.", state->mem->record());
    return r;
}

} // namespace eole
