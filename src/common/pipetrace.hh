/**
 * @file
 * Per-µop pipeline event tracing.
 *
 * Stages publish lifecycle events (fetch, rename, dispatch, issue,
 * exec, complete, commit, squash) through a PipeTracer hung off
 * PipelineState::tracer. The pointer is null by default and every hook
 * is guarded by a null check, so tracing costs one predictable branch
 * per event site when off — the same zero-cost-off discipline as the
 * profiler, enforced by the bench lane.
 *
 * Two output formats:
 *
 *  - Kanata ("Kanata\t0004"): loads in the Konata pipeline viewer
 *    (also accepts gem5 O3PipeView converts). Each fetch of a sequence
 *    number opens a fresh Kanata instruction id — a squashed-and-
 *    refetched µop appears twice, the first flagged as flushed
 *    (R ... 1), exactly how Konata renders wrong-path work.
 *  - Canonical text: one deterministic line per event,
 *    "<cycle> <seq> <event>[ <annot>]". Byte-stable for a fixed
 *    workload/config, so golden tests pin it.
 *
 * Annotations carry the VP outcome (vp=conf/vp=unconf at fetch,
 * vp=ok/vp=wrong at commit) and the rename-time EE/LE disposition
 * (ee, le=alu, le=br).
 *
 * The API takes only primitives (SeqNum, Cycle, Addr, const char *),
 * keeping common/ independent of pipeline/ types.
 */

#ifndef EOLE_COMMON_PIPETRACE_HH
#define EOLE_COMMON_PIPETRACE_HH

#include <cstdint>
#include <ostream>
#include <unordered_map>

#include "common/types.hh"

namespace eole {

enum class PipeEvent : std::uint8_t {
    Fetch,
    Rename,
    Dispatch,
    Issue,
    Exec,
    Complete,
    Commit,
    Squash,
};

const char *pipeEventName(PipeEvent ev);

class PipeTracer
{
  public:
    enum class Format { Canonical, Kanata };

    /** Trace events for seq in [lo, hi). Does not own the stream. */
    PipeTracer(std::ostream &os, Format format,
               SeqNum lo = 0, SeqNum hi = ~SeqNum{0});

    /** Range filter; hooks check this before building annotations. */
    bool wants(SeqNum seq) const { return seq >= lo_ && seq < hi_; }

    /**
     * A µop entered the pipeline. Opens a new trace record (a fresh
     * Kanata id — re-fetch after squash starts a new one). @p op is the
     * opcode mnemonic; @p annot ("" for none) rides on the label.
     */
    void fetch(Cycle now, SeqNum seq, Addr pc, const char *op,
               const char *annot);

    /** A lifecycle stage event for an in-flight µop. */
    void event(Cycle now, SeqNum seq, PipeEvent ev, const char *annot = "");

    /** Retired (committed). @p annot carries e.g. the VP outcome. */
    void commit(Cycle now, SeqNum seq, const char *annot = "");

    /** Squashed on a wrong path; closes the record as flushed. */
    void squash(Cycle now, SeqNum seq);

    /** Flush the stream; called once after the run. */
    void finish();

  private:
    void advanceTo(Cycle now);
    void stage(SeqNum seq, const char *kanata_stage);

    std::ostream &os_;
    Format format_;
    SeqNum lo_, hi_;
    Cycle cur_ = 0;
    bool started_ = false;
    std::uint64_t nextId_ = 0;
    std::uint64_t nextRetireId_ = 1;
    std::unordered_map<SeqNum, std::uint64_t> inFlight_;
};

} // namespace eole

#endif // EOLE_COMMON_PIPETRACE_HH
