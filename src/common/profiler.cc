#include "common/profiler.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace eole {
namespace prof {

namespace {

struct Slot {
    std::atomic<std::uint64_t> nanos{0};
    std::atomic<std::uint64_t> count{0};
};

Slot g_slots[NumSections];

bool
envEnabled()
{
    const char *v = std::getenv("EOLE_PROF");
    return v && v[0] && std::strcmp(v, "0") != 0;
}

std::atomic<bool> g_enabled{envEnabled()};

} // namespace

const char *
sectionName(Section s)
{
    switch (s) {
      case StageFetch: return "stage.fetch";
      case StageRename: return "stage.rename";
      case StageDispatch: return "stage.dispatch";
      case StageIssue: return "stage.issue";
      case StageCompletion: return "stage.completion";
      case StageLevt: return "stage.levt";
      case StageCommit: return "stage.commit";
      case StageOther: return "stage.other";
      case ModelVpred: return "model.vpred";
      case ModelBpred: return "model.bpred";
      case ModelMem: return "model.mem";
      case WarmFunctional: return "warm.functional";
      case WarmRestore: return "warm.restore";
      default: return "unknown";
    }
}

Section
stageSection(const char *stage_name)
{
    if (!std::strcmp(stage_name, "fetch")) return StageFetch;
    if (!std::strcmp(stage_name, "rename")) return StageRename;
    if (!std::strcmp(stage_name, "dispatch")) return StageDispatch;
    if (!std::strcmp(stage_name, "issue")) return StageIssue;
    if (!std::strcmp(stage_name, "completion")) return StageCompletion;
    if (!std::strcmp(stage_name, "levt")) return StageLevt;
    if (!std::strcmp(stage_name, "commit")) return StageCommit;
    return StageOther;
}

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

void
reset()
{
    for (auto &slot : g_slots) {
        slot.nanos.store(0, std::memory_order_relaxed);
        slot.count.store(0, std::memory_order_relaxed);
    }
}

std::uint64_t
sectionNanos(Section s)
{
    return g_slots[s].nanos.load(std::memory_order_relaxed);
}

std::uint64_t
sectionCount(Section s)
{
    return g_slots[s].count.load(std::memory_order_relaxed);
}

void
add(Section s, std::uint64_t nanos)
{
    g_slots[s].nanos.fetch_add(nanos, std::memory_order_relaxed);
    g_slots[s].count.fetch_add(1, std::memory_order_relaxed);
}

} // namespace prof
} // namespace eole
