/**
 * @file
 * Tests for the slab allocator behind DynInstPtr (common/slab.hh):
 * recycle/reuse ordering, exhaustion growth, refcount lifetime (a
 * handle parked in a completion-wheel-style container keeps a squashed
 * µ-op alive), pool-outlived-by-handle fail-fast, and a
 * torture-generator-driven squash-storm churn run proving the pool's
 * footprint tracks the in-flight window, not the total µ-op count.
 * This suite is part of the AddressSanitizer lane (scripts/check.sh
 * --sample): free slots are poisoned there, so any use-after-release
 * the refcounting failed to prevent faults instead of reading
 * recycled state.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/slab.hh"
#include "pipeline/core.hh"
#include "sim/configs.hh"
#include "workloads/torture_gen.hh"
#include "workloads/workload.hh"

using namespace eole;

TEST(Slab, ReuseOrderingIsLifo)
{
    SlabPool<int> pool(4);
    PooledPtr<int> a = pool.allocate(1);
    PooledPtr<int> b = pool.allocate(2);
    int *const pa = a.get();
    int *const pb = b.get();
    EXPECT_NE(pa, pb);
    EXPECT_EQ(pool.live(), 2u);

    // Free b then a: the LIFO free list hands the slots back in
    // reverse free order (a's slot first).
    b.reset();
    a.reset();
    EXPECT_EQ(pool.live(), 0u);

    PooledPtr<int> c = pool.allocate(3);
    PooledPtr<int> d = pool.allocate(4);
    EXPECT_EQ(c.get(), pa);
    EXPECT_EQ(d.get(), pb);
    EXPECT_EQ(*c, 3);
    EXPECT_EQ(*d, 4);
}

TEST(Slab, ExhaustionGrowsANewBlock)
{
    SlabPool<int> pool(2);
    std::vector<PooledPtr<int>> held;
    for (int i = 0; i < 5; ++i)
        held.push_back(pool.allocate(i));

    EXPECT_EQ(pool.live(), 5u);
    EXPECT_EQ(pool.capacity(), 6u);  // three 2-slot blocks
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(*held[i], i);
        for (int j = i + 1; j < 5; ++j)
            EXPECT_NE(held[i].get(), held[j].get());
    }

    held.clear();
    EXPECT_EQ(pool.live(), 0u);
    EXPECT_EQ(pool.capacity(), 6u);  // blocks are kept, never returned
}

TEST(Slab, RefcountSharesOneObject)
{
    SlabPool<int> pool;
    PooledPtr<int> a = pool.allocate(41);
    EXPECT_EQ(a.useCount(), 1u);

    PooledPtr<int> b = a;
    EXPECT_EQ(a.useCount(), 2u);
    EXPECT_TRUE(a == b);
    *b += 1;
    EXPECT_EQ(*a, 42);

    PooledPtr<int> c = std::move(a);
    EXPECT_FALSE(a);  // moved-from is null, not a third owner
    EXPECT_EQ(c.useCount(), 2u);

    b.reset();
    EXPECT_EQ(c.useCount(), 1u);
    EXPECT_EQ(pool.live(), 1u);
    c.reset();
    EXPECT_EQ(pool.live(), 0u);
}

TEST(Slab, WheelHeldHandleOutlivesEveryOtherOwner)
{
    // The completion-wheel scenario: a µ-op is squashed and every
    // pipeline structure drops its handle, but the completion wheel
    // still holds one until the ready cycle drains. The refcount —
    // not luck — must keep the object alive; under ASan a recycled
    // slot is poisoned, so getting this wrong faults here.
    SlabPool<DynInst> pool(8);
    std::map<Cycle, std::vector<PooledPtr<DynInst>>> wheel;

    PooledPtr<DynInst> di = pool.allocate();
    di->seq = 7;
    wheel[12].push_back(di);

    di->squashed = true;
    di.reset();  // the "pipeline" is done with it
    EXPECT_EQ(pool.live(), 1u);

    // Drain the wheel later: the handle still dereferences safely.
    for (auto &[ready, insts] : wheel) {
        EXPECT_EQ(ready, 12u);
        ASSERT_EQ(insts.size(), 1u);
        EXPECT_TRUE(insts[0]->squashed);
        EXPECT_EQ(insts[0]->seq, 7u);
    }
    wheel.clear();
    EXPECT_EQ(pool.live(), 0u);
}

TEST(SlabDeathTest, PoolDestroyedWithLiveHandlePanics)
{
    auto pool = std::make_unique<SlabPool<int>>(4);
    PooledPtr<int> leaked = pool->allocate(1);
    EXPECT_DEATH(pool.reset(), "live object");
    // The death ran in a forked child; here the pool is still intact,
    // so release the handle first and destroy it cleanly.
    leaked.reset();
    pool.reset();
}

TEST(Slab, SquashStormChurnKeepsFootprintBounded)
{
    // Torture programs under the VP baseline squash constantly (value
    // mispredictions, branch mispredictions, memory-order violations);
    // every squash churns allocate/recycle. The pool must (a) keep the
    // simulation architecturally correct — pinned here against the
    // functional oracle commit count — and (b) grow with the in-flight
    // window only, never with the total µ-op volume.
    const SimConfig cfg = configs::baselineVp(6, 64);
    std::uint64_t totalCommitted = 0;
    for (std::uint64_t seed = 0xC0DE; seed < 0xC0DE + 5; ++seed) {
        Workload w;
        w.name = "torture-" + std::to_string(seed);
        w.memBytes = workloads::tortureMemBytes;
        w.program = workloads::generateTortureProgram(seed);

        Core core(cfg, w);
        std::uint64_t committed = 0;
        core.setCommitHook([&](const DynInst &) { ++committed; });
        core.run(~0ULL, 2000000);  // run the program to completion
        totalCommitted += committed;
        EXPECT_GT(committed, 0u);

        const DynInstPool &pool = core.pipelineState().dynInstPool;
        // Everything still live is held by an in-flight structure
        // (ROB/LSQ/IQ/front end/completion buffer) — a window, not a
        // history. Far more live objects than the ROB can hold means
        // handles are leaking somewhere.
        EXPECT_LE(pool.live(), 1024u)
            << "seed " << seed
            << ": live objects beyond any in-flight window";
        EXPECT_LE(pool.capacity(), 2048u)
            << "seed " << seed << ": pool grew with µ-op volume after "
            << committed << " commits — recycling is broken";
    }
    EXPECT_GT(totalCommitted, 1000u);
}
