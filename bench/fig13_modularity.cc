/**
 * Figure 13: modularity of EOLE. Full EOLE vs OLE (Late Execution
 * only) vs EOE (Early Execution only), each 4-issue with a 4-bank PRF
 * and 4 LE/VT read ports, normalized to Baseline_VP_6_64.
 *
 * Since the stage decomposition, "modularity" is structural, not just
 * a pair of config flags: each variant assembles a different stage
 * pipeline (the LE/VT pre-commit stage only exists when it has work),
 * and custom Stage implementations can be swapped in per stage. This
 * bench prints each variant's stage roster and demonstrates a stage
 * swap: an instrumented RenameStage drop-in must leave the timing
 * bit-identical.
 */
#include <cstdlib>
#include <memory>

#include "bench_common.hh"
#include "pipeline/core.hh"
#include "pipeline/stages/rename.hh"

using namespace eole;

namespace {

/** RenameStage drop-in that counts the µ-ops it renames. */
class CountingRename : public RenameStage
{
  public:
    using RenameStage::RenameStage;

    void
    tick(PipelineState &st) override
    {
        const size_t before = st.renameOut.size();
        RenameStage::tick(st);
        renamed += st.renameOut.size() - before;
    }

    std::uint64_t renamed = 0;
};

void
printStageRoster(const SimConfig &cfg)
{
    const StagePipeline p = buildDefaultPipeline(cfg);
    std::printf("%-24s:", cfg.name.c_str());
    for (const auto &stage : p.stages)
        std::printf(" %s", stage->name());
    std::printf("\n");
}

/** Swap an instrumented rename stage into an otherwise stock pipeline
 *  and check the timing is unchanged (the Stage seam is free). */
void
stageSwapDemo(const SimConfig &cfg, const std::string &workload)
{
    const std::uint64_t uops = std::min<std::uint64_t>(measureUops(), 200000);

    const Workload w = workloads::build(workload);
    Core stock(cfg, w);
    stock.run(uops, uops * 200 + 100000);

    StagePipeline custom = buildDefaultPipeline(cfg);
    custom.replace("rename", std::make_unique<CountingRename>(cfg));
    auto *counting = static_cast<CountingRename *>(custom.byName("rename"));
    Core instrumented(cfg, w, std::move(custom));
    instrumented.run(uops, uops * 200 + 100000);

    std::printf("\n== Stage swap (instrumented rename, %s / %s) ==\n",
                cfg.name.c_str(), workload.c_str());
    std::printf("stock:        %llu cycles, ipc %.6f\n",
                (unsigned long long)stock.stats().cycles,
                stock.stats().ipc());
    std::printf("instrumented: %llu cycles, ipc %.6f (%llu µ-ops renamed)\n",
                (unsigned long long)instrumented.stats().cycles,
                instrumented.stats().ipc(),
                (unsigned long long)counting->renamed);
    if (stock.stats().cycles != instrumented.stats().cycles) {
        std::printf("ERROR: stage swap changed the timing\n");
        std::exit(1);
    }
}

} // namespace

int
main()
{
    const SimConfig ref = configs::baselineVp(6, 64);
    const SimConfig full = configs::eoleConstrained(4, 64, 4, 4);
    const SimConfig le_only = configs::ole(4, 64, 4, 4);
    const SimConfig ee_only = configs::eoe(4, 64, 4, 4);

    std::printf("\n== Stage pipelines (built from SimConfig) ==\n");
    printStageRoster(configs::baseline(4, 64));  // no VP: no levt stage
    printStageRoster(ref);
    printStageRoster(full);
    printStageRoster(le_only);
    printStageRoster(ee_only);

    stageSwapDemo(full, "444.namd");

    // The grid itself is the "fig13" plan (see `eole run fig13`).
    return runFigure("fig13");
}
