/**
 * @file
 * LE/VT pre-commit stage: Late Execution, validation and training
 * (§3.3, §4.1 of the paper).
 *
 * Only instantiated when it has work to do (value prediction enabled
 * or Late Execution configured); a pipeline without it pays no LE/VT
 * port accounting and no extra pre-commit cycle. The stage's per-cycle
 * work happens at the ROB head and is therefore driven synchronously
 * by the commit stage (the simulator folds the LE/VT stage's timing
 * into the preCommitCycles() retirement delay); its own tick is empty.
 *
 * Responsibilities, per retiring µ-op:
 *  - reserve the constrained LE/VT read ports (Fig 11): operand reads
 *    for Late Execution, result reads for validation and training;
 *  - late-execute predicted single-cycle ALU µ-ops and
 *    very-high-confidence branches that bypassed the OoO engine;
 *  - validate used predictions against the computed result (a mismatch
 *    squashes at commit) and train the value predictor.
 */

#ifndef EOLE_PIPELINE_STAGES_LEVT_HH
#define EOLE_PIPELINE_STAGES_LEVT_HH

#include "pipeline/dyn_inst.hh"
#include "pipeline/stages/stage.hh"
#include "sim/config.hh"

namespace eole {

class LevtStage : public Stage
{
  public:
    explicit LevtStage(const SimConfig &cfg);

    const char *name() const override { return "levt"; }
    void tick(PipelineState &st) override;
    void resetStats() override;
    void addStats(CoreStats &out) const override;

    /**
     * Reserve this µ-op's LE/VT read ports (all or nothing).
     * @return false when the commit group must stall this cycle.
     */
    bool reservePorts(PipelineState &st, const DynInst &di);

    /** Late-execute a µ-op at its ROB-head turn. */
    void lateExecute(PipelineState &st, const DynInstPtr &di);

    /**
     * Validate a used prediction against the computed result and fix
     * the PRF on a mismatch.
     * @return true when the value was mispredicted (squash at commit)
     */
    bool validate(PipelineState &st, const DynInstPtr &di);

    /** Train the value predictor with the committed result. */
    void train(PipelineState &st, const DynInstPtr &di);

  private:
    struct Stats
    {
        std::uint64_t lateExecutedAlu = 0;
        std::uint64_t lateExecutedBranches = 0;
        std::uint64_t vpCorrectUsed = 0;
        std::uint64_t vpMispredictSquashes = 0;
        std::uint64_t commitPortStalls = 0;
    };

    /** LE/VT read-port demand of @p di (§6.3). */
    int readNeeds(const PipelineState &st, const DynInst &di,
                  int *banks_out) const;

    bool vpEnabled;

    Stats s;
};

} // namespace eole

#endif // EOLE_PIPELINE_STAGES_LEVT_HH
