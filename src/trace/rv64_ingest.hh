/**
 * @file
 * RV64I → µ-op ingestion: turn a committed-instruction log from a real
 * RISC-V functional simulator (spike / QEMU style) into a FrozenTrace
 * in the internal µ-op vocabulary, ready to be written out as
 * eole-trace-v1 and replayed by the timing model.
 *
 * Input: a text log, one committed instruction per line, in program
 * (commit) order. Accepted line shapes:
 *
 *   # comment                               (ignored, as are blanks)
 *   reg x5 0x1000                           (register seed; pre-code only)
 *   mem 0x2000 0xdeadbeef                   (8-byte LE memory seed)
 *   core   0: 0x0000000080000000 (0x00500293) li t0, 5     (spike)
 *   80000000 00500293                       (bare pc/insn hex pair)
 *
 * The ingester cracks each RV64I instruction into 1..3 internal µ-ops
 * (see DESIGN.md §13 for the full table), re-executes the stream in a
 * self-consistent synthetic machine (architectural x-registers plus a
 * sparse byte memory seeded by the directives), and cross-checks its
 * computed control flow against the log's committed PC sequence line
 * by line — any divergence (bad seed, unsupported aliasing, wrong
 * decode) is a line-numbered error, not a silently wrong trace.
 *
 * Coordinate systems: data values and effective addresses stay in the
 * original program's address space; control-flow values (link
 * registers, indirect targets) live in the synthetic µ-op PC space,
 * because the timing core recomputes a call's link value as
 * `µ-op pc + uopBytes` and resolves indirect jumps by µ-op index.
 * Logs whose code treats code addresses as data (computed jump
 * tables over AUIPC bases) are rejected when the resulting indirect
 * target is not a µ-op boundary.
 *
 * Unsupported (line-numbered errors): compressed instructions (RVC),
 * ECALL/EBREAK/CSR, MULH*, unsigned/word division (DIVU/REMU/DIVW/
 * REMW/...), signed division by zero (RISC-V yields -1, this ISA 0),
 * JALR with a non-zero offset and no destination, JALR with rd == rs1,
 * and register/memory seeds after the first instruction.
 */

#ifndef EOLE_TRACE_RV64_INGEST_HH
#define EOLE_TRACE_RV64_INGEST_HH

#include <iosfwd>
#include <memory>
#include <string>

#include "isa/frozen_trace.hh"

namespace eole {

/**
 * Ingest an RV64I commit log from @p in.
 *
 * @param name workload name embedded in the trace (<= 63 bytes)
 * @param err line-numbered diagnostic on failure
 * @return the trace (complete=true), or null with @p err set.
 */
std::shared_ptr<const FrozenTrace>
ingestRv64Log(std::istream &in, const std::string &name, std::string *err);

/** File wrapper around ingestRv64Log. */
std::shared_ptr<const FrozenTrace>
ingestRv64LogFile(const std::string &path, const std::string &name,
                  std::string *err);

} // namespace eole

#endif // EOLE_TRACE_RV64_INGEST_HH
