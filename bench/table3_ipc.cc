/**
 * Table 3: baseline (Baseline_6_64, no value prediction) IPC for every
 * benchmark.
 *
 * Thin wrapper over the "table3" plan; see `eole run table3`.
 */
#include "bench_common.hh"

int
main()
{
    return eole::runFigure("table3");
}
