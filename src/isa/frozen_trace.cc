#include "isa/frozen_trace.hh"

#include <algorithm>

#include "isa/kernel_vm.hh"
#include "isa/static_inst.hh"

namespace eole {

std::shared_ptr<const FrozenTrace>
recordTrace(const Program &program, std::size_t mem_bytes,
            const std::function<void(KernelVM &)> &init,
            std::uint64_t max_uops, const std::string &name)
{
    KernelVM vm(program, mem_bytes);
    if (init)
        init(vm);

    auto trace = std::make_shared<FrozenTrace>();
    trace->name = name;
    for (int r = 0; r < numArchIntRegs; ++r)
        trace->initIntRegs[r] = vm.readIntReg(static_cast<RegIndex>(r));
    for (int r = 0; r < numArchFpRegs; ++r)
        trace->initFpRegs[r] = vm.readFpReg(static_cast<RegIndex>(r));

    trace->storage.reserve(
        static_cast<std::size_t>(std::min<std::uint64_t>(max_uops, 1u << 22)));
    TraceUop u;
    while (trace->storage.size() < max_uops && vm.step(u))
        trace->storage.push_back(u);
    trace->complete = vm.halted();
    trace->seal();
    return trace;
}

std::shared_ptr<const FrozenTrace>
clampTrace(std::shared_ptr<const FrozenTrace> trace, std::uint64_t max_uops)
{
    if (!trace || trace->uops.size() <= max_uops)
        return trace;

    auto view = std::make_shared<FrozenTrace>();
    view->uops = FrozenTrace::UopView{trace->uops.begin(),
                                      static_cast<std::size_t>(max_uops)};
    // µ-ops were cut off, so the clamped stream does not reach the
    // program's halt — never complete.
    view->complete = false;
    for (int r = 0; r < numArchIntRegs; ++r)
        view->initIntRegs[r] = trace->initIntRegs[r];
    for (int r = 0; r < numArchFpRegs; ++r)
        view->initFpRegs[r] = trace->initFpRegs[r];
    view->name = trace->name;
    view->isFp = trace->isFp;
    view->mmapBacked = trace->mmapBacked;
    view->mapping = std::move(trace);  // parent owns the bytes
    return view;
}

} // namespace eole
