/**
 * @file
 * Author a custom ExperimentPlan and run it on the sweep engine — the
 * C++ twin of `eole run`.
 *
 *   ./build/sweep_plan [jobs]
 *
 * Builds a small grid (baseline vs EOLE at two issue widths over three
 * benchmarks), runs it on a worker pool with the shared trace cache,
 * prints a speedup table and demonstrates the artifact round trip:
 * results are byte-stable for a given plan/seed/run lengths, so a
 * stored artifact is an exact regression baseline.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "sim/artifact.hh"
#include "sim/configs.hh"
#include "sim/plan.hh"
#include "sim/sweep.hh"

using namespace eole;

int
main(int argc, char **argv)
{
    // 1. Declare the grid. Config names become table columns and
    //    artifact keys; per-cell seeds are derived from plan.seed and
    //    the cell identity, never from scheduling.
    ExperimentPlan plan;
    plan.name = "example";
    plan.description = "baseline vs EOLE, 4- and 6-issue";
    plan.configs = {
        configs::baseline(6, 64),
        configs::eole(4, 64),
        configs::eole(6, 64),
    };
    plan.workloads = {"164.gzip", "429.mcf", "444.namd"};
    plan.warmup = 20000;    // explicit run lengths (0 = env defaults)
    plan.measure = 100000;
    plan.tables = {
        {"Speedup over Baseline_6_64", "ipc",
         {"EOLE_4_64", "EOLE_6_64"}, "Baseline_6_64"},
    };

    // 2. Run it. jobs=0 means EOLE_THREADS / hardware concurrency.
    SweepOptions opt;
    opt.jobs = argc > 1 ? std::atoi(argv[1]) : 0;
    opt.progress = [](std::size_t done, std::size_t total,
                      const RunResult &cell) {
        std::fprintf(stderr, "  [%zu/%zu] %s/%s ipc=%.3f\n", done, total,
                     cell.config.c_str(), cell.workload.c_str(),
                     cell.ipc());
    };
    const PlanResult result = runPlan(plan, opt);

    printPlanTables(plan, result);

    // 3. Artifacts: canonical JSON, byte-stable across worker counts.
    const std::string bytes = jsonArtifactString(result);
    std::printf("\nartifact: %zu bytes, %zu cells\n", bytes.size(),
                result.cells.size());

    std::stringstream ss(bytes);
    const PlanResult reread = readJsonArtifact(ss);
    const std::size_t diffs =
        diffArtifacts(result, reread, DiffOptions{}, std::cout);
    std::printf("round-trip diff: %zu difference(s)\n", diffs);
    return diffs == 0 ? 0 : 1;
}
