#include "sim/bench.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/build_info.hh"
#include "common/logging.hh"
#include "common/profiler.hh"
#include "pipeline/core.hh"
#include "sim/configs.hh"
#include "sim/experiment.hh"
#include "sim/json.hh"
#include "sim/plan.hh"
#include "sim/plans.hh"
#include "workloads/workload.hh"

namespace eole {

const std::vector<std::string> &
defaultBenchWorkloads()
{
    // One easy-INT, one branchy-INT, one FP workload: the smallest set
    // that still exercises the branch unit, the value predictor and the
    // FP latency classes — and at ~1M µops/sec baseline speed, small
    // enough that the default grid (4 fig12 configs x 3 workloads x
    // 3 reps) finishes in about a minute.
    static const std::vector<std::string> names = {
        "164.gzip", "186.crafty", "173.applu"};
    return names;
}

double
BenchResult::geomeanUopsPerSec() const
{
    std::vector<double> rates;
    rates.reserve(cells.size());
    for (const BenchCell &c : cells)
        rates.push_back(c.uopsPerSec);
    return cells.empty() ? 0.0 : geomean(rates);
}

const BenchCell *
BenchResult::find(const std::string &config,
                  const std::string &workload) const
{
    for (const BenchCell &c : cells) {
        if (c.config == config && c.workload == workload)
            return &c;
    }
    return nullptr;
}

BenchResult
runBench(const BenchOptions &options)
{
    fatal_if(options.budget == 0, "bench: budget must be > 0");
    fatal_if(options.reps < 1, "bench: reps must be >= 1");

    std::vector<SimConfig> cfgs;
    if (options.configs.empty()) {
        cfgs = plans::get("fig12").configs;
    } else {
        for (const std::string &name : options.configs) {
            SimConfig c;
            fatal_if(!configs::findNamed(name, &c),
                     "bench: unknown config \"%s\"", name.c_str());
            cfgs.push_back(c);
        }
    }
    const std::vector<std::string> &wls = options.workloads.empty()
        ? defaultBenchWorkloads()
        : options.workloads;

    BenchResult out;
    out.label = options.label;
    out.budget = options.budget;
    out.warmup = options.warmup;
    out.reps = options.reps;
    out.cells.resize(cfgs.size() * wls.size());

    // Trace sizing: same discipline as the sweep engine — both run()
    // calls' committed targets plus the in-flight window.
    ExperimentPlan sizing;
    sizing.configs = cfgs;
    const std::uint64_t traceUopsNeeded =
        options.warmup + options.budget + maxInflightUops(sizing);
    const std::uint64_t maxCycles =
        (options.warmup + options.budget) * 60 + 1000000;

    // Execution is workload-major (freeze each trace once), result
    // slots config-major (the artifact order) — as in runPlan, except
    // strictly serial: concurrent cells would contend for cores and
    // corrupt each other's timings.
    const bool prevProf = prof::enabled();
    if (options.profile)
        prof::setEnabled(true);
    std::size_t done = 0;
    for (std::size_t w = 0; w < wls.size(); ++w) {
        Workload wl = workloads::build(wls[w]);
        wl.frozen = wl.freeze(traceUopsNeeded);
        for (std::size_t c = 0; c < cfgs.size(); ++c) {
            SimConfig cfg = cfgs[c];
            BenchCell &cell = out.cells[c * wls.size() + w];
            cell.config = cfg.name;
            cell.workload = wls[w];
            // The default-seed fig12 cell seed: a bench cell simulates
            // exactly what `eole run` would for the same identity.
            cfg.seed = jobSeed(1, cfg.seed, cfg.name, cell.workload);

            double best = std::numeric_limits<double>::infinity();
            for (int rep = 0; rep < options.reps; ++rep) {
                Core core(cfg, wl);
                core.run(options.warmup, maxCycles);
                core.resetStats();
                if (options.profile)
                    prof::reset();  // attribute the measured region only
                const auto t0 = std::chrono::steady_clock::now();
                const std::uint64_t committed =
                    core.run(options.budget, maxCycles);
                const auto t1 = std::chrono::steady_clock::now();
                const double secs =
                    std::chrono::duration<double>(t1 - t0).count();
                best = std::min(best, secs);
                if (options.profile) {
                    cell.profile.clear();
                    cell.profileSeconds = secs;
                    for (int s = 0; s < prof::NumSections; ++s) {
                        const auto sec = static_cast<prof::Section>(s);
                        const std::uint64_t ns = prof::sectionNanos(sec);
                        if (ns) {
                            cell.profile.emplace_back(
                                prof::sectionName(sec), ns * 1e-9);
                        }
                    }
                }
                if (rep == 0) {
                    cell.uops = committed;
                    cell.ipc = core.record().get("ipc");
                } else {
                    // Reps rerun one deterministic computation; a
                    // drifting commit count means the simulator leaked
                    // state between reps and every timing is suspect.
                    panic_if(committed != cell.uops,
                             "bench: rep %d of %s/%s committed %llu "
                             "µops, rep 0 committed %llu", rep,
                             cell.config.c_str(), cell.workload.c_str(),
                             (unsigned long long)committed,
                             (unsigned long long)cell.uops);
                }
            }
            cell.secondsMin = best;
            cell.uopsPerSec = best > 0.0 ? cell.uops / best : 0.0;

            ++done;
            if (!options.quiet) {
                inform("[%zu/%zu] %s/%s %.0f µops/s (ipc %.3f)",
                       done, out.cells.size(), cell.config.c_str(),
                       cell.workload.c_str(), cell.uopsPerSec,
                       cell.ipc);
            }
        }
        wl.frozen.reset();
    }
    prof::setEnabled(prevProf);
    return out;
}

void
writeBenchJson(std::ostream &os, const BenchResult &result)
{
    os << "{\n";
    os << "  \"schema\": \"eole-bench-v1\",\n";
    os << "  \"build\": ";
    jsonWriteEscaped(os, buildInfoString());
    os << ",\n";
    os << "  \"label\": ";
    jsonWriteEscaped(os, result.label);
    os << ",\n";
    os << "  \"budget\": " << result.budget << ",\n";
    os << "  \"warmup\": " << result.warmup << ",\n";
    os << "  \"reps\": " << result.reps << ",\n";
    os << "  \"cells\": [";
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        const BenchCell &cell = result.cells[i];
        os << (i ? ",\n" : "\n");
        os << "    {\"config\": ";
        jsonWriteEscaped(os, cell.config);
        os << ", \"workload\": ";
        jsonWriteEscaped(os, cell.workload);
        os << ", \"uops\": " << cell.uops;
        os << ", \"seconds_min\": " << jsonNumberText(cell.secondsMin);
        os << ", \"uops_per_sec\": " << jsonNumberText(cell.uopsPerSec);
        os << ", \"ipc\": " << jsonNumberText(cell.ipc);
        if (!cell.profile.empty()) {
            os << ", \"profile_seconds\": "
               << jsonNumberText(cell.profileSeconds);
            os << ", \"profile\": {";
            for (std::size_t s = 0; s < cell.profile.size(); ++s) {
                os << (s ? ", " : "");
                jsonWriteEscaped(os, cell.profile[s].first);
                os << ": " << jsonNumberText(cell.profile[s].second);
            }
            os << "}";
        }
        os << "}";
    }
    os << (result.cells.empty() ? "]" : "\n  ]") << ",\n";
    os << "  \"geomean_uops_per_sec\": "
       << jsonNumberText(result.geomeanUopsPerSec()) << "\n";
    os << "}\n";
}

std::string
benchJsonString(const BenchResult &result)
{
    std::ostringstream oss;
    writeBenchJson(oss, result);
    return oss.str();
}

void
writeBenchProfileTable(std::ostream &os, const BenchResult &result)
{
    for (const BenchCell &cell : result.cells) {
        if (cell.profile.empty())
            continue;
        os << csprintf("\n%s/%s: %.3f s measured\n", cell.config.c_str(),
                       cell.workload.c_str(), cell.profileSeconds);
        // model.* sections run inside a stage's scoped timer, so only
        // stage.* and warm.* count toward attributed coverage.
        double covered = 0.0;
        for (const auto &[name, secs] : cell.profile) {
            const bool top = name.rfind("stage.", 0) == 0
                || name.rfind("warm.", 0) == 0;
            const double pct = cell.profileSeconds > 0.0
                ? 100.0 * secs / cell.profileSeconds
                : 0.0;
            os << csprintf("  %-16s %9.3f s %6.1f%%%s\n", name.c_str(),
                           secs, pct, top ? "" : "  (within stage)");
            if (top)
                covered += secs;
        }
        const double pct = cell.profileSeconds > 0.0
            ? 100.0 * covered / cell.profileSeconds
            : 0.0;
        os << csprintf("  %-16s %9.3f s %6.1f%%\n", "attributed",
                       covered, pct);
    }
}

BenchResult
readBenchJson(std::istream &is)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();

    BenchResult result;
    std::string schema;
    JsonParser p(text, "bench file");
    p.expect('{');
    do {
        const std::string key = p.parseString();
        p.expect(':');
        if (key == "schema") {
            schema = p.parseString();
        } else if (key == "label") {
            result.label = p.parseString();
        } else if (key == "budget") {
            result.budget = p.parseU64();
        } else if (key == "warmup") {
            result.warmup = p.parseU64();
        } else if (key == "reps") {
            result.reps = static_cast<int>(p.parseU64());
        } else if (key == "cells") {
            p.expect('[');
            if (!p.tryConsume(']')) {
                do {
                    BenchCell cell;
                    p.expect('{');
                    do {
                        const std::string ck = p.parseString();
                        p.expect(':');
                        if (ck == "config")
                            cell.config = p.parseString();
                        else if (ck == "workload")
                            cell.workload = p.parseString();
                        else if (ck == "uops")
                            cell.uops = p.parseU64();
                        else if (ck == "seconds_min")
                            cell.secondsMin = p.parseNumber();
                        else if (ck == "uops_per_sec")
                            cell.uopsPerSec = p.parseNumber();
                        else if (ck == "ipc")
                            cell.ipc = p.parseNumber();
                        else if (ck == "profile_seconds")
                            cell.profileSeconds = p.parseNumber();
                        else if (ck == "profile") {
                            p.expect('{');
                            if (!p.tryConsume('}')) {
                                do {
                                    const std::string name =
                                        p.parseString();
                                    p.expect(':');
                                    cell.profile.emplace_back(
                                        name, p.parseNumber());
                                } while (p.tryConsume(','));
                                p.expect('}');
                            }
                        } else
                            p.skipValue();
                    } while (p.tryConsume(','));
                    p.expect('}');
                    result.cells.push_back(std::move(cell));
                } while (p.tryConsume(','));
                p.expect(']');
            }
        } else {
            // geomean_uops_per_sec is derived; recomputed from cells.
            p.skipValue();
        }
    } while (p.tryConsume(','));
    p.expect('}');
    p.finish();

    fatal_if(schema != "eole-bench-v1",
             "unsupported bench schema \"%s\"", schema.c_str());
    return result;
}

BenchResult
readBenchJsonFile(const std::string &path)
{
    std::ifstream is(path);
    fatal_if(!is, "cannot read bench file %s", path.c_str());
    return readBenchJson(is);
}

double
compareBench(const BenchResult &a, const BenchResult &b,
             std::ostream &os)
{
    if (a.budget != b.budget || a.warmup != b.warmup) {
        os << "note: budgets differ (a: " << a.warmup << "+" << a.budget
           << ", b: " << b.warmup << "+" << b.budget
           << " µ-ops); rates are still per-µop but the cells timed "
              "different work\n";
    }
    os << csprintf("%-26s %-14s %14s %14s %9s\n", "config", "workload",
                   "a µops/s", "b µops/s", "speedup");
    std::vector<double> ratios;
    for (const BenchCell &ca : a.cells) {
        const BenchCell *cb = b.find(ca.config, ca.workload);
        if (!cb) {
            os << csprintf("%-26s %-14s %14.0f %14s %9s\n",
                           ca.config.c_str(), ca.workload.c_str(),
                           ca.uopsPerSec, "-", "only-a");
            continue;
        }
        const double ratio = ca.uopsPerSec > 0.0
            ? cb->uopsPerSec / ca.uopsPerSec
            : 0.0;
        ratios.push_back(ratio);
        os << csprintf("%-26s %-14s %14.0f %14.0f %8.2fx\n",
                       ca.config.c_str(), ca.workload.c_str(),
                       ca.uopsPerSec, cb->uopsPerSec, ratio);
    }
    for (const BenchCell &cb : b.cells) {
        if (!a.find(cb.config, cb.workload)) {
            os << csprintf("%-26s %-14s %14s %14.0f %9s\n",
                           cb.config.c_str(), cb.workload.c_str(), "-",
                           cb.uopsPerSec, "only-b");
        }
    }
    const double g = ratios.empty() ? 0.0 : geomean(ratios);
    os << csprintf("geomean speedup (%zu common cell(s)): %.2fx\n",
                   ratios.size(), g);
    return g;
}

} // namespace eole
