/**
 * Figure 12: the bottom line. Baseline_6_64 (no VP), idealized
 * EOLE_4_64, and the realistic EOLE_4_64 with 4 LE/VT read ports and a
 * 4-bank PRF, all normalized to Baseline_VP_6_64.
 *
 * Thin wrapper over the "fig12" plan; see `eole run fig12`.
 */
#include "bench_common.hh"

int
main()
{
    return eole::runFigure("fig12");
}
