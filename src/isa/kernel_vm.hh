/**
 * @file
 * The KernelVM: functional execution of workload kernels.
 *
 * The VM owns the simulated architectural state (integer/FP registers
 * and a flat byte-addressed memory) and executes a Program one µ-op at
 * a time, emitting TraceUop records that the timing simulator consumes.
 */

#ifndef EOLE_ISA_KERNEL_VM_HH
#define EOLE_ISA_KERNEL_VM_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/static_inst.hh"
#include "isa/trace.hh"

namespace eole {

/**
 * Functional simulator for one kernel. Memory is lazily zero-initialized
 * and bounded by memBytes; all accesses must stay within bounds (kernels
 * are trusted code authored in this repository, so out-of-bounds is a
 * panic, not an architectural event).
 */
class KernelVM
{
  public:
    /**
     * @param program the kernel to execute (not owned; must outlive VM)
     * @param mem_bytes size of simulated data memory
     */
    KernelVM(const Program &program, std::size_t mem_bytes);

    /**
     * Execute one µ-op.
     *
     * @param out filled with the dynamic record of the executed µ-op
     * @retval false if the machine has halted (out is not filled)
     */
    bool step(TraceUop &out);

    bool halted() const { return isHalted; }
    std::uint64_t executedUops() const { return uopCount; }

    // --- Architectural state accessors (workload setup & tests) ---
    RegVal readIntReg(RegIndex r) const { return r == 0 ? 0 : intRegs[r]; }
    RegVal readFpReg(RegIndex r) const { return fpRegs[r]; }

    void
    setIntReg(RegIndex r, RegVal v)
    {
        if (r != 0)
            intRegs[r] = v;
    }

    void setFpReg(RegIndex r, RegVal v) { fpRegs[r] = v; }

    /** Little-endian read of @p size bytes at @p addr. */
    RegVal readMem(Addr addr, unsigned size) const;
    /** Little-endian write of @p size bytes at @p addr. */
    void writeMem(Addr addr, unsigned size, RegVal value);

    std::size_t memSize() const { return mem.size(); }

    /** Current program counter, as a static instruction index. */
    std::size_t pcIndex() const { return pc; }

  private:
    const Program &prog;
    std::vector<std::uint8_t> mem;
    RegVal intRegs[numArchIntRegs] = {};
    RegVal fpRegs[numArchFpRegs] = {};
    std::size_t pc = 0;
    std::uint64_t uopCount = 0;
    bool isHalted = false;
};

} // namespace eole

#endif // EOLE_ISA_KERNEL_VM_HH
