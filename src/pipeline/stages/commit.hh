/**
 * @file
 * Commit stage: in-order retirement.
 *
 * Retires up to commitWidth µ-ops per cycle from the ROB head. When an
 * LE/VT stage is present (value prediction or Late Execution enabled),
 * commit drives its pre-commit work per retiring µ-op: port
 * reservation, Late Execution, validation of used predictions (a
 * mismatch squashes the pipeline after retiring the mispredicted µ-op)
 * and predictor training. Every committed µ-op is checked against the
 * functional oracle (self-verification). On a full squash, commit owns
 * the ROB/LSQ walk-back.
 */

#ifndef EOLE_PIPELINE_STAGES_COMMIT_HH
#define EOLE_PIPELINE_STAGES_COMMIT_HH

#include "pipeline/dyn_inst.hh"
#include "pipeline/stages/stage.hh"
#include "sim/config.hh"

namespace eole {

class LevtStage;

class CommitStage : public Stage
{
  public:
    /** @param levt the pre-commit LE/VT stage, or nullptr when neither
     *  value prediction nor Late Execution is configured */
    CommitStage(const SimConfig &cfg, LevtStage *levt);

    const char *name() const override { return "commit"; }
    void tick(PipelineState &st) override;
    void squash(PipelineState &st, SeqNum keep_seq,
                Cycle resume_fetch_at) override;
    void resetStats() override;
    void addStats(CoreStats &out) const override;

    void setLevt(LevtStage *levt_) { levt = levt_; }

  private:
    struct Stats
    {
        std::uint64_t condBranches = 0;
        std::uint64_t highConfBranches = 0;
        std::uint64_t vpEligible = 0;
        std::uint64_t vpPredictionsUsed = 0;
        std::uint64_t earlyExecuted = 0;
        std::uint64_t loads = 0;
        std::uint64_t stores = 0;
    };

    bool readyToRetire(const PipelineState &st, const DynInst &di) const;

    int commitWidth;
    /** Writeback->commit delay plus the LE/VT cycle when VP is on
     *  (§4.1). */
    Cycle retireDelay;
    LevtStage *levt;

    Stats s;
};

} // namespace eole

#endif // EOLE_PIPELINE_STAGES_COMMIT_HH
