file(REMOVE_RECURSE
  "CMakeFiles/abl_predictors.dir/bench/abl_predictors.cc.o"
  "CMakeFiles/abl_predictors.dir/bench/abl_predictors.cc.o.d"
  "abl_predictors"
  "abl_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
