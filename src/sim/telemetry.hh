/**
 * @file
 * Structured sweep telemetry: a JSONL event stream beside the run.
 *
 * Long sweeps (sharded, sampled, checkpoint-saving) emit one JSON
 * object per line into the file given by `--telemetry FILE`: a
 * `run_start` manifest (plan, resolved run lengths, host, build
 * provenance), `cell_queued` for every cell the filter matched,
 * `job_start`/`job_finish` pairs with the executing worker index and
 * wall time, `store` / `trace_cache` hit-miss counters, and a terminal
 * `run_finish` — or `run_aborted` when the CLI bails out with exit 2,
 * so a consumer never sees a silently truncated stream.
 *
 * The stream is observability, not an artifact: timestamps and event
 * interleaving vary run to run, and nothing in the engine ever reads
 * it back to make decisions. Artifact byte-identity contracts are
 * unaffected by `--telemetry` (check.sh --obs pins this).
 *
 * Every write happens under one mutex and is flushed line-atomically,
 * so a crash mid-run leaves a prefix of whole lines. `eole telemetry
 * summarize FILE...` merges one or more streams (e.g. the three files
 * of a 3-shard sweep) into per-worker utilization, the critical-path
 * cell, and the distinct cell set.
 */

#ifndef EOLE_SIM_TELEMETRY_HH
#define EOLE_SIM_TELEMETRY_HH

#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace eole {

class TelemetrySink
{
  public:
    /** Opens @p path for writing (fatal on failure). */
    explicit TelemetrySink(const std::string &path);

    /** Run manifest. @p command is the CLI verb ("run", "shard",
     *  "ckpt-save"); @p shard_host/@p shard_hosts are -1 when the run
     *  is not sharded. */
    void runStart(const std::string &command, const std::string &plan,
                  std::uint64_t seed, std::uint64_t warmup,
                  std::uint64_t measure, const std::string &filter,
                  const std::string &sample, int jobs, std::size_t cells,
                  int shard_host, int shard_hosts);

    /** A cell matched the filter and entered the run (also emitted for
     *  cells later satisfied from the result store). */
    void cellQueued(const std::string &config, const std::string &workload);

    /** @p kind is "cell", "warm" or "interval"; @p interval is the
     *  sampling interval index (-1 when not applicable). */
    void jobStart(const char *kind, const std::string &config,
                  const std::string &workload, int worker,
                  long interval = -1);
    void jobFinish(const char *kind, const std::string &config,
                   const std::string &workload, int worker, double wall_ms,
                   bool ok, long interval = -1);

    void storeCounts(std::size_t hits, std::size_t computed);
    /** Trace-cache outcome counters. hits/misses are totals across
     *  both source kinds; file_hits/file_misses break out mmap-backed
     *  `file:` workloads and evicts counts drops that released a
     *  trace. */
    void traceCacheCounts(std::uint64_t hits, std::uint64_t misses,
                          std::uint64_t file_hits = 0,
                          std::uint64_t file_misses = 0,
                          std::uint64_t evicts = 0);

    void runFinish(std::size_t cells);

    /** Terminal event for CLI early exits: the stream always ends with
     *  run_finish or run_aborted, never mid-sentence. */
    void runAborted(const std::string &reason);

    /** Milliseconds since the sink was opened (event timestamps). */
    double elapsedMs() const;

  private:
    void emit(const std::string &body);

    std::ofstream os;
    std::mutex mu;
    std::chrono::steady_clock::time_point start;
};

/** One parsed JSONL event: the "ev" tag plus flat key/value fields
 *  (strings and numbers kept apart; booleans land in nums as 0/1). */
struct TelemetryEvent
{
    std::string ev;
    std::map<std::string, std::string> strs;
    std::map<std::string, double> nums;

    double num(const std::string &key, double fallback = 0) const;
    std::string str(const std::string &key) const;
};

/** Parse a telemetry JSONL file (fatal on malformed lines). */
std::vector<TelemetryEvent> readTelemetry(const std::string &path);

/** Merge one or more streams into a human summary: per-worker
 *  utilization, the critical-path (longest) job, counters, and the
 *  sorted distinct cell set. */
void summarizeTelemetry(const std::vector<std::string> &paths,
                        std::ostream &out);

} // namespace eole

#endif // EOLE_SIM_TELEMETRY_HH
