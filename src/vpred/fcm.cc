#include "vpred/fcm.hh"

namespace eole {

FcmPredictor::FcmPredictor(const VpConfig &config, std::uint64_t seed)
    : histTable(1u << config.fcmHistLog2Entries),
      valueTable(1u << config.fcmValueLog2Entries),
      histMask((1u << config.fcmHistLog2Entries) - 1),
      valueMask((1u << config.fcmValueLog2Entries) - 1),
      fpc(config.fpcVector.empty() ? Fpc::paperVector() : config.fpcVector),
      rng(seed)
{
}

std::uint32_t
FcmPredictor::histIndex(Addr pc) const
{
    return static_cast<std::uint32_t>(pc >> 2) & histMask;
}

std::uint32_t
FcmPredictor::foldValue(RegVal v) const
{
    // Mangle the 64-bit value down to the context-hash contribution.
    std::uint64_t x = v * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::uint32_t>(x >> 40);
}

VpLookup
FcmPredictor::predict(Addr pc)
{
    VpLookup l;
    const HistEntry &h = histTable[histIndex(pc)];
    l.idx[0] = histIndex(pc);
    if (h.valid && h.tag == pc) {
        const std::uint32_t vidx = h.ctx & valueMask;
        l.idx[1] = vidx;
        const ValueEntry &v = valueTable[vidx];
        l.predictionMade = true;
        l.value = v.value;
        l.confident = fpc.saturated(v.conf);
    }
    return l;
}

void
FcmPredictor::commit(Addr pc, RegVal actual, const VpLookup &lookup)
{
    HistEntry &h = histTable[lookup.idx[0]];
    if (!h.valid || h.tag != pc) {
        h = HistEntry{};
        h.tag = pc;
        h.valid = true;
        h.ctx = foldValue(actual);
        return;
    }
    if (lookup.predictionMade) {
        // Second level was read through the context captured at lookup.
        ValueEntry &v = valueTable[lookup.idx[1]];
        const bool correct = lookup.value == actual;
        fpc.update(v.conf, correct, rng);
        if (!correct && v.conf == 0)
            v.value = actual;
    } else {
        // First sighting of this context: install the value.
        ValueEntry &v = valueTable[h.ctx & valueMask];
        if (v.conf == 0)
            v.value = actual;
    }
    // Advance the per-PC context with the committed value (order-N
    // shift-and-fold).
    h.ctx = ((h.ctx << 7) | (h.ctx >> 25)) ^ foldValue(actual);
}

void
FcmPredictor::snapshotState(std::ostream &os) const
{
    SnapshotWriter w(os);
    w.tag("fcm").u64(1).u64(histTable.size()).u64(valueTable.size());
    w.end();
    w.tag("fcm.h");
    for (const HistEntry &h : histTable)
        w.flag(h.valid).u64(h.tag).u64(h.ctx);
    w.end();
    w.tag("fcm.v");
    for (const ValueEntry &v : valueTable)
        w.u64(v.value).u64(v.conf);
    w.end();
    w.tag("fcm.rng");
    for (int i = 0; i < Rng::stateWords; ++i)
        w.u64(rng.word(i));
    w.end();
}

void
FcmPredictor::restoreState(std::istream &is)
{
    SnapshotReader r(is, name());
    r.line("fcm");
    r.fatalIf(r.u64("version") != 1, "unsupported version");
    r.fatalIf(r.u64("histEntries") != histTable.size(),
              "FCM history-table size mismatch");
    r.fatalIf(r.u64("valueEntries") != valueTable.size(),
              "FCM value-table size mismatch");
    r.endLine();
    r.line("fcm.h");
    for (HistEntry &h : histTable) {
        h.valid = r.flag("valid");
        h.tag = r.u64("tag");
        h.ctx = static_cast<std::uint32_t>(r.u64Max("ctx", 0xffffffff));
    }
    r.endLine();
    r.line("fcm.v");
    for (ValueEntry &v : valueTable) {
        v.value = r.u64("value");
        v.conf = static_cast<std::uint8_t>(r.u64Max("conf", fpc.max()));
    }
    r.endLine();
    r.line("fcm.rng");
    for (int i = 0; i < Rng::stateWords; ++i)
        rng.setWord(i, r.u64("word"));
    r.endLine();
}

} // namespace eole
