/**
 * @file
 * Unit tests for the common substrate: saturating counters, RNG,
 * bounded queues, delayed pipes, stats records and FPC confidence.
 */

#include <gtest/gtest.h>

#include "common/queues.hh"
#include "common/random.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "vpred/fpc.hh"

using namespace eole;

TEST(SatCounter, SaturatesHighAndLow)
{
    SatCounter c(2);
    EXPECT_TRUE(c.isZero());
    EXPECT_FALSE(c.decrement());
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(c.increment());
    EXPECT_TRUE(c.isSaturated());
    EXPECT_EQ(c.value(), 3u);
    EXPECT_FALSE(c.increment());
    EXPECT_EQ(c.value(), 3u);
}

TEST(SatCounter, ResetClamps)
{
    SatCounter c(3);
    c.reset(99);
    EXPECT_EQ(c.value(), 7u);
    c.reset(2);
    EXPECT_EQ(c.value(), 2u);
}

TEST(SignedSatCounter, RangeAndPrediction)
{
    SignedSatCounter c(3, 0);
    EXPECT_EQ(c.min(), -4);
    EXPECT_EQ(c.max(), 3);
    EXPECT_TRUE(c.predictTaken());
    EXPECT_TRUE(c.isWeak());
    for (int i = 0; i < 10; ++i)
        c.update(true);
    EXPECT_EQ(c.value(), 3);
    EXPECT_TRUE(c.isSaturated());
    for (int i = 0; i < 10; ++i)
        c.update(false);
    EXPECT_EQ(c.value(), -4);
    EXPECT_FALSE(c.predictTaken());
    EXPECT_TRUE(c.isSaturated());
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42), c(43);
    bool all_equal = true;
    bool any_diff_seed_diff = false;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t va = a.next();
        all_equal = all_equal && va == b.next();
        any_diff_seed_diff = any_diff_seed_diff || va != c.next();
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_seed_diff);
}

TEST(Rng, BoundedAndRoughlyUniform)
{
    Rng r(7);
    int buckets[10] = {};
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t v = r.below(10);
        ASSERT_LT(v, 10u);
        ++buckets[v];
    }
    for (int b = 0; b < 10; ++b) {
        EXPECT_NEAR(buckets[b], n / 10, n / 100);
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(11);
    int hits = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(1.0 / 32);
    EXPECT_NEAR(hits / double(n), 1.0 / 32, 0.003);
}

TEST(CircularQueue, FifoOrderAndWraparound)
{
    CircularQueue<int> q(4);
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 4; ++i)
            q.pushBack(round * 10 + i);
        EXPECT_TRUE(q.full());
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(q.popFront(), round * 10 + i);
        EXPECT_TRUE(q.empty());
    }
}

TEST(CircularQueue, PopBackForSquash)
{
    CircularQueue<int> q(8);
    for (int i = 0; i < 6; ++i)
        q.pushBack(i);
    EXPECT_EQ(q.popBack(), 5);
    EXPECT_EQ(q.popBack(), 4);
    EXPECT_EQ(q.back(), 3);
    EXPECT_EQ(q.front(), 0);
    EXPECT_EQ(q.size(), 4u);
}

TEST(CircularQueue, IndexedAccessFromHead)
{
    CircularQueue<int> q(4);
    q.pushBack(1);
    q.pushBack(2);
    q.popFront();
    q.pushBack(3);
    q.pushBack(4);
    q.pushBack(5);  // wraps internally
    EXPECT_EQ(q.at(0), 2);
    EXPECT_EQ(q.at(3), 5);
}

TEST(DelayedPipe, EnforcesLatency)
{
    DelayedPipe<int> p(3, 2);
    p.push(10, 1);
    EXPECT_FALSE(p.canPop(10));
    EXPECT_FALSE(p.canPop(12));
    EXPECT_TRUE(p.canPop(13));
    EXPECT_EQ(p.pop(13), 1);
}

TEST(DelayedPipe, EnforcesBandwidth)
{
    DelayedPipe<int> p(1, 2);
    EXPECT_TRUE(p.canPush(5));
    p.push(5, 1);
    p.push(5, 2);
    EXPECT_FALSE(p.canPush(5));
    EXPECT_TRUE(p.canPush(6));
}

TEST(DelayedPipe, EnforcesCapacity)
{
    DelayedPipe<int> p(10, 0, 3);
    p.push(0, 1);
    p.push(0, 2);
    p.push(0, 3);
    EXPECT_FALSE(p.canPush(0));
    EXPECT_FALSE(p.canPush(1));
}

TEST(DelayedPipe, RemoveIfDropsMatching)
{
    DelayedPipe<int> p(1, 0);
    for (int i = 0; i < 6; ++i)
        p.push(0, i);
    p.removeIf([](int v) { return v % 2 == 0; });
    EXPECT_EQ(p.size(), 3u);
    EXPECT_EQ(p.pop(100), 1);
    EXPECT_EQ(p.pop(100), 3);
    EXPECT_EQ(p.pop(100), 5);
}

namespace {

/** Drain wheel @p w up to @p now into a flat (cycle, value) list. */
template <typename Wheel>
std::vector<std::pair<Cycle, int>>
drained(Wheel &w, Cycle now)
{
    std::vector<std::pair<Cycle, int>> out;
    w.drainUpTo(now, [&](Cycle c, int v) { out.emplace_back(c, v); });
    return out;
}

} // namespace

TEST(TimingWheel, DrainsInCycleOrderInsertionOrderWithinCycle)
{
    TimingWheel<int, 8> w;
    w.schedule(5, 50);
    w.schedule(3, 30);
    w.schedule(5, 51);   // same cycle: must come out after 50
    w.schedule(4, 40);
    EXPECT_EQ(w.size(), 4u);

    const auto out = drained(w, 4);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], (std::pair<Cycle, int>{3, 30}));
    EXPECT_EQ(out[1], (std::pair<Cycle, int>{4, 40}));
    EXPECT_EQ(w.size(), 2u);
    EXPECT_EQ(w.drainCursor(), 5u);

    const auto rest = drained(w, 10);
    ASSERT_EQ(rest.size(), 2u);
    EXPECT_EQ(rest[0], (std::pair<Cycle, int>{5, 50}));
    EXPECT_EQ(rest[1], (std::pair<Cycle, int>{5, 51}));
    EXPECT_TRUE(w.empty());
}

TEST(TimingWheel, OverflowBeyondHorizonDrainsCorrectly)
{
    TimingWheel<int, 8> w;
    // Distance >= Horizon goes to the overflow map; it must still
    // interleave correctly with wheel-resident cycles.
    w.schedule(20, 200);  // overflow (20 - 0 >= 8)
    w.schedule(2, 21);    // wheel
    w.schedule(9, 90);    // overflow (9 - 0 >= 8)
    EXPECT_EQ(w.size(), 3u);

    const auto out = drained(w, 25);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], (std::pair<Cycle, int>{2, 21}));
    EXPECT_EQ(out[1], (std::pair<Cycle, int>{9, 90}));
    EXPECT_EQ(out[2], (std::pair<Cycle, int>{20, 200}));
    EXPECT_TRUE(w.empty());
}

TEST(TimingWheel, SameCycleSplitBetweenOverflowAndWheelKeepsOrder)
{
    TimingWheel<int, 8> w;
    w.schedule(10, 100);  // overflow (distance 10 >= 8)
    // Drain nothing but slide the window so cycle 10 becomes
    // wheel-reachable, then schedule the same cycle again: the second
    // event must append to the overflow entry, not the wheel slot,
    // to keep within-cycle insertion order.
    w.drainUpTo(4, [](Cycle, int) { FAIL() << "nothing due yet"; });
    w.schedule(10, 101);
    const auto out = drained(w, 12);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], (std::pair<Cycle, int>{10, 100}));
    EXPECT_EQ(out[1], (std::pair<Cycle, int>{10, 101}));
}

TEST(TimingWheel, ForwardTimeJumpBoundedByHorizon)
{
    TimingWheel<int, 8> w;
    w.schedule(1, 10);
    w.schedule(100, 1000);  // overflow
    // A functional-warm style jump far past everything: one drain call
    // visits each wheel slot at most once and still delivers both.
    const auto out = drained(w, 1000000);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], (std::pair<Cycle, int>{1, 10}));
    EXPECT_EQ(out[1], (std::pair<Cycle, int>{100, 1000}));
    EXPECT_EQ(w.drainCursor(), 1000001u);
    // The wheel keeps working after the jump.
    w.schedule(1000002, 7);
    const auto later = drained(w, 1000002);
    ASSERT_EQ(later.size(), 1u);
    EXPECT_EQ(later[0], (std::pair<Cycle, int>{1000002, 7}));
}

TEST(TimingWheel, ClearDropsEverything)
{
    TimingWheel<int, 8> w;
    w.schedule(1, 1);
    w.schedule(30, 3);  // overflow too
    w.clear();
    EXPECT_TRUE(w.empty());
    EXPECT_TRUE(drained(w, 50).empty());
}

TEST(TimingWheel, SchedulingBehindTheCursorPanics)
{
    TimingWheel<int, 8> w;
    w.drainUpTo(10, [](Cycle, int) {});
    EXPECT_DEATH(w.schedule(5, 1), "behind drain cursor");
}

TEST(StatRecord, GetAndPrefix)
{
    StatRecord a;
    a.add("x", 1.5);
    StatRecord b;
    b.add("hits", 10);
    a.addAll("l1.", b);
    EXPECT_DOUBLE_EQ(a.get("x"), 1.5);
    EXPECT_DOUBLE_EQ(a.get("l1.hits"), 10.0);
    EXPECT_FALSE(a.has("missing"));
    EXPECT_DOUBLE_EQ(a.get("missing"), 0.0);
}

TEST(Fpc, ResetsOnWrong)
{
    Fpc fpc({1.0, 1.0, 1.0});
    Rng rng(3);
    std::uint8_t c = 0;
    fpc.update(c, true, rng);
    fpc.update(c, true, rng);
    EXPECT_EQ(c, 2);
    fpc.update(c, false, rng);
    EXPECT_EQ(c, 0);
}

TEST(Fpc, DeterministicVectorSaturates)
{
    Fpc fpc({1.0, 1.0, 1.0});
    Rng rng(3);
    std::uint8_t c = 0;
    for (int i = 0; i < 3; ++i)
        fpc.update(c, true, rng);
    EXPECT_TRUE(fpc.saturated(c));
    // Saturated counters stay saturated on further correct outcomes.
    fpc.update(c, true, rng);
    EXPECT_EQ(c, fpc.max());
}

TEST(Fpc, PaperVectorNeedsManyCorrectPredictions)
{
    // With v = {1, 4x 1/32, 2x 1/64}, the expected number of correct
    // predictions to saturate is 1 + 4*32 + 2*64 = 257. Check the
    // empirical mean over many trials is in that ballpark.
    Fpc fpc;  // paper vector
    Rng rng(17);
    double total = 0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
        std::uint8_t c = 0;
        int steps = 0;
        while (!fpc.saturated(c)) {
            fpc.update(c, true, rng);
            ++steps;
        }
        total += steps;
    }
    EXPECT_NEAR(total / trials, 257.0, 30.0);
}

TEST(Fpc, RejectsBadVectors)
{
    EXPECT_DEATH({ Fpc bad(std::vector<double>{}); }, "");
    EXPECT_DEATH({ Fpc bad(std::vector<double>{0.0}); }, "");
    EXPECT_DEATH({ Fpc bad(std::vector<double>{2.0}); }, "");
}
