/**
 * Figure 8: EOLE and the VP baseline as the instruction-queue size
 * shrinks from 64 to 48 entries, normalized to Baseline_VP_6_64.
 */
#include "bench_common.hh"

using namespace eole;

int
main()
{
    announce("Fig 8", "IQ-size sensitivity of EOLE vs baseline");

    const SimConfig ref = configs::baselineVp(6, 64);
    const SimConfig bvp48 = configs::baselineVp(6, 48);
    const SimConfig eole48 = configs::eole(6, 48);
    const SimConfig eole64 = configs::eole(6, 64);
    const auto &names = workloads::allNames();
    const auto results = runGrid({ref, bvp48, eole48, eole64}, names);

    printTable("Speedup over Baseline_VP_6_64 (Fig 8)", results,
               {bvp48.name, eole48.name, eole64.name}, names, "ipc",
               ref.name);
    printTable("Average IQ occupancy (context)", results,
               {ref.name, eole48.name, eole64.name}, names,
               "avg_iq_occupancy");
    return 0;
}
