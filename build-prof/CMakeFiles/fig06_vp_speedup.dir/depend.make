# Empty dependencies file for fig06_vp_speedup.
# This may be replaced when dependencies are built.
