#include "sim/artifact.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/build_info.hh"
#include "common/logging.hh"
#include "sim/json.hh"

namespace eole {

namespace {

RunResult
parseCell(JsonParser &p)
{
    RunResult cell;
    p.expect('{');
    do {
        const std::string key = p.parseString();
        p.expect(':');
        if (key == "config") {
            cell.config = p.parseString();
        } else if (key == "workload") {
            cell.workload = p.parseString();
        } else if (key == "seed") {
            cell.seed = p.parseU64();
        } else if (key == "params") {
            p.expect('{');
            if (!p.tryConsume('}')) {
                do {
                    const std::string pk = p.parseString();
                    p.expect(':');
                    cell.params.emplace_back(pk, p.parseString());
                } while (p.tryConsume(','));
                p.expect('}');
            }
        } else if (key == "stats") {
            p.expect('{');
            if (!p.tryConsume('}')) {
                do {
                    const std::string stat = p.parseString();
                    p.expect(':');
                    cell.stats.add(stat, p.parseNumber());
                } while (p.tryConsume(','));
                p.expect('}');
            }
        } else {
            p.skipValue();
        }
    } while (p.tryConsume(','));
    p.expect('}');
    return cell;
}

} // namespace

void
writeJsonArtifact(std::ostream &os, const PlanResult &result)
{
    os << "{\n";
    os << "  \"schema\": \"eole-sweep-v2\",\n";
    // Provenance, not identity: readers skip it, diffArtifacts ignores
    // it, and within one binary it is a constant — so all byte-identity
    // contracts (jobs/cache/store/shard invariance) hold unchanged.
    os << "  \"build\": ";
    jsonWriteEscaped(os, buildInfoString());
    os << ",\n";
    os << "  \"plan\": ";
    jsonWriteEscaped(os, result.plan);
    os << ",\n";
    os << "  \"seed\": " << result.seed << ",\n";
    os << "  \"warmup\": " << result.warmup << ",\n";
    os << "  \"measure\": " << result.measure << ",\n";
    os << "  \"filter\": ";
    jsonWriteEscaped(os, result.filter);
    os << ",\n";
    os << "  \"sample\": {\"intervals\": " << result.sample.intervals
       << ", \"interval_uops\": " << result.sample.intervalUops
       << ", \"detail_uops\": " << result.sample.detailUops
       << ", \"warm_bound\": " << result.sample.warmBound << "},\n";
    os << "  \"cells\": [";
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        const RunResult &cell = result.cells[i];
        os << (i ? ",\n" : "\n");
        os << "    {\n";
        os << "      \"config\": ";
        jsonWriteEscaped(os, cell.config);
        os << ",\n";
        os << "      \"workload\": ";
        jsonWriteEscaped(os, cell.workload);
        os << ",\n";
        os << "      \"seed\": " << cell.seed << ",\n";
        os << "      \"params\": {";
        for (std::size_t k = 0; k < cell.params.size(); ++k) {
            os << (k ? ",\n" : "\n");
            os << "        ";
            jsonWriteEscaped(os, cell.params[k].first);
            os << ": ";
            jsonWriteEscaped(os, cell.params[k].second);
        }
        os << (cell.params.empty() ? "}" : "\n      }") << ",\n";
        os << "      \"stats\": {";
        const auto &stats = cell.stats.all();
        for (std::size_t k = 0; k < stats.size(); ++k) {
            os << (k ? ",\n" : "\n");
            os << "        ";
            jsonWriteEscaped(os, stats[k].first);
            os << ": " << jsonNumberText(stats[k].second);
        }
        os << (stats.empty() ? "}" : "\n      }") << "\n";
        os << "    }";
    }
    os << (result.cells.empty() ? "]" : "\n  ]") << "\n";
    os << "}\n";
}

std::string
jsonArtifactString(const PlanResult &result)
{
    std::ostringstream oss;
    writeJsonArtifact(oss, result);
    return oss.str();
}

void
writeCsvArtifact(std::ostream &os, const PlanResult &result)
{
    os << "plan,config,workload,seed,stat,value\n";
    for (const RunResult &cell : result.cells) {
        for (const auto &[stat, value] : cell.stats.all()) {
            os << result.plan << ',' << cell.config << ','
               << cell.workload << ',' << cell.seed << ',' << stat << ','
               << jsonNumberText(value) << '\n';
        }
    }
}

PlanResult
readJsonArtifact(std::istream &is)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();

    PlanResult result;
    std::string schema;
    JsonParser p(text);
    p.expect('{');
    do {
        const std::string key = p.parseString();
        p.expect(':');
        if (key == "schema") {
            schema = p.parseString();
        } else if (key == "plan") {
            result.plan = p.parseString();
        } else if (key == "seed") {
            result.seed = p.parseU64();
        } else if (key == "warmup") {
            result.warmup = p.parseU64();
        } else if (key == "measure") {
            result.measure = p.parseU64();
        } else if (key == "filter") {
            result.filter = p.parseString();
        } else if (key == "sample") {
            p.expect('{');
            if (!p.tryConsume('}')) {
                do {
                    const std::string sk = p.parseString();
                    p.expect(':');
                    if (sk == "intervals")
                        result.sample.intervals = p.parseU64();
                    else if (sk == "interval_uops")
                        result.sample.intervalUops = p.parseU64();
                    else if (sk == "detail_uops")
                        result.sample.detailUops = p.parseU64();
                    else if (sk == "warm_bound")
                        result.sample.warmBound = p.parseU64();
                    else
                        p.skipValue();
                } while (p.tryConsume(','));
                p.expect('}');
            }
        } else if (key == "cells") {
            p.expect('[');
            if (!p.tryConsume(']')) {
                do {
                    result.cells.push_back(parseCell(p));
                } while (p.tryConsume(','));
                p.expect(']');
            }
        } else {
            p.skipValue();
        }
    } while (p.tryConsume(','));
    p.expect('}');
    p.finish();

    // v1 artifacts predate embedded config maps; their cells read back
    // with empty params (diff treats a wholly-absent map as one
    // difference per cell, not one per key).
    fatal_if(schema != "eole-sweep-v2" && schema != "eole-sweep-v1",
             "unsupported artifact schema \"%s\"", schema.c_str());
    return result;
}

PlanResult
readJsonArtifactFile(const std::string &path)
{
    std::ifstream is(path);
    fatal_if(!is, "cannot read artifact %s", path.c_str());
    return readJsonArtifact(is);
}

std::size_t
diffArtifacts(const PlanResult &a, const PlanResult &b,
              const DiffOptions &options, std::ostream &os)
{
    std::size_t diffs = 0;
    auto report = [&](const std::string &line) {
        ++diffs;
        if (static_cast<int>(diffs) <= options.maxPrint)
            os << "  " << line << "\n";
    };

    if (a.warmup != b.warmup || a.measure != b.measure) {
        os << "note: run lengths differ (a: " << a.warmup << "+"
           << a.measure << ", b: " << b.warmup << "+" << b.measure
           << " µ-ops); stat differences are expected\n";
    }

    auto close = [&](double x, double y) {
        if (x == y)
            return true;
        const double scale = std::max(std::fabs(x), std::fabs(y));
        return std::fabs(x - y) <= options.absTol + options.relTol * scale;
    };

    auto isCiMetadata = [&](const std::string &stat) {
        if (!options.ciOverlap)
            return false;
        auto endsWith = [&](const char *suffix) {
            const std::size_t n = std::strlen(suffix);
            return stat.size() >= n
                && stat.compare(stat.size() - n, n, suffix) == 0;
        };
        // sample_* stats describe the sampling run itself (interval
        // placement, warming volume), not the measured quantity.
        return endsWith("_ci95") || endsWith("_stddev")
            || stat.rfind("sample_", 0) == 0;
    };

    // Config drift: the embedded canonical maps must agree exactly —
    // two cells sharing a name but not a configuration are different
    // experiments, whatever their stats say.
    auto paramOf = [](const RunResult &cell, const std::string &key)
        -> const std::string * {
        for (const auto &[k, v] : cell.params) {
            if (k == key)
                return &v;
        }
        return nullptr;
    };

    for (const RunResult &ca : a.cells) {
        const RunResult *cb = b.find(ca.config, ca.workload);
        const std::string id = ca.config + "/" + ca.workload;
        if (!cb) {
            report("cell " + id + " missing from b");
            continue;
        }
        if (ca.params.empty() != cb->params.empty()) {
            // One side is a legacy v1 artifact: one difference per
            // cell, not one per key.
            report(id + ": config map missing from "
                   + (ca.params.empty() ? "a" : "b"));
        } else {
            for (const auto &[key, va] : ca.params) {
                const std::string *vb = paramOf(*cb, key);
                if (!vb) {
                    report(id + ": config key " + key
                           + " missing from b");
                } else if (*vb != va) {
                    report(id + ": config drift: " + key + " a=" + va
                           + " b=" + *vb);
                }
            }
            for (const auto &[key, vb] : cb->params) {
                (void)vb;
                if (!paramOf(ca, key)) {
                    report(id + ": config key " + key
                           + " missing from a");
                }
            }
        }
        for (const auto &[stat, va] : ca.stats.all()) {
            if (!cb->stats.has(stat)) {
                // Missing keys are always a difference — even under
                // tolerance, even in CI mode (schema drift is never
                // "equal"; regression-pinned in test_experiment.cc).
                report(id + ": stat " + stat + " missing from b");
                continue;
            }
            if (isCiMetadata(stat))
                continue;
            const double vb = cb->stats.get(stat);
            const std::string ciKey = stat + "_ci95";
            if (options.ciOverlap && ca.stats.has(ciKey)
                && cb->stats.has(ciKey)) {
                const double spread =
                    ca.stats.get(ciKey) + cb->stats.get(ciKey);
                if (std::fabs(va - vb) <= spread + options.absTol)
                    continue;
                report(id + ": " + stat + " a=" + std::to_string(va)
                       + " b=" + std::to_string(vb)
                       + " beyond CI overlap (" + std::to_string(spread)
                       + ")");
                continue;
            }
            if (!close(va, vb)) {
                report(id + ": " + stat + " " + std::string("a=")
                       + std::to_string(va) + " b=" + std::to_string(vb));
            }
        }
        // Keys only b has are differences too (see header comment).
        for (const auto &[stat, vb] : cb->stats.all()) {
            (void)vb;
            if (!ca.stats.has(stat))
                report(id + ": stat " + stat + " missing from a");
        }
    }
    for (const RunResult &cb : b.cells) {
        if (!a.find(cb.config, cb.workload))
            report("cell " + cb.config + "/" + cb.workload
                   + " missing from a");
    }

    if (static_cast<int>(diffs) > options.maxPrint) {
        os << "  ... " << (diffs - options.maxPrint)
           << " more difference(s)\n";
    }
    return diffs;
}

} // namespace eole
