# Empty compiler generated dependencies file for eole.
# This may be replaced when dependencies are built.
