/**
 * @file
 * Rename stage with the EOLE Early Execution block (§3.2).
 *
 * Renames up to renameWidth µ-ops per cycle out of the front-end pipe
 * (bank-aware round-robin destination allocation), runs Early
 * Execution in parallel with rename on the rank of ALUs beside it,
 * publishes EE results and used predictions on the local bypass, and
 * makes the Late Execution routing decisions (§3.3). The EE block is
 * owned by this stage; its bypass state is dropped on every squash or
 * fetch redirect.
 */

#ifndef EOLE_PIPELINE_STAGES_RENAME_HH
#define EOLE_PIPELINE_STAGES_RENAME_HH

#include <vector>

#include "pipeline/dyn_inst.hh"
#include "pipeline/stages/early_exec.hh"
#include "pipeline/stages/stage.hh"
#include "sim/config.hh"

namespace eole {

class RenameStage : public Stage
{
  public:
    explicit RenameStage(const SimConfig &cfg);

    const char *name() const override { return "rename"; }
    void tick(PipelineState &st) override;
    void squash(PipelineState &st, SeqNum keep_seq,
                Cycle resume_fetch_at) override;
    void onFetchRedirect(PipelineState &st) override;
    void resetStats() override;
    void addStats(CoreStats &out) const override;

    EarlyExecBlock &earlyExecBlock() { return ee; }

  protected:
    /** Try to execute @p di on the EE block (operands from immediates,
     *  predictions and the local bypass only -- never the PRF). */
    bool tryEarlyExecute(DynInst &di);

  private:
    struct Stats
    {
        std::uint64_t renameBankStalls = 0;
    };

    int renameWidth;
    int dispatchWidth;
    int prfBanks;
    bool earlyExec;
    bool lateExec;
    bool lateExecBranches;

    EarlyExecBlock ee;
    std::vector<DynInst *> renameGroup;   //!< scratch: this cycle's group
                                          //!< (borrowed; renameOut owns)

    Stats s;
};

} // namespace eole

#endif // EOLE_PIPELINE_STAGES_RENAME_HH
