/**
 * @file
 * Tests for sharded sweeps (sim/shard.hh) and the content-addressed
 * result store (sim/store.hh): deterministic coordinator-free cell
 * partitioning, merge-of-N byte-identical to the single-host artifact
 * (plain, sampled re-warm and warm-once-checkpointed engines, across
 * --jobs and trace-cache settings), line-numbered rejection of
 * corrupted or inconsistent partials, store key stability, hit/miss/
 * eviction behaviour, and zero-cells-computed warm re-runs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "common/hash.hh"
#include "sim/artifact.hh"
#include "sim/plans.hh"
#include "sim/sample/sample.hh"
#include "sim/shard.hh"
#include "sim/store.hh"
#include "sim/sweep.hh"

using namespace eole;

namespace {

constexpr std::uint64_t kHosts = 3;

/** The 2x2 smoke plan pinned at explicit short run lengths. */
ExperimentPlan
tinyPlan()
{
    ExperimentPlan p = plans::get("smoke");
    p.warmup = 2000;
    p.measure = 20000;
    return p;
}

/** Run all kHosts slices with deliberately heterogeneous worker and
 *  cache settings, round-tripping each partial through its text form
 *  — merging must erase every execution-environment difference. */
std::vector<ShardArtifact>
runAllShards(const ExperimentPlan &plan, const SampleSpec &spec,
             SweepOptions base)
{
    std::vector<ShardArtifact> parts;
    for (std::uint64_t h = 0; h < kHosts; ++h) {
        SweepOptions o = base;
        o.jobs = static_cast<int>(h) + 1;
        o.useTraceCache = (h % 2) == 0;
        o.shard.hosts = kHosts;
        o.shard.host = h;
        const ShardArtifact part = runShard(plan, spec, o);

        std::istringstream is(shardArtifactString(part));
        ShardArtifact back;
        std::string err;
        EXPECT_TRUE(tryReadShardArtifact(is, &back, &err)) << err;
        parts.push_back(std::move(back));
    }
    return parts;
}

/** A scratch directory under the test's cwd, fresh per call. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = "test_shard_" + name + ".tmp";
    std::filesystem::remove_all(dir);
    return dir;
}

StoreKey
sampleKey()
{
    StoreKey key;
    key.kind = "cell";
    key.config = "EOLE_4_64";
    key.params = {{"core.issueWidth", "4"}, {"vp.kind", "VTAGE"}};
    key.workload = "164.gzip";
    key.seed = 12345;
    key.warmup = 2000;
    key.measure = 20000;
    return key;
}

} // namespace

TEST(Shard, AssignmentPartitionsEveryCell)
{
    const ExperimentPlan p = tinyPlan();
    for (const SimConfig &c : p.configs) {
        for (const std::string &w : p.workloads) {
            const std::uint64_t s =
                shardOfCell(p.seed, c.seed, c.name, w, kHosts);
            EXPECT_LT(s, kHosts);
            // Stable: the assignment is a pure function.
            EXPECT_EQ(s, shardOfCell(p.seed, c.seed, c.name, w, kHosts));
            std::size_t owners = 0;
            for (std::uint64_t h = 0; h < kHosts; ++h) {
                ShardSlice slice{kHosts, h};
                if (slice.owns(p.seed, c.seed, c.name, w))
                    ++owners;
            }
            EXPECT_EQ(owners, 1u);
        }
    }
    // A disabled slice owns everything.
    ShardSlice off;
    EXPECT_FALSE(off.enabled());
    EXPECT_TRUE(off.owns(p.seed, 0, "any", "thing"));
}

TEST(Shard, MergeByteIdenticalToSingleHostPlain)
{
    const ExperimentPlan p = tinyPlan();
    SweepOptions single;
    single.jobs = 2;
    const std::string want = jsonArtifactString(runPlan(p, single));

    const auto parts = runAllShards(p, SampleSpec{}, SweepOptions{});
    std::size_t cells = 0;
    for (const ShardArtifact &s : parts)
        cells += s.cells.size();
    EXPECT_EQ(cells, p.gridSize());

    const PlanResult merged = mergeShardArtifacts(parts);
    EXPECT_EQ(jsonArtifactString(merged), want);
}

TEST(Shard, MergeByteIdenticalToSingleHostSampledRewarm)
{
    const ExperimentPlan p = tinyPlan();
    const SampleSpec spec = parseSampleSpec("3:2000:1000");
    SweepOptions base;
    base.sampleRewarm = true;  // the legacy per-interval warming path

    SweepOptions single = base;
    single.jobs = 2;
    const std::string want =
        jsonArtifactString(runSampledPlan(p, spec, single));

    const PlanResult merged =
        mergeShardArtifacts(runAllShards(p, spec, base));
    EXPECT_EQ(jsonArtifactString(merged), want);
}

TEST(Shard, MergeByteIdenticalToSingleHostWarmOnce)
{
    const ExperimentPlan p = tinyPlan();
    const SampleSpec spec = parseSampleSpec("3:2000:1000");

    SweepOptions single;
    single.jobs = 2;
    const PlanResult full = runSampledPlan(p, spec, single);
    // Prove the warm-once checkpoint path (not silent re-warming)
    // produced the merged numbers.
    for (const RunResult &cell : full.cells)
        EXPECT_GT(cell.stats.get("sample_restored_intervals"), 0.0);

    const PlanResult merged =
        mergeShardArtifacts(runAllShards(p, spec, SweepOptions{}));
    EXPECT_EQ(jsonArtifactString(merged), jsonArtifactString(full));
}

TEST(Shard, MergeRejectsMissingDuplicateAndForeignShards)
{
    const ExperimentPlan p = tinyPlan();
    const auto parts = runAllShards(p, SampleSpec{}, SweepOptions{});

    PlanResult out;
    std::string err;

    // Missing shard: coverage must fail with a which-slot diagnostic.
    std::vector<ShardArtifact> missing(parts.begin(), parts.end() - 1);
    EXPECT_FALSE(tryMergeShardArtifacts(missing, &out, &err));
    EXPECT_NE(err.find("covered by no partial"), std::string::npos)
        << err;

    // Duplicate shard index.
    std::vector<ShardArtifact> dup = parts;
    dup.push_back(parts.front());
    EXPECT_FALSE(tryMergeShardArtifacts(dup, &out, &err));
    EXPECT_NE(err.find("appears twice"), std::string::npos) << err;

    // A partial from a different run (seed drift) must be refused
    // even though its cells would slot in.
    std::vector<ShardArtifact> foreign = parts;
    foreign.back().seed ^= 1;
    EXPECT_FALSE(tryMergeShardArtifacts(foreign, &out, &err));
    EXPECT_NE(err.find("disagree on plan seed"), std::string::npos)
        << err;

    // Slot collision: two partials claiming one slot.
    std::vector<ShardArtifact> collide = parts;
    ASSERT_FALSE(collide[0].cells.empty());
    ASSERT_FALSE(collide[1].cells.empty());
    collide[1].cells.front().slot = collide[0].cells.front().slot;
    EXPECT_FALSE(tryMergeShardArtifacts(collide, &out, &err));
    EXPECT_NE(err.find("owned by two partials"), std::string::npos)
        << err;

    EXPECT_FALSE(tryMergeShardArtifacts({}, &out, &err));
}

TEST(Shard, ReaderRejectsCorruptionWithLineNumbers)
{
    const ExperimentPlan p = tinyPlan();
    SweepOptions o;
    o.shard.hosts = kHosts;
    o.shard.host = 0;
    const std::string text =
        shardArtifactString(runShard(p, SampleSpec{}, o));

    ShardArtifact out;
    std::string err;

    // Wrong schema word: rejected at line 1.
    {
        std::istringstream is("eole-shard-v9\n");
        EXPECT_FALSE(tryReadShardArtifact(is, &out, &err));
        EXPECT_NE(err.find("shard artifact line 1:"), std::string::npos)
            << err;
    }
    // Truncation at every prefix length must be a diagnostic naming a
    // line, never a crash or a silent success (the half-copied-shard
    // case the text format exists for).
    for (std::size_t cut = 0; cut + 1 < text.size();
         cut += 1 + text.size() / 37) {
        std::istringstream is(text.substr(0, cut));
        err.clear();
        EXPECT_FALSE(tryReadShardArtifact(is, &out, &err));
        EXPECT_NE(err.find("shard artifact line"), std::string::npos)
            << "cut at " << cut << ": " << err;
    }
    // A corrupted stat value names its exact line.
    {
        std::string bad = text;
        const std::size_t pos = bad.find("s ipc = ");
        ASSERT_NE(pos, std::string::npos);
        const std::size_t val = bad.find(" = ", pos) + 3;
        bad.replace(val, bad.find('\n', val) - val, "not-a-number");
        const int line = 1
            + static_cast<int>(std::count(bad.begin(),
                                          bad.begin()
                                              + static_cast<long>(pos),
                                          '\n'));
        std::istringstream is(bad);
        EXPECT_FALSE(tryReadShardArtifact(is, &out, &err));
        EXPECT_NE(err.find("shard artifact line "
                           + std::to_string(line)),
                  std::string::npos) << err;
        EXPECT_NE(err.find("bad stat value"), std::string::npos) << err;
    }
    // An intact artifact still reads after all that.
    {
        std::istringstream is(text);
        EXPECT_TRUE(tryReadShardArtifact(is, &out, &err)) << err;
        EXPECT_EQ(out.hosts, kHosts);
        EXPECT_EQ(out.cellsTotal, p.gridSize());
    }
}

TEST(Store, KeyHashStableAndSensitiveToEveryField)
{
    const StoreKey base = sampleKey();
    const std::string h = storeKeyHash(base);
    EXPECT_EQ(h.size(), 64u);
    EXPECT_EQ(h, storeKeyHash(base));  // same inputs => same key

    // Any single field change must produce a new key.
    std::vector<StoreKey> variants(9, base);
    variants[0].kind = "ckpt";
    variants[1].config = "EOLE_4_65";
    variants[2].params[0].second = "6";
    variants[3].workload = "186.crafty";
    variants[4].seed += 1;
    variants[5].warmup += 1;
    variants[6].measure += 1;
    variants[7].sample = parseSampleSpec("4:1000:500");
    variants[8].index = 7;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        EXPECT_NE(storeKeyHash(variants[i]), h) << "variant " << i;
        for (std::size_t j = i + 1; j < variants.size(); ++j) {
            EXPECT_NE(storeKeyHash(variants[i]),
                      storeKeyHash(variants[j]))
                << "variants " << i << " vs " << j;
        }
    }

    // SHA-256 itself against a FIPS 180-4 reference vector.
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Store, CellPayloadRoundTripsAndRejectsCorruption)
{
    StatRecord stats;
    stats.add("ipc", 1.234567890123456789);
    stats.add("cycles", 424242.0);
    const std::string text = cellPayloadText(stats);

    StatRecord back;
    std::string err;
    ASSERT_TRUE(tryParseCellPayload(text, &back, &err)) << err;
    // %.17g round-trip exactness is what makes cache-hit artifacts
    // byte-identical to computed ones.
    EXPECT_EQ(back.get("ipc"), stats.get("ipc"));
    EXPECT_EQ(back.get("cycles"), stats.get("cycles"));
    EXPECT_EQ(cellPayloadText(back), text);

    EXPECT_FALSE(tryParseCellPayload("eole-store-cell-v9\n", &back,
                                     &err));
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;
    std::string bad = text;
    bad.replace(bad.find("= 424242"), 8, "= oops42");
    EXPECT_FALSE(tryParseCellPayload(bad, &back, &err));
    // schema, count, ipc, then the mangled cycles line.
    EXPECT_NE(err.find("line 4"), std::string::npos) << err;
    EXPECT_FALSE(tryParseCellPayload(
        text.substr(0, text.size() - 5), &back, &err));
    EXPECT_NE(err.find("line"), std::string::npos) << err;
}

TEST(Store, HitMissPersistenceAndLruEviction)
{
    const std::string dir = scratchDir("lru");
    StoreKey a = sampleKey(), b = sampleKey(), c = sampleKey();
    b.seed += 1;
    c.seed += 2;

    {
        Store store(dir);
        store.put(a, "payload-a");
        store.put(b, "payload-b");
        store.put(c, "payload-c");
        std::string payload;
        EXPECT_FALSE(store.get(std::string(64, '0'), &payload));
        EXPECT_TRUE(store.get(storeKeyHash(b), &payload));
        EXPECT_EQ(payload, "payload-b");
    }
    {
        // Reopen: index, payloads and recency survive.
        Store store(dir);
        EXPECT_EQ(store.entries().size(), 3u);
        EXPECT_TRUE(store.contains(storeKeyHash(a)));

        // Recency survived the reopen: b was read after c was
        // inserted, so after this hit on `a` the LRU victim is `c`.
        std::string payload;
        EXPECT_TRUE(store.get(storeKeyHash(a), &payload));
        std::vector<Store::Entry> evicted;
        EXPECT_EQ(store.gc(2, ~0ULL, &evicted), 1u);
        ASSERT_EQ(evicted.size(), 1u);
        EXPECT_EQ(evicted[0].hash, storeKeyHash(c));
        EXPECT_FALSE(store.contains(storeKeyHash(c)));
        EXPECT_TRUE(store.contains(storeKeyHash(a)));
        EXPECT_TRUE(store.contains(storeKeyHash(b)));

        // Byte bound: evict until the total payload fits. `b` (tick
        // older than the just-bumped `a`) goes next.
        EXPECT_EQ(store.gc(~0ULL, 9, &evicted), 1u);
        EXPECT_EQ(store.entries().size(), 1u);
    }
    {
        // Eviction persisted; the object files are gone too.
        Store store(dir);
        EXPECT_EQ(store.entries().size(), 1u);
        std::string payload;
        EXPECT_FALSE(store.get(storeKeyHash(b), &payload));
        EXPECT_TRUE(store.get(storeKeyHash(a), &payload));
        EXPECT_EQ(payload, "payload-a");
    }
    std::filesystem::remove_all(dir);
}

TEST(Store, WarmRunComputesZeroCellsAndStaysByteIdentical)
{
    const ExperimentPlan p = tinyPlan();
    const std::string dir = scratchDir("warm");

    std::string cold, warm;
    {
        Store store(dir);
        SweepOptions o;
        o.store = &store;
        const PlanResult r = runPlan(p, o);
        EXPECT_EQ(r.storeHits, 0u);
        EXPECT_EQ(r.storeComputed, p.gridSize());
        cold = jsonArtifactString(r);
    }
    {
        Store store(dir);
        SweepOptions o;
        o.store = &store;
        o.jobs = 3;              // environment differences must not
        o.useTraceCache = false; // matter on the cache-hit path
        const PlanResult r = runPlan(p, o);
        EXPECT_EQ(r.storeHits, p.gridSize());
        EXPECT_EQ(r.storeComputed, 0u);
        warm = jsonArtifactString(r);
    }
    EXPECT_EQ(cold, warm);

    // A filtered re-run hits the store for the matching cells only.
    {
        Store store(dir);
        SweepOptions o;
        o.store = &store;
        o.filter = "164.gzip";
        const PlanResult r = runPlan(p, o);
        EXPECT_EQ(r.storeHits, r.cells.size());
        EXPECT_EQ(r.storeComputed, 0u);
    }
    std::filesystem::remove_all(dir);
}

TEST(Store, SampledWarmRunComputesZeroCells)
{
    const ExperimentPlan p = tinyPlan();
    const SampleSpec spec = parseSampleSpec("3:2000:1000");
    const std::string dir = scratchDir("sampled");

    std::string cold, warm;
    {
        Store store(dir);
        SweepOptions o;
        o.store = &store;
        const PlanResult r = runSampledPlan(p, spec, o);
        EXPECT_EQ(r.storeComputed, p.gridSize());
        cold = jsonArtifactString(r);
    }
    {
        Store store(dir);
        SweepOptions o;
        o.store = &store;
        const PlanResult r = runSampledPlan(p, spec, o);
        EXPECT_EQ(r.storeHits, p.gridSize());
        EXPECT_EQ(r.storeComputed, 0u);
        warm = jsonArtifactString(r);
    }
    EXPECT_EQ(cold, warm);

    // The sample spec is part of the key: a different spec (and a
    // full run) must miss rather than alias the sampled results.
    {
        Store store(dir);
        SweepOptions o;
        o.store = &store;
        const PlanResult r =
            runSampledPlan(p, parseSampleSpec("4:2000:1000"), o);
        EXPECT_EQ(r.storeHits, 0u);
        const PlanResult full = runPlan(p, o);
        EXPECT_EQ(full.storeHits, 0u);
    }
    std::filesystem::remove_all(dir);
}

TEST(Store, ShardedRunsShareOneStore)
{
    const ExperimentPlan p = tinyPlan();
    const std::string dir = scratchDir("shard");

    // Cold: the three shards together compute every cell once.
    std::size_t computed = 0;
    for (std::uint64_t h = 0; h < kHosts; ++h) {
        Store store(dir);
        SweepOptions o;
        o.store = &store;
        o.shard.hosts = kHosts;
        o.shard.host = h;
        const ShardArtifact part = runShard(p, SampleSpec{}, o);
        EXPECT_EQ(part.storeHits, 0u);
        computed += part.storeComputed;
    }
    EXPECT_EQ(computed, p.gridSize());

    // Warm: a single-host run over the same store computes nothing —
    // shard and plain runs share the same cell keys.
    Store store(dir);
    SweepOptions o;
    o.store = &store;
    const PlanResult r = runPlan(p, o);
    EXPECT_EQ(r.storeHits, p.gridSize());
    EXPECT_EQ(r.storeComputed, 0u);
    std::filesystem::remove_all(dir);
}
