/**
 * @file
 * Dynamic (in-flight) instruction state.
 */

#ifndef EOLE_PIPELINE_DYN_INST_HH
#define EOLE_PIPELINE_DYN_INST_HH

#include <memory>

#include "common/slab.hh"
#include "bpred/branch_unit.hh"
#include "isa/trace.hh"
#include "vpred/value_predictor.hh"

namespace eole {

/**
 * One in-flight µ-op. Created at fetch, destroyed after commit or
 * squash. Fields are grouped by the stage that fills them in.
 */
struct DynInst
{
    // --- Fetch ---
    /** The trace µ-op this in-flight instance executes. A pointer into
     *  the TraceSource's stable storage (the frozen vector, or the VM
     *  window deque — end pops never move other elements), not a copy:
     *  the source retires an entry only when commit retires the same
     *  seq, and a squashed µ-op's entry outlives every handle because
     *  it stays in the replay window until re-fetched and committed.
     *  Dropping the ~100-byte copy per µ-op is a measurable win on the
     *  fetch path and shrinks DynInst across every queue scan. */
    const TraceUop *uopP = nullptr;
    SeqNum seq = 0;
    Cycle fetchCycle = 0;
    /** Front-end speculative state after this µ-op (for squash repair). */
    BranchUnit::SnapshotPtr postSnap;

    // Branch prediction (branches only).
    BranchPrediction bp;
    BranchUnit::SnapshotPtr preSnap;

    // Value prediction (VP-eligible µ-ops only).
    VpLookup vp;
    bool vpLookupValid = false;
    bool predictionUsed = false;  //!< confident: written to PRF, used
    RegVal predictedValue = 0;

    // --- Rename ---
    RegIndex physDst = invalidReg;
    RegIndex oldPhysDst = invalidReg;
    RegIndex physSrc[2] = {invalidReg, invalidReg};
    bool renamed = false;

    // EOLE routing decisions (made at rename/dispatch).
    bool earlyExecuted = false;   //!< executed in the EE block
    bool lateExecAlu = false;     //!< predicted 1-cycle ALU: LE/VT stage
    bool lateExecBranch = false;  //!< very-high-confidence branch: LE/VT

    // --- Execution ---
    bool dispatched = false;
    bool inIQ = false;
    /** Both source operands have been seen ready by the issue scan.
     *  Monotone while the entry waits in the IQ — a source physical
     *  register cannot be reclaimed while its reader is in flight —
     *  so the scan skips re-polling the register file. */
    bool opsReady = false;
    /** Cycle both sources become ready, once every producer has
     *  scheduled its writeback (each physical register is written
     *  exactly once per allocation, so the value is final when known).
     *  invalidCycle while some producer is still unissued; the scan
     *  then re-polls the register file. */
    Cycle srcReadyAt = invalidCycle;
    bool issued = false;
    bool completed = false;       //!< result available / ready to retire
    Cycle completeCycle = invalidCycle;
    RegVal computedValue = 0;
    bool hasComputedValue = false;

    // Memory state.
    Addr effAddr = 0;
    bool effAddrValid = false;
    RegVal storeData = 0;
    /** Store this load must wait for (Store Sets), 0 = none. */
    SeqNum dependsOnStore = 0;

    /** Rename dropped an architectural zero-register destination, so
     *  this µ-op has no destination even though its trace µ-op names
     *  one. (Shadows the `uop.dst = invalidReg` overwrite the old
     *  by-value copy allowed; the shared trace µ-op is immutable.) */
    bool dstDropped = false;

    // --- Lifecycle ---
    bool squashed = false;

    const TraceUop &uop() const { return *uopP; }

    /** Does this µ-op produce a register result after rename? False
     *  for zero-register writes rename dropped. */
    bool hasDst() const { return !dstDropped && uopP->hasDst(); }

    bool isLoad() const { return uop().isLoad(); }
    bool isStore() const { return uop().isStore(); }
    bool isBranch() const { return uop().isBranch(); }

    /** Does this µ-op bypass the OoO engine entirely? */
    bool
    bypassesOoO() const
    {
        return earlyExecuted || lateExecAlu || lateExecBranch;
    }

    /** Can the LE/VT stage execute this µ-op at its head-of-ROB turn? */
    bool lateExecutable() const { return lateExecAlu || lateExecBranch; }
};

/**
 * Owning handle to an in-flight µ-op. Pool-allocated (common/slab.hh)
 * from PipelineState's per-core DynInstPool instead of shared_ptr:
 * same API surface, but allocation is a free-list pop and the refcount
 * is non-atomic — DynInsts never cross threads (sweep parallelism is
 * across Cores, each single-threaded).
 */
using DynInstPtr = PooledPtr<DynInst>;
using DynInstPool = SlabPool<DynInst>;

} // namespace eole

#endif // EOLE_PIPELINE_DYN_INST_HH
