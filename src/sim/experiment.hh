/**
 * @file
 * Experiment infrastructure: parallel (configuration x workload) grid
 * execution and paper-style table formatting.
 *
 * Run lengths follow DESIGN.md §5: each (config, workload) pair warms
 * all structures for EOLE_WARMUP µ-ops (default 1M) and measures for
 * EOLE_INSTS µ-ops (default 5M). Both are overridable through the
 * environment so CI can run short and paper-grade runs can go long.
 */

#ifndef EOLE_SIM_EXPERIMENT_HH
#define EOLE_SIM_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/config.hh"

namespace eole {

/** Result of one simulation run. */
struct RunResult
{
    std::string config;
    std::string workload;
    std::uint64_t seed = 0;  //!< per-job seed the cell ran with

    /**
     * The cell's complete canonical configuration map
     * (sim/params.hh configKeyValues of the plan's config, before the
     * per-job seed override), embedded so artifacts record what a
     * config *was*, not just its name — `eole diff` reports config
     * drift from it. Empty only for artifacts read from the legacy
     * v1 schema.
     */
    std::vector<std::pair<std::string, std::string>> params;

    StatRecord stats;

    double ipc() const { return stats.get("ipc"); }
};

/** µ-ops to warm up (EOLE_WARMUP env var, default 1,000,000). */
std::uint64_t warmupUops();

/** µ-ops to measure (EOLE_INSTS env var, default 5,000,000). */
std::uint64_t measureUops();

/** Worker threads for grids (EOLE_THREADS env var, default = cores). */
int runnerThreads();

/**
 * Run every (config, workload) pair in parallel (a thin wrapper over
 * the sweep engine, sim/sweep.hh).
 *
 * Each cell runs with a deterministic per-job seed derived from the
 * cell identity and the config's seed field (sim/plan.hh jobSeed) —
 * not with SimConfig::seed verbatim — so results are independent of
 * worker count and scheduling.
 *
 * @param cfgs configurations (names must be unique)
 * @param workload_names registry names (see workloads::allNames())
 * @return results in (config-major, workload-minor) order
 */
std::vector<RunResult> runGrid(const std::vector<SimConfig> &cfgs,
                               const std::vector<std::string>
                                   &workload_names);

/** Find a result in a grid (fatal if absent). */
const RunResult &findResult(const std::vector<RunResult> &results,
                            const std::string &config,
                            const std::string &workload);

/** Geometric mean of a vector of ratios. */
double geomean(const std::vector<double> &xs);

/**
 * Print a paper-style table: one row per workload, one column per
 * configuration, cell = stat value; followed by a geometric-mean row
 * when the stat is a speedup.
 *
 * @param title table heading
 * @param results the grid
 * @param cfg_names column order
 * @param stat stat to show (e.g. "ipc", "offload_frac")
 * @param normalize_to config name whose value divides each row
 *        (empty = absolute values)
 */
void printTable(const std::string &title,
                const std::vector<RunResult> &results,
                const std::vector<std::string> &cfg_names,
                const std::vector<std::string> &workload_names,
                const std::string &stat,
                const std::string &normalize_to = "");

} // namespace eole

#endif // EOLE_SIM_EXPERIMENT_HH
