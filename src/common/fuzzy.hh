/**
 * @file
 * Fuzzy string matching for loud-exit diagnostics: when an operator
 * typos a parameter key, config name or plan directive, the error
 * message should name the nearest valid spellings instead of leaving
 * them to grep. Used by the parameter registry (sim/params.hh), the
 * plan-file parser (sim/planfile.hh) and the `eole` CLI.
 */

#ifndef EOLE_COMMON_FUZZY_HH
#define EOLE_COMMON_FUZZY_HH

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

namespace eole {

/** Levenshtein edit distance (insert/delete/substitute, all cost 1). */
inline std::size_t
editDistance(const std::string &a, const std::string &b)
{
    const std::size_t n = a.size(), m = b.size();
    std::vector<std::size_t> row(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= m; ++j) {
            const std::size_t up = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = up;
        }
    }
    return row[m];
}

/**
 * The up-to-@p n candidates closest to @p query by edit distance,
 * nearest first (ties broken by candidate order). Candidates further
 * than half their own length are dropped — suggesting "fetchWidth" for
 * "xyzzy" would be noise, not help. A query that is a substring of a
 * candidate (or vice versa) always qualifies: truncated dotted keys
 * like "vp.vtage" should still surface "vp.vtage.tagBits".
 */
inline std::vector<std::string>
closestMatches(const std::string &query,
               const std::vector<std::string> &candidates,
               std::size_t n = 3)
{
    std::vector<std::pair<std::size_t, std::string>> scored;
    for (const std::string &c : candidates) {
        const std::size_t d = editDistance(query, c);
        const bool related = c.find(query) != std::string::npos
            || query.find(c) != std::string::npos;
        if (!related && d > std::max<std::size_t>(2, c.size() / 2))
            continue;
        scored.emplace_back(d, c);
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto &x, const auto &y) {
                         return x.first < y.first;
                     });
    std::vector<std::string> out;
    for (std::size_t i = 0; i < scored.size() && i < n; ++i)
        out.push_back(scored[i].second);
    return out;
}

/** Render suggestions as " (did you mean: a, b?)" or "". */
inline std::string
didYouMean(const std::vector<std::string> &suggestions)
{
    if (suggestions.empty())
        return "";
    std::string out = " (did you mean: ";
    for (std::size_t i = 0; i < suggestions.size(); ++i)
        out += (i ? ", " : "") + suggestions[i];
    return out + "?)";
}

} // namespace eole

#endif // EOLE_COMMON_FUZZY_HH
