/**
 * @file
 * The pipeline stage interface.
 *
 * Each stage of the EOLE core (fetch, rename+EE, dispatch, issue,
 * completion, LE/VT, commit) is a separate object implementing this
 * interface and operating on the shared PipelineState substrate. The
 * Core conductor ticks the stages in reverse pipeline order each cycle
 * and routes squash/redirect events to every stage; stages own their
 * statistics and fold them into the aggregate CoreStats on demand.
 */

#ifndef EOLE_PIPELINE_STAGES_STAGE_HH
#define EOLE_PIPELINE_STAGES_STAGE_HH

#include "common/types.hh"

namespace eole {

struct CoreStats;
struct PipelineState;

class Stage
{
  public:
    virtual ~Stage() = default;

    /** Stable identifier ("fetch", "rename", ... ); used by benches
     *  and the pipeline builder to locate/replace stages. */
    virtual const char *name() const = 0;

    /** Do one cycle of this stage's work. */
    virtual void tick(PipelineState &st) = 0;

    /**
     * A full pipeline squash is unwinding everything younger than
     * @p keep_seq: drop/repair this stage's in-flight state. Stages are
     * invoked in PipelineState::squashAfter's fixed unwind order
     * (rename-map restores must run youngest-first across stages).
     */
    virtual void squash(PipelineState &st, SeqNum keep_seq,
                        Cycle resume_fetch_at);

    /** Fetch was redirected by a resolved branch without a full squash
     *  (nothing younger was fetched): drop front-end speculative state. */
    virtual void onFetchRedirect(PipelineState &st);

    /** Zero this stage's statistics (end of warmup). */
    virtual void resetStats();

    /** Fold this stage's counters into the aggregate record. */
    virtual void addStats(CoreStats &out) const;
};

inline void
Stage::squash(PipelineState &, SeqNum, Cycle)
{
}

inline void
Stage::onFetchRedirect(PipelineState &)
{
}

inline void
Stage::resetStats()
{
}

inline void
Stage::addStats(CoreStats &) const
{
}

} // namespace eole

#endif // EOLE_PIPELINE_STAGES_STAGE_HH
