/**
 * @file
 * WarmableComponent: the update-only interface behind functional
 * warming (SMARTS-style sampling, sim/sample/).
 *
 * A warmable component consumes the architecturally-correct committed
 * µ-op stream in order and updates its *predictive* state — predictor
 * tables, histories, cache tags/LRU — without any timing simulation.
 * Streaming a trace prefix through the warmable components of a core
 * puts its substrate close to where a full detailed run would have
 * left it, at a small fraction of the cost; a short detailed warmup
 * then absorbs the residual transient (pipeline occupancy, in-flight
 * predictor instances). See DESIGN.md §8 for the exact fidelity
 * contract of each implementor.
 *
 * Implementors: BranchUnit (bpred/), ValuePredictor (vpred/),
 * MemHierarchy (mem/).
 */

#ifndef EOLE_ISA_WARMABLE_HH
#define EOLE_ISA_WARMABLE_HH

#include "isa/trace.hh"

namespace eole {

class WarmableComponent
{
  public:
    virtual ~WarmableComponent() = default;

    /**
     * Observe one µ-op of the committed stream (called in program
     * order) and update internal predictive state only. Must be
     * deterministic: warming the same stream twice from the same
     * initial state yields identical component state.
     */
    virtual void warmUpdate(const TraceUop &uop) = 0;
};

} // namespace eole

#endif // EOLE_ISA_WARMABLE_HH
