file(REMOVE_RECURSE
  "CMakeFiles/sweep_plan.dir/examples/sweep_plan.cpp.o"
  "CMakeFiles/sweep_plan.dir/examples/sweep_plan.cpp.o.d"
  "sweep_plan"
  "sweep_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
