#include "isa/frozen_trace.hh"

#include <algorithm>

#include "isa/kernel_vm.hh"
#include "isa/static_inst.hh"

namespace eole {

std::shared_ptr<const FrozenTrace>
recordTrace(const Program &program, std::size_t mem_bytes,
            const std::function<void(KernelVM &)> &init,
            std::uint64_t max_uops)
{
    KernelVM vm(program, mem_bytes);
    if (init)
        init(vm);

    auto trace = std::make_shared<FrozenTrace>();
    for (int r = 0; r < numArchIntRegs; ++r)
        trace->initIntRegs[r] = vm.readIntReg(static_cast<RegIndex>(r));
    for (int r = 0; r < numArchFpRegs; ++r)
        trace->initFpRegs[r] = vm.readFpReg(static_cast<RegIndex>(r));

    trace->uops.reserve(
        static_cast<std::size_t>(std::min<std::uint64_t>(max_uops, 1u << 22)));
    TraceUop u;
    while (trace->uops.size() < max_uops && vm.step(u))
        trace->uops.push_back(u);
    trace->complete = vm.halted();
    return trace;
}

} // namespace eole
