/**
 * Figure 7: EOLE and the VP baseline as the OoO issue width shrinks
 * from 6 to 4, normalized to Baseline_VP_6_64.
 */
#include "bench_common.hh"

using namespace eole;

int
main()
{
    announce("Fig 7", "issue-width sensitivity of EOLE vs baseline");

    const SimConfig ref = configs::baselineVp(6, 64);
    const SimConfig bvp4 = configs::baselineVp(4, 64);
    const SimConfig eole4 = configs::eole(4, 64);
    const SimConfig eole6 = configs::eole(6, 64);
    const auto &names = workloads::allNames();
    const auto results = runGrid({ref, bvp4, eole4, eole6}, names);

    printTable("Speedup over Baseline_VP_6_64 (Fig 7)", results,
               {bvp4.name, eole4.name, eole6.name}, names, "ipc",
               ref.name);
    printTable("OoO offload fraction (context)", results,
               {eole4.name, eole6.name}, names, "offload_frac");
    return 0;
}
