/**
 * @file
 * Dynamic micro-op trace record: the interface between the functional
 * KernelVM (which produces the architecturally-correct stream) and the
 * timing simulator (which consumes it).
 */

#ifndef EOLE_ISA_TRACE_HH
#define EOLE_ISA_TRACE_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/opcodes.hh"
#include "isa/static_inst.hh"

namespace eole {

/**
 * One dynamic µ-op as executed by the functional machine. The srcVals /
 * result fields are the *oracle* values: the timing core recomputes
 * everything through its renamed dataflow and checks itself against the
 * oracle at commit.
 */
struct TraceUop
{
    Addr pc = 0;                //!< byte PC
    std::uint32_t sidx = 0;     //!< static instruction index
    Opcode opc = Opcode::Nop;
    RegIndex dst = invalidReg;
    RegIndex src1 = invalidReg;
    RegIndex src2 = invalidReg;
    std::int64_t imm = 0;
    std::uint8_t memSize = 8;

    RegVal srcVals[2] = {0, 0}; //!< oracle source values
    RegVal result = 0;          //!< oracle result (load value for loads,
                                //!< store data for stores)
    Addr effAddr = 0;           //!< oracle effective address (ld/st)

    bool taken = false;         //!< branch outcome
    Addr nextPc = 0;            //!< architectural next byte-PC

    RegClass dstClass = RegClass::Int;
    RegClass srcClass[2] = {RegClass::Int, RegClass::Int};

    OpClass opClass() const { return opClassOf(opc); }
    bool isLoad() const { return isLoadOp(opc); }
    bool isStore() const { return isStoreOp(opc); }
    bool isBranch() const { return isBranchOp(opc); }
    bool isCondBr() const { return isCondBranch(opc); }
    bool isCall() const { return isCallOp(opc); }
    bool isRet() const { return isRetOp(opc); }
    bool isIndirect() const { return isIndirectOp(opc); }
    bool hasDst() const { return dst != invalidReg; }

    /**
     * Value-prediction eligibility (§4.2 of the paper): the µ-op
     * produces a result of 64 bits or less that can be read by a
     * subsequent µ-op. In this ISA that is every register-writing µ-op.
     */
    bool vpEligible() const { return hasDst(); }

    /**
     * Does the pipeline actually predict this µ-op? Eligible, minus
     * writes to the int zero register (architecturally dropped). The
     * fetch stage and every functional-warming path share this
     * predicate — warming fidelity depends on them never diverging.
     */
    bool
    vpPredictable() const
    {
        return vpEligible() && !(dstClass == RegClass::Int && dst == 0);
    }

    /** Number of register source operands actually used. */
    int
    numSrcs() const
    {
        return (src1 != invalidReg ? 1 : 0) + (src2 != invalidReg ? 1 : 0);
    }
};

} // namespace eole

#endif // EOLE_ISA_TRACE_HH
