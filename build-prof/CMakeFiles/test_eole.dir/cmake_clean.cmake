file(REMOVE_RECURSE
  "CMakeFiles/test_eole.dir/tests/test_eole.cc.o"
  "CMakeFiles/test_eole.dir/tests/test_eole.cc.o.d"
  "test_eole"
  "test_eole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
