# Empty dependencies file for fig02_early_exec.
# This may be replaced when dependencies are built.
