/**
 * @file
 * FrozenTrace: an immutable, pre-executed µ-op stream.
 *
 * The functional execution of a workload is independent of the timing
 * configuration, so a sweep that runs N configurations over the same
 * workload re-executes the identical µ-op stream N times. A
 * FrozenTrace records that stream once — together with the post-init
 * architectural register state the timing core seeds its PRF from —
 * and is then shared read-only across any number of concurrently
 * running cores (see sim/trace_cache.hh). Replaying a frozen trace is
 * also faster than live functional execution: fetch becomes an indexed
 * read with no VM stepping and no replay-window bookkeeping.
 *
 * Two storage backings exist behind one read interface (`uops` is a
 * borrowed span, not a container):
 *  - recorded in memory (`storage` owns the vector; seal() points the
 *    span at it), or
 *  - mapped from an eole-trace-v1 file (src/trace/trace_file.hh): the
 *    span points straight into the read-only mapping and `mapping`
 *    keeps it alive, so a billion-µ-op trace costs address space and
 *    page cache, not resident heap (residentBytes() == 0).
 */

#ifndef EOLE_ISA_FROZEN_TRACE_HH
#define EOLE_ISA_FROZEN_TRACE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/trace.hh"

namespace eole {

class KernelVM;
struct Program;

/**
 * Immutable recording of a kernel's dynamic µ-op stream. Safe to share
 * across threads once constructed (all members are const after
 * recordTrace / the trace-file loader returns).
 */
struct FrozenTrace
{
    /** Borrowed read-only view over the µ-op array. Mimics the vector
     *  surface consumers use (size/[]/begin/end) so replay code is
     *  backing-agnostic. */
    struct UopView
    {
        const TraceUop *ptr = nullptr;
        std::size_t count = 0;

        std::size_t size() const { return count; }
        bool empty() const { return count == 0; }
        const TraceUop &operator[](std::size_t i) const { return ptr[i]; }
        const TraceUop *begin() const { return ptr; }
        const TraceUop *end() const { return ptr + count; }
    };

    UopView uops;

    /** The program halted within uops (the stream is the whole run).
     *  When false, uops is a prefix and a consumer reading past the
     *  end is a hard error — size the recording generously. */
    bool complete = false;

    /** Post-init architectural state (what a live VM would hold when
     *  the timing core seeds its register files). */
    RegVal initIntRegs[numArchIntRegs] = {};
    RegVal initFpRegs[numArchFpRegs] = {};

    /** Canonical workload name ("torture:7", "164.gzip",
     *  "rv64:fib"...) — the cell identity artifacts and seeding key
     *  on, embedded in trace files so `file:` replay reproduces the
     *  generator path byte-for-byte. Empty for anonymous recordings. */
    std::string name;

    /** SPEC-suite flag of the recorded workload (Workload::isFp). */
    bool isFp = false;

    /** The µ-op array lives in a read-only file mapping instead of
     *  `storage`; such a trace is file-backed page cache, not heap. */
    bool mmapBacked = false;

    /** Heap backing (in-memory recordings). */
    std::vector<TraceUop> storage;

    /** Keep-alive for non-heap backings: the mmap (unmapped by the
     *  deleter) or a parent trace a clamped view borrows from. */
    std::shared_ptr<const void> mapping;

    /** Point the view at `storage` after filling it. */
    void seal() { uops = UopView{storage.data(), storage.size()}; }

    std::size_t bytes() const { return uops.size() * sizeof(TraceUop); }

    /** Bytes held in RAM against the trace-cache budget: mmap-backed
     *  pages are evictable file cache and count as zero. */
    std::size_t residentBytes() const { return mmapBacked ? 0 : bytes(); }
};

/**
 * Functionally execute @p program (after running @p init) and record up
 * to @p max_uops µ-ops.
 *
 * @param program the kernel (copied into the recording run)
 * @param mem_bytes VM data-memory size
 * @param init one-time architectural state initializer (may be null)
 * @param max_uops recording cap; the trace is complete if the program
 *        halts within the cap
 * @param name canonical workload name stamped into the trace
 */
std::shared_ptr<const FrozenTrace>
recordTrace(const Program &program, std::size_t mem_bytes,
            const std::function<void(KernelVM &)> &init,
            std::uint64_t max_uops, const std::string &name = "");

/**
 * A prefix view of @p trace bounded to @p max_uops µ-ops, sharing the
 * parent's backing (no copy). Returns @p trace itself when it already
 * fits. A clamped view is marked incomplete when µ-ops were cut off —
 * exactly what recordTrace(max_uops) of the same workload would have
 * produced, so replay through either is decision-identical.
 */
std::shared_ptr<const FrozenTrace>
clampTrace(std::shared_ptr<const FrozenTrace> trace,
           std::uint64_t max_uops);

} // namespace eole

#endif // EOLE_ISA_FROZEN_TRACE_HH
