/**
 * @file
 * Fetch stage: instruction supply from the trace source.
 *
 * Models an 8-wide fetch with a 2-taken-branch limit, I-cache access
 * through the memory hierarchy, TAGE/BTB/RAS branch prediction and
 * value prediction at fetch (§4.2 of the paper). Fetched µ-ops enter
 * the latency/bandwidth-constrained front-end pipe toward rename.
 * Fetch stalls behind a branch known to be mispredicted (the simulator
 * is trace-driven and models no wrong path) and on BTB-miss redirect
 * bubbles.
 */

#ifndef EOLE_PIPELINE_STAGES_FETCH_HH
#define EOLE_PIPELINE_STAGES_FETCH_HH

#include "pipeline/stages/stage.hh"
#include "sim/config.hh"

namespace eole {

class FetchStage : public Stage
{
  public:
    explicit FetchStage(const SimConfig &cfg);

    const char *name() const override { return "fetch"; }
    void tick(PipelineState &st) override;
    void squash(PipelineState &st, SeqNum keep_seq,
                Cycle resume_fetch_at) override;
    void resetStats() override;
    void addStats(CoreStats &out) const override;

  private:
    struct Stats
    {
        std::uint64_t btbMissBubbles = 0;
    };

    int fetchWidth;
    int maxTakenBranchesPerFetch;
    int btbMissBubble;
    Cycle l1iHitLatency;

    Stats s;
};

} // namespace eole

#endif // EOLE_PIPELINE_STAGES_FETCH_HH
