#include "sim/trace_cache.hh"

#include "common/env.hh"
#include "isa/trace.hh"

namespace eole {

std::uint64_t
TraceCache::byteBudget()
{
    return envU64("EOLE_TRACE_CACHE_MB", 4096) * 1024 * 1024;
}

std::shared_ptr<const FrozenTrace>
TraceCache::get(const Workload &workload, std::uint64_t min_uops)
{
    if (workload.fileBacked) {
        // The µ-ops are already on disk, mmap'd read-only: no RAM
        // budget applies (resident cost ~ 0) and there is nothing to
        // record — clamping to min_uops is a constant-time view. The
        // first request for a workload is the "miss" (parity with the
        // generated path, where it pays the recording).
        Entry *entry;
        {
            std::lock_guard<std::mutex> lock(mapMu);
            auto &slot = entries[workload.name];
            if (!slot)
                slot = std::make_unique<Entry>();
            entry = slot.get();
        }
        std::lock_guard<std::mutex> lock(entry->mu);
        if (!entry->trace || (!entry->trace->complete
                              && entry->trace->uops.size() < min_uops)) {
            fileMisses.fetch_add(1, std::memory_order_relaxed);
            entry->trace = workload.freeze(min_uops);
        } else {
            fileHits.fetch_add(1, std::memory_order_relaxed);
        }
        return entry->trace;
    }

    if (min_uops * sizeof(TraceUop) > byteBudget()) {
        misses.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }

    Entry *entry;
    {
        std::lock_guard<std::mutex> lock(mapMu);
        auto &slot = entries[workload.name];
        if (!slot)
            slot = std::make_unique<Entry>();
        entry = slot.get();
    }

    std::lock_guard<std::mutex> lock(entry->mu);
    if (!entry->trace
        || (!entry->trace->complete && entry->trace->uops.size() < min_uops)) {
        misses.fetch_add(1, std::memory_order_relaxed);
        entry->trace = workload.freeze(min_uops);
    } else {
        hits.fetch_add(1, std::memory_order_relaxed);
    }
    return entry->trace;
}

void
TraceCache::drop(const std::string &workload_name)
{
    std::lock_guard<std::mutex> lock(mapMu);
    auto it = entries.find(workload_name);
    if (it != entries.end()) {
        // Entry mutex may be held by a late get(); only clear the
        // trace pointer under it.
        std::lock_guard<std::mutex> elock(it->second->mu);
        if (it->second->trace) {
            evicts.fetch_add(1, std::memory_order_relaxed);
            it->second->trace.reset();
        }
    }
}

} // namespace eole
