#include "mem/cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace eole {

Cache::Cache(const CacheConfig &config, NextLevelFn next_level)
    : cfg(config), next(std::move(next_level))
{
    fatal_if(cfg.sizeBytes % (cfg.lineBytes * cfg.ways) != 0,
             "%s: size %u not divisible by ways*line", cfg.name.c_str(),
             cfg.sizeBytes);
    numSets = cfg.sizeBytes / (cfg.lineBytes * cfg.ways);
    fatal_if((numSets & (numSets - 1)) != 0, "%s: sets not a power of 2",
             cfg.name.c_str());
    lines.assign(static_cast<std::size_t>(numSets) * cfg.ways, Line{});
}

std::uint32_t
Cache::setOf(Addr addr) const
{
    return static_cast<std::uint32_t>(addr / cfg.lineBytes) & (numSets - 1);
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return (addr / cfg.lineBytes) / numSets;
}

Addr
Cache::lineAddrOf(Addr addr) const
{
    return addr & ~static_cast<Addr>(cfg.lineBytes - 1);
}

Cache::Line *
Cache::findLine(Addr addr)
{
    const std::uint32_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    for (int w = 0; w < cfg.ways; ++w) {
        Line &l = lines[static_cast<std::size_t>(set) * cfg.ways + w];
        if (l.valid && l.tag == tag)
            return &l;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

void
Cache::reapInflight(Cycle now)
{
    std::erase_if(inflight, [now](Cycle c) { return c <= now; });
}

Cycle
Cache::fill(Addr addr, bool is_write, Cycle now)
{
    const std::uint32_t set = setOf(addr);
    // Victim selection: prefer invalid, else LRU among filled lines
    // (in-flight fills are not evictable).
    Line *victim = nullptr;
    for (int w = 0; w < cfg.ways; ++w) {
        Line &l = lines[static_cast<std::size_t>(set) * cfg.ways + w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.readyAt > now)
            continue;
        if (victim == nullptr || l.lru < victim->lru)
            victim = &l;
    }
    if (victim == nullptr) {
        // Whole set is mid-fill: serialize behind the earliest fill.
        Cycle earliest = invalidCycle;
        for (int w = 0; w < cfg.ways; ++w) {
            Line &l = lines[static_cast<std::size_t>(set) * cfg.ways + w];
            earliest = std::min(earliest, l.readyAt);
        }
        ++statMshrStalls;
        return earliest + cfg.latency;
    }

    if (victim->valid && victim->dirty) {
        // Write back the victim (consumes next-level/DRAM bandwidth).
        ++statWritebacks;
        (void)next(victim->tag * numSets * cfg.lineBytes
                       + static_cast<Addr>(setOf(addr)) * cfg.lineBytes,
                   true, now);
    }

    const Cycle ready = next(lineAddrOf(addr), false, now + cfg.latency);
    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->dirty = is_write;
    victim->lru = ++lruClock;
    victim->readyAt = ready;
    if (ready > now)
        inflight.push_back(ready);
    return ready;
}

Cycle
Cache::access(Addr addr, bool is_write, Cycle now)
{
    if (observer)
        observer(addr, is_write, now);

    Line *l = findLine(addr);
    if (l != nullptr) {
        l->lru = ++lruClock;
        l->dirty = l->dirty || is_write;
        if (l->readyAt > now) {
            // Miss merged into an outstanding fill (MSHR hit).
            ++statMshrMerges;
            return l->readyAt + cfg.latency;
        }
        ++statHits;
        return now + cfg.latency;
    }

    ++statMisses;
    reapInflight(now);
    if (static_cast<int>(inflight.size()) >= cfg.mshrs) {
        // No MSHR free: stall until the earliest fill returns, then pay
        // the full miss path.
        const Cycle earliest =
            *std::min_element(inflight.begin(), inflight.end());
        ++statMshrStalls;
        return fill(addr, is_write, earliest);
    }
    return fill(addr, is_write, now);
}

bool
Cache::probe(Addr addr, Cycle now) const
{
    const Line *l = findLine(addr);
    return l != nullptr && l->readyAt <= now;
}

Cycle
Cache::prefetch(Addr addr, Cycle now)
{
    if (findLine(addr) != nullptr)
        return now;
    reapInflight(now);
    if (static_cast<int>(inflight.size()) >= cfg.mshrs)
        return now;
    ++statPrefetches;
    return fill(addr, false, now);
}

void
Cache::snapshotState(std::ostream &os) const
{
    SnapshotWriter w(os);
    w.tag("cache").str(cfg.name)
        .u64(lines.size()).u64(inflight.size()).u64(lruClock);
    w.end();
    w.tag("cache.lines");
    for (const Line &l : lines)
        w.flag(l.valid).u64(l.tag).flag(l.dirty).u64(l.lru).u64(l.readyAt);
    w.end();
    w.tag("cache.inflight");
    for (const Cycle c : inflight)
        w.u64(c);
    w.end();
}

void
Cache::restoreState(SnapshotReader &r)
{
    r.line("cache");
    r.fatalIf(r.str("name") != cfg.name, "cache level mismatch");
    r.fatalIf(r.u64("lines") != lines.size(),
              "cache line-count mismatch");
    // No tight invariant bounds the in-flight list (the MSHR-stall
    // path in access() pushes one more fill past the cap), so only
    // reject allocation-bomb counts from corrupt documents.
    const std::uint64_t n_inflight = r.u64("inflight");
    r.fatalIf(n_inflight > (1ULL << 20),
              "implausible in-flight fill count");
    lruClock = r.u64("lruClock");
    r.endLine();
    r.line("cache.lines");
    for (Line &l : lines) {
        l.valid = r.flag("valid");
        l.tag = r.u64("tag");
        l.dirty = r.flag("dirty");
        l.lru = r.u64("lru");
        l.readyAt = r.u64("readyAt");
    }
    r.endLine();
    r.line("cache.inflight");
    inflight.assign(n_inflight, 0);
    for (Cycle &c : inflight)
        c = r.u64("cycle");
    r.endLine();
}

StatRecord
Cache::record() const
{
    StatRecord r;
    r.add("hits", static_cast<double>(statHits));
    r.add("misses", static_cast<double>(statMisses));
    r.add("miss_rate", ratio(double(statMisses),
                             double(statMisses + statHits)));
    r.add("mshr_merges", static_cast<double>(statMshrMerges));
    r.add("mshr_stalls", static_cast<double>(statMshrStalls));
    r.add("writebacks", static_cast<double>(statWritebacks));
    r.add("prefetches", static_cast<double>(statPrefetches));
    return r;
}

} // namespace eole
