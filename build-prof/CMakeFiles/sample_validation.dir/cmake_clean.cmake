file(REMOVE_RECURSE
  "CMakeFiles/sample_validation.dir/bench/sample_validation.cc.o"
  "CMakeFiles/sample_validation.dir/bench/sample_validation.cc.o.d"
  "sample_validation"
  "sample_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
