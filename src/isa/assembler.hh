/**
 * @file
 * A tiny in-process assembler used to author workload kernels in C++.
 *
 * Typical use:
 * @code
 *     Assembler a;
 *     IntReg i = 5, n = 6, base = 7, t = 8;
 *     Label loop = a.newLabel();
 *     a.movi(i, 0);
 *     a.bind(loop);
 *     a.ld(t, base, 0);
 *     a.addi(i, i, 1);
 *     a.bne(i, n, loop);
 *     a.halt();
 *     Program p = a.finish();
 * @endcode
 */

#ifndef EOLE_ISA_ASSEMBLER_HH
#define EOLE_ISA_ASSEMBLER_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "isa/static_inst.hh"

namespace eole {

/** Typed integer-register handle (0..31; register 0 reads as zero). */
struct IntReg
{
    RegIndex idx;
    constexpr IntReg(int i = 0) : idx(static_cast<RegIndex>(i)) {}
};

/** Typed FP-register handle (0..31). */
struct FpReg
{
    RegIndex idx;
    constexpr FpReg(int i = 0) : idx(static_cast<RegIndex>(i)) {}
};

/** Forward-referencable code label. */
struct Label
{
    std::int32_t id = -1;
};

/**
 * Builder for Program objects. All emit methods append one µ-op;
 * branch targets may be labels bound before or after the branch.
 */
class Assembler
{
  public:
    Label
    newLabel()
    {
        Label l{static_cast<std::int32_t>(labelPos.size())};
        labelPos.push_back(-1);
        return l;
    }

    /** Bind @p l to the next emitted instruction. */
    void
    bind(Label l)
    {
        panic_if(labelPos.at(l.id) != -1, "label %d bound twice", l.id);
        labelPos.at(l.id) = static_cast<std::int32_t>(code.size());
    }

    /** Current instruction index (for size accounting in tests). */
    std::size_t here() const { return code.size(); }

    // --- Integer ALU, register-register ---
    void add(IntReg d, IntReg a, IntReg b) { rrr(Opcode::Add, d, a, b); }
    void sub(IntReg d, IntReg a, IntReg b) { rrr(Opcode::Sub, d, a, b); }
    void and_(IntReg d, IntReg a, IntReg b) { rrr(Opcode::And, d, a, b); }
    void or_(IntReg d, IntReg a, IntReg b) { rrr(Opcode::Or, d, a, b); }
    void xor_(IntReg d, IntReg a, IntReg b) { rrr(Opcode::Xor, d, a, b); }
    void shl(IntReg d, IntReg a, IntReg b) { rrr(Opcode::Shl, d, a, b); }
    void shr(IntReg d, IntReg a, IntReg b) { rrr(Opcode::Shr, d, a, b); }
    void sar(IntReg d, IntReg a, IntReg b) { rrr(Opcode::Sar, d, a, b); }
    void slt(IntReg d, IntReg a, IntReg b) { rrr(Opcode::Slt, d, a, b); }
    void sltu(IntReg d, IntReg a, IntReg b) { rrr(Opcode::Sltu, d, a, b); }
    void mov(IntReg d, IntReg a) { rr(Opcode::Mov, d, a); }

    // --- Integer ALU, register-immediate ---
    void addi(IntReg d, IntReg a, std::int64_t i) { rri(Opcode::Addi, d, a, i); }
    void andi(IntReg d, IntReg a, std::int64_t i) { rri(Opcode::Andi, d, a, i); }
    void ori(IntReg d, IntReg a, std::int64_t i) { rri(Opcode::Ori, d, a, i); }
    void xori(IntReg d, IntReg a, std::int64_t i) { rri(Opcode::Xori, d, a, i); }
    void shli(IntReg d, IntReg a, std::int64_t i) { rri(Opcode::Shli, d, a, i); }
    void shri(IntReg d, IntReg a, std::int64_t i) { rri(Opcode::Shri, d, a, i); }
    void sari(IntReg d, IntReg a, std::int64_t i) { rri(Opcode::Sari, d, a, i); }
    void slti(IntReg d, IntReg a, std::int64_t i) { rri(Opcode::Slti, d, a, i); }
    void sltiu(IntReg d, IntReg a, std::int64_t i) { rri(Opcode::Sltiu, d, a, i); }

    void
    movi(IntReg d, std::int64_t i)
    {
        StaticInst s;
        s.opc = Opcode::Movi;
        s.dst = d.idx;
        s.imm = i;
        code.push_back(s);
    }

    /** Materialize the byte-PC of @p l into @p d (for indirect jumps). */
    void
    lea(IntReg d, Label l)
    {
        StaticInst s;
        s.opc = Opcode::Movi;
        s.dst = d.idx;
        code.push_back(s);
        immFixups.emplace_back(code.size() - 1, l.id);
    }

    // --- Multi-cycle integer ---
    void mul(IntReg d, IntReg a, IntReg b) { rrr(Opcode::Mul, d, a, b); }
    void div(IntReg d, IntReg a, IntReg b) { rrr(Opcode::Div, d, a, b); }
    void rem(IntReg d, IntReg a, IntReg b) { rrr(Opcode::Rem, d, a, b); }

    // --- Floating point ---
    void fadd(FpReg d, FpReg a, FpReg b) { fff(Opcode::Fadd, d, a, b); }
    void fsub(FpReg d, FpReg a, FpReg b) { fff(Opcode::Fsub, d, a, b); }
    void fmul(FpReg d, FpReg a, FpReg b) { fff(Opcode::Fmul, d, a, b); }
    void fdiv(FpReg d, FpReg a, FpReg b) { fff(Opcode::Fdiv, d, a, b); }
    void fmin(FpReg d, FpReg a, FpReg b) { fff(Opcode::Fmin, d, a, b); }
    void fmax(FpReg d, FpReg a, FpReg b) { fff(Opcode::Fmax, d, a, b); }

    void
    fmov(FpReg d, FpReg a)
    {
        StaticInst s;
        s.opc = Opcode::Fmov;
        s.dst = d.idx;
        s.src1 = a.idx;
        code.push_back(s);
    }

    /** Convert int register to FP register. */
    void
    fcvtif(FpReg d, IntReg a)
    {
        StaticInst s;
        s.opc = Opcode::Fcvtif;
        s.dst = d.idx;
        s.src1 = a.idx;
        code.push_back(s);
    }

    /** Convert FP register to int register. */
    void
    fcvtfi(IntReg d, FpReg a)
    {
        StaticInst s;
        s.opc = Opcode::Fcvtfi;
        s.dst = d.idx;
        s.src1 = a.idx;
        code.push_back(s);
    }

    // --- Memory ---
    /** Integer load of @p size bytes (zero-extended) from base+off. */
    void
    ld(IntReg d, IntReg base, std::int64_t off, std::uint8_t size = 8)
    {
        StaticInst s;
        s.opc = Opcode::Ld;
        s.dst = d.idx;
        s.src1 = base.idx;
        s.imm = off;
        s.memSize = size;
        code.push_back(s);
    }

    /** FP load (8 bytes). */
    void
    lfd(FpReg d, IntReg base, std::int64_t off)
    {
        StaticInst s;
        s.opc = Opcode::Lfd;
        s.dst = d.idx;
        s.src1 = base.idx;
        s.imm = off;
        s.memSize = 8;
        code.push_back(s);
    }

    /** Integer store of @p size bytes to base+off. */
    void
    st(IntReg data, IntReg base, std::int64_t off, std::uint8_t size = 8)
    {
        StaticInst s;
        s.opc = Opcode::St;
        s.src1 = base.idx;
        s.src2 = data.idx;
        s.imm = off;
        s.memSize = size;
        code.push_back(s);
    }

    /** FP store (8 bytes). */
    void
    sfd(FpReg data, IntReg base, std::int64_t off)
    {
        StaticInst s;
        s.opc = Opcode::Sfd;
        s.src1 = base.idx;
        s.src2 = data.idx;
        s.imm = off;
        s.memSize = 8;
        code.push_back(s);
    }

    // --- Control flow ---
    void beq(IntReg a, IntReg b, Label t) { br(Opcode::Beq, a, b, t); }
    void bne(IntReg a, IntReg b, Label t) { br(Opcode::Bne, a, b, t); }
    void blt(IntReg a, IntReg b, Label t) { br(Opcode::Blt, a, b, t); }
    void bge(IntReg a, IntReg b, Label t) { br(Opcode::Bge, a, b, t); }
    void bltu(IntReg a, IntReg b, Label t) { br(Opcode::Bltu, a, b, t); }
    void bgeu(IntReg a, IntReg b, Label t) { br(Opcode::Bgeu, a, b, t); }

    void
    jmp(Label t)
    {
        StaticInst s;
        s.opc = Opcode::Jmp;
        code.push_back(s);
        fixups.emplace_back(code.size() - 1, t.id);
    }

    /** Indirect jump through a register holding a byte PC. */
    void
    jr(IntReg a)
    {
        StaticInst s;
        s.opc = Opcode::Jr;
        s.src1 = a.idx;
        code.push_back(s);
    }

    /** Call: pushes the return byte-PC into the link register (x31). */
    void
    call(Label t)
    {
        StaticInst s;
        s.opc = Opcode::Call;
        s.dst = linkReg;
        code.push_back(s);
        fixups.emplace_back(code.size() - 1, t.id);
    }

    /** Return through the link register (x31). */
    void
    ret()
    {
        StaticInst s;
        s.opc = Opcode::Ret;
        s.src1 = linkReg;
        code.push_back(s);
    }

    void
    nop()
    {
        code.push_back(StaticInst{});
    }

    void
    halt()
    {
        StaticInst s;
        s.opc = Opcode::Halt;
        code.push_back(s);
    }

    /** Resolve labels and return the finished program. */
    Program
    finish()
    {
        for (const auto &[pos, label] : fixups) {
            const std::int32_t tgt = labelPos.at(label);
            panic_if(tgt < 0, "label %d never bound", label);
            code[pos].target = tgt;
        }
        for (const auto &[pos, label] : immFixups) {
            const std::int32_t tgt = labelPos.at(label);
            panic_if(tgt < 0, "label %d never bound", label);
            code[pos].imm = static_cast<std::int64_t>(
                Program::pcOf(static_cast<std::size_t>(tgt)));
        }
        Program p;
        p.code = std::move(code);
        return p;
    }

  private:
    void
    rrr(Opcode o, IntReg d, IntReg a, IntReg b)
    {
        StaticInst s;
        s.opc = o;
        s.dst = d.idx;
        s.src1 = a.idx;
        s.src2 = b.idx;
        code.push_back(s);
    }

    void
    rr(Opcode o, IntReg d, IntReg a)
    {
        StaticInst s;
        s.opc = o;
        s.dst = d.idx;
        s.src1 = a.idx;
        code.push_back(s);
    }

    void
    rri(Opcode o, IntReg d, IntReg a, std::int64_t i)
    {
        StaticInst s;
        s.opc = o;
        s.dst = d.idx;
        s.src1 = a.idx;
        s.imm = i;
        code.push_back(s);
    }

    void
    fff(Opcode o, FpReg d, FpReg a, FpReg b)
    {
        StaticInst s;
        s.opc = o;
        s.dst = d.idx;
        s.src1 = a.idx;
        s.src2 = b.idx;
        code.push_back(s);
    }

    void
    br(Opcode o, IntReg a, IntReg b, Label t)
    {
        StaticInst s;
        s.opc = o;
        s.src1 = a.idx;
        s.src2 = b.idx;
        code.push_back(s);
        fixups.emplace_back(code.size() - 1, t.id);
    }

    std::vector<StaticInst> code;
    std::vector<std::int32_t> labelPos;
    std::vector<std::pair<std::size_t, std::int32_t>> fixups;
    std::vector<std::pair<std::size_t, std::int32_t>> immFixups;
};

} // namespace eole

#endif // EOLE_ISA_ASSEMBLER_HH
