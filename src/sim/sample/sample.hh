/**
 * @file
 * Checkpointed statistical sampling: run every ExperimentPlan in a
 * SMARTS-style sampled mode (systematic interval selection, functional
 * warming, detailed warmup, confidence intervals).
 *
 * A full run of one plan cell pays detailed (cycle-level) simulation
 * for warmup + measure µ-ops. Sampled mode instead measures N short
 * intervals of W µops placed systematically across the measured
 * region, each preceded by D µops of detailed warmup; everything
 * before an interval is covered by *functional warming* — the skipped
 * stream is replayed through the branch predictor, value predictor and
 * caches only (isa/warmable.hh), with no ROB/IQ timing — starting from
 * a Checkpoint (isa/checkpoint.hh) that seeds the architectural
 * register state without re-executing the prefix in the timing model.
 *
 * Each interval is an independent job on the PR 2 worker pool: all the
 * intervals of all the cells run concurrently, sharing each workload's
 * frozen trace through the sweep engine's trace cache. Per-interval
 * seeds follow the jobSeed discipline (pure function of the cell seed
 * and the interval index), results land in pre-assigned slots, and the
 * reduction walks them in slot order — so sampled artifacts are
 * byte-identical regardless of --jobs, exactly like full runs.
 *
 * The reduction records, per cell:
 *   ipc                 mean of the per-interval IPCs
 *   ipc_ci95            95% confidence half-width (Student-t)
 *   ipc_stddev          sample standard deviation
 *   cycles              total measured cycles across intervals
 *   committed_uops      total measured µ-ops across intervals
 *   sample_intervals    intervals that actually measured µ-ops
 *   sample_interval_uops / sample_detail_uops     W and D
 *   sample_warm_uops    µ-ops functionally warmed (cost accounting)
 *
 * See DESIGN.md §8 for the methodology (placement math, warming
 * fidelity contract, CI computation, determinism rules).
 */

#ifndef EOLE_SIM_SAMPLE_SAMPLE_HH
#define EOLE_SIM_SAMPLE_SAMPLE_HH

#include <cstdint>
#include <vector>

#include "sim/sweep.hh"

namespace eole {

/**
 * Systematic interval placement over the measured region
 * [@p warmup, @p warmup + @p measure): one interval per period
 * (period = measure / N), offset by a deterministic phase derived
 * from @p cell_seed via the jobSeed mix. Guarantees every start is
 * >= spec.detailUops (the detailed-warmup prefix must exist) and the
 * placements are pairwise disjoint. Returns the measured-interval
 * start indices (µ-op position of the first measured µ-op), fewer
 * than N when the region cannot hold N disjoint intervals — except
 * that one interval is always emitted, and that guaranteed first
 * interval MAY extend past the region when measure < W or the
 * detail-clamp pushes it late: size trace recordings from the placed
 * starts (max(start) + W + inflight), not from warmup + measure
 * alone (runSampledPlan's `furthest` computation).
 */
std::vector<std::uint64_t> placeIntervals(std::uint64_t warmup,
                                          std::uint64_t measure,
                                          const SampleSpec &spec,
                                          std::uint64_t cell_seed);

/** Deterministic per-interval seed (jobSeed discipline: pure function
 *  of the cell seed and the interval index). */
std::uint64_t intervalSeed(std::uint64_t cell_seed,
                           std::uint64_t interval_index);

/** Mean and 95% confidence half-width (Student-t, n-1 df; half-width
 *  0 when fewer than two samples) of @p xs. */
struct MeanCi
{
    double mean = 0.0;
    double ci95 = 0.0;
    double stddev = 0.0;
};
MeanCi meanCi95(const std::vector<double> &xs);

/**
 * Execute @p plan in sampled mode: every matched cell expands into
 * spec.intervals per-interval jobs on the worker pool and reduces to
 * mean IPC + CI stats (file header). Determinism guarantees match
 * runPlan: artifacts are byte-identical across --jobs and cache
 * settings.
 */
PlanResult runSampledPlan(const ExperimentPlan &plan,
                          const SampleSpec &spec,
                          const SweepOptions &options = {});

} // namespace eole

#endif // EOLE_SIM_SAMPLE_SAMPLE_HH
