/**
 * google-benchmark microbenchmarks of the simulator's hot structures:
 * predictor lookup/update paths, history folding and checkpointing,
 * cache access, functional VM stepping, and whole-core cycle
 * throughput. These quantify the simulator itself, not the modeled
 * machine.
 */
#include <benchmark/benchmark.h>

#include "bpred/branch_unit.hh"
#include "mem/hierarchy.hh"
#include "pipeline/core.hh"
#include "sim/configs.hh"
#include "vpred/value_predictor.hh"
#include "workloads/workload.hh"

using namespace eole;

namespace {

void
BM_HistoryPush(benchmark::State &state)
{
    TageConfig tc;
    Tage tage(tc);
    GlobalHistory hist(tage.foldSpecs());
    std::uint64_t x = 0x12345;
    for (auto _ : state) {
        x = x * 6364136223846793005ULL + 1;
        hist.push((x >> 60) & 1);
    }
}
BENCHMARK(BM_HistoryPush);

void
BM_HistorySnapshotRestore(benchmark::State &state)
{
    TageConfig tc;
    Tage tage(tc);
    GlobalHistory hist(tage.foldSpecs());
    for (int i = 0; i < 100; ++i)
        hist.push(i & 1);
    for (auto _ : state) {
        auto snap = hist.snapshot();
        hist.push(true);
        hist.restore(snap);
    }
}
BENCHMARK(BM_HistorySnapshotRestore);

void
BM_TagePredictUpdate(benchmark::State &state)
{
    TageConfig tc;
    Tage tage(tc);
    GlobalHistory hist(tage.foldSpecs());
    std::uint64_t pc = 0x400000;
    std::uint64_t x = 99;
    for (auto _ : state) {
        x = x * 6364136223846793005ULL + 3;
        pc = 0x400000 + (x & 0xfff) * 4;
        TageLookup l;
        const bool pred = tage.predict(pc, hist, 0, l);
        benchmark::DoNotOptimize(pred);
        const bool actual = (x >> 55) & 1;
        tage.update(pc, actual, l);
        hist.push(actual);
    }
}
BENCHMARK(BM_TagePredictUpdate);

void
BM_VtagePredictCommit(benchmark::State &state)
{
    VpConfig vc;
    vc.kind = VpKind::Vtage;
    auto vp = createValuePredictor(vc);
    GlobalHistory hist(vp->foldSpecs());
    vp->bindHistory(hist, 0);
    std::uint64_t x = 7;
    for (auto _ : state) {
        x = x * 6364136223846793005ULL + 5;
        const Addr pc = 0x400000 + (x & 0x3ff) * 4;
        VpLookup l = vp->predict(pc);
        benchmark::DoNotOptimize(l.value);
        vp->commit(pc, x & 0xffff, l);
    }
}
BENCHMARK(BM_VtagePredictCommit);

void
BM_StridePredictCommit(benchmark::State &state)
{
    VpConfig vc;
    vc.kind = VpKind::TwoDeltaStride;
    auto vp = createValuePredictor(vc);
    std::uint64_t i = 0;
    for (auto _ : state) {
        ++i;
        const Addr pc = 0x400000 + (i & 0x3f) * 4;
        VpLookup l = vp->predict(pc);
        benchmark::DoNotOptimize(l.value);
        vp->commit(pc, i * 8, l);
    }
}
BENCHMARK(BM_StridePredictCommit);

void
BM_CacheHit(benchmark::State &state)
{
    MemHierarchy mem;
    std::uint64_t i = 0;
    Cycle now = 0;
    for (auto _ : state) {
        ++now;
        const Addr addr = (i++ & 0x1ff) * 64;  // fits in L1D
        benchmark::DoNotOptimize(mem.loadAccess(0x400000, addr, now));
    }
}
BENCHMARK(BM_CacheHit);

void
BM_CacheStream(benchmark::State &state)
{
    MemHierarchy mem;
    Addr addr = 0;
    Cycle now = 0;
    for (auto _ : state) {
        now += 4;
        addr += 64;  // streaming misses, prefetcher engaged
        benchmark::DoNotOptimize(mem.loadAccess(0x400000, addr, now));
    }
}
BENCHMARK(BM_CacheStream);

void
BM_KernelVmStep(benchmark::State &state)
{
    Workload w = workloads::makeGzip();
    TraceSource ts = w.makeTrace();
    for (auto _ : state) {
        benchmark::DoNotOptimize(&ts.fetch());
        ts.retireUpTo(ts.nextSeq() - 1);
    }
}
BENCHMARK(BM_KernelVmStep);

void
BM_CoreTickBaseline(benchmark::State &state)
{
    const SimConfig cfg = configs::baseline(6, 64);
    Workload w = workloads::makeCrafty();
    Core core(cfg, w);
    for (auto _ : state)
        core.run(64);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(core.stats().committedUops));
}
BENCHMARK(BM_CoreTickBaseline);

void
BM_CoreTickEole(benchmark::State &state)
{
    const SimConfig cfg = configs::eoleConstrained(4, 64, 4, 4);
    Workload w = workloads::makeCrafty();
    Core core(cfg, w);
    for (auto _ : state)
        core.run(64);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(core.stats().committedUops));
}
BENCHMARK(BM_CoreTickEole);

} // namespace

BENCHMARK_MAIN();
