/**
 * Table 3: baseline (Baseline_6_64, no value prediction) IPC for every
 * benchmark.
 */
#include "bench_common.hh"

using namespace eole;

int
main()
{
    announce("Table 3", "baseline per-benchmark IPC");

    const SimConfig base = configs::baseline(6, 64);
    const auto &names = workloads::allNames();
    const auto results = runGrid({base}, names);

    printTable("Baseline_6_64 IPC (Table 3)", results, {base.name}, names,
               "ipc");
    printTable("Branch MPKI (context)", results, {base.name}, names,
               "branch_mpki");
    return 0;
}
