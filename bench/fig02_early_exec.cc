/**
 * Figure 2: proportion of committed µ-ops that can be early-executed,
 * with one or two ALU stages, on the 8-wide-rename 6-issue model with
 * the VTAGE-2DStride hybrid predictor.
 */
#include "bench_common.hh"

using namespace eole;

int
main()
{
    announce("Fig 2", "early-executable fraction, 1 vs 2 ALU stages");

    SimConfig one = configs::eole(6, 64);
    one.name = "EE_1stage";
    SimConfig two = configs::eole(6, 64);
    two.name = "EE_2stages";
    two.eeStages = 2;

    const auto &names = workloads::allNames();
    const auto results = runGrid({one, two}, names);

    printTable("Fraction of committed u-ops early-executed (Fig 2)",
               results, {"EE_1stage", "EE_2stages"}, names, "ee_frac");
    return 0;
}
