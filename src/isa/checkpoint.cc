#include "isa/checkpoint.hh"

#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "isa/kernel_vm.hh"
#include "isa/snapshot.hh"

namespace eole {

Checkpoint
captureAt(const FrozenTrace &trace, const std::string &workload_name,
          std::uint64_t uop_index)
{
    fatal_if(uop_index > trace.uops.size(),
             "checkpoint at µ-op %llu but the trace only covers %zu",
             (unsigned long long)uop_index, trace.uops.size());

    Checkpoint ckpt;
    ckpt.workload = workload_name;
    ckpt.uopIndex = uop_index;
    for (int r = 0; r < numArchIntRegs; ++r)
        ckpt.intRegs[r] = trace.initIntRegs[r];
    for (int r = 0; r < numArchFpRegs; ++r)
        ckpt.fpRegs[r] = trace.initFpRegs[r];

    // Replay destination writes. TraceUop::result is the architectural
    // post-write value (already 0 for writes to the int zero register),
    // so a scalar copy per µ-op reproduces the VM state exactly.
    for (std::uint64_t i = 0; i < uop_index; ++i) {
        const TraceUop &u = trace.uops[i];
        if (u.dst == invalidReg)
            continue;
        if (u.dstClass == RegClass::Fp)
            ckpt.fpRegs[u.dst] = u.result;
        else
            ckpt.intRegs[u.dst] = u.result;
    }
    return ckpt;
}

Checkpoint
captureFromVM(const KernelVM &vm, const std::string &workload_name)
{
    Checkpoint ckpt;
    ckpt.workload = workload_name;
    ckpt.uopIndex = vm.executedUops();
    for (int r = 0; r < numArchIntRegs; ++r)
        ckpt.intRegs[r] = vm.readIntReg(static_cast<RegIndex>(r));
    for (int r = 0; r < numArchFpRegs; ++r)
        ckpt.fpRegs[r] = vm.readFpReg(static_cast<RegIndex>(r));
    return ckpt;
}

void
serializeCheckpoint(std::ostream &os, const Checkpoint &ckpt)
{
    // Canonical line-oriented text; register values in hex (exact for
    // bit-punned FP). Names are length-prefixed so spaces survive the
    // round trip. A checkpoint without µarch sections writes the
    // legacy v1 schema byte-for-byte, so pure-architectural artifacts
    // from earlier releases stay canonical.
    const std::string schema = checkpointSchemaName(ckpt);
    const bool v2 = schema == "eole-ckpt-v2";
    os << schema << '\n';
    if (v2) {
        os << "config " << ckpt.config.size() << ' ' << ckpt.config
           << '\n';
    }
    os << "workload " << ckpt.workload.size() << ' ' << ckpt.workload
       << '\n';
    os << "uop " << ckpt.uopIndex << '\n';
    os << std::hex;
    os << "int";
    for (int r = 0; r < numArchIntRegs; ++r)
        os << ' ' << ckpt.intRegs[r];
    os << "\nfp";
    for (int r = 0; r < numArchFpRegs; ++r)
        os << ' ' << ckpt.fpRegs[r];
    os << '\n' << std::dec;
    if (v2) {
        os << "sections " << ckpt.uarch.size() << '\n';
        for (const auto &[name, payload] : ckpt.uarch) {
            // Byte-counted payloads: component text is opaque to the
            // framing, and truncation is detectable without parsing.
            os << "section " << name << ' ' << payload.size() << '\n'
               << payload;
        }
        os << "end\n";
    }
}

namespace {

/** Character cursor over the checkpoint stream: every read keeps the
 *  1-based line count so diagnostics are precise. */
struct Cursor
{
    std::istream &is;
    int line = 1;

    int
    get()
    {
        const int c = is.get();
        if (c == '\n')
            ++line;
        return c;
    }

    /** Skip whitespace, then read one whitespace-delimited token
     *  (leaving the delimiter unconsumed, so length-prefixed raw
     *  bodies that follow "<len> " stay byte-exact). False at end of
     *  stream. */
    bool
    token(std::string *out)
    {
        const auto ws = [](int c) {
            return c == ' ' || c == '\n' || c == '\r' || c == '\t';
        };
        int c = is.peek();
        while (ws(c)) {
            get();
            c = is.peek();
        }
        if (c == std::istream::traits_type::eof())
            return false;
        out->clear();
        while (c != std::istream::traits_type::eof() && !ws(c)) {
            out->push_back(static_cast<char>(get()));
            c = is.peek();
        }
        return true;
    }

    /** Read exactly @p n raw bytes (name/payload bodies). */
    bool
    raw(std::size_t n, std::string *out)
    {
        out->resize(n);
        is.read(out->data(), static_cast<std::streamsize>(n));
        if (static_cast<std::size_t>(is.gcount()) != n)
            return false;
        for (char c : *out) {
            if (c == '\n')
                ++line;
        }
        return true;
    }
};

bool
parseDec(const std::string &w, std::uint64_t *out)
{
    if (w.empty() || w.size() > 20)
        return false;
    std::uint64_t v = 0;
    for (char c : w) {
        if (c < '0' || c > '9')
            return false;
        const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
        // Overflow must be a parse failure, not a silent wrap
        // (2^64 would otherwise "parse" as 0 and sidestep every
        // downstream bound check).
        if (v > (~0ULL - d) / 10)
            return false;
        v = v * 10 + d;
    }
    *out = v;
    return true;
}

// Register values reuse the snapshot layer's strict hex parse
// (isa/snapshot.hh snapshotParseHex) so both layers agree on what a
// number is.

} // namespace

const char *
checkpointSchemaName(const Checkpoint &ckpt)
{
    return ckpt.hasWarmState() || !ckpt.config.empty() ? "eole-ckpt-v2"
                                                       : "eole-ckpt-v1";
}

bool
tryDeserializeCheckpoint(std::istream &is, Checkpoint *out,
                         std::string *err)
{
    Cursor cur{is};
    std::string tok;
    const auto fail = [&](const std::string &msg) {
        *err = "checkpoint line " + std::to_string(cur.line) + ": "
            + msg;
        return false;
    };
    const auto expect = [&](const char *tag) {
        if (!cur.token(&tok))
            return fail(std::string("truncated: expected '") + tag
                        + "'");
        if (tok != tag)
            return fail(std::string("expected '") + tag + "', got \""
                        + tok + "\"");
        return true;
    };
    // A length-prefixed name: "<tag> <len> <len raw bytes>".
    const auto namedString = [&](const char *tag, std::string *s) {
        if (!expect(tag))
            return false;
        std::uint64_t len = 0;
        if (!cur.token(&tok) || !parseDec(tok, &len) || len > 4096) {
            return fail(std::string("implausible ") + tag
                        + "-name length \"" + tok + "\"");
        }
        cur.get();  // the single separating space
        if (!cur.raw(static_cast<std::size_t>(len), s))
            return fail(std::string("truncated ") + tag + " name");
        return true;
    };

    Checkpoint ckpt;
    if (!cur.token(&tok))
        return fail("empty document");
    const bool v2 = tok == "eole-ckpt-v2";
    if (!v2 && tok != "eole-ckpt-v1")
        return fail("unsupported checkpoint schema \"" + tok + "\"");

    if (v2 && !namedString("config", &ckpt.config))
        return false;
    if (!namedString("workload", &ckpt.workload))
        return false;

    if (!expect("uop"))
        return false;
    if (!cur.token(&tok) || !parseDec(tok, &ckpt.uopIndex))
        return fail("bad µ-op index \"" + tok + "\"");

    if (!expect("int"))
        return false;
    for (int r = 0; r < numArchIntRegs; ++r) {
        if (!cur.token(&tok) || !snapshotParseHex(tok, &ckpt.intRegs[r]))
            return fail("truncated or malformed int register block");
    }
    if (!expect("fp"))
        return false;
    for (int r = 0; r < numArchFpRegs; ++r) {
        if (!cur.token(&tok) || !snapshotParseHex(tok, &ckpt.fpRegs[r]))
            return fail("truncated or malformed fp register block");
    }

    if (v2) {
        if (!expect("sections"))
            return false;
        std::uint64_t n = 0;
        if (!cur.token(&tok) || !parseDec(tok, &n) || n > 16)
            return fail("implausible section count \"" + tok + "\"");
        for (std::uint64_t i = 0; i < n; ++i) {
            if (!expect("section"))
                return false;
            std::string name;
            if (!cur.token(&name) || name.empty() || name.size() > 64)
                return fail("bad section name");
            for (const auto &[prev, _] : ckpt.uarch) {
                if (prev == name)
                    return fail("duplicate section \"" + name + "\"");
            }
            std::uint64_t bytes = 0;
            if (!cur.token(&tok) || !parseDec(tok, &bytes)
                || bytes > (1ULL << 30)) {
                return fail("implausible section size \"" + tok
                            + "\"");
            }
            if (cur.get() != '\n')
                return fail("section header not newline-terminated");
            std::string payload;
            if (!cur.raw(static_cast<std::size_t>(bytes), &payload)) {
                return fail("truncated section \"" + name + "\" ("
                            + std::to_string(bytes) + " bytes)");
            }
            ckpt.uarch.emplace_back(std::move(name),
                                    std::move(payload));
        }
        if (!expect("end"))
            return false;
    }

    // Strict validation means the document is *exactly* a checkpoint:
    // trailing garbage (a concatenation accident, a corrupted tail)
    // must not validate as clean.
    if (cur.token(&tok))
        return fail("trailing garbage \"" + tok + "\" after document");

    *out = std::move(ckpt);
    return true;
}

Checkpoint
deserializeCheckpoint(std::istream &is)
{
    Checkpoint ckpt;
    std::string err;
    fatal_if(!tryDeserializeCheckpoint(is, &ckpt, &err), "%s",
             err.c_str());
    return ckpt;
}

std::string
checkpointString(const Checkpoint &ckpt)
{
    std::ostringstream oss;
    serializeCheckpoint(oss, ckpt);
    return oss.str();
}

Checkpoint
checkpointFromString(const std::string &text)
{
    std::istringstream iss(text);
    return deserializeCheckpoint(iss);
}

} // namespace eole
