# Empty dependencies file for test_slab.
# This may be replaced when dependencies are built.
