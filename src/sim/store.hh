/**
 * @file
 * Content-addressed result store: sweep-cell artifacts and warm-state
 * checkpoints keyed by the SHA-256 of a canonical key document.
 *
 * The EagleTree "experiments as managed result folders" idiom
 * (SNIPPETS.md §2–3), done deterministically: a store directory is a
 * cache of finished work addressed purely by its inputs. A cell's key
 * document spells out everything its measurement depends on — the
 * complete canonical config map (sim/params.hh), the workload name,
 * the resolved cell seed, the resolved run lengths, the sample spec
 * and (for checkpoints) the µ-op index — so equal keys mean "the same
 * experiment, byte for byte", any single field change means a new key,
 * and `eole run --store DIR` can skip a cell the moment its key
 * resolves. Re-running an unchanged grid computes zero cells; that is
 * the serve-sweep-queries-as-cache-hits direction the ROADMAP names.
 *
 * Layout (all canonical text, no timestamps or host state):
 *
 *   DIR/index                eole-store-v1 header + one line per
 *                            object: hash, kind, bytes, logical LRU
 *                            tick, workload, config
 *   DIR/objects/<hash>       the key document, a "payload <bytes>"
 *                            separator, then the raw payload (cell
 *                            stats text or a serialized checkpoint)
 *
 * Recency is a persisted logical tick (monotone counter), not wall
 * time, so eviction order is deterministic and testable: `gc` drops
 * lowest-tick objects first, and every hit bumps its object's tick.
 * One process owns a store directory at a time (the engines call the
 * store only from their serial pre/post phases; there is no
 * cross-process locking).
 */

#ifndef EOLE_SIM_STORE_HH
#define EOLE_SIM_STORE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "sim/plan.hh"

namespace eole {

/** Everything a stored object's identity derives from. */
struct StoreKey
{
    std::string kind;      //!< "cell" (reduced stats), "ckpt", "trace"
    std::string config;    //!< config name (axis-derived names legal)
    /** Complete canonical config map (configKeyValues) — the config's
     *  identity is its parameters, not its name. */
    std::vector<std::pair<std::string, std::string>> params;
    std::string workload;
    std::uint64_t seed = 0;     //!< resolved cell seed (jobSeed)
    std::uint64_t warmup = 0;   //!< resolved warmup µ-ops
    std::uint64_t measure = 0;  //!< resolved measured µ-ops (per config)
    SampleSpec sample;          //!< disabled for full runs
    std::uint64_t index = 0;    //!< ckpt µ-op index (0 for cells)
    /** Content address for payload-identified objects ("trace": the
     *  SHA-256 of the file bytes). Empty for cell/ckpt keys, and only
     *  emitted into the key document when set, so every pre-existing
     *  store hash is unchanged. */
    std::string content;
};

/** The canonical key document (byte-stable; this text is hashed). */
std::string storeKeyText(const StoreKey &key);

/** SHA-256 of storeKeyText as 64 lowercase hex characters — the
 *  object's address. */
std::string storeKeyHash(const StoreKey &key);

/** Canonical payload text for a cell's reduced StatRecord
 *  ("eole-store-cell-v1"); %.17g values round-trip exactly, so a
 *  cache-hit artifact is byte-identical to a computed one. */
std::string cellPayloadText(const StatRecord &stats);

/** Parse cellPayloadText; false + line-numbered diagnostic in @p err
 *  on a corrupted payload. */
bool tryParseCellPayload(const std::string &text, StatRecord *out,
                         std::string *err);

class Store
{
  public:
    /** Open (creating if missing) the store at @p dir. Fatal on an
     *  unreadable or corrupted index — a store is a managed cache the
     *  operator can always delete and re-fill. */
    explicit Store(const std::string &dir);

    /** Persists the index (also called on every mutation's behalf by
     *  the destructor). */
    ~Store();

    /** Fetch a payload by hash; a hit bumps the object's LRU tick. An
     *  index entry whose object file went missing reads as a miss. */
    bool get(const std::string &hash, std::string *payload);

    bool contains(const std::string &hash) const;

    /** Insert (or overwrite) the object for @p key. */
    void put(const StoreKey &key, const std::string &payload);

    struct Entry
    {
        std::string hash;
        std::string kind;
        std::uint64_t bytes = 0;  //!< payload bytes
        std::uint64_t tick = 0;   //!< logical LRU tick (higher = newer)
        std::string workload;
        std::string config;
    };

    /** Index order (insertion order, stable across open/close). */
    const std::vector<Entry> &entries() const { return index; }

    std::uint64_t totalPayloadBytes() const;

    /**
     * Evict lowest-tick objects until at most @p max_objects remain
     * and the payload total is at most @p max_bytes (~0ULL = no bound
     * on that axis). Deleted entries are appended to @p evicted when
     * non-null. Returns the number evicted.
     */
    std::size_t gc(std::uint64_t max_objects, std::uint64_t max_bytes,
                   std::vector<Entry> *evicted = nullptr);

    /** Rewrite DIR/index now. */
    void flush();

    const std::string &directory() const { return dir; }

  private:
    std::string objectPath(const std::string &hash) const;

    std::string dir;
    std::vector<Entry> index;
    std::uint64_t nextTick = 1;
    bool dirty = false;
};

} // namespace eole

#endif // EOLE_SIM_STORE_HH
