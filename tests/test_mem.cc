/**
 * @file
 * Unit tests for the memory hierarchy: cache hit/miss timing, LRU,
 * MSHR semantics, writebacks, the stride prefetcher and the DRAM bank
 * model, plus end-to-end hierarchy latencies (Table 1 calibration).
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/hierarchy.hh"
#include "mem/prefetcher.hh"

using namespace eole;

namespace {

/** Fixed-latency backing store for isolated cache tests. */
Cache::NextLevelFn
fixedLatency(Cycle lat, std::uint64_t *accesses = nullptr,
             std::uint64_t *writes = nullptr)
{
    return [lat, accesses, writes](Addr, bool is_write, Cycle now) {
        if (accesses)
            ++*accesses;
        if (writes && is_write)
            ++*writes;
        return now + lat;
    };
}

CacheConfig
smallCache()
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.sizeBytes = 1024;  // 4 sets x 4 ways x 64 B
    cfg.ways = 4;
    cfg.latency = 2;
    cfg.mshrs = 4;
    return cfg;
}

} // namespace

TEST(Cache, HitAfterFill)
{
    Cache c(smallCache(), fixedLatency(100));
    const Cycle miss_done = c.access(0x1000, false, 0);
    EXPECT_GE(miss_done, 100u);
    const Cycle hit_done = c.access(0x1000, false, miss_done);
    EXPECT_EQ(hit_done, miss_done + 2);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SameLineDifferentOffsetHits)
{
    Cache c(smallCache(), fixedLatency(100));
    const Cycle done = c.access(0x1000, false, 0);
    EXPECT_EQ(c.access(0x1030, false, done), done + 2);
}

TEST(Cache, MshrMergeOnOutstandingLine)
{
    Cache c(smallCache(), fixedLatency(100));
    const Cycle first = c.access(0x2000, false, 0);
    // A second access to the same line while the fill is in flight
    // merges rather than issuing a second miss.
    const Cycle second = c.access(0x2040 - 0x40, false, 5);
    EXPECT_LE(second, first + 2);
    const StatRecord r = c.record();
    EXPECT_EQ(r.get("misses"), 1.0);
    EXPECT_EQ(r.get("mshr_merges"), 1.0);
}

TEST(Cache, LruEvictsOldestWay)
{
    Cache c(smallCache(), fixedLatency(10));
    // 5 distinct lines in the same set (4 ways): evicts the first.
    Cycle t = 1000;
    for (int i = 0; i < 5; ++i)
        t = c.access(0x1000 + i * 0x100, false, t) + 1;
    // Line 0 was evicted: re-access misses.
    const std::uint64_t misses_before = c.misses();
    c.access(0x1000, false, t + 1000);
    EXPECT_EQ(c.misses(), misses_before + 1);
    // Line 4 (most recent) still hits.
    const std::uint64_t hits_before = c.hits();
    c.access(0x1400, false, t + 3000);
    EXPECT_EQ(c.hits(), hits_before + 1);
}

TEST(Cache, DirtyEvictionWritesBack)
{
    std::uint64_t accesses = 0, writes = 0;
    Cache c(smallCache(), fixedLatency(10, &accesses, &writes));
    Cycle t = 0;
    t = c.access(0x1000, true, t) + 1;  // dirty line
    for (int i = 1; i < 5; ++i)
        t = c.access(0x1000 + i * 0x100, false, t) + 10;
    EXPECT_EQ(writes, 1u);  // victim written back
    EXPECT_EQ(c.record().get("writebacks"), 1.0);
}

TEST(Cache, MshrExhaustionDelaysNewMisses)
{
    CacheConfig cfg = smallCache();
    cfg.mshrs = 2;
    Cache c(cfg, fixedLatency(1000));
    const Cycle a = c.access(0x10000, false, 0);
    const Cycle b = c.access(0x20000, false, 0);
    (void)a;
    (void)b;
    // Third concurrent miss must wait for an MSHR.
    const Cycle d = c.access(0x30000, false, 1);
    EXPECT_GT(d, 1000u);
    EXPECT_GE(c.record().get("mshr_stalls"), 1.0);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache c(smallCache(), fixedLatency(50));
    EXPECT_FALSE(c.probe(0x4000, 0));
    const Cycle done = c.access(0x4000, false, 0);
    EXPECT_FALSE(c.probe(0x4000, 5));      // fill still in flight
    EXPECT_TRUE(c.probe(0x4000, done));
    EXPECT_EQ(c.misses(), 1u);             // probe did not count
}

TEST(Prefetcher, FiresAfterConfirmedStride)
{
    CacheConfig cfg = smallCache();
    cfg.sizeBytes = 4096;
    Cache target(cfg, fixedLatency(10));
    StridePrefetcher pf;
    pf.attach(&target);
    const Addr pc = 0x400100;
    // The stride must be observed and confirmed twice before the
    // prefetcher trusts it (conservative training).
    pf.observe(pc, 0x1000, 0);
    pf.observe(pc, 0x1040, 10);
    pf.observe(pc, 0x1080, 20);
    EXPECT_EQ(pf.issuedCount(), 0u);
    pf.observe(pc, 0x10c0, 30);
    EXPECT_GT(pf.issuedCount(), 0u);
    // The prefetched next lines land in the target cache.
    EXPECT_TRUE(target.probe(0x1100, 2000));
}

TEST(Prefetcher, StrideChangeResetsConfidence)
{
    Cache target(smallCache(), fixedLatency(10));
    StridePrefetcher pf;
    pf.attach(&target);
    const Addr pc = 0x400200;
    pf.observe(pc, 0x1000, 0);
    pf.observe(pc, 0x1040, 1);
    pf.observe(pc, 0x2000, 2);  // stride change
    pf.observe(pc, 0x2040, 3);
    EXPECT_EQ(pf.issuedCount(), 0u);  // needs re-confirmation
}

TEST(Dram, RowHitFasterThanRowMiss)
{
    DramConfig cfg;
    Dram d(cfg);
    // Lines are interleaved across the 16 banks: the same bank (and
    // row) recurs every 16 lines (0x400 bytes).
    const Cycle first = d.access(0x100000, false, 0);   // row miss
    const Cycle second =
        d.access(0x100400, false, first) - first;        // row hit
    const Cycle at = first * 10;
    const Cycle third = d.access(0x900000, false, at) - at;  // new row
    EXPECT_GT(first, second);  // open-row hit is cheaper
    EXPECT_GT(third, second);
}

TEST(Dram, BusSerializesBursts)
{
    Dram d;
    // Two back-to-back accesses to different banks still share the bus.
    const Cycle a = d.access(0x0, false, 0);
    const Cycle b = d.access(0x40, false, 0);
    EXPECT_GE(b, a + DramConfig{}.burstCycles);
}

TEST(Hierarchy, LatenciesMatchTable1Calibration)
{
    MemHierarchy mem;
    // Cold miss all the way to DRAM: >= ~75 cycles (Table 1 minimum).
    const Cycle dram_load = mem.loadAccess(0x400000, 0x123400, 1000);
    EXPECT_GE(dram_load - 1000, 75u);
    EXPECT_LE(dram_load - 1000, 120u);
    // L1 hit: 2 cycles.
    const Cycle l1_hit = mem.loadAccess(0x400000, 0x123400, dram_load);
    EXPECT_EQ(l1_hit - dram_load, 2u);
}

TEST(Hierarchy, L2HitCostsL1MissPlusL2Latency)
{
    MemHierarchy mem;
    Cycle t = mem.loadAccess(0x400000, 0x40000, 0);
    // Evict from L1 (4-way, 128 sets, 32 KB): 5 conflicting lines.
    for (int i = 1; i <= 5; ++i)
        t = mem.loadAccess(0x400000, 0x40000 + i * 0x8000, t + 1);
    // Line is gone from L1 but still in L2.
    const Cycle start = t + 100;
    const Cycle done = mem.loadAccess(0x400000, 0x40000, start);
    EXPECT_GE(done - start, 12u);
    EXPECT_LE(done - start, 20u);
}

TEST(Hierarchy, InstructionFetchesUseL1I)
{
    MemHierarchy mem;
    const Cycle miss = mem.fetchAccess(0x400000, 0);
    EXPECT_GT(miss, 2u);
    const Cycle hit = mem.fetchAccess(0x400004, miss);
    EXPECT_EQ(hit - miss, 2u);
    EXPECT_EQ(mem.l1iCache().hits(), 1u);
}

TEST(Hierarchy, StreamingLoadsTriggerPrefetch)
{
    MemHierarchy mem;
    Cycle t = 0;
    for (int i = 0; i < 64; ++i)
        t = mem.loadAccess(0x400000, 0x100000 + Addr(i) * 64, t + 1);
    EXPECT_GT(mem.record().get("prefetches_issued"), 0.0);
    // Far ahead in the stream, lines should already be in L2.
    EXPECT_TRUE(mem.l2Cache().probe(0x100000 + 66 * 64, t + 10000));
}
