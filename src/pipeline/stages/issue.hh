/**
 * @file
 * Issue/execute stage: the out-of-order engine.
 *
 * Oldest-first selection over the IQ under FU-pool and issue-width
 * constraints, Store Sets memory-dependence enforcement, execution
 * with a latency oracle (loads access the memory hierarchy, with
 * store-to-load forwarding and memory-order violation detection on
 * store execute).
 */

#ifndef EOLE_PIPELINE_STAGES_ISSUE_HH
#define EOLE_PIPELINE_STAGES_ISSUE_HH

#include "pipeline/dyn_inst.hh"
#include "pipeline/stages/stage.hh"
#include "sim/config.hh"

namespace eole {

class IssueStage : public Stage
{
  public:
    explicit IssueStage(const SimConfig &cfg);

    const char *name() const override { return "issue"; }
    void tick(PipelineState &st) override;
    void squash(PipelineState &st, SeqNum keep_seq,
                Cycle resume_fetch_at) override;
    void resetStats() override;
    void addStats(CoreStats &out) const override;

  private:
    struct Stats
    {
        std::uint64_t storeToLoadForwards = 0;
        std::uint64_t memOrderViolations = 0;
        std::uint64_t iqOccupancySum = 0;
    };

    /** @return false when execution is blocked and must retry (e.g. a
     *  partial store overlap). */
    bool executeInst(PipelineState &st, const DynInstPtr &di);
    void finishExec(PipelineState &st, const DynInstPtr &di, RegVal value,
                    Cycle ready);
    bool storeExecuted(const PipelineState &st, SeqNum store_seq) const;
    void checkStoreViolation(PipelineState &st, const DynInstPtr &store);

    int issueWidth;

    /** True while tick() is scanning/compacting st.iq in place; makes
     *  a re-entrant squash() (store violation mid-scan) defer its IQ
     *  erase to the scan's own compaction. */
    bool scanning = false;

    /** Set by a deferred mid-scan squash(); disables the scan's
     *  early-stop so its compaction reaches the marked entries. */
    bool squashedDuringScan = false;

    /** Issue-free-cycle skip (armed by tick() when a full scan proves
     *  nothing can issue before wakeAt absent a wake event; see the
     *  proof in tick()). wakeAt == invalidCycle means "only a wake
     *  event (PipelineState::iqWakeEpoch) can end the sleep". */
    bool asleep = false;
    Cycle wakeAt = 0;
    std::uint64_t wakeEpoch = 0;

    Stats s;
};

} // namespace eole

#endif // EOLE_PIPELINE_STAGES_ISSUE_HH
