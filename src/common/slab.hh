/**
 * @file
 * Slab/pool allocation for short-lived, high-churn simulation objects
 * (DynInsts: created at fetch, dead at commit or squash, near-FIFO).
 *
 * SlabPool<T> carves fixed-size blocks into slots and recycles them
 * through an intrusive LIFO free list, so the per-µop allocate/free
 * pair on the detailed tick loop's hottest path costs a couple of
 * pointer moves instead of a malloc + control-block allocation.
 * PooledPtr<T> is the owning handle: intrusively reference-counted
 * with the same API surface as the std::shared_ptr it replaces (copy/
 * move, reset, get, ->, *, explicit bool) but without atomics — a pool
 * and its handles belong to ONE thread (each simulated core is
 * single-threaded; sweep parallelism is across cores, which never
 * share DynInsts).
 *
 * Lifetime rules (see DESIGN.md §10):
 *  - Every handle must be dropped before its pool is destroyed; the
 *    pool's destructor panics on live objects (a leaked handle is a
 *    dangling-pointer bug waiting to happen, not a leak to tolerate).
 *    Declare the pool before the containers holding its handles so
 *    reverse destruction order drains handles first.
 *  - Recycling never returns memory to the OS while the pool lives;
 *    the refcount is what keeps an object alive, exactly as with
 *    shared_ptr (a squashed µ-op still referenced by the completion
 *    wheel stays valid until the wheel drains it).
 *  - Under AddressSanitizer, free slots are poisoned between recycle
 *    and reuse, so a use-after-release through a raw pointer faults
 *    in the ASan lane instead of silently reading recycled state.
 *
 * Recycle policies: SlabRecycle::destroy (the default) runs ~T() when
 * the last handle drops, so each allocate() placement-news a fresh
 * object. SlabRecycle::reuse keeps recycled objects constructed and
 * hands them back as-is, so members like std::vector keep their heap
 * capacity across laps — the right policy for fixed-shape objects
 * (every BranchUnit snapshot has the same fold count and RAS depth)
 * whose producer overwrites every field anyway. Reuse-mode allocate()
 * takes no constructor arguments (a recycled object would silently
 * ignore them); objects are default-constructed on first use and
 * destroyed when the pool is.
 */

#ifndef EOLE_COMMON_SLAB_HH
#define EOLE_COMMON_SLAB_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"

#if defined(__SANITIZE_ADDRESS__)
#define EOLE_SLAB_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define EOLE_SLAB_ASAN 1
#endif
#endif
#ifdef EOLE_SLAB_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace eole {

template <typename T> class SlabPool;

/** What happens to a pooled object when its last handle drops. */
enum class SlabRecycle
{
    destroy,  //!< run ~T(); allocate() constructs fresh (the default)
    reuse     //!< keep it constructed; allocate() returns it as-is
};

namespace slab_detail {

template <typename T>
struct Slot
{
    alignas(T) unsigned char storage[sizeof(T)];
    std::uint32_t refs = 0;
    bool constructed = false;
    Slot *nextFree = nullptr;
    SlabPool<T> *owner = nullptr;

    T *object() { return std::launder(reinterpret_cast<T *>(storage)); }
};

} // namespace slab_detail

/** Owning, non-atomic refcounted handle to a pool slot. */
template <typename T>
class PooledPtr
{
  public:
    PooledPtr() = default;
    PooledPtr(std::nullptr_t) {}

    PooledPtr(const PooledPtr &o) : slot(o.slot)
    {
        if (slot)
            ++slot->refs;
    }

    PooledPtr(PooledPtr &&o) noexcept : slot(o.slot) { o.slot = nullptr; }

    PooledPtr &
    operator=(const PooledPtr &o)
    {
        PooledPtr(o).swap(*this);
        return *this;
    }

    PooledPtr &
    operator=(PooledPtr &&o) noexcept
    {
        PooledPtr(std::move(o)).swap(*this);
        return *this;
    }

    ~PooledPtr() { release(); }

    void reset() { release(); }
    void swap(PooledPtr &o) noexcept { std::swap(slot, o.slot); }

    T *get() const { return slot ? slot->object() : nullptr; }
    T &operator*() const { return *slot->object(); }
    T *operator->() const { return slot->object(); }
    explicit operator bool() const { return slot != nullptr; }

    /** Live handles to the same slot (diagnostic/test surface; the
     *  shared_ptr analogue is use_count). */
    std::uint32_t useCount() const { return slot ? slot->refs : 0; }

    friend bool
    operator==(const PooledPtr &a, const PooledPtr &b)
    {
        return a.slot == b.slot;
    }

    friend bool
    operator!=(const PooledPtr &a, const PooledPtr &b)
    {
        return a.slot != b.slot;
    }

  private:
    friend class SlabPool<T>;

    explicit PooledPtr(slab_detail::Slot<T> *s) : slot(s) {}

    void
    release()
    {
        if (!slot)
            return;
        slab_detail::Slot<T> *s = slot;
        slot = nullptr;
        if (--s->refs == 0)
            s->owner->recycle(s);
    }

    slab_detail::Slot<T> *slot = nullptr;
};

/** The block-of-slots arena behind PooledPtr; see file header. */
template <typename T>
class SlabPool
{
  public:
    explicit SlabPool(std::size_t slots_per_block = 256,
                      SlabRecycle recycle_policy = SlabRecycle::destroy)
        : slotsPerBlock(slots_per_block), policy(recycle_policy)
    {
        panic_if(slotsPerBlock == 0, "SlabPool needs at least one slot");
    }

    SlabPool(const SlabPool &) = delete;
    SlabPool &operator=(const SlabPool &) = delete;

    ~SlabPool()
    {
        // A live object here means some handle outlived the pool and
        // now dangles; fail fast instead of letting it read freed
        // memory later.
        panic_if(liveCount != 0,
                 "SlabPool destroyed with %zu live object(s)", liveCount);
        for (auto &block : blocks) {
            for (std::size_t i = 0; i < slotsPerBlock; ++i) {
#ifdef EOLE_SLAB_ASAN
                ASAN_UNPOISON_MEMORY_REGION(block[i].storage, sizeof(T));
#endif
                // Reuse-policy slots on the free list are still
                // constructed; tear them down with the pool.
                if (block[i].constructed)
                    block[i].object()->~T();
            }
        }
    }

    /** Construct a T in a recycled (or fresh) slot. Under the reuse
     *  policy no arguments are accepted: a recycled slot's object
     *  comes back as-is and the caller overwrites its fields. */
    template <typename... Args>
    PooledPtr<T>
    allocate(Args &&...args)
    {
        static_assert(sizeof...(Args) == 0
                          || std::is_constructible_v<T, Args...>,
                      "T must be constructible from the arguments");
        if (!freeHead)
            grow();
        slab_detail::Slot<T> *s = freeHead;
        freeHead = s->nextFree;
#ifdef EOLE_SLAB_ASAN
        ASAN_UNPOISON_MEMORY_REGION(s->storage, sizeof(T));
#endif
        if (!s->constructed) {
            ::new (static_cast<void *>(s->storage))
                T(std::forward<Args>(args)...);
            s->constructed = true;
        } else {
            panic_if(sizeof...(Args) != 0,
                     "reuse-policy SlabPool::allocate takes no arguments");
        }
        s->refs = 1;
        ++liveCount;
        return PooledPtr<T>(s);
    }

    /** Currently live (constructed, handle-referenced) objects. */
    std::size_t live() const { return liveCount; }

    /** Total slots across all blocks (grows, never shrinks). */
    std::size_t capacity() const { return blocks.size() * slotsPerBlock; }

  private:
    friend class PooledPtr<T>;

    void
    recycle(slab_detail::Slot<T> *s)
    {
        if (policy == SlabRecycle::destroy) {
            s->object()->~T();
            s->constructed = false;
        }
#ifdef EOLE_SLAB_ASAN
        ASAN_POISON_MEMORY_REGION(s->storage, sizeof(T));
#endif
        s->nextFree = freeHead;
        freeHead = s;
        --liveCount;
    }

    void
    grow()
    {
        blocks.push_back(
            std::make_unique<slab_detail::Slot<T>[]>(slotsPerBlock));
        slab_detail::Slot<T> *block = blocks.back().get();
        // Chain in reverse so allocation walks the block front to back
        // (and the LIFO free list stays address-ordered when idle).
        for (std::size_t i = slotsPerBlock; i-- > 0;) {
            block[i].owner = this;
            block[i].nextFree = freeHead;
            freeHead = &block[i];
#ifdef EOLE_SLAB_ASAN
            ASAN_POISON_MEMORY_REGION(block[i].storage, sizeof(T));
#endif
        }
    }

    std::size_t slotsPerBlock;
    SlabRecycle policy;
    std::vector<std::unique_ptr<slab_detail::Slot<T>[]>> blocks;
    slab_detail::Slot<T> *freeHead = nullptr;
    std::size_t liveCount = 0;
};

} // namespace eole

#endif // EOLE_COMMON_SLAB_HH
