# Empty dependencies file for eole_cli.
# This may be replaced when dependencies are built.
