/**
 * Figure 11: EOLE_4_64 with a 4-bank PRF and 2/3/4 read ports per bank
 * dedicated to Late Execution / Validation / Training, normalized to
 * EOLE_4_64 with a single bank and unconstrained ports.
 */
#include "bench_common.hh"

using namespace eole;

int
main()
{
    announce("Fig 11", "LE/VT read-port constraint cost");

    const SimConfig ref = configs::eole(4, 64);  // unconstrained
    const SimConfig p2 = configs::eoleConstrained(4, 64, 4, 2);
    const SimConfig p3 = configs::eoleConstrained(4, 64, 4, 3);
    const SimConfig p4 = configs::eoleConstrained(4, 64, 4, 4);
    const auto &names = workloads::allNames();
    const auto results = runGrid({ref, p2, p3, p4}, names);

    printTable("Speedup over unconstrained EOLE_4_64 (Fig 11)", results,
               {p2.name, p3.name, p4.name}, names, "ipc", ref.name);
    printTable("Commit port stalls (context)", results,
               {p2.name, p3.name, p4.name}, names, "commit_port_stalls");
    return 0;
}
