#include "pipeline/stages/dispatch.hh"

#include "common/pipetrace.hh"
#include "pipeline/pipeline_state.hh"

namespace eole {

DispatchStage::DispatchStage(const SimConfig &cfg)
    : dispatchWidth(cfg.dispatchWidth), iqEntries(cfg.iqEntries)
{
}

void
DispatchStage::tick(PipelineState &st)
{
    int dispatched = 0;
    while (dispatched < dispatchWidth && !st.renameOut.empty()) {
        // Run the stall checks through a reference (most iterations end
        // in a break); the handle moves out only once dispatch is
        // certain.
        DynInstPtr &head = st.renameOut.front();

        if (st.rob.full()) {
            ++s.robFullStalls;
            break;
        }
        if (head->isLoad() && st.lq.full())
            break;
        if (head->isStore() && st.sq.full())
            break;

        const bool needs_iq = !head->bypassesOoO()
            && head->uop().opClass() != OpClass::NoOp;
        if (needs_iq && static_cast<int>(st.iq.size()) >= iqEntries) {
            ++s.iqFullStalls;
            break;
        }

        // EE results and used predictions are written to the PRF at
        // dispatch, consuming constrained write ports (§6.3).
        if (head->physDst != invalidReg
            && (head->earlyExecuted || head->predictionUsed)) {
            const int bank = st.bankOfReg(head->uop().dstClass, head->physDst);
            if (!st.ports.tryEeWrite(bank)) {
                ++s.dispatchPortStalls;
                break;
            }
            const RegVal v = head->earlyExecuted ? head->computedValue
                                                 : head->predictedValue;
            st.prfOf(head->uop().dstClass).write(head->physDst, v, st.now);
            ++st.iqWakeEpoch;  // a queued consumer may now be ready
        }

        DynInstPtr di = std::move(head);
        st.renameOut.pop_front();
        di->dispatched = true;
        st.rob.pushBack(di);
        if (di->isLoad())
            st.lq.pushBack(di);
        if (di->isStore())
            st.sq.pushBack(di);

        if (st.tracer && st.tracer->wants(di->seq))
            st.tracer->event(st.now, di->seq, PipeEvent::Dispatch);

        if (di->earlyExecuted || di->uop().opClass() == OpClass::NoOp) {
            di->completed = true;
            di->completeCycle = st.now;
            if (st.tracer && st.tracer->wants(di->seq))
                st.tracer->event(st.now, di->seq, PipeEvent::Complete);
        } else if (di->lateExecutable()) {
            di->completeCycle = st.now;  // LE gating base (see commit)
        } else {
            di->inIQ = true;
            st.iq.push_back(std::move(di));
            ++st.iqWakeEpoch;
            ++s.dispatchedToIQ;
        }
        ++dispatched;
    }
}

void
DispatchStage::resetStats()
{
    s = Stats{};
}

void
DispatchStage::addStats(CoreStats &out) const
{
    out.dispatchPortStalls += s.dispatchPortStalls;
    out.robFullStalls += s.robFullStalls;
    out.iqFullStalls += s.iqFullStalls;
    out.dispatchedToIQ += s.dispatchedToIQ;
}

} // namespace eole
