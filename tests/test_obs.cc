/**
 * @file
 * Tests for the observability layer: pipeline event tracing
 * (common/pipetrace.hh), the tick-loop profiler (common/profiler.hh),
 * sweep telemetry (sim/telemetry.hh) and build provenance
 * (common/build_info.hh).
 *
 * The load-bearing contracts:
 *  - Canonical pipetraces are byte-stable for a fixed cell, and carry
 *    the full µop lifecycle including squash and VP/LE annotations.
 *  - The Kanata form opens every fetched µop and closes it exactly
 *    once (retired or flushed).
 *  - The profiler records nothing when disabled, and when enabled its
 *    top-level sections sum to at most the measured wall time.
 *  - Telemetry JSONL round-trips, terminates with run_finish or
 *    run_aborted, and never perturbs artifacts.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/build_info.hh"
#include "common/pipetrace.hh"
#include "common/profiler.hh"
#include "sim/artifact.hh"
#include "sim/bench.hh"
#include "sim/configs.hh"
#include "sim/plan.hh"
#include "sim/sweep.hh"
#include "sim/telemetry.hh"
#include "sim/trace_cache.hh"
#include "workloads/workload.hh"

using namespace eole;

namespace {

ExperimentPlan
oneCellPlan(const std::string &config, const std::string &workload,
            std::uint64_t warmup, std::uint64_t measure)
{
    SimConfig c;
    EXPECT_TRUE(configs::findNamed(config, &c)) << config;
    ExperimentPlan p;
    p.name = "obs";
    p.configs = {c};
    p.workloads = {workload};
    p.warmup = warmup;
    p.measure = measure;
    return p;
}

std::string
traceOf(const std::string &config, const std::string &workload,
        PipeTracer::Format format, std::uint64_t warmup = 500,
        std::uint64_t measure = 1500, SeqNum lo = 0,
        SeqNum hi = ~SeqNum{0})
{
    const ExperimentPlan p = oneCellPlan(config, workload, warmup, measure);
    std::ostringstream os;
    PipeTracer tracer(os, format, lo, hi);
    SweepOptions opt;
    opt.tracer = &tracer;
    runPlan(p, opt);
    tracer.finish();
    return os.str();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

/** A scratch file path under the test's cwd, fresh per call. */
std::string
scratchFile(const std::string &name)
{
    const std::string path = "test_obs_" + name + ".tmp";
    std::filesystem::remove(path);
    return path;
}

} // namespace

// --- Profiler --------------------------------------------------------------

TEST(Profiler, DisabledRecordsNothing)
{
    prof::setEnabled(false);
    prof::reset();
    {
        prof::ScopedTimer t(prof::StageFetch);
        prof::ScopedTimer u(prof::ModelVpred);
    }
    for (int s = 0; s < prof::NumSections; ++s) {
        const auto sec = static_cast<prof::Section>(s);
        EXPECT_EQ(prof::sectionNanos(sec), 0u) << prof::sectionName(sec);
        EXPECT_EQ(prof::sectionCount(sec), 0u) << prof::sectionName(sec);
    }
}

TEST(Profiler, ScopedTimerRecordsWhenEnabled)
{
    prof::setEnabled(true);
    prof::reset();
    {
        prof::ScopedTimer t(prof::StageIssue);
    }
    prof::setEnabled(false);
    EXPECT_EQ(prof::sectionCount(prof::StageIssue), 1u);
    EXPECT_GT(prof::sectionNanos(prof::StageIssue), 0u);
    EXPECT_EQ(prof::sectionCount(prof::StageCommit), 0u);
}

TEST(Profiler, StageSectionsSumToAtMostWallTime)
{
    prof::setEnabled(true);
    prof::reset();
    const auto t0 = std::chrono::steady_clock::now();
    runPlan(oneCellPlan("EOLE_4_64_2banks", "164.gzip", 1000, 20000));
    const std::uint64_t wallNs =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0).count();
    prof::setEnabled(false);

    // Every pipeline stage ticked, and the VP config exercised the
    // predictor model sections.
    const prof::Section stages[] = {
        prof::StageFetch, prof::StageRename, prof::StageDispatch,
        prof::StageIssue, prof::StageCompletion, prof::StageLevt,
        prof::StageCommit,
    };
    std::uint64_t topNs = 0;
    for (const prof::Section s : stages) {
        EXPECT_GT(prof::sectionCount(s), 0u) << prof::sectionName(s);
        topNs += prof::sectionNanos(s);
    }
    topNs += prof::sectionNanos(prof::StageOther)
        + prof::sectionNanos(prof::WarmFunctional)
        + prof::sectionNanos(prof::WarmRestore);
    EXPECT_GT(prof::sectionCount(prof::ModelVpred), 0u);

    // Top-level sections tile a subset of the run: their sum cannot
    // exceed the wall time around it (model.* sections nest inside
    // stage.* and are excluded from the sum).
    EXPECT_GT(topNs, 0u);
    EXPECT_LE(topNs, wallNs);
}

TEST(Profiler, SectionNamesAreDotted)
{
    EXPECT_STREQ(prof::sectionName(prof::StageFetch), "stage.fetch");
    EXPECT_STREQ(prof::sectionName(prof::ModelVpred), "model.vpred");
    EXPECT_STREQ(prof::sectionName(prof::WarmRestore), "warm.restore");
}

// --- Pipetrace -------------------------------------------------------------

TEST(PipeTrace, CanonicalByteStable)
{
    const std::string a =
        traceOf("Baseline_4_48", "186.crafty", PipeTracer::Format::Canonical);
    const std::string b =
        traceOf("Baseline_4_48", "186.crafty", PipeTracer::Format::Canonical);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(PipeTrace, CanonicalCarriesFullLifecycle)
{
    // hmmer's random data makes confident value predictions go wrong,
    // and VP-mispredict recovery is the one pipeline path that
    // squashes fetched µops (branch recovery stalls fetch instead),
    // so this cell exercises the entire event vocabulary.
    const std::string t = traceOf("EOLE_4_64", "456.hmmer",
                                  PipeTracer::Format::Canonical,
                                  20000, 30000);
    for (const char *ev : {" fetch ", " rename", " dispatch", " issue",
                           " exec", " complete", " commit", " squash"}) {
        EXPECT_NE(t.find(ev), std::string::npos) << ev;
    }
    EXPECT_NE(t.find("pc=0x"), std::string::npos);
    EXPECT_NE(t.find("op="), std::string::npos);
    for (const std::string &line : splitLines(t)) {
        unsigned long long cycle = 0, seq = 0;
        char event[32] = {};
        ASSERT_GE(std::sscanf(line.c_str(), "%llu %llu %31s", &cycle,
                              &seq, event), 3) << line;
    }
}

TEST(PipeTrace, VpAndLeAnnotations)
{
    // Long enough for FPC confidence counters to saturate: short
    // traces are all vp=unconf.
    const std::string t = traceOf("EOLE_4_64", "164.gzip",
                                  PipeTracer::Format::Canonical,
                                  20000, 30000);
    // VP disposition at fetch, outcome at commit; EE/LE disposition at
    // rename and LE execution in the pre-commit stage.
    EXPECT_NE(t.find("vp=conf"), std::string::npos);
    EXPECT_NE(t.find("vp=ok"), std::string::npos);
    EXPECT_NE(t.find("rename ee"), std::string::npos);
    EXPECT_NE(t.find("le="), std::string::npos);
}

TEST(PipeTrace, RangeFilterBoundsSeqNums)
{
    const std::string t =
        traceOf("Baseline_4_48", "164.gzip", PipeTracer::Format::Canonical,
                500, 1500, 100, 140);
    EXPECT_FALSE(t.empty());
    for (const std::string &line : splitLines(t)) {
        unsigned long long cycle = 0, seq = 0;
        ASSERT_EQ(std::sscanf(line.c_str(), "%llu %llu", &cycle, &seq),
                  2) << line;
        EXPECT_GE(seq, 100u) << line;
        EXPECT_LT(seq, 140u) << line;
    }
}

TEST(PipeTrace, KanataOpensAndClosesEveryRecord)
{
    const std::string t = traceOf("EOLE_4_64", "456.hmmer",
                                  PipeTracer::Format::Kanata,
                                  20000, 30000);
    const std::vector<std::string> lines = splitLines(t);
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(lines[0], "Kanata\t0004");
    ASSERT_GE(lines.size(), 2u);
    EXPECT_EQ(lines[1].rfind("C=\t", 0), 0u);

    std::size_t opens = 0, retires = 0, flushes = 0;
    for (const std::string &line : lines) {
        if (line.rfind("I\t", 0) == 0)
            ++opens;
        else if (line.rfind("R\t", 0) == 0)
            line.back() == '1' ? ++flushes : ++retires;
    }
    EXPECT_GT(opens, 0u);
    EXPECT_GT(retires, 0u);
    // VP-mispredict recovery squashes in-flight µops: they close as
    // flushed.
    EXPECT_GT(flushes, 0u);
    // No record closes twice, and the only records left open at the
    // end are the in-flight window when the run stopped.
    ASSERT_GE(opens, retires + flushes);
    EXPECT_LE(opens - (retires + flushes), 1024u);
}

TEST(PipeTrace, ObserversNeverPerturbArtifacts)
{
    const ExperimentPlan p =
        oneCellPlan("Baseline_4_48", "164.gzip", 500, 2000);
    const PlanResult plain = runPlan(p);

    const std::string telem_path = scratchFile("telem_artifact");
    std::ostringstream trace_os;
    PipeTracer tracer(trace_os, PipeTracer::Format::Kanata);
    {
        TelemetrySink sink(telem_path);
        SweepOptions opt;
        opt.tracer = &tracer;
        opt.telemetry = &sink;
        const PlanResult observed = runPlan(p, opt);
        EXPECT_EQ(jsonArtifactString(observed), jsonArtifactString(plain));
    }
    EXPECT_FALSE(trace_os.str().empty());
    std::filesystem::remove(telem_path);
}

// --- Telemetry -------------------------------------------------------------

TEST(Telemetry, RoundTripWithInjectedFailure)
{
    const std::string path = scratchFile("roundtrip");
    {
        TelemetrySink sink(path);
        sink.runStart("run", "fig12", 1, 1000, 5000, "EOLE", "", 4, 2,
                      -1, -1);
        sink.cellQueued("EOLE_4_64", "164.gzip");
        sink.cellQueued("EOLE_4_64", "186.crafty");
        sink.jobStart("cell", "EOLE_4_64", "164.gzip", 0);
        sink.jobFinish("cell", "EOLE_4_64", "164.gzip", 0, 12.5, true);
        sink.jobStart("cell", "EOLE_4_64", "186.crafty", 1);
        sink.jobFinish("cell", "EOLE_4_64", "186.crafty", 1, 3.25,
                       /*ok=*/false);
        sink.storeCounts(3, 1);
        sink.runAborted("injected failure");
    }

    const std::vector<TelemetryEvent> evs = readTelemetry(path);
    ASSERT_EQ(evs.size(), 9u);
    EXPECT_EQ(evs[0].ev, "run_start");
    EXPECT_EQ(evs[0].str("plan"), "fig12");
    EXPECT_EQ(evs[0].str("filter"), "EOLE");
    EXPECT_EQ(evs[0].num("warmup"), 1000);
    EXPECT_EQ(evs[0].num("cells"), 2);
    EXPECT_FALSE(evs[0].str("host").empty());
    EXPECT_FALSE(evs[0].str("build").empty());
    // Unsharded runs omit the shard fields entirely.
    EXPECT_EQ(evs[0].nums.count("shard_hosts"), 0u);
    EXPECT_EQ(evs[4].ev, "job_finish");
    EXPECT_EQ(evs[4].num("ok"), 1);
    EXPECT_DOUBLE_EQ(evs[4].num("wall_ms"), 12.5);
    EXPECT_EQ(evs[6].ev, "job_finish");
    EXPECT_EQ(evs[6].num("ok"), 0);
    EXPECT_EQ(evs[7].ev, "store");
    EXPECT_EQ(evs[7].num("hits"), 3);
    EXPECT_EQ(evs.back().ev, "run_aborted");
    EXPECT_EQ(evs.back().str("reason"), "injected failure");

    // Timestamps are monotone within a stream.
    for (std::size_t i = 1; i < evs.size(); ++i)
        EXPECT_GE(evs[i].num("t_ms"), evs[i - 1].num("t_ms"));

    std::ostringstream sum;
    summarizeTelemetry({path}, sum);
    const std::string s = sum.str();
    EXPECT_NE(s.find("1 aborted"), std::string::npos) << s;
    EXPECT_NE(s.find("2 (1 ok)"), std::string::npos) << s;
    EXPECT_NE(s.find("EOLE_4_64/164.gzip"), std::string::npos) << s;
    EXPECT_NE(s.find("EOLE_4_64/186.crafty"), std::string::npos) << s;
    EXPECT_NE(s.find("store: 3 cached, 1 computed"), std::string::npos)
        << s;
    std::filesystem::remove(path);
}

TEST(Telemetry, SweepEmitsFullLifecycle)
{
    SimConfig a, b;
    ASSERT_TRUE(configs::findNamed("Baseline_4_48", &a));
    ASSERT_TRUE(configs::findNamed("EOLE_4_64_2banks", &b));
    ExperimentPlan p;
    p.name = "obs";
    p.configs = {a, b};
    p.workloads = {"164.gzip"};
    p.warmup = 500;
    p.measure = 1500;

    const std::string path = scratchFile("sweep");
    {
        TelemetrySink sink(path);
        SweepOptions opt;
        opt.telemetry = &sink;
        runPlan(p, opt);
        sink.runFinish(2);
    }

    std::set<std::string> queued, finished;
    std::size_t starts = 0;
    bool sawCache = false;
    for (const TelemetryEvent &ev : readTelemetry(path)) {
        if (ev.ev == "cell_queued") {
            queued.insert(ev.str("config") + "/" + ev.str("workload"));
        } else if (ev.ev == "job_start") {
            ++starts;
            EXPECT_EQ(ev.str("kind"), "cell");
            EXPECT_GE(ev.num("worker"), 0);
        } else if (ev.ev == "job_finish") {
            finished.insert(ev.str("config") + "/" + ev.str("workload"));
            EXPECT_EQ(ev.num("ok"), 1);
            EXPECT_GT(ev.num("wall_ms"), 0);
        } else if (ev.ev == "trace_cache") {
            sawCache = true;
            // Two configs share one workload: 1 recording, 1 replay.
            EXPECT_EQ(ev.num("hits"), 1);
            EXPECT_EQ(ev.num("misses"), 1);
        }
    }
    const std::set<std::string> expect = {"Baseline_4_48/164.gzip",
                                          "EOLE_4_64_2banks/164.gzip"};
    EXPECT_EQ(queued, expect);
    EXPECT_EQ(finished, expect);
    EXPECT_EQ(starts, 2u);
    EXPECT_TRUE(sawCache);
    std::filesystem::remove(path);
}

TEST(TraceCache, CountsHitsAndMisses)
{
    TraceCache cache;
    Workload w = workloads::build("164.gzip");
    EXPECT_EQ(cache.hitCount(), 0u);
    EXPECT_EQ(cache.missCount(), 0u);
    cache.get(w, 1000);
    EXPECT_EQ(cache.hitCount(), 0u);
    EXPECT_EQ(cache.missCount(), 1u);
    cache.get(w, 1000);
    EXPECT_EQ(cache.hitCount(), 1u);
    EXPECT_EQ(cache.missCount(), 1u);
}

// --- Build provenance ------------------------------------------------------

TEST(BuildInfo, StampedIntoArtifacts)
{
    const std::string &info = buildInfoString();
    EXPECT_FALSE(info.empty());
    EXPECT_EQ(info, buildInfoString());  // stable within one binary

    PlanResult result;
    result.plan = "obs";
    EXPECT_NE(jsonArtifactString(result).find(
                  "\"build\": \"" + info + "\""),
              std::string::npos);

    BenchResult bench;
    EXPECT_NE(benchJsonString(bench).find("\"build\": \"" + info + "\""),
              std::string::npos);
}

// --- Bench profile ---------------------------------------------------------

TEST(BenchProfile, SectionsCoverMeasuredTime)
{
    BenchOptions opt;
    opt.configs = {"EOLE_4_64_2banks"};
    opt.workloads = {"164.gzip"};
    opt.budget = 20000;
    opt.warmup = 2000;
    opt.reps = 1;
    opt.quiet = true;
    opt.profile = true;
    const BenchResult r = runBench(opt);
    EXPECT_FALSE(prof::enabled());  // restored after the run

    ASSERT_EQ(r.cells.size(), 1u);
    const BenchCell &cell = r.cells[0];
    ASSERT_FALSE(cell.profile.empty());
    EXPECT_GT(cell.profileSeconds, 0.0);

    double top = 0.0;
    bool sawVpred = false;
    for (const auto &[name, secs] : cell.profile) {
        EXPECT_GT(secs, 0.0) << name;
        if (name.rfind("stage.", 0) == 0 || name.rfind("warm.", 0) == 0)
            top += secs;
        sawVpred = sawVpred || name == "model.vpred";
    }
    EXPECT_TRUE(sawVpred);
    // The stage timers tile the tick loop: they must account for most
    // of the measured rep without exceeding it.
    EXPECT_LE(top, cell.profileSeconds);
    EXPECT_GE(top, 0.5 * cell.profileSeconds);

    // The profile section survives the JSON round-trip canonically.
    const std::string text = benchJsonString(r);
    EXPECT_NE(text.find("\"profile\": {\"stage.fetch\": "),
              std::string::npos);
    std::istringstream is(text);
    const BenchResult back = readBenchJson(is);
    ASSERT_EQ(back.cells.size(), 1u);
    EXPECT_EQ(back.cells[0].profile, cell.profile);
    EXPECT_EQ(back.cells[0].profileSeconds, cell.profileSeconds);
    EXPECT_EQ(benchJsonString(back), text);
}

TEST(BenchProfile, OffByDefault)
{
    BenchOptions opt;
    opt.configs = {"Baseline_4_48"};
    opt.workloads = {"164.gzip"};
    opt.budget = 2000;
    opt.warmup = 500;
    opt.reps = 1;
    opt.quiet = true;
    const BenchResult r = runBench(opt);
    ASSERT_EQ(r.cells.size(), 1u);
    EXPECT_TRUE(r.cells[0].profile.empty());
    EXPECT_EQ(benchJsonString(r).find("profile"), std::string::npos);
}
