/**
 * @file
 * Fixed-capacity container primitives used to model pipeline structures:
 * a circular FIFO buffer (ROB, LSQ, prediction queue), a latency +
 * bandwidth constrained pipe (inter-stage communication), and a timing
 * wheel for scheduling events a bounded number of cycles into the
 * future (instruction completion).
 */

#ifndef EOLE_COMMON_QUEUES_HH
#define EOLE_COMMON_QUEUES_HH

#include <cstddef>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace eole {

/**
 * Bounded circular FIFO. Supports indexed access from the head, which
 * pipeline structures need for age-ordered scans (e.g. LSQ searches).
 */
template <typename T>
class CircularQueue
{
  public:
    explicit CircularQueue(size_t capacity)
        : buf(capacity), cap(capacity)
    {
        panic_if(capacity == 0, "CircularQueue capacity must be > 0");
    }

    bool empty() const { return count == 0; }
    bool full() const { return count == cap; }
    size_t size() const { return count; }
    size_t capacity() const { return cap; }
    size_t freeSlots() const { return cap - count; }

    /** Append at the tail. The queue must not be full. */
    void
    pushBack(T value)
    {
        panic_if(full(), "pushBack on full CircularQueue");
        buf[wrap(head + count)] = std::move(value);
        ++count;
    }

    /** Remove from the head. The queue must not be empty. */
    T
    popFront()
    {
        panic_if(empty(), "popFront on empty CircularQueue");
        T value = std::move(buf[head]);
        head = wrap(head + 1);
        --count;
        return value;
    }

    /** Remove from the tail (used when squashing young entries). */
    T
    popBack()
    {
        panic_if(empty(), "popBack on empty CircularQueue");
        --count;
        return std::move(buf[wrap(head + count)]);
    }

    /** Element at distance @p idx from the head (0 = oldest). */
    T &
    at(size_t idx)
    {
        panic_if(idx >= count, "CircularQueue index %zu out of range %zu",
                 idx, count);
        return buf[wrap(head + idx)];
    }

    const T &
    at(size_t idx) const
    {
        panic_if(idx >= count, "CircularQueue index %zu out of range %zu",
                 idx, count);
        return buf[wrap(head + idx)];
    }

    T &front() { return at(0); }
    const T &front() const { return at(0); }
    T &back() { return at(count - 1); }
    const T &back() const { return at(count - 1); }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

  private:
    /** Ring-wrap a position. Every caller's offset is < 2*cap (idx and
     *  count never exceed cap), so one conditional subtract replaces
     *  the integer division a `% cap` would cost on these hot paths
     *  (capacities are runtime values, not powers of two). */
    size_t
    wrap(size_t pos) const
    {
        return pos >= cap ? pos - cap : pos;
    }

    std::vector<T> buf;
    size_t cap;
    size_t head = 0;
    size_t count = 0;
};

/**
 * A latency- and bandwidth-constrained pipe between two pipeline stages.
 *
 * The producer pushes up to `bandwidth` items per cycle; items become
 * visible to the consumer `latency` cycles later. This models in-order
 * front-end stage separation (e.g. the 15-cycle front end) without
 * simulating each intermediate stage individually.
 */
template <typename T>
class DelayedPipe
{
  public:
    /**
     * @param latency_ cycles between push and earliest pop (>= 1)
     * @param bandwidth_ max pushes per cycle (0 = unlimited)
     * @param capacity_ max in-flight items (0 = unlimited)
     */
    DelayedPipe(Cycle latency_, size_t bandwidth_, size_t capacity_ = 0)
        : latency(latency_), bandwidth(bandwidth_), capacity(capacity_)
    {
        panic_if(latency == 0, "DelayedPipe latency must be >= 1");
    }

    /** Can the producer push another item during cycle @p now? */
    bool
    canPush(Cycle now) const
    {
        if (capacity != 0 && items.size() >= capacity)
            return false;
        if (bandwidth == 0)
            return true;
        return pushedThisCycle(now) < bandwidth;
    }

    void
    push(Cycle now, T value)
    {
        panic_if(!canPush(now), "push on full/saturated DelayedPipe");
        if (now != lastPushCycle) {
            lastPushCycle = now;
            pushedCount = 0;
        }
        ++pushedCount;
        items.emplace_back(now + latency, std::move(value));
    }

    /** Is an item ready for the consumer at cycle @p now? */
    bool
    canPop(Cycle now) const
    {
        return !items.empty() && items.front().first <= now;
    }

    T
    pop(Cycle now)
    {
        panic_if(!canPop(now), "pop on not-ready DelayedPipe");
        T value = std::move(items.front().second);
        items.pop_front();
        return value;
    }

    /** Peek the oldest in-flight item regardless of readiness. */
    const T &front() const { return items.front().second; }

    bool empty() const { return items.empty(); }
    size_t size() const { return items.size(); }

    /** Drop every in-flight item (pipeline squash). */
    void clear() { items.clear(); }

    /**
     * Drop in-flight items for which @p pred returns true (partial squash
     * of items younger than a given sequence number).
     */
    template <typename Pred>
    void
    removeIf(Pred pred)
    {
        std::erase_if(items, [&](const auto &p) { return pred(p.second); });
    }

  private:
    size_t
    pushedThisCycle(Cycle now) const
    {
        return now == lastPushCycle ? pushedCount : 0;
    }

    Cycle latency;
    size_t bandwidth;
    size_t capacity;
    std::deque<std::pair<Cycle, T>> items;
    Cycle lastPushCycle = invalidCycle;
    size_t pushedCount = 0;
};

/**
 * A timing wheel: schedule items for a future cycle, drain them in
 * cycle order. Replaces a `std::map<Cycle, std::vector<T>>` keyed by
 * ready-cycle on the completion path — same drain order (ascending
 * cycle; insertion order within a cycle), but scheduling within the
 * `Horizon`-cycle window is an array index plus a push into a
 * slot vector that keeps its capacity across reuse, instead of a
 * red-black-tree insert (node allocation + rebalancing) per event and
 * a node extraction per drained cycle.
 *
 * Items further out than `Horizon` cycles overflow into a std::map —
 * correct for any distance, just not fast. Pipeline latencies are far
 * below the horizon (longest FU ~25 cycles, a DRAM round trip ~110),
 * so the overflow path costs one `empty()` branch in practice. Should
 * an overflow entry's cycle acquire later same-cycle schedules after
 * the window has slid over it, those are appended to the overflow
 * entry too, preserving within-cycle insertion order (overflow drains
 * before the wheel slot for the same cycle).
 *
 * drainUpTo() catches up after forward time jumps (a functional-warm
 * pass advancing the clock by a whole interval) with work bounded by
 * `Horizon` slots plus the ready overflow entries, not by the size of
 * the jump. Scheduling into already-drained time panics: the map this
 * replaces would have drained such an entry on the next tick, so
 * silently parking it for a full wheel revolution would be a
 * behavioral change — fail fast instead.
 */
template <typename T, std::size_t Horizon = 1024>
class TimingWheel
{
    static_assert((Horizon & (Horizon - 1)) == 0,
                  "TimingWheel horizon must be a power of two");

  public:
    /** Schedule @p value to drain at cycle @p when (>= drain cursor). */
    void
    schedule(Cycle when, T value)
    {
        panic_if(when < cursor,
                 "TimingWheel schedule at %llu behind drain cursor %llu",
                 (unsigned long long)when, (unsigned long long)cursor);
        if (when >= cursor + Horizon
            || (!overflow.empty() && overflow.count(when))) {
            overflow[when].push_back(std::move(value));
        } else {
            slots[when & (Horizon - 1)].push_back(std::move(value));
        }
        ++count;
    }

    /**
     * Drain every item scheduled at cycles <= @p now, in ascending
     * cycle order (insertion order within a cycle), invoking
     * `fn(cycle, item)` for each. @p fn must not schedule.
     */
    template <typename Fn>
    void
    drainUpTo(Cycle now, Fn &&fn)
    {
        if (cursor > now)
            return;
        if (count == 0) {
            // Nothing scheduled anywhere: just advance the cursor.
            cursor = now + 1;
            return;
        }
        // Wheel slots can only hold cycles in [cursor, cursor+Horizon),
        // so a catch-up longer than the horizon still visits each slot
        // at most once.
        const Cycle last =
            now - cursor >= Horizon ? cursor + Horizon - 1 : now;
        for (Cycle c = cursor; c <= last; ++c) {
            std::vector<T> &slot = slots[c & (Horizon - 1)];
            cursor = c + 1;
            if (slot.empty())
                continue;
            drainOverflowUpTo(c, fn);  // keys <= c precede slot c
            for (T &v : slot)
                fn(c, v);
            count -= slot.size();
            slot.clear();  // keeps capacity for the slot's next lap
        }
        cursor = now + 1;
        drainOverflowUpTo(now, fn);
    }

    bool empty() const { return count == 0; }
    size_t size() const { return count; }

    /** Cycles < the cursor have been drained. */
    Cycle drainCursor() const { return cursor; }

    /** Drop every scheduled item without invoking anything. */
    void
    clear()
    {
        for (std::vector<T> &slot : slots)
            slot.clear();
        overflow.clear();
        count = 0;
    }

  private:
    template <typename Fn>
    void
    drainOverflowUpTo(Cycle c, Fn &&fn)
    {
        while (!overflow.empty() && overflow.begin()->first <= c) {
            auto node = overflow.extract(overflow.begin());
            for (T &v : node.mapped())
                fn(node.key(), v);
            count -= node.mapped().size();
        }
    }

    std::vector<T> slots[Horizon];
    std::map<Cycle, std::vector<T>> overflow;
    Cycle cursor = 0;
    size_t count = 0;
};

} // namespace eole

#endif // EOLE_COMMON_QUEUES_HH
