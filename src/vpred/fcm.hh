/**
 * @file
 * Finite Context Method value predictor (Sazeides & Smith, MICRO 1997).
 *
 * Two-level scheme: a per-PC value history table (first level) holds a
 * hash of the last N committed values of the instruction; a shared
 * value prediction table (second level) maps that context hash to the
 * next value. Included as the classic context-based baseline in the
 * predictor-family ablation (the EOLE paper cites FCM as the canonical
 * context-based predictor; VTAGE supersedes it).
 *
 * The first level is updated at commit only, so tight loops with many
 * in-flight instances see a stale context; this is the known weakness
 * of FCM-style predictors that VTAGE avoids (§2).
 */

#ifndef EOLE_VPRED_FCM_HH
#define EOLE_VPRED_FCM_HH

#include <vector>

#include "common/random.hh"
#include "isa/snapshot.hh"
#include "vpred/fpc.hh"
#include "vpred/value_predictor.hh"

namespace eole {

class FcmPredictor : public ValuePredictor
{
  public:
    FcmPredictor(const VpConfig &config, std::uint64_t seed);

    VpLookup predict(Addr pc) override;
    void commit(Addr pc, RegVal actual, const VpLookup &lookup) override;
    const char *name() const override { return "FCM"; }

    void snapshotState(std::ostream &os) const override;
    void restoreState(std::istream &is) override;

  private:
    struct HistEntry
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint32_t ctx = 0;
    };

    struct ValueEntry
    {
        RegVal value = 0;
        std::uint8_t conf = 0;
    };

    std::uint32_t histIndex(Addr pc) const;
    std::uint32_t foldValue(RegVal v) const;

    std::vector<HistEntry> histTable;
    std::vector<ValueEntry> valueTable;
    std::uint32_t histMask;
    std::uint32_t valueMask;
    Fpc fpc;
    Rng rng;
};

} // namespace eole

#endif // EOLE_VPRED_FCM_HH
