/**
 * @file
 * Workload registry: name lookup over the 19 SPEC-like kernels.
 */

#include "workloads/workload.hh"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "trace/trace_file.hh"
#include "workloads/torture_gen.hh"

namespace eole {
namespace workloads {

namespace {

struct Entry
{
    const char *name;
    Workload (*build)();
};

// Traces bound from disk (bindTraceFile), keyed by the canonical name
// embedded in the file. Process-wide so that sweep/sample workers
// resolving workload names on any thread see the same binding.
std::mutex boundMutex;
std::map<std::string, std::shared_ptr<const FrozenTrace>> boundTraces;

std::shared_ptr<const FrozenTrace>
findBoundTrace(const std::string &name)
{
    std::lock_guard<std::mutex> lock(boundMutex);
    auto it = boundTraces.find(name);
    return it == boundTraces.end() ? nullptr : it->second;
}

// Table 3 order (CPU2000 first, then CPU2006).
const Entry registry[] = {
    {"164.gzip", makeGzip},
    {"168.wupwise", makeWupwise},
    {"173.applu", makeApplu},
    {"175.vpr", makeVpr},
    {"179.art", makeArt},
    {"186.crafty", makeCrafty},
    {"197.parser", makeParser},
    {"255.vortex", makeVortex},
    {"401.bzip2", makeBzip2},
    {"403.gcc", makeGcc},
    {"416.gamess", makeGamess},
    {"429.mcf", makeMcf},
    {"433.milc", makeMilc},
    {"444.namd", makeNamd},
    {"445.gobmk", makeGobmk},
    {"456.hmmer", makeHmmer},
    {"458.sjeng", makeSjeng},
    {"464.h264ref", makeH264ref},
    {"470.lbm", makeLbm},
};

} // namespace

const std::vector<std::string> &
allNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &e : registry)
            v.emplace_back(e.name);
        return v;
    }();
    return names;
}

Workload
build(const std::string &name)
{
    // File-bound traces shadow same-named generators: a plan that says
    // file:foo.trace must replay those exact bytes even if a generator
    // also answers to the embedded name.
    if (auto frozen = findBoundTrace(name)) {
        Workload w;
        w.name = name;
        w.isFp = frozen->isFp;
        w.frozen = std::move(frozen);
        w.fileBacked = true;
        return w;
    }
    for (const auto &e : registry) {
        if (name == e.name)
            return e.build();
    }
    // "torture:<seed>[:<iters>]": a seeded random program from the
    // differential torture generator (workloads/torture_gen.hh), with
    // an optional outer-loop trip-count to stretch the dynamic length
    // (sampled plans need tens of thousands of µ-ops). Not part of
    // allNames() — these are test/harness workloads, addressable
    // anywhere a registry name is accepted.
    if (name.rfind("torture:", 0) == 0) {
        const std::string spec = name.substr(8);
        // strtoull silently wraps negative input to huge values;
        // "torture:-1" must be a diagnostic, not a ~2^64-iteration
        // program (same guard as tryParseSampleSpec).
        fatal_if(spec.find_first_of("+-") != std::string::npos,
                 "bad torture workload spec in '%s' "
                 "(want torture:<seed>[:<iters>])", name.c_str());
        char *end = nullptr;
        const std::uint64_t seed = std::strtoull(spec.c_str(), &end, 0);
        std::uint64_t iters = 0;
        if (end != spec.c_str() && *end == ':')
            iters = std::strtoull(end + 1, &end, 0);
        fatal_if(spec.empty() || end != spec.c_str() + spec.size(),
                 "bad torture workload spec in '%s' "
                 "(want torture:<seed>[:<iters>])", name.c_str());
        Workload w;
        w.name = name;
        w.memBytes = tortureMemBytes;
        w.program = generateTortureProgram(seed, iters);
        return w;
    }
    fatal("unknown workload '%s'", name.c_str());
}

bool
bindTraceFile(const std::string &path, std::string *name_out,
              std::string *err)
{
    auto frozen = loadTraceFile(path, err);
    if (!frozen)
        return false;
    if (name_out)
        *name_out = frozen->name;
    std::lock_guard<std::mutex> lock(boundMutex);
    // Re-binding the same name is fine (idempotent across plan + CLI
    // resolution of the same file); last binding wins.
    boundTraces[frozen->name] = std::move(frozen);
    return true;
}

void
clearBoundTraces()
{
    std::lock_guard<std::mutex> lock(boundMutex);
    boundTraces.clear();
}

std::vector<Workload>
buildAll()
{
    std::vector<Workload> v;
    v.reserve(std::size(registry));
    for (const auto &e : registry)
        v.push_back(e.build());
    return v;
}

} // namespace workloads
} // namespace eole
