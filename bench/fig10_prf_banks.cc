/**
 * Figure 10: EOLE_4_64 with a banked PRF (2/4/8 banks; registers of a
 * dispatch group are allocated round-robin across banks, and rename
 * stalls when the designated bank is empty), normalized to the
 * single-bank EOLE_4_64.
 */
#include "bench_common.hh"

using namespace eole;

int
main()
{
    announce("Fig 10", "PRF banking (allocation imbalance) cost");

    const SimConfig ref = configs::eole(4, 64);  // 1 bank
    const SimConfig b2 = configs::eoleBanked(4, 64, 2);
    const SimConfig b4 = configs::eoleBanked(4, 64, 4);
    const SimConfig b8 = configs::eoleBanked(4, 64, 8);
    const auto &names = workloads::allNames();
    const auto results = runGrid({ref, b2, b4, b8}, names);

    printTable("Speedup over single-bank EOLE_4_64 (Fig 10)", results,
               {b2.name, b4.name, b8.name}, names, "ipc", ref.name);
    printTable("Rename bank stalls (context)", results,
               {b2.name, b4.name, b8.name}, names, "rename_bank_stalls");
    return 0;
}
