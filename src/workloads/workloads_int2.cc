/**
 * @file
 * Integer (SPEC INT analog) workload kernels, part 2:
 * gcc, mcf, gobmk, hmmer, sjeng, h264ref.
 */

#include "workloads/workload.hh"

#include <vector>

#include "common/random.hh"
#include "isa/assembler.hh"
#include "workloads/workload_util.hh"

namespace eole {
namespace workloads {

// ---------------------------------------------------------------------
// 403.gcc -- interpreter-style dispatch: an opcode byte stream drives an
// indirect jump into equal-sized case blocks. Irregular control flow
// (the BTB mispredicts whenever the opcode changes), mixed ALU/memory
// case bodies.
// ---------------------------------------------------------------------
Workload
makeGcc()
{
    constexpr Addr codeBufBase = 0x0;      // 1 MB opcode stream
    constexpr std::int64_t codeMask = 0xfffff;
    constexpr Addr dataBase = 0x100000;    // 64 KB scratch data
    constexpr std::int64_t dataMask = 0xfff8;
    constexpr int caseLen = 8;             // µ-ops per case block

    Assembler a;
    const IntReg i = 1, op = 2, tgt = 3, t = 4, u = 5, acc = 6, cnt = 7;
    const IntReg cstream = 20, dbase = 21, cbase = 22, three = 23;

    Label top = a.newLabel();
    Label join = a.newLabel();
    Label case0 = a.newLabel();

    a.bind(top);
    a.addi(i, i, 1);
    a.andi(i, i, codeMask);
    a.add(t, cstream, i);
    a.ld(op, t, 0, 1);
    // Dispatch: tgt = &case0 + op * caseLen * 4 bytes.
    a.shli(tgt, op, 5);
    a.add(tgt, tgt, cbase);
    a.jr(tgt);

    // Case blocks. Each is exactly caseLen µ-ops (jmp included).
    const std::size_t case0_at = a.here();
    a.bind(case0);                         // constant fold
    a.addi(acc, acc, 1);
    a.addi(cnt, cnt, 1);
    a.nop();
    a.nop();
    a.nop();
    a.nop();
    a.nop();
    a.jmp(join);

    const std::size_t case1_at = a.here(); // bitmask algebra
    a.shli(t, acc, 3);
    a.xor_(acc, acc, t);
    a.andi(acc, acc, 0xffffff);
    a.ori(acc, acc, 0x11);
    a.nop();
    a.nop();
    a.nop();
    a.jmp(join);

    const std::size_t case2_at = a.here(); // scratch load/store
    a.andi(t, acc, dataMask);
    a.add(t, t, dbase);
    a.ld(u, t, 0);
    a.add(acc, acc, u);
    a.st(acc, t, 0);
    a.nop();
    a.nop();
    a.jmp(join);

    const std::size_t case3_at = a.here(); // multiply
    a.mul(t, acc, three);
    a.addi(acc, t, 7);
    a.nop();
    a.nop();
    a.nop();
    a.nop();
    a.nop();
    a.jmp(join);

    a.bind(join);
    a.addi(cnt, cnt, 2);
    a.jmp(top);

    Workload w;
    w.name = "403.gcc";
    w.isFp = false;
    w.memBytes = 0x110000;
    w.program = a.finish();

    // Sanity-check the case-block spacing assumed by the dispatch shift.
    panic_if(case1_at - case0_at != caseLen,
             "gcc case blocks must be %d µ-ops", caseLen);
    panic_if(case2_at - case1_at != caseLen,
             "gcc case blocks must be %d µ-ops", caseLen);
    panic_if(case3_at - case2_at != caseLen,
             "gcc case blocks must be %d µ-ops", caseLen);

    w.init = [=](KernelVM &vm) {
        // Skewed opcode stream with short runs: 55/20/15/10 mix.
        Rng rng(0x4031);
        std::uint8_t cur = 0;
        for (std::size_t n = 0; n <= codeMask; ++n) {
            if (!rng.chance(0.4)) {
                const double r = rng.uniform();
                cur = r < 0.55 ? 0 : r < 0.75 ? 1 : r < 0.90 ? 2 : 3;
            }
            vm.writeMem(codeBufBase + n, 1, cur);
        }
        fillRandomWords(vm, dataBase, 0x2000, 1000, 0x4032);
        vm.setIntReg(cstream.idx, codeBufBase);
        vm.setIntReg(dbase.idx, dataBase);
        vm.setIntReg(three.idx, 3);
        vm.setIntReg(cbase.idx, Program::pcOf(case0_at));
    };
    return w;
}

// ---------------------------------------------------------------------
// 429.mcf -- network-simplex arc scan: two independent pointer chases
// over a 64 MB node pool (DRAM-resident), a data-dependent cost branch.
// Memory bound; very low IPC.
// ---------------------------------------------------------------------
Workload
makeMcf()
{
    constexpr Addr nodeBase = 0x0;
    constexpr std::size_t nodeBytes = 64;
    constexpr std::size_t nodeCount = 0x100000;   // 1M nodes = 64 MB

    Assembler a;
    const IntReg p = 1, q = 2, cp = 3, cq = 4, acc = 5, acc2 = 6;
    const IntReg cnt = 7;
    const IntReg klim = 20;

    Label top = a.newLabel();
    Label cheap = a.newLabel();

    a.bind(top);
    a.ld(p, p, 0);
    a.ld(q, q, 0);
    a.ld(cp, p, 8);
    a.ld(cq, q, 8);
    a.add(acc, acc, cp);
    a.add(acc2, acc2, cq);
    a.blt(cp, klim, cheap);     // ~70% taken (costs below 700 of 1000)
    a.xor_(acc, acc, cq);
    a.bind(cheap);
    a.addi(cnt, cnt, 1);
    a.jmp(top);

    Workload w;
    w.name = "429.mcf";
    w.isFp = false;
    w.memBytes = nodeCount * nodeBytes;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        // Two disjoint random cycles: even nodes and odd nodes.
        std::size_t half = nodeCount / 2;
        {
            // Even-node cycle built over a strided "virtual" pool.
            Rng rng(0x4291);
            std::vector<std::uint32_t> order(half);
            for (std::size_t k = 0; k < half; ++k)
                order[k] = static_cast<std::uint32_t>(2 * k);
            for (std::size_t k = half - 1; k > 0; --k)
                std::swap(order[k], order[rng.below(k + 1)]);
            for (std::size_t k = 0; k < half; ++k) {
                vm.writeMem(nodeBase + Addr(order[k]) * nodeBytes, 8,
                            nodeBase + Addr(order[(k + 1) % half])
                                * nodeBytes);
            }
        }
        {
            Rng rng(0x4292);
            std::vector<std::uint32_t> order(half);
            for (std::size_t k = 0; k < half; ++k)
                order[k] = static_cast<std::uint32_t>(2 * k + 1);
            for (std::size_t k = half - 1; k > 0; --k)
                std::swap(order[k], order[rng.below(k + 1)]);
            for (std::size_t k = 0; k < half; ++k) {
                vm.writeMem(nodeBase + Addr(order[k]) * nodeBytes, 8,
                            nodeBase + Addr(order[(k + 1) % half])
                                * nodeBytes);
            }
        }
        Rng rng(0x4293);
        for (std::size_t n = 0; n < nodeCount; ++n)
            vm.writeMem(nodeBase + n * nodeBytes + 8, 8, rng.below(1000));
        vm.setIntReg(p.idx, nodeBase);
        vm.setIntReg(q.idx, nodeBase + nodeBytes);
        vm.setIntReg(klim.idx, 700);
    };
    return w;
}

// ---------------------------------------------------------------------
// 445.gobmk -- board evaluation with hostile branches: an LCG generates
// effectively random board positions; several data-dependent branches
// per iteration mispredict heavily.
// ---------------------------------------------------------------------
Workload
makeGobmk()
{
    constexpr Addr boardBase = 0x0;        // 64 KB board bytes
    constexpr std::int64_t boardMask = 0xffff;

    Assembler a;
    const IntReg seed = 1, idx = 2, b = 3, n1 = 4, n2 = 5, t = 6;
    const IntReg c0 = 7, c1 = 8, c2 = 9, acc = 10;
    const IntReg pos = 11, row = 12, col = 13, visits = 14, rowsum = 15;
    const IntReg bbase = 20, lcgMul = 21, two = 22;

    Label top = a.newLabel();
    Label not_empty = a.newLabel();
    Label strong = a.newLabel();
    Label done = a.newLabel();
    Label same_row = a.newLabel();

    a.bind(top);
    // Sequential board-scan bookkeeping (predictable: the part of the
    // evaluator that EOLE offloads even when the branches are hostile).
    a.addi(pos, pos, 1);
    a.andi(pos, pos, boardMask);
    a.shri(row, pos, 8);
    a.andi(col, pos, 0xff);
    a.addi(visits, visits, 1);
    // Row-boundary branch: taken 1/256 (very high confidence).
    a.beq(col, IntReg(0), same_row);
    a.add(rowsum, rowsum, row);
    a.bind(same_row);
    // LCG: effectively random inspection point near the scan.
    a.mul(seed, seed, lcgMul);
    a.addi(seed, seed, 1442695040888963407LL);
    a.shri(idx, seed, 33);
    a.andi(idx, idx, boardMask);
    a.add(t, bbase, idx);
    a.ld(b, t, 0, 1);
    // Branch 1: empty point? (~25% of board bytes are 0).
    a.bne(b, IntReg(0), not_empty);
    a.addi(c0, c0, 1);
    a.jmp(done);
    a.bind(not_empty);
    // Neighbor inspection.
    a.andi(t, idx, 0xfffe);
    a.add(t, bbase, t);
    a.ld(n1, t, 0, 1);
    a.ld(n2, t, 1, 1);
    a.add(acc, n1, n2);
    // Branch 2: liberties comparison, close to 50/50.
    a.blt(b, two, strong);
    a.add(c1, c1, acc);
    a.jmp(done);
    a.bind(strong);
    a.xor_(c2, c2, acc);
    a.addi(c2, c2, 1);
    a.bind(done);
    a.addi(acc, acc, 1);
    a.jmp(top);

    Workload w;
    w.name = "445.gobmk";
    w.isFp = false;
    w.memBytes = 0x10800;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        // Board byte values 0..3 uniform.
        Rng rng(0x4451);
        for (std::size_t n = 0; n <= boardMask + 1; ++n)
            vm.writeMem(boardBase + n, 1, rng.below(4));
        vm.setIntReg(seed.idx, 0x2545f4914f6cdd1dULL);
        vm.setIntReg(bbase.idx, boardBase);
        vm.setIntReg(lcgMul.idx, 6364136223846793005LL);
        vm.setIntReg(two.idx, 2);
    };
    return w;
}

// ---------------------------------------------------------------------
// 456.hmmer -- Viterbi dynamic-programming inner loop: L1-resident DP
// rows plus a streaming L2 score array; branchless max() chains on
// random data. Very high ILP (iterations independent), essentially no
// value predictability, one predictable back edge.
// ---------------------------------------------------------------------
Workload
makeHmmer()
{
    // DP rows interleaved per cell: {M, I, D, pad} x 32 B, 512 cells
    // (16 KB, L1-resident). Unrolled 3x so the index bookkeeping is a
    // small fraction of the (unpredictable) score arithmetic.
    constexpr Addr rowBase = 0x0;
    constexpr std::int64_t rowByteMask = 0x3fff;   // 16 KB
    constexpr Addr tscBase = 0x4200;               // 2 MB scores
    constexpr std::int64_t tscByteMask = 0x1ffff0;

    Assembler a;
    const IntReg jb = 1, ra = 2, m = 3, ii = 4, dd = 5, t1 = 6, t2 = 7;
    const IntReg va = 8, vb = 9, vc = 10, d = 11, s = 12, u = 13, mx = 14;
    const IntReg k1 = 15, ta = 16;
    const IntReg rb = 20, tb = 21;

    Label top = a.newLabel();

    // Branchless mx = max(va, vb): d = va-vb; s = d>>63; mx = va - (d&s).
    auto emit_max = [&](IntReg out, IntReg x, IntReg y) {
        a.sub(d, x, y);
        a.sari(s, d, 63);
        a.and_(u, d, s);
        a.sub(out, x, u);
    };

    a.bind(top);
    a.addi(jb, jb, 96);
    a.andi(jb, jb, rowByteMask);
    a.add(ra, rb, jb);
    a.addi(k1, k1, 48);
    a.andi(k1, k1, tscByteMask);
    a.add(ta, tb, k1);
    for (int k = 0; k < 3; ++k) {
        const std::int64_t row = k * 32;
        const std::int64_t tsc = k * 16;
        // DP cell loads (L1 resident) + streaming scores (through L2).
        a.ld(m, ra, row);
        a.ld(ii, ra, row + 8);
        a.ld(dd, ra, row + 16);
        a.ld(t1, ta, tsc);
        a.ld(t2, ta, tsc + 8);
        // Match-state candidates and max reduction.
        a.add(va, m, t1);
        a.add(vb, ii, t2);
        a.add(vc, dd, t1);
        emit_max(mx, va, vb);
        emit_max(mx, mx, vc);
        a.st(mx, ra, row);
        // Insert-state update reusing the loaded values.
        a.add(va, m, t2);
        a.add(vb, ii, t1);
        emit_max(mx, va, vb);
        a.st(mx, ra, row + 8);
    }
    a.jmp(top);

    Workload w;
    w.name = "456.hmmer";
    w.isFp = false;
    w.memBytes = 0x210000;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        fillRandomWords(vm, rowBase, (rowByteMask + 1 + 96) / 8, 10000,
                        0x4561);
        fillRandomWords(vm, tscBase, (tscByteMask + 64) / 8, 10000,
                        0x4564);
        vm.setIntReg(rb.idx, rowBase);
        vm.setIntReg(tb.idx, tscBase);
    };
    return w;
}

// ---------------------------------------------------------------------
// 458.sjeng -- game-tree search mix: bitboard move generation (immediate
// ALU chains), a transposition-table probe, evaluation branches of mixed
// predictability, a periodic helper call.
// ---------------------------------------------------------------------
Workload
makeSjeng()
{
    constexpr Addr ttBase = 0x0;           // 16K-entry TT (128 KB)
    constexpr std::int64_t ttMask = 0x3fff;

    Assembler a;
    const IntReg bb = 1, mv = 2, mv2 = 3, seed = 4, hkey = 5, hidx = 6;
    const IntReg e = 7, t = 8, cnt = 9, score = 10, k = 11;
    const IntReg tbase = 20, lcgMul = 21, c11 = 22;

    Label top = a.newLabel();
    Label tt_hit = a.newLabel();
    Label tt_done = a.newLabel();
    Label eval_lo = a.newLabel();
    Label eval_done = a.newLabel();
    Label skip_call = a.newLabel();
    Label helper = a.newLabel();

    a.bind(top);
    // Move generation: immediate-ALU cascade on the bitboard.
    a.shli(mv, bb, 7);
    a.andi(mv, mv, 0x7f7f7f7f);
    a.shri(mv2, bb, 9);
    a.andi(mv2, mv2, 0x3f3f3f3f);
    a.or_(bb, mv, mv2);
    // Mix in LCG randomness so the board does not cycle.
    a.mul(seed, seed, lcgMul);
    a.addi(seed, seed, 12345);
    a.shri(t, seed, 40);
    a.xor_(bb, bb, t);
    // Transposition-table probe.
    a.xor_(hkey, bb, seed);
    a.andi(hidx, hkey, ttMask);
    a.shli(t, hidx, 3);
    a.add(t, t, tbase);
    a.ld(e, t, 0);
    a.beq(e, hkey, tt_hit);
    a.st(hkey, t, 0);
    a.jmp(tt_done);
    a.bind(tt_hit);
    a.addi(score, score, 50);
    a.bind(tt_done);
    // Evaluation branch: ~34% taken on uniform 5-bit values.
    a.andi(t, bb, 31);
    a.blt(t, c11, eval_lo);
    a.addi(score, score, 1);
    a.jmp(eval_done);
    a.bind(eval_lo);
    a.addi(score, score, 2);
    a.bind(eval_done);
    // Every 4th iteration: helper call.
    a.addi(k, k, 1);
    a.andi(t, k, 3);
    a.bne(t, IntReg(0), skip_call);
    a.call(helper);
    a.bind(skip_call);
    a.addi(cnt, cnt, 1);
    a.jmp(top);

    a.bind(helper);
    a.shri(t, score, 2);
    a.add(score, score, t);
    a.andi(score, score, 0xffffff);
    a.ret();

    Workload w;
    w.name = "458.sjeng";
    w.isFp = false;
    w.memBytes = 0x20800;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        fillRandomWords(vm, ttBase, 0x4000, ~0ULL, 0x4581);
        vm.setIntReg(bb.idx, 0x0f0f00ff00f0f0f0ULL);
        vm.setIntReg(seed.idx, 0x853c49e6748fea9bULL);
        vm.setIntReg(tbase.idx, ttBase);
        vm.setIntReg(lcgMul.idx, 6364136223846793005LL);
        vm.setIntReg(c11.idx, 11);
    };
    return w;
}

// ---------------------------------------------------------------------
// 464.h264ref -- sum-of-absolute-differences motion search: a constant
// 16-byte current block (perfectly value-predictable loads) against a
// piecewise-constant reference window (runs of 32 equal bytes, so
// last-value/stride prediction covers ~97% of reference loads). The
// SAD chains become Early-Executable once their operands are predicted.
// ---------------------------------------------------------------------
Workload
makeH264ref()
{
    constexpr Addr curBase = 0x0;          // 16-byte current block
    constexpr Addr refBase = 0x40;         // 1 MB reference window
    constexpr std::int64_t refMask = 0xfffff;

    Assembler a;
    const IntReg pos = 1, rp = 2, sad = 3, best = 4, cnt = 5;
    const IntReg c0 = 6, r0 = 7, dv = 8, sm = 9, ab = 10, step = 11;
    const IntReg cb = 20, rb = 21;

    Label top = a.newLabel();
    Label no_update = a.newLabel();

    a.bind(top);
    a.add(rp, rb, pos);
    a.movi(sad, 0);
    for (int kpix = 0; kpix < 4; ++kpix) {
        a.ld(c0, cb, kpix, 1);       // constant block: value-predictable
        a.ld(r0, rp, kpix, 1);       // piecewise-constant reference
        a.sub(dv, c0, r0);
        a.sari(sm, dv, 63);
        a.xor_(ab, dv, sm);
        a.sub(ab, ab, sm);
        a.add(sad, sad, ab);
    }
    // Best-SAD update: rarely taken.
    a.bge(sad, best, no_update);
    a.addi(best, sad, 0);
    a.bind(no_update);
    // Search step depends on the last pixel's sign mask: the scan
    // position chains through part of the SAD computation (serial
    // without VP; within a flat reference run the mask -- and hence
    // the stride -- is constant, so value prediction breaks the
    // recurrence: the paper's h264 win, throttled to a mild factor).
    a.andi(step, sm, 1);
    a.addi(step, step, 1);
    a.add(pos, pos, step);
    a.andi(pos, pos, refMask);
    a.addi(cnt, cnt, 1);
    a.jmp(top);

    Workload w;
    w.name = "464.h264ref";
    w.isFp = false;
    w.memBytes = 0x100100;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        Rng rng(0x4641);
        for (int n = 0; n < 16; ++n)
            vm.writeMem(curBase + n, 1, 100 + rng.below(56));
        // Reference: runs of 2048 identical bytes (flat background
        // regions), long enough for FPC confidence to saturate on the
        // reference loads and rare enough that run-boundary squashes
        // stay cheap.
        std::uint8_t cur = 128;
        for (std::size_t n = 0; n <= refMask + 4; ++n) {
            if (n % 2048 == 0)
                cur = static_cast<std::uint8_t>(96 + rng.below(64));
            vm.writeMem(refBase + n, 1, cur);
        }
        vm.setIntReg(cb.idx, curBase);
        vm.setIntReg(rb.idx, refBase);
        vm.setIntReg(best.idx, 1);     // keeps the update branch rare
    };
    return w;
}

} // namespace workloads
} // namespace eole
