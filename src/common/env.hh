/**
 * @file
 * Environment-variable parsing helpers shared by the run-length knobs
 * (EOLE_WARMUP / EOLE_INSTS / EOLE_THREADS), the trace-cache budget
 * and the torture harness.
 */

#ifndef EOLE_COMMON_ENV_HH
#define EOLE_COMMON_ENV_HH

#include <cstdint>
#include <cstdlib>

namespace eole {

/** @p name parsed as u64 (base auto-detected), or @p fallback when
 *  unset/empty. */
inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    return std::strtoull(v, nullptr, 0);
}

} // namespace eole

#endif // EOLE_COMMON_ENV_HH
