/**
 * @file
 * Tests for the 19 SPEC-like workload kernels: registry integrity,
 * deterministic trace generation, bounded memory behaviour and the
 * per-benchmark instruction-mix traits the reproduction relies on
 * (DESIGN.md §5).
 */

#include <gtest/gtest.h>

#include <map>

#include "workloads/workload.hh"

using namespace eole;

namespace {

struct Mix
{
    double branches = 0;
    double takenRate = 0;
    double loads = 0;
    double stores = 0;
    double singleCycleAlu = 0;
    double fp = 0;
};

Mix
measureMix(const Workload &w, std::uint64_t n)
{
    TraceSource ts = w.makeTrace();
    std::uint64_t br = 0, taken = 0, ld = 0, st = 0, alu = 0, fp = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        EXPECT_TRUE(ts.hasNext()) << w.name << " halted early";
        const TraceUop &u = ts.fetch();
        br += u.isBranch();
        taken += u.isBranch() && u.taken;
        ld += u.isLoad();
        st += u.isStore();
        alu += isSingleCycleAlu(u.opc);
        const OpClass c = u.opClass();
        fp += c == OpClass::FpAlu || c == OpClass::FpMul
            || c == OpClass::FpDiv;
        ts.retireUpTo(ts.nextSeq() - 1);
    }
    Mix m;
    m.branches = double(br) / n;
    m.takenRate = br ? double(taken) / br : 0;
    m.loads = double(ld) / n;
    m.stores = double(st) / n;
    m.singleCycleAlu = double(alu) / n;
    m.fp = double(fp) / n;
    return m;
}

} // namespace

TEST(WorkloadRegistry, NineteenBenchmarksInTable3Order)
{
    const auto &names = workloads::allNames();
    ASSERT_EQ(names.size(), 19u);
    EXPECT_EQ(names.front(), "164.gzip");
    EXPECT_EQ(names.back(), "470.lbm");
    // 12 INT + 7 FP, as in Table 3.
    int fp = 0;
    for (const auto &n : names)
        fp += workloads::build(n).isFp;
    EXPECT_EQ(fp, 7);
}

TEST(WorkloadRegistry, UnknownNameDies)
{
    EXPECT_DEATH((void)workloads::build("999.nonsense"), "unknown");
}

TEST(WorkloadRegistry, TracesAreDeterministic)
{
    for (const auto &name : {"164.gzip", "433.milc", "445.gobmk"}) {
        Workload w = workloads::build(name);
        TraceSource a = w.makeTrace();
        TraceSource b = w.makeTrace();
        for (int i = 0; i < 5000; ++i) {
            const TraceUop &ua = a.fetch();
            const TraceUop &ub = b.fetch();
            ASSERT_EQ(ua.pc, ub.pc) << name;
            ASSERT_EQ(ua.result, ub.result) << name;
            a.retireUpTo(a.nextSeq() - 1);
            b.retireUpTo(b.nextSeq() - 1);
        }
    }
}

class WorkloadTraits : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadTraits, RunsLongAndStaysInBounds)
{
    // 200K µ-ops without a VM bounds panic and without halting; this
    // exercises every kernel's wrap-around masks.
    Workload w = workloads::build(GetParam());
    const Mix m = measureMix(w, 200000);
    // Universal sanity: every kernel has control flow and some ALU.
    EXPECT_GT(m.branches, 0.005);
    EXPECT_LT(m.branches, 0.5);
    EXPECT_GT(m.singleCycleAlu, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    All19, WorkloadTraits,
    ::testing::ValuesIn(workloads::allNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string s = info.param;
        for (char &c : s) {
            if (c == '.')
                c = '_';
        }
        return s;
    });

TEST(WorkloadTraits, FpSuiteActuallyUsesFp)
{
    for (const auto &name : workloads::allNames()) {
        Workload w = workloads::build(name);
        const Mix m = measureMix(w, 50000);
        if (w.isFp)
            EXPECT_GT(m.fp, 0.05) << name;
        else
            EXPECT_LT(m.fp, 0.01) << name;
    }
}

TEST(WorkloadTraits, MemoryBoundKernelsLoadHeavily)
{
    for (const auto &name : {"429.mcf", "470.lbm", "433.milc"}) {
        const Mix m = measureMix(workloads::build(name), 50000);
        EXPECT_GT(m.loads, 0.15) << name;
    }
}

TEST(WorkloadTraits, BranchHostileKernelsHaveManyBranches)
{
    const Mix gobmk = measureMix(workloads::build("445.gobmk"), 50000);
    const Mix milc = measureMix(workloads::build("433.milc"), 50000);
    EXPECT_GT(gobmk.branches, 0.10);
    EXPECT_LT(gobmk.takenRate, 0.9);  // mixed directions
    EXPECT_LT(milc.branches, 0.05);   // unrolled streaming code
}

TEST(WorkloadTraits, CallRetPairsBalance)
{
    // vortex is the call/ret-heavy kernel: calls and rets must pair up.
    Workload w = workloads::build("255.vortex");
    TraceSource ts = w.makeTrace();
    std::int64_t depth = 0;
    std::int64_t max_depth = 0;
    for (int i = 0; i < 100000; ++i) {
        const TraceUop &u = ts.fetch();
        if (u.isCall())
            ++depth;
        if (u.isRet())
            --depth;
        max_depth = std::max(max_depth, depth);
        ASSERT_GE(depth, 0);
        ASSERT_LE(depth, 8);
        ts.retireUpTo(ts.nextSeq() - 1);
    }
    EXPECT_GE(max_depth, 1);
}

TEST(WorkloadTraits, MicroWorkloadsHaveDocumentedShapes)
{
    const Mix dep = measureMix(workloads::micro::depChain(), 20000);
    EXPECT_GT(dep.singleCycleAlu, 0.9);
    const Mix strided = measureMix(workloads::micro::stridedLoads(),
                                   20000);
    EXPECT_GT(strided.loads, 0.15);
    const Mix fwd = measureMix(workloads::micro::storeLoadForward(),
                               20000);
    EXPECT_GT(fwd.stores, 0.15);
    EXPECT_GT(fwd.loads, 0.15);
    const Mix toggle = measureMix(workloads::micro::togglingBranch(),
                                  20000);
    EXPECT_GT(toggle.branches, 0.2);
}

TEST(WorkloadTraits, StridedLoadValuesAreStrided)
{
    // The value stream the VP tests rely on: A[i] = 3 * index.
    Workload w = workloads::micro::stridedLoads();
    TraceSource ts = w.makeTrace();
    RegVal prev = 0;
    bool have_prev = false;
    int checked = 0;
    for (int i = 0; i < 5000 && checked < 500; ++i) {
        const TraceUop &u = ts.fetch();
        if (u.isLoad()) {
            if (have_prev && u.result > prev) {
                EXPECT_EQ(u.result - prev, 3u);
                ++checked;
            }
            prev = u.result;
            have_prev = true;
        }
        ts.retireUpTo(ts.nextSeq() - 1);
    }
    EXPECT_GT(checked, 100);
}
