/**
 * @file
 * Integer (SPEC INT analog) workload kernels, part 1:
 * gzip, vpr, crafty, parser, vortex, bzip2.
 *
 * Each kernel reproduces the microarchitectural traits the paper's
 * evaluation exposes for the corresponding benchmark (value
 * predictability, branch behaviour, footprint, ILP). Every kernel is an
 * infinite loop; the trace source stops it after the requested µ-op
 * budget. Registers r20..r30 hold loop-invariant bases/constants set up
 * by the init hook; r1..r19 are kernel-local temporaries.
 */

#include "workloads/workload.hh"

#include "common/random.hh"
#include "isa/assembler.hh"
#include "workloads/workload_util.hh"

namespace eole {
namespace workloads {

// ---------------------------------------------------------------------
// 164.gzip -- LZ77-style hashing: rolling hash over a byte window, hash
// table probe + update, data-dependent match check. Moderate branch
// predictability; pos/index chains are stride-predictable.
// ---------------------------------------------------------------------
Workload
makeGzip()
{
    constexpr Addr winBase = 0x0;          // 256 KB byte window
    constexpr std::int64_t winMask = 0x3ffff;
    constexpr Addr hashBase = 0x100000;    // 64K-entry hash table
    constexpr std::int64_t hashMask = 0xffff;

    Assembler a;
    const IntReg pos = 1, b0 = 2, b1 = 3, b2 = 4, h = 5, t1 = 6, t2 = 7;
    const IntReg haddr = 8, cand = 9, diff = 10, cnt = 11, m0 = 12, m1 = 13;
    const IntReg wbase = 20, hbase = 21;

    Label top = a.newLabel();
    Label no_match = a.newLabel();

    a.bind(top);
    // pos = (pos + 1) & winMask : stride-predictable self-recurrence.
    a.addi(pos, pos, 1);
    a.andi(pos, pos, winMask);
    a.add(t1, wbase, pos);
    a.ld(b0, t1, 0, 1);
    a.ld(b1, t1, 1, 1);
    a.ld(b2, t1, 2, 1);
    // Rolling hash from the three window bytes.
    a.shli(h, b0, 10);
    a.shli(t2, b1, 5);
    a.xor_(h, h, t2);
    a.xor_(h, h, b2);
    a.andi(h, h, hashMask);
    // Probe and update the hash chain head.
    a.shli(haddr, h, 3);
    a.add(haddr, haddr, hbase);
    a.ld(cand, haddr, 0);
    a.st(pos, haddr, 0);
    // Data-dependent match test (candidate distance alignment).
    a.sub(diff, pos, cand);
    a.andi(t1, diff, 7);
    a.bne(t1, IntReg(0), no_match);
    // "Match": compare two window dwords (taken ~1/8 of the time).
    a.andi(t2, cand, winMask);
    a.add(t2, wbase, t2);
    a.ld(m0, t2, 0, 4);
    a.add(t1, wbase, pos);
    a.ld(m1, t1, 0, 4);
    a.xor_(m0, m0, m1);
    a.add(cnt, cnt, m0);
    a.bind(no_match);
    a.addi(cnt, cnt, 1);
    a.jmp(top);

    Workload w;
    w.name = "164.gzip";
    w.isFp = false;
    w.memBytes = 0x180000;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        fillRandomBytes(vm, winBase, 0x40000 + 8, 0x6421);
        fillRandomWords(vm, hashBase, 0x10000, 0x40000, 0x6422);
        vm.setIntReg(wbase.idx, winBase);
        vm.setIntReg(hbase.idx, hashBase);
    };
    return w;
}

// ---------------------------------------------------------------------
// 175.vpr -- placement cost evaluation: paired array loads, absolute
// difference chains, threshold branch (~80% one way), occasional
// scaled-index store. Exercises the IntMul pipes.
// ---------------------------------------------------------------------
Workload
makeVpr()
{
    constexpr Addr aBase = 0x0;            // 512 KB of 64-bit values
    constexpr Addr bBase = 0x80000;
    constexpr std::int64_t mask = 0xffff;  // 64K entries

    Assembler a;
    const IntReg i = 1, av = 2, bv = 3, d = 4, m = 5, absd = 6, cost = 7;
    const IntReg i2 = 8, t = 9, u = 10;
    const IntReg abase = 20, bbase = 21, thresh = 22, five = 23;

    Label top = a.newLabel();
    Label cheap = a.newLabel();

    a.bind(top);
    a.addi(i, i, 1);
    a.andi(i, i, mask);
    a.shli(t, i, 3);
    a.add(t, t, abase);
    a.ld(av, t, 0);
    a.shli(u, i, 3);
    a.add(u, u, bbase);
    a.ld(bv, u, 0);
    // abs(av - bv) without branches.
    a.sub(d, av, bv);
    a.sari(m, d, 63);
    a.xor_(absd, d, m);
    a.sub(absd, absd, m);
    a.add(cost, cost, absd);
    // Threshold branch: data dependent, skewed by the init distribution.
    a.blt(absd, thresh, cheap);
    // Expensive path: store through a multiplied index.
    a.mul(i2, i, five);
    a.addi(i2, i2, 1);
    a.andi(i2, i2, mask);
    a.shli(t, i2, 3);
    a.add(t, t, abase);
    a.st(cost, t, 0);
    a.bind(cheap);
    a.addi(cost, cost, 3);
    a.jmp(top);

    Workload w;
    w.name = "175.vpr";
    w.isFp = false;
    w.memBytes = 0x100000;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        fillRandomWords(vm, aBase, 0x10000, 1000, 0x7511);
        fillRandomWords(vm, bBase, 0x10000, 1000, 0x7512);
        vm.setIntReg(abase.idx, aBase);
        vm.setIntReg(bbase.idx, bBase);
        // ~73% of |av-bv| falls below 450 for two uniform [0,1000) draws.
        vm.setIntReg(thresh.idx, 450);
        vm.setIntReg(five.idx, 5);
    };
    return w;
}

// ---------------------------------------------------------------------
// 186.crafty -- bitboard manipulation: long chains of immediate-operand
// single-cycle ALU ops (Early-Execution heaven), an unrolled popcount,
// a multiply-based hash probe into a small table, highly predictable
// branches.
// ---------------------------------------------------------------------
Workload
makeCrafty()
{
    constexpr Addr tblBase = 0x0;          // 2K-entry hash table (16 KB)
    constexpr std::int64_t tblMask = 0x7ff;
    constexpr Addr atkBase = 0x4000;       // 1.5K-entry attack table
    constexpr std::int64_t atkMask = 0x2ff8;

    Assembler a;
    const IntReg occ = 1, t = 2, u = 3, mv = 4, v = 5, cnt = 7;
    const IntReg hash = 8, idx = 9, probe = 10, haddr = 11;
    const IntReg atk = 12, aaddr = 13, blockers = 14, w1 = 15;
    const IntReg sq = 16, q1 = 17, q2 = 18, q3 = 19, material = 6;
    const IntReg tbase = 20, hmul = 21, abase = 22;

    Label top = a.newLabel();
    Label rare = a.newLabel();
    Label cont = a.newLabel();
    Label no_block = a.newLabel();

    a.bind(top);
    // Square-index mask computation: a stride-predictable counter
    // seeding an immediate-ALU cascade (the Early-Execution content
    // crafty is known for; Fig 13 shows crafty is EE-sensitive).
    a.addi(sq, sq, 1);
    a.andi(sq, sq, 63);
    a.shli(q1, sq, 3);
    a.xori(q2, q1, 0x155);
    a.andi(q3, q2, 0xff0);
    a.or_(q1, q3, q2);
    a.xori(t, q3, 0xa5);
    a.shli(u, t, 1);
    a.or_(q2, u, q3);
    // Rotate-left-by-one of the occupancy board.
    a.shli(t, occ, 1);
    a.shri(u, occ, 63);
    a.or_(occ, t, u);
    // Attack-table lookup (L1 resident, data-dependent values).
    a.andi(aaddr, occ, atkMask);
    a.add(aaddr, aaddr, abase);
    a.ld(atk, aaddr, 0);
    // Move mask: an in-group cascade of immediate ALU ops.
    a.xori(mv, occ, 0x5555);
    a.shri(t, occ, 8);
    a.andi(t, t, 0x7fff);
    a.or_(mv, mv, t);
    a.shli(u, mv, 3);
    a.xor_(mv, mv, u);
    a.andi(mv, mv, 0xffffff);
    // Blocker test on low attack bits: taken ~7/8, data dependent.
    a.andi(blockers, atk, 7);
    a.bne(blockers, IntReg(0), no_block);
    a.ld(w1, aaddr, 8);
    a.add(material, material, w1);  // separate, data-dependent lane
    a.bind(no_block);
    // Unrolled popcount steps: v &= v - 1.
    a.mov(v, mv);
    for (int k = 0; k < 3; ++k) {
        a.addi(t, v, -1);
        a.and_(v, v, t);
        a.addi(cnt, cnt, 1);
    }
    // Zobrist-ish hash probe.
    a.mul(hash, occ, hmul);
    a.shri(idx, hash, 48);
    a.andi(idx, idx, tblMask);
    a.shli(haddr, idx, 3);
    a.add(haddr, haddr, tbase);
    a.ld(probe, haddr, 0);
    a.beq(probe, occ, rare);
    a.st(occ, haddr, 0);
    a.bind(cont);
    // Zobrist-style evolution: the probed entry perturbs the board,
    // serializing successive iterations through the table load.
    a.xor_(occ, occ, probe);
    a.addi(cnt, cnt, 2);
    a.jmp(top);
    // Hash hit: essentially never taken.
    a.bind(rare);
    a.addi(cnt, cnt, 100);
    a.jmp(cont);

    Workload w;
    w.name = "186.crafty";
    w.isFp = false;
    w.memBytes = 0x8000;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        fillRandomWords(vm, tblBase, 0x800, ~0ULL, 0x8611);
        fillRandomWords(vm, atkBase, 0x602, ~0ULL, 0x8612);
        vm.setIntReg(occ.idx, 0x123456789abcdef1ULL);
        vm.setIntReg(tbase.idx, tblBase);
        vm.setIntReg(hmul.idx, 0x9e3779b97f4a7c15ULL);
        vm.setIntReg(abase.idx, atkBase);
    };
    return w;
}

// ---------------------------------------------------------------------
// 197.parser -- linked-list chasing through an L2-resident node pool
// with data-dependent branches and a periodic helper call. Low IPC,
// chain bound, hard-to-predict values.
// ---------------------------------------------------------------------
Workload
makeParser()
{
    constexpr Addr nodeBase = 0x0;         // 8K nodes x 64 B = 512 KB
    constexpr std::size_t nodeCount = 0x2000;
    constexpr Addr dictBase = 0x80000;     // 64 KB dictionary
    constexpr std::int64_t dictMask = 0xfff8;

    Assembler a;
    const IntReg p = 1, v = 2, t = 3, c1 = 4, c2 = 5, acc = 6, k = 7;
    const IntReg dv = 8;
    const IntReg dbase = 20, c5 = 21;

    Label top = a.newLabel();
    Label odd = a.newLabel();
    Label merge = a.newLabel();
    Label skip_call = a.newLabel();
    Label func = a.newLabel();

    a.bind(top);
    // Pointer chase: p holds an absolute node address.
    a.ld(p, p, 0);
    a.ld(v, p, 8);
    a.andi(t, v, 15);
    a.blt(t, c5, odd);          // ~31% taken on uniform nibbles
    a.addi(c1, c1, 1);
    a.add(acc, acc, v);
    a.jmp(merge);
    a.bind(odd);
    a.addi(c2, c2, 3);
    a.xor_(acc, acc, v);
    a.bind(merge);
    a.ld(t, p, 16);
    a.add(acc, acc, t);
    // Every 8th iteration: dictionary helper call.
    a.addi(k, k, 1);
    a.andi(t, k, 7);
    a.bne(t, IntReg(0), skip_call);
    a.call(func);
    a.bind(skip_call);
    a.jmp(top);
    // Helper: one dictionary probe keyed by the accumulator.
    a.bind(func);
    a.andi(t, acc, dictMask);
    a.add(t, t, dbase);
    a.ld(dv, t, 0);
    a.add(acc, acc, dv);
    a.ret();

    Workload w;
    w.name = "197.parser";
    w.isFp = false;
    w.memBytes = 0x90000;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        // Random cyclic permutation over the node pool.
        linkRandomCycle(vm, nodeBase, nodeCount, 64, 0x9711);
        Rng rng(0x9712);
        for (std::size_t n = 0; n < nodeCount; ++n) {
            vm.writeMem(nodeBase + n * 64 + 8, 8, rng.next() & 0xffff);
            vm.writeMem(nodeBase + n * 64 + 16, 8, rng.below(100));
        }
        fillRandomWords(vm, dictBase, 0x2000, 50, 0x9713);
        vm.setIntReg(p.idx, nodeBase);
        vm.setIntReg(dbase.idx, dictBase);
        vm.setIntReg(c5.idx, 5);
    };
    return w;
}

// ---------------------------------------------------------------------
// 255.vortex -- object-database record updates through short helper
// functions: call/ret heavy (exercises the RAS), strided record access,
// highly predictable branches, high IPC.
// ---------------------------------------------------------------------
Workload
makeVortex()
{
    constexpr Addr recBase = 0x0;          // 16K records x 64 B = 1 MB
    constexpr std::int64_t recMask = 0x3fff;

    Assembler a;
    const IntReg i = 1, raddr = 2, x = 3, x2 = 4, t = 5, y = 6, cnt = 7;
    const IntReg flag = 8;
    const IntReg rbase = 20;

    Label top = a.newLabel();
    Label get_field = a.newLabel();
    Label check_field = a.newLabel();
    Label put_field = a.newLabel();
    Label is_odd = a.newLabel();
    Label chk_done = a.newLabel();

    a.bind(top);
    a.addi(i, i, 1);
    a.andi(i, i, recMask);
    a.shli(raddr, i, 6);
    a.add(raddr, raddr, rbase);
    a.call(get_field);
    a.call(check_field);
    a.call(put_field);
    a.addi(cnt, cnt, 1);
    a.jmp(top);

    // getField: load two record fields.
    a.bind(get_field);
    a.ld(x, raddr, 0);
    a.ld(x2, raddr, 8);
    a.ret();

    // checkField: mostly-even data makes this branch ~90% not-taken.
    a.bind(check_field);
    a.andi(t, x, 1);
    a.bne(t, IntReg(0), is_odd);
    a.addi(flag, flag, 1);
    a.jmp(chk_done);
    a.bind(is_odd);
    a.addi(flag, flag, 2);
    a.bind(chk_done);
    a.ret();

    // putField: combine and write back.
    a.bind(put_field);
    a.add(y, x, x2);
    a.st(y, raddr, 16);
    a.ret();

    Workload w;
    w.name = "255.vortex";
    w.isFp = false;
    w.memBytes = 0x100000;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        Rng rng(0x2551);
        for (std::size_t n = 0; n <= recMask; ++n) {
            // 90% even field values.
            const RegVal v = rng.below(1000) * 2 + (rng.chance(0.1) ? 1 : 0);
            vm.writeMem(recBase + n * 64, 8, v);
            vm.writeMem(recBase + n * 64 + 8, 8, rng.below(1000));
        }
        vm.setIntReg(rbase.idx, recBase);
    };
    return w;
}

// ---------------------------------------------------------------------
// 401.bzip2 -- counting phase of a block-sort compressor: byte stream
// with runs (70% repeat) drives a load-increment-store histogram, so
// consecutive iterations alias on the same counter (forwarding and
// Store-Sets stress) and counter values are stride-predictable inside
// runs.
// ---------------------------------------------------------------------
Workload
makeBzip2()
{
    constexpr Addr inBase = 0x0;           // 1 MB input bytes
    constexpr std::int64_t inMask = 0xfffff;
    constexpr Addr cntBase = 0x100000;     // 256 counters

    Assembler a;
    const IntReg i = 1, b = 2, caddr = 3, c = 4, c2 = 5, t = 6, rank = 7;
    const IntReg acc = 8;
    const IntReg ibase = 20, cbase = 21, c128 = 22;

    Label top = a.newLabel();
    Label high = a.newLabel();

    a.bind(top);
    a.addi(i, i, 1);
    a.andi(i, i, inMask);
    a.add(t, ibase, i);
    a.ld(b, t, 0, 1);
    // Histogram update: load-increment-store on counter[b].
    a.shli(caddr, b, 3);
    a.add(caddr, caddr, cbase);
    a.ld(c, caddr, 0);
    a.addi(c2, c, 1);
    a.st(c2, caddr, 0);
    // Skewed data-dependent branch (input bytes are ~75% below 128).
    a.bge(b, c128, high);
    a.shri(rank, b, 4);
    a.add(acc, acc, rank);
    a.jmp(top);
    a.bind(high);
    a.shli(rank, b, 1);
    a.xor_(acc, acc, rank);
    a.jmp(top);

    Workload w;
    w.name = "401.bzip2";
    w.isFp = false;
    w.memBytes = 0x100800;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        // Input with runs: 70% chance to repeat the previous byte, and
        // fresh bytes are drawn low-biased (75% below 128).
        Rng rng(0x4011);
        std::uint8_t prev = 0;
        for (std::size_t n = 0; n <= inMask; ++n) {
            if (!rng.chance(0.7)) {
                prev = static_cast<std::uint8_t>(
                    rng.chance(0.75) ? rng.below(128)
                                     : 128 + rng.below(128));
            }
            vm.writeMem(inBase + n, 1, prev);
        }
        vm.setIntReg(ibase.idx, inBase);
        vm.setIntReg(cbase.idx, cntBase);
        vm.setIntReg(c128.idx, 128);
    };
    return w;
}

} // namespace workloads
} // namespace eole
