/**
 * @file
 * Sampled-vs-full validation bench: the acceptance harness for the
 * checkpointed statistical-sampling subsystem (sim/sample/).
 *
 *   ./build/sample_validation [jobs]
 *
 * For a set of workloads under the VP baseline and EOLE
 * configurations, runs each cell full-length and sampled (EOLE_SAMPLE
 * spec, default 10:5000:2500:100000 — bounded warming, the speed
 * mode) at the same workload length, workload by workload, then
 * reports per cell:
 *
 *   - full-run IPC vs sampled mean IPC +/- 95% CI, and whether the
 *     full value falls inside the interval;
 *   - per-workload wall clock of both modes and the speedup.
 *
 * Verdict: PASS when at least one workload is simultaneously accurate
 * (every cell within its sampled CI) and fast (speedup >=
 * EOLE_SAMPLE_MIN_SPEEDUP, default 5x) — the acceptance criterion's
 * "wall-clock win demonstrated and logged on a long workload". Note
 * bounded warming is exact only for workloads whose predictor state
 * has short memory (e.g. 444.namd); long-memory workloads like
 * 164.gzip need full-prefix warming (B=0, the reference mode pinned
 * by tests/test_sample.cc) and are expected to drift here. Run
 * lengths follow EOLE_WARMUP / EOLE_INSTS, so CI can exercise this
 * cheaply while paper-grade lengths demonstrate the full win.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/env.hh"
#include "sim/configs.hh"
#include "sim/plan.hh"
#include "sim/sample/sample.hh"
#include "sim/sweep.hh"

using namespace eole;

namespace {

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentPlan plan;
    plan.name = "sample_validation";
    plan.description = "sampled vs full IPC + wall clock";
    plan.configs = {configs::baselineVp(6, 64), configs::eole(6, 64)};
    plan.workloads = {"164.gzip", "186.crafty", "458.sjeng", "444.namd",
                      "429.mcf"};

    SweepOptions opt;
    opt.jobs = argc > 1 ? std::atoi(argv[1]) : 0;

    const char *spec_env = std::getenv("EOLE_SAMPLE");
    const SampleSpec spec = parseSampleSpec(
        spec_env && *spec_env ? spec_env : "10:5000:2500:100000");
    const double min_speedup =
        static_cast<double>(envU64("EOLE_SAMPLE_MIN_SPEEDUP", 5));

    std::printf("sample_validation: warmup=%llu measure=%llu "
                "spec=%s jobs=%d\n",
                (unsigned long long)resolveRunLength(
                    0, plan.warmup, "EOLE_WARMUP", defaultWarmupUops),
                (unsigned long long)resolveRunLength(
                    0, plan.measure, "EOLE_INSTS", defaultMeasureUops),
                sampleSpecString(spec).c_str(),
                opt.jobs > 0 ? opt.jobs : runnerThreads());

    // Per-workload timing: one plan per workload so the wall-clock
    // comparison is at equal workload length, workload by workload
    // (the acceptance criterion asks for the win on at least one long
    // workload).
    std::printf("\n%-14s %-18s %10s %10s %8s  %s\n", "workload",
                "config", "full", "sampled", "ci95", "verdict");
    bool any_win = false;
    double best_speedup = 0.0;
    std::string best_workload;
    double full_total = 0.0, sampled_total = 0.0;
    for (const std::string &wl : plan.workloads) {
        ExperimentPlan one = plan;
        one.workloads = {wl};

        const auto t0 = std::chrono::steady_clock::now();
        const PlanResult full = runPlan(one, opt);
        const auto t1 = std::chrono::steady_clock::now();
        const PlanResult sampled = runSampledPlan(one, spec, opt);
        const auto t2 = std::chrono::steady_clock::now();

        const double full_s = seconds(t0, t1);
        const double sampled_s = seconds(t1, t2);
        full_total += full_s;
        sampled_total += sampled_s;
        const double speedup = sampled_s > 0 ? full_s / sampled_s : 0.0;

        bool accurate = true;
        for (const RunResult &cell : sampled.cells) {
            const RunResult *ref = full.find(cell.config, cell.workload);
            if (!ref)
                continue;
            const double f = ref->ipc();
            const double m = cell.stats.get("ipc");
            const double ci = cell.stats.get("ipc_ci95");
            const bool inside = std::abs(m - f) <= ci;
            accurate = accurate && inside;
            std::printf("%-14s %-18s %10.4f %10.4f %8.4f  %s\n",
                        cell.workload.c_str(), cell.config.c_str(), f,
                        m, ci, inside ? "within CI" : "OUTSIDE CI");
        }
        std::printf("%-14s wall clock: full %.2fs, sampled %.2fs -> "
                    "%.1fx%s\n",
                    wl.c_str(), full_s, sampled_s, speedup,
                    accurate ? "" : " (outside CI)");
        if (accurate && speedup > best_speedup) {
            best_speedup = speedup;
            best_workload = wl;
        }
        any_win = any_win || (accurate && speedup >= min_speedup);
    }

    std::printf("\ntotals: full %.2fs, sampled %.2fs; best accurate "
                "speedup %.1fx on %s (target >= %.0fx)\n",
                full_total, sampled_total, best_speedup,
                best_workload.empty() ? "-" : best_workload.c_str(),
                min_speedup);
    if (!any_win) {
        std::printf("FAIL: no workload is both within CI and >= %.0fx "
                    "faster sampled\n", min_speedup);
        return 1;
    }
    std::printf("OK: %.1fx wall-clock win within CI on %s\n",
                best_speedup, best_workload.c_str());
    return 0;
}
