file(REMOVE_RECURSE
  "CMakeFiles/sampled_sweep.dir/examples/sampled_sweep.cpp.o"
  "CMakeFiles/sampled_sweep.dir/examples/sampled_sweep.cpp.o.d"
  "sampled_sweep"
  "sampled_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampled_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
