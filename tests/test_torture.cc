/**
 * @file
 * Randomized differential torture test.
 *
 * A seeded generator (src/workloads/torture_gen.hh, shared with the
 * sampling checkpoint suite) assembles random-but-always-terminating
 * µ-op programs (random ALU/memory/FP mixes, data-dependent forward
 * branches, calls/returns, indirect jumps, a bounded outer loop) with
 * src/isa/assembler.hh. Each program is executed:
 *
 *   1. by a standalone KernelVM — the functional oracle stream, and
 *   2. through the full cycle-level pipeline under several
 *      configurations (VP off, VP on, idealized EOLE, port/bank
 *      constrained EOLE, and EOLE replaying a frozen trace),
 *
 * asserting that every configuration commits exactly the oracle
 * stream (program counters, results, effective addresses, branch
 * outcomes — captured via Core::setCommitHook) and drains completely.
 * The in-pipeline oracle lockstep check panics on any dataflow
 * divergence on top of this.
 *
 * Failures are seed-reproducible: every assertion carries a
 * re-runnable repro line. Defaults: 100 programs from base seed
 * 0xE01E; override with EOLE_TORTURE_RUNS / EOLE_TORTURE_SEED.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "common/env.hh"
#include "isa/kernel_vm.hh"
#include "pipeline/core.hh"
#include "sim/configs.hh"
#include "workloads/torture_gen.hh"
#include "workloads/workload.hh"

using namespace eole;
using workloads::generateTortureProgram;
using workloads::tortureMemBytes;

namespace {


/** The commit-stream fields we hold every configuration to. */
struct CommitRecord
{
    Addr pc;
    Opcode opc;
    RegVal result;
    Addr effAddr;
    bool taken;
    Addr nextPc;

    bool
    operator==(const CommitRecord &o) const
    {
        return pc == o.pc && opc == o.opc && result == o.result
            && effAddr == o.effAddr && taken == o.taken
            && nextPc == o.nextPc;
    }
};

CommitRecord
recordOf(const TraceUop &u)
{
    CommitRecord r{};
    r.pc = u.pc;
    r.opc = u.opc;
    r.result = (u.hasDst() || u.isStore()) ? u.result : 0;
    r.effAddr = (u.isLoad() || u.isStore()) ? u.effAddr : 0;
    r.taken = u.isBranch() ? u.taken : false;
    r.nextPc = u.isBranch() ? u.nextPc : 0;
    return r;
}

std::string
reproLine(std::uint64_t seed)
{
    return "repro: EOLE_TORTURE_SEED=" + std::to_string(seed)
        + " EOLE_TORTURE_RUNS=1 ./build/test_torture";
}

/** Functional oracle: the full committed stream of @p prog. */
std::vector<CommitRecord>
oracleStream(const Program &prog, std::uint64_t seed)
{
    KernelVM vm(prog, tortureMemBytes);
    std::vector<CommitRecord> ref;
    TraceUop u;
    while (vm.step(u)) {
        ref.push_back(recordOf(u));
        if (ref.size() > 2000000) {
            ADD_FAILURE() << "generated program did not halt; "
                          << reproLine(seed);
            return ref;
        }
    }
    EXPECT_TRUE(vm.halted()) << reproLine(seed);
    return ref;
}

/** Run @p w through the pipeline under @p cfg and capture commits. */
void
runAndCompare(const SimConfig &cfg, const Workload &w,
              const std::vector<CommitRecord> &ref, std::uint64_t seed)
{
    std::vector<CommitRecord> got;
    got.reserve(ref.size());

    Core core(cfg, w);
    EXPECT_EQ(core.pipelineState().ts.replaying(), w.frozen != nullptr);
    core.setCommitHook([&](const DynInst &di) {
        got.push_back(recordOf(di.uop));
        // The pipeline recomputes every result through its renamed
        // dataflow; hold it to the oracle value here as well (the
        // commit stage's internal lockstep check panics first in
        // practice).
        if (di.uop.hasDst())
            got.back().result = di.computedValue;
    });
    const std::uint64_t cap = ref.size() * 300 + 200000;
    core.run(ref.size() + 64, cap);

    ASSERT_EQ(got.size(), ref.size())
        << cfg.name << (w.frozen ? " (frozen replay)" : "")
        << ": committed stream length diverges; " << reproLine(seed);
    for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_TRUE(got[i] == ref[i])
            << cfg.name << (w.frozen ? " (frozen replay)" : "")
            << ": commit #" << i << " diverges at pc=" << std::hex
            << ref[i].pc << std::dec << " (" << opcodeName(ref[i].opc)
            << "); " << reproLine(seed);
    }
}

} // namespace

TEST(Torture, RandomProgramsMatchFunctionalOracle)
{
    const std::uint64_t runs = envU64("EOLE_TORTURE_RUNS", 100);
    const std::uint64_t base = envU64("EOLE_TORTURE_SEED", 0xE01E);

    const SimConfig cfgs[] = {
        configs::baseline(6, 64),            // no VP, no LE/VT stage
        configs::baselineVp(6, 64),          // VP + validation at commit
        configs::eole(4, 64),                // EE + LE, idealized
        configs::eoleConstrained(4, 64, 4, 4),  // banked + port limited
    };

    std::uint64_t total_uops = 0;
    for (std::uint64_t r = 0; r < runs; ++r) {
        const std::uint64_t seed = base + r;
        Workload w;
        w.name = "torture-" + std::to_string(seed);
        w.memBytes = tortureMemBytes;
        w.program = generateTortureProgram(seed);

        const auto ref = oracleStream(w.program, seed);
        ASSERT_FALSE(ref.empty()) << reproLine(seed);
        if (::testing::Test::HasFailure())
            return;
        total_uops += ref.size();

        for (const SimConfig &cfg : cfgs) {
            runAndCompare(cfg, w, ref, seed);
            if (::testing::Test::HasFailure())
                return;
        }

        // Same program through the frozen-replay trace backing: the
        // cached stream must be architecturally indistinguishable.
        Workload frozen = w;
        frozen.frozen = w.freeze(ref.size() + 16);
        ASSERT_TRUE(frozen.frozen->complete) << reproLine(seed);
        runAndCompare(configs::eole(4, 64), frozen, ref, seed);
        if (::testing::Test::HasFailure())
            return;
    }
    std::printf("torture: %llu programs, %llu oracle µ-ops, %zu configs "
                "+ 1 frozen replay each\n",
                (unsigned long long)runs,
                (unsigned long long)total_uops,
                std::size(cfgs));
}
