#include "pipeline/stages/completion.hh"

#include "common/pipetrace.hh"
#include "pipeline/pipeline_state.hh"

namespace eole {

void
CompletionStage::tick(PipelineState &st)
{
    // Note completeCycle is stamped with st.now, not the scheduled
    // ready cycle: after a forward time jump (functional warm) a
    // stale entry completes when the clock next observes it, exactly
    // as the ordered-map drain this wheel replaced behaved.
    st.completions.drainUpTo(st.now, [&](Cycle, const DynInstPtr &di) {
        if (di->squashed)
            return;
        di->completed = true;
        di->completeCycle = st.now;
        if (st.tracer && st.tracer->wants(di->seq))
            st.tracer->event(st.now, di->seq, PipeEvent::Complete);
        if (di->isBranch() && di->bp.mispredict && !di->lateExecBranch)
            st.resolveMispredictedBranch(di);
    });
}

} // namespace eole
