/**
 * @file
 * `eole` — the unified sweep driver.
 *
 *   eole list [--workloads]           show plans (or workloads)
 *   eole run <plan> [options]         execute a plan on a worker pool
 *   eole shard <plan> --hosts N --host I   run one host's slice of a
 *                                     plan (coordinator-free split)
 *   eole merge <partial...> --out F   merge shard partials into the
 *                                     single-host artifact, byte-
 *                                     identical
 *   eole store ls|gc <dir>            inspect / bound a --store
 *                                     content-addressed result cache
 *   eole diff <a.json> <b.json>       compare two artifacts
 *   eole bench [--out BENCH_x.json]   time detailed-mode µops/sec
 *                                     (--compare diffs two artifacts)
 *   eole ckpt save|info               write / inspect eole-ckpt-v2
 *                                     warm-state checkpoint files
 *
 * Each figure of the paper is a named plan (sim/plans.hh); `eole run`
 * subsumes the per-figure bench binaries, adding parallel execution
 * (--jobs), cell filtering (--filter), structured artifacts (--out /
 * --csv), reproducible seeding (--seed) and checkpointed statistical
 * sampling (--sample N:W:D, sim/sample/). Artifacts are byte-stable:
 * the same plan at the same run lengths, seed and sample spec produces
 * the same JSON regardless of --jobs, so `eole diff` against a prior
 * artifact is an exact regression check; `eole diff --ci` compares
 * sampled artifacts by confidence-interval overlap instead.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <atomic>

#include "common/build_info.hh"
#include "common/env.hh"
#include "common/fuzzy.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/pipetrace.hh"
#include "sim/artifact.hh"
#include "sim/bench.hh"
#include "sim/trace_cache.hh"
#include "sim/configs.hh"
#include "sim/experiment.hh"
#include "sim/params.hh"
#include "sim/plan.hh"
#include "sim/planfile.hh"
#include "sim/plans.hh"
#include "sim/sample/sample.hh"
#include "sim/shard.hh"
#include "sim/store.hh"
#include "sim/sweep.hh"
#include "sim/telemetry.hh"
#include "trace/rv64_ingest.hh"
#include "trace/trace_file.hh"
#include "workloads/workload.hh"

using namespace eole;

namespace {

int
usage(FILE *to, int exit_code)
{
    std::fprintf(to,
        "eole — EOLE sweep driver\n"
        "\n"
        "usage:\n"
        "  eole list [--workloads [name|file:F ...]]\n"
        "      List every registered experiment plan with its grid\n"
        "      size (configs x workloads) and default run lengths, or\n"
        "      with --workloads the registered workloads and their\n"
        "      µ-op counts (up to the current run-length horizon).\n"
        "      --workloads also accepts explicit names and\n"
        "      file:<path.trace> specs to describe just those (a\n"
        "      file: spec binds the trace and shows its on-disk\n"
        "      µ-op count).\n"
        "\n"
        "  eole describe <config> | --params\n"
        "      Dump a named configuration (Baseline_6_64,\n"
        "      EOLE_4_64_4ports_4banks, FPC_paper, ...) as its full\n"
        "      canonical key=value map; values differing from the\n"
        "      defaults are marked. --params lists every registered\n"
        "      parameter key with type, range and doc instead.\n"
        "\n"
        "  eole run <plan> [options]\n"
        "  eole run --plan <file.plan> [options]\n"
        "      --plan F      run a plan file (grid as data: base\n"
        "                    config + `axis key = v1, v2` lines; see\n"
        "                    DESIGN.md §9) instead of a registered\n"
        "                    plan\n"
        "      --set K=V     override parameter K on every config of\n"
        "                    the plan (repeatable; keys as in `eole\n"
        "                    describe --params`)\n"
        "      --jobs N      worker threads (default: EOLE_THREADS or\n"
        "                    hardware concurrency)\n"
        "      --filter S    run only cells whose \"config/workload\"\n"
        "                    contains S\n"
        "      --out F       write the JSON artifact to F\n"
        "      --csv F       write a long-form CSV to F\n"
        "      --warmup N    warmup µ-ops (default: EOLE_WARMUP or 1M)\n"
        "      --insts N     measured µ-ops (default: EOLE_INSTS or 5M)\n"
        "      --seed N      plan base seed (default 1)\n"
        "      --workloads W1,W2  replace the plan's workload list.\n"
        "                    Entries are registry names (torture:7,\n"
        "                    fig12:gcc, ...) or file:<path.trace>\n"
        "                    on-disk traces from `eole trace record` /\n"
        "                    `eole trace ingest`; a file: workload runs\n"
        "                    under its embedded name and its artifact\n"
        "                    cells are byte-identical to a live-\n"
        "                    generated run of the same workload. A\n"
        "                    missing or corrupt trace file exits 2\n"
        "                    with the resolved path (and nearby .trace\n"
        "                    suggestions).\n"
        "      --sample N:W:D[:B]  checkpointed statistical sampling:\n"
        "                    N intervals of W measured µ-ops, each\n"
        "                    after D µ-ops of detailed warmup (D\n"
        "                    defaults to W/2); functional warming\n"
        "                    covers up to B µ-ops before each interval\n"
        "                    (default 0 = the whole skipped prefix,\n"
        "                    warmed ONCE per cell and restored from\n"
        "                    eole-ckpt-v2 checkpoints at each\n"
        "                    interval). Overrides a plan file's\n"
        "                    `sample =` directive. Cells report mean\n"
        "                    ipc + ipc_ci95.\n"
        "      --store DIR   content-addressed result store: cells\n"
        "                    whose key (config map, workload, seed,\n"
        "                    run lengths, sample spec) already\n"
        "                    resolves in DIR load their stats instead\n"
        "                    of running, and fresh cells are inserted\n"
        "                    — artifacts stay byte-identical either\n"
        "                    way\n"
        "      --no-cache    disable the shared functional-trace cache\n"
        "      --no-tables   skip the paper-style tables\n"
        "      --quiet       suppress progress chatter on stderr\n"
        "                    (notice-level lines like store summaries\n"
        "                    still print; EOLE_LOG=quiet|normal|debug\n"
        "                    sets the same levels from the environment)\n"
        "      --progress    heartbeat as cells finish: done count,\n"
        "                    elapsed and ETA (prints even with --quiet)\n"
        "      --telemetry F write a JSONL event stream beside the run:\n"
        "                    a run_start manifest (plan, lengths, host,\n"
        "                    build), cell_queued per matched cell,\n"
        "                    job_start/job_finish with worker index and\n"
        "                    wall time, store / trace-cache counters,\n"
        "                    and a terminal run_finish — or run_aborted\n"
        "                    when the command exits early. Summarize\n"
        "                    with `eole telemetry summarize`.\n"
        "      --pipetrace F trace every pipeline event of the run's\n"
        "                    single cell (narrow with --filter) into F\n"
        "                    in Kanata format — open it in the Konata\n"
        "                    viewer. --pipetrace-format canonical\n"
        "                    writes the byte-stable text form instead;\n"
        "                    --pipetrace-range A:B restricts to µ-op\n"
        "                    sequence numbers [A, B). Unsampled,\n"
        "                    non-shard runs only.\n"
        "\n"
        "  eole shard <plan>|--plan <file.plan> --hosts N --host I\n"
        "            [run options] [--out FILE|DIR]\n"
        "      Run host I's slice of the plan (I in [0, N)): cell\n"
        "      ownership is a pure function of the plan seed and the\n"
        "      cell identity, so N hosts each run `eole shard` with\n"
        "      their own --host and no coordinator, then ship the\n"
        "      partial artifacts to one place for `eole merge`. --out\n"
        "      defaults to <plan>.shard<I>of<N>.eoleshard (a given\n"
        "      directory keeps that name inside it). Accepts the run\n"
        "      options above except --csv/--no-tables (partials are\n"
        "      not meant for human eyes; tables print at merge time).\n"
        "\n"
        "  eole merge <partial.eoleshard>... --out <artifact.json>\n"
        "      Validate and merge shard partials into the JSON\n"
        "      artifact a single-host `eole run --out` of the same\n"
        "      plan would have written — byte-identical. Exit 2 with\n"
        "      a line-numbered diagnostic on a corrupted partial, and\n"
        "      with a coverage diagnostic when a shard is missing,\n"
        "      duplicated, or from a different run.\n"
        "\n"
        "  eole store ls <dir>\n"
        "  eole store gc <dir> [--max-objects N] [--max-bytes N]\n"
        "      Inspect or bound a --store directory. `ls` prints one\n"
        "      line per object (hash prefix, kind, payload bytes,\n"
        "      logical LRU tick, cell identity) plus totals; `gc`\n"
        "      evicts least-recently-used objects until the given\n"
        "      bounds hold (eviction order is the deterministic\n"
        "      logical-tick order, not wall time).\n"
        "\n"
        "  eole ckpt save <plan>|--plan <file.plan> --out <dir>\n"
        "            [--sample N:W:D[:B]] [--filter S] [--jobs N]\n"
        "            [--seed N] [--warmup N] [--insts N] [--set K=V]\n"
        "            [--store DIR] [--no-cache] [--quiet]\n"
        "      One continuous warming pass per matched (config,\n"
        "      workload) cell, writing an eole-ckpt-v2 checkpoint\n"
        "      file (architectural registers + serialized predictor/\n"
        "      cache state) per sampling interval into <dir> — the\n"
        "      same checkpoints `eole run --sample` feeds its\n"
        "      intervals from, as shippable artifacts for other\n"
        "      hosts. The spec comes from --sample or the plan file's\n"
        "      `sample =` directive (--sample wins). With --store,\n"
        "      checkpoints are also keyed into the content-addressed\n"
        "      store; a cell whose checkpoints all resolve skips its\n"
        "      warming pass and writes them straight from the store.\n"
        "\n"
        "  eole ckpt info <file.ckpt>...\n"
        "      Validate checkpoint files (strict, line-numbered\n"
        "      diagnostics; exit 2 on a malformed file) and print\n"
        "      schema, provenance, µ-op index and section sizes.\n"
        "\n"
        "  eole trace record <workload> --out <file.trace>\n"
        "            [--uops N] [--store DIR] [--quiet]\n"
        "      Record a workload's functional µ-op trace into an\n"
        "      eole-trace-v1 file (mmap-ready packed records +\n"
        "      SHA-256 footer). --uops bounds the recording (default:\n"
        "      the current warmup+measure horizon plus slack, so the\n"
        "      file covers a default-length run of any stock config).\n"
        "      --store also inserts the file into a content-addressed\n"
        "      store as a kind=trace object keyed by its own bytes.\n"
        "\n"
        "  eole trace info <file.trace>...\n"
        "      Validate trace files (header, layout hash, checksum;\n"
        "      exit 2 with a byte-offset diagnostic on truncation or\n"
        "      corruption) and print workload, source, µ-op count and\n"
        "      completeness.\n"
        "\n"
        "  eole trace ingest <log.rvlog> --out <file.trace>\n"
        "            [--name N] [--quiet]\n"
        "      Translate an RV64I committed-instruction log (spike/\n"
        "      QEMU style `pc insn` lines, with optional reg/mem seed\n"
        "      directives) into the internal µ-op vocabulary and write\n"
        "      it as eole-trace-v1. The workload name defaults to\n"
        "      rv64:<log stem>. See DESIGN.md §13 for the cracking\n"
        "      table and the unsupported-instruction list.\n"
        "\n"
        "  eole bench [--configs A,B] [--workloads X,Y] [--budget N]\n"
        "             [--warmup N] [--reps K] [--label L] [--out F]\n"
        "             [--profile] [--quiet]\n"
        "      Time detailed-mode simulation speed (µops/sec), one\n"
        "      serial cell per (config, workload): discard --warmup\n"
        "      µ-ops (default 100k), time --budget measured µ-ops\n"
        "      (default 1M), keep the fastest of --reps repetitions\n"
        "      (default 3). Configs default to the fig12 set,\n"
        "      workloads to a 3-benchmark smoke set (file:<path.trace>\n"
        "      specs accepted). --out writes a\n"
        "      canonical eole-bench-v1 JSON artifact (the committed\n"
        "      BENCH_<label>.json trajectory files). --profile\n"
        "      attributes each cell's wall time to pipeline stages and\n"
        "      models (per-cell breakdown tables + a profile section\n"
        "      in the JSON); profiled timings carry the timer overhead,\n"
        "      so compare them only against other profiled runs.\n"
        "      EOLE_PROF=1 enables the same timers in any command.\n"
        "\n"
        "  eole bench --compare <a.json> <b.json> [--fail-below X]\n"
        "      Per-cell speedup report of b over a from two bench\n"
        "      artifacts, plus the geomean over common cells. With\n"
        "      --fail-below, exit 1 when that geomean is below X\n"
        "      (e.g. 0.8 = fail on a >20%% regression).\n"
        "\n"
        "  eole diff <a.json> <b.json> [--rel-tol X] [--abs-tol X]\n"
        "            [--ci]\n"
        "      Compare two artifacts; exit 1 if they differ beyond\n"
        "      tolerance (default: exact). Cells embed their complete\n"
        "      canonical config map, so config drift is reported\n"
        "      alongside stat drift. --ci compares stats that carry\n"
        "      *_ci95 companions by confidence-interval overlap and\n"
        "      skips sample_* bookkeeping stats (for sampled\n"
        "      artifacts; combine with --rel-tol for raw totals). A\n"
        "      stat key present on only one side is always a\n"
        "      difference.\n"
        "\n"
        "  eole telemetry summarize <file.jsonl>...\n"
        "      Merge one or more --telemetry streams (e.g. the three\n"
        "      files of a 3-shard sweep) into per-worker utilization,\n"
        "      the critical-path cell, store/trace-cache totals and\n"
        "      the distinct cell set.\n"
        "\n"
        "  eole --version\n"
        "      Print build provenance (git describe, compiler, build\n"
        "      type) — the same string stamped into artifacts, bench\n"
        "      JSON and telemetry manifests.\n");
    return exit_code;
}

bool
takeValue(int argc, char **argv, int &i, const char *flag, std::string &out)
{
    if (std::strcmp(argv[i], flag) != 0)
        return false;
    if (i + 1 >= argc) {
        std::fprintf(stderr, "eole: %s needs a value\n", flag);
        std::exit(2);
    }
    out = argv[++i];
    return true;
}

std::uint64_t
parseU64(const std::string &s, const char *what)
{
    std::uint64_t v = 0;
    if (!parseU64Strict(s, &v)) {
        std::fprintf(stderr, "eole: bad %s \"%s\"\n", what, s.c_str());
        std::exit(2);
    }
    return v;
}

bool resolveWorkloadSpec(const std::string &spec, std::string *resolved,
                         std::string *err);

int
cmdListWorkloads(const std::vector<std::string> &specs)
{
    // Default listing: the whole registry. Explicit specs may add
    // torture:<seed> or file:<path> workloads (the latter resolve to
    // their embedded canonical names).
    std::vector<std::string> names;
    if (specs.empty()) {
        names = workloads::allNames();
    } else {
        for (const std::string &spec : specs) {
            std::string resolved, err;
            if (!resolveWorkloadSpec(spec, &resolved, &err)) {
                std::fprintf(stderr, "eole: %s\n", err.c_str());
                return 2;
            }
            names.push_back(resolved);
        }
    }

    // µ-op counts are only meaningful up to the horizon a run would
    // consume; count up to warmup + measure + slack and report longer
    // workloads as lower bounds. Step a VM and discard the µ-ops —
    // counting needs O(1) memory, not a materialized trace. File-backed
    // workloads already know their exact length.
    const std::uint64_t horizon = warmupUops() + measureUops() + 1024;
    std::printf("%-14s %5s %12s\n", "workload", "suite", "µ-ops");
    for (const std::string &name : names) {
        const Workload w = workloads::build(name);
        if (w.fileBacked) {
            std::printf("%-14s %5s %11zu%s\n", name.c_str(),
                        w.isFp ? "FP" : "INT", w.frozen->uops.size(),
                        w.frozen->complete ? " " : "+");
            continue;
        }
        KernelVM vm(w.program, w.memBytes);
        if (w.init)
            w.init(vm);
        TraceUop u;
        while (vm.executedUops() < horizon && vm.step(u)) {
        }
        if (vm.halted()) {
            std::printf("%-14s %5s %12llu\n", name.c_str(),
                        w.isFp ? "FP" : "INT",
                        (unsigned long long)vm.executedUops());
        } else {
            std::printf("%-14s %5s %11llu+\n", name.c_str(),
                        w.isFp ? "FP" : "INT",
                        (unsigned long long)vm.executedUops());
        }
    }
    std::printf("\ncounts capped at the current run-length horizon "
                "(%llu µ-ops = EOLE_WARMUP + EOLE_INSTS + slack); "
                "\"+\" marks workloads still running at the cap (or an "
                "incomplete trace file)\n",
                (unsigned long long)horizon);
    return 0;
}

int
cmdList(int argc, char **argv)
{
    if (argc >= 1 && std::strcmp(argv[0], "--workloads") == 0) {
        std::vector<std::string> specs;
        for (int i = 1; i < argc; ++i) {
            if (argv[i][0] == '-') {
                std::fprintf(stderr, "eole: unknown option %s\n",
                             argv[i]);
                return usage(stderr, 2);
            }
            specs.emplace_back(argv[i]);
        }
        return cmdListWorkloads(specs);
    }
    if (argc > 0) {
        std::fprintf(stderr, "eole: unknown option %s\n", argv[0]);
        return usage(stderr, 2);
    }
    std::printf("%-16s %10s %9s %9s  %s\n", "plan", "grid", "warmup",
                "measure", "description");
    for (const std::string &name : plans::allNames()) {
        const ExperimentPlan p = plans::get(name);
        // The run lengths this plan would use today: plan fields when
        // set, else the environment/default (common/env.hh precedence
        // minus the CLI flags, which are per-invocation).
        const std::uint64_t warm = resolveRunLength(
            0, p.warmup, "EOLE_WARMUP", defaultWarmupUops);
        const std::uint64_t meas = resolveRunLength(
            0, p.measure, "EOLE_INSTS", defaultMeasureUops);
        const std::string grid = std::to_string(p.configs.size()) + "x"
            + std::to_string(p.workloads.size()) + "="
            + std::to_string(p.gridSize());
        std::printf("%-16s %10s %9llu %9llu  %s\n", name.c_str(),
                    grid.c_str(), (unsigned long long)warm,
                    (unsigned long long)meas, p.description.c_str());
    }
    std::printf("\ngrid = configs x workloads = cells; run lengths in "
                "µ-ops (EOLE_WARMUP / EOLE_INSTS env or --warmup / "
                "--insts per run)\n");
    return 0;
}

int
cmdDescribe(int argc, char **argv)
{
    if (argc != 1) {
        std::fprintf(stderr,
                     "eole: describe needs a config name or --params\n");
        return usage(stderr, 2);
    }
    const ParamRegistry &reg = ParamRegistry::instance();

    if (std::strcmp(argv[0], "--params") == 0) {
        std::printf("%-28s %-11s %-22s %s\n", "key", "type",
                    "default", "doc");
        for (const ParamInfo &p : reg.params()) {
            std::string constraint;
            if (p.type == "int" || p.type == "u64" || p.type == "u32") {
                constraint = p.maxValue == ~0ULL
                    ? csprintf("[%llu, 2^64)",
                               (unsigned long long)p.minValue)
                    : csprintf("[%llu, %llu]",
                               (unsigned long long)p.minValue,
                               (unsigned long long)p.maxValue);
            } else if (p.type == "enum") {
                for (const std::string &v : p.enumValues) {
                    constraint +=
                        (constraint.empty() ? "" : "|") + v;
                }
            }
            std::printf("%-28s %-11s %-22s %s%s%s\n", p.key.c_str(),
                        p.type.c_str(), p.defaultValue.c_str(),
                        p.doc.c_str(),
                        constraint.empty() ? "" : "; ",
                        constraint.c_str());
        }
        std::printf("\n%zu parameters; set any of them with `eole run "
                    "<plan> --set key=value` or plan-file `set`/`axis` "
                    "directives\n", reg.params().size());
        return 0;
    }

    const std::string name = argv[0];
    SimConfig c;
    if (!configs::findNamed(name, &c)) {
        std::fprintf(stderr, "eole: unknown config \"%s\"%s\n",
                     name.c_str(),
                     didYouMean(closestMatches(
                         name, configs::knownNames())).c_str());
        std::fprintf(stderr,
                     "  named configs of registered plans:");
        for (const std::string &n : configs::knownNames())
            std::fprintf(stderr, " %s", n.c_str());
        std::fprintf(stderr,
                     "\n  plus the paper naming scheme "
                     "(Baseline[_VP]_<w>_<iq>, EOLE_<w>_<iq>"
                     "[_<p>ports_<b>banks], OLE_/EOE_...)\n");
        return 2;
    }

    std::size_t overrides = 0;
    for (const ParamInfo &p : reg.params()) {
        const std::string v = p.get(c);
        if (v == p.defaultValue) {
            std::printf("%-28s = %s\n", p.key.c_str(), v.c_str());
        } else {
            std::printf("%-28s = %-22s # default: %s\n", p.key.c_str(),
                        v.c_str(), p.defaultValue.c_str());
            ++overrides;
        }
    }
    std::printf("\n%s: %zu parameters, %zu differing from defaults "
                "(marked '#')\n", c.name.c_str(), reg.params().size(),
                overrides);
    return 0;
}

/** File-system-safe spelling of a cell identity component. */
std::string
sanitizeForPath(const std::string &s)
{
    std::string out = s;
    for (char &c : out) {
        if (c == '/' || c == '\\' || c == ' ' || c == ':')
            c = '_';
    }
    return out;
}

/** "a,b,c" -> {"a", "b", "c"}; empty segments rejected upstream by the
 *  registries' own unknown-name diagnostics. */
std::vector<std::string>
splitCommaList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? s.size() : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

/**
 * Resolve one CLI workload spec: plain names pass through untouched
 * (the registries validate them), "file:<path>" binds the trace file
 * (workloads::bindTraceFile) and resolves to the canonical name
 * embedded in it. A file that cannot be loaded produces a diagnostic
 * naming the resolved absolute path plus a did-you-mean over the
 * sibling .trace files — the usual typo is the filename, not the
 * directory.
 */
bool
resolveWorkloadSpec(const std::string &spec, std::string *resolved,
                    std::string *err)
{
    if (spec.rfind("file:", 0) != 0) {
        *resolved = spec;
        return true;
    }
    const std::string path = spec.substr(5);
    std::string name, lerr;
    if (workloads::bindTraceFile(path, &name, &lerr)) {
        *resolved = name;
        return true;
    }
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path abs = fs::absolute(path, ec);
    if (ec)
        abs = path;
    std::vector<std::string> siblings;
    if (fs::is_directory(abs.parent_path(), ec)) {
        for (const auto &e : fs::directory_iterator(abs.parent_path(),
                                                    ec)) {
            if (e.path().extension() == ".trace")
                siblings.push_back(e.path().filename().string());
        }
        std::sort(siblings.begin(), siblings.end());
    }
    *err = csprintf("cannot load trace file %s: %s",
                    abs.string().c_str(), lerr.c_str())
        + didYouMean(closestMatches(abs.filename().string(), siblings));
    return false;
}

/** `eole run` and `eole shard` share one parser and execution path;
 *  @p shard_mode adds --hosts/--host, forces tables off and writes an
 *  "eole-shard-v1" partial instead of a JSON artifact. */
int
cmdRun(int argc, char **argv, bool shard_mode)
{
    if (argc < 1)
        return usage(stderr, 2);

    ExperimentPlan plan;
    bool have_plan = false;
    int first_opt = 0;
    std::string named_plan;
    if (argv[0][0] != '-') {
        // Resolved after the telemetry sink opens, so an unknown name
        // still terminates the stream with run_aborted.
        named_plan = argv[0];
        first_opt = 1;
    }

    SweepOptions opt;
    SampleSpec sample;
    std::string out_path, csv_path, store_dir, value;
    std::string plan_file, telemetry_path, pipetrace_path;
    std::string pipetrace_format = "kanata", pipetrace_range;
    std::string workloads_override;
    std::vector<std::string> sets;
    std::uint64_t seed = 0;
    std::uint64_t shard_hosts = 0, shard_host = 0;
    bool have_seed = false, have_host = false;
    bool tables = true, quiet = false, progress_flag = false;
    for (int i = first_opt; i < argc; ++i) {
        if (takeValue(argc, argv, i, "--plan", value)) {
            // Loaded after the telemetry sink opens, so a bad plan
            // file still terminates the stream with run_aborted.
            plan_file = value;
        } else if (takeValue(argc, argv, i, "--set", value)) {
            sets.push_back(value);
        } else if (takeValue(argc, argv, i, "--jobs", value)) {
            opt.jobs = static_cast<int>(parseU64(value, "--jobs"));
        } else if (takeValue(argc, argv, i, "--filter", value)) {
            opt.filter = value;
        } else if (takeValue(argc, argv, i, "--workloads", value)) {
            workloads_override = value;
        } else if (takeValue(argc, argv, i, "--out", value)) {
            out_path = value;
        } else if (takeValue(argc, argv, i, "--csv", value)) {
            csv_path = value;
        } else if (takeValue(argc, argv, i, "--warmup", value)) {
            opt.warmup = parseU64(value, "--warmup");
        } else if (takeValue(argc, argv, i, "--insts", value)) {
            opt.measure = parseU64(value, "--insts");
        } else if (takeValue(argc, argv, i, "--seed", value)) {
            seed = parseU64(value, "--seed");
            have_seed = true;
        } else if (takeValue(argc, argv, i, "--sample", value)) {
            sample = parseSampleSpec(value);
        } else if (takeValue(argc, argv, i, "--store", value)) {
            store_dir = value;
        } else if (takeValue(argc, argv, i, "--telemetry", value)) {
            telemetry_path = value;
        } else if (!shard_mode
                   && takeValue(argc, argv, i, "--pipetrace", value)) {
            pipetrace_path = value;
        } else if (!shard_mode
                   && takeValue(argc, argv, i, "--pipetrace-format",
                                value)) {
            pipetrace_format = value;
        } else if (!shard_mode
                   && takeValue(argc, argv, i, "--pipetrace-range",
                                value)) {
            pipetrace_range = value;
        } else if (std::strcmp(argv[i], "--progress") == 0) {
            progress_flag = true;
        } else if (shard_mode
                   && takeValue(argc, argv, i, "--hosts", value)) {
            shard_hosts = parseU64(value, "--hosts");
        } else if (shard_mode
                   && takeValue(argc, argv, i, "--host", value)) {
            shard_host = parseU64(value, "--host");
            have_host = true;
        } else if (std::strcmp(argv[i], "--no-cache") == 0) {
            opt.useTraceCache = false;
        } else if (!shard_mode
                   && std::strcmp(argv[i], "--no-tables") == 0) {
            tables = false;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            std::fprintf(stderr, "eole: unknown option %s\n", argv[i]);
            return usage(stderr, 2);
        }
    }
    if (quiet)
        setLogLevel(LogLevel::Quiet);

    // The telemetry stream opens before any validation below, and
    // every exit-2 path from here on terminates it with run_aborted —
    // a consumer never sees a silently truncated stream.
    std::unique_ptr<TelemetrySink> telem;
    if (!telemetry_path.empty())
        telem = std::make_unique<TelemetrySink>(telemetry_path);
    const auto bail = [&](const std::string &reason) {
        std::fprintf(stderr, "eole: %s\n", reason.c_str());
        if (telem)
            telem->runAborted(reason);
        return 2;
    };
    if (!named_plan.empty()) {
        if (!plans::exists(named_plan)) {
            return bail(csprintf(
                "unknown plan \"%s\"%s (try `eole list`)",
                named_plan.c_str(),
                didYouMean(closestMatches(
                    named_plan, plans::allNames())).c_str()));
        }
        plan = plans::get(named_plan);
        have_plan = true;
    }
    if (!plan_file.empty()) {
        if (have_plan) {
            return bail("give either a registered plan name or --plan, "
                        "not both");
        }
        std::string err;
        if (!loadPlanFile(plan_file, &plan, &err))
            return bail(err);
        have_plan = true;
    }
    if (!have_plan) {
        std::fprintf(stderr, "eole: %s needs a plan name or --plan "
                     "<file>\n", shard_mode ? "shard" : "run");
        if (telem)
            telem->runAborted("no plan given");
        return usage(stderr, 2);
    }
    if (shard_mode) {
        if (shard_hosts == 0 || !have_host)
            return bail("shard needs --hosts N and --host I");
        if (shard_host >= shard_hosts) {
            return bail(csprintf(
                "--host %llu out of range for --hosts %llu (hosts are "
                "numbered from 0)",
                (unsigned long long)shard_host,
                (unsigned long long)shard_hosts));
        }
        if (!csv_path.empty()) {
            return bail("--csv does not apply to shard partials; run "
                        "it on the merged artifact");
        }
        opt.shard.hosts = shard_hosts;
        opt.shard.host = shard_host;
        tables = false;
    }
    if (have_seed)
        plan.seed = seed;

    // Workload override: replace the plan's workload axis. Plain
    // registry/torture names pass through; file:<path> specs bind
    // their trace file and resolve to the embedded canonical name, so
    // cell identity (and thus artifacts) cannot depend on the path.
    if (!workloads_override.empty()) {
        std::vector<std::string> resolved_names;
        for (const std::string &spec : splitCommaList(workloads_override)) {
            std::string resolved, werr;
            if (!resolveWorkloadSpec(spec, &resolved, &werr))
                return bail(werr);
            resolved_names.push_back(std::move(resolved));
        }
        if (resolved_names.empty())
            return bail("--workloads needs at least one name");
        plan.workloads = std::move(resolved_names);
    }

    // Ad-hoc overrides: apply each --set key=value to every config of
    // the plan through the registry. A typo'd key or bad value is an
    // operator mistake: exit 2 with the nearest valid keys.
    const ParamRegistry &reg = ParamRegistry::instance();
    for (const std::string &kv : sets) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0) {
            return bail(csprintf("--set wants key=value, got \"%s\"",
                                 kv.c_str()));
        }
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        for (SimConfig &c : plan.configs) {
            const std::string err = reg.trySet(c, key, val);
            if (!err.empty())
                return bail("--set: " + err);
        }
    }
    const std::string plan_name = plan.name;

    // A filter that matches nothing is an operator mistake (typo'd
    // config or workload); fail loudly with the valid names.
    if (!opt.filter.empty()) {
        bool any = false;
        for (const SimConfig &c : plan.configs) {
            for (const std::string &w : plan.workloads)
                any = any || cellMatches(opt.filter, c.name, w);
        }
        if (!any) {
            std::fprintf(stderr,
                         "eole: --filter \"%s\" matches no cell of plan "
                         "%s\n  valid configs:",
                         opt.filter.c_str(), plan_name.c_str());
            for (const SimConfig &c : plan.configs)
                std::fprintf(stderr, " %s", c.name.c_str());
            std::fprintf(stderr, "\n  valid workloads:");
            for (const std::string &w : plan.workloads)
                std::fprintf(stderr, " %s", w.c_str());
            std::fprintf(stderr, "\n");
            if (telem) {
                telem->runAborted(csprintf(
                    "--filter \"%s\" matches no cell of plan %s",
                    opt.filter.c_str(), plan_name.c_str()));
            }
            return 2;
        }
    }

    // Effective sampling spec: the CLI flag wins over the plan file's
    // own `sample =` directive (resolveRunLength-style precedence).
    sample = resolveSampleSpec(sample, plan.sample);

    // Matched-cell census: the telemetry manifest and the single-cell
    // --pipetrace restriction both need it before the engines expand
    // the plan themselves.
    std::size_t matched_cells = 0;
    for (const SimConfig &c : plan.configs) {
        for (const std::string &w : plan.workloads) {
            if (cellMatches(opt.filter, c.name, w)
                && opt.shard.owns(plan.seed, c.seed, c.name, w))
                ++matched_cells;
        }
    }

    std::ofstream trace_os;
    std::unique_ptr<PipeTracer> tracer;
    if (!pipetrace_path.empty()) {
        if (sample.enabled())
            return bail("--pipetrace needs an unsampled run");
        if (matched_cells != 1) {
            return bail(csprintf(
                "--pipetrace needs exactly one cell, but %zu match; "
                "narrow with --filter", matched_cells));
        }
        PipeTracer::Format fmt;
        if (pipetrace_format == "kanata") {
            fmt = PipeTracer::Format::Kanata;
        } else if (pipetrace_format == "canonical") {
            fmt = PipeTracer::Format::Canonical;
        } else {
            return bail(csprintf(
                "bad --pipetrace-format \"%s\" (kanata or canonical)",
                pipetrace_format.c_str()));
        }
        SeqNum lo = 0, hi = ~SeqNum{0};
        if (!pipetrace_range.empty()) {
            const std::size_t colon = pipetrace_range.find(':');
            bool ok = colon != std::string::npos;
            if (ok) {
                ok = parseU64Strict(pipetrace_range.substr(0, colon),
                                    &lo)
                    && parseU64Strict(pipetrace_range.substr(colon + 1),
                                      &hi);
            }
            if (!ok || lo >= hi) {
                return bail(csprintf(
                    "bad --pipetrace-range \"%s\" (want A:B with "
                    "A < B, µ-op sequence numbers)",
                    pipetrace_range.c_str()));
            }
        }
        trace_os.open(pipetrace_path);
        if (!trace_os) {
            return bail(csprintf("cannot write %s",
                                 pipetrace_path.c_str()));
        }
        tracer = std::make_unique<PipeTracer>(trace_os, fmt, lo, hi);
        opt.tracer = tracer.get();
    }

    if (telem) {
        telem->runStart(
            shard_mode ? "shard" : "run", plan_name, plan.seed,
            resolveRunLength(opt.warmup, plan.warmup, "EOLE_WARMUP",
                             defaultWarmupUops),
            resolveRunLength(opt.measure, plan.measure, "EOLE_INSTS",
                             defaultMeasureUops),
            opt.filter,
            sample.enabled() ? sampleSpecString(sample) : "",
            opt.jobs > 0 ? opt.jobs : runnerThreads(), matched_cells,
            shard_mode ? static_cast<int>(shard_host) : -1,
            shard_mode ? static_cast<int>(shard_hosts) : -1);
        opt.telemetry = telem.get();
    }

    const auto run_t0 = std::chrono::steady_clock::now();
    if (progress_flag) {
        // Heartbeat for long sweeps: rate-based ETA over finished
        // jobs. notice-level, so it survives --quiet by design.
        opt.progress = [run_t0](std::size_t done, std::size_t total,
                                const RunResult &cell) {
            const double secs = std::chrono::duration<double>(
                std::chrono::steady_clock::now() - run_t0).count();
            const double eta =
                done > 0 ? secs * (total - done) / done : 0.0;
            notice("[%zu/%zu] %s/%s elapsed %.0fs eta %.0fs", done,
                   total, cell.config.c_str(), cell.workload.c_str(),
                   secs, eta);
        };
    } else {
        opt.progress = [](std::size_t done, std::size_t total,
                          const RunResult &cell) {
            inform("[%zu/%zu] %s/%s ipc=%.3f", done, total,
                   cell.config.c_str(), cell.workload.c_str(),
                   cell.ipc());
        };
    }
    {
        const char *verb = shard_mode ? "shard" : "run";
        if (sample.enabled()) {
            inform("eole %s %s: %zu cells x %llu intervals (sample "
                   "%s), %d jobs",
                   verb, plan_name.c_str(), plan.gridSize(),
                   (unsigned long long)sample.intervals,
                   sampleSpecString(sample).c_str(),
                   opt.jobs > 0 ? opt.jobs : runnerThreads());
        } else {
            inform("eole %s %s: %zu cells, %d jobs", verb,
                   plan_name.c_str(), plan.gridSize(),
                   opt.jobs > 0 ? opt.jobs : runnerThreads());
        }
    }

    std::unique_ptr<Store> store;
    if (!store_dir.empty()) {
        store = std::make_unique<Store>(store_dir);
        opt.store = store.get();
    }
    // The one store summary line (notice level: always on stderr, even
    // --quiet): "0 computed" on a warm re-run is the observable
    // contract the CI shard lane and tests/test_shard.cc pin.
    const auto storeSummary = [&](std::size_t hits,
                                  std::size_t computed) {
        if (store) {
            notice("store %s: %zu cached, %zu computed",
                   store_dir.c_str(), hits, computed);
        }
    };

    if (shard_mode) {
        const ShardArtifact shard = runShard(plan, sample, opt);
        storeSummary(shard.storeHits, shard.storeComputed);

        std::string path = out_path;
        const std::string default_name = sanitizeForPath(plan_name)
            + ".shard" + std::to_string(shard_host) + "of"
            + std::to_string(shard_hosts) + ".eoleshard";
        if (path.empty())
            path = default_name;
        else if (std::filesystem::is_directory(path))
            path += "/" + default_name;
        std::ofstream os(path, std::ios::binary);
        fatal_if(!os, "cannot write %s", path.c_str());
        writeShardArtifact(os, shard);
        os.close();
        fatal_if(os.fail(), "write failure on %s", path.c_str());
        inform("wrote %s (host %llu of %llu: %zu of %llu cells)",
               path.c_str(), (unsigned long long)shard_host,
               (unsigned long long)shard_hosts, shard.cells.size(),
               (unsigned long long)shard.cellsTotal);
        if (telem)
            telem->runFinish(shard.cells.size());
        return 0;
    }

    const PlanResult result = sample.enabled()
        ? runSampledPlan(plan, sample, opt)
        : runPlan(plan, opt);
    storeSummary(result.storeHits, result.storeComputed);

    if (tracer) {
        tracer->finish();
        trace_os.close();
        fatal_if(trace_os.fail(), "write failure on %s",
                 pipetrace_path.c_str());
        inform("wrote %s (pipetrace, %s format)", pipetrace_path.c_str(),
               pipetrace_format.c_str());
    }

    if (tables)
        printPlanTables(plan, result);

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        fatal_if(!os, "cannot write %s", out_path.c_str());
        writeJsonArtifact(os, result);
        inform("wrote %s (%zu cells)", out_path.c_str(),
               result.cells.size());
    }
    if (!csv_path.empty()) {
        std::ofstream os(csv_path);
        fatal_if(!os, "cannot write %s", csv_path.c_str());
        writeCsvArtifact(os, result);
        inform("wrote %s", csv_path.c_str());
    }
    if (telem)
        telem->runFinish(result.cells.size());
    return 0;
}

int
cmdMerge(int argc, char **argv)
{
    std::vector<std::string> paths;
    std::string out_path, value;
    bool quiet = false;
    for (int i = 0; i < argc; ++i) {
        if (takeValue(argc, argv, i, "--out", value)) {
            out_path = value;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "eole: unknown option %s\n", argv[i]);
            return usage(stderr, 2);
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.empty()) {
        std::fprintf(stderr,
                     "eole: merge needs shard partial file(s)\n");
        return usage(stderr, 2);
    }
    if (out_path.empty()) {
        std::fprintf(stderr,
                     "eole: merge needs --out <artifact.json>\n");
        return 2;
    }

    std::vector<ShardArtifact> shards;
    shards.reserve(paths.size());
    for (const std::string &p : paths) {
        std::ifstream is(p, std::ios::binary);
        if (!is) {
            std::fprintf(stderr, "eole: cannot read %s\n", p.c_str());
            return 2;
        }
        ShardArtifact shard;
        std::string err;
        if (!tryReadShardArtifact(is, &shard, &err)) {
            std::fprintf(stderr, "eole: %s: %s\n", p.c_str(),
                         err.c_str());
            return 2;
        }
        shards.push_back(std::move(shard));
    }

    PlanResult merged;
    std::string err;
    if (!tryMergeShardArtifacts(shards, &merged, &err)) {
        std::fprintf(stderr, "eole: %s\n", err.c_str());
        return 2;
    }

    std::ofstream os(out_path);
    fatal_if(!os, "cannot write %s", out_path.c_str());
    writeJsonArtifact(os, merged);
    os.close();
    fatal_if(os.fail(), "write failure on %s", out_path.c_str());
    if (!quiet) {
        std::fprintf(stderr,
                     "wrote %s (%zu cells from %zu of %llu shard "
                     "partial(s))\n", out_path.c_str(),
                     merged.cells.size(), shards.size(),
                     (unsigned long long)shards.front().hosts);
    }
    return 0;
}

int
cmdStore(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "eole: store needs ls|gc and a store "
                     "directory\n");
        return usage(stderr, 2);
    }
    const std::string sub = argv[0];
    const std::string dir = argv[1];
    if (sub != "ls" && sub != "gc") {
        std::fprintf(stderr, "eole: unknown store subcommand \"%s\"\n",
                     sub.c_str());
        return usage(stderr, 2);
    }
    if (!std::filesystem::exists(dir + "/index")) {
        std::fprintf(stderr, "eole: %s is not a store directory (no "
                     "index file)\n", dir.c_str());
        return 2;
    }

    if (sub == "ls") {
        if (argc > 2) {
            std::fprintf(stderr, "eole: unknown option %s\n", argv[2]);
            return usage(stderr, 2);
        }
        Store store(dir);
        std::printf("%-14s %-5s %10s %6s  %s\n", "hash", "kind",
                    "bytes", "tick", "cell");
        for (const Store::Entry &e : store.entries()) {
            std::printf("%-14s %-5s %10llu %6llu  %s/%s\n",
                        e.hash.substr(0, 12).c_str(), e.kind.c_str(),
                        (unsigned long long)e.bytes,
                        (unsigned long long)e.tick, e.config.c_str(),
                        e.workload.c_str());
        }
        std::printf("%zu object(s), %llu payload byte(s) in %s\n",
                    store.entries().size(),
                    (unsigned long long)store.totalPayloadBytes(),
                    dir.c_str());
        return 0;
    }

    std::uint64_t max_objects = ~0ULL, max_bytes = ~0ULL;
    std::string value;
    for (int i = 2; i < argc; ++i) {
        if (takeValue(argc, argv, i, "--max-objects", value)) {
            max_objects = parseU64(value, "--max-objects");
        } else if (takeValue(argc, argv, i, "--max-bytes", value)) {
            max_bytes = parseU64(value, "--max-bytes");
        } else {
            std::fprintf(stderr, "eole: unknown option %s\n", argv[i]);
            return usage(stderr, 2);
        }
    }
    if (max_objects == ~0ULL && max_bytes == ~0ULL) {
        std::fprintf(stderr, "eole: store gc needs --max-objects "
                     "and/or --max-bytes\n");
        return 2;
    }
    Store store(dir);
    std::vector<Store::Entry> evicted;
    store.gc(max_objects, max_bytes, &evicted);
    for (const Store::Entry &e : evicted) {
        std::printf("evicted %s %s %s/%s (%llu bytes, tick %llu)\n",
                    e.hash.substr(0, 12).c_str(), e.kind.c_str(),
                    e.config.c_str(), e.workload.c_str(),
                    (unsigned long long)e.bytes,
                    (unsigned long long)e.tick);
    }
    std::printf("evicted %zu object(s); %zu object(s), %llu payload "
                "byte(s) remain in %s\n", evicted.size(),
                store.entries().size(),
                (unsigned long long)store.totalPayloadBytes(),
                dir.c_str());
    return 0;
}

int
cmdCkptSave(int argc, char **argv)
{
    ExperimentPlan plan;
    bool have_plan = false;
    int first_opt = 0;
    std::string named_plan;
    if (argc >= 1 && argv[0][0] != '-') {
        // Resolved after the telemetry sink opens, so an unknown name
        // still terminates the stream with run_aborted.
        named_plan = argv[0];
        first_opt = 1;
    }

    SweepOptions opt;
    SampleSpec sample;
    std::string out_dir, store_dir, telemetry_path, plan_file, value;
    std::vector<std::string> sets;
    std::uint64_t seed = 0;
    bool have_seed = false, quiet = false;
    for (int i = first_opt; i < argc; ++i) {
        if (takeValue(argc, argv, i, "--plan", value)) {
            plan_file = value;
        } else if (takeValue(argc, argv, i, "--out", value)) {
            out_dir = value;
        } else if (takeValue(argc, argv, i, "--sample", value)) {
            sample = parseSampleSpec(value);
        } else if (takeValue(argc, argv, i, "--filter", value)) {
            opt.filter = value;
        } else if (takeValue(argc, argv, i, "--jobs", value)) {
            opt.jobs = static_cast<int>(parseU64(value, "--jobs"));
        } else if (takeValue(argc, argv, i, "--seed", value)) {
            seed = parseU64(value, "--seed");
            have_seed = true;
        } else if (takeValue(argc, argv, i, "--warmup", value)) {
            opt.warmup = parseU64(value, "--warmup");
        } else if (takeValue(argc, argv, i, "--insts", value)) {
            opt.measure = parseU64(value, "--insts");
        } else if (takeValue(argc, argv, i, "--set", value)) {
            sets.push_back(value);
        } else if (takeValue(argc, argv, i, "--store", value)) {
            store_dir = value;
        } else if (takeValue(argc, argv, i, "--telemetry", value)) {
            telemetry_path = value;
        } else if (std::strcmp(argv[i], "--no-cache") == 0) {
            opt.useTraceCache = false;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            std::fprintf(stderr, "eole: unknown option %s\n", argv[i]);
            return usage(stderr, 2);
        }
    }
    if (quiet)
        setLogLevel(LogLevel::Quiet);
    std::unique_ptr<TelemetrySink> telem;
    if (!telemetry_path.empty())
        telem = std::make_unique<TelemetrySink>(telemetry_path);
    const auto bail = [&](const std::string &reason) {
        std::fprintf(stderr, "eole: %s\n", reason.c_str());
        if (telem)
            telem->runAborted(reason);
        return 2;
    };
    if (!named_plan.empty()) {
        if (!plans::exists(named_plan)) {
            return bail(csprintf(
                "unknown plan \"%s\"%s (try `eole list`)",
                named_plan.c_str(),
                didYouMean(closestMatches(
                    named_plan, plans::allNames())).c_str()));
        }
        plan = plans::get(named_plan);
        have_plan = true;
    }
    if (!plan_file.empty()) {
        if (have_plan) {
            return bail("give either a registered plan name or --plan, "
                        "not both");
        }
        std::string err;
        if (!loadPlanFile(plan_file, &plan, &err))
            return bail(err);
        have_plan = true;
    }
    if (!have_plan) {
        std::fprintf(stderr,
                     "eole: ckpt save needs a plan name or --plan\n");
        if (telem)
            telem->runAborted("no plan given");
        return usage(stderr, 2);
    }
    if (have_seed)
        plan.seed = seed;
    if (out_dir.empty())
        return bail("ckpt save needs --out <directory>");
    const ParamRegistry &reg = ParamRegistry::instance();
    for (const std::string &kv : sets) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0) {
            return bail(csprintf("--set wants key=value, got \"%s\"",
                                 kv.c_str()));
        }
        for (SimConfig &c : plan.configs) {
            const std::string err = reg.trySet(c, kv.substr(0, eq),
                                               kv.substr(eq + 1));
            if (!err.empty())
                return bail("--set: " + err);
        }
    }
    sample = resolveSampleSpec(sample, plan.sample);
    if (!sample.enabled()) {
        return bail("ckpt save needs a sampling spec: --sample "
                    "N:W:D[:B] or a plan-file `sample =` directive");
    }

    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
        return bail(csprintf("cannot create %s: %s", out_dir.c_str(),
                             ec.message().c_str()));
    }

    const std::uint64_t warmup = resolveRunLength(
        opt.warmup, plan.warmup, "EOLE_WARMUP", defaultWarmupUops);
    const std::uint64_t measure = resolveRunLength(
        opt.measure, plan.measure, "EOLE_INSTS", defaultMeasureUops);

    // Matched cells, config-major (the artifact order); placement as
    // in runSampledPlan so the written checkpoints are exactly the
    // ones a sampled run of this plan/spec/seed restores from.
    struct CkptCell
    {
        const SimConfig *cfg;
        std::size_t wl;
        std::string workload;
        std::uint64_t seed;
        std::vector<std::uint64_t> starts;
        std::vector<std::string> files;  //!< pre-assigned slots
        /** Serialized checkpoint text per interval (pre-assigned
         *  slots; filled only with --store, consumed by the serial
         *  put pass after the pool). */
        std::vector<std::string> serialized;
    };
    std::vector<CkptCell> cells;
    for (const SimConfig &c : plan.configs) {
        for (std::size_t w = 0; w < plan.workloads.size(); ++w) {
            if (!cellMatches(opt.filter, c.name, plan.workloads[w]))
                continue;
            CkptCell cell;
            cell.cfg = &c;
            cell.wl = w;
            cell.workload = plan.workloads[w];
            cell.seed = jobSeed(plan.seed, c.seed, c.name,
                                plan.workloads[w]);
            // Mirror runSampledPlan's per-config `runlen` handling so
            // the saved checkpoints land where a sampled run looks.
            cell.starts = placeIntervals(
                warmup, resolveMeasureFor(opt.measure, plan, c.name),
                sample, cell.seed);
            cell.files.resize(cell.starts.size());
            cell.serialized.resize(cell.starts.size());
            cells.push_back(std::move(cell));
        }
    }
    if (cells.empty()) {
        return bail(csprintf("no cell of plan %s matches",
                             plan.name.c_str()));
    }
    if (telem) {
        telem->runStart("ckpt-save", plan.name, plan.seed, warmup,
                        measure, opt.filter, sampleSpecString(sample),
                        opt.jobs > 0 ? opt.jobs : runnerThreads(),
                        cells.size(), -1, -1);
        for (const CkptCell &cell : cells)
            telem->cellQueued(cell.cfg->name, cell.workload);
    }

    // Content-addressed checkpoint store: keys carry the UNCLAMPED
    // checkpoint index (a pure function of the placement; the trace
    // length is unknown before recording, and the clamped content is
    // itself a deterministic function of these inputs). A cell whose
    // checkpoints all resolve skips its warming pass entirely and
    // writes the files straight from the stored payloads.
    std::unique_ptr<Store> store;
    if (!store_dir.empty())
        store = std::make_unique<Store>(store_dir);
    const auto ckptKey = [&](const CkptCell &cell, std::uint64_t idx) {
        StoreKey key;
        key.kind = "ckpt";
        key.config = cell.cfg->name;
        key.params = configKeyValues(*cell.cfg);
        key.workload = cell.workload;
        key.seed = cell.seed;
        key.warmup = warmup;
        key.measure = resolveMeasureFor(opt.measure, plan,
                                        cell.cfg->name);
        key.sample = sample;
        key.index = idx;
        return key;
    };
    // Unclamped per-interval checkpoint indices (strictly increasing,
    // so every interval gets its own key even when trace clamping
    // collapses the tails onto identical state).
    std::vector<std::vector<std::uint64_t>> storeIdxs(cells.size());
    std::vector<char> cellFromStore(cells.size(), 0);
    std::size_t storeHits = 0;
    if (store) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            CkptCell &cell = cells[i];
            storeIdxs[i] = warmCheckpointIndices(cell.starts, ~0ULL,
                                                 sample);
            bool all = !storeIdxs[i].empty();
            for (const std::uint64_t idx : storeIdxs[i])
                all = all && store->contains(
                    storeKeyHash(ckptKey(cell, idx)));
            if (!all)
                continue;
            std::uint64_t prevUop = ~0ULL;
            bool ok = true;
            for (std::size_t k = 0; ok && k < storeIdxs[i].size();
                 ++k) {
                const std::string hash =
                    storeKeyHash(ckptKey(cell, storeIdxs[i][k]));
                std::string payload;
                if (!store->get(hash, &payload)) {
                    ok = false;  // object vanished: recompute the cell
                    break;
                }
                // The payload IS the checkpoint file; deserialize
                // only to recover the clamped µ-op index for the
                // filename and the duplicate-tail skip.
                Checkpoint ckpt;
                std::string err;
                std::istringstream is(payload);
                fatal_if(!tryDeserializeCheckpoint(is, &ckpt, &err),
                         "store %s: object %s: %s (delete the store "
                         "directory to rebuild it)", store_dir.c_str(),
                         hash.c_str(), err.c_str());
                if (ckpt.uopIndex == prevUop)
                    continue;
                prevUop = ckpt.uopIndex;
                const std::string file = out_dir + "/"
                    + sanitizeForPath(cell.cfg->name) + "__"
                    + sanitizeForPath(cell.workload) + "__u"
                    + std::to_string(ckpt.uopIndex) + ".ckpt";
                std::ofstream os(file, std::ios::binary);
                bool wrote = static_cast<bool>(os);
                if (wrote) {
                    os << payload;
                    os.close();
                    wrote = !os.fail();
                }
                if (!wrote) {
                    std::fprintf(stderr, "eole: ckpt save: write "
                                 "failure under %s\n", out_dir.c_str());
                    return 2;
                }
                cell.files[k] = file;
            }
            if (ok) {
                cellFromStore[i] = 1;
                storeHits += storeIdxs[i].size();
            }
        }
    }

    std::uint64_t maxStart = 0;
    for (const CkptCell &cell : cells) {
        for (const std::uint64_t s : cell.starts)
            maxStart = std::max(maxStart, s);
    }
    std::uint64_t longestMeasure = measure;
    for (const SimConfig &c : plan.configs) {
        longestMeasure = std::max(longestMeasure,
                                  resolveMeasureFor(opt.measure, plan, c.name));
    }
    const std::uint64_t traceUopsNeeded =
        sampleTraceUopsNeeded(plan, sample, warmup, longestMeasure, maxStart);

    TraceCache cache;
    std::vector<std::atomic<std::size_t>> remaining(plan.workloads.size());
    for (auto &r : remaining)
        r.store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!cellFromStore[i])
            remaining[cells[i].wl].fetch_add(1,
                                             std::memory_order_relaxed);
    }

    std::atomic<bool> write_failed{false};
    runOnWorkerPool(cells.size(), opt.jobs, [&](std::size_t i,
                                                int worker) {
        if (cellFromStore[i])
            return;  // files already written from the store pre-pass
        CkptCell &cell = cells[i];
        SimConfig cfg = *cell.cfg;
        cfg.seed = cell.seed;

        if (telem)
            telem->jobStart("warm", cfg.name, cell.workload, worker);
        const auto job_t0 = std::chrono::steady_clock::now();
        bool cell_ok = true;

        Workload w = workloads::build(cell.workload);
        std::shared_ptr<const FrozenTrace> trace;
        if (opt.useTraceCache)
            trace = cache.get(w, traceUopsNeeded);
        if (!trace && !cell.starts.empty()) {
            trace = w.freeze(std::min(traceUopsNeeded,
                                      cell.starts.back()));
        }

        if (trace) {
            const auto idxs = warmCheckpointIndices(
                cell.starts, trace->uops.size(), sample);
            const auto ckpts =
                warmOnceCheckpoints(cfg, w, trace, idxs);
            for (std::size_t k = 0; k < ckpts.size(); ++k) {
                if (store) {
                    // Keep every interval's serialization (distinct
                    // unclamped keys even for duplicate tails) for
                    // the serial put pass after the pool.
                    std::ostringstream ss;
                    serializeCheckpoint(ss, *ckpts[k]);
                    cell.serialized[k] = ss.str();
                }
                // Intervals clamped to the end of a short workload
                // repeat the final index with identical state; one
                // file covers them all (no silent overwrite, no
                // inflated count).
                if (k > 0
                    && ckpts[k]->uopIndex == ckpts[k - 1]->uopIndex)
                    continue;
                const std::string file = out_dir + "/"
                    + sanitizeForPath(cfg.name) + "__"
                    + sanitizeForPath(cell.workload) + "__u"
                    + std::to_string(ckpts[k]->uopIndex) + ".ckpt";
                std::ofstream os(file, std::ios::binary);
                bool ok = static_cast<bool>(os);
                if (ok) {
                    serializeCheckpoint(os, *ckpts[k]);
                    // Close before judging success: buffered bytes
                    // only hit disk here, and ENOSPC at close must
                    // not report the file as written.
                    os.close();
                    ok = !os.fail();
                }
                if (!ok) {
                    write_failed.store(true);
                    cell_ok = false;
                } else {
                    cell.files[k] = file;
                }
            }
        }
        trace.reset();
        if (remaining[cell.wl].fetch_sub(1) == 1)
            cache.drop(cell.workload);
        if (telem) {
            const double wall_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - job_t0).count();
            telem->jobFinish("warm", cfg.name, cell.workload, worker,
                             wall_ms, cell_ok);
        }
    });
    if (telem && opt.useTraceCache)
        telem->traceCacheCounts(cache.hitCount(), cache.missCount(),
                                cache.fileHitCount(),
                                cache.fileMissCount(),
                                cache.evictCount());

    // Serial put pass: freshly warmed cells enter the store under the
    // keys the pre-pass derived.
    std::size_t storeComputed = 0;
    if (store) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (cellFromStore[i])
                continue;
            for (std::size_t k = 0; k < storeIdxs[i].size(); ++k) {
                if (cells[i].serialized[k].empty())
                    continue;
                store->put(ckptKey(cells[i], storeIdxs[i][k]),
                           cells[i].serialized[k]);
                ++storeComputed;
            }
        }
        store->flush();
        notice("store %s: %zu cached, %zu computed", store_dir.c_str(),
               storeHits, storeComputed);
        if (telem)
            telem->storeCounts(storeHits, storeComputed);
    }

    std::size_t written = 0;
    for (const CkptCell &cell : cells) {
        for (const std::string &f : cell.files) {
            if (f.empty())
                continue;
            ++written;
            if (!quiet)
                std::printf("%s\n", f.c_str());
        }
    }
    if (write_failed.load()) {
        return bail(csprintf("ckpt save: write failure under %s",
                             out_dir.c_str()));
    }
    inform("wrote %zu checkpoint file(s) for %zu cell(s) (plan %s, "
           "sample %s, warmup %llu, measure %llu)",
           written, cells.size(), plan.name.c_str(),
           sampleSpecString(sample).c_str(), (unsigned long long)warmup,
           (unsigned long long)measure);
    if (telem)
        telem->runFinish(cells.size());
    return 0;
}

int
cmdCkptInfo(int argc, char **argv)
{
    if (argc < 1) {
        std::fprintf(stderr,
                     "eole: ckpt info needs checkpoint file(s)\n");
        return 2;
    }
    int rc = 0;
    for (int i = 0; i < argc; ++i) {
        std::ifstream is(argv[i], std::ios::binary);
        if (!is) {
            std::fprintf(stderr, "eole: cannot read %s\n", argv[i]);
            rc = 2;
            continue;
        }
        Checkpoint ckpt;
        std::string err;
        if (!tryDeserializeCheckpoint(is, &ckpt, &err)) {
            std::fprintf(stderr, "eole: %s: %s\n", argv[i],
                         err.c_str());
            rc = 2;
            continue;
        }
        std::printf("%s: %s workload \"%s\" uop %llu", argv[i],
                    checkpointSchemaName(ckpt), ckpt.workload.c_str(),
                    (unsigned long long)ckpt.uopIndex);
        if (!ckpt.config.empty())
            std::printf(" config \"%s\"", ckpt.config.c_str());
        if (ckpt.hasWarmState()) {
            std::printf(" sections");
            for (const auto &[name, payload] : ckpt.uarch)
                std::printf(" %s=%zuB", name.c_str(), payload.size());
        }
        std::printf("\n");
    }
    return rc;
}

int
cmdCkpt(int argc, char **argv)
{
    if (argc < 1) {
        std::fprintf(stderr, "eole: ckpt needs save|info\n");
        return usage(stderr, 2);
    }
    const std::string sub = argv[0];
    if (sub == "save")
        return cmdCkptSave(argc - 1, argv + 1);
    if (sub == "info")
        return cmdCkptInfo(argc - 1, argv + 1);
    std::fprintf(stderr, "eole: unknown ckpt subcommand \"%s\"\n",
                 sub.c_str());
    return usage(stderr, 2);
}

int
cmdBench(int argc, char **argv)
{
    BenchOptions opt;
    std::string out_path, value;
    std::vector<std::string> compare_paths;
    double fail_below = 0.0;
    bool have_fail_below = false;
    for (int i = 0; i < argc; ++i) {
        if (takeValue(argc, argv, i, "--configs", value)) {
            for (std::string &n : splitCommaList(value))
                opt.configs.push_back(std::move(n));
        } else if (takeValue(argc, argv, i, "--workloads", value)) {
            for (std::string &n : splitCommaList(value))
                opt.workloads.push_back(std::move(n));
        } else if (takeValue(argc, argv, i, "--budget", value)) {
            opt.budget = parseU64(value, "--budget");
        } else if (takeValue(argc, argv, i, "--warmup", value)) {
            opt.warmup = parseU64(value, "--warmup");
        } else if (takeValue(argc, argv, i, "--reps", value)) {
            opt.reps = static_cast<int>(parseU64(value, "--reps"));
        } else if (takeValue(argc, argv, i, "--label", value)) {
            opt.label = value;
        } else if (takeValue(argc, argv, i, "--out", value)) {
            out_path = value;
        } else if (std::strcmp(argv[i], "--compare") == 0) {
            if (i + 2 >= argc) {
                std::fprintf(stderr,
                             "eole: --compare needs two bench files\n");
                return 2;
            }
            compare_paths.emplace_back(argv[++i]);
            compare_paths.emplace_back(argv[++i]);
        } else if (takeValue(argc, argv, i, "--fail-below", value)) {
            char *end = nullptr;
            fail_below = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end || fail_below <= 0.0) {
                std::fprintf(stderr,
                             "eole: bad --fail-below \"%s\"\n",
                             value.c_str());
                return 2;
            }
            have_fail_below = true;
        } else if (std::strcmp(argv[i], "--profile") == 0) {
            opt.profile = true;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            opt.quiet = true;
        } else {
            std::fprintf(stderr, "eole: unknown option %s\n", argv[i]);
            return usage(stderr, 2);
        }
    }
    if (opt.quiet)
        setLogLevel(LogLevel::Quiet);

    if (!compare_paths.empty()) {
        const BenchResult a = readBenchJsonFile(compare_paths[0]);
        const BenchResult b = readBenchJsonFile(compare_paths[1]);
        std::printf("bench compare: a=%s (%s), b=%s (%s)\n",
                    compare_paths[0].c_str(), a.label.c_str(),
                    compare_paths[1].c_str(), b.label.c_str());
        const double g = compareBench(a, b, std::cout);
        if (have_fail_below && g < fail_below) {
            std::fprintf(stderr,
                         "eole: bench: geomean speedup %.3f below "
                         "threshold %.3f\n", g, fail_below);
            return 1;
        }
        return 0;
    }
    if (have_fail_below) {
        std::fprintf(stderr,
                     "eole: --fail-below only applies to --compare\n");
        return 2;
    }

    // file:<path> workload specs: bind the trace and bench under its
    // canonical name, timing replay-from-mmap instead of a generator.
    for (std::string &spec : opt.workloads) {
        std::string resolved, err;
        if (!resolveWorkloadSpec(spec, &resolved, &err)) {
            std::fprintf(stderr, "eole: %s\n", err.c_str());
            return 2;
        }
        spec = std::move(resolved);
    }

    const BenchResult result = runBench(opt);
    if (opt.profile)
        writeBenchProfileTable(std::cout, result);
    std::printf("geomean: %.0f µops/s over %zu cell(s) (budget %llu, "
                "warmup %llu, min of %d rep(s))\n",
                result.geomeanUopsPerSec(), result.cells.size(),
                (unsigned long long)result.budget,
                (unsigned long long)result.warmup, result.reps);
    if (!out_path.empty()) {
        std::ofstream os(out_path);
        fatal_if(!os, "cannot write %s", out_path.c_str());
        writeBenchJson(os, result);
        inform("wrote %s (%zu cells)", out_path.c_str(),
               result.cells.size());
    }
    return 0;
}

/**
 * `eole trace` — the on-disk trace subsystem's CLI:
 *   record <workload> --out F [--uops N] [--store DIR]
 *   info <file.trace>...
 *   ingest <log.rvlog> --out F [--name N]
 */
int
cmdTrace(int argc, char **argv)
{
    if (argc < 1) {
        std::fprintf(stderr, "eole: trace needs: record | info | "
                     "ingest\n");
        return usage(stderr, 2);
    }
    const std::string sub = argv[0];
    --argc;
    ++argv;

    if (sub == "record") {
        std::string workload_spec, out_path, store_dir, value;
        std::uint64_t uops = 0;
        for (int i = 0; i < argc; ++i) {
            if (takeValue(argc, argv, i, "--out", value)) {
                out_path = value;
            } else if (takeValue(argc, argv, i, "--uops", value)) {
                uops = parseU64(value, "--uops");
            } else if (takeValue(argc, argv, i, "--store", value)) {
                store_dir = value;
            } else if (std::strcmp(argv[i], "--quiet") == 0) {
                setLogLevel(LogLevel::Quiet);
            } else if (argv[i][0] == '-') {
                std::fprintf(stderr, "eole: unknown option %s\n",
                             argv[i]);
                return usage(stderr, 2);
            } else if (workload_spec.empty()) {
                workload_spec = argv[i];
            } else {
                std::fprintf(stderr,
                             "eole: trace record takes one workload\n");
                return 2;
            }
        }
        if (workload_spec.empty() || out_path.empty()) {
            std::fprintf(stderr, "eole: trace record needs a workload "
                         "and --out <file>\n");
            return 2;
        }
        if (uops == 0) {
            // Cover a default-length run of any stock config with
            // generous in-flight slack; replaying a too-short
            // incomplete trace is a loud error, not silent drift.
            uops = warmupUops() + measureUops() + 65536;
        }
        std::string resolved, err;
        if (!resolveWorkloadSpec(workload_spec, &resolved, &err)) {
            std::fprintf(stderr, "eole: %s\n", err.c_str());
            return 2;
        }
        const Workload w = workloads::build(resolved);
        if (w.name.size() >= traceFileNameBytes) {
            std::fprintf(stderr, "eole: workload name \"%s\" is too "
                         "long for the trace header (max %zu bytes)\n",
                         w.name.c_str(), traceFileNameBytes - 1);
            return 2;
        }
        const auto trace = w.freeze(uops);
        if (!writeTraceFile(*trace, out_path, "generated", &err)) {
            std::fprintf(stderr, "eole: %s\n", err.c_str());
            return 2;
        }
        std::uint64_t file_bytes = 0;
        {
            std::error_code ec;
            file_bytes = std::filesystem::file_size(out_path, ec);
        }
        std::printf("wrote %s: workload %s, %zu µ-ops (%s), %llu "
                    "bytes\n", out_path.c_str(), trace->name.c_str(),
                    trace->uops.size(),
                    trace->complete ? "complete" : "prefix",
                    (unsigned long long)file_bytes);
        if (!store_dir.empty()) {
            // A trace is a content-addressed store object: the key is
            // its own bytes' hash, so identical recordings dedupe and
            // a changed recording is a new object, never a mutation.
            std::ifstream is(out_path, std::ios::binary);
            std::ostringstream buf;
            buf << is.rdbuf();
            const std::string payload = buf.str();
            fatal_if(!is || payload.size() != file_bytes,
                     "cannot re-read %s for --store", out_path.c_str());
            StoreKey key;
            key.kind = "trace";
            key.workload = trace->name;
            key.content = sha256Hex(payload);
            Store store(store_dir);
            store.put(key, payload);
            store.flush();
            std::printf("stored as %s (kind=trace) in %s\n",
                        storeKeyHash(key).substr(0, 12).c_str(),
                        store_dir.c_str());
        }
        return 0;
    }

    if (sub == "info") {
        std::vector<std::string> paths;
        for (int i = 0; i < argc; ++i) {
            if (argv[i][0] == '-') {
                std::fprintf(stderr, "eole: unknown option %s\n",
                             argv[i]);
                return usage(stderr, 2);
            }
            paths.emplace_back(argv[i]);
        }
        if (paths.empty()) {
            std::fprintf(stderr,
                         "eole: trace info needs file(s)\n");
            return 2;
        }
        for (const std::string &path : paths) {
            TraceFileInfo info;
            std::string err;
            if (!readTraceFileInfo(path, &info, &err)) {
                std::fprintf(stderr, "eole: %s: %s\n", path.c_str(),
                             err.c_str());
                return 2;
            }
            std::printf("%s:\n", path.c_str());
            std::printf("  workload  %s\n", info.name.c_str());
            std::printf("  source    %s\n", info.source.c_str());
            std::printf("  µ-ops     %llu (%s)\n",
                        (unsigned long long)info.uopCount,
                        info.complete ? "complete" : "prefix");
            std::printf("  suite     %s\n", info.isFp ? "FP" : "INT");
            std::printf("  bytes     %llu\n",
                        (unsigned long long)info.fileBytes);
            std::printf("  checksum  ok\n");
        }
        return 0;
    }

    if (sub == "ingest") {
        std::string log_path, out_path, name, value;
        for (int i = 0; i < argc; ++i) {
            if (takeValue(argc, argv, i, "--out", value)) {
                out_path = value;
            } else if (takeValue(argc, argv, i, "--name", value)) {
                name = value;
            } else if (std::strcmp(argv[i], "--quiet") == 0) {
                setLogLevel(LogLevel::Quiet);
            } else if (argv[i][0] == '-') {
                std::fprintf(stderr, "eole: unknown option %s\n",
                             argv[i]);
                return usage(stderr, 2);
            } else if (log_path.empty()) {
                log_path = argv[i];
            } else {
                std::fprintf(stderr,
                             "eole: trace ingest takes one log file\n");
                return 2;
            }
        }
        if (log_path.empty() || out_path.empty()) {
            std::fprintf(stderr, "eole: trace ingest needs a log file "
                         "and --out <file>\n");
            return 2;
        }
        if (name.empty()) {
            // Canonical name defaults to the log's stem under an rv64:
            // prefix — addressable like torture:<seed>, and it cannot
            // shadow a registry benchmark by accident.
            name = "rv64:"
                + std::filesystem::path(log_path).stem().string();
        }
        if (name.size() >= traceFileNameBytes) {
            std::fprintf(stderr, "eole: --name \"%s\" is too long for "
                         "the trace header (max %zu bytes)\n",
                         name.c_str(), traceFileNameBytes - 1);
            return 2;
        }
        std::string err;
        const auto trace = ingestRv64LogFile(log_path, name, &err);
        if (!trace) {
            std::fprintf(stderr, "eole: %s: %s\n", log_path.c_str(),
                         err.c_str());
            return 2;
        }
        if (!writeTraceFile(*trace, out_path, "rv64i", &err)) {
            std::fprintf(stderr, "eole: %s\n", err.c_str());
            return 2;
        }
        std::printf("wrote %s: workload %s, %zu µ-ops ingested from "
                    "%s\n", out_path.c_str(), name.c_str(),
                    trace->uops.size(), log_path.c_str());
        return 0;
    }

    std::fprintf(stderr, "eole: unknown trace subcommand \"%s\" "
                 "(record | info | ingest)\n", sub.c_str());
    return usage(stderr, 2);
}

int
cmdTelemetry(int argc, char **argv)
{
    if (argc < 1 || std::strcmp(argv[0], "summarize") != 0) {
        std::fprintf(stderr,
                     "eole: telemetry needs: summarize <file.jsonl>"
                     "...\n");
        return usage(stderr, 2);
    }
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (argv[i][0] == '-') {
            std::fprintf(stderr, "eole: unknown option %s\n", argv[i]);
            return usage(stderr, 2);
        }
        paths.emplace_back(argv[i]);
    }
    if (paths.empty()) {
        std::fprintf(stderr,
                     "eole: telemetry summarize needs file(s)\n");
        return 2;
    }
    summarizeTelemetry(paths, std::cout);
    return 0;
}

int
cmdDiff(int argc, char **argv)
{
    std::vector<std::string> paths;
    DiffOptions opt;
    std::string value;
    for (int i = 0; i < argc; ++i) {
        if (takeValue(argc, argv, i, "--rel-tol", value)) {
            opt.relTol = std::strtod(value.c_str(), nullptr);
        } else if (takeValue(argc, argv, i, "--abs-tol", value)) {
            opt.absTol = std::strtod(value.c_str(), nullptr);
        } else if (std::strcmp(argv[i], "--ci") == 0) {
            opt.ciOverlap = true;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "eole: unknown option %s\n", argv[i]);
            return usage(stderr, 2);
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.size() != 2)
        return usage(stderr, 2);

    const PlanResult a = readJsonArtifactFile(paths[0]);
    const PlanResult b = readJsonArtifactFile(paths[1]);
    const std::size_t diffs = diffArtifacts(a, b, opt, std::cout);
    if (diffs == 0) {
        std::printf("artifacts agree: %zu cells (%s vs %s)\n",
                    a.cells.size(), paths[0].c_str(), paths[1].c_str());
        return 0;
    }
    std::printf("%zu difference(s) between %s and %s\n", diffs,
                paths[0].c_str(), paths[1].c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(stderr, 2);
    const std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList(argc - 2, argv + 2);
    if (cmd == "describe")
        return cmdDescribe(argc - 2, argv + 2);
    if (cmd == "run")
        return cmdRun(argc - 2, argv + 2, /*shard_mode=*/false);
    if (cmd == "shard")
        return cmdRun(argc - 2, argv + 2, /*shard_mode=*/true);
    if (cmd == "merge")
        return cmdMerge(argc - 2, argv + 2);
    if (cmd == "store")
        return cmdStore(argc - 2, argv + 2);
    if (cmd == "bench")
        return cmdBench(argc - 2, argv + 2);
    if (cmd == "diff")
        return cmdDiff(argc - 2, argv + 2);
    if (cmd == "ckpt")
        return cmdCkpt(argc - 2, argv + 2);
    if (cmd == "trace")
        return cmdTrace(argc - 2, argv + 2);
    if (cmd == "telemetry")
        return cmdTelemetry(argc - 2, argv + 2);
    if (cmd == "--version" || cmd == "version") {
        std::printf("eole %s\n", buildInfoString().c_str());
        return 0;
    }
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
        return usage(stdout, 0);
    std::fprintf(stderr, "eole: unknown command \"%s\"\n", cmd.c_str());
    return usage(stderr, 2);
}
