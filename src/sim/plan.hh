/**
 * @file
 * ExperimentPlan: a declarative (configuration x workload) sweep grid.
 *
 * A plan is pure data — configs, workload names, run lengths, a base
 * seed and the paper-style tables to print — expanded by the sweep
 * engine (sim/sweep.hh) into independent jobs. Every figure of the
 * paper is a named plan in sim/plans.hh; the per-figure bench binaries
 * and the `eole` CLI both drive plans through the same engine. Plans
 * can also be authored as text (sim/planfile.hh, `eole run --plan`):
 * a base config plus axes of registry keys (sim/params.hh) expands to
 * the same structure without recompiling.
 *
 * Seeding discipline: each job's SimConfig::seed is derived
 * deterministically from (plan seed, config seed, config name,
 * workload name), so a cell's random streams (FPC transitions,
 * predictor tie-breaks) do not depend on job scheduling, worker count
 * or execution order — the foundation of the engine's
 * bit-identical-regardless-of-`--jobs` guarantee.
 */

#ifndef EOLE_SIM_PLAN_HH
#define EOLE_SIM_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace eole {

/**
 * Systematic-sampling parameters (SMARTS-style; see DESIGN.md §8 and
 * sim/sample/sample.hh): N measurement intervals of W µops, each
 * preceded by D µops of detailed warmup, carved out of a plan cell's
 * measured region. Functional warming covers the stream between the
 * warming-window start and the detailed warmup — the whole skipped
 * prefix when warmBound is 0 (the default: classic SMARTS continuous
 * warming, the reference-fidelity mode the validation suite pins),
 * else at most warmBound µ-ops before each interval (a bounded
 * MRRL-style refinement that caps per-interval cost; accurate only
 * for workloads whose predictor state has short memory — see
 * DESIGN.md §8). The zero value (disabled()) means "full run".
 */
struct SampleSpec
{
    std::uint64_t intervals = 0;     //!< N: measurement intervals
    std::uint64_t intervalUops = 0;  //!< W: measured µ-ops per interval
    std::uint64_t detailUops = 0;    //!< D: detailed-warmup µ-ops each
    std::uint64_t warmBound = 0;     //!< B: warming window (0 = all)

    bool enabled() const { return intervals > 0 && intervalUops > 0; }
};

/**
 * Parse "N:W:D[:B]" (or "N:W", D defaulting to W/2) into a
 * SampleSpec. B defaults to 0 = unbounded (full-prefix) functional
 * warming. Fatal on malformed input or N == 0 / W == 0.
 */
SampleSpec parseSampleSpec(const std::string &text);

/** As parseSampleSpec, but returns false with a diagnostic in @p err
 *  instead of dying — the operator-facing form behind the plan-file
 *  `sample =` directive's line-numbered exit-2 errors. */
bool tryParseSampleSpec(const std::string &text, SampleSpec *out,
                        std::string *err);

/** Canonical "N:W:D:B" form (inverse of parseSampleSpec). */
std::string sampleSpecString(const SampleSpec &spec);

/**
 * Resolve the effective sampling spec with the same precedence
 * discipline as resolveRunLength (common/env.hh): an explicitly given
 * spec (CLI --sample) wins over the plan's own (plan-file `sample =`
 * directive); a disabled spec means "unset" at every level, so a plan
 * without a sample directive resolves to "full run" unless the CLI
 * asks otherwise. The one spelling of this precedence, shared by
 * `eole run` and `eole ckpt save`.
 */
SampleSpec resolveSampleSpec(const SampleSpec &option_spec,
                             const SampleSpec &plan_spec);

/**
 * One host's slice of a sharded sweep (sim/shard.hh, `eole shard`):
 * cells whose shardOfCell lands on @c host run here, every other cell
 * is skipped. The default (hosts == 0) disables sharding. Ownership is
 * a pure function of the plan seed and the cell identity, so N hosts
 * can each compute their own slice with no coordinator and no two
 * hosts ever run (or miss) the same cell.
 */
struct ShardSlice
{
    std::uint64_t hosts = 0;  //!< total hosts (0 = sharding disabled)
    std::uint64_t host = 0;   //!< this host's index in [0, hosts)

    bool enabled() const { return hosts > 0; }

    /** Does this slice own the cell? True for every cell when
     *  disabled. */
    bool owns(std::uint64_t plan_seed, std::uint64_t config_seed,
              const std::string &config,
              const std::string &workload) const;
};

/**
 * Deterministic shard assignment of one cell: a pure function of the
 * plan seed and the cell identity (the jobSeed inputs), remixed so the
 * partition is decorrelated from the random streams the cell runs
 * with, reduced mod @p hosts. Stable across platforms, filters and
 * enumeration order — the foundation of coordinator-free sharding.
 */
std::uint64_t shardOfCell(std::uint64_t plan_seed,
                          std::uint64_t config_seed,
                          const std::string &config,
                          const std::string &workload,
                          std::uint64_t hosts);

/** One paper-style table over the grid (see printPlanTables). */
struct TableSpec
{
    std::string title;
    std::string stat;            //!< StatRecord name, e.g. "ipc"
    std::vector<std::string> columns;  //!< config names, column order
    std::string normalizeTo;     //!< config dividing each row ("" = abs)
};

/** Declarative sweep grid. */
struct ExperimentPlan
{
    std::string name;
    std::string description;
    std::vector<SimConfig> configs;        //!< names must be unique
    std::vector<std::string> workloads;    //!< registry names
    std::uint64_t seed = 1;                //!< base for per-job seeds
    std::uint64_t warmup = 0;              //!< µ-ops; 0 = EOLE_WARMUP
    std::uint64_t measure = 0;             //!< µ-ops; 0 = EOLE_INSTS
    /** Default sampling spec (plan-file `sample =` directive);
     *  disabled = full run. CLI --sample overrides it through
     *  resolveSampleSpec. */
    SampleSpec sample;
    /** Per-config measured-length overrides (plan-file
     *  `runlen <config> = N` directive): cells of that config run N
     *  measured µ-ops instead of the plan-level `measure`. Resolved
     *  through resolveMeasureFor; CLI --insts still beats them. */
    std::vector<std::pair<std::string, std::uint64_t>> runlens;
    std::vector<TableSpec> tables;

    std::size_t gridSize() const { return configs.size() * workloads.size(); }

    /** The `runlen` override declared for @p config (0 = none). */
    std::uint64_t runlenFor(const std::string &config) const;
};

/**
 * Effective measured length for one config's cells, extending the
 * common/env.hh precedence chain with the per-config plan override:
 *
 *   explicit option (CLI --insts)
 *     > plan `runlen <config> = N`
 *       > plan `measure`
 *         > EOLE_INSTS
 *           > built-in default
 */
std::uint64_t resolveMeasureFor(std::uint64_t option_measure,
                                const ExperimentPlan &plan,
                                const std::string &config);

/**
 * Deterministic per-job seed: a function of the plan seed, the
 * config's own seed knob and the cell's (config, workload) identity
 * only — never of scheduling. Stable across platforms, thread counts
 * and job orderings. Folding in SimConfig::seed keeps configs that
 * differ only in their seed distinguishable (seed studies).
 */
std::uint64_t jobSeed(std::uint64_t plan_seed, std::uint64_t config_seed,
                      const std::string &config,
                      const std::string &workload);

/**
 * Upper bound on µ-ops fetched but not yet committed under any of the
 * plan's configurations (front-end pipe + rename buffer + ROB, plus
 * slack). Used to size frozen-trace recordings so a replay never runs
 * off the end of the prefix.
 */
std::uint64_t maxInflightUops(const ExperimentPlan &plan);

/** Does "config/workload" contain @p filter (empty matches all)? */
bool cellMatches(const std::string &filter, const std::string &config,
                 const std::string &workload);

} // namespace eole

#endif // EOLE_SIM_PLAN_HH
