/**
 * @file
 * EOLE_PROF-gated tick-loop profiler.
 *
 * A fixed set of sections (one per pipeline stage tick, plus the
 * predictor-model, memory-hierarchy, and functional-warming phases)
 * accumulate wall nanoseconds in relaxed atomics. The whole facility
 * hides behind one global bool: when profiling is off, a ScopedTimer
 * costs a single predictable branch and no clock reads, so leaving the
 * instrumentation compiled into the hot tick loop is free (the bench
 * lane enforces this).
 *
 * Nesting: the Model* sections time model calls made *inside* stage
 * ticks (e.g. the value-predictor lookup inside fetch), so they are
 * nested within the Stage* sections and must not be added to them when
 * reconciling against total run time. The self-consistency invariant is
 * over the top-level sections only: sum(Stage*) + sum(Warm*) <= total
 * measured wall time (modulo clock-read overhead).
 *
 * Enabled via EOLE_PROF=1 in the environment or setEnabled(true)
 * (`eole bench --profile` uses the latter).
 */

#ifndef EOLE_COMMON_PROFILER_HH
#define EOLE_COMMON_PROFILER_HH

#include <chrono>
#include <cstdint>

namespace eole {
namespace prof {

enum Section : int {
    StageFetch,
    StageRename,
    StageDispatch,
    StageIssue,
    StageCompletion,
    StageLevt,
    StageCommit,
    StageOther,      ///< a replaced/experimental stage with an unknown name
    ModelVpred,      ///< value-predictor lookup/train (nested in stages)
    ModelBpred,      ///< branch-predictor lookup/train (nested in stages)
    ModelMem,        ///< memory-hierarchy accesses (nested in stages)
    WarmFunctional,  ///< functional warming walk (predictor/memory updates)
    WarmRestore,     ///< warm-state checkpoint restore
    NumSections,
};

/** Dotted stable name, e.g. "stage.issue", "model.vpred". */
const char *sectionName(Section s);

/** Map a Stage::name() string to its section (StageOther if unknown). */
Section stageSection(const char *stage_name);

/** True when profiling is on (EOLE_PROF=1 at first query, or setEnabled). */
bool enabled();
void setEnabled(bool on);

/** Zero all section accumulators. */
void reset();

/** Accumulated nanoseconds / timer count for one section. */
std::uint64_t sectionNanos(Section s);
std::uint64_t sectionCount(Section s);

void add(Section s, std::uint64_t nanos);

/**
 * Times one section for the enclosing scope. When profiling is
 * disabled the constructor takes one branch and the destructor another;
 * no clocks are read.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Section s)
        : section_(s), active_(enabled())
    {
        if (active_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedTimer()
    {
        if (active_) {
            const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_).count();
            add(section_, static_cast<std::uint64_t>(ns));
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Section section_;
    bool active_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace prof
} // namespace eole

#endif // EOLE_COMMON_PROFILER_HH
