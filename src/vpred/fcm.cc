#include "vpred/fcm.hh"

namespace eole {

FcmPredictor::FcmPredictor(const VpConfig &config, std::uint64_t seed)
    : histTable(1u << config.fcmHistLog2Entries),
      valueTable(1u << config.fcmValueLog2Entries),
      histMask((1u << config.fcmHistLog2Entries) - 1),
      valueMask((1u << config.fcmValueLog2Entries) - 1),
      fpc(config.fpcVector.empty() ? Fpc::paperVector() : config.fpcVector),
      rng(seed)
{
}

std::uint32_t
FcmPredictor::histIndex(Addr pc) const
{
    return static_cast<std::uint32_t>(pc >> 2) & histMask;
}

std::uint32_t
FcmPredictor::foldValue(RegVal v) const
{
    // Mangle the 64-bit value down to the context-hash contribution.
    std::uint64_t x = v * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::uint32_t>(x >> 40);
}

VpLookup
FcmPredictor::predict(Addr pc)
{
    VpLookup l;
    const HistEntry &h = histTable[histIndex(pc)];
    l.idx[0] = histIndex(pc);
    if (h.valid && h.tag == pc) {
        const std::uint32_t vidx = h.ctx & valueMask;
        l.idx[1] = vidx;
        const ValueEntry &v = valueTable[vidx];
        l.predictionMade = true;
        l.value = v.value;
        l.confident = fpc.saturated(v.conf);
    }
    return l;
}

void
FcmPredictor::commit(Addr pc, RegVal actual, const VpLookup &lookup)
{
    HistEntry &h = histTable[lookup.idx[0]];
    if (!h.valid || h.tag != pc) {
        h = HistEntry{};
        h.tag = pc;
        h.valid = true;
        h.ctx = foldValue(actual);
        return;
    }
    if (lookup.predictionMade) {
        // Second level was read through the context captured at lookup.
        ValueEntry &v = valueTable[lookup.idx[1]];
        const bool correct = lookup.value == actual;
        fpc.update(v.conf, correct, rng);
        if (!correct && v.conf == 0)
            v.value = actual;
    } else {
        // First sighting of this context: install the value.
        ValueEntry &v = valueTable[h.ctx & valueMask];
        if (v.conf == 0)
            v.value = actual;
    }
    // Advance the per-PC context with the committed value (order-N
    // shift-and-fold).
    h.ctx = ((h.ctx << 7) | (h.ctx >> 25)) ^ foldValue(actual);
}

} // namespace eole
