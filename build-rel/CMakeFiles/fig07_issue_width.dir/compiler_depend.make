# Empty compiler generated dependencies file for fig07_issue_width.
# This may be replaced when dependencies are built.
