#include "pipeline/stages/rename.hh"

#include "common/pipetrace.hh"
#include "isa/functional.hh"
#include "pipeline/pipeline_state.hh"

namespace eole {

RenameStage::RenameStage(const SimConfig &cfg)
    : renameWidth(cfg.renameWidth), dispatchWidth(cfg.dispatchWidth),
      prfBanks(cfg.prfBanks), earlyExec(cfg.earlyExec),
      lateExec(cfg.lateExec), lateExecBranches(cfg.lateExecBranches),
      ee(cfg.eeStages)
{
}

void
RenameStage::tick(PipelineState &st)
{
    renameGroup.clear();

    while (static_cast<int>(renameGroup.size()) < renameWidth
           && st.renameOut.size() < 2 * static_cast<size_t>(dispatchWidth)
           && st.frontPipe.canPop(st.now)) {
        const DynInstPtr &peek = st.frontPipe.front();

        // Banked free-list check before consuming the µ-op.
        const bool has_dst = peek->uop().hasDst()
            && !(peek->uop().dstClass == RegClass::Int && peek->uop().dst == 0);
        int bank = 0;
        if (has_dst) {
            bank = st.bankCursor % prfBanks;
            if (!st.prfOf(peek->uop().dstClass).bankHasFree(bank)) {
                ++s.renameBankStalls;
                break;
            }
        }

        DynInstPtr di = st.frontPipe.pop(st.now);
        if (renameGroup.empty())
            ee.beginGroup();

        // Rename sources.
        for (int i = 0; i < 2; ++i) {
            const RegIndex src = i == 0 ? di->uop().src1 : di->uop().src2;
            if (src == invalidReg)
                continue;
            di->physSrc[i] = st.mapOf(di->uop().srcClass[i]).lookup(src);
        }

        // Rename destination (bank-aware round-robin allocation).
        if (has_dst) {
            PhysRegFile &f = st.prfOf(di->uop().dstClass);
            const RegIndex phys = f.allocFromBank(bank);
            di->physDst = phys;
            di->oldPhysDst = st.mapOf(di->uop().dstClass).rename(di->uop().dst,
                                                               phys);
            f.markPending(phys);
            ++st.bankCursor;
        } else if (di->uop().hasDst()) {
            // Write to the int zero register: architecturally dropped.
            di->dstDropped = true;
        }
        di->renamed = true;

        // --- Early Execution (parallel with Rename, §3.2) ---
        if (earlyExec)
            (void)tryEarlyExecute(*di);

        // Publish bypass/prediction operands for EE consumers.
        if (di->physDst != invalidReg) {
            if (di->earlyExecuted) {
                ee.publish(di->uop().dstClass, di->physDst,
                           di->computedValue);
            } else if (di->predictionUsed) {
                ee.publish(di->uop().dstClass, di->physDst,
                           di->predictedValue);
            }
        }

        // --- Late Execution routing (§3.3) ---
        if (lateExec && !di->earlyExecuted && di->predictionUsed
            && isSingleCycleAlu(di->uop().opc)) {
            di->lateExecAlu = true;
        }
        if (lateExec && lateExecBranches && di->uop().isCondBr()
            && di->bp.highConf) {
            di->lateExecBranch = true;
        }

        // Store Sets bookkeeping (rename order = program order).
        if (di->isLoad() || di->isStore())
            di->dependsOnStore = st.ssets.lookupDependence(di->uop().pc);
        if (di->isStore())
            st.ssets.insertStore(di->uop().pc, di->seq);

        renameGroup.push_back(di.get());
        st.renameOut.push_back(std::move(di));
    }

    // Optional second EE stage (Fig 2): retry non-executed µ-ops with
    // the first stage's results visible.
    if (earlyExec && ee.stages() > 1) {
        for (DynInst *di : renameGroup) {
            if (di->earlyExecuted)
                continue;
            if (tryEarlyExecute(*di)) {
                ee.publish(di->uop().dstClass, di->physDst,
                           di->computedValue);
                di->lateExecAlu = false;
            }
        }
    }

    // Trace after the second-EE retry so the EE/LE disposition each
    // µ-op will carry through the pipeline is final.
    if (st.tracer) {
        for (const DynInst *di : renameGroup) {
            if (!st.tracer->wants(di->seq))
                continue;
            const char *annot = di->earlyExecuted ? "ee"
                : di->lateExecAlu ? "le=alu"
                : di->lateExecBranch ? "le=br" : "";
            st.tracer->event(st.now, di->seq, PipeEvent::Rename, annot);
        }
    }
}

bool
RenameStage::tryEarlyExecute(DynInst &di)
{
    if (!isSingleCycleAlu(di.uop().opc) || di.physDst == invalidReg)
        return false;

    RegVal vals[2] = {0, 0};
    for (int i = 0; i < 2; ++i) {
        const RegIndex src = i == 0 ? di.uop().src1 : di.uop().src2;
        if (src == invalidReg)
            continue;
        // The int zero register is a constant (like an immediate).
        if (di.uop().srcClass[i] == RegClass::Int && src == 0)
            continue;
        if (!ee.available(di.uop().srcClass[i], di.physSrc[i], vals[i]))
            return false;
    }

    di.computedValue = execAlu(di.uop().opc, vals[0], vals[1], di.uop().imm);
    di.hasComputedValue = true;
    di.earlyExecuted = true;
    return true;
}

void
RenameStage::squash(PipelineState &st, SeqNum keep_seq, Cycle)
{
    // Youngest first: the rename-out buffer holds µ-ops younger than
    // anything in the ROB, so its map restores must run before the ROB
    // walk (PipelineState::squashAfter orders this stage first).
    while (!st.renameOut.empty() && st.renameOut.back()->seq > keep_seq) {
        DynInstPtr di = st.renameOut.back();
        st.renameOut.pop_back();
        st.undoRename(di);
        st.markSquashed(di);
    }
    ee.reset();
}

void
RenameStage::onFetchRedirect(PipelineState &)
{
    ee.reset();
}

void
RenameStage::resetStats()
{
    s = Stats{};
}

void
RenameStage::addStats(CoreStats &out) const
{
    out.renameBankStalls += s.renameBankStalls;
}

} // namespace eole
