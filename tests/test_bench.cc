/**
 * @file
 * Tests for the µops/sec bench harness (sim/bench.hh): artifact
 * round-trip and byte stability, the compare report's speedup math,
 * and a small live run checking the measured cells are sane and that
 * a bench cell simulates exactly what the sweep engine would for the
 * same identity (same committed work and IPC).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/bench.hh"
#include "sim/configs.hh"
#include "sim/plans.hh"
#include "sim/sweep.hh"

using namespace eole;

namespace {

BenchResult
sampleResult()
{
    BenchResult r;
    r.label = "sample";
    r.budget = 1000;
    r.warmup = 100;
    r.reps = 2;
    r.cells.push_back(
        BenchCell{"CfgA", "wl1", 1000, 0.5, 2000.0, 1.25});
    r.cells.push_back(
        BenchCell{"CfgA", "wl2", 1000, 0.25, 4000.0, 0.75});
    r.cells.push_back(
        BenchCell{"CfgB", "wl1", 900, 0.1, 9000.0, 2.0});
    return r;
}

} // namespace

TEST(Bench, Geomean)
{
    const BenchResult r = sampleResult();
    // geomean(2000, 4000, 9000) = cbrt(2000*4000*9000)
    EXPECT_NEAR(r.geomeanUopsPerSec(), 4160.17, 0.01);
    EXPECT_EQ(BenchResult{}.geomeanUopsPerSec(), 0.0);
}

TEST(Bench, JsonRoundTrip)
{
    const BenchResult r = sampleResult();
    const std::string text = benchJsonString(r);

    std::istringstream is(text);
    const BenchResult back = readBenchJson(is);
    EXPECT_EQ(back.label, r.label);
    EXPECT_EQ(back.budget, r.budget);
    EXPECT_EQ(back.warmup, r.warmup);
    EXPECT_EQ(back.reps, r.reps);
    ASSERT_EQ(back.cells.size(), r.cells.size());
    for (std::size_t i = 0; i < r.cells.size(); ++i) {
        EXPECT_EQ(back.cells[i].config, r.cells[i].config);
        EXPECT_EQ(back.cells[i].workload, r.cells[i].workload);
        EXPECT_EQ(back.cells[i].uops, r.cells[i].uops);
        // %.17g round-trips IEEE doubles exactly.
        EXPECT_EQ(back.cells[i].secondsMin, r.cells[i].secondsMin);
        EXPECT_EQ(back.cells[i].uopsPerSec, r.cells[i].uopsPerSec);
        EXPECT_EQ(back.cells[i].ipc, r.cells[i].ipc);
    }

    // Canonical form: re-serializing the parsed result reproduces the
    // artifact byte for byte.
    EXPECT_EQ(benchJsonString(back), text);
}

TEST(Bench, FindMatchesIdentity)
{
    const BenchResult r = sampleResult();
    ASSERT_NE(r.find("CfgB", "wl1"), nullptr);
    EXPECT_EQ(r.find("CfgB", "wl1")->uops, 900u);
    EXPECT_EQ(r.find("CfgB", "wl2"), nullptr);
    EXPECT_EQ(r.find("nope", "wl1"), nullptr);
}

TEST(Bench, CompareSpeedupMath)
{
    const BenchResult a = sampleResult();
    BenchResult b = sampleResult();
    b.label = "after";
    b.cells[0].uopsPerSec = 4000.0;  // 2.0x
    b.cells[1].uopsPerSec = 2000.0;  // 0.5x
    b.cells.pop_back();              // CfgB/wl1 only in a
    b.cells.push_back(BenchCell{"CfgC", "wl1", 1, 1.0, 1.0, 1.0});

    std::ostringstream os;
    const double g = compareBench(a, b, os);
    EXPECT_DOUBLE_EQ(g, 1.0);  // geomean(2.0, 0.5)

    const std::string report = os.str();
    EXPECT_NE(report.find("2.00x"), std::string::npos);
    EXPECT_NE(report.find("0.50x"), std::string::npos);
    EXPECT_NE(report.find("only-a"), std::string::npos);
    EXPECT_NE(report.find("only-b"), std::string::npos);
    EXPECT_NE(report.find("geomean speedup (2 common cell(s))"),
              std::string::npos);
}

TEST(Bench, CompareDisjointCellsIsZero)
{
    BenchResult a = sampleResult();
    BenchResult b;
    b.cells.push_back(BenchCell{"Other", "wl9", 1, 1.0, 1.0, 1.0});
    std::ostringstream os;
    EXPECT_EQ(compareBench(a, b, os), 0.0);
}

TEST(Bench, LiveRunMatchesSweepBehavior)
{
    // A tiny real measurement: one config, one workload, two reps.
    BenchOptions opt;
    opt.configs = {"Baseline_4_48"};
    opt.workloads = {"164.gzip"};
    opt.budget = 20000;
    opt.warmup = 2000;
    opt.reps = 2;
    opt.quiet = true;
    const BenchResult r = runBench(opt);

    ASSERT_EQ(r.cells.size(), 1u);
    const BenchCell &cell = r.cells[0];
    EXPECT_EQ(cell.config, "Baseline_4_48");
    EXPECT_EQ(cell.workload, "164.gzip");
    // Commit is multi-wide: the run stops at the first cycle boundary
    // at or past the budget, so the committed count may overshoot by
    // up to (commit width - 1) µ-ops.
    EXPECT_GE(cell.uops, opt.budget);
    EXPECT_LT(cell.uops, opt.budget + 8);
    EXPECT_GT(cell.secondsMin, 0.0);
    EXPECT_GT(cell.uopsPerSec, 0.0);
    EXPECT_GT(cell.ipc, 0.0);

    // The bench cell's simulated behavior must be exactly the sweep
    // engine's for the same (config, workload, seed, run lengths) —
    // the bench times the real thing, not a variant of it.
    ExperimentPlan p;
    p.name = "bench-mirror";
    SimConfig c;
    ASSERT_TRUE(configs::findNamed("Baseline_4_48", &c));
    p.configs = {c};
    p.workloads = {"164.gzip"};
    p.warmup = opt.warmup;
    p.measure = opt.budget;
    const PlanResult sweep = runPlan(p);
    ASSERT_EQ(sweep.cells.size(), 1u);
    EXPECT_DOUBLE_EQ(cell.ipc, sweep.cells[0].ipc());
    EXPECT_EQ(static_cast<std::uint64_t>(
                  sweep.cells[0].stats.get("committed_uops")),
              cell.uops);
}
