file(REMOVE_RECURSE
  "CMakeFiles/fig02_early_exec.dir/bench/fig02_early_exec.cc.o"
  "CMakeFiles/fig02_early_exec.dir/bench/fig02_early_exec.cc.o.d"
  "fig02_early_exec"
  "fig02_early_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_early_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
