/**
 * @file
 * Set-associative cache model with MSHRs and LRU replacement.
 *
 * The model is a timing oracle: access() returns the cycle at which the
 * requested line is available at this level, allocating MSHRs and
 * recursing into the next level on a miss. Contents are not stored
 * (the simulator's dataflow carries values); only tags, LRU state,
 * dirtiness and outstanding-miss bookkeeping are modeled.
 */

#ifndef EOLE_MEM_CACHE_HH
#define EOLE_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/snapshot.hh"

namespace eole {

/** One cache level's geometry (Table 1 defaults belong to the caller).
 *  String-addressable per level ("mem.l1d.sizeBytes", ...) via the
 *  parameter registry (sim/params.hh); new fields must be registered
 *  there, once per level prefix. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint32_t sizeBytes = 32 * 1024;
    int ways = 4;
    std::uint32_t lineBytes = 64;
    Cycle latency = 2;       //!< hit latency
    int mshrs = 64;          //!< max outstanding misses
};

class Cache
{
  public:
    /** Next-level access function: (lineAddr, isWrite, now) -> ready. */
    using NextLevelFn = std::function<Cycle(Addr, bool, Cycle)>;

    Cache(const CacheConfig &config, NextLevelFn next_level);

    /**
     * Access @p addr (any byte inside a line) at cycle @p now.
     *
     * @param is_write stores dirty the line (write-allocate/write-back)
     * @return cycle at which the data is available at this level
     */
    Cycle access(Addr addr, bool is_write, Cycle now);

    /** Is the line present and filled by cycle @p now? (no state change) */
    bool probe(Addr addr, Cycle now) const;

    /**
     * Install a line without a demand requester (prefetch). Returns the
     * fill-completion cycle; does nothing if the line is present or
     * MSHRs are exhausted.
     */
    Cycle prefetch(Addr addr, Cycle now);

    /** Demand-access observer (address, isWrite, now) for prefetchers. */
    void
    setAccessObserver(std::function<void(Addr, bool, Cycle)> obs)
    {
        observer = std::move(obs);
    }

    StatRecord record() const;

    std::uint64_t hits() const { return statHits; }
    std::uint64_t misses() const { return statMisses; }

    /**
     * Serialize tags, LRU, dirtiness, fill times and the in-flight
     * MSHR list (canonical text; isa/snapshot.hh). Statistic counters
     * are excluded — they are measurement state, zeroed by
     * Core::resetTiming before any measured window.
     */
    void snapshotState(std::ostream &os) const;

    /** Restore into a same-geometry cache (fatal with section/line
     *  context on mismatch). */
    void restoreState(SnapshotReader &r);

    /** Zero the statistic counters; tags/LRU/MSHR state is kept (used
     *  by Core::resetTiming to open a measurement window on a warmed
     *  cache). */
    void
    resetStats()
    {
        statHits = statMisses = statMshrMerges = 0;
        statMshrStalls = statWritebacks = statPrefetches = 0;
    }

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t tag = 0;
        bool dirty = false;
        std::uint64_t lru = 0;
        Cycle readyAt = 0;   //!< fill completion (MSHR semantics)
    };

    std::uint32_t setOf(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;
    Addr lineAddrOf(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;
    /** Drop completed fills from the in-flight list. */
    void reapInflight(Cycle now);
    Cycle fill(Addr addr, bool is_write, Cycle now);

    CacheConfig cfg;
    NextLevelFn next;
    std::function<void(Addr, bool, Cycle)> observer;
    std::uint32_t numSets;
    std::vector<Line> lines;
    std::vector<Cycle> inflight;  //!< fill-completion times (<= mshrs)
    std::uint64_t lruClock = 0;

    std::uint64_t statHits = 0;
    std::uint64_t statMisses = 0;
    std::uint64_t statMshrMerges = 0;
    std::uint64_t statMshrStalls = 0;
    std::uint64_t statWritebacks = 0;
    std::uint64_t statPrefetches = 0;
};

} // namespace eole

#endif // EOLE_MEM_CACHE_HH
