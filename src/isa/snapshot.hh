/**
 * @file
 * Canonical text helpers for microarchitectural state snapshots
 * (WarmableComponent::snapshotState / restoreState, isa/warmable.hh).
 *
 * Snapshots are byte-stable line-oriented text, like the architectural
 * checkpoint schema (eole-ckpt-v1): every line is a tag word followed
 * by space-separated fields, integers in hex (sign-prefixed when
 * negative), so re-serializing a restored component reproduces the
 * exact bytes. SnapshotWriter centralizes the number formatting (and
 * keeps component code free of iostream format-flag juggling);
 * SnapshotReader is the strict line-by-line parser whose every
 * diagnostic carries the section name and 1-based line number — a
 * corrupted or truncated section must be a precise operator-facing
 * error, never UB or a silent misparse (pinned by
 * tests/test_ckpt_state.cc).
 */

#ifndef EOLE_ISA_SNAPSHOT_HH
#define EOLE_ISA_SNAPSHOT_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/logging.hh"

namespace eole {

/** Strict lowercase-hex u64 parse (no prefix, at most 16 digits —
 *  cannot wrap). Shared by SnapshotReader and the checkpoint framing
 *  parser so both layers agree on what a number is. */
inline bool
snapshotParseHex(const std::string &w, std::uint64_t *out)
{
    if (w.empty() || w.size() > 16)
        return false;
    std::uint64_t v = 0;
    for (char c : w) {
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else
            return false;
        v = (v << 4) | static_cast<std::uint64_t>(d);
    }
    *out = v;
    return true;
}

/** Line-oriented canonical-text emitter for component snapshots. */
class SnapshotWriter
{
  public:
    explicit SnapshotWriter(std::ostream &os_) : os(os_) {}

    /** Start a line with its tag word. */
    SnapshotWriter &
    tag(const char *t)
    {
        os << t;
        return *this;
    }

    /** One unsigned field, canonical lowercase hex. */
    SnapshotWriter &
    u64(std::uint64_t v)
    {
        char buf[20];
        char *p = buf + sizeof(buf);
        *--p = '\0';
        do {
            *--p = "0123456789abcdef"[v & 0xf];
            v >>= 4;
        } while (v);
        os << ' ' << p;
        return *this;
    }

    /** One signed field: '-' prefix + hex magnitude. */
    SnapshotWriter &
    i64(std::int64_t v)
    {
        if (v < 0) {
            os << ' ' << '-';
            // Emit the magnitude without the field separator u64 adds.
            std::uint64_t m = static_cast<std::uint64_t>(-(v + 1)) + 1;
            char buf[20];
            char *p = buf + sizeof(buf);
            *--p = '\0';
            do {
                *--p = "0123456789abcdef"[m & 0xf];
                m >>= 4;
            } while (m);
            os << p;
            return *this;
        }
        return u64(static_cast<std::uint64_t>(v));
    }

    /** One raw string field (must contain no whitespace). */
    SnapshotWriter &
    str(const std::string &s)
    {
        os << ' ' << s;
        return *this;
    }

    /** One boolean field (0/1). */
    SnapshotWriter &
    flag(bool b)
    {
        os << ' ' << (b ? '1' : '0');
        return *this;
    }

    /** Terminate the current line. */
    void end() { os << '\n'; }

  private:
    std::ostream &os;
};

/**
 * Strict parser over a snapshot section. Reads one line at a time
 * (line() checks the tag word), then extracts fields in order; any
 * mismatch, missing field, trailing garbage or premature end of the
 * stream is a fatal diagnostic of the form
 * "<section> snapshot line <N>: <what went wrong>".
 */
class SnapshotReader
{
  public:
    SnapshotReader(std::istream &is_, const std::string &section_)
        : is(is_), section(section_)
    {
    }

    /** Advance to the next line and require its tag word. */
    void
    line(const char *tag)
    {
        if (!std::getline(is, text))
            fail(csprintf("truncated: expected a '%s' line", tag));
        ++lineno;
        pos = 0;
        const std::string got = word(tag);
        if (got != tag)
            fail(csprintf("expected tag '%s', got \"%s\"", tag,
                          got.c_str()));
    }

    /** Next unsigned hex field of the current line. */
    std::uint64_t
    u64(const char *what)
    {
        const std::string w = word(what);
        std::uint64_t v = 0;
        if (!snapshotParseHex(w, &v))
            fail(csprintf("field '%s': bad value \"%s\"", what,
                          w.c_str()));
        return v;
    }

    /** As u64, but reject values above @p max — restores must never
     *  narrow silently (the strict-validation contract). */
    std::uint64_t
    u64Max(const char *what, std::uint64_t max)
    {
        const std::uint64_t v = u64(what);
        if (v > max)
            fail(csprintf("field '%s': value out of range", what));
        return v;
    }

    /** Next signed field ('-' prefix + hex magnitude). */
    std::int64_t
    i64(const char *what)
    {
        std::string w = word(what);
        bool neg = false;
        if (!w.empty() && w[0] == '-') {
            neg = true;
            w.erase(0, 1);
        }
        std::uint64_t m = 0;
        if (!snapshotParseHex(w, &m))
            fail(csprintf("field '%s': bad value \"%s\"", what,
                          w.c_str()));
        if (!neg)
            return static_cast<std::int64_t>(m);
        fatalIf(m > (1ULL << 63),
                csprintf("field '%s': magnitude overflows", what));
        return -static_cast<std::int64_t>(m - 1) - 1;
    }

    /** Next raw field (names, packed bit strings). */
    std::string
    str(const char *what)
    {
        return word(what);
    }

    /** Next boolean field (exactly "0" or "1"). */
    bool
    flag(const char *what)
    {
        const std::string w = word(what);
        if (w != "0" && w != "1")
            fail(csprintf("field '%s': expected 0/1, got \"%s\"", what,
                          w.c_str()));
        return w == "1";
    }

    /** Require the current line to be fully consumed. */
    void
    endLine()
    {
        while (pos < text.size() && text[pos] == ' ')
            ++pos;
        if (pos != text.size())
            fail(csprintf("trailing garbage \"%s\"",
                          text.substr(pos).c_str()));
    }

    /** Fatal when @p cond, with the section/line prefix. */
    void
    fatalIf(bool cond, const std::string &msg)
    {
        if (cond)
            fail(msg);
    }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        fatal("%s snapshot line %d: %s", section.c_str(), lineno,
              msg.c_str());
    }

    int currentLine() const { return lineno; }

  private:
    std::string
    word(const char *what)
    {
        while (pos < text.size() && text[pos] == ' ')
            ++pos;
        if (pos >= text.size())
            fail(csprintf("missing field '%s'", what));
        const std::size_t b = pos;
        while (pos < text.size() && text[pos] != ' ')
            ++pos;
        return text.substr(b, pos - b);
    }

    std::istream &is;
    std::string section;
    std::string text;
    std::size_t pos = 0;
    int lineno = 0;
};

} // namespace eole

#endif // EOLE_ISA_SNAPSHOT_HH
