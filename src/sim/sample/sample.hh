/**
 * @file
 * Checkpointed statistical sampling: run every ExperimentPlan in a
 * SMARTS-style sampled mode (systematic interval selection, functional
 * warming, detailed warmup, confidence intervals).
 *
 * A full run of one plan cell pays detailed (cycle-level) simulation
 * for warmup + measure µ-ops. Sampled mode instead measures N short
 * intervals of W µops placed systematically across the measured
 * region, each preceded by D µops of detailed warmup; everything
 * before an interval is covered by *functional warming* — the skipped
 * stream is replayed through the branch predictor, value predictor and
 * caches only (isa/warmable.hh), with no ROB/IQ timing.
 *
 * Warm once, restore everywhere (the B=0 default): each (config,
 * workload) cell runs ONE continuous warming pass that drops an
 * "eole-ckpt-v2" checkpoint — architectural registers plus the
 * serialized µarch state of every warmable component — at each
 * interval's detailed-warmup start (warmOnceCheckpoints). Interval
 * jobs then restore instead of re-warming their own prefix, turning
 * the sampled cost from O(N·prefix) into O(prefix + N·(D+W)) while
 * producing measurements identical to per-interval continuous warming
 * (same warmed state ⇒ same measurements; pinned by the differential
 * test in tests/test_sample.cc). Bounded warming (B>0) and
 * SweepOptions::sampleRewarm keep the legacy per-interval warming
 * path. `eole ckpt save` writes the same per-interval checkpoints to
 * disk so later sharding PRs can ship them across hosts.
 *
 * Scheduling: warm-once cells, then all intervals of all cells, run
 * as independent jobs on the PR 2 worker pool, sharing each workload's
 * frozen trace through the sweep engine's trace cache. Per-cell seeds
 * follow the jobSeed discipline, results land in pre-assigned slots,
 * and the reduction walks them in slot order — so sampled artifacts
 * are byte-identical regardless of --jobs and cache settings, exactly
 * like full runs.
 *
 * The reduction records, per cell:
 *   ipc                 mean of the per-interval IPCs
 *   ipc_ci95            95% confidence half-width (Student-t)
 *   ipc_stddev          sample standard deviation
 *   cycles              total measured cycles across intervals
 *   committed_uops      total measured µ-ops across intervals
 *   sample_intervals    intervals that actually measured µ-ops
 *   sample_interval_uops / sample_detail_uops     W and D
 *   sample_warm_uops    µ-ops functionally warmed (cost accounting:
 *                       one prefix per cell in warm-once mode, one
 *                       per interval when re-warming)
 *   sample_restored_intervals   intervals fed from a v2 checkpoint
 *                       (0 on the legacy re-warming path — the CI
 *                       lane asserts the warm-once path is active)
 *
 * See DESIGN.md §8 for the methodology (placement math, warming
 * fidelity contract, CI computation, determinism rules).
 */

#ifndef EOLE_SIM_SAMPLE_SAMPLE_HH
#define EOLE_SIM_SAMPLE_SAMPLE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/checkpoint.hh"
#include "sim/sweep.hh"
#include "workloads/workload.hh"

namespace eole {

/**
 * Systematic interval placement over the measured region
 * [@p warmup, @p warmup + @p measure): one interval per period
 * (period = measure / N), offset by a deterministic phase derived
 * from @p cell_seed via the jobSeed mix. Guarantees every start is
 * >= spec.detailUops (the detailed-warmup prefix must exist) and the
 * placements are pairwise disjoint. Returns the measured-interval
 * start indices (µ-op position of the first measured µ-op), fewer
 * than N when the region cannot hold N disjoint intervals — except
 * that one interval is always emitted, and that guaranteed first
 * interval MAY extend past the region when measure < W or the
 * detail-clamp pushes it late: size trace recordings from the placed
 * starts (max(start) + W + inflight), not from warmup + measure
 * alone (runSampledPlan's `furthest` computation).
 */
std::vector<std::uint64_t> placeIntervals(std::uint64_t warmup,
                                          std::uint64_t measure,
                                          const SampleSpec &spec,
                                          std::uint64_t cell_seed);

/** Deterministic per-interval seed (jobSeed discipline: pure function
 *  of the cell seed and the interval index). Interval placement
 *  phases derive from this; measurement cores run on the cell seed
 *  itself so one warming pass covers every interval. */
std::uint64_t intervalSeed(std::uint64_t cell_seed,
                           std::uint64_t interval_index);

/**
 * Clamp placed interval starts to a trace length and derive each
 * interval's checkpoint index — the first µ-op of its detailed-warmup
 * prefix (start - D, floored at 0). The ONE spelling of the warm-once
 * placement arithmetic, shared by runSampledPlan's warming phase and
 * `eole ckpt save` so the written checkpoints are exactly the ones a
 * sampled run restores from. Indices come back non-decreasing;
 * clamped short-workload intervals may repeat the final index
 * (identical checkpoints — consumers can skip duplicates).
 */
std::vector<std::uint64_t> warmCheckpointIndices(
    const std::vector<std::uint64_t> &starts, std::uint64_t trace_len,
    const SampleSpec &spec);

/**
 * How many trace µ-ops a sampled run of @p plan can touch: the
 * nominal region or the furthest placed interval (@p max_start is the
 * maximum start across every cell; a degenerate short region can push
 * one interval past warmup+measure), plus W and the in-flight
 * allowance. Shared by runSampledPlan and `eole ckpt save` so both
 * record traces with identical clamping behaviour.
 */
std::uint64_t sampleTraceUopsNeeded(const ExperimentPlan &plan,
                                    const SampleSpec &spec,
                                    std::uint64_t warmup,
                                    std::uint64_t measure,
                                    std::uint64_t max_start);

/**
 * One continuous warming pass over @p trace for a cell of @p cfg
 * (whose seed must already be the resolved cell seed): stream µ-ops
 * [0, idx) through a fresh core's warmable components and capture an
 * "eole-ckpt-v2" checkpoint — architectural registers via captureAt
 * plus every component's snapshotState — at each index of
 * @p ckpt_indices (non-decreasing; clamped to the trace length).
 * Piecewise warming is state-identical to one uninterrupted pass, so
 * checkpoint k holds exactly the state continuous warming of its
 * whole prefix would produce. Shared by runSampledPlan's warm-once
 * phase and `eole ckpt save`.
 */
std::vector<std::shared_ptr<const Checkpoint>> warmOnceCheckpoints(
    const SimConfig &cfg, const Workload &workload,
    const std::shared_ptr<const FrozenTrace> &trace,
    const std::vector<std::uint64_t> &ckpt_indices);

/** Mean and 95% confidence half-width (Student-t, n-1 df; half-width
 *  0 when fewer than two samples) of @p xs. */
struct MeanCi
{
    double mean = 0.0;
    double ci95 = 0.0;
    double stddev = 0.0;
};
MeanCi meanCi95(const std::vector<double> &xs);

/**
 * Execute @p plan in sampled mode: every matched cell warms once and
 * expands into per-interval jobs on the worker pool (file header),
 * reducing to mean IPC + CI stats. Determinism guarantees match
 * runPlan: artifacts are byte-identical across --jobs and cache
 * settings.
 */
PlanResult runSampledPlan(const ExperimentPlan &plan,
                          const SampleSpec &spec,
                          const SweepOptions &options = {});

} // namespace eole

#endif // EOLE_SIM_SAMPLE_SAMPLE_HH
