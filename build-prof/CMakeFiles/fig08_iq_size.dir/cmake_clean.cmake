file(REMOVE_RECURSE
  "CMakeFiles/fig08_iq_size.dir/bench/fig08_iq_size.cc.o"
  "CMakeFiles/fig08_iq_size.dir/bench/fig08_iq_size.cc.o.d"
  "fig08_iq_size"
  "fig08_iq_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_iq_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
