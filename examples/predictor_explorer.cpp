/**
 * @file
 * Exploring value predictors standalone (no pipeline): feed synthetic
 * value streams to each predictor family and watch coverage/accuracy,
 * including the FPC confidence build-up the paper relies on.
 *
 *   ./build/examples/predictor_explorer
 */

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bpred/history.hh"
#include "vpred/value_predictor.hh"

using namespace eole;

namespace {

struct Stream
{
    const char *name;
    std::function<RegVal(int)> value;
    /** Bit pushed to the global branch history each step (VTAGE food). */
    std::function<bool(int)> branchBit;
};

void
evaluate(VpKind kind, const Stream &stream, int steps)
{
    VpConfig cfg;
    cfg.kind = kind;
    auto vp = createValuePredictor(cfg, 1);
    GlobalHistory hist(vp->foldSpecs());
    vp->bindHistory(hist, 0);

    const Addr pc = 0x400000;
    std::uint64_t used = 0, correct = 0, measured = 0;
    for (int i = 0; i < steps; ++i) {
        VpLookup l = vp->predict(pc);
        const RegVal actual = stream.value(i);
        if (i >= steps / 2) {
            ++measured;
            if (l.confident) {
                ++used;
                correct += l.value == actual;
            }
        }
        vp->commit(pc, actual, l);
        hist.push(stream.branchBit(i));
    }
    std::printf("  %-16s coverage %6.1f%%   accuracy %7.3f%%\n",
                vp->name(), 100.0 * used / measured,
                used ? 100.0 * correct / used : 100.0);
}

} // namespace

int
main()
{
    const std::vector<Stream> streams = {
        {"constant (x = 42)",
         [](int) { return RegVal(42); },
         [](int i) { return i % 3 == 0; }},
        {"strided (x += 24)",
         [](int i) { return 100 + RegVal(i) * 24; },
         [](int i) { return i % 3 == 0; }},
        {"branch-correlated (x alternates with history)",
         [](int i) { return i % 2 ? RegVal(7) : RegVal(1000); },
         [](int i) { return i % 2 == 0; }},
        {"chaotic (hash of i)",
         [](int i) {
             std::uint64_t x = static_cast<std::uint64_t>(i) + 1;
             x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
             return x ^ (x >> 27);
         },
         [](int i) { return i % 3 == 0; }},
    };

    const VpKind kinds[] = {VpKind::LastValue, VpKind::Stride,
                            VpKind::TwoDeltaStride, VpKind::Fcm,
                            VpKind::Vtage, VpKind::HybridVtage2DStride};

    std::printf("Coverage = predictions with saturated FPC confidence\n"
                "(the only ones the pipeline uses, Section 4.2 of the "
                "paper).\nAccuracy is measured on those.\n");
    for (const Stream &s : streams) {
        std::printf("\nvalue stream: %s\n", s.name);
        for (VpKind k : kinds)
            evaluate(k, s, 20000);
    }

    std::printf("\nNote how the hybrid covers the union of the stride "
                "and VTAGE columns,\nand how nothing covers chaos -- "
                "FPC keeps wrong predictions out of the\npipeline, "
                "which is what makes squash-based recovery affordable "
                "(Section 3.1).\n");
    return 0;
}
