#include "vpred/stride.hh"

namespace eole {

// --------------------------- LastValuePredictor ---------------------------

LastValuePredictor::LastValuePredictor(const VpConfig &config,
                                       std::uint64_t seed)
    : table(1u << config.strideLog2Entries),
      mask((1u << config.strideLog2Entries) - 1),
      fpc(config.fpcVector.empty() ? Fpc::paperVector() : config.fpcVector),
      rng(seed)
{
}

std::uint32_t
LastValuePredictor::indexOf(Addr pc) const
{
    return static_cast<std::uint32_t>(pc >> 2) & mask;
}

VpLookup
LastValuePredictor::predict(Addr pc)
{
    VpLookup l;
    const Entry &e = table[indexOf(pc)];
    l.idx[0] = indexOf(pc);
    if (e.valid && e.tag == pc) {
        l.predictionMade = true;
        l.value = e.value;
        l.confident = fpc.saturated(e.conf);
    }
    return l;
}

void
LastValuePredictor::commit(Addr pc, RegVal actual, const VpLookup &lookup)
{
    Entry &e = table[lookup.idx[0]];
    if (!e.valid || e.tag != pc) {
        e = Entry{};
        e.tag = pc;
        e.valid = true;
        e.value = actual;
        return;
    }
    const bool correct = lookup.predictionMade && lookup.value == actual;
    fpc.update(e.conf, correct, rng);
    // Replace the value only at zero confidence (hysteresis).
    if (e.value != actual && e.conf == 0)
        e.value = actual;
}

void
LastValuePredictor::snapshotState(std::ostream &os) const
{
    SnapshotWriter w(os);
    w.tag("lvp").u64(1).u64(table.size());
    w.end();
    w.tag("lvp.e");
    for (const Entry &e : table)
        w.flag(e.valid).u64(e.tag).u64(e.value).u64(e.conf);
    w.end();
    w.tag("lvp.rng");
    for (int i = 0; i < Rng::stateWords; ++i)
        w.u64(rng.word(i));
    w.end();
}

void
LastValuePredictor::restoreState(std::istream &is)
{
    SnapshotReader r(is, "LVP");
    r.line("lvp");
    r.fatalIf(r.u64("version") != 1, "unsupported version");
    r.fatalIf(r.u64("entries") != table.size(),
              "LVP table size mismatch");
    r.endLine();
    r.line("lvp.e");
    for (Entry &e : table) {
        e.valid = r.flag("valid");
        e.tag = r.u64("tag");
        e.value = r.u64("value");
        e.conf = static_cast<std::uint8_t>(r.u64Max("conf", fpc.max()));
    }
    r.endLine();
    r.line("lvp.rng");
    for (int i = 0; i < Rng::stateWords; ++i)
        rng.setWord(i, r.u64("word"));
    r.endLine();
}

// ----------------------------- StridePredictor ----------------------------

StridePredictor::StridePredictor(const VpConfig &config, bool two_delta,
                                 std::uint64_t seed)
    : table(1u << config.strideLog2Entries),
      mask((1u << config.strideLog2Entries) - 1), twoDelta(two_delta),
      fpc(config.fpcVector.empty() ? Fpc::paperVector() : config.fpcVector),
      rng(seed)
{
}

std::uint32_t
StridePredictor::indexOf(Addr pc) const
{
    return static_cast<std::uint32_t>(pc >> 2) & mask;
}

VpLookup
StridePredictor::predict(Addr pc)
{
    VpLookup l;
    Entry &e = table[indexOf(pc)];
    l.idx[0] = indexOf(pc);
    if (e.valid && e.tag == pc) {
        // Project past the in-flight instances of this static µ-op.
        const std::int64_t stride = twoDelta ? e.stride2 : e.stride1;
        l.predictionMade = true;
        l.value = e.lastValue
            + static_cast<RegVal>(stride) * (e.inflight + 1);
        l.confident = fpc.saturated(e.conf);
        if (e.inflight < 0xffff) {
            ++e.inflight;
            l.inflightNoted = true;
        }
    }
    return l;
}

void
StridePredictor::commit(Addr pc, RegVal actual, const VpLookup &lookup)
{
    Entry &e = table[lookup.idx[0]];
    if (!e.valid || e.tag != pc) {
        e = Entry{};
        e.tag = pc;
        e.valid = true;
        e.lastValue = actual;
        return;
    }
    if (lookup.inflightNoted && e.inflight > 0)
        --e.inflight;
    const std::int64_t new_stride =
        static_cast<std::int64_t>(actual - e.lastValue);
    if (twoDelta) {
        // Promote the stride only when seen twice in a row.
        if (new_stride == e.stride1)
            e.stride2 = new_stride;
        e.stride1 = new_stride;
    } else {
        e.stride1 = new_stride;
    }
    e.lastValue = actual;
    if (lookup.predictionMade)
        fpc.update(e.conf, lookup.value == actual, rng);
}

void
StridePredictor::snapshotState(std::ostream &os) const
{
    SnapshotWriter w(os);
    w.tag("stride").u64(1).u64(table.size()).flag(twoDelta);
    w.end();
    w.tag("stride.e");
    for (const Entry &e : table) {
        w.flag(e.valid)
            .u64(e.tag)
            .u64(e.lastValue)
            .i64(e.stride1)
            .i64(e.stride2)
            .u64(e.conf)
            .u64(e.inflight);
    }
    w.end();
    w.tag("stride.rng");
    for (int i = 0; i < Rng::stateWords; ++i)
        w.u64(rng.word(i));
    w.end();
}

void
StridePredictor::restoreStateBody(SnapshotReader &r)
{
    r.line("stride");
    r.fatalIf(r.u64("version") != 1, "unsupported version");
    r.fatalIf(r.u64("entries") != table.size(),
              "stride table size mismatch");
    r.fatalIf(r.flag("twoDelta") != twoDelta,
              "stride variant mismatch");
    r.endLine();
    r.line("stride.e");
    for (Entry &e : table) {
        e.valid = r.flag("valid");
        e.tag = r.u64("tag");
        e.lastValue = r.u64("lastValue");
        e.stride1 = r.i64("stride1");
        e.stride2 = r.i64("stride2");
        e.conf = static_cast<std::uint8_t>(r.u64Max("conf", fpc.max()));
        e.inflight =
            static_cast<std::uint16_t>(r.u64Max("inflight", 0xffff));
    }
    r.endLine();
    r.line("stride.rng");
    for (int i = 0; i < Rng::stateWords; ++i)
        rng.setWord(i, r.u64("word"));
    r.endLine();
}

void
StridePredictor::restoreState(std::istream &is)
{
    SnapshotReader r(is, name());
    restoreStateBody(r);
}

void
StridePredictor::squash(Addr pc, const VpLookup &lookup)
{
    Entry &e = table[lookup.idx[0]];
    if (lookup.inflightNoted && e.valid && e.tag == pc && e.inflight > 0)
        --e.inflight;
}

} // namespace eole
