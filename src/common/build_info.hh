/**
 * @file
 * Build provenance, embedded once at compile time.
 *
 * CMake passes git-describe output and compiler identity as compile
 * definitions on build_info.cc only, so touching the git state never
 * rebuilds more than one translation unit. The stamp is captured at
 * configure time; a stale describe after local commits without a
 * reconfigure is an accepted limitation (the dirty flag still marks
 * uncommitted edits from the configured state).
 *
 * The string is stamped into sweep artifacts, bench JSON, and
 * telemetry manifests so every result file records which binary made
 * it. Readers treat the field as opaque and informational: artifact
 * diffing and shard-merge provenance checks ignore it, keeping
 * byte-identity contracts same-binary properties.
 */

#ifndef EOLE_COMMON_BUILD_INFO_HH
#define EOLE_COMMON_BUILD_INFO_HH

#include <string>

namespace eole {

struct BuildInfo {
    const char *gitDescribe;     ///< `git describe --always --dirty`
    const char *compilerId;      ///< e.g. "GNU", "Clang"
    const char *compilerVersion; ///< e.g. "13.2.0"
    const char *buildType;       ///< e.g. "RelWithDebInfo"
};

/** The provenance of this binary. */
const BuildInfo &buildInfo();

/** One-line human/artifact form: "g1a2b3c4 GNU-13.2.0 RelWithDebInfo". */
const std::string &buildInfoString();

} // namespace eole

#endif // EOLE_COMMON_BUILD_INFO_HH
