/**
 * @file
 * Global branch-history management with geometric folded registers and
 * O(1) checkpoint/restore.
 *
 * Both TAGE (direction prediction) and VTAGE (value prediction) index
 * their tagged components with hashes of geometrically increasing
 * history lengths. The standard implementation keeps, per component,
 * "folded" registers that are updated incrementally as bits enter and
 * leave the history. The raw history lives in a large circular bit
 * buffer that is only ever appended to, so a checkpoint is just the
 * write position plus the folded registers — restoring is O(folds).
 */

#ifndef EOLE_BPRED_HISTORY_HH
#define EOLE_BPRED_HISTORY_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace eole {

/**
 * One incrementally-folded view of the global history: the most recent
 * @c histLen bits XOR-folded down to @c width bits.
 */
struct FoldedHistory
{
    std::uint32_t comp = 0;
    int histLen = 0;
    int width = 1;
    int outPoint = 0;

    void
    configure(int hist_len, int fold_width)
    {
        panic_if(fold_width <= 0 || fold_width > 30,
                 "bad fold width %d", fold_width);
        histLen = hist_len;
        width = fold_width;
        outPoint = hist_len % fold_width;
        comp = 0;
    }

    /** Shift in @p in_bit; @p out_bit is the bit leaving the history. */
    void
    update(bool in_bit, bool out_bit)
    {
        comp = (comp << 1) | static_cast<std::uint32_t>(in_bit);
        comp ^= static_cast<std::uint32_t>(out_bit) << outPoint;
        comp ^= comp >> width;
        comp &= (1u << width) - 1;
    }
};

/**
 * Append-only global history with folded views.
 *
 * Component folds are registered once at construction; every push()
 * updates all of them. Snapshots capture the fold states and the
 * logical position; the underlying circular buffer is never rewound,
 * so snapshots stay valid as long as fewer than bufferBits new bits
 * were pushed since (far beyond any pipeline depth).
 */
class GlobalHistory
{
  public:
    struct Snapshot
    {
        std::uint64_t pos = 0;
        std::vector<std::uint32_t> folds;
    };

    /**
     * @param fold_specs (histLen, width) pairs; one fold per pair
     * @param buffer_bits circular raw-history capacity (power of two)
     */
    GlobalHistory(const std::vector<std::pair<int, int>> &fold_specs,
                  std::size_t buffer_bits = 4096)
        : bits(buffer_bits, 0)
    {
        panic_if((buffer_bits & (buffer_bits - 1)) != 0,
                 "buffer_bits must be a power of two");
        folds.resize(fold_specs.size());
        for (std::size_t i = 0; i < fold_specs.size(); ++i) {
            folds[i].configure(fold_specs[i].first, fold_specs[i].second);
            panic_if(static_cast<std::size_t>(fold_specs[i].first)
                         >= buffer_bits,
                     "history length exceeds buffer");
        }
    }

    /** Append one direction bit. */
    void
    push(bool bit)
    {
        for (auto &f : folds) {
            const bool out = bitAt(f.histLen);
            f.update(bit, out);
        }
        bits[pos & (bits.size() - 1)] = bit;
        ++pos;
    }

    /** Bit at @p distance (1 = most recent); 0 before history fills. */
    bool
    bitAt(std::uint64_t distance) const
    {
        if (distance > pos)
            return false;
        return bits[(pos - distance) & (bits.size() - 1)] != 0;
    }

    /** Folded value of registered component @p i. */
    std::uint32_t folded(std::size_t i) const { return folds[i].comp; }

    std::uint64_t position() const { return pos; }

    Snapshot
    snapshot() const
    {
        Snapshot s;
        s.pos = pos;
        s.folds.reserve(folds.size());
        for (const auto &f : folds)
            s.folds.push_back(f.comp);
        return s;
    }

    void
    restore(const Snapshot &s)
    {
        panic_if(s.folds.size() != folds.size(), "snapshot shape mismatch");
        panic_if(pos - s.pos >= bits.size(),
                 "snapshot too old: %llu bits pushed since",
                 static_cast<unsigned long long>(pos - s.pos));
        pos = s.pos;
        for (std::size_t i = 0; i < folds.size(); ++i)
            folds[i].comp = s.folds[i];
    }

  private:
    std::vector<std::uint8_t> bits;
    std::vector<FoldedHistory> folds;
    std::uint64_t pos = 0;
};

} // namespace eole

#endif // EOLE_BPRED_HISTORY_HH
