/**
 * Figure 4: proportion of committed µ-ops that can be late-executed
 * (value-predicted single-cycle ALU µ-ops and very-high-confidence
 * branches); µ-ops that could also be early-executed are not counted,
 * as in the paper.
 */
#include "bench_common.hh"

using namespace eole;

int
main()
{
    announce("Fig 4",
             "late-executable fraction (high-conf branches + predicted)");

    SimConfig cfg = configs::eole(6, 64);
    cfg.name = "EOLE_6_64";

    const auto &names = workloads::allNames();
    const auto results = runGrid({cfg}, names);

    printTable("High-confidence branches late-executed (Fig 4, bottom)",
               results, {"EOLE_6_64"}, names, "le_br_frac");
    printTable("Value-predicted u-ops late-executed (Fig 4, top)",
               results, {"EOLE_6_64"}, names, "le_alu_frac");
    printTable("Total late-executed fraction (Fig 4)", results,
               {"EOLE_6_64"}, names, "le_frac");
    printTable("Total OoO-engine offload incl. EE (end of §3.4)", results,
               {"EOLE_6_64"}, names, "offload_frac");
    return 0;
}
