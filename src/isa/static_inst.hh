/**
 * @file
 * Static micro-op representation and the Program container.
 */

#ifndef EOLE_ISA_STATIC_INST_HH
#define EOLE_ISA_STATIC_INST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace eole {

/**
 * One static micro-op. Register classes are implied by the opcode (see
 * srcRegClass/dstRegClass); invalidReg marks absent operands.
 */
struct StaticInst
{
    Opcode opc = Opcode::Nop;
    RegIndex dst = invalidReg;
    RegIndex src1 = invalidReg;
    RegIndex src2 = invalidReg;
    std::int64_t imm = 0;
    /** Branch/call target as a static instruction index. */
    std::int32_t target = -1;
    /** Memory access size in bytes (loads/stores only). */
    std::uint8_t memSize = 8;

    bool hasDst() const { return dst != invalidReg; }

    /** Register class of the destination, if any. */
    RegClass
    dstRegClass() const
    {
        switch (opc) {
          case Opcode::Fadd: case Opcode::Fsub: case Opcode::Fmin:
          case Opcode::Fmax: case Opcode::Fmov: case Opcode::Fcvtif:
          case Opcode::Fmul: case Opcode::Fdiv: case Opcode::Lfd:
            return RegClass::Fp;
          default:
            return RegClass::Int;
        }
    }

    /** Register class of source operand @p idx (0 or 1). */
    RegClass
    srcRegClass(int idx) const
    {
        switch (opc) {
          case Opcode::Fadd: case Opcode::Fsub: case Opcode::Fmin:
          case Opcode::Fmax: case Opcode::Fmov: case Opcode::Fcvtfi:
          case Opcode::Fmul: case Opcode::Fdiv:
            return RegClass::Fp;
          case Opcode::Sfd:
            // src1 is the integer base address, src2 the FP data.
            return idx == 1 ? RegClass::Fp : RegClass::Int;
          default:
            return RegClass::Int;
        }
    }
};

/**
 * A complete kernel program: a flat vector of static µ-ops. Execution
 * starts at index 0; a program ends with Halt or runs forever inside an
 * outer loop (the usual shape for workload kernels).
 */
struct Program
{
    std::vector<StaticInst> code;

    /** Byte PC of static instruction @p idx. */
    static Addr
    pcOf(std::size_t idx)
    {
        return codeBase + static_cast<Addr>(idx) * uopBytes;
    }

    /** Static index of byte PC @p pc. */
    static std::size_t
    idxOf(Addr pc)
    {
        return static_cast<std::size_t>((pc - codeBase) / uopBytes);
    }

    std::size_t size() const { return code.size(); }
};

/** Render one instruction as text (for debugging and tests). */
std::string disassemble(const StaticInst &inst);

} // namespace eole

#endif // EOLE_ISA_STATIC_INST_HH
