# Empty compiler generated dependencies file for test_sample.
# This may be replaced when dependencies are built.
