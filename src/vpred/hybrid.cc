#include "vpred/hybrid.hh"

namespace eole {

HybridVtage2DStride::HybridVtage2DStride(const VpConfig &config,
                                         std::uint64_t seed)
    : vt(std::make_unique<Vtage>(config, seed ^ 0x1111)),
      sp(std::make_unique<StridePredictor>(config, true, seed ^ 0x2222))
{
}

std::vector<std::pair<int, int>>
HybridVtage2DStride::foldSpecs() const
{
    return vt->foldSpecs();
}

void
HybridVtage2DStride::bindHistory(const GlobalHistory &hist,
                                 std::size_t fold_base)
{
    vt->bindHistory(hist, fold_base);
}

VpLookup
HybridVtage2DStride::predict(Addr pc)
{
    VpLookup vtl = vt->predict(pc);
    VpLookup spl = sp->predict(pc);

    VpLookup l;
    // Arbitration: confident tagged VTAGE hit > confident 2D-Stride >
    // any tagged VTAGE hit > any 2D-Stride hit > VTAGE base.
    const bool vt_tagged = vtl.provider >= 0;
    int choice;
    if (vt_tagged && vtl.confident) {
        choice = 0;
    } else if (spl.predictionMade && spl.confident) {
        choice = 1;
    } else if (vt_tagged) {
        choice = 0;
    } else if (spl.predictionMade) {
        choice = 1;
    } else {
        choice = 0;  // VTAGE base
    }

    const VpLookup &c = choice == 0 ? vtl : spl;
    l.predictionMade = c.predictionMade;
    l.value = c.value;
    l.confident = c.confident;
    l.provider = choice;
    l.sub[0] = std::make_unique<VpLookup>(std::move(vtl));
    l.sub[1] = std::make_unique<VpLookup>(std::move(spl));
    return l;
}

void
HybridVtage2DStride::commit(Addr pc, RegVal actual, const VpLookup &lookup)
{
    // Both components always train (the paper's hybrid keeps both warm).
    vt->commit(pc, actual, *lookup.sub[0]);
    sp->commit(pc, actual, *lookup.sub[1]);
}

void
HybridVtage2DStride::squash(Addr pc, const VpLookup &lookup)
{
    vt->squash(pc, *lookup.sub[0]);
    sp->squash(pc, *lookup.sub[1]);
}

void
HybridVtage2DStride::warmUpdate(const TraceUop &uop)
{
    if (!uop.vpPredictable())
        return;
    const VpLookup vtl = vt->predict(uop.pc);
    const VpLookup spl = sp->predict(uop.pc);
    vt->commit(uop.pc, uop.result, vtl);
    sp->commit(uop.pc, uop.result, spl);
}

void
HybridVtage2DStride::snapshotState(std::ostream &os) const
{
    SnapshotWriter w(os);
    w.tag("hybrid").u64(1);
    w.end();
    vt->snapshotState(os);
    sp->snapshotState(os);
}

void
HybridVtage2DStride::restoreState(std::istream &is)
{
    SnapshotReader r(is, name());
    r.line("hybrid");
    r.fatalIf(r.u64("version") != 1, "unsupported version");
    r.endLine();
    vt->restoreStateBody(r);
    sp->restoreStateBody(r);
}

} // namespace eole
