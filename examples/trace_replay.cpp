/**
 * @file
 * On-disk traces end to end through the library API: record a workload
 * to an eole-trace-v1 file, mmap it back, bind it into the workload
 * registry, and show that a sweep over the file-backed workload
 * produces the byte-identical artifact a live-generated run does.
 *
 *   ./build/trace_replay [workload] [uops]
 *
 * The CLI equivalent (see examples/README.md):
 *
 *   eole trace record torture:7 --out t7.trace
 *   eole trace info t7.trace
 *   eole run smoke --workloads file:t7.trace --out replayed.json
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/artifact.hh"
#include "sim/plans.hh"
#include "sim/sweep.hh"
#include "trace/trace_file.hh"
#include "workloads/workload.hh"

using namespace eole;

int
main(int argc, char **argv)
{
    const std::string wl = argc > 1 ? argv[1] : "torture:7";
    const std::uint64_t uops =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 200000;
    const std::string path = "replay_example.trace";

    // 1. Record: functionally execute the workload once and write the
    //    µ-op stream (plus the architectural register seed) to disk.
    const Workload live = workloads::build(wl);
    const auto recording = live.freeze(uops);
    std::string err;
    if (!writeTraceFile(*recording, path, "generated", &err)) {
        std::fprintf(stderr, "write failed: %s\n", err.c_str());
        return 1;
    }
    std::printf("recorded %s: %zu u-ops (%s) -> %s\n", wl.c_str(),
                recording->uops.size(),
                recording->complete ? "complete" : "prefix",
                path.c_str());

    // 2. Load: the reader validates the whole file (layout hash,
    //    SHA-256 footer) and maps the µ-op array read-only — note the
    //    zero resident cost.
    const auto mapped = loadTraceFile(path, &err);
    if (!mapped) {
        std::fprintf(stderr, "load failed: %s\n", err.c_str());
        return 1;
    }
    std::printf("mapped back: %zu u-ops, %zu bytes on disk, %zu bytes "
                "resident\n", mapped->uops.size(), mapped->bytes(),
                mapped->residentBytes());

    // 3. Bind: the trace's embedded name now resolves to the file
    //    everywhere a workload name is accepted — plans, sweeps,
    //    sampling, the trace cache.
    std::string canonical;
    if (!workloads::bindTraceFile(path, &canonical, &err)) {
        std::fprintf(stderr, "bind failed: %s\n", err.c_str());
        return 1;
    }

    // 4. Prove the guarantee: one-workload sweep, live vs file-backed,
    //    byte-identical artifacts.
    ExperimentPlan p = plans::get("smoke");
    p.workloads = {canonical};
    p.warmup = 2000;
    p.measure = 20000;

    const std::string replayed = jsonArtifactString(runPlan(p));
    workloads::clearBoundTraces();  // back to the generator
    const std::string generated = jsonArtifactString(runPlan(p));

    std::printf("artifact bytes: %zu replayed, %zu generated -> %s\n",
                replayed.size(), generated.size(),
                replayed == generated ? "IDENTICAL" : "DIFFERENT");
    std::remove(path.c_str());
    return replayed == generated ? 0 : 1;
}
