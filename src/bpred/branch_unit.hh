/**
 * @file
 * Front-end branch prediction unit: TAGE direction prediction with
 * storage-free confidence, BTB targets, return-address stack, and the
 * speculative global history shared with VTAGE.
 *
 * The unit owns the one GlobalHistory instance of the core. Value
 * predictors that need history folds (VTAGE) register their fold specs
 * at construction and index them via extraFoldBase().
 */

#ifndef EOLE_BPRED_BRANCH_UNIT_HH
#define EOLE_BPRED_BRANCH_UNIT_HH

#include <memory>
#include <utility>
#include <vector>

#include "bpred/btb.hh"
#include "bpred/history.hh"
#include "bpred/tage.hh"
#include "common/slab.hh"
#include "isa/trace.hh"
#include "isa/warmable.hh"

namespace eole {

/** Branch-prediction related configuration (Table 1 defaults).
 *  String-addressable as "bp.*" via the parameter registry
 *  (sim/params.hh); new fields must be registered there. */
struct BpConfig
{
    TageConfig tage;
    int btbLog2Entries = 12;  //!< 4K-entry BTB
    int btbWays = 2;
    int rasEntries = 32;

    /**
     * JRS-style resetting-counter filter on "very high confidence".
     * The paper relies on TAGE counter saturation alone (storage-free,
     * Seznec 2011), which works on SPEC's branch mix; our synthetic
     * kernels concentrate mid-bias branches, so an additional small
     * filter keeps the LE-branch misprediction rate below the ~0.5%
     * the paper assumes (see DESIGN.md §5). 0 disables the filter.
     */
    int confLog2Entries = 11;
    int confBits = 4;
};

/**
 * Per-branch prediction record, carried in the DynInst from fetch to
 * commit (for training) and to resolution (for repair).
 */
struct BranchPrediction
{
    bool predTaken = true;
    Addr predTarget = 0;
    bool highConf = false;   //!< saturated TAGE counter: LE-eligible
    bool btbMiss = false;    //!< direct taken branch without a target:
                             //!< short decode-redirect bubble
    bool mispredict = false; //!< direction or target wrong: full squash
    TageLookup tage;
};

/**
 * The front-end prediction unit. predictBranch() both predicts and
 * speculatively updates history/RAS; snapshots allow exact repair on
 * squashes.
 */
class BranchUnit : public WarmableComponent
{
  public:
    /** Combined front-end speculative state checkpoint. */
    struct Snapshot
    {
        GlobalHistory::Snapshot hist;
        Ras::Snapshot ras;
    };

    /**
     * Handle to a snapshot, carried per µ-op in the DynInst. Pooled
     * with the reuse policy (common/slab.hh): every snapshot of one
     * unit has the same shape, so recycled objects keep their fold
     * and RAS buffer capacities and a per-branch checkpoint costs two
     * memcpy-sized copies, no allocation. Treat the pointee as
     * immutable outside BranchUnit (the shared_ptr<const Snapshot>
     * this replaces enforced that in the type).
     */
    using SnapshotPtr = PooledPtr<Snapshot>;

    /**
     * @param config predictor geometry
     * @param extra_folds history folds required by other units (VTAGE)
     * @param seed RNG seed for the TAGE allocation policy
     */
    BranchUnit(const BpConfig &config,
               const std::vector<std::pair<int, int>> &extra_folds,
               std::uint64_t seed = 0xb7a9e);

    /** The shared speculative global history. */
    const GlobalHistory &history() const { return hist; }

    /** First fold index belonging to the extra (VTAGE) specs. */
    std::size_t extraFoldBase() const { return extraBase; }

    /**
     * Predict the branch µ-op @p uop at fetch and speculatively update
     * history and RAS. The returned record notes whether the prediction
     * is wrong (the oracle outcome is in the trace record); the pipeline
     * applies the penalty at resolution time.
     *
     * @param uop the branch µ-op (with oracle outcome)
     * @param pre_out filled with the pre-update checkpoint
     */
    BranchPrediction predictBranch(const TraceUop &uop,
                                   SnapshotPtr &pre_out);

    /**
     * Checkpoint of the current speculative state (cached; cheap when
     * called repeatedly between branches).
     */
    SnapshotPtr currentSnapshot();

    /**
     * Repair after a mispredicted branch resolves: restore the
     * pre-branch state and apply the branch's actual outcome.
     */
    void repairAfterBranch(const TraceUop &uop, const SnapshotPtr &pre);

    /** Restore to an arbitrary checkpoint (value/memory squashes). */
    void restoreTo(const SnapshotPtr &snap);

    /** Commit-time training (call in retirement order). */
    void commitBranch(const TraceUop &uop, const BranchPrediction &bp);

    /**
     * Functional warming (isa/warmable.hh): predict the branch, repair
     * the speculative state on a wrong prediction (exactly what the
     * pipeline does at resolution) and train immediately. Predict ->
     * train collapses the pipeline's fetch-to-commit window to zero;
     * histories and the RAS evolve identically to a detailed run of
     * the same stream, TAGE/BTB tables see commit-order updates
     * without in-flight overlap (see DESIGN.md §8).
     */
    void warmUpdate(const TraceUop &uop) override;

    /** Serialize TAGE tables, global history (with folds and raw
     *  bits), BTB, RAS and the JRS confidence filter (canonical text;
     *  isa/warmable.hh contract). */
    void snapshotState(std::ostream &os) const override;

    /** Restore into a same-geometry unit; subsequent predictions are
     *  decision-identical to the snapshotted unit (pinned by
     *  tests/test_ckpt_state.cc). */
    void restoreState(std::istream &is) override;

  private:
    /** Apply the architectural effect of @p uop with outcome @p taken. */
    void speculativeApply(const TraceUop &uop, bool taken, Addr target);

    /** JRS confidence-filter slot for @p pc. */
    std::uint8_t &confSlot(Addr pc);

    BpConfig cfg;
    Tage tage;
    GlobalHistory hist;
    Btb btb;
    Ras ras;
    std::vector<std::uint8_t> confTable;
    std::size_t extraBase = 0;
    /** Declared before `cached` so the cached handle drops before the
     *  pool is destroyed. In-flight handles live in DynInsts, which
     *  PipelineState's member order destroys before the BranchUnit. */
    SlabPool<Snapshot> snapPool{64, SlabRecycle::reuse};
    SnapshotPtr cached;
};

} // namespace eole

#endif // EOLE_BPRED_BRANCH_UNIT_HH
