/**
 * @file
 * The cycle-level out-of-order core with EOLE support.
 *
 * Pipeline shape (Table 1 + §3 of the paper):
 *
 *   Fetch (8-wide, 2 taken branches, TAGE/BTB/RAS, value predictor)
 *     -> 15-cycle in-order front end (modeled as a latency/bandwidth
 *        constrained pipe)
 *   Rename (8-wide, banked PRF allocation; EARLY EXECUTION happens
 *     here, in parallel, per §3.2)
 *   Dispatch (ROB/IQ/LSQ allocation; EE results and used predictions
 *     are written to the PRF here, consuming EE write ports)
 *   Issue (6-wide OoO, oldest-first, FU pools, Store Sets)
 *   Execute/Writeback (latency oracle; loads access the hierarchy)
 *   LE/VT pre-commit stage (LATE EXECUTION of predicted single-cycle
 *     ALU µ-ops and very-high-confidence branches; prediction
 *     validation and predictor training; §3.3) -- adds one cycle when
 *     VP is enabled
 *   Commit (8-wide, in order)
 *
 * Each stage is a separate Stage object (src/pipeline/stages/)
 * operating on the shared PipelineState substrate; Core is a thin
 * conductor that assembles the stage vector from the SimConfig and
 * ticks it in reverse pipeline order each cycle (see DESIGN.md §2).
 *
 * Recovery is always full pipeline squash + front-end re-fetch: branch
 * mispredictions at execute (or at LE/VT for high-confidence
 * branches), value mispredictions at validation, and memory-order
 * violations at store execute.
 *
 * The simulator is trace-driven (no wrong-path µ-ops; see DESIGN.md
 * §5) and self-checking: at commit, every µ-op's recomputed result is
 * compared against the functional KernelVM oracle.
 */

#ifndef EOLE_PIPELINE_CORE_HH
#define EOLE_PIPELINE_CORE_HH

#include <memory>
#include <vector>

#include "common/profiler.hh"
#include "common/stats.hh"
#include "pipeline/core_stats.hh"
#include "pipeline/pipeline_state.hh"
#include "pipeline/stages/pipeline_builder.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

namespace eole {

/** One core simulation instance: one configuration x one workload. */
class Core
{
  public:
    Core(const SimConfig &config, const Workload &workload);

    /** Construct with a custom stage pipeline (benches/experiments
     *  swap or instrument individual stages this way). */
    Core(const SimConfig &config, const Workload &workload,
         StagePipeline pipeline);

    ~Core();

    /**
     * Run until @p target_commits more µ-ops commit (or the trace
     * drains / @p max_cycles elapse).
     * @return µ-ops committed during this call
     */
    std::uint64_t run(std::uint64_t target_commits,
                      std::uint64_t max_cycles = ~0ULL);

    /** Zero the statistics (end of warmup). Predictor/cache state and
     *  in-flight pipeline state are preserved. */
    void resetStats();

    /**
     * Open a clean measurement window on the warmed substrate: zero
     * every statistic including the memory-hierarchy counters (which
     * resetStats leaves accumulating, a behaviour the full-run golden
     * records pin). Predictor/cache/pipeline state is preserved. Used
     * by the sampling subsystem between detailed warmup and the
     * measured interval (sim/sample/).
     */
    void resetTiming();

    /**
     * Functional warming (SMARTS-style): stream trace µ-ops
     * [@p begin, @p end) through the warmable components only — branch
     * unit, value predictor, memory hierarchy (isa/warmable.hh) — with
     * no timing simulation. The core clock advances to cover the
     * warming pseudo-cycles so warmed cache fills are in the past when
     * detailed simulation resumes. Call before any detailed run()
     * whose start point is at µ-op @p end (the checkpointed-start
     * path, see sim/sample/).
     */
    void functionalWarm(const FrozenTrace &trace, std::uint64_t begin,
                        std::uint64_t end);

    /**
     * Attach this core's warmed microarchitectural state to @p ckpt as
     * named snapshot sections ("branch", "vpred" when value prediction
     * is configured, "mem"; isa/checkpoint.hh schema eole-ckpt-v2).
     * Also stamps the provenance config name from the SimConfig. Call
     * between warming passes — the captured state is exactly what
     * continuous functional warming produced so far.
     */
    void captureWarmState(Checkpoint &ckpt) const;

    /**
     * Restore the µarch sections of @p ckpt into this core's warmable
     * components and re-align the core clock with the restored warming
     * pseudo-clock — the state-equivalent of having functionally
     * warmed this core over the checkpoint's whole prefix (pinned by
     * tests/test_sample.cc). No-op for purely architectural (v1)
     * checkpoints; fatal when the section set does not match this
     * core's components (config mismatch).
     */
    void restoreWarmState(const Checkpoint &ckpt);

    /** Aggregate of every stage's counters (rebuilt on each call). */
    const CoreStats &stats() const;

    /** Full statistics dump including memory-hierarchy counters. */
    StatRecord record() const;

    Cycle cycle() const { return state->now; }

    /** The shared substrate (exposed for tests/benches instrumenting
     *  the pipeline). */
    const PipelineState &pipelineState() const { return *state; }

    /** Attach a per-µop lifecycle event sink (common/pipetrace.hh).
     *  Pass nullptr to detach; the tracer must outlive the runs it
     *  observes. */
    void setPipeTracer(PipeTracer *tracer) { state->tracer = tracer; }

    /** Observe every retiring µ-op (commit-stream capture; see
     *  tests/test_torture.cc). Pass nullptr to detach. */
    void
    setCommitHook(std::function<void(const DynInst &)> hook)
    {
        state->onCommit = std::move(hook);
    }

    /** The assembled stage pipeline. */
    const StagePipeline &pipeline() const { return pipe; }

  private:
    void tick();

    std::unique_ptr<PipelineState> state;
    StagePipeline pipe;

    /** Profiler section per stage, resolved once from Stage::name() so
     *  the tick loop never does string lookups (common/profiler.hh). */
    std::vector<prof::Section> stageSections;

    mutable CoreStats aggregated;
};

} // namespace eole

#endif // EOLE_PIPELINE_CORE_HH
