/**
 * @file
 * Early Execution block (§3.2 of the paper).
 *
 * A rank of simple ALUs beside Rename executes single-cycle ALU µ-ops
 * whose operands are available in the front end. Per the paper,
 * operands are NEVER read from the PRF; they come only from
 *   - immediates (from Decode),
 *   - the value predictor (predictions of producers in the same or
 *     previous rename group travel with the group through the EE
 *     units), and
 *   - the local bypass network (results early-executed in the same
 *     group -- the in-stage cascade of Fig 3 -- or in the previous
 *     group; the bypass does not span further, footnote 3).
 *
 * Early-executed µ-ops skip the OoO scheduler entirely; their results
 * (and all used predictions) are written to the PRF at Dispatch.
 *
 * The optional second ALU stage (Fig 2's "2 ALU stages" experiment)
 * gives non-executed µ-ops a second chance one stage later, seeing the
 * first stage's results of the same group.
 */

#ifndef EOLE_PIPELINE_STAGES_EARLY_EXEC_HH
#define EOLE_PIPELINE_STAGES_EARLY_EXEC_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace eole {

/**
 * Tracks front-end operand availability across rename groups. Keys are
 * (register class, physical register); values are the bypassed or
 * predicted operand values.
 */
class EarlyExecBlock
{
  public:
    explicit EarlyExecBlock(int stages = 1) : numStages(stages) {}

    int stages() const { return numStages; }

    /** Start a new rename group: the previous group's outputs remain
     *  visible on the local bypass; older ones disappear. */
    void
    beginGroup()
    {
        prev = std::move(curr);
        curr.clear();
    }

    /** Drop all bypass state (pipeline squash). */
    void
    reset()
    {
        prev.clear();
        curr.clear();
    }

    /**
     * Is the operand (cls, phys) available to Early Execution?
     * @param value_out filled with the operand value when available
     */
    bool
    available(RegClass cls, RegIndex phys, RegVal &value_out) const
    {
        const std::uint32_t k = keyOf(cls, phys);
        if (auto it = curr.find(k); it != curr.end()) {
            value_out = it->second;
            return true;
        }
        if (auto it = prev.find(k); it != prev.end()) {
            value_out = it->second;
            return true;
        }
        return false;
    }

    /** Publish a value (EE result or used prediction) for consumers in
     *  this and the next rename group. */
    void
    publish(RegClass cls, RegIndex phys, RegVal value)
    {
        curr[keyOf(cls, phys)] = value;
    }

  private:
    static std::uint32_t
    keyOf(RegClass cls, RegIndex phys)
    {
        return (static_cast<std::uint32_t>(cls) << 16) | phys;
    }

    int numStages;
    std::unordered_map<std::uint32_t, RegVal> prev;
    std::unordered_map<std::uint32_t, RegVal> curr;
};

} // namespace eole

#endif // EOLE_PIPELINE_STAGES_EARLY_EXEC_HH
