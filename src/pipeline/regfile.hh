/**
 * @file
 * Physical register file with banked free lists, plus the speculative
 * rename map.
 *
 * Banking (§6.3 of the paper): physical registers are statically
 * partitioned across banks (reg % numBanks); rename allocates
 * destinations round-robin across banks so that a dispatch group
 * spreads its Early-Execution/prediction writes evenly. Rename stalls
 * when the designated bank has no free register, exactly as in the
 * paper's evaluation (Fig 10 measures the cost of this imbalance).
 */

#ifndef EOLE_PIPELINE_REGFILE_HH
#define EOLE_PIPELINE_REGFILE_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace eole {

/** One register class (INT or FP) of the PRF. */
class PhysRegFile
{
  public:
    /**
     * @param num_regs physical registers in this class
     * @param num_banks bank count (must divide evenly)
     */
    PhysRegFile(int num_regs, int num_banks)
        : values(num_regs, 0), readyAt(num_regs, 0), banks(num_banks),
          freeLists(num_banks)
    {
        fatal_if(num_regs % num_banks != 0,
                 "%d registers not divisible into %d banks", num_regs,
                 num_banks);
    }

    /**
     * Mark registers [0, reserved) as architecturally held (initial
     * rename map); the rest populate the per-bank free lists.
     */
    void
    initFreeLists(int reserved)
    {
        for (auto &fl : freeLists)
            fl.clear();
        for (int r = reserved; r < static_cast<int>(values.size()); ++r)
            freeLists[bankOf(static_cast<RegIndex>(r))].push_back(
                static_cast<RegIndex>(r));
    }

    int bankOf(RegIndex reg) const { return reg % banks; }
    int numBanks() const { return banks; }

    bool
    bankHasFree(int bank) const
    {
        return !freeLists[bank].empty();
    }

    RegIndex
    allocFromBank(int bank)
    {
        panic_if(freeLists[bank].empty(), "alloc from empty bank %d", bank);
        const RegIndex r = freeLists[bank].back();
        freeLists[bank].pop_back();
        return r;
    }

    void
    freeReg(RegIndex reg)
    {
        freeLists[bankOf(reg)].push_back(reg);
    }

    RegVal read(RegIndex reg) const { return values[reg]; }

    /** Write a value that becomes visible (ready) at @p ready. */
    void
    write(RegIndex reg, RegVal value, Cycle ready)
    {
        values[reg] = value;
        readyAt[reg] = ready;
    }

    /** Overwrite the value without changing readiness (writeback of a
     *  predicted register: the prediction was already usable). */
    void
    overwriteValue(RegIndex reg, RegVal value)
    {
        values[reg] = value;
    }

    bool
    isReady(RegIndex reg, Cycle now) const
    {
        return readyAt[reg] <= now;
    }

    Cycle readyCycle(RegIndex reg) const { return readyAt[reg]; }

    /** Mark not-ready (allocation). */
    void
    markPending(RegIndex reg)
    {
        readyAt[reg] = invalidCycle;
    }

  private:
    std::vector<RegVal> values;
    std::vector<Cycle> readyAt;
    int banks;
    std::vector<std::vector<RegIndex>> freeLists;
};

/** Speculative rename map for one register class. */
class RenameMap
{
  public:
    explicit RenameMap(int arch_regs) : map(arch_regs, invalidReg) {}

    RegIndex lookup(RegIndex arch) const { return map[arch]; }

    /** @return the previous mapping (for squash walk-back). */
    RegIndex
    rename(RegIndex arch, RegIndex phys)
    {
        const RegIndex old = map[arch];
        map[arch] = phys;
        return old;
    }

    void restore(RegIndex arch, RegIndex old_phys) { map[arch] = old_phys; }

  private:
    std::vector<RegIndex> map;
};

} // namespace eole

#endif // EOLE_PIPELINE_REGFILE_HH
