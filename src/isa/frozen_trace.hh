/**
 * @file
 * FrozenTrace: an immutable, pre-executed µ-op stream.
 *
 * The functional execution of a workload is independent of the timing
 * configuration, so a sweep that runs N configurations over the same
 * workload re-executes the identical µ-op stream N times. A
 * FrozenTrace records that stream once — together with the post-init
 * architectural register state the timing core seeds its PRF from —
 * and is then shared read-only across any number of concurrently
 * running cores (see sim/trace_cache.hh). Replaying a frozen trace is
 * also faster than live functional execution: fetch becomes an indexed
 * read with no VM stepping and no replay-window bookkeeping.
 */

#ifndef EOLE_ISA_FROZEN_TRACE_HH
#define EOLE_ISA_FROZEN_TRACE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "isa/trace.hh"

namespace eole {

class KernelVM;
struct Program;

/**
 * Immutable recording of a kernel's dynamic µ-op stream. Safe to share
 * across threads once constructed (all members are const after
 * recordTrace returns).
 */
struct FrozenTrace
{
    std::vector<TraceUop> uops;

    /** The program halted within uops (the stream is the whole run).
     *  When false, uops is a prefix and a consumer reading past the
     *  end is a hard error — size the recording generously. */
    bool complete = false;

    /** Post-init architectural state (what a live VM would hold when
     *  the timing core seeds its register files). */
    RegVal initIntRegs[numArchIntRegs] = {};
    RegVal initFpRegs[numArchFpRegs] = {};

    std::size_t bytes() const { return uops.size() * sizeof(TraceUop); }
};

/**
 * Functionally execute @p program (after running @p init) and record up
 * to @p max_uops µ-ops.
 *
 * @param program the kernel (copied into the recording run)
 * @param mem_bytes VM data-memory size
 * @param init one-time architectural state initializer (may be null)
 * @param max_uops recording cap; the trace is complete if the program
 *        halts within the cap
 */
std::shared_ptr<const FrozenTrace>
recordTrace(const Program &program, std::size_t mem_bytes,
            const std::function<void(KernelVM &)> &init,
            std::uint64_t max_uops);

} // namespace eole

#endif // EOLE_ISA_FROZEN_TRACE_HH
