/**
 * @file
 * Split one sweep across N "hosts" and merge the partials back — the
 * C++ twin of `eole shard <plan> --hosts N --host i` + `eole merge`,
 * with the content-addressed result store (`--store DIR`) on top.
 *
 *   ./build/sharded_sweep [hosts]
 *
 * Each host computes its slice of the grid with no coordinator: cell
 * ownership is a pure function of the plan seed and the cell identity
 * (sim/plan.hh shardOfCell), so every host derives the same partition
 * independently. The merged result is byte-identical to a single-host
 * run — sharding is an execution detail, invisible in the artifact.
 * See DESIGN.md §11.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "sim/artifact.hh"
#include "sim/configs.hh"
#include "sim/shard.hh"
#include "sim/store.hh"
#include "sim/sweep.hh"

using namespace eole;

int
main(int argc, char **argv)
{
    const std::uint64_t hosts =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

    // 1. Declare the grid, exactly as for any sweep.
    ExperimentPlan plan;
    plan.name = "sharded_example";
    plan.description = "baseline vs EOLE, split across hosts";
    plan.configs = {configs::baseline(6, 64), configs::eole(4, 64)};
    plan.workloads = {"164.gzip", "186.crafty", "444.namd"};
    plan.warmup = 2000;
    plan.measure = 20000;

    // 2. The reference: one host runs everything.
    const PlanResult single = runPlan(plan, {});
    const std::string want = jsonArtifactString(single);

    // 3. "Each host": same binary, same plan, only --host differs.
    //    A real deployment runs these on N machines and ships the
    //    partial files to the merge point; here we loop, and round
    //    every partial through its canonical text form to prove the
    //    file format carries everything.
    std::vector<ShardArtifact> partials;
    for (std::uint64_t h = 0; h < hosts; ++h) {
        SweepOptions opt;
        opt.shard.hosts = hosts;
        opt.shard.host = h;
        const ShardArtifact part = runShard(plan, SampleSpec{}, opt);
        std::printf("host %llu/%llu: %zu of %llu cells\n",
                    (unsigned long long)h, (unsigned long long)hosts,
                    part.cells.size(),
                    (unsigned long long)part.cellsTotal);

        std::istringstream wire(shardArtifactString(part));
        ShardArtifact received;
        std::string err;
        if (!tryReadShardArtifact(wire, &received, &err)) {
            std::fprintf(stderr, "round trip failed: %s\n",
                         err.c_str());
            return 1;
        }
        partials.push_back(std::move(received));
    }

    // 4. Merge validates coverage (a missing or duplicated shard is a
    //    diagnostic, not a wrong answer) and reassembles the cells in
    //    single-host artifact order.
    const PlanResult merged = mergeShardArtifacts(partials);
    std::printf("merge == single-host artifact: %s\n",
                jsonArtifactString(merged) == want ? "byte-identical"
                                                   : "MISMATCH");

    // 5. The store: results keyed by the SHA-256 of everything they
    //    depend on (full config map, workload, seed, run lengths,
    //    sample spec). A second run over the same store computes
    //    nothing; change any input and the key misses.
    const std::string dir = "sharded_example.store";
    std::filesystem::remove_all(dir);
    {
        Store store(dir);
        SweepOptions opt;
        opt.store = &store;
        const PlanResult cold = runPlan(plan, opt);
        std::printf("cold run:  %zu cached, %zu computed\n",
                    cold.storeHits, cold.storeComputed);
    }
    {
        Store store(dir);
        SweepOptions opt;
        opt.store = &store;
        const PlanResult warmed = runPlan(plan, opt);
        std::printf("warm run:  %zu cached, %zu computed (artifact %s)\n",
                    warmed.storeHits, warmed.storeComputed,
                    jsonArtifactString(warmed) == want
                        ? "still byte-identical" : "MISMATCH");

        ExperimentPlan other = plan;
        other.seed = 1234;  // any key ingredient change = cache miss
        const PlanResult moved = runPlan(other, opt);
        std::printf("reseeded:  %zu cached, %zu computed\n",
                    moved.storeHits, moved.storeComputed);
    }
    std::filesystem::remove_all(dir);
    return 0;
}
