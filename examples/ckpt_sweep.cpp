/**
 * @file
 * Warm-once checkpointed sampling — the C++ twin of `eole ckpt save`
 * and the checkpoint-centric sibling of examples/sampled_sweep.cpp.
 *
 *   ./build/ckpt_sweep [jobs]
 *
 * Shows the three layers of the v2 checkpoint machinery:
 *
 *   1. warmOnceCheckpoints: one continuous warming pass over a cell
 *      drops an eole-ckpt-v2 checkpoint (architectural registers +
 *      serialized predictor/cache state) at each interval start;
 *   2. the checkpoints are plain canonical text — serialize, parse
 *      back, byte-identical: the unit you can ship to another host;
 *   3. a sampled run in warm-once mode measures exactly what the
 *      legacy per-interval re-warming mode measures, for a fraction
 *      of the warming work (sample_warm_uops tells the story, and
 *      sample_restored_intervals proves the restore path ran).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sim/configs.hh"
#include "sim/plan.hh"
#include "sim/sample/sample.hh"
#include "sim/sweep.hh"
#include "sim/trace_cache.hh"

using namespace eole;

int
main(int argc, char **argv)
{
    // 1. A cell and a sampling spec, exactly as for `eole run
    //    --sample`. B stays 0: continuous warming is what the
    //    warm-once checkpoints accelerate.
    ExperimentPlan plan;
    plan.name = "ckpt_example";
    plan.description = "warm-once checkpoints vs per-interval re-warming";
    plan.configs = {configs::eole(6, 64)};
    plan.workloads = {"186.crafty"};
    plan.warmup = 20000;
    plan.measure = 200000;

    SampleSpec spec;
    spec.intervals = 8;
    spec.intervalUops = 4000;
    spec.detailUops = 2000;

    SweepOptions opt;
    opt.jobs = argc > 1 ? std::atoi(argv[1]) : 0;

    // 2. The warming pass itself, by hand: place the intervals, warm
    //    once, capture a checkpoint per interval. This is what the
    //    sampled engine does per cell — and what `eole ckpt save`
    //    writes to disk as one .ckpt file per interval.
    const SimConfig &cfg = plan.configs[0];
    const std::uint64_t cell_seed =
        jobSeed(plan.seed, cfg.seed, cfg.name, plan.workloads[0]);
    const auto starts =
        placeIntervals(plan.warmup, plan.measure, spec, cell_seed);

    Workload w = workloads::build(plan.workloads[0]);
    const auto trace =
        w.freeze(plan.warmup + plan.measure + spec.intervalUops + 4096);

    SimConfig seeded = cfg;
    seeded.seed = cell_seed;
    std::vector<std::uint64_t> idxs;
    for (const std::uint64_t s : starts)
        idxs.push_back(s - spec.detailUops);
    const auto ckpts = warmOnceCheckpoints(seeded, w, trace, idxs);

    std::printf("%zu intervals -> %zu checkpoints from ONE warming "
                "pass over %llu µ-ops:\n",
                starts.size(), ckpts.size(),
                (unsigned long long)idxs.back());
    for (const auto &c : ckpts) {
        std::size_t bytes = 0;
        for (const auto &[name, payload] : c->uarch)
            bytes += payload.size();
        std::printf("  uop %8llu: %zu µarch sections, %zu bytes\n",
                    (unsigned long long)c->uopIndex, c->uarch.size(),
                    bytes);
    }

    // 3. Checkpoints are canonical text: the round trip is exact, so
    //    a file written here restores bit-identically anywhere.
    const std::string bytes = checkpointString(*ckpts[0]);
    const Checkpoint back = checkpointFromString(bytes);
    std::printf("round trip: %zu bytes, byte-identical: %s\n",
                bytes.size(),
                checkpointString(back) == bytes ? "yes" : "NO");

    // 4. Same measurements, less warming: run the sampled cell in both
    //    modes and compare.
    SweepOptions rewarm = opt;
    rewarm.sampleRewarm = true;
    const auto t0 = std::chrono::steady_clock::now();
    const PlanResult legacy = runSampledPlan(plan, spec, rewarm);
    const auto t1 = std::chrono::steady_clock::now();
    const PlanResult restored = runSampledPlan(plan, spec, opt);
    const auto t2 = std::chrono::steady_clock::now();

    const RunResult &a = legacy.cells[0];
    const RunResult &b = restored.cells[0];
    std::printf("\n%-22s %12s %12s\n", "", "re-warm", "restore");
    std::printf("%-22s %12.4f %12.4f\n", "mean ipc",
                a.stats.get("ipc"), b.stats.get("ipc"));
    std::printf("%-22s %12.0f %12.0f\n", "warmed µ-ops",
                a.stats.get("sample_warm_uops"),
                b.stats.get("sample_warm_uops"));
    std::printf("%-22s %12.0f %12.0f\n", "restored intervals",
                a.stats.get("sample_restored_intervals"),
                b.stats.get("sample_restored_intervals"));
    std::printf("%-22s %11.2fs %11.2fs\n", "wall clock",
                std::chrono::duration<double>(t1 - t0).count(),
                std::chrono::duration<double>(t2 - t1).count());
    std::printf("\nidentical measurements: %s\n",
                a.stats.get("ipc") == b.stats.get("ipc")
                        && a.stats.get("cycles") == b.stats.get("cycles")
                    ? "yes"
                    : "NO");
    return 0;
}
