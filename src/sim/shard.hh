/**
 * @file
 * Sharded sweep execution: split one ExperimentPlan across N hosts
 * with no coordinator, and merge the partial artifacts back into a
 * result byte-identical to a single-host run.
 *
 * The partition is a pure function of the plan seed and each cell's
 * identity (sim/plan.hh shardOfCell) — every host computes the same
 * assignment independently, so `eole shard plan --hosts 3 --host i`
 * on three machines needs no communication beyond shipping the
 * partial artifacts to the merge point. A partial ("eole-shard-v1")
 * records the resolved run parameters and, per owned cell, the cell's
 * *global slot* — its index in the config-major enumeration of all
 * filter-matched cells, the order a single-host artifact lists them
 * in. Merging validates that the partials describe the same run,
 * cover every slot exactly once, and reassembles the cells in slot
 * order; writeJsonArtifact of the merge is then byte-identical to the
 * single-host artifact (pinned by tests/test_shard.cc for plain,
 * sampled and warm-once-checkpointed sweeps).
 *
 * Partials are canonical line-oriented text, not JSON, because a
 * half-copied shard from a crashed host must be a diagnostic, not a
 * fatal: tryReadShardArtifact rejects corruption with line-numbered
 * messages the way checkpoint/snapshot deserialization does.
 */

#ifndef EOLE_SIM_SHARD_HH
#define EOLE_SIM_SHARD_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace eole {

/** One owned cell plus its position in the single-host artifact. */
struct ShardCell
{
    std::uint64_t slot = 0;  //!< config-major index over matched cells
    RunResult cell;
};

/** Everything one host's slice of a sweep produced. */
struct ShardArtifact
{
    std::string plan;
    std::uint64_t seed = 1;
    std::uint64_t warmup = 0;   //!< resolved µ-ops, like PlanResult
    std::uint64_t measure = 0;
    std::string filter;
    SampleSpec sample;          //!< disabled for full (unsampled) runs
    std::uint64_t hosts = 0;    //!< shard arithmetic this slice used
    std::uint64_t shard = 0;    //!< this slice's host index
    std::uint64_t cellsTotal = 0;  //!< matched cells across ALL hosts
    std::vector<ShardCell> cells;  //!< slot-ascending

    /** Store accounting passed through from the engine's PlanResult
     *  (never serialized — cache-hit partials must stay
     *  byte-identical to computed ones). */
    std::size_t storeHits = 0;
    std::size_t storeComputed = 0;
};

/**
 * Run host @p options.shard.host of @p options.shard.hosts (must be
 * enabled). Dispatches to runSampledPlan when @p spec is enabled,
 * runPlan otherwise; every determinism guarantee of the underlying
 * engine carries over, and a --store attached through @p options
 * works per shard. Global slots are derived by re-enumerating the
 * filter-matched grid, so disjoint shards agree on the numbering
 * without talking to each other.
 */
ShardArtifact runShard(const ExperimentPlan &plan,
                       const SampleSpec &spec,
                       const SweepOptions &options);

/** Canonical "eole-shard-v1" text (deterministic; no timestamps). */
void writeShardArtifact(std::ostream &os, const ShardArtifact &shard);
std::string shardArtifactString(const ShardArtifact &shard);

/** Parse writeShardArtifact output; false + "shard artifact line N:"
 *  diagnostic in @p err on truncated or corrupted input. */
bool tryReadShardArtifact(std::istream &is, ShardArtifact *out,
                          std::string *err);

/** Convenience: fatal (with the line-numbered diagnostic) when @p path
 *  is unreadable or malformed. */
ShardArtifact readShardArtifactFile(const std::string &path);

/**
 * Merge partials into the PlanResult the single-host run would have
 * produced. False + diagnostic in @p err when the partials disagree
 * on the run parameters, use inconsistent shard arithmetic, repeat a
 * shard or slot, or fail to cover every slot in [0, cellsTotal) —
 * i.e. when a shard is missing. The merged result is in slot order;
 * serializing it with writeJsonArtifact reproduces the single-host
 * artifact byte for byte.
 */
bool tryMergeShardArtifacts(const std::vector<ShardArtifact> &shards,
                            PlanResult *out, std::string *err);

/** Fatal-on-error wrapper over tryMergeShardArtifacts. */
PlanResult mergeShardArtifacts(const std::vector<ShardArtifact> &shards);

} // namespace eole

#endif // EOLE_SIM_SHARD_HH
