/**
 * @file
 * Shared helpers for workload kernel construction and memory
 * initialization.
 */

#ifndef EOLE_WORKLOADS_WORKLOAD_UTIL_HH
#define EOLE_WORKLOADS_WORKLOAD_UTIL_HH

#include <cstdint>

#include "common/random.hh"
#include "isa/kernel_vm.hh"

namespace eole {
namespace workloads {

/** Fill [base, base+len) with uniformly random bytes (8 at a time). */
void fillRandomBytes(KernelVM &vm, Addr base, std::size_t len,
                     std::uint64_t seed);

/** Fill an array of @p n 64-bit words with random values below bound. */
void fillRandomWords(KernelVM &vm, Addr base, std::size_t n,
                     std::uint64_t bound, std::uint64_t seed);

/** Fill an array of @p n doubles with uniform values in [lo, hi). */
void fillRandomDoubles(KernelVM &vm, Addr base, std::size_t n,
                       double lo, double hi, std::uint64_t seed);

/**
 * Link @p count fixed-size nodes starting at @p base into one random
 * cycle: word 0 of each node holds the absolute byte address of the
 * next node in a random permutation.
 */
void linkRandomCycle(KernelVM &vm, Addr base, std::size_t count,
                     std::size_t node_bytes, std::uint64_t seed);

} // namespace workloads
} // namespace eole

#endif // EOLE_WORKLOADS_WORKLOAD_UTIL_HH
