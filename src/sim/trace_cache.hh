/**
 * @file
 * TraceCache: share functionally-executed workload traces across the
 * configurations of a sweep.
 *
 * The functional µ-op stream of a workload is configuration-independent,
 * so a (C configs x W workloads) grid only needs W functional
 * executions, not C x W. The cache records each workload once (under a
 * per-workload lock, so concurrent jobs needing the same workload block
 * on the single recording instead of duplicating it) and hands out
 * shared immutable FrozenTrace replays.
 *
 * Memory discipline: paper-grade traces are large (~70 B/µ-op), so the
 * sweep engine orders jobs workload-major, tracks how many jobs still
 * need each workload, and calls drop() when the last one finishes —
 * peak residency is bounded by the number of workloads in flight, not
 * the grid. A per-trace byte budget (EOLE_TRACE_CACHE_MB, default 4096)
 * turns caching off for traces that would not fit; jobs then fall back
 * to live-VM execution, which is bit-identical by construction.
 *
 * File-backed workloads (workloads::bindTraceFile) are different: their
 * µ-ops live in a read-only mmap of the trace file, so they cost no
 * resident heap (FrozenTrace::residentBytes() == 0) and are exempt from
 * the byte budget — the kernel pages them in and out as needed. get()
 * serves a clamped prefix view directly and the hit/miss counters
 * record them under the file-source column so telemetry can tell the
 * two populations apart.
 */

#ifndef EOLE_SIM_TRACE_CACHE_HH
#define EOLE_SIM_TRACE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "workloads/workload.hh"

namespace eole {

class TraceCache
{
  public:
    /**
     * Get (recording on first use) a frozen trace of @p workload
     * covering at least @p min_uops µ-ops, or null when the trace
     * would exceed the byte budget. Thread-safe; keyed by workload
     * name (unique in the registry).
     */
    std::shared_ptr<const FrozenTrace> get(const Workload &workload,
                                           std::uint64_t min_uops);

    /** Release a workload's trace (jobs already holding the
     *  shared_ptr keep it alive until they finish). */
    void drop(const std::string &workload_name);

    /** Per-trace byte budget (EOLE_TRACE_CACHE_MB, default 4096 MB). */
    static std::uint64_t byteBudget();

    /** get() calls that found an adequate recorded trace / had to
     *  record (or re-record) one. Over-budget fallbacks count as
     *  misses. Telemetry-only; never consulted by the engine. Totals
     *  span both source kinds; the file* accessors expose the
     *  mmap-backed (bindTraceFile) share and evictCount() the number
     *  of drop() calls that actually released a trace. */
    std::uint64_t hitCount() const { return hits.load() + fileHits.load(); }
    std::uint64_t missCount() const
    {
        return misses.load() + fileMisses.load();
    }
    std::uint64_t fileHitCount() const { return fileHits.load(); }
    std::uint64_t fileMissCount() const { return fileMisses.load(); }
    std::uint64_t evictCount() const { return evicts.load(); }

  private:
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> fileHits{0};
    std::atomic<std::uint64_t> fileMisses{0};
    std::atomic<std::uint64_t> evicts{0};
    struct Entry
    {
        std::mutex mu;
        std::shared_ptr<const FrozenTrace> trace;
    };

    std::mutex mapMu;
    std::map<std::string, std::unique_ptr<Entry>> entries;
};

} // namespace eole

#endif // EOLE_SIM_TRACE_CACHE_HH
