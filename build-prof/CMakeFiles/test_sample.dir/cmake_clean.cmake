file(REMOVE_RECURSE
  "CMakeFiles/test_sample.dir/tests/test_sample.cc.o"
  "CMakeFiles/test_sample.dir/tests/test_sample.cc.o.d"
  "test_sample"
  "test_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
