#include "pipeline/stages/issue.hh"

#include <algorithm>

#include "common/pipetrace.hh"
#include "common/profiler.hh"
#include "isa/functional.hh"
#include "pipeline/pipeline_state.hh"

namespace eole {

namespace {

/** Deterministic garbage for wrong-address speculative loads. */
RegVal
garbageValue(Addr addr)
{
    return (addr * 0x9e3779b97f4a7c15ULL) >> 11;
}

/** Do two byte ranges overlap? */
bool
rangesOverlap(Addr a1, unsigned s1, Addr a2, unsigned s2)
{
    return a1 < a2 + s2 && a2 < a1 + s1;
}

RegVal
sliceValue(RegVal v, unsigned size)
{
    if (size >= 8)
        return v;
    return v & ((1ULL << (8 * size)) - 1);
}

} // namespace

IssueStage::IssueStage(const SimConfig &cfg) : issueWidth(cfg.issueWidth)
{
}

void
IssueStage::tick(PipelineState &st)
{
    // Issue-free-cycle skip. A previous full scan proved every queued
    // µ-op operand-blocked: the earliest any of them can become ready
    // is `wakeAt` (the min of the memoized srcReadyAt values), and a
    // producer that has not yet scheduled its writeback can only do so
    // through an event that bumps st.iqWakeEpoch (dispatch's PRF
    // write, an IQ insert, a squash) — issue's own writes need a scan,
    // and there is none while asleep. On a low-IPC phase (a load
    // stalled on DRAM) this turns ~100 no-op scans into one compare
    // per cycle. Bit-exact: skipped cycles could not have issued,
    // selected or moved anything; only the occupancy stat accrues.
    if (asleep) {
        if (st.now < wakeAt && st.iqWakeEpoch == wakeEpoch) {
            s.iqOccupancySum += st.iq.size();
            return;
        }
        asleep = false;
    }

    st.fus.newCycle();
    int issued = 0;
    Cycle minReady = invalidCycle;
    bool allBlocked = true;

    // One in-place pass in age order: select, execute and compact
    // (drop issued/squashed entries) without the whole-IQ snapshot
    // copy this loop used to take every cycle. Entries are examined
    // through a reference and a handle moves only to close a gap, so
    // a cycle that issues nothing touches no refcounts at all; once
    // the issue budget is spent with no gap open (and no mid-scan
    // squash), the tail cannot issue or move and the scan stops. A
    // store's violation check can squash the pipeline mid-scan;
    // squash() defers its IQ erase while `scanning` is set so
    // positions stay valid, and because the IQ is age-ordered
    // (dispatch appends in program order) a mid-scan squash can only
    // mark entries the scan has not compacted yet — the keep/drop
    // decisions already made match what the old snapshot-then-erase_if
    // form would have computed from the final flags.
    scanning = true;
    squashedDuringScan = false;
    const std::size_t n = st.iq.size();
    std::size_t out = 0;
    for (std::size_t i = 0; i < n; ++i) {
        DynInstPtr &di = st.iq[i];
        if (issued < issueWidth && !di->squashed && !di->issued) {
            if (!st.operandsReadyCaching(*di)) {
                // Operand-blocked. srcReadyAt is the memoized wake
                // cycle when every producer has scheduled writeback,
                // invalidCycle (ignored by the min) otherwise.
                if (di->srcReadyAt < minReady)
                    minReady = di->srcReadyAt;
            } else {
                allBlocked = false;
                const OpClass cls = di->uop().opClass();
                // Store Sets: loads and stores wait for the in-flight
                // store the predictor says they depend on. executeInst
                // returning false means blocked (e.g. a partial store
                // overlap); the entry stays queued and retries.
                if (st.fus.canIssue(cls, st.now)
                    && (!(di->isLoad() || di->isStore())
                        || di->dependsOnStore == 0
                        || storeExecuted(st, di->dependsOnStore))
                    && executeInst(st, di)) {
                    di->issued = true;
                    di->inIQ = false;
                    if (st.tracer && st.tracer->wants(di->seq)) {
                        st.tracer->event(st.now, di->seq, PipeEvent::Issue);
                        st.tracer->event(st.now, di->seq, PipeEvent::Exec);
                    }
                    const unsigned lat = opLatency(cls);
                    st.fus.issue(cls, st.now, st.now + lat);
                    ++issued;
                }
            }
        }
        if (!(di->issued || di->squashed)) {
            if (out != i)
                st.iq[out] = std::move(di);
            ++out;
        }
        if (issued >= issueWidth && out == i + 1 && !squashedDuringScan) {
            // Width exhausted, every entry so far kept in place and
            // nothing was marked mid-scan: the rest stays put.
            out = n;
            break;
        }
    }
    if (out != n)
        st.iq.resize(out);
    scanning = false;
    if (issued == 0 && allBlocked && !squashedDuringScan) {
        // Full scan (issued == 0 means no early stop), every entry
        // operand-blocked: nothing can issue before the earliest
        // memoized ready cycle unless a wake event (dispatch write,
        // IQ insert, squash — all bump iqWakeEpoch) intervenes. An
        // unknown-producer entry (srcReadyAt == invalidCycle) needs a
        // producer execution first, which itself needs a scan or a
        // dispatch write, so it cannot overtake the sleep. This also
        // covers the empty IQ (minReady == invalidCycle: sleep until
        // an epoch bump).
        asleep = true;
        wakeAt = minReady;
        wakeEpoch = st.iqWakeEpoch;
    }
    s.iqOccupancySum += st.iq.size();
}

bool
IssueStage::storeExecuted(const PipelineState &st, SeqNum store_seq) const
{
    // The SQ is age-ordered (dispatch appends in program order), so
    // stop as soon as the scan passes store_seq.
    for (size_t i = 0; i < st.sq.size(); ++i) {
        const DynInstPtr &stq = st.sq.at(i);
        if (stq->seq == store_seq)
            return stq->effAddrValid;
        if (stq->seq > store_seq)
            break;
    }
    // Not in the SQ: already committed (or squashed).
    return true;
}

void
IssueStage::finishExec(PipelineState &st, const DynInstPtr &di, RegVal value,
                       Cycle ready)
{
    di->computedValue = value;
    di->hasComputedValue = true;
    if (di->physDst != invalidReg) {
        PhysRegFile &f = st.prfOf(di->uop().dstClass);
        if (di->predictionUsed) {
            // The prediction was written (and made ready) at dispatch;
            // writeback replaces the value, as in the paper's baseline.
            f.overwriteValue(di->physDst, value);
        } else {
            f.write(di->physDst, value, ready);
        }
    }
    st.completions.schedule(ready, di);
}

void
IssueStage::checkStoreViolation(PipelineState &st, const DynInstPtr &store)
{
    // The LQ is age-ordered, so the first overlapping younger load is
    // the oldest one — i.e. the victim the old full-scan min picked.
    DynInstPtr victim;
    for (size_t i = 0; i < st.lq.size(); ++i) {
        const DynInstPtr &ld = st.lq.at(i);
        if (ld->seq <= store->seq || !ld->effAddrValid || ld->squashed)
            continue;
        if (!ld->issued && !ld->completed)
            continue;
        if (!rangesOverlap(ld->effAddr, ld->uop().memSize, store->effAddr,
                           store->uop().memSize)) {
            continue;
        }
        victim = ld;
        break;
    }
    if (!victim)
        return;

    ++s.memOrderViolations;
    st.ssets.violation(victim->uop().pc, store->uop().pc);
    // Squash from the violating load (it re-executes after the store).
    st.squashAfter(victim->seq - 1, victim->postSnap, st.now + 1);
}

bool
IssueStage::executeInst(PipelineState &st, const DynInstPtr &di)
{
    const OpClass cls = di->uop().opClass();

    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::IntDiv:
      case OpClass::FpAlu:
      case OpClass::FpMul:
      case OpClass::FpDiv: {
        const RegVal a = st.readOperand(*di, 0);
        const RegVal b = st.readOperand(*di, 1);
        const RegVal val = execAlu(di->uop().opc, a, b, di->uop().imm);
        finishExec(st, di, val, st.now + opLatency(cls));
        return true;
      }

      case OpClass::Branch: {
        // Branches resolve one cycle after issue on an ALU. Calls
        // produce the link value.
        const RegVal val = di->uop().isCall() ? di->uop().pc + uopBytes : 0;
        finishExec(st, di, val, st.now + 1);
        return true;
      }

      case OpClass::MemRead: {
        const Addr addr = effectiveAddr(st.readOperand(*di, 0), di->uop().imm);
        di->effAddr = addr;
        di->effAddrValid = true;

        // Search the SQ for the youngest older overlapping store.
        DynInstPtr match;
        bool partial = false;
        for (size_t i = st.sq.size(); i-- > 0;) {
            const DynInstPtr &stq = st.sq.at(i);
            if (stq->seq > di->seq || stq->squashed)
                continue;
            if (!stq->effAddrValid) {
                // Unknown address older store: proceed speculatively
                // (Store Sets vouched); violations are caught later.
                continue;
            }
            if (!rangesOverlap(addr, di->uop().memSize, stq->effAddr,
                               stq->uop().memSize)) {
                continue;
            }
            if (stq->effAddr == addr && di->uop().memSize <= stq->uop().memSize)
                match = stq;
            else
                partial = true;
            break;  // youngest older overlapping store decides
        }

        if (partial) {
            // Partial overlap: wait until the store drains (retry).
            return false;
        }

        RegVal val;
        Cycle ready;
        if (match) {
            val = sliceValue(match->storeData, di->uop().memSize);
            ready = st.now + 2;  // forwarding at L1-hit-like latency
            ++s.storeToLoadForwards;
        } else {
            // Architecturally correct value when the address is right;
            // deterministic garbage when executing with mispredicted
            // operands (will be squashed).
            val = addr == di->uop().effAddr ? di->uop().result
                                          : sliceValue(garbageValue(addr),
                                                       di->uop().memSize);
            prof::ScopedTimer mem_timer(prof::ModelMem);
            ready = st.mem->loadAccess(di->uop().pc, addr, st.now + 1);
        }
        finishExec(st, di, val, ready);
        return true;
      }

      case OpClass::MemWrite: {
        const Addr addr = effectiveAddr(st.readOperand(*di, 0), di->uop().imm);
        di->effAddr = addr;
        di->effAddrValid = true;
        di->storeData = st.readOperand(*di, 1);
        st.ssets.storeResolved(di->uop().pc, di->seq);
        // Violation check first: the squash (if any) only removes µ-ops
        // younger than the violating load; this store survives it.
        checkStoreViolation(st, di);
        finishExec(st, di, di->storeData, st.now + 1);
        return true;
      }

      default:
        finishExec(st, di, 0, st.now + 1);
        return true;
    }
}

void
IssueStage::squash(PipelineState &st, SeqNum, Cycle)
{
    // The ROB walk (commit's squash) has already marked the dead µ-ops.
    // When the squash was triggered from inside tick()'s own scan (a
    // store's violation check), erasing here would invalidate the
    // scan's positions; the scan's compaction drops the marked entries
    // itself, so the erase is simply skipped (and the scan is told not
    // to stop early, so the compaction reaches them).
    if (scanning) {
        squashedDuringScan = true;
        return;
    }
    std::erase_if(st.iq, [](const DynInstPtr &di) { return di->squashed; });
    ++st.iqWakeEpoch;  // surviving entries must be rescanned
}

void
IssueStage::resetStats()
{
    s = Stats{};
}

void
IssueStage::addStats(CoreStats &out) const
{
    out.storeToLoadForwards += s.storeToLoadForwards;
    out.memOrderViolations += s.memOrderViolations;
    out.iqOccupancySum += s.iqOccupancySum;
}

} // namespace eole
