/**
 * @file
 * Writing your own workload: author a kernel with the Assembler, give
 * it initial state, and measure how much of it EOLE offloads.
 *
 * The kernel below is a toy checksum loop with three kinds of work:
 *  - stride-predictable index arithmetic  -> Late Execution
 *  - immediate-operand mask computations  -> Early Execution
 *  - data-dependent accumulation          -> stays in the OoO engine
 */

#include <cstdio>

#include "common/random.hh"
#include "isa/assembler.hh"
#include "pipeline/core.hh"
#include "sim/configs.hh"
#include "workloads/workload.hh"

using namespace eole;

namespace {

Workload
makeChecksumKernel()
{
    constexpr Addr bufBase = 0x0;          // 64 KB data buffer
    constexpr std::int64_t bufMask = 0xfff8;

    Assembler a;
    const IntReg i = 1, addr = 2, v = 3, sum = 4, m1 = 5, m2 = 6, m3 = 7;
    const IntReg base = 20;

    Label top = a.newLabel();
    a.bind(top);
    // (1) Stride-predictable index chain: the value predictor learns
    //     it, so with EOLE these skip the IQ and late-execute.
    a.addi(i, i, 8);
    a.andi(i, i, bufMask);
    a.add(addr, base, i);
    // (2) Immediate-ALU cascade: operands are immediates or same-group
    //     results, so the Early Execution block computes them beside
    //     Rename.
    a.movi(m1, 0x5a);
    a.shli(m2, m1, 4);
    a.xori(m3, m2, 0xff);
    // (3) Data-dependent work: random values, unpredictable, executes
    //     in the out-of-order engine as usual.
    a.ld(v, addr, 0);
    a.xor_(v, v, m3);
    a.add(sum, sum, v);
    a.jmp(top);

    Workload w;
    w.name = "example.checksum";
    w.memBytes = 0x10000;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        Rng rng(2024);
        for (Addr n = 0; n * 8 <= bufMask; ++n)
            vm.writeMem(bufBase + n * 8, 8, rng.next());
        vm.setIntReg(base.idx, bufBase);
    };
    return w;
}

} // namespace

int
main()
{
    const Workload w = makeChecksumKernel();

    // Functional dry-run first: the KernelVM executes the kernel
    // directly (this is also how the timing core gets its oracle).
    {
        TraceSource ts = w.makeTrace();
        std::uint64_t alu = 0, loads = 0, total = 100000;
        for (std::uint64_t n = 0; n < total; ++n) {
            const TraceUop &u = ts.fetch();
            alu += isSingleCycleAlu(u.opc);
            loads += u.isLoad();
            ts.retireUpTo(ts.nextSeq() - 1);
        }
        std::printf("functional mix: %.1f%% single-cycle ALU, %.1f%% "
                    "loads\n\n",
                    100.0 * alu / total, 100.0 * loads / total);
    }

    // Now measure on the paper's machines.
    for (const SimConfig &cfg :
         {configs::baselineVp(6, 64), configs::eole(4, 64)}) {
        Core core(cfg, w);
        core.run(200000, 40000000);
        core.resetStats();
        core.run(1000000, 200000000);
        const StatRecord r = core.record();
        std::printf("%-18s ipc=%.3f  early-executed=%.1f%%  "
                    "late-executed=%.1f%%  in-OoO=%.1f%%\n",
                    cfg.name.c_str(), r.get("ipc"),
                    100 * r.get("ee_frac"), 100 * r.get("le_frac"),
                    100 * (1 - r.get("offload_frac")));
    }

    std::printf("\nTry editing makeChecksumKernel(): more immediate "
                "chains raise EE, more\npredictable chains raise LE, "
                "more random loads keep work in the OoO core.\n");
    return 0;
}
