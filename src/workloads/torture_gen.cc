#include "workloads/torture_gen.hh"

#include <iterator>
#include <vector>

#include "common/random.hh"
#include "isa/assembler.hh"

namespace eole {
namespace workloads {

Program
generateTortureProgram(std::uint64_t seed, std::uint64_t loop_iterations)
{
    Rng rng(seed);
    Assembler a;

    const IntReg data_lo = 1;
    const int data_count = 15;
    auto dataReg = [&] {
        return IntReg(static_cast<int>(
            data_lo.idx + rng.below(data_count)));
    };
    auto fpReg = [&] { return FpReg(static_cast<int>(1 + rng.below(8))); };
    const IntReg counter = 28;

    // Optional straight-line subroutines (bodies emitted after halt).
    const int num_subs = static_cast<int>(rng.below(3));
    std::vector<Label> subs;
    for (int s = 0; s < num_subs; ++s)
        subs.push_back(a.newLabel());

    // Preamble: random architectural state without an init hook.
    for (int r = 0; r < data_count; ++r) {
        const std::int64_t v = rng.chance(0.5)
            ? rng.range(-4096, 4096)
            : static_cast<std::int64_t>(rng.next());
        a.movi(IntReg(data_lo.idx + r), v);
    }
    for (int f = 1; f <= 8; ++f)
        a.fcvtif(FpReg(f), IntReg(data_lo.idx + (f - 1)));
    // Always draw the default count so the RNG stream (and therefore
    // the generated body) is identical for a given seed whether or not
    // the caller overrides the iteration count.
    const std::int64_t default_iters = rng.range(8, 24);
    a.movi(counter, loop_iterations
                        ? static_cast<std::int64_t>(loop_iterations)
                        : default_iters);

    const Label loop = a.newLabel();
    a.bind(loop);

    const int num_blocks = static_cast<int>(2 + rng.below(5));
    std::vector<Label> blocks;
    for (int b = 0; b < num_blocks; ++b)
        blocks.push_back(a.newLabel());
    const Label loop_end = a.newLabel();

    auto forwardTarget = [&](int cur_block) {
        // A label strictly after the current block (or the loop end).
        const std::uint64_t span = num_blocks - cur_block;  // >= 1
        const std::uint64_t pick = rng.below(span);
        return pick + cur_block + 1 >= (std::uint64_t)num_blocks
            ? loop_end
            : blocks[cur_block + 1 + pick];
    };

    auto emitMaskedAddr = [&](IntReg scratch) {
        a.andi(scratch, dataReg(), 0xFFF);
        return scratch;
    };

    for (int b = 0; b < num_blocks; ++b) {
        a.bind(blocks[b]);
        const int len = static_cast<int>(4 + rng.below(13));
        for (int i = 0; i < len; ++i) {
            const std::uint64_t kind = rng.below(100);
            if (kind < 30) {
                static const Opcode rrr[] = {
                    Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or,
                    Opcode::Xor, Opcode::Shl, Opcode::Shr, Opcode::Sar,
                    Opcode::Slt, Opcode::Sltu,
                };
                const Opcode op = rrr[rng.below(std::size(rrr))];
                const IntReg d = dataReg(), s1 = dataReg(),
                             s2 = dataReg();
                switch (op) {
                  case Opcode::Add: a.add(d, s1, s2); break;
                  case Opcode::Sub: a.sub(d, s1, s2); break;
                  case Opcode::And: a.and_(d, s1, s2); break;
                  case Opcode::Or: a.or_(d, s1, s2); break;
                  case Opcode::Xor: a.xor_(d, s1, s2); break;
                  case Opcode::Shl: a.shl(d, s1, s2); break;
                  case Opcode::Shr: a.shr(d, s1, s2); break;
                  case Opcode::Sar: a.sar(d, s1, s2); break;
                  case Opcode::Slt: a.slt(d, s1, s2); break;
                  default: a.sltu(d, s1, s2); break;
                }
            } else if (kind < 45) {
                const std::int64_t imm = rng.range(-2048, 2048);
                switch (rng.below(5)) {
                  case 0: a.addi(dataReg(), dataReg(), imm); break;
                  case 1: a.andi(dataReg(), dataReg(), imm); break;
                  case 2: a.xori(dataReg(), dataReg(), imm); break;
                  case 3:
                    a.shli(dataReg(), dataReg(), rng.below(64));
                    break;
                  default: a.slti(dataReg(), dataReg(), imm); break;
                }
            } else if (kind < 57) {
                // Load: masked base + bounded offset, random width.
                static const std::uint8_t widths[] = {1, 2, 4, 8};
                const IntReg base = emitMaskedAddr(IntReg(16));
                a.ld(dataReg(), base, rng.range(0, 4088),
                     widths[rng.below(4)]);
            } else if (kind < 66) {
                static const std::uint8_t widths[] = {1, 2, 4, 8};
                const IntReg base = emitMaskedAddr(IntReg(17));
                a.st(dataReg(), base, rng.range(0, 4088),
                     widths[rng.below(4)]);
            } else if (kind < 72) {
                const IntReg d = dataReg();
                if (rng.chance(0.5))
                    a.mul(d, dataReg(), dataReg());
                else if (rng.chance(0.5))
                    a.div(d, dataReg(), dataReg());  // /0 defined -> 0
                else
                    a.rem(d, dataReg(), dataReg());
            } else if (kind < 84) {
                const FpReg d = fpReg(), s1 = fpReg(), s2 = fpReg();
                switch (rng.below(6)) {
                  case 0: a.fadd(d, s1, s2); break;
                  case 1: a.fsub(d, s1, s2); break;
                  case 2: a.fmul(d, s1, s2); break;
                  case 3: a.fdiv(d, s1, s2); break;
                  case 4: a.fmin(d, s1, s2); break;
                  default: a.fmax(d, s1, s2); break;
                }
            } else if (kind < 90) {
                if (rng.chance(0.5))
                    a.fcvtif(fpReg(), dataReg());
                else
                    a.fcvtfi(dataReg(), fpReg());
            } else if (kind < 96) {
                const IntReg base = emitMaskedAddr(IntReg(18));
                if (rng.chance(0.5))
                    a.lfd(fpReg(), base, rng.range(0, 4088));
                else
                    a.sfd(fpReg(), base, rng.range(0, 4088));
            } else if (num_subs > 0 && kind < 98) {
                a.call(subs[rng.below(num_subs)]);
            } else {
                a.movi(dataReg(), rng.range(-100000, 100000));
            }
        }

        // Block exit: mostly fall through; sometimes a data-dependent
        // forward branch, a direct jump or an indirect jump.
        const std::uint64_t exit_kind = rng.below(100);
        if (exit_kind < 45) {
            const Label t = forwardTarget(b);
            switch (rng.below(6)) {
              case 0: a.beq(dataReg(), dataReg(), t); break;
              case 1: a.bne(dataReg(), dataReg(), t); break;
              case 2: a.blt(dataReg(), dataReg(), t); break;
              case 3: a.bge(dataReg(), dataReg(), t); break;
              case 4: a.bltu(dataReg(), dataReg(), t); break;
              default: a.bgeu(dataReg(), dataReg(), t); break;
            }
        } else if (exit_kind < 50) {
            a.jmp(forwardTarget(b));
        } else if (exit_kind < 55) {
            a.lea(IntReg(27), forwardTarget(b));
            a.jr(IntReg(27));
        }
    }

    a.bind(loop_end);
    a.addi(counter, counter, -1);
    a.bne(counter, IntReg(0), loop);
    a.halt();

    // Leaf subroutine bodies (straight-line; never touch the counter
    // or the link register).
    for (int s = 0; s < num_subs; ++s) {
        a.bind(subs[s]);
        const int len = static_cast<int>(2 + rng.below(6));
        for (int i = 0; i < len; ++i) {
            switch (rng.below(3)) {
              case 0: a.add(dataReg(), dataReg(), dataReg()); break;
              case 1: a.xor_(dataReg(), dataReg(), dataReg()); break;
              default:
                a.addi(dataReg(), dataReg(), rng.range(-64, 64));
                break;
            }
        }
        a.ret();
    }

    return a.finish();
}

} // namespace workloads
} // namespace eole
