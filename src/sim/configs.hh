/**
 * @file
 * Named processor configurations matching the paper's evaluation
 * (§5, §6). Naming follows the paper: <kind>_<issueWidth>_<iqSize>.
 */

#ifndef EOLE_SIM_CONFIGS_HH
#define EOLE_SIM_CONFIGS_HH

#include "sim/config.hh"

namespace eole {
namespace configs {

/** Table 1 baseline: 6-issue, 64-entry IQ, no value prediction. */
SimConfig baseline(int issue_width = 6, int iq_entries = 64);

/** Baseline + VTAGE-2DStride value prediction (Table 2), validation
 *  at commit (adds the LE/VT pre-commit cycle). */
SimConfig baselineVp(int issue_width = 6, int iq_entries = 64);

/** Full EOLE: Early + Late Execution on top of baselineVp. Ports and
 *  banking are unconstrained (the §5 idealization). */
SimConfig eole(int issue_width = 6, int iq_entries = 64);

/** EOLE with a banked PRF (Fig 10): banking constrains only rename
 *  allocation; ports remain unconstrained. */
SimConfig eoleBanked(int issue_width, int iq_entries, int banks);

/**
 * EOLE with the full §6.3 constraint set (Figs 11/12/13): banked PRF,
 * EE/prediction write ports, and LE/VT read ports per bank.
 */
SimConfig eoleConstrained(int issue_width, int iq_entries, int banks,
                          int levt_read_ports, int ee_write_ports = 2);

/** OLE: Late Execution only, constrained as eoleConstrained (Fig 13). */
SimConfig ole(int issue_width, int iq_entries, int banks,
              int levt_read_ports);

/** EOE: Early Execution only, constrained as eoleConstrained (Fig 13). */
SimConfig eoe(int issue_width, int iq_entries, int banks,
              int levt_read_ports);

} // namespace configs
} // namespace eole

#endif // EOLE_SIM_CONFIGS_HH
