/**
 * Figure 10: EOLE_4_64 with a banked PRF (2/4/8 banks; registers of a
 * dispatch group are allocated round-robin across banks, and rename
 * stalls when the designated bank is empty), normalized to the
 * single-bank EOLE_4_64.
 *
 * Thin wrapper over the "fig10" plan; see `eole run fig10`.
 */
#include "bench_common.hh"

int
main()
{
    return eole::runFigure("fig10");
}
