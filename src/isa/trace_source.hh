/**
 * @file
 * TraceSource: on-demand generation of the dynamic µ-op stream with
 * rewind support.
 *
 * The timing simulator is trace-driven: it fetches the architecturally
 * correct path from this source. On a squash (branch/value misprediction
 * or memory-order violation) the front end rewinds to the first squashed
 * µ-op and re-fetches the same correct-path stream. Committed µ-ops are
 * retired from the replay window.
 */

#ifndef EOLE_ISA_TRACE_SOURCE_HH
#define EOLE_ISA_TRACE_SOURCE_HH

#include <deque>
#include <functional>
#include <memory>

#include "common/logging.hh"
#include "isa/kernel_vm.hh"
#include "isa/trace.hh"

namespace eole {

/**
 * Sequence-numbered µ-op stream backed by a KernelVM. Sequence numbers
 * start at 1 and are dense. The window of µ-ops between the oldest
 * non-retired and the newest generated is kept for replay.
 */
class TraceSource
{
  public:
    /**
     * @param program kernel program (copied; self-contained source)
     * @param mem_bytes VM data-memory size
     * @param init one-time architectural state initializer
     */
    TraceSource(Program program, std::size_t mem_bytes,
                const std::function<void(KernelVM &)> &init)
        : prog(std::make_unique<Program>(std::move(program))),
          vm(std::make_unique<KernelVM>(*prog, mem_bytes))
    {
        if (init)
            init(*vm);
    }

    /** Is a µ-op available at the cursor? */
    bool
    hasNext()
    {
        fill();
        return cursor < window.size();
    }

    /** Sequence number the next fetch() will return. */
    SeqNum nextSeq() const { return baseSeq + cursor; }

    /** Peek the µ-op at the cursor without consuming it. */
    const TraceUop &
    peek()
    {
        fill();
        panic_if(cursor >= window.size(), "peek past end of trace");
        return window[cursor];
    }

    /** Consume and return the µ-op at the cursor. */
    const TraceUop &
    fetch()
    {
        fill();
        panic_if(cursor >= window.size(), "fetch past end of trace");
        return window[cursor++];
    }

    /**
     * Rewind so that the next fetch returns sequence number @p seq.
     * @p seq must still be inside the replay window.
     */
    void
    rewindTo(SeqNum seq)
    {
        panic_if(seq < baseSeq || seq > baseSeq + window.size(),
                 "rewind to %llu outside window [%llu, %llu]",
                 (unsigned long long)seq, (unsigned long long)baseSeq,
                 (unsigned long long)(baseSeq + window.size()));
        cursor = static_cast<std::size_t>(seq - baseSeq);
    }

    /** Retire (drop) all window entries with sequence number <= @p seq. */
    void
    retireUpTo(SeqNum seq)
    {
        while (!window.empty() && baseSeq <= seq) {
            panic_if(cursor == 0, "retiring unfetched µ-op %llu",
                     (unsigned long long)baseSeq);
            window.pop_front();
            ++baseSeq;
            --cursor;
        }
    }

    /** Total µ-ops generated so far (high-water mark). */
    std::uint64_t generated() const { return vm->executedUops(); }

    KernelVM &machine() { return *vm; }

  private:
    void
    fill()
    {
        if (cursor < window.size() || vm->halted())
            return;
        TraceUop u;
        if (vm->step(u))
            window.push_back(u);
    }

    std::unique_ptr<Program> prog;
    std::unique_ptr<KernelVM> vm;
    std::deque<TraceUop> window;
    SeqNum baseSeq = 1;    //!< sequence number of window[0]
    std::size_t cursor = 0;
};

} // namespace eole

#endif // EOLE_ISA_TRACE_SOURCE_HH
