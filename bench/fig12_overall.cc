/**
 * Figure 12: the bottom line. Baseline_6_64 (no VP), idealized
 * EOLE_4_64, and the realistic EOLE_4_64 with 4 LE/VT read ports and a
 * 4-bank PRF, all normalized to Baseline_VP_6_64.
 */
#include "bench_common.hh"

using namespace eole;

int
main()
{
    announce("Fig 12", "overall EOLE result vs VP baseline");

    const SimConfig ref = configs::baselineVp(6, 64);
    const SimConfig base = configs::baseline(6, 64);
    const SimConfig eole4 = configs::eole(4, 64);
    const SimConfig real4 = configs::eoleConstrained(4, 64, 4, 4);
    const auto &names = workloads::allNames();
    const auto results = runGrid({ref, base, eole4, real4}, names);

    printTable("Speedup over Baseline_VP_6_64 (Fig 12)", results,
               {base.name, eole4.name, real4.name}, names, "ipc",
               ref.name);
    return 0;
}
