/**
 * Figure 2: proportion of committed µ-ops that can be early-executed,
 * with one or two ALU stages, on the 8-wide-rename 6-issue model with
 * the VTAGE-2DStride hybrid predictor.
 *
 * Thin wrapper over the "fig02" plan; `eole run fig02` is the full
 * driver (parallel jobs, filtering, artifacts).
 */
#include "bench_common.hh"

int
main()
{
    return eole::runFigure("fig02");
}
