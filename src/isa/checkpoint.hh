/**
 * @file
 * Checkpoint: a resumable simulation start point inside a workload's
 * dynamic µ-op stream.
 *
 * A checkpoint pins (a) the position in the functional stream — the
 * FrozenTrace cursor, as a count of µ-ops already executed — and (b)
 * the architectural register state at that boundary, i.e. exactly what
 * a live KernelVM would hold after stepping that many µ-ops. Because
 * the timing core is trace-driven (load values and branch outcomes
 * travel in the TraceUop records), registers + cursor are the complete
 * architectural restart state: simulated data memory never needs to be
 * serialized.
 *
 * Checkpoints come from two equivalent sources (pinned equal by
 * tests/test_sample.cc):
 *  - captureFromVM: snapshot a live KernelVM mid-run, and
 *  - captureAt: reconstruct the register state at any index of a
 *    FrozenTrace by scalar-replaying its destination writes — no VM
 *    re-execution, one linear scan.
 *
 * The serialized form ("eole-ckpt-v1") is canonical text: writing the
 * same checkpoint twice yields identical bytes, and a serialize ->
 * deserialize -> run equals a straight-through run commit-for-commit
 * (the sampling subsystem's correctness anchor).
 */

#ifndef EOLE_ISA_CHECKPOINT_HH
#define EOLE_ISA_CHECKPOINT_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/types.hh"
#include "isa/frozen_trace.hh"

namespace eole {

class KernelVM;

/** Architectural restart state at a µ-op boundary. */
struct Checkpoint
{
    std::string workload;        //!< registry name (provenance only)
    std::uint64_t uopIndex = 0;  //!< µ-ops executed before this point
    RegVal intRegs[numArchIntRegs] = {};
    RegVal fpRegs[numArchFpRegs] = {};

    bool
    operator==(const Checkpoint &o) const
    {
        if (workload != o.workload || uopIndex != o.uopIndex)
            return false;
        for (int r = 0; r < numArchIntRegs; ++r) {
            if (intRegs[r] != o.intRegs[r])
                return false;
        }
        for (int r = 0; r < numArchFpRegs; ++r) {
            if (fpRegs[r] != o.fpRegs[r])
                return false;
        }
        return true;
    }
};

/**
 * Reconstruct the architectural state after the first @p uop_index
 * µ-ops of @p trace by replaying destination writes over the trace's
 * post-init register image. Exact: bit-identical to stepping a live
 * VM the same distance.
 *
 * @param trace the recorded stream (must cover uop_index µ-ops)
 * @param workload_name provenance tag stored in the checkpoint
 * @param uop_index boundary (0 = the trace's own start state)
 */
Checkpoint captureAt(const FrozenTrace &trace,
                     const std::string &workload_name,
                     std::uint64_t uop_index);

/** Snapshot a live VM mid-run (uopIndex = vm.executedUops()). */
Checkpoint captureFromVM(const KernelVM &vm,
                         const std::string &workload_name);

/** Canonical text serialization (schema "eole-ckpt-v1"). */
void serializeCheckpoint(std::ostream &os, const Checkpoint &ckpt);

/** Parse a serialized checkpoint (fatal on malformed input). */
Checkpoint deserializeCheckpoint(std::istream &is);

/** Convenience: serialize to / parse from a string. */
std::string checkpointString(const Checkpoint &ckpt);
Checkpoint checkpointFromString(const std::string &text);

} // namespace eole

#endif // EOLE_ISA_CHECKPOINT_HH
