file(REMOVE_RECURSE
  "CMakeFiles/test_bench.dir/tests/test_bench.cc.o"
  "CMakeFiles/test_bench.dir/tests/test_bench.cc.o.d"
  "test_bench"
  "test_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
