/**
 * Figure 7: EOLE and the VP baseline as the OoO issue width shrinks
 * from 6 to 4, normalized to Baseline_VP_6_64.
 *
 * Thin wrapper over the "fig07" plan; see `eole run fig07`.
 */
#include "bench_common.hh"

int
main()
{
    return eole::runFigure("fig07");
}
