#include "sim/store.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/env.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "sim/json.hh"

namespace eole {

std::string
storeKeyText(const StoreKey &key)
{
    std::ostringstream os;
    os << "eole-store-key-v1\n";
    os << "kind = " << key.kind << "\n";
    os << "config = " << key.config << "\n";
    os << "workload = " << key.workload << "\n";
    os << "seed = " << key.seed << "\n";
    os << "warmup = " << key.warmup << "\n";
    os << "measure = " << key.measure << "\n";
    os << "sample = " << sampleSpecString(key.sample) << "\n";
    os << "index = " << key.index << "\n";
    os << "params = " << key.params.size() << "\n";
    for (const auto &[k, v] : key.params)
        os << "p " << k << " = " << v << "\n";
    // Appended (pre-`end`) only when present: keys written before the
    // field existed keep their hashes.
    if (!key.content.empty())
        os << "content = " << key.content << "\n";
    os << "end\n";
    return os.str();
}

std::string
storeKeyHash(const StoreKey &key)
{
    return sha256Hex(storeKeyText(key));
}

std::string
cellPayloadText(const StatRecord &stats)
{
    std::ostringstream os;
    os << "eole-store-cell-v1\n";
    os << "stats = " << stats.all().size() << "\n";
    for (const auto &[name, value] : stats.all())
        os << "s " << name << " = " << jsonNumberText(value) << "\n";
    os << "end\n";
    return os.str();
}

bool
tryParseCellPayload(const std::string &text, StatRecord *out,
                    std::string *err)
{
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    const auto fail = [&](const std::string &msg) {
        *err = "cell payload line " + std::to_string(lineno) + ": "
            + msg;
        return false;
    };
    const auto next = [&](const char *what) {
        if (!std::getline(is, line))
            return fail(std::string("truncated: expected ") + what);
        ++lineno;
        return true;
    };

    if (!next("schema"))
        return false;
    if (line != "eole-store-cell-v1")
        return fail("unsupported payload schema \"" + line + "\"");
    if (!next("stats count"))
        return false;
    std::uint64_t count = 0;
    if (line.rfind("stats = ", 0) != 0
        || !parseU64Strict(line.substr(8), &count) || count > 100000) {
        return fail("bad stats count \"" + line + "\"");
    }

    StatRecord stats;
    for (std::uint64_t i = 0; i < count; ++i) {
        if (!next("stat line"))
            return false;
        // "s <name> = <value>"
        if (line.rfind("s ", 0) != 0)
            return fail("expected \"s <name> = <value>\", got \"" + line
                        + "\"");
        const std::size_t eq = line.find(" = ", 2);
        if (eq == std::string::npos || eq == 2)
            return fail("expected \"s <name> = <value>\", got \"" + line
                        + "\"");
        const std::string name = line.substr(2, eq - 2);
        const std::string valueText = line.substr(eq + 3);
        char *end = nullptr;
        const double value = std::strtod(valueText.c_str(), &end);
        if (end == valueText.c_str() || *end != '\0')
            return fail("bad stat value \"" + valueText + "\"");
        stats.add(name, value);
    }
    if (!next("end marker"))
        return false;
    if (line != "end")
        return fail("expected \"end\", got \"" + line + "\"");
    *out = stats;
    return true;
}

Store::Store(const std::string &dir_) : dir(dir_)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir + "/objects", ec);
    fatal_if(ec, "store %s: cannot create layout: %s", dir.c_str(),
             ec.message().c_str());

    std::ifstream is(dir + "/index");
    if (!is)
        return;  // fresh store
    std::string line;
    int lineno = 0;
    const auto die = [&](const char *msg) {
        fatal("store %s/index line %d: %s (delete the store directory "
              "to rebuild it)", dir.c_str(), lineno, msg);
    };
    if (!std::getline(is, line))
        die("empty index");
    ++lineno;
    {
        std::istringstream head(line);
        std::string schema, tick;
        head >> schema >> tick;
        if (schema != "eole-store-v1")
            die("unsupported store schema");
        if (!parseU64Strict(tick, &nextTick) || nextTick == 0)
            die("bad tick counter");
    }
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        Entry e;
        std::istringstream fields(line);
        std::string bytes, tick;
        if (!(fields >> e.hash >> e.kind >> bytes >> tick >> e.workload))
            die("short entry");
        if (e.hash.size() != 64
            || !parseU64Strict(bytes, &e.bytes)
            || !parseU64Strict(tick, &e.tick))
            die("malformed entry");
        // The config name is the rest of the line (axis-derived names
        // embed '=' but never a newline).
        std::getline(fields >> std::ws, e.config);
        index.push_back(std::move(e));
    }
}

Store::~Store()
{
    flush();
}

std::string
Store::objectPath(const std::string &hash) const
{
    return dir + "/objects/" + hash;
}

bool
Store::contains(const std::string &hash) const
{
    for (const Entry &e : index) {
        if (e.hash == hash)
            return std::filesystem::exists(objectPath(hash));
    }
    return false;
}

bool
Store::get(const std::string &hash, std::string *payload)
{
    Entry *entry = nullptr;
    for (Entry &e : index) {
        if (e.hash == hash) {
            entry = &e;
            break;
        }
    }
    if (!entry)
        return false;

    std::ifstream is(objectPath(hash), std::ios::binary);
    if (!is)
        return false;  // object vanished: a miss, not an error
    // Skip the self-describing key document: scan for the payload
    // separator, then take exactly the advertised byte count.
    std::string line;
    std::uint64_t bytes = ~0ULL;
    while (std::getline(is, line)) {
        if (line.rfind("payload ", 0) == 0) {
            fatal_if(!parseU64Strict(line.substr(8), &bytes),
                     "store %s: object %s: bad payload size",
                     dir.c_str(), hash.c_str());
            break;
        }
    }
    fatal_if(bytes == ~0ULL,
             "store %s: object %s: missing payload separator",
             dir.c_str(), hash.c_str());
    // Plausibility bound before allocating: a corrupted size field
    // must be a diagnostic, not a 16-exabyte allocation.
    fatal_if(bytes > (1ULL << 32),
             "store %s: object %s: implausible payload size %llu",
             dir.c_str(), hash.c_str(), (unsigned long long)bytes);
    std::string data(bytes, '\0');
    is.read(data.data(), static_cast<std::streamsize>(bytes));
    fatal_if(static_cast<std::uint64_t>(is.gcount()) != bytes,
             "store %s: object %s: truncated payload", dir.c_str(),
             hash.c_str());

    entry->tick = nextTick++;
    dirty = true;
    *payload = std::move(data);
    return true;
}

void
Store::put(const StoreKey &key, const std::string &payload)
{
    const std::string text = storeKeyText(key);
    const std::string hash = sha256Hex(text);

    std::ofstream os(objectPath(hash), std::ios::binary);
    fatal_if(!os, "store %s: cannot write object %s", dir.c_str(),
             hash.c_str());
    os << text << "payload " << payload.size() << "\n" << payload;
    os.close();
    fatal_if(os.fail(), "store %s: write failure on object %s",
             dir.c_str(), hash.c_str());

    for (Entry &e : index) {
        if (e.hash == hash) {
            e.bytes = payload.size();
            e.tick = nextTick++;
            dirty = true;
            return;
        }
    }
    Entry e;
    e.hash = hash;
    e.kind = key.kind;
    e.bytes = payload.size();
    e.tick = nextTick++;
    e.workload = key.workload;
    e.config = key.config;
    index.push_back(std::move(e));
    dirty = true;
}

std::uint64_t
Store::totalPayloadBytes() const
{
    std::uint64_t total = 0;
    for (const Entry &e : index)
        total += e.bytes;
    return total;
}

std::size_t
Store::gc(std::uint64_t max_objects, std::uint64_t max_bytes,
          std::vector<Entry> *evicted)
{
    // Lowest tick first = least recently used first; ticks are unique
    // by construction, so the order is total and deterministic.
    std::vector<std::size_t> order(index.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return index[a].tick < index[b].tick;
              });

    std::uint64_t bytes = totalPayloadBytes();
    std::vector<char> drop(index.size(), 0);
    std::size_t kept = index.size();
    for (const std::size_t i : order) {
        if (kept <= max_objects && bytes <= max_bytes)
            break;
        drop[i] = 1;
        --kept;
        bytes -= index[i].bytes;
    }

    std::vector<Entry> keptEntries;
    std::size_t n = 0;
    keptEntries.reserve(kept);
    for (std::size_t i = 0; i < index.size(); ++i) {
        if (!drop[i]) {
            keptEntries.push_back(std::move(index[i]));
            continue;
        }
        std::error_code ec;
        std::filesystem::remove(objectPath(index[i].hash), ec);
        if (evicted)
            evicted->push_back(std::move(index[i]));
        ++n;
    }
    if (n) {
        index = std::move(keptEntries);
        dirty = true;
        flush();
    }
    return n;
}

void
Store::flush()
{
    if (!dirty)
        return;
    std::ofstream os(dir + "/index.tmp", std::ios::binary);
    fatal_if(!os, "store %s: cannot write index", dir.c_str());
    os << "eole-store-v1 " << nextTick << "\n";
    for (const Entry &e : index) {
        os << e.hash << ' ' << e.kind << ' ' << e.bytes << ' ' << e.tick
           << ' ' << e.workload << ' ' << e.config << "\n";
    }
    os.close();
    fatal_if(os.fail(), "store %s: index write failure", dir.c_str());
    std::error_code ec;
    std::filesystem::rename(dir + "/index.tmp", dir + "/index", ec);
    fatal_if(ec, "store %s: cannot replace index: %s", dir.c_str(),
             ec.message().c_str());
    dirty = false;
}

} // namespace eole
