#include "isa/checkpoint.hh"

#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "isa/kernel_vm.hh"

namespace eole {

Checkpoint
captureAt(const FrozenTrace &trace, const std::string &workload_name,
          std::uint64_t uop_index)
{
    fatal_if(uop_index > trace.uops.size(),
             "checkpoint at µ-op %llu but the trace only covers %zu",
             (unsigned long long)uop_index, trace.uops.size());

    Checkpoint ckpt;
    ckpt.workload = workload_name;
    ckpt.uopIndex = uop_index;
    for (int r = 0; r < numArchIntRegs; ++r)
        ckpt.intRegs[r] = trace.initIntRegs[r];
    for (int r = 0; r < numArchFpRegs; ++r)
        ckpt.fpRegs[r] = trace.initFpRegs[r];

    // Replay destination writes. TraceUop::result is the architectural
    // post-write value (already 0 for writes to the int zero register),
    // so a scalar copy per µ-op reproduces the VM state exactly.
    for (std::uint64_t i = 0; i < uop_index; ++i) {
        const TraceUop &u = trace.uops[i];
        if (u.dst == invalidReg)
            continue;
        if (u.dstClass == RegClass::Fp)
            ckpt.fpRegs[u.dst] = u.result;
        else
            ckpt.intRegs[u.dst] = u.result;
    }
    return ckpt;
}

Checkpoint
captureFromVM(const KernelVM &vm, const std::string &workload_name)
{
    Checkpoint ckpt;
    ckpt.workload = workload_name;
    ckpt.uopIndex = vm.executedUops();
    for (int r = 0; r < numArchIntRegs; ++r)
        ckpt.intRegs[r] = vm.readIntReg(static_cast<RegIndex>(r));
    for (int r = 0; r < numArchFpRegs; ++r)
        ckpt.fpRegs[r] = vm.readFpReg(static_cast<RegIndex>(r));
    return ckpt;
}

void
serializeCheckpoint(std::ostream &os, const Checkpoint &ckpt)
{
    // Canonical line-oriented text; register values in hex (exact for
    // bit-punned FP). The workload name is length-prefixed so names
    // with spaces survive the round trip.
    os << "eole-ckpt-v1\n";
    os << "workload " << ckpt.workload.size() << ' ' << ckpt.workload
       << '\n';
    os << "uop " << ckpt.uopIndex << '\n';
    os << std::hex;
    os << "int";
    for (int r = 0; r < numArchIntRegs; ++r)
        os << ' ' << ckpt.intRegs[r];
    os << "\nfp";
    for (int r = 0; r < numArchFpRegs; ++r)
        os << ' ' << ckpt.fpRegs[r];
    os << '\n' << std::dec;
}

Checkpoint
deserializeCheckpoint(std::istream &is)
{
    Checkpoint ckpt;
    std::string token;

    is >> token;
    fatal_if(token != "eole-ckpt-v1",
             "unsupported checkpoint schema \"%s\"", token.c_str());

    is >> token;
    fatal_if(token != "workload", "checkpoint: expected 'workload'");
    std::size_t name_len = 0;
    is >> name_len;
    // Bound before resize: a corrupt length must be the documented
    // fatal diagnostic, not an uncaught length_error/bad_alloc.
    fatal_if(is.fail() || name_len > 4096,
             "checkpoint: implausible workload-name length %zu",
             name_len);
    is.get();  // the single separating space
    ckpt.workload.resize(name_len);
    is.read(ckpt.workload.data(),
            static_cast<std::streamsize>(name_len));
    fatal_if(static_cast<std::size_t>(is.gcount()) != name_len,
             "checkpoint: truncated workload name");

    is >> token;
    fatal_if(token != "uop", "checkpoint: expected 'uop'");
    is >> ckpt.uopIndex;

    is >> token;
    fatal_if(token != "int", "checkpoint: expected 'int'");
    is >> std::hex;
    for (int r = 0; r < numArchIntRegs; ++r)
        is >> ckpt.intRegs[r];

    is >> token;
    fatal_if(token != "fp", "checkpoint: expected 'fp'");
    for (int r = 0; r < numArchFpRegs; ++r)
        is >> ckpt.fpRegs[r];
    is >> std::dec;

    fatal_if(is.fail(), "checkpoint: truncated or malformed document");
    return ckpt;
}

std::string
checkpointString(const Checkpoint &ckpt)
{
    std::ostringstream oss;
    serializeCheckpoint(oss, ckpt);
    return oss.str();
}

Checkpoint
checkpointFromString(const std::string &text)
{
    std::istringstream iss(text);
    return deserializeCheckpoint(iss);
}

} // namespace eole
