/**
 * @file
 * `eole` — the unified sweep driver.
 *
 *   eole list                         show every registered plan
 *   eole run <plan> [options]         execute a plan on a worker pool
 *   eole diff <a.json> <b.json>       compare two artifacts
 *
 * Each figure of the paper is a named plan (sim/plans.hh); `eole run`
 * subsumes the per-figure bench binaries, adding parallel execution
 * (--jobs), cell filtering (--filter), structured artifacts (--out /
 * --csv) and reproducible seeding (--seed). Artifacts are byte-stable:
 * the same plan at the same run lengths and seed produces the same
 * JSON regardless of --jobs, so `eole diff` against a prior artifact
 * is an exact regression check.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/artifact.hh"
#include "sim/experiment.hh"
#include "sim/plans.hh"
#include "sim/sweep.hh"

using namespace eole;

namespace {

int
usage(FILE *to, int exit_code)
{
    std::fprintf(to,
        "eole — EOLE sweep driver\n"
        "\n"
        "usage:\n"
        "  eole list\n"
        "      List every registered experiment plan.\n"
        "\n"
        "  eole run <plan> [options]\n"
        "      --jobs N      worker threads (default: EOLE_THREADS or\n"
        "                    hardware concurrency)\n"
        "      --filter S    run only cells whose \"config/workload\"\n"
        "                    contains S\n"
        "      --out F       write the JSON artifact to F\n"
        "      --csv F       write a long-form CSV to F\n"
        "      --warmup N    warmup µ-ops (default: EOLE_WARMUP or 1M)\n"
        "      --insts N     measured µ-ops (default: EOLE_INSTS or 5M)\n"
        "      --seed N      plan base seed (default 1)\n"
        "      --no-cache    disable the shared functional-trace cache\n"
        "      --no-tables   skip the paper-style tables\n"
        "      --quiet       no per-job progress on stderr\n"
        "\n"
        "  eole diff <a.json> <b.json> [--rel-tol X] [--abs-tol X]\n"
        "      Compare two artifacts; exit 1 if they differ beyond\n"
        "      tolerance (default: exact).\n");
    return exit_code;
}

bool
takeValue(int argc, char **argv, int &i, const char *flag, std::string &out)
{
    if (std::strcmp(argv[i], flag) != 0)
        return false;
    if (i + 1 >= argc) {
        std::fprintf(stderr, "eole: %s needs a value\n", flag);
        std::exit(2);
    }
    out = argv[++i];
    return true;
}

std::uint64_t
parseU64(const std::string &s, const char *what)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(s.c_str(), &end, 0);
    if (end == s.c_str() || *end != '\0') {
        std::fprintf(stderr, "eole: bad %s \"%s\"\n", what, s.c_str());
        std::exit(2);
    }
    return v;
}

int
cmdList()
{
    std::printf("%-16s %5s  %s\n", "plan", "cells", "description");
    for (const std::string &name : plans::allNames()) {
        const ExperimentPlan p = plans::get(name);
        std::printf("%-16s %5zu  %s\n", name.c_str(), p.gridSize(),
                    p.description.c_str());
    }
    std::printf("\nrun lengths: warmup=%llu, measure=%llu µ-ops "
                "(EOLE_WARMUP / EOLE_INSTS or --warmup / --insts)\n",
                (unsigned long long)warmupUops(),
                (unsigned long long)measureUops());
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 1)
        return usage(stderr, 2);
    const std::string plan_name = argv[0];
    if (!plans::exists(plan_name)) {
        std::fprintf(stderr, "eole: unknown plan \"%s\" (try `eole "
                     "list`)\n", plan_name.c_str());
        return 2;
    }

    ExperimentPlan plan = plans::get(plan_name);
    SweepOptions opt;
    std::string out_path, csv_path, value;
    bool tables = true, quiet = false;
    for (int i = 1; i < argc; ++i) {
        if (takeValue(argc, argv, i, "--jobs", value)) {
            opt.jobs = static_cast<int>(parseU64(value, "--jobs"));
        } else if (takeValue(argc, argv, i, "--filter", value)) {
            opt.filter = value;
        } else if (takeValue(argc, argv, i, "--out", value)) {
            out_path = value;
        } else if (takeValue(argc, argv, i, "--csv", value)) {
            csv_path = value;
        } else if (takeValue(argc, argv, i, "--warmup", value)) {
            opt.warmup = parseU64(value, "--warmup");
        } else if (takeValue(argc, argv, i, "--insts", value)) {
            opt.measure = parseU64(value, "--insts");
        } else if (takeValue(argc, argv, i, "--seed", value)) {
            plan.seed = parseU64(value, "--seed");
        } else if (std::strcmp(argv[i], "--no-cache") == 0) {
            opt.useTraceCache = false;
        } else if (std::strcmp(argv[i], "--no-tables") == 0) {
            tables = false;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            std::fprintf(stderr, "eole: unknown option %s\n", argv[i]);
            return usage(stderr, 2);
        }
    }

    if (!quiet) {
        opt.progress = [](std::size_t done, std::size_t total,
                          const RunResult &cell) {
            std::fprintf(stderr, "[%zu/%zu] %s/%s ipc=%.3f\n", done,
                         total, cell.config.c_str(),
                         cell.workload.c_str(), cell.ipc());
        };
        std::fprintf(stderr, "eole run %s: %zu cells, %d jobs\n",
                     plan_name.c_str(), plan.gridSize(),
                     opt.jobs > 0 ? opt.jobs : runnerThreads());
    }

    const PlanResult result = runPlan(plan, opt);

    if (result.cells.empty())
        std::fprintf(stderr, "eole: no cells matched --filter \"%s\"\n",
                     opt.filter.c_str());
    if (tables)
        printPlanTables(plan, result);

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        fatal_if(!os, "cannot write %s", out_path.c_str());
        writeJsonArtifact(os, result);
        if (!quiet)
            std::fprintf(stderr, "wrote %s (%zu cells)\n",
                         out_path.c_str(), result.cells.size());
    }
    if (!csv_path.empty()) {
        std::ofstream os(csv_path);
        fatal_if(!os, "cannot write %s", csv_path.c_str());
        writeCsvArtifact(os, result);
        if (!quiet)
            std::fprintf(stderr, "wrote %s\n", csv_path.c_str());
    }
    return 0;
}

int
cmdDiff(int argc, char **argv)
{
    std::vector<std::string> paths;
    DiffOptions opt;
    std::string value;
    for (int i = 0; i < argc; ++i) {
        if (takeValue(argc, argv, i, "--rel-tol", value)) {
            opt.relTol = std::strtod(value.c_str(), nullptr);
        } else if (takeValue(argc, argv, i, "--abs-tol", value)) {
            opt.absTol = std::strtod(value.c_str(), nullptr);
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "eole: unknown option %s\n", argv[i]);
            return usage(stderr, 2);
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.size() != 2)
        return usage(stderr, 2);

    const PlanResult a = readJsonArtifactFile(paths[0]);
    const PlanResult b = readJsonArtifactFile(paths[1]);
    const std::size_t diffs = diffArtifacts(a, b, opt, std::cout);
    if (diffs == 0) {
        std::printf("artifacts agree: %zu cells (%s vs %s)\n",
                    a.cells.size(), paths[0].c_str(), paths[1].c_str());
        return 0;
    }
    std::printf("%zu difference(s) between %s and %s\n", diffs,
                paths[0].c_str(), paths[1].c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(stderr, 2);
    const std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(argc - 2, argv + 2);
    if (cmd == "diff")
        return cmdDiff(argc - 2, argv + 2);
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
        return usage(stdout, 0);
    std::fprintf(stderr, "eole: unknown command \"%s\"\n", cmd.c_str());
    return usage(stderr, 2);
}
