/**
 * @file
 * Floating-point (SPEC FP analog) workload kernels:
 * wupwise, applu, art, gamess, milc, namd, lbm.
 */

#include "workloads/workload.hh"

#include "common/random.hh"
#include "isa/assembler.hh"
#include "isa/functional.hh"
#include "workloads/workload_util.hh"

namespace eole {
namespace workloads {

// ---------------------------------------------------------------------
// 168.wupwise -- lattice update walking a mostly-strided index chain:
// the next site index is *loaded* through the current one (a serial
// load-to-load recurrence), but the chain values are strided except
// for an occasional irregular hop. Value-predicting the index load
// therefore breaks the recurrence -- the paper's prime VP win -- while
// the hop rate throttles the attainable coverage.
// ---------------------------------------------------------------------
Workload
makeWupwise()
{
    constexpr Addr idxBase = 0x0;          // 64K-entry index chain
    constexpr std::int64_t idxEntries = 0x10000;
    constexpr Addr xBase = 0x100000;       // 1 MB of doubles
    constexpr Addr yBase = 0x200000;
    constexpr Addr zBase = 0x300000;
    constexpr std::int64_t xMask = 0xffff8;
    constexpr std::int64_t chainBytes = idxEntries * 8;

    Assembler a;
    const IntReg jb = 1, ja = 2, xa = 3, ya = 4, za = 5, t = 6;
    const IntReg ibase = 20, xb = 21, yb = 22, zb = 23;
    const FpReg x = 1, y = 2, fz = 3, alpha = 10;

    Label top = a.newLabel();

    a.bind(top);
    // Serial recurrence: jb = I[jb] (byte offset into the chain).
    a.add(ja, ibase, jb);
    a.ld(jb, ja, 0);             // strided values: VP breaks the chain
    // Site update off the loaded index.
    a.andi(t, jb, xMask);
    a.add(xa, xb, t);
    a.lfd(x, xa, 0);
    a.add(ya, yb, t);
    a.lfd(y, ya, 0);
    a.fmul(fz, x, alpha);
    a.fadd(fz, fz, y);
    a.add(za, zb, t);
    a.sfd(fz, za, 0);
    a.jmp(top);

    Workload w;
    w.name = "168.wupwise";
    w.isFp = true;
    w.memBytes = 0x400000;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        // Chain of byte offsets: I[k] -> (k+1)*8, except an irregular
        // hop roughly every 400 entries (keeps long-run stride-
        // predictability around 99.75%).
        Rng rng(0x1680);
        for (std::int64_t n = 0; n < idxEntries; ++n) {
            std::int64_t next = ((n + 1) * 8) % chainBytes;
            if (rng.chance(1.0 / 400))
                next = static_cast<std::int64_t>(
                    rng.below(idxEntries)) * 8;
            vm.writeMem(idxBase + Addr(n) * 8, 8,
                        static_cast<RegVal>(next));
        }
        fillRandomDoubles(vm, xBase, 0x20000, 0.0, 2.0, 0x1681);
        fillRandomDoubles(vm, yBase, 0x20000, -1.0, 1.0, 0x1682);
        vm.setIntReg(ibase.idx, idxBase);
        vm.setIntReg(xb.idx, xBase);
        vm.setIntReg(yb.idx, yBase);
        vm.setIntReg(zb.idx, zBase);
        vm.setFpReg(alpha.idx, fromDouble(1.00000025));
    };
    return w;
}

// ---------------------------------------------------------------------
// 173.applu -- 5-point stencil sweep: five neighbouring loads, a small
// multiply-add tree, strided store. High FP ILP (issue-width
// sensitive); index arithmetic is stride-predictable.
// ---------------------------------------------------------------------
Workload
makeApplu()
{
    constexpr Addr gridBase = 0x0;         // 512 KB grid + halo pad
    constexpr Addr outBase = 0x120000;
    constexpr std::int64_t iMask = 0xffff; // 64K interior points
    constexpr std::int64_t rowBytes = 0x1000;

    Assembler a;
    const IntReg i = 1, addr = 2, oaddr = 3, cnt = 4;
    const IntReg gb = 20, ob = 21;
    const FpReg va = 1, vb = 2, vc = 3, vd = 4, ve = 5;
    const FpReg r1 = 6, r2 = 7, r3 = 8, s1 = 9, s2 = 10, s3 = 11;
    const FpReg w1 = 12, w2 = 13, w3 = 14;

    Label top = a.newLabel();

    a.bind(top);
    a.addi(i, i, 1);
    a.andi(i, i, iMask);
    a.shli(addr, i, 3);
    a.add(addr, addr, gb);
    a.lfd(va, addr, 0);
    a.lfd(vb, addr, 8);
    a.lfd(vc, addr, 16);
    a.lfd(vd, addr, rowBytes);
    a.lfd(ve, addr, rowBytes * 2);
    a.fmul(r1, va, w1);
    a.fmul(r2, vc, w2);
    a.fmul(r3, ve, w3);
    a.fadd(s1, r1, vb);
    a.fadd(s2, r2, vd);
    a.fadd(s3, s1, s2);
    a.fadd(s3, s3, r3);
    a.shli(oaddr, i, 3);
    a.add(oaddr, oaddr, ob);
    a.sfd(s3, oaddr, 0);
    a.addi(cnt, cnt, 1);
    a.jmp(top);

    Workload w;
    w.name = "173.applu";
    w.isFp = true;
    w.memBytes = 0x240000;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        fillRandomDoubles(vm, gridBase, 0x20000 + 0x2000, 0.0, 4.0, 0x1731);
        vm.setIntReg(gb.idx, gridBase);
        vm.setIntReg(ob.idx, outBase);
        vm.setFpReg(w1.idx, fromDouble(0.25));
        vm.setFpReg(w2.idx, fromDouble(0.5));
        vm.setFpReg(w3.idx, fromDouble(0.125));
    };
    return w;
}

// ---------------------------------------------------------------------
// 179.art -- neural-network F1 match: weights are heavily quantized
// (85% of loads return the same bit pattern -> near-perfect value
// prediction), small counter arrays cycle with period 16 (VTAGE
// territory), plus index bookkeeping. Very high EOLE offload.
// ---------------------------------------------------------------------
Workload
makeArt()
{
    constexpr Addr wBase = 0x0;            // 64K weights (512 KB)
    constexpr Addr xBase = 0x80000;        // 64K inputs (512 KB)
    constexpr std::int64_t jMask = 0xffff;
    constexpr Addr cBase = 0x100000;       // 16 bucket counters

    Assembler a;
    const IntReg j = 1, wa = 2, xa = 3, bidx = 4, baddr = 5, c = 6, c2 = 7;
    const IntReg f1 = 8, f2 = 9, f3 = 10, cnt = 11, t = 12, f4 = 13;
    const IntReg f5 = 14;
    const IntReg wb = 20, xb = 21, cb = 22;
    const FpReg fw = 1, fx = 2, fp = 3, facc = 4;

    Label top = a.newLabel();

    a.bind(top);
    a.addi(j, j, 1);
    a.andi(j, j, jMask);
    a.shli(wa, j, 3);
    a.add(wa, wa, wb);
    a.lfd(fw, wa, 0);            // 85% constant value: predictable
    a.shli(xa, j, 3);
    a.add(xa, xa, xb);
    a.lfd(fx, xa, 0);
    a.fmul(fp, fw, fx);
    a.fadd(facc, facc, fp);
    // Bucket counter: 16 interleaved +1 streams (period-16 pattern).
    a.andi(bidx, j, 15);
    a.shli(baddr, bidx, 3);
    a.add(baddr, baddr, cb);
    a.ld(c, baddr, 0);
    a.addi(c2, c, 1);
    a.st(c2, baddr, 0);
    // Index bookkeeping: predictable single-cycle ALU chains.
    a.addi(f1, f1, 2);
    a.andi(f1, f1, 0xfffff);
    a.addi(f2, f1, 5);
    a.xori(f3, f2, 0x3c);
    a.shri(t, f3, 2);
    a.add(cnt, cnt, t);
    a.addi(f4, f4, 3);
    a.ori(f5, f4, 0x10);
    a.jmp(top);

    Workload w;
    w.name = "179.art";
    w.isFp = true;
    w.memBytes = 0x100080;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        Rng rng(0x1791);
        const RegVal onePattern = fromDouble(1.0);
        for (std::int64_t n = 0; n <= jMask; ++n) {
            const RegVal v = rng.chance(0.85)
                ? onePattern
                : fromDouble(rng.uniform() * 2.0);
            vm.writeMem(wBase + Addr(n) * 8, 8, v);
        }
        fillRandomDoubles(vm, xBase, jMask + 1, 0.0, 1.0, 0x1792);
        vm.setIntReg(wb.idx, wBase);
        vm.setIntReg(xb.idx, xBase);
        vm.setIntReg(cb.idx, cBase);
    };
    return w;
}

// ---------------------------------------------------------------------
// 416.gamess -- dense dot products, unrolled 4x with independent
// accumulators: very high FP ILP, predictable index arithmetic
// (Early-Execution sensitive, like crafty).
// ---------------------------------------------------------------------
Workload
makeGamess()
{
    constexpr Addr xBase = 0x0;            // 2 MB each
    constexpr Addr yBase = 0x200000;
    constexpr std::int64_t iMask = 0xffff; // 64K groups of 4 doubles

    Assembler a;
    const IntReg i = 1, bx = 2, by = 3, cnt = 4;
    const IntReg xb = 20, yb = 21;
    const FpReg a0 = 1, a1 = 2, a2 = 3, a3 = 4;
    const FpReg b0 = 5, b1 = 6, b2 = 7, b3 = 8;
    const FpReg p0 = 9, p1 = 10, p2 = 11, p3 = 12;
    const FpReg s0 = 13, s1 = 14, s2 = 15, s3 = 16;

    Label top = a.newLabel();

    a.bind(top);
    a.addi(i, i, 1);
    a.andi(i, i, iMask);
    a.shli(bx, i, 5);            // 4 doubles per group
    a.add(bx, bx, xb);
    a.shli(by, i, 5);
    a.add(by, by, yb);
    a.lfd(a0, bx, 0);
    a.lfd(a1, bx, 8);
    a.lfd(a2, bx, 16);
    a.lfd(a3, bx, 24);
    a.lfd(b0, by, 0);
    a.lfd(b1, by, 8);
    a.lfd(b2, by, 16);
    a.lfd(b3, by, 24);
    a.fmul(p0, a0, b0);
    a.fmul(p1, a1, b1);
    a.fmul(p2, a2, b2);
    a.fmul(p3, a3, b3);
    a.fadd(s0, s0, p0);
    a.fadd(s1, s1, p1);
    a.fadd(s2, s2, p2);
    a.fadd(s3, s3, p3);
    a.addi(cnt, cnt, 1);
    a.jmp(top);

    Workload w;
    w.name = "416.gamess";
    w.isFp = true;
    w.memBytes = 0x400000;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        fillRandomDoubles(vm, xBase, 0x40000, -1.0, 1.0, 0x4161);
        fillRandomDoubles(vm, yBase, 0x40000, -1.0, 1.0, 0x4162);
        vm.setIntReg(xb.idx, xBase);
        vm.setIntReg(yb.idx, yBase);
    };
    return w;
}

// ---------------------------------------------------------------------
// 433.milc -- streaming SU(3)-like arithmetic over 8 MB arrays: memory
// bandwidth bound, random FP data (no value predictability), almost no
// integer work -> minimal EOLE offload (paper: < 10%).
// ---------------------------------------------------------------------
Workload
makeMilc()
{
    constexpr Addr aBase = 0x0;            // 8 MB
    constexpr Addr bBase = 0x800000;       // 8 MB
    constexpr Addr cBase = 0x1000000;      // 8 MB
    // Byte-offset index over 4-complex groups (64 B per group); the
    // loop is unrolled 4x so index arithmetic stays a small fraction
    // of the work, as in the real (heavily unrolled) SU(3) routines.
    constexpr std::int64_t iMask = 0x7fffc0;

    Assembler a;
    const IntReg i = 1, pa = 2, pb = 3, pc = 4;
    const IntReg ab = 20, bb = 21, cb = 22;
    const FpReg ar = 1, ai = 2, br = 3, bi = 4;
    const FpReg t1 = 5, t2 = 6, t3 = 7, t4 = 8, cr = 9, ci = 10;

    Label top = a.newLabel();

    a.bind(top);
    a.addi(i, i, 64);
    a.andi(i, i, iMask);
    a.add(pa, ab, i);
    a.add(pb, bb, i);
    a.add(pc, cb, i);
    for (int k = 0; k < 4; ++k) {
        const std::int64_t off = k * 16;
        // Complex multiply: (ar+i*ai) * (br+i*bi).
        a.lfd(ar, pa, off);
        a.lfd(ai, pa, off + 8);
        a.lfd(br, pb, off);
        a.lfd(bi, pb, off + 8);
        a.fmul(t1, ar, br);
        a.fmul(t2, ai, bi);
        a.fmul(t3, ar, bi);
        a.fmul(t4, ai, br);
        a.fsub(cr, t1, t2);
        a.fadd(ci, t3, t4);
        a.sfd(cr, pc, off);
        a.sfd(ci, pc, off + 8);
    }
    a.jmp(top);

    Workload w;
    w.name = "433.milc";
    w.isFp = true;
    w.memBytes = 0x1800000;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        fillRandomDoubles(vm, aBase, 0x100000, -1.0, 1.0, 0x4331);
        fillRandomDoubles(vm, bBase, 0x100000, -1.0, 1.0, 0x4332);
        vm.setIntReg(ab.idx, aBase);
        vm.setIntReg(bb.idx, bBase);
        vm.setIntReg(cb.idx, cBase);
    };
    return w;
}

// ---------------------------------------------------------------------
// 444.namd -- pairwise force loop: a strided pairlist (value-predictable
// index load), a short FP distance computation, and a wide block of
// independent, predictable integer bookkeeping chains. The paper's
// highest EOLE offload (~60%) and the benchmark that wants more issue
// width.
// ---------------------------------------------------------------------
Workload
makeNamd()
{
    constexpr Addr plBase = 0x0;           // 64K-entry pairlist (512 KB)
    constexpr std::int64_t iMask = 0xffff;
    constexpr Addr xBase = 0x100000;       // 4 MB coordinates
    constexpr std::int64_t xMask = 0x3ffff0;

    Assembler a;
    const IntReg i = 1, pla = 2, jj = 3, xa = 4, t = 5;
    const IntReg c1 = 6, c2 = 7, c3 = 8, c4 = 9, c5 = 10;
    const IntReg e1 = 11, e2 = 12, e3 = 13, h1 = 14, h2 = 15, cnt = 16;
    const IntReg c6 = 17, h3 = 18;
    const IntReg plb = 20, xb = 21, c60 = 22;
    const FpReg fx = 1, fy = 2, fd = 3, ff = 4, facc = 5;

    Label top = a.newLabel();
    Label skip = a.newLabel();

    a.bind(top);
    a.addi(i, i, 1);
    a.andi(i, i, iMask);
    a.shli(pla, i, 3);
    a.add(pla, pla, plb);
    a.ld(jj, pla, 0);            // pairlist: stride-16 values
    a.add(xa, xb, jj);
    a.lfd(fx, xa, 0);
    a.lfd(fy, xa, 8);
    a.fsub(fd, fx, fy);
    a.fmul(ff, fd, fd);
    a.fadd(facc, facc, ff);
    // Wide, independent, predictable integer bookkeeping.
    a.addi(c1, c1, 2);
    a.addi(c2, c1, 5);           // same-group consumer of predicted c1
    a.andi(e1, c2, 0xffff);
    a.ori(e2, e1, 3);
    a.xor_(e3, e2, c1);
    a.addi(c3, c3, 1);
    a.xori(c4, c4, 0x55);
    a.addi(c5, c5, 4);
    a.addi(c6, c6, 8);
    a.shli(h1, c3, 2);
    a.add(h2, h1, c4);
    a.ori(h3, h2, 1);
    a.add(cnt, cnt, h3);
    // Cutoff test: ~94% taken (jj & 63 < 60).
    a.andi(t, jj, 63);
    a.blt(t, c60, skip);
    a.addi(cnt, cnt, 7);
    a.bind(skip);
    a.addi(cnt, cnt, 1);
    a.jmp(top);

    Workload w;
    w.name = "444.namd";
    w.isFp = true;
    w.memBytes = 0x500000;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        // Pairlist: stride-16 byte offsets wrapping inside the coords.
        for (std::int64_t n = 0; n <= iMask; ++n)
            vm.writeMem(plBase + Addr(n) * 8, 8, (n * 16) & xMask);
        fillRandomDoubles(vm, xBase, 0x80000, -10.0, 10.0, 0x4441);
        vm.setIntReg(plb.idx, plBase);
        vm.setIntReg(xb.idx, xBase);
        vm.setIntReg(c60.idx, 60);
    };
    return w;
}

// ---------------------------------------------------------------------
// 470.lbm -- lattice-Boltzmann streaming: six concurrent read streams
// and two write streams over 16 MB, a short FP collision kernel,
// nothing predictable. Memory bandwidth bound, minimal offload.
// ---------------------------------------------------------------------
Workload
makeLbm()
{
    constexpr Addr aBase = 0x0;            // 8 MB source grid
    constexpr Addr bBase = 0x800000;       // 8 MB destination grid
    constexpr std::int64_t iMask = 0xfffff8;  // byte offset within 1 MB
    constexpr std::int64_t streamOff = 0x100000;

    Assembler a;
    const IntReg i = 1, p0 = 2, p1 = 3;
    const IntReg ab = 20, bb = 21;
    const FpReg d0 = 1, d1 = 2, d2 = 3, d3 = 4, d4 = 5, d5 = 6;
    const FpReg s0 = 7, s1 = 8, s2 = 9, m0 = 10, m1 = 11;
    const FpReg omega = 12;

    Label top = a.newLabel();

    // Unrolled 4x (32 B per iteration) so the site-index bookkeeping is
    // a tiny fraction of the streamed FP work, as in the real code.
    a.bind(top);
    a.addi(i, i, 32);
    a.andi(i, i, 0xfffe0);       // 1 MB per stream lane
    a.add(p0, ab, i);
    a.add(p1, bb, i);
    for (int k = 0; k < 4; ++k) {
        const std::int64_t off = k * 8;
        a.lfd(d0, p0, off);
        a.lfd(d1, p0, streamOff + off);
        a.lfd(d2, p0, streamOff * 2 + off);
        a.lfd(d3, p0, streamOff * 3 + off);
        a.lfd(d4, p0, streamOff * 4 + off);
        a.lfd(d5, p0, streamOff * 5 + off);
        a.fadd(s0, d0, d1);
        a.fadd(s1, d2, d3);
        a.fadd(s2, d4, d5);
        a.fadd(s0, s0, s1);
        a.fadd(s0, s0, s2);
        a.fmul(m0, s0, omega);
        a.fsub(m1, d0, m0);
        a.sfd(m0, p1, off);
        a.sfd(m1, p1, streamOff + off);
    }
    a.jmp(top);

    Workload w;
    w.name = "470.lbm";
    w.isFp = true;
    w.memBytes = 0x1000000;
    w.program = a.finish();
    w.init = [=](KernelVM &vm) {
        (void)iMask;
        fillRandomDoubles(vm, aBase, 0x100000, 0.0, 1.0, 0x4701);
        vm.setIntReg(ab.idx, aBase);
        vm.setIntReg(bb.idx, bBase);
        vm.setFpReg(omega.idx, fromDouble(1.0 / 6.0));
    };
    return w;
}

} // namespace workloads
} // namespace eole
