#include "sim/experiment.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/env.hh"
#include "common/logging.hh"
#include "sim/sweep.hh"

namespace eole {

std::uint64_t
warmupUops()
{
    return envU64("EOLE_WARMUP", defaultWarmupUops);
}

std::uint64_t
measureUops()
{
    return envU64("EOLE_INSTS", defaultMeasureUops);
}

int
runnerThreads()
{
    const auto hw = std::thread::hardware_concurrency();
    return static_cast<int>(envU64("EOLE_THREADS", hw ? hw : 4));
}

std::vector<RunResult>
runGrid(const std::vector<SimConfig> &cfgs,
        const std::vector<std::string> &workload_names)
{
    // Legacy entry point: wrap the arguments in an ad-hoc plan and run
    // it through the sweep engine (per-job seeding, worker pool, shared
    // trace cache).
    ExperimentPlan plan;
    plan.name = "grid";
    plan.configs = cfgs;
    plan.workloads = workload_names;
    return runPlan(plan).cells;
}

const RunResult &
findResult(const std::vector<RunResult> &results, const std::string &config,
           const std::string &workload)
{
    for (const auto &r : results) {
        if (r.config == config && r.workload == workload)
            return r;
    }
    fatal("no result for (%s, %s)", config.c_str(), workload.c_str());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

void
printTable(const std::string &title, const std::vector<RunResult> &results,
           const std::vector<std::string> &cfg_names,
           const std::vector<std::string> &workload_names,
           const std::string &stat, const std::string &normalize_to)
{
    std::printf("\n== %s ==\n", title.c_str());
    std::printf("%-14s", "benchmark");
    for (const auto &c : cfg_names)
        std::printf(" %22s", c.c_str());
    std::printf("\n");

    std::vector<std::vector<double>> columns(cfg_names.size());
    for (const auto &w : workload_names) {
        std::printf("%-14s", w.c_str());
        double base = 1.0;
        if (!normalize_to.empty())
            base = findResult(results, normalize_to, w).stats.get(stat);
        for (std::size_t c = 0; c < cfg_names.size(); ++c) {
            const double v =
                findResult(results, cfg_names[c], w).stats.get(stat);
            const double shown = normalize_to.empty() ? v : v / base;
            columns[c].push_back(shown);
            std::printf(" %22.3f", shown);
        }
        std::printf("\n");
    }
    std::printf("%-14s", normalize_to.empty() ? "mean" : "geomean");
    for (std::size_t c = 0; c < cfg_names.size(); ++c) {
        double m;
        if (normalize_to.empty()) {
            double sum = 0.0;
            for (double v : columns[c])
                sum += v;
            m = columns[c].empty() ? 0.0 : sum / columns[c].size();
        } else {
            m = geomean(columns[c]);
        }
        std::printf(" %22.3f", m);
    }
    std::printf("\n");
    std::fflush(stdout);
}

} // namespace eole
