#include "sim/plan.hh"

#include <algorithm>
#include <cstdlib>

#include "common/env.hh"
#include "common/logging.hh"

namespace eole {

namespace {

/** SplitMix64 finalizer (also used by common/random.hh seeding). */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
hashString(std::uint64_t h, const std::string &s)
{
    // FNV-1a over the bytes, then a finalizing mix.
    for (unsigned char c : s)
        h = (h ^ c) * 0x100000001b3ULL;
    return mix64(h);
}

} // namespace

bool
tryParseSampleSpec(const std::string &text, SampleSpec *out,
                   std::string *err)
{
    const auto fail = [&](const char *why) {
        *err = csprintf("%s sample spec \"%s\" (want N:W[:D[:B]])", why,
                        text.c_str());
        return false;
    };
    SampleSpec spec;
    // strtoull silently wraps negative input to huge values; reject
    // signs up front so "4:-100:50" is a diagnostic, not a 2^64 run.
    if (text.find_first_of("+-") != std::string::npos)
        return fail("bad");
    const char *p = text.c_str();
    char *end = nullptr;
    spec.intervals = std::strtoull(p, &end, 0);
    if (end == p || *end != ':')
        return fail("bad");
    p = end + 1;
    spec.intervalUops = std::strtoull(p, &end, 0);
    if (end == p)
        return fail("bad");
    if (*end == ':') {
        p = end + 1;
        spec.detailUops = std::strtoull(p, &end, 0);
        if (end == p)
            return fail("bad");
        if (*end == ':') {
            p = end + 1;
            spec.warmBound = std::strtoull(p, &end, 0);
            if (end == p || *end != '\0')
                return fail("bad");
        } else if (*end != '\0') {
            return fail("bad");
        }
    } else {
        if (*end != '\0')
            return fail("bad");
        spec.detailUops = spec.intervalUops / 2;
    }
    if (spec.intervals == 0 || spec.intervalUops == 0) {
        *err = csprintf("sample spec \"%s\": N and W must be positive",
                        text.c_str());
        return false;
    }
    *out = spec;
    return true;
}

SampleSpec
parseSampleSpec(const std::string &text)
{
    SampleSpec spec;
    std::string err;
    fatal_if(!tryParseSampleSpec(text, &spec, &err), "%s", err.c_str());
    return spec;
}

SampleSpec
resolveSampleSpec(const SampleSpec &option_spec,
                  const SampleSpec &plan_spec)
{
    return option_spec.enabled() ? option_spec : plan_spec;
}

std::string
sampleSpecString(const SampleSpec &spec)
{
    return std::to_string(spec.intervals) + ":"
        + std::to_string(spec.intervalUops) + ":"
        + std::to_string(spec.detailUops) + ":"
        + std::to_string(spec.warmBound);
}

std::uint64_t
ExperimentPlan::runlenFor(const std::string &config) const
{
    for (const auto &[name, uops] : runlens) {
        if (name == config)
            return uops;
    }
    return 0;
}

std::uint64_t
resolveMeasureFor(std::uint64_t option_measure, const ExperimentPlan &plan,
                  const std::string &config)
{
    if (option_measure)
        return option_measure;
    if (const std::uint64_t runlen = plan.runlenFor(config))
        return runlen;
    return resolveRunLength(0, plan.measure, "EOLE_INSTS",
                            defaultMeasureUops);
}

std::uint64_t
jobSeed(std::uint64_t plan_seed, std::uint64_t config_seed,
        const std::string &config, const std::string &workload)
{
    std::uint64_t h = mix64(plan_seed);
    h = mix64(h ^ config_seed);
    h = hashString(h, config);
    h = hashString(h, workload);
    return h;
}

std::uint64_t
shardOfCell(std::uint64_t plan_seed, std::uint64_t config_seed,
            const std::string &config, const std::string &workload,
            std::uint64_t hosts)
{
    fatal_if(hosts == 0, "shardOfCell: hosts must be positive");
    // Remix the cell seed once more so the shard assignment shares no
    // low-bit structure with the seed streams the cell actually runs
    // with (a cell's shard must not correlate with its measurements).
    return mix64(jobSeed(plan_seed, config_seed, config, workload))
        % hosts;
}

bool
ShardSlice::owns(std::uint64_t plan_seed, std::uint64_t config_seed,
                 const std::string &config,
                 const std::string &workload) const
{
    if (!enabled())
        return true;
    return shardOfCell(plan_seed, config_seed, config, workload, hosts)
        == host;
}

std::uint64_t
maxInflightUops(const ExperimentPlan &plan)
{
    std::uint64_t worst = 0;
    for (const SimConfig &c : plan.configs) {
        const std::uint64_t inflight =
            static_cast<std::uint64_t>(c.frontEndCycles) * c.fetchWidth
            + c.robEntries + c.iqEntries + 4 * c.renameWidth
            + 2 * c.commitWidth;
        worst = std::max(worst, inflight);
    }
    // Slack for the commit-group overshoot of the warmup and measure
    // run() calls and for anything this accounting missed.
    return worst + 512;
}

bool
cellMatches(const std::string &filter, const std::string &config,
            const std::string &workload)
{
    if (filter.empty())
        return true;
    const std::string id = config + "/" + workload;
    return id.find(filter) != std::string::npos;
}

} // namespace eole
