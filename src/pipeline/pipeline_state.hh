/**
 * @file
 * The shared pipeline substrate every stage operates on.
 *
 * PipelineState owns the structural resources (ROB, LSQ, IQ, physical
 * register files, rename maps, FU pool, PRF port model) and the
 * architectural machinery (trace source, predictors, memory hierarchy)
 * that the stage objects read and mutate through their tick() methods.
 * It also implements the cross-stage recovery machinery: a full squash
 * walks the stages in a fixed youngest-first unwind order, and a
 * resolved-branch redirect notifies every stage so front-end
 * speculative state (e.g. the Early Execution bypass) is dropped.
 *
 * Stats that no single stage owns (cycles, committed µ-ops, branch
 * mispredictions resolved through the shared recovery path) live here;
 * everything else is stage-owned and aggregated by Core::stats().
 */

#ifndef EOLE_PIPELINE_PIPELINE_STATE_HH
#define EOLE_PIPELINE_PIPELINE_STATE_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "bpred/branch_unit.hh"
#include "common/queues.hh"
#include "mem/hierarchy.hh"
#include "pipeline/core_stats.hh"
#include "pipeline/dyn_inst.hh"
#include "pipeline/fu_pool.hh"
#include "pipeline/port_model.hh"
#include "pipeline/regfile.hh"
#include "pipeline/store_sets.hh"
#include "sim/config.hh"
#include "vpred/value_predictor.hh"
#include "workloads/workload.hh"

namespace eole {

class PipeTracer;
class Stage;

struct PipelineState
{
    PipelineState(const SimConfig &config, const Workload &workload);
    ~PipelineState();

    // --- Configuration & substrate ---
    SimConfig cfg;
    TraceSource ts;
    std::unique_ptr<ValuePredictor> vp;
    std::unique_ptr<BranchUnit> bu;
    std::unique_ptr<MemHierarchy> mem;
    std::unique_ptr<PhysRegFile> prf[numRegClasses];
    std::unique_ptr<RenameMap> rmap[numRegClasses];
    StoreSets ssets;
    FuPool fus;
    PrfPortModel ports;

    // --- Inter-stage pipeline registers ---

    /** Per-core DynInst arena. Declared before every container that
     *  holds DynInstPtr handles (and before the stages, via Core's
     *  member order) so reverse destruction drains all handles first —
     *  the pool panics on live objects (common/slab.hh lifetime
     *  rules). */
    DynInstPool dynInstPool;

    Cycle now = 0;
    DelayedPipe<DynInstPtr> frontPipe;  //!< fetch -> rename
    std::deque<DynInstPtr> renameOut;   //!< rename -> dispatch
    CircularQueue<DynInstPtr> rob;
    CircularQueue<DynInstPtr> lq;
    CircularQueue<DynInstPtr> sq;
    std::vector<DynInstPtr> iq;
    /** Bumped by every event that can change what the issue scan would
     *  find: a PRF readiness write outside the scan (dispatch's EE/VP
     *  port write — issue's own writes happen during a scan), an IQ
     *  insert, and a squash. IssueStage uses it to skip provably
     *  issue-free cycles (see IssueStage::tick). */
    std::uint64_t iqWakeEpoch = 0;
    /** Executed µ-ops waiting for their result-ready cycle
     *  (common/queues.hh timing wheel; drained by CompletionStage). */
    TimingWheel<DynInstPtr> completions;

    Cycle fetchStallUntil = 0;
    DynInstPtr fetchBlockedOnBranch;
    int bankCursor = 0;

    /** Optional commit observer, invoked for every retiring µ-op after
     *  the oracle check (tests and tools capture the commit stream
     *  through this; unset in normal runs). */
    std::function<void(const DynInst &)> onCommit;

    /** Per-µop lifecycle event sink (common/pipetrace.hh). Null in
     *  normal runs; every stage hook is guarded by this null check, so
     *  tracing off costs one predictable branch per event site. Set
     *  through Core::setPipeTracer. Non-owning. */
    PipeTracer *tracer = nullptr;

    // --- Cross-stage statistics ---
    Cycle cycles = 0;
    std::uint64_t committedUops = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t highConfMispredicts = 0;

    /** Register the squash/redirect unwind order (non-owning; set by
     *  Core when it assembles the stage pipeline). */
    void setSquashOrder(std::vector<Stage *> order);

    /** Start-of-cycle housekeeping (per-cycle port budgets). */
    void beginCycle();

    /** End-of-cycle housekeeping (advance time). */
    void endCycle();

    // --- Register helpers ---
    PhysRegFile &prfOf(RegClass cls) { return *prf[int(cls)]; }
    const PhysRegFile &prfOf(RegClass cls) const { return *prf[int(cls)]; }
    RenameMap &mapOf(RegClass cls) { return *rmap[int(cls)]; }

    int bankOfReg(RegClass cls, RegIndex phys) const;
    RegVal readOperand(const DynInst &di, int idx) const;
    bool operandsReady(const DynInst &di) const;

    /** operandsReady plus memoization: when every producer has already
     *  scheduled its writeback, the combined ready cycle is final and
     *  is cached in @p di.srcReadyAt so later polls compare a field the
     *  issue scan already has in cache instead of re-reading the
     *  register file. */
    bool operandsReadyCaching(DynInst &di) const;

    // --- Recovery ---

    /**
     * Full squash of everything younger than @p keep_seq: every stage
     * unwinds its in-flight state (in the registered order), then the
     * trace source rewinds and the front-end history is restored.
     *
     * @param keep_seq youngest surviving sequence number
     * @param restore front-end snapshot to restore (state after
     *        keep_seq)
     * @param resume_fetch_at first cycle fetch may run again
     */
    void squashAfter(SeqNum keep_seq, const BranchUnit::SnapshotPtr &restore,
                     Cycle resume_fetch_at);

    /** Mark one µ-op squashed and release its predictor resources. */
    void markSquashed(const DynInstPtr &di);

    /** Walk back one µ-op's rename (map restore + register free). */
    void undoRename(const DynInstPtr &di);

    /** A mispredicted branch resolved: repair + un-stall fetch. */
    void resolveMispredictedBranch(const DynInstPtr &di);

    /** Fold the cross-stage counters into the aggregate record. */
    void addStats(CoreStats &out) const;

    /** Zero the cross-stage counters. */
    void resetStats();

  private:
    std::vector<Stage *> squashOrder;
};

} // namespace eole

#endif // EOLE_PIPELINE_PIPELINE_STATE_HH
