/**
 * @file
 * Run a plan in checkpointed-sampling mode — the C++ twin of
 * `eole run <plan> --sample N:W:D[:B]` and the sampled sibling of
 * examples/sweep_plan.cpp.
 *
 *   ./build/sampled_sweep [jobs]
 *
 * Declares a small grid, runs it full-length and sampled, prints the
 * sampled means with their 95% confidence intervals next to the
 * full-run IPCs, and shows the artifact round trip (sampled artifacts
 * are byte-stable across worker counts, like full ones) plus the
 * CI-overlap diff mode.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "sim/artifact.hh"
#include "sim/configs.hh"
#include "sim/plan.hh"
#include "sim/sample/sample.hh"
#include "sim/sweep.hh"

using namespace eole;

int
main(int argc, char **argv)
{
    // 1. Declare the grid, exactly as for a full sweep.
    ExperimentPlan plan;
    plan.name = "sampled_example";
    plan.description = "baseline_vp vs EOLE, sampled";
    plan.configs = {configs::baselineVp(6, 64), configs::eole(6, 64)};
    plan.workloads = {"164.gzip", "186.crafty", "444.namd"};
    plan.warmup = 20000;
    plan.measure = 200000;

    // 2. The sampling spec: 10 intervals of 4000 measured µ-ops, each
    //    after 2000 µ-ops of detailed warmup. warmBound 0 = classic
    //    SMARTS continuous functional warming (reference fidelity;
    //    see DESIGN.md §8 for when a bounded window is safe).
    SampleSpec spec;
    spec.intervals = 10;
    spec.intervalUops = 4000;
    spec.detailUops = 2000;
    spec.warmBound = 0;

    SweepOptions opt;
    opt.jobs = argc > 1 ? std::atoi(argv[1]) : 0;

    // 3. Run both modes through the same worker pool.
    const PlanResult full = runPlan(plan, opt);
    const PlanResult sampled = runSampledPlan(plan, spec, opt);

    std::printf("%-14s %-18s %10s %16s  %s\n", "workload", "config",
                "full", "sampled ±ci95", "within?");
    for (const RunResult &cell : sampled.cells) {
        const RunResult *ref = full.find(cell.config, cell.workload);
        const double f = ref ? ref->ipc() : 0.0;
        const double m = cell.stats.get("ipc");
        const double ci = cell.stats.get("ipc_ci95");
        std::printf("%-14s %-18s %10.4f %9.4f ±%5.4f  %s\n",
                    cell.workload.c_str(), cell.config.c_str(), f, m,
                    ci, std::fabs(m - f) <= ci ? "yes" : "NO");
    }

    // 4. Sampled artifacts are canonical JSON too: byte-stable for a
    //    given plan/seed/lengths/spec, with the spec recorded in the
    //    header and per-cell sample_* stats.
    const std::string bytes = jsonArtifactString(sampled);
    std::stringstream ss(bytes);
    const PlanResult reread = readJsonArtifact(ss);
    std::printf("\nartifact: %zu bytes, spec %s recorded: %llu:%llu:"
                "%llu:%llu\n",
                bytes.size(), sampleSpecString(spec).c_str(),
                (unsigned long long)reread.sample.intervals,
                (unsigned long long)reread.sample.intervalUops,
                (unsigned long long)reread.sample.detailUops,
                (unsigned long long)reread.sample.warmBound);

    // 5. CI-overlap diff: a re-run with a different base seed moves
    //    every interval phase and every predictor seed, yet the two
    //    sampled artifacts agree statistically.
    ExperimentPlan reseeded = plan;
    reseeded.seed = 1234;
    const PlanResult other = runSampledPlan(reseeded, spec, opt);
    DiffOptions ci_diff;
    ci_diff.ciOverlap = true;  // ipc compared by CI overlap
    ci_diff.relTol = 0.1;      // raw cycle/µ-op totals move with the
                               // interval phases; compare loosely
    const std::size_t diffs =
        diffArtifacts(sampled, other, ci_diff, std::cout);
    std::printf("CI-overlap diff across seeds: %zu difference(s)\n",
                diffs);
    return 0;
}
