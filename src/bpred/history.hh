/**
 * @file
 * Global branch-history management with geometric folded registers and
 * O(1) checkpoint/restore.
 *
 * Both TAGE (direction prediction) and VTAGE (value prediction) index
 * their tagged components with hashes of geometrically increasing
 * history lengths. The standard implementation keeps, per component,
 * "folded" registers that are updated incrementally as bits enter and
 * leave the history. The raw history lives in a large circular bit
 * buffer that is only ever appended to, so a checkpoint is just the
 * write position plus the folded registers — restoring is O(folds).
 */

#ifndef EOLE_BPRED_HISTORY_HH
#define EOLE_BPRED_HISTORY_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "isa/snapshot.hh"

namespace eole {

/**
 * One incrementally-folded view of the global history: the most recent
 * @c histLen bits XOR-folded down to @c width bits.
 */
struct FoldedHistory
{
    std::uint32_t comp = 0;
    int histLen = 0;
    int width = 1;
    int outPoint = 0;

    void
    configure(int hist_len, int fold_width)
    {
        panic_if(fold_width <= 0 || fold_width > 30,
                 "bad fold width %d", fold_width);
        histLen = hist_len;
        width = fold_width;
        outPoint = hist_len % fold_width;
        comp = 0;
    }

    /** Shift in @p in_bit; @p out_bit is the bit leaving the history. */
    void
    update(bool in_bit, bool out_bit)
    {
        comp = (comp << 1) | static_cast<std::uint32_t>(in_bit);
        comp ^= static_cast<std::uint32_t>(out_bit) << outPoint;
        comp ^= comp >> width;
        comp &= (1u << width) - 1;
    }
};

/**
 * Append-only global history with folded views.
 *
 * Component folds are registered once at construction; every push()
 * updates all of them. Snapshots capture the fold states and the
 * logical position; the underlying circular buffer is never rewound,
 * so snapshots stay valid as long as fewer than bufferBits new bits
 * were pushed since (far beyond any pipeline depth).
 */
class GlobalHistory
{
  public:
    struct Snapshot
    {
        std::uint64_t pos = 0;
        std::vector<std::uint32_t> folds;
    };

    /**
     * @param fold_specs (histLen, width) pairs; one fold per pair
     * @param buffer_bits circular raw-history capacity (power of two)
     */
    GlobalHistory(const std::vector<std::pair<int, int>> &fold_specs,
                  std::size_t buffer_bits = 4096)
        : bits(buffer_bits, 0)
    {
        panic_if((buffer_bits & (buffer_bits - 1)) != 0,
                 "buffer_bits must be a power of two");
        folds.resize(fold_specs.size());
        for (std::size_t i = 0; i < fold_specs.size(); ++i) {
            folds[i].configure(fold_specs[i].first, fold_specs[i].second);
            panic_if(static_cast<std::size_t>(fold_specs[i].first)
                         >= buffer_bits,
                     "history length exceeds buffer");
        }
    }

    /** Append one direction bit. */
    void
    push(bool bit)
    {
        for (auto &f : folds) {
            const bool out = bitAt(f.histLen);
            f.update(bit, out);
        }
        bits[pos & (bits.size() - 1)] = bit;
        ++pos;
    }

    /** Bit at @p distance (1 = most recent); 0 before history fills. */
    bool
    bitAt(std::uint64_t distance) const
    {
        if (distance > pos)
            return false;
        return bits[(pos - distance) & (bits.size() - 1)] != 0;
    }

    /** Folded value of registered component @p i. */
    std::uint32_t folded(std::size_t i) const { return folds[i].comp; }

    std::uint64_t position() const { return pos; }

    Snapshot
    snapshot() const
    {
        Snapshot s;
        snapshotInto(s);
        return s;
    }

    /** Fill @p s in place, reusing its fold buffer's capacity (the
     *  per-branch snapshot path recycles Snapshot objects). */
    void
    snapshotInto(Snapshot &s) const
    {
        s.pos = pos;
        s.folds.resize(folds.size());
        for (std::size_t i = 0; i < folds.size(); ++i)
            s.folds[i] = folds[i].comp;
    }

    void
    restore(const Snapshot &s)
    {
        panic_if(s.folds.size() != folds.size(), "snapshot shape mismatch");
        panic_if(pos - s.pos >= bits.size(),
                 "snapshot too old: %llu bits pushed since",
                 static_cast<unsigned long long>(pos - s.pos));
        pos = s.pos;
        for (std::size_t i = 0; i < folds.size(); ++i)
            folds[i].comp = s.folds[i];
    }

    /** Serialize position, fold values and the raw bit buffer
     *  (canonical text; isa/snapshot.hh). Fold geometry is derived
     *  from construction and not serialized. */
    void
    snapshotState(std::ostream &os) const
    {
        SnapshotWriter w(os);
        w.tag("hist").u64(pos).u64(folds.size()).u64(bits.size());
        w.end();
        w.tag("hist.folds");
        for (const auto &f : folds)
            w.u64(f.comp);
        w.end();
        // The raw buffer packs 4 direction bits per hex nibble,
        // buffer-index order.
        os << "hist.bits ";
        for (std::size_t i = 0; i < bits.size(); i += 4) {
            unsigned nib = 0;
            for (std::size_t b = 0; b < 4 && i + b < bits.size(); ++b)
                nib |= (bits[i + b] ? 1u : 0u) << (3 - b);
            os << "0123456789abcdef"[nib];
        }
        os << '\n';
    }

    /** Restore into a same-geometry instance (fatal with section/line
     *  context otherwise). */
    void
    restoreState(SnapshotReader &r)
    {
        r.line("hist");
        const std::uint64_t p = r.u64("pos");
        r.fatalIf(r.u64("folds") != folds.size(),
                  "history fold-count mismatch");
        r.fatalIf(r.u64("bits") != bits.size(),
                  "history buffer-size mismatch");
        r.endLine();
        r.line("hist.folds");
        for (auto &f : folds) {
            const std::uint64_t c = r.u64("fold");
            r.fatalIf(c >= (1ULL << f.width), "fold value too wide");
            f.comp = static_cast<std::uint32_t>(c);
        }
        r.endLine();
        r.line("hist.bits");
        const std::string packed = r.str("bits");
        r.fatalIf(packed.size() != (bits.size() + 3) / 4,
                  "bit buffer truncated");
        for (std::size_t i = 0; i < bits.size(); i += 4) {
            const char c = packed[i / 4];
            int nib;
            if (c >= '0' && c <= '9')
                nib = c - '0';
            else if (c >= 'a' && c <= 'f')
                nib = c - 'a' + 10;
            else
                r.fail("bit buffer has a non-hex character");
            for (std::size_t b = 0; b < 4 && i + b < bits.size(); ++b)
                bits[i + b] = (nib >> (3 - b)) & 1;
        }
        r.endLine();
        pos = p;
    }

  private:
    std::vector<std::uint8_t> bits;
    std::vector<FoldedHistory> folds;
    std::uint64_t pos = 0;
};

} // namespace eole

#endif // EOLE_BPRED_HISTORY_HH
