/**
 * Ablation (beyond the paper's figures, §2 context): the value
 * predictor family compared head-to-head on the VP baseline --
 * Last-Value, Stride, 2-Delta Stride, FCM, VTAGE and the paper's
 * VTAGE-2DStride hybrid.
 */
#include "bench_common.hh"

using namespace eole;

int
main()
{
    announce("Ablation", "value-predictor family comparison");

    const SimConfig base = configs::baseline(6, 64);

    std::vector<SimConfig> cfgs = {base};
    const std::pair<VpKind, const char *> kinds[] = {
        {VpKind::LastValue, "VP_LVP"},
        {VpKind::Stride, "VP_Stride"},
        {VpKind::TwoDeltaStride, "VP_2DStride"},
        {VpKind::Fcm, "VP_FCM"},
        {VpKind::Vtage, "VP_VTAGE"},
        {VpKind::HybridVtage2DStride, "VP_Hybrid"},
    };
    for (const auto &[kind, name] : kinds) {
        SimConfig c = configs::baselineVp(6, 64);
        c.name = name;
        c.vp.kind = kind;
        cfgs.push_back(c);
    }

    const auto &names = workloads::allNames();
    const auto results = runGrid(cfgs, names);

    std::vector<std::string> cols;
    for (const auto &[kind, name] : kinds)
        cols.emplace_back(name);

    printTable("Speedup over Baseline_6_64 by predictor", results, cols,
               names, "ipc", base.name);
    printTable("Coverage (used/eligible) by predictor", results, cols,
               names, "vp_coverage");
    printTable("Accuracy on used predictions by predictor", results, cols,
               names, "vp_accuracy");
    return 0;
}
