/**
 * @file
 * PC-indexed stride prefetcher (Table 1: L2 stride prefetcher,
 * degree 8, distance 1).
 *
 * On each observed demand access, the table entry for the accessing
 * instruction learns the address stride; once the same stride is seen
 * twice, the prefetcher issues `degree` line prefetches starting
 * `distance` strides ahead into the attached cache.
 */

#ifndef EOLE_MEM_PREFETCHER_HH
#define EOLE_MEM_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/snapshot.hh"
#include "mem/cache.hh"

namespace eole {

/** Stride-prefetcher knobs. String-addressable as "mem.prefetch.*"
 *  via the parameter registry (sim/params.hh); new fields must be
 *  registered there. */
struct PrefetcherConfig
{
    int log2Entries = 8;
    int degree = 8;
    int distance = 1;
    std::uint32_t lineBytes = 64;
};

class StridePrefetcher
{
  public:
    explicit StridePrefetcher(const PrefetcherConfig &config = {})
        : cfg(config), table(1u << config.log2Entries)
    {
    }

    /** Attach the cache that receives prefetched lines. */
    void attach(Cache *c) { target = c; }

    /**
     * Observe a demand access by the instruction at @p pc.
     * Issues prefetches into the attached cache when confident.
     */
    void
    observe(Addr pc, Addr addr, Cycle now)
    {
        Entry &e = table[(pc >> 2) & ((1u << cfg.log2Entries) - 1)];
        if (e.tag != pc) {
            e.tag = pc;
            e.lastAddr = addr;
            e.stride = 0;
            e.confidence = 0;
            return;
        }
        const std::int64_t stride =
            static_cast<std::int64_t>(addr) -
            static_cast<std::int64_t>(e.lastAddr);
        e.lastAddr = addr;
        if (stride == 0)
            return;
        if (stride == e.stride) {
            if (e.confidence < 3)
                ++e.confidence;
        } else {
            e.stride = stride;
            e.confidence = 0;
            return;
        }
        if (e.confidence < 2 || target == nullptr)
            return;
        // Confident: prefetch `degree` lines ahead.
        for (int d = 0; d < cfg.degree; ++d) {
            const std::int64_t delta = e.stride * (cfg.distance + d);
            const Addr target_addr = addr + static_cast<Addr>(delta);
            target->prefetch(target_addr
                                 & ~static_cast<Addr>(cfg.lineBytes - 1),
                             now);
            ++issued;
        }
    }

    std::uint64_t issuedCount() const { return issued; }

    /** Zero the issue counter (stride table state is kept). */
    void resetStats() { issued = 0; }

    /** Serialize the stride-training table (canonical text; the issue
     *  counter is measurement state, excluded). */
    void
    snapshotState(std::ostream &os) const
    {
        SnapshotWriter w(os);
        w.tag("prefetch").u64(table.size());
        w.end();
        w.tag("prefetch.e");
        for (const Entry &e : table)
            w.u64(e.tag).u64(e.lastAddr).i64(e.stride).u64(e.confidence);
        w.end();
    }

    /** Restore into a same-geometry prefetcher. */
    void
    restoreState(SnapshotReader &r)
    {
        r.line("prefetch");
        r.fatalIf(r.u64("entries") != table.size(),
                  "prefetcher table size mismatch");
        r.endLine();
        r.line("prefetch.e");
        for (Entry &e : table) {
            e.tag = r.u64("tag");
            e.lastAddr = r.u64("lastAddr");
            e.stride = r.i64("stride");
            e.confidence =
                static_cast<std::uint8_t>(r.u64Max("conf", 3));
        }
        r.endLine();
    }

  private:
    struct Entry
    {
        Addr tag = ~0ULL;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        std::uint8_t confidence = 0;
    };

    PrefetcherConfig cfg;
    std::vector<Entry> table;
    Cache *target = nullptr;
    std::uint64_t issued = 0;
};

} // namespace eole

#endif // EOLE_MEM_PREFETCHER_HH
