/**
 * @file
 * Named processor configurations matching the paper's evaluation
 * (§5, §6). Naming follows the paper: <kind>_<issueWidth>_<iqSize>.
 */

#ifndef EOLE_SIM_CONFIGS_HH
#define EOLE_SIM_CONFIGS_HH

#include <string>
#include <vector>

#include "sim/config.hh"

namespace eole {
namespace configs {

/** Table 1 baseline: 6-issue, 64-entry IQ, no value prediction. */
SimConfig baseline(int issue_width = 6, int iq_entries = 64);

/** Baseline + VTAGE-2DStride value prediction (Table 2), validation
 *  at commit (adds the LE/VT pre-commit cycle). */
SimConfig baselineVp(int issue_width = 6, int iq_entries = 64);

/** Full EOLE: Early + Late Execution on top of baselineVp. Ports and
 *  banking are unconstrained (the §5 idealization). */
SimConfig eole(int issue_width = 6, int iq_entries = 64);

/** EOLE with a banked PRF (Fig 10): banking constrains only rename
 *  allocation; ports remain unconstrained. */
SimConfig eoleBanked(int issue_width, int iq_entries, int banks);

/**
 * EOLE with the full §6.3 constraint set (Figs 11/12/13): banked PRF,
 * EE/prediction write ports, and LE/VT read ports per bank.
 */
SimConfig eoleConstrained(int issue_width, int iq_entries, int banks,
                          int levt_read_ports, int ee_write_ports = 2);

/** OLE: Late Execution only, constrained as eoleConstrained (Fig 13). */
SimConfig ole(int issue_width, int iq_entries, int banks,
              int levt_read_ports);

/** EOE: Early Execution only, constrained as eoleConstrained (Fig 13). */
SimConfig eoe(int issue_width, int iq_entries, int banks,
              int levt_read_ports);

/**
 * Resolve a configuration by name: first the paper naming scheme
 * (Baseline_6_64, Baseline_VP_4_64, EOLE_4_64, EOLE_4_64_2banks,
 * EOLE_4_64_4ports_4banks, OLE_/EOE_...), then any config declared by
 * a registered plan (EE_2stages, FPC_paper, VP_Stride, ...). This is
 * what `eole describe <config>` and plan files' `base =` / `configs =`
 * directives resolve through. Returns false when nothing matches.
 */
bool findNamed(const std::string &name, SimConfig *out);

/**
 * Every finite name findNamed can resolve: the configs of all
 * registered plans, deduplicated (the naming scheme itself is
 * unbounded and not enumerated). Used for did-you-mean diagnostics.
 */
std::vector<std::string> knownNames();

} // namespace configs
} // namespace eole

#endif // EOLE_SIM_CONFIGS_HH
