#include "sim/planfile.hh"

#include <cctype>
#include <fstream>
#include <sstream>
#include <tuple>

#include "common/env.hh"
#include "common/fuzzy.hh"
#include "common/logging.hh"
#include "sim/configs.hh"
#include "sim/params.hh"
#include "workloads/workload.hh"

namespace eole {

namespace {

// parseU64Strict comes from common/env.hh (shared with the registry
// and the CLI so plan-file `seed =` and `--seed` accept the same
// spellings).

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        const std::string item = trim(s.substr(pos, comma - pos));
        if (!item.empty())
            out.push_back(item);
        pos = comma + 1;
    }
    return out;
}

/** In-progress parse state: directives accumulate here, expansion and
 *  cross-validation happen once at end of file. */
struct PlanDraft
{
    ExperimentPlan plan;
    bool haveBase = false;
    SimConfig base;
    std::vector<SimConfig> explicitConfigs;
    std::vector<GridAxis> axes;
    std::vector<int> axisLines;  //!< declaration line of each axis
    std::vector<std::pair<std::string, std::string>> sets;
    std::vector<std::pair<int, TableSpec>> tables;  //!< line, spec
    /** `runlen <config> = N` directives: line, config, µ-ops. The
     *  config names are validated against the expanded grid at end of
     *  file (an axis-derived name is a legal target). */
    std::vector<std::tuple<int, std::string, std::uint64_t>> runlens;
};

const std::vector<std::string> &
directiveNames()
{
    static const std::vector<std::string> names = {
        "plan", "description", "base", "configs", "workloads", "seed",
        "warmup", "measure", "runlen", "sample", "set", "axis", "table",
    };
    return names;
}

} // namespace

std::vector<SimConfig>
expandGrid(const SimConfig &base, const std::vector<GridAxis> &axes)
{
    if (axes.empty())
        return {base};
    std::size_t cells = 1;
    for (const GridAxis &axis : axes) {
        fatal_if(axis.values.empty(), "axis %s has no values",
                 axis.key.c_str());
        cells *= axis.values.size();
    }
    std::vector<SimConfig> out;
    out.reserve(cells);
    for (std::size_t i = 0; i < cells; ++i) {
        // Row-major: the first axis varies slowest, the last fastest.
        std::vector<std::size_t> idx(axes.size());
        std::size_t rem = i;
        for (std::size_t a = axes.size(); a-- > 0;) {
            idx[a] = rem % axes[a].values.size();
            rem /= axes[a].values.size();
        }
        // Overrides apply in declaration order — the same order the
        // cell name renders — so a repeated key cannot end up with a
        // name that contradicts the config.
        std::vector<std::pair<std::string, std::string>> kvs;
        std::string name = base.name;
        for (std::size_t a = 0; a < axes.size(); ++a) {
            const std::string &v = axes[a].values[idx[a]];
            kvs.emplace_back(axes[a].key, v);
            name += "+" + axes[a].key + "=" + v;
        }
        out.push_back(deriveConfig(base, name, kvs));
    }
    return out;
}

bool
parsePlanText(const std::string &text, const std::string &origin,
              ExperimentPlan *out, std::string *err)
{
    const ParamRegistry &reg = ParamRegistry::instance();
    PlanDraft draft;
    std::vector<std::string> workload_list;
    bool workloads_all = false;

    auto fail = [&](int line, const std::string &message) {
        *err = origin + (line > 0 ? " line " + std::to_string(line) : "")
            + ": " + message;
        return false;
    };

    std::istringstream is(text);
    std::string raw;
    int lineno = 0;
    while (std::getline(is, raw)) {
        ++lineno;
        std::string line = raw;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        line = trim(line);
        if (line.empty())
            continue;

        // Directive word = leading identifier; `set`/`axis` carry the
        // registry key between the directive and '='.
        const std::size_t eq = line.find('=');
        std::size_t word_end = line.find_first_of(" \t=");
        if (word_end == std::string::npos)
            word_end = line.size();
        const std::string directive = line.substr(0, word_end);
        // Every directive but `table` is "directive [key] = value".
        if (eq == std::string::npos && directive != "table") {
            return fail(lineno, "expected \"directive = value\", got \""
                        + line + "\"");
        }
        const std::string value =
            eq == std::string::npos ? "" : trim(line.substr(eq + 1));
        const std::string middle =
            eq == std::string::npos || eq <= word_end
                ? ""
                : trim(line.substr(word_end, eq - word_end));

        if (directive == "plan") {
            draft.plan.name = value;
        } else if (directive == "description") {
            draft.plan.description = value;
        } else if (directive == "base") {
            if (!configs::findNamed(value, &draft.base)) {
                return fail(lineno, "unknown config \"" + value + "\""
                            + didYouMean(closestMatches(
                                  value, configs::knownNames())));
            }
            draft.haveBase = true;
        } else if (directive == "configs") {
            for (const std::string &name : splitList(value)) {
                SimConfig c;
                if (!configs::findNamed(name, &c)) {
                    return fail(lineno, "unknown config \"" + name + "\""
                                + didYouMean(closestMatches(
                                      name, configs::knownNames())));
                }
                draft.explicitConfigs.push_back(c);
            }
        } else if (directive == "workloads") {
            if (value == "all") {
                workloads_all = true;
            } else {
                for (const std::string &name : splitList(value)) {
                    // "file:<path>": bind an on-disk eole-trace-v1
                    // file and address it by the canonical workload
                    // name embedded in its header, so every seed,
                    // shard and store key matches a live-generated
                    // run of the same workload byte-for-byte.
                    if (name.rfind("file:", 0) == 0) {
                        const std::string path = name.substr(5);
                        std::string canonical, err;
                        if (!workloads::bindTraceFile(path, &canonical,
                                                      &err)) {
                            return fail(lineno, "cannot load trace file \""
                                        + path + "\": " + err);
                        }
                        workload_list.push_back(canonical);
                        continue;
                    }
                    bool known = false;
                    for (const std::string &w : workloads::allNames())
                        known = known || w == name;
                    if (!known) {
                        return fail(lineno, "unknown workload \"" + name
                                    + "\""
                                    + didYouMean(closestMatches(
                                          name, workloads::allNames())));
                    }
                    workload_list.push_back(name);
                }
            }
        } else if (directive == "seed" || directive == "warmup"
                   || directive == "measure") {
            std::uint64_t v = 0;
            if (!parseU64Strict(value, &v)) {
                return fail(lineno, directive + " = \"" + value
                            + "\" is not an unsigned integer");
            }
            if (directive == "seed")
                draft.plan.seed = v;
            else if (directive == "warmup")
                draft.plan.warmup = v;
            else
                draft.plan.measure = v;
        } else if (directive == "runlen") {
            // Per-config measured length: "runlen <config> = N".
            // Beats the plan-level `measure` for that config's cells;
            // CLI --insts still beats both (resolveMeasureFor). Split
            // on the LAST '=' — axis-derived config names embed '='
            // (e.g. "EOLE_4_64+prfBanks=2") and are legal targets.
            const std::size_t last_eq = line.rfind('=');
            const std::string cfg_name =
                trim(line.substr(word_end, last_eq - word_end));
            const std::string uops_text = trim(line.substr(last_eq + 1));
            if (cfg_name.empty()) {
                return fail(lineno, "runlen needs a config name: "
                            "\"runlen <config> = <uops>\"");
            }
            std::uint64_t v = 0;
            if (!parseU64Strict(uops_text, &v) || v == 0) {
                return fail(lineno, "runlen " + cfg_name + " = \""
                            + uops_text
                            + "\" is not a positive µ-op count");
            }
            for (const auto &[prev_line, prev_cfg, prev_uops] :
                 draft.runlens) {
                (void)prev_line;
                (void)prev_uops;
                if (prev_cfg == cfg_name) {
                    return fail(lineno, "runlen " + cfg_name
                                + " declared twice (the earlier value "
                                "would be silently overwritten)");
                }
            }
            draft.runlens.emplace_back(lineno, cfg_name, v);
        } else if (directive == "sample") {
            // The plan's default sampling spec; `eole run --sample`
            // overrides it (option > plan file, the resolveSampleSpec
            // precedence shared with the run-length knobs).
            std::string serr;
            if (!tryParseSampleSpec(value, &draft.plan.sample, &serr))
                return fail(lineno, serr);
        } else if (directive == "set" || directive == "axis") {
            if (middle.empty()) {
                return fail(lineno, directive
                            + " needs a parameter key: \"" + directive
                            + " <key> = <value>\"");
            }
            if (!reg.find(middle)) {
                return fail(lineno, "unknown parameter \"" + middle
                            + "\"" + didYouMean(reg.suggest(middle)));
            }
            if (directive == "set") {
                draft.sets.emplace_back(middle, value);
            } else {
                for (const GridAxis &prev : draft.axes) {
                    if (prev.key == middle) {
                        return fail(lineno, "axis " + middle
                                    + " declared twice (the earlier "
                                    "values would be silently "
                                    "overwritten)");
                    }
                }
                GridAxis axis;
                axis.key = middle;
                axis.values = splitList(value);
                if (axis.values.empty()) {
                    return fail(lineno, "axis " + middle
                                + " needs at least one value");
                }
                draft.axes.push_back(std::move(axis));
                draft.axisLines.push_back(lineno);
            }
        } else if (directive == "table") {
            // table <stat> "<title>" [normalize=<config>]
            //       [columns=<config>,<config>,...]
            // Clauses cover every TableSpec field; columns= controls
            // column selection and order (default: every config minus
            // the normalizer, in plan order).
            TableSpec spec;
            std::istringstream rest(line.substr(word_end));
            rest >> spec.stat;
            std::string tail;
            std::getline(rest, tail);
            tail = trim(tail);
            if (!tail.empty() && tail.front() == '"') {
                const std::size_t close = tail.find('"', 1);
                if (close == std::string::npos)
                    return fail(lineno, "unterminated table title");
                spec.title = tail.substr(1, close - 1);
                tail = trim(tail.substr(close + 1));
            }
            std::istringstream clauses(tail);
            std::string clause;
            while (clauses >> clause) {
                // Split on the FIRST '=' — axis-derived config names
                // embed '=' and are legal clause values.
                const std::size_t ceq = clause.find('=');
                if (ceq == std::string::npos || ceq == 0) {
                    return fail(lineno, "bad table clause \"" + clause
                                + "\" (want <key>=<value>)");
                }
                const std::string key = clause.substr(0, ceq);
                const std::string cval = clause.substr(ceq + 1);
                if (key == "normalize") {
                    if (!spec.normalizeTo.empty()) {
                        return fail(lineno, "table normalize= given "
                                    "twice");
                    }
                    if (cval.empty()) {
                        return fail(lineno, "table normalize= needs a "
                                    "config name");
                    }
                    spec.normalizeTo = cval;
                } else if (key == "columns") {
                    if (!spec.columns.empty()) {
                        return fail(lineno,
                                    "table columns= given twice");
                    }
                    spec.columns = splitList(cval);
                    if (spec.columns.empty()) {
                        return fail(lineno, "table columns= needs at "
                                    "least one config name (comma-"
                                    "separated, no spaces)");
                    }
                } else {
                    static const std::vector<std::string> clauseNames =
                        {"normalize", "columns"};
                    return fail(lineno, "unknown table clause \"" + key
                                + "\""
                                + didYouMean(closestMatches(
                                      key, clauseNames)));
                }
            }
            if (spec.stat.empty())
                return fail(lineno, "table needs a stat name");
            if (spec.title.empty())
                spec.title = spec.stat + " (" + draft.plan.name + ")";
            draft.tables.emplace_back(lineno, spec);
        } else {
            return fail(lineno, "unknown directive \"" + directive + "\""
                        + didYouMean(closestMatches(directive,
                                                    directiveNames())));
        }
    }

    // ----- end-of-file expansion and cross-validation -----
    if (draft.plan.name.empty())
        return fail(0, "missing required directive \"plan = <name>\"");
    if (!draft.axes.empty() && !draft.haveBase) {
        return fail(0, "axis directives need a \"base = <config>\" to "
                    "derive from");
    }

    draft.plan.configs = draft.explicitConfigs;
    if (draft.haveBase) {
        // Validate every axis value before expansion — expandGrid's
        // own checks are fatal (compiled-in misuse), but a plan file
        // is operator input and deserves a line-numbered exit-2.
        for (std::size_t a = 0; a < draft.axes.size(); ++a) {
            SimConfig probe = draft.base;
            for (const std::string &v : draft.axes[a].values) {
                const std::string e =
                    reg.trySet(probe, draft.axes[a].key, v);
                if (!e.empty())
                    return fail(draft.axisLines[a], e);
            }
        }
        for (SimConfig &c : expandGrid(draft.base, draft.axes))
            draft.plan.configs.push_back(std::move(c));
    }
    if (draft.plan.configs.empty()) {
        return fail(0, "no configurations: give \"base = <config>\" "
                    "and/or \"configs = <name>, ...\"");
    }
    // `set` overrides apply to every config, like `eole run --set`.
    for (SimConfig &c : draft.plan.configs) {
        for (const auto &[key, value] : draft.sets) {
            const std::string e = reg.trySet(c, key, value);
            if (!e.empty())
                return fail(0, "set " + key + " on " + c.name + ": " + e);
        }
    }
    for (std::size_t i = 0; i < draft.plan.configs.size(); ++i) {
        for (std::size_t j = i + 1; j < draft.plan.configs.size(); ++j) {
            if (draft.plan.configs[i].name == draft.plan.configs[j].name) {
                return fail(0, "duplicate config name \""
                            + draft.plan.configs[i].name
                            + "\" (cells would be indistinguishable)");
            }
        }
    }

    // runlen targets must name configs of this plan (checked after
    // grid expansion so axis-derived names are addressable).
    for (const auto &[line, cfg_name, uops] : draft.runlens) {
        bool known = false;
        for (const SimConfig &c : draft.plan.configs)
            known = known || c.name == cfg_name;
        if (!known) {
            std::vector<std::string> names;
            for (const SimConfig &c : draft.plan.configs)
                names.push_back(c.name);
            return fail(line, "runlen target \"" + cfg_name
                        + "\" is not a config of this plan"
                        + didYouMean(closestMatches(cfg_name, names)));
        }
        draft.plan.runlens.emplace_back(cfg_name, uops);
    }

    draft.plan.workloads =
        workloads_all || workload_list.empty() ? workloads::allNames()
                                               : workload_list;

    for (auto &[line, spec] : draft.tables) {
        if (!spec.normalizeTo.empty()) {
            bool known = false;
            for (const SimConfig &c : draft.plan.configs)
                known = known || c.name == spec.normalizeTo;
            if (!known) {
                std::vector<std::string> names;
                for (const SimConfig &c : draft.plan.configs)
                    names.push_back(c.name);
                return fail(line, "table normalize=\"" + spec.normalizeTo
                            + "\" is not a config of this plan"
                            + didYouMean(closestMatches(spec.normalizeTo,
                                                        names)));
            }
        }
        if (spec.columns.empty()) {
            // Columns default to every config (minus the normalizer).
            for (const SimConfig &c : draft.plan.configs) {
                if (c.name != spec.normalizeTo)
                    spec.columns.push_back(c.name);
            }
        } else {
            // Explicit columns= must name configs of this plan
            // (checked after grid expansion so axis-derived names are
            // addressable, like runlen targets).
            for (const std::string &col : spec.columns) {
                bool colKnown = false;
                for (const SimConfig &c : draft.plan.configs)
                    colKnown = colKnown || c.name == col;
                if (!colKnown) {
                    std::vector<std::string> names;
                    for (const SimConfig &c : draft.plan.configs)
                        names.push_back(c.name);
                    return fail(line, "table column \"" + col
                                + "\" is not a config of this plan"
                                + didYouMean(closestMatches(col,
                                                            names)));
                }
            }
        }
        draft.plan.tables.push_back(spec);
    }

    *out = draft.plan;
    return true;
}

bool
loadPlanFile(const std::string &path, ExperimentPlan *out,
             std::string *err)
{
    std::ifstream is(path);
    if (!is) {
        *err = "cannot read plan file " + path;
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return parsePlanText(buf.str(), path, out, err);
}

} // namespace eole
