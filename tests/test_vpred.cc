/**
 * @file
 * Unit and property tests for the value-predictor family: LVP, Stride,
 * 2-Delta Stride, FCM, VTAGE and the hybrid, plus FPC interaction and
 * in-flight (speculative) instance handling.
 */

#include <gtest/gtest.h>

#include <functional>

#include "bpred/history.hh"
#include "common/random.hh"
#include "vpred/fpc.hh"
#include "vpred/hybrid.hh"
#include "vpred/stride.hh"
#include "vpred/value_predictor.hh"
#include "vpred/vtage.hh"

using namespace eole;

namespace {

/** Deterministic FPC (all transitions fire) to decouple coverage
 *  measurements from the probabilistic confidence build-up. */
VpConfig
fastConfidenceConfig(VpKind kind)
{
    VpConfig cfg;
    cfg.kind = kind;
    cfg.fpcVector = {1, 1, 1, 1, 1, 1, 1};
    return cfg;
}

struct Harness
{
    std::unique_ptr<ValuePredictor> vp;
    std::unique_ptr<GlobalHistory> hist;

    explicit Harness(const VpConfig &cfg)
        : vp(createValuePredictor(cfg, 99))
    {
        hist = std::make_unique<GlobalHistory>(vp->foldSpecs());
        vp->bindHistory(*hist, 0);
    }

    /**
     * Commit-grain loop: predict then immediately commit (one instance
     * in flight at a time). Returns (coverage, accuracy) over the last
     * half.
     */
    std::pair<double, double>
    train(Addr pc, int n, const std::function<RegVal(int)> &value,
          const std::function<bool(int)> &branch_bit = nullptr)
    {
        int used = 0, correct = 0, measured = 0;
        for (int i = 0; i < n; ++i) {
            VpLookup l = vp->predict(pc);
            const RegVal actual = value(i);
            if (i >= n / 2) {
                ++measured;
                if (l.confident) {
                    ++used;
                    correct += l.value == actual;
                }
            }
            vp->commit(pc, actual, l);
            if (branch_bit)
                hist->push(branch_bit(i));
        }
        return {double(used) / measured,
                used ? double(correct) / used : 1.0};
    }
};

} // namespace

// ------------------------------ Last value -------------------------------

TEST(LastValue, PredictsConstants)
{
    Harness h(fastConfidenceConfig(VpKind::LastValue));
    auto [cov, acc] = h.train(0x400000, 200, [](int) { return 42u; });
    EXPECT_GT(cov, 0.95);
    EXPECT_DOUBLE_EQ(acc, 1.0);
}

TEST(LastValue, CannotPredictStrides)
{
    Harness h(fastConfidenceConfig(VpKind::LastValue));
    auto [cov, acc] =
        h.train(0x400000, 400, [](int i) { return RegVal(i) * 8; });
    (void)acc;
    EXPECT_LT(cov, 0.05);
}

// -------------------------------- Stride ---------------------------------

TEST(Stride, PredictsArithmeticSequences)
{
    Harness h(fastConfidenceConfig(VpKind::Stride));
    auto [cov, acc] =
        h.train(0x400000, 400, [](int i) { return 100 + RegVal(i) * 24; });
    EXPECT_GT(cov, 0.95);
    EXPECT_DOUBLE_EQ(acc, 1.0);
}

TEST(Stride, SingleGlitchCostsPlainStrideMore)
{
    // Value sequence: stride 8 with a one-off glitch every 50 instances.
    auto glitchy = [](int i) {
        return RegVal(i) * 8 + (i % 50 == 49 ? 3 : 0);
    };
    Harness plain(fastConfidenceConfig(VpKind::Stride));
    Harness twodelta(fastConfidenceConfig(VpKind::TwoDeltaStride));
    auto [cov_p, acc_p] = plain.train(0x400000, 2000, glitchy);
    auto [cov_2, acc_2] = twodelta.train(0x400000, 2000, glitchy);
    // After a glitch, the plain stride predictor retrains its stride
    // (two wrong predictions per glitch); 2-delta keeps the confirmed
    // stride (one wrong prediction per glitch).
    EXPECT_GT(acc_2, acc_p);
    EXPECT_GT(cov_2, 0.0);
    (void)cov_p;
}

TEST(Stride, ProjectsAcrossInflightInstances)
{
    // Several instances of the same static µ-op in flight: the k-th
    // outstanding instance must be predicted last + stride * k.
    VpConfig cfg = fastConfidenceConfig(VpKind::TwoDeltaStride);
    StridePredictor sp(cfg, true, 1);
    const Addr pc = 0x400010;
    // Train with back-to-back commit (establish stride 8, conf sat).
    RegVal v = 0;
    for (int i = 0; i < 32; ++i) {
        VpLookup l = sp.predict(pc);
        sp.commit(pc, v += 8, l);
    }
    // Now predict 4 instances without committing.
    VpLookup l1 = sp.predict(pc);
    VpLookup l2 = sp.predict(pc);
    VpLookup l3 = sp.predict(pc);
    EXPECT_EQ(l1.value, v + 8);
    EXPECT_EQ(l2.value, v + 16);
    EXPECT_EQ(l3.value, v + 24);
    sp.commit(pc, v + 8, l1);
    sp.commit(pc, v + 16, l2);
    sp.commit(pc, v + 24, l3);
    VpLookup l4 = sp.predict(pc);
    EXPECT_EQ(l4.value, v + 32);
    sp.commit(pc, v + 32, l4);
}

TEST(Stride, SquashRestoresInflightCount)
{
    VpConfig cfg = fastConfidenceConfig(VpKind::TwoDeltaStride);
    StridePredictor sp(cfg, true, 1);
    const Addr pc = 0x400020;
    RegVal v = 0;
    for (int i = 0; i < 32; ++i) {
        VpLookup l = sp.predict(pc);
        sp.commit(pc, v += 4, l);
    }
    // Fetch two wrong-path instances, then squash them.
    VpLookup s1 = sp.predict(pc);
    VpLookup s2 = sp.predict(pc);
    sp.squash(pc, s2);
    sp.squash(pc, s1);
    // The next prediction must project a single step again.
    VpLookup l = sp.predict(pc);
    EXPECT_EQ(l.value, v + 4);
}

// --------------------------------- FCM -----------------------------------

TEST(Fcm, LearnsRepeatingSequence)
{
    Harness h(fastConfidenceConfig(VpKind::Fcm));
    // Period-3 value sequence: context of the last values identifies
    // the successor exactly.
    const RegVal seq[3] = {7, 99, 1234};
    auto [cov, acc] =
        h.train(0x400000, 3000, [&](int i) { return seq[i % 3]; });
    EXPECT_GT(cov, 0.8);
    EXPECT_GT(acc, 0.98);
}

// -------------------------------- VTAGE ----------------------------------

TEST(Vtage, PredictsConstantsViaBase)
{
    Harness h(fastConfidenceConfig(VpKind::Vtage));
    auto [cov, acc] = h.train(0x400000, 400, [](int) { return 5u; });
    EXPECT_GT(cov, 0.9);
    EXPECT_DOUBLE_EQ(acc, 1.0);
}

TEST(Vtage, LearnsBranchHistoryCorrelatedValues)
{
    // Value alternates with a branch direction pattern: the base
    // (last-value) component cannot capture it, tagged components can.
    Harness h(fastConfidenceConfig(VpKind::Vtage));
    auto [cov, acc] = h.train(
        0x400000, 6000, [](int i) { return i % 2 ? 111u : 222u; },
        [](int i) { return i % 2 == 0; });
    EXPECT_GT(cov, 0.7);
    EXPECT_GT(acc, 0.98);
}

TEST(Vtage, NoInflightTrackingNeeded)
{
    // VTAGE predictions do not depend on in-flight instance counts:
    // predicting k instances in a row (same history) yields the same
    // value, unlike stride predictors (§2 of the paper).
    VpConfig cfg = fastConfidenceConfig(VpKind::Vtage);
    Vtage vt(cfg, 7);
    GlobalHistory hist(vt.foldSpecs());
    vt.bindHistory(hist, 0);
    const Addr pc = 0x400040;
    for (int i = 0; i < 100; ++i) {
        VpLookup l = vt.predict(pc);
        vt.commit(pc, 31337, l);
    }
    VpLookup a = vt.predict(pc);
    VpLookup b = vt.predict(pc);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.value, 31337u);
}

// -------------------------------- Hybrid ----------------------------------

TEST(Hybrid, CoversBothStridedAndContextPatterns)
{
    // Strided values at one PC, history-correlated at another: the
    // hybrid must cover both (that is its purpose in Table 2).
    Harness h(fastConfidenceConfig(VpKind::HybridVtage2DStride));
    auto [cov_s, acc_s] = h.train(
        0x400100, 2000, [](int i) { return RegVal(i) * 16; });
    EXPECT_GT(cov_s, 0.9);
    EXPECT_DOUBLE_EQ(acc_s, 1.0);

    auto [cov_c, acc_c] = h.train(
        0x400200, 12000, [](int i) { return i % 2 ? 8u : 9u; },
        [](int i) { return i % 2 == 0; });
    EXPECT_GT(cov_c, 0.45);
    EXPECT_GT(acc_c, 0.98);
}

TEST(Hybrid, TrainsBothComponents)
{
    VpConfig cfg = fastConfidenceConfig(VpKind::HybridVtage2DStride);
    HybridVtage2DStride hy(cfg, 3);
    GlobalHistory hist(hy.foldSpecs());
    hy.bindHistory(hist, 0);
    const Addr pc = 0x400300;
    for (int i = 0; i < 200; ++i) {
        VpLookup l = hy.predict(pc);
        hy.commit(pc, RegVal(i) * 8, l);
    }
    // The stride component alone must have learned the stride.
    VpLookup sl = hy.stride().predict(pc);
    EXPECT_TRUE(sl.predictionMade);
    EXPECT_EQ(sl.value, 200u * 8);
    hy.stride().squash(pc, sl);
}

// ------------------------ Parameterized properties ------------------------

struct PredictorPatternCase
{
    VpKind kind;
    const char *pattern;
    double min_coverage;
    double min_accuracy;
};

class PredictorProperty
    : public ::testing::TestWithParam<PredictorPatternCase>
{
};

TEST_P(PredictorProperty, MeetsCoverageAndAccuracyFloor)
{
    const auto &param = GetParam();
    Harness h(fastConfidenceConfig(param.kind));

    std::function<RegVal(int)> value;
    const std::string pattern = param.pattern;
    if (pattern == "constant") {
        value = [](int) { return 0xabcdu; };
    } else if (pattern == "strided") {
        value = [](int i) { return 50 + RegVal(i) * 8; };
    } else {
        // Truly chaotic (SplitMix64 of the index): non-linear, so no
        // stride structure survives.
        value = [](int i) {
            std::uint64_t x = static_cast<std::uint64_t>(i) + 1;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
            return x ^ (x >> 31);
        };
    }
    auto [cov, acc] = h.train(0x400000, 4000, value);
    EXPECT_GE(cov, param.min_coverage) << param.pattern;
    if (cov > 0)
        EXPECT_GE(acc, param.min_accuracy) << param.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    AllPredictors, PredictorProperty,
    ::testing::Values(
        // Every predictor covers constants.
        PredictorPatternCase{VpKind::LastValue, "constant", 0.95, 0.999},
        PredictorPatternCase{VpKind::Stride, "constant", 0.95, 0.999},
        PredictorPatternCase{VpKind::TwoDeltaStride, "constant", 0.95,
                             0.999},
        PredictorPatternCase{VpKind::Fcm, "constant", 0.9, 0.999},
        PredictorPatternCase{VpKind::Vtage, "constant", 0.9, 0.999},
        PredictorPatternCase{VpKind::HybridVtage2DStride, "constant",
                             0.95, 0.999},
        // Computational predictors cover strides.
        PredictorPatternCase{VpKind::Stride, "strided", 0.9, 0.999},
        PredictorPatternCase{VpKind::TwoDeltaStride, "strided", 0.9,
                             0.999},
        PredictorPatternCase{VpKind::HybridVtage2DStride, "strided", 0.9,
                             0.999},
        // Nothing predicts chaos -- and, crucially, nothing predicts
        // it *confidently* (the FPC property EOLE relies on).
        PredictorPatternCase{VpKind::LastValue, "chaotic", 0.0, 0.0},
        PredictorPatternCase{VpKind::Stride, "chaotic", 0.0, 0.0},
        PredictorPatternCase{VpKind::TwoDeltaStride, "chaotic", 0.0, 0.0},
        PredictorPatternCase{VpKind::Fcm, "chaotic", 0.0, 0.0},
        PredictorPatternCase{VpKind::Vtage, "chaotic", 0.0, 0.0},
        PredictorPatternCase{VpKind::HybridVtage2DStride, "chaotic", 0.0,
                             0.0}));

class ChaoticCoverageCeiling : public ::testing::TestWithParam<VpKind>
{
};

TEST_P(ChaoticCoverageCeiling, PaperFpcKeepsChaosUncovered)
{
    // With the paper's FPC vector, chaotic values must essentially
    // never reach saturated confidence.
    VpConfig cfg;
    cfg.kind = GetParam();
    Harness h(cfg);
    auto [cov, acc] = h.train(0x400000, 4000, [](int i) {
        std::uint64_t x = static_cast<std::uint64_t>(i) + 1;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    });
    (void)acc;
    EXPECT_LT(cov, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    AllPredictors, ChaoticCoverageCeiling,
    ::testing::Values(VpKind::LastValue, VpKind::Stride,
                      VpKind::TwoDeltaStride, VpKind::Fcm, VpKind::Vtage,
                      VpKind::HybridVtage2DStride));

// ----------------- FPC counter properties (§3.1 / §4.2) -------------------

TEST(Fpc, CounterNeverExceedsSaturationAndResetsOnWrong)
{
    Fpc fpc;  // paper vector
    Rng rng(11);
    std::uint8_t ctr = 0;
    bool was_saturated = false;
    // 99.9% correct: wrong enough to exercise resets, right enough
    // that the ~257-correct-step climb to saturation still happens.
    for (int i = 0; i < 200000; ++i) {
        const bool correct = rng.chance(0.999);
        fpc.update(ctr, correct, rng);
        ASSERT_LE(ctr, fpc.max());
        if (!correct)
            ASSERT_EQ(ctr, 0);
        was_saturated = was_saturated || fpc.saturated(ctr);
    }
    EXPECT_TRUE(was_saturated);  // the walk does reach the ceiling
}

TEST(Fpc, ForwardRatesMatchPaperVector)
{
    // Empirical transition rate at every counter level must match the
    // advertised probability vector {1, 4x 1/32, 2x 1/64}. Feed only
    // correct outcomes and count attempts per level across many
    // saturations.
    Fpc fpc;
    Rng rng(12);
    const auto &v = fpc.probabilities();
    std::vector<double> attempts(v.size(), 0), transitions(v.size(), 0);

    std::uint8_t ctr = 0;
    for (int saturations = 0; saturations < 600;) {
        const std::uint8_t level = ctr;
        fpc.update(ctr, true, rng);
        attempts[level] += 1;
        if (ctr > level)
            transitions[level] += 1;
        if (fpc.saturated(ctr)) {
            ++saturations;
            ctr = 0;
        }
    }
    for (std::size_t level = 0; level < v.size(); ++level) {
        const double rate = transitions[level] / attempts[level];
        EXPECT_NEAR(rate, v[level], v[level] * 0.2)
            << "level " << level;
    }
}

TEST(Fpc, MeanCommitsToSaturationMatchesPaper)
{
    // Expected correct predictions before a counter saturates is
    // sum(1/p) = 1 + 4*32 + 2*64 = 257 — the FPC trick that makes a
    // 3-bit counter behave like a ~8-bit one (§3.1). The sample mean
    // over 2000 counters has sigma ~2.5, so +/-8% is a >5-sigma band.
    Fpc fpc;
    Rng rng(13);
    const double expected = 257.0;

    double total = 0;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
        std::uint8_t ctr = 0;
        int steps = 0;
        while (!fpc.saturated(ctr)) {
            fpc.update(ctr, true, rng);
            ++steps;
        }
        total += steps;
    }
    const double mean = total / trials;
    EXPECT_NEAR(mean, expected, expected * 0.08);
}

// -------------------- Confidence gating properties -------------------------

TEST(PredictorConfidence, NeverConfidentBeforeSaturationStreak)
{
    // A prediction may only be used (confident) once its FPC counter
    // saturated, and the counter resets on any wrong prediction and
    // gains at most one per commit — so a confident lookup implies at
    // least fpc-max consecutive correct predictions since the last
    // wrong one. Checked on the single-entry predictors over a stream
    // with random glitches (paper FPC vector, single pc -> one
    // counter).
    const VpKind kinds[] = {VpKind::LastValue, VpKind::Stride,
                            VpKind::TwoDeltaStride};
    const int fpc_max = static_cast<int>(Fpc().max());
    for (const VpKind kind : kinds) {
        VpConfig cfg;
        cfg.kind = kind;  // paper FPC vector
        Harness h(cfg);
        Rng rng(0xC0FFEE);

        RegVal v = 1000;
        int streak = 0;
        for (int i = 0; i < 20000; ++i) {
            VpLookup l = h.vp->predict(0x400000);
            if (l.confident) {
                EXPECT_GE(streak, fpc_max)
                    << vpKindName(kind) << " at i=" << i;
            }
            // Mostly stride-8, occasionally a random glitch.
            v = rng.chance(0.03) ? rng.next() : v + 8;
            const bool match = l.predictionMade && l.value == v;
            streak = match ? streak + 1 : 0;
            h.vp->commit(0x400000, v, l);
        }
    }
}

TEST(PredictorConfidence, FreshPcNeedsAtLeastMaxCommits)
{
    // No predictor may be confident at a pc it has committed fewer
    // than fpc-max times: counters start at zero and gain at most one
    // per commit. Holds even with the all-1 (deterministic) vector.
    const VpKind kinds[] = {
        VpKind::LastValue,     VpKind::Stride, VpKind::TwoDeltaStride,
        VpKind::Fcm,           VpKind::Vtage,
        VpKind::HybridVtage2DStride,
    };
    for (const VpKind kind : kinds) {
        Harness h(fastConfidenceConfig(kind));
        const int fpc_max = 7;  // length of the all-1 vector above
        for (int i = 0; i < fpc_max; ++i) {
            VpLookup l = h.vp->predict(0x400040);
            EXPECT_FALSE(l.confident)
                << vpKindName(kind) << " confident at commit " << i;
            h.vp->commit(0x400040, 4242, l);
        }
        // ... and once trained past saturation, constants are covered
        // (guards against a predictor that is never confident). The
        // long run is for FCM, whose rolling context hash cycles
        // through ~64 contexts that each saturate separately.
        for (int i = 0; i < 1500; ++i) {
            VpLookup l = h.vp->predict(0x400040);
            h.vp->commit(0x400040, 4242, l);
        }
        EXPECT_TRUE(h.vp->predict(0x400040).confident)
            << vpKindName(kind);
    }
}

TEST(Factory, NamesAndNullForNone)
{
    VpConfig cfg;
    cfg.kind = VpKind::None;
    EXPECT_EQ(createValuePredictor(cfg), nullptr);
    cfg.kind = VpKind::Vtage;
    auto vp = createValuePredictor(cfg);
    ASSERT_NE(vp, nullptr);
    EXPECT_STREQ(vp->name(), "VTAGE");
    EXPECT_STREQ(vpKindName(VpKind::HybridVtage2DStride),
                 "VTAGE-2DStride");
}
