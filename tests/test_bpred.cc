/**
 * @file
 * Unit tests for branch prediction: global history folding and
 * checkpointing, TAGE learning behaviour and confidence, BTB, RAS and
 * the BranchUnit wrapper with speculation repair.
 */

#include <gtest/gtest.h>

#include "bpred/branch_unit.hh"
#include "bpred/btb.hh"
#include "bpred/history.hh"
#include "bpred/tage.hh"

using namespace eole;

// --------------------------- GlobalHistory ------------------------------

TEST(GlobalHistory, BitAtTracksRecentBits)
{
    GlobalHistory h({{8, 4}});
    h.push(true);
    h.push(false);
    h.push(true);
    EXPECT_TRUE(h.bitAt(1));
    EXPECT_FALSE(h.bitAt(2));
    EXPECT_TRUE(h.bitAt(3));
    EXPECT_FALSE(h.bitAt(4));  // beyond pushed history: zero
}

TEST(GlobalHistory, FoldMatchesRecomputation)
{
    const int hist_len = 12, width = 5;
    GlobalHistory h({{hist_len, width}});
    std::vector<bool> bits;
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const bool b = rng.below(2) != 0;
        bits.push_back(b);
        h.push(b);
        // Recompute the fold from scratch: XOR of width-bit chunks of
        // the most recent hist_len bits (oldest bit at the highest
        // position of the conceptual register).
        std::uint64_t reg = 0;
        for (int k = 0; k < hist_len; ++k) {
            const std::size_t idx = bits.size() >= std::size_t(k + 1)
                ? bits.size() - 1 - k : ~std::size_t(0);
            const bool bit =
                idx != ~std::size_t(0) ? bits[idx] : false;
            reg |= static_cast<std::uint64_t>(bit) << k;
        }
        std::uint32_t expect = 0;
        for (int k = 0; k < hist_len; k += width)
            expect ^= static_cast<std::uint32_t>((reg >> k)
                                                 & ((1u << width) - 1));
        EXPECT_EQ(h.folded(0), expect) << "at step " << i;
    }
}

TEST(GlobalHistory, SnapshotRestoreIsExact)
{
    GlobalHistory h({{16, 6}, {64, 10}});
    Rng rng(9);
    for (int i = 0; i < 100; ++i)
        h.push(rng.below(2) != 0);
    const auto snap = h.snapshot();
    const auto f0 = h.folded(0);
    const auto f1 = h.folded(1);
    for (int i = 0; i < 50; ++i)
        h.push(rng.below(2) != 0);
    EXPECT_NE(h.position(), snap.pos);
    h.restore(snap);
    EXPECT_EQ(h.folded(0), f0);
    EXPECT_EQ(h.folded(1), f1);
    EXPECT_EQ(h.position(), snap.pos);
}

TEST(GlobalHistory, RestoreThenReplayMatchesStraightLine)
{
    GlobalHistory a({{32, 8}}), b({{32, 8}});
    Rng rng(11);
    std::vector<bool> prefix, suffix;
    for (int i = 0; i < 80; ++i)
        prefix.push_back(rng.below(2) != 0);
    for (int i = 0; i < 40; ++i)
        suffix.push_back(rng.below(2) != 0);

    for (bool bit : prefix) {
        a.push(bit);
        b.push(bit);
    }
    // a speculates down a wrong path, then repairs and replays.
    const auto snap = a.snapshot();
    for (int i = 0; i < 25; ++i)
        a.push(i % 2 == 0);
    a.restore(snap);
    for (bool bit : suffix) {
        a.push(bit);
        b.push(bit);
    }
    EXPECT_EQ(a.folded(0), b.folded(0));
}

// -------------------------------- TAGE ----------------------------------

namespace {

/** Train TAGE on a direction function for n steps; return accuracy of
 *  the last quarter. */
double
tageAccuracy(Tage &tage, GlobalHistory &hist, int n,
             const std::function<bool(int)> &direction, Addr pc = 0x1000)
{
    int correct = 0, measured = 0;
    for (int i = 0; i < n; ++i) {
        TageLookup l;
        const bool pred = tage.predict(pc, hist, 0, l);
        const bool actual = direction(i);
        if (i >= 3 * n / 4) {
            ++measured;
            correct += pred == actual;
        }
        tage.update(pc, actual, l);
        hist.push(actual);
    }
    return double(correct) / measured;
}

} // namespace

TEST(Tage, LearnsAlwaysTaken)
{
    TageConfig cfg;
    Tage tage(cfg);
    GlobalHistory hist(tage.foldSpecs());
    EXPECT_GT(tageAccuracy(tage, hist, 2000,
                           [](int) { return true; }),
              0.999);
}

TEST(Tage, LearnsAlternation)
{
    TageConfig cfg;
    Tage tage(cfg);
    GlobalHistory hist(tage.foldSpecs());
    EXPECT_GT(tageAccuracy(tage, hist, 4000,
                           [](int i) { return i % 2 == 0; }),
              0.98);
}

TEST(Tage, LearnsLongerPeriodicPattern)
{
    TageConfig cfg;
    Tage tage(cfg);
    GlobalHistory hist(tage.foldSpecs());
    // Period-7 pattern requires the tagged history components.
    EXPECT_GT(tageAccuracy(tage, hist, 20000,
                           [](int i) { return (i % 7) < 3; }),
              0.95);
}

TEST(Tage, CannotLearnRandom)
{
    TageConfig cfg;
    Tage tage(cfg);
    GlobalHistory hist(tage.foldSpecs());
    Rng rng(1234);
    const double acc = tageAccuracy(
        tage, hist, 20000, [&](int) { return rng.below(2) != 0; });
    EXPECT_LT(acc, 0.62);
    EXPECT_GT(acc, 0.38);
}

TEST(Tage, HighConfidenceOnStronglyBiasedBranch)
{
    TageConfig cfg;
    Tage tage(cfg);
    GlobalHistory hist(tage.foldSpecs());
    int high_conf = 0, total = 0;
    for (int i = 0; i < 4000; ++i) {
        TageLookup l;
        tage.predict(0x2000, hist, 0, l);
        if (i > 2000) {
            ++total;
            high_conf += l.highConf;
        }
        tage.update(0x2000, true, l);
        hist.push(true);
    }
    EXPECT_GT(double(high_conf) / total, 0.95);
}

TEST(Tage, GeometricHistoryLengths)
{
    TageConfig cfg;
    Tage tage(cfg);
    EXPECT_EQ(tage.histLength(0), cfg.minHist);
    EXPECT_EQ(tage.histLength(cfg.numTagged - 1), cfg.maxHist);
    for (int i = 1; i < cfg.numTagged; ++i)
        EXPECT_GT(tage.histLength(i), tage.histLength(i - 1));
}

// -------------------------------- BTB -----------------------------------

TEST(Btb, StoresAndRetrievesTargets)
{
    Btb btb(6, 2);  // 64 entries
    EXPECT_EQ(btb.lookup(0x1000), 0u);
    btb.update(0x1000, 0x2000);
    EXPECT_EQ(btb.lookup(0x1000), 0x2000u);
    btb.update(0x1000, 0x3000);
    EXPECT_EQ(btb.lookup(0x1000), 0x3000u);
}

TEST(Btb, LruEvictionWithinSet)
{
    Btb btb(2, 2);  // 4 entries, 2 sets: pcs with equal set collide
    // Three branches mapping to the same set (pc>>2 % 2 equal).
    const Addr a = 0x1000, b = 0x1008, c = 0x1010;
    btb.update(a, 0xa);
    btb.update(b, 0xb);
    btb.update(a, 0xa);     // refresh a; b becomes LRU
    btb.update(c, 0xc);     // evicts b
    EXPECT_EQ(btb.lookup(a), 0xau);
    EXPECT_EQ(btb.lookup(b), 0u);
    EXPECT_EQ(btb.lookup(c), 0xcu);
}

// -------------------------------- RAS -----------------------------------

TEST(Ras, PushPopNesting)
{
    Ras ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), 0u);  // empty
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    Ras ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3);  // overwrites oldest
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
}

TEST(Ras, SnapshotRestore)
{
    Ras ras(8);
    ras.push(0xa);
    ras.push(0xb);
    const auto snap = ras.snapshot();
    ras.pop();
    ras.push(0xc);
    ras.push(0xd);
    ras.restore(snap);
    EXPECT_EQ(ras.pop(), 0xbu);
    EXPECT_EQ(ras.pop(), 0xau);
}

// ----------------------------- BranchUnit -------------------------------

namespace {

TraceUop
makeCondUop(Addr pc, bool taken, Addr target)
{
    TraceUop u;
    u.pc = pc;
    u.opc = Opcode::Bne;
    u.src1 = 1;
    u.src2 = 2;
    u.taken = taken;
    u.nextPc = taken ? target : pc + uopBytes;
    return u;
}

} // namespace

TEST(BranchUnit, LearnsLoopBranchAndBecomesConfident)
{
    BpConfig cfg;
    BranchUnit bu(cfg, {});
    const Addr pc = 0x400100, tgt = 0x400040;
    int mispredicts = 0, high_conf_late = 0;
    for (int i = 0; i < 4000; ++i) {
        BranchUnit::SnapshotPtr pre;
        TraceUop u = makeCondUop(pc, true, tgt);
        BranchPrediction bp = bu.predictBranch(u, pre);
        if (bp.mispredict) {
            ++mispredicts;
            bu.repairAfterBranch(u, pre);
        }
        if (i > 3000)
            high_conf_late += bp.highConf;
        bu.commitBranch(u, bp);
    }
    EXPECT_LT(mispredicts, 20);
    EXPECT_GT(high_conf_late, 900);
}

TEST(BranchUnit, ConfidenceFilterBlocksMidBiasBranch)
{
    BpConfig cfg;
    BranchUnit bu(cfg, {});
    const Addr pc = 0x400200, tgt = 0x400080;
    Rng rng(77);
    int high_conf = 0;
    for (int i = 0; i < 8000; ++i) {
        BranchUnit::SnapshotPtr pre;
        // 85%-taken, direction random (unlearnable beyond the bias).
        TraceUop u = makeCondUop(pc, rng.chance(0.85), tgt);
        BranchPrediction bp = bu.predictBranch(u, pre);
        if (bp.mispredict)
            bu.repairAfterBranch(u, pre);
        if (i > 4000)
            high_conf += bp.highConf;
        bu.commitBranch(u, bp);
    }
    // The JRS-style filter must keep such branches out of Late
    // Execution eligibility almost always.
    EXPECT_LT(high_conf / 4000.0, 0.15);
}

TEST(BranchUnit, ReturnPredictedThroughRas)
{
    BpConfig cfg;
    BranchUnit bu(cfg, {});
    // call at 0x400000 -> 0x400100; ret at 0x400104 -> 0x400004.
    TraceUop call;
    call.pc = 0x400000;
    call.opc = Opcode::Call;
    call.dst = linkReg;
    call.taken = true;
    call.nextPc = 0x400100;

    TraceUop ret;
    ret.pc = 0x400104;
    ret.opc = Opcode::Ret;
    ret.src1 = linkReg;
    ret.taken = true;
    ret.nextPc = 0x400004;

    BranchUnit::SnapshotPtr pre;
    BranchPrediction bp = bu.predictBranch(call, pre);
    EXPECT_FALSE(bp.mispredict);  // direct call: decode target
    bp = bu.predictBranch(ret, pre);
    EXPECT_EQ(bp.predTarget, 0x400004u);
    EXPECT_FALSE(bp.mispredict);
}

TEST(BranchUnit, RestoreToRepairsSpeculativeState)
{
    BpConfig cfg;
    BranchUnit bu(cfg, {});
    const auto before = bu.currentSnapshot();
    // Speculate through a few branches.
    for (int i = 0; i < 5; ++i) {
        BranchUnit::SnapshotPtr pre;
        TraceUop u = makeCondUop(0x400300 + i * 4, i % 2 == 0, 0x400000);
        bu.predictBranch(u, pre);
    }
    bu.restoreTo(before);
    const auto after = bu.currentSnapshot();
    EXPECT_EQ(before->hist.pos, after->hist.pos);
    EXPECT_EQ(before->hist.folds, after->hist.folds);
    EXPECT_EQ(before->ras.depth, after->ras.depth);
}
