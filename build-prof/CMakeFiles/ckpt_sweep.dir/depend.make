# Empty dependencies file for ckpt_sweep.
# This may be replaced when dependencies are built.
