/**
 * @file
 * Completion/writeback stage.
 *
 * Drains the scheduled-completion calendar: marks µ-ops complete when
 * their latency elapses and resolves branch mispredictions discovered
 * at execute (late-executed branches resolve in the LE/VT stage
 * instead).
 */

#ifndef EOLE_PIPELINE_STAGES_COMPLETION_HH
#define EOLE_PIPELINE_STAGES_COMPLETION_HH

#include "pipeline/stages/stage.hh"

namespace eole {

class CompletionStage : public Stage
{
  public:
    const char *name() const override { return "completion"; }
    void tick(PipelineState &st) override;
};

} // namespace eole

#endif // EOLE_PIPELINE_STAGES_COMPLETION_HH
