/**
 * Figure 11: EOLE_4_64 with a 4-bank PRF and 2/3/4 read ports per bank
 * dedicated to Late Execution / Validation / Training, normalized to
 * EOLE_4_64 with a single bank and unconstrained ports.
 *
 * Thin wrapper over the "fig11" plan; see `eole run fig11`.
 */
#include "bench_common.hh"

int
main()
{
    return eole::runFigure("fig11");
}
