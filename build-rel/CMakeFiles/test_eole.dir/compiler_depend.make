# Empty compiler generated dependencies file for test_eole.
# This may be replaced when dependencies are built.
