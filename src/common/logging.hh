/**
 * @file
 * gem5-style status/error reporting: panic(), fatal(), warn(), inform(),
 * notice(), verbose().
 *
 * panic()   - a simulator bug: something that should never happen
 *             regardless of user input. Aborts (core-dumpable).
 * fatal()   - a user error (bad configuration, impossible parameters).
 *             Exits with status 1.
 * warn()    - suspicious but survivable condition. Always printed.
 * notice()  - machine-consumed status line (store summaries, artifact
 *             paths). Always printed, even under --quiet: scripted
 *             callers grep these, so both the text and the level are a
 *             stable contract.
 * inform()  - human-facing progress chatter. Suppressed at quiet.
 * verbose() - debugging detail. Printed only at debug level.
 *
 * All levels write to stderr so stdout stays reserved for requested
 * output (tables, JSON). The level comes from EOLE_LOG=quiet|normal|
 * debug and can be overridden programmatically (the CLI's --quiet maps
 * to setLogLevel(LogLevel::Quiet)).
 */

#ifndef EOLE_COMMON_LOGGING_HH
#define EOLE_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace eole {

/** Printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

enum class LogLevel { Quiet = 0, Normal = 1, Debug = 2 };

/** Current level; first call reads EOLE_LOG (unknown values -> Normal). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void noticeImpl(const std::string &msg);
void verboseImpl(const std::string &msg);

} // namespace eole

#define panic(...) \
    ::eole::panicImpl(__FILE__, __LINE__, ::eole::csprintf(__VA_ARGS__))

#define fatal(...) \
    ::eole::fatalImpl(__FILE__, __LINE__, ::eole::csprintf(__VA_ARGS__))

#define warn(...) ::eole::warnImpl(::eole::csprintf(__VA_ARGS__))

#define inform(...) ::eole::informImpl(::eole::csprintf(__VA_ARGS__))

#define notice(...) ::eole::noticeImpl(::eole::csprintf(__VA_ARGS__))

#define verbose(...) ::eole::verboseImpl(::eole::csprintf(__VA_ARGS__))

/** Assert-like check that is kept in release builds. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            ::eole::panicImpl(__FILE__, __LINE__,                           \
                              ::eole::csprintf(__VA_ARGS__));               \
        }                                                                   \
    } while (0)

#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            ::eole::fatalImpl(__FILE__, __LINE__,                           \
                              ::eole::csprintf(__VA_ARGS__));               \
        }                                                                   \
    } while (0)

#endif // EOLE_COMMON_LOGGING_HH
