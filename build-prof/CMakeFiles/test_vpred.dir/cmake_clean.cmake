file(REMOVE_RECURSE
  "CMakeFiles/test_vpred.dir/tests/test_vpred.cc.o"
  "CMakeFiles/test_vpred.dir/tests/test_vpred.cc.o.d"
  "test_vpred"
  "test_vpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
