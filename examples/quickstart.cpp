/**
 * @file
 * Quickstart: build a named paper configuration, run one benchmark,
 * and read the statistics the EOLE paper is about.
 *
 *   ./build/examples/quickstart [benchmark] [uops]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "pipeline/core.hh"
#include "sim/configs.hh"
#include "workloads/workload.hh"

using namespace eole;

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "444.namd";
    const std::uint64_t uops = argc > 2 ? std::strtoull(argv[2], nullptr, 0)
                                        : 1000000;

    // Three machines from the paper's evaluation:
    //   Baseline_6_64    -- Table 1, no value prediction
    //   Baseline_VP_6_64 -- + VTAGE-2DStride VP, validation at commit
    //   EOLE_4_64        -- Early+Late Execution with a narrower
    //                       4-issue OoO engine (the headline design)
    const SimConfig cfgs[] = {
        configs::baseline(6, 64),
        configs::baselineVp(6, 64),
        configs::eole(4, 64),
    };

    std::printf("benchmark %s, %llu u-ops per run\n\n", bench.c_str(),
                static_cast<unsigned long long>(uops));
    std::printf("%-18s %7s %8s %8s %8s %9s\n", "config", "IPC", "VP-cov",
                "EE-frac", "LE-frac", "offload");

    for (const SimConfig &cfg : cfgs) {
        const Workload w = workloads::build(bench);
        Core core(cfg, w);
        core.run(uops / 5, uops * 100);  // warm predictors and caches
        core.resetStats();
        core.run(uops, uops * 100);

        const StatRecord r = core.record();
        std::printf("%-18s %7.3f %8.3f %8.3f %8.3f %9.3f\n",
                    cfg.name.c_str(), r.get("ipc"), r.get("vp_coverage"),
                    r.get("ee_frac"), r.get("le_frac"),
                    r.get("offload_frac"));
    }

    std::printf("\nThe EOLE_4_64 row shows the paper's point: with Early"
                " and Late Execution,\na 4-issue out-of-order engine"
                " keeps up with the 6-issue VP baseline while\n10%%-60%%"
                " of the committed u-ops never enter the OoO core.\n");
    return 0;
}
