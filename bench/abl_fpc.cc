/**
 * Ablation (§4.2 context): Forward Probabilistic Counter transition
 * vectors. The paper's vector {1, 4x 1/32, 2x 1/64} against a plain
 * 3-bit counter (all-1 transitions, i.e. no probabilistic filtering)
 * and an even stricter vector. Shows the accuracy/coverage trade-off
 * that makes commit-time squash recovery affordable.
 *
 * Thin wrapper over the "abl_fpc" plan; see `eole run abl_fpc`.
 */
#include "bench_common.hh"

int
main()
{
    return eole::runFigure("abl_fpc");
}
