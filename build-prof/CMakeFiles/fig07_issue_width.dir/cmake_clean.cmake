file(REMOVE_RECURSE
  "CMakeFiles/fig07_issue_width.dir/bench/fig07_issue_width.cc.o"
  "CMakeFiles/fig07_issue_width.dir/bench/fig07_issue_width.cc.o.d"
  "fig07_issue_width"
  "fig07_issue_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_issue_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
