/**
 * @file
 * Tests for the experiment layer: named configurations, the parallel
 * grid runner and table helpers.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/configs.hh"
#include "sim/experiment.hh"

using namespace eole;

TEST(Configs, NamesFollowThePaper)
{
    EXPECT_EQ(configs::baseline(6, 64).name, "Baseline_6_64");
    EXPECT_EQ(configs::baselineVp(4, 64).name, "Baseline_VP_4_64");
    EXPECT_EQ(configs::eole(6, 48).name, "EOLE_6_48");
    EXPECT_EQ(configs::eoleConstrained(4, 64, 4, 4).name,
              "EOLE_4_64_4ports_4banks");
    EXPECT_EQ(configs::ole(4, 64, 4, 4).name, "OLE_4_64_4ports_4banks");
    EXPECT_EQ(configs::eoe(4, 64, 4, 4).name, "EOE_4_64_4ports_4banks");
}

TEST(Configs, KnobsAreConsistent)
{
    const SimConfig b = configs::baseline(4, 48);
    EXPECT_EQ(b.issueWidth, 4);
    EXPECT_EQ(b.iqEntries, 48);
    EXPECT_EQ(b.numAlu, 4);  // ALU rank tracks issue width (§6.1)
    EXPECT_FALSE(b.vpEnabled());
    EXPECT_EQ(b.preCommitCycles(), 0);

    const SimConfig v = configs::baselineVp(6, 64);
    EXPECT_TRUE(v.vpEnabled());
    EXPECT_EQ(v.preCommitCycles(), 1);  // the LE/VT stage
    EXPECT_FALSE(v.eoleActive());

    const SimConfig e = configs::eoleConstrained(4, 64, 4, 3);
    EXPECT_TRUE(e.earlyExec);
    EXPECT_TRUE(e.lateExec);
    EXPECT_EQ(e.prfBanks, 4);
    EXPECT_EQ(e.levtReadPortsPerBank, 3);
    EXPECT_EQ(e.eeWritePortsPerBank, 2);

    const SimConfig o = configs::ole(4, 64, 4, 4);
    EXPECT_FALSE(o.earlyExec);
    EXPECT_TRUE(o.lateExec);

    const SimConfig eo = configs::eoe(4, 64, 4, 4);
    EXPECT_TRUE(eo.earlyExec);
    EXPECT_FALSE(eo.lateExec);
}

TEST(Experiment, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Experiment, EnvOverridesRunLengths)
{
    setenv("EOLE_WARMUP", "123", 1);
    setenv("EOLE_INSTS", "456", 1);
    EXPECT_EQ(warmupUops(), 123u);
    EXPECT_EQ(measureUops(), 456u);
    unsetenv("EOLE_WARMUP");
    unsetenv("EOLE_INSTS");
}

TEST(Experiment, GridRunsAllPairsInParallel)
{
    setenv("EOLE_WARMUP", "2000", 1);
    setenv("EOLE_INSTS", "20000", 1);

    const std::vector<SimConfig> cfgs = {configs::baseline(6, 64),
                                         configs::baselineVp(6, 64)};
    const std::vector<std::string> names = {"164.gzip", "186.crafty"};
    const auto results = runGrid(cfgs, names);
    ASSERT_EQ(results.size(), 4u);

    for (const auto &cfg : cfgs) {
        for (const auto &wname : names) {
            const RunResult &r = findResult(results, cfg.name, wname);
            EXPECT_GT(r.ipc(), 0.0) << cfg.name << "/" << wname;
            // A commit group may overshoot the target by < commitWidth.
            EXPECT_GE(r.stats.get("committed_uops"), 20000.0);
            EXPECT_LT(r.stats.get("committed_uops"), 20008.0);
        }
    }
    // VP stats only present (non-zero) on the VP configuration.
    EXPECT_EQ(findResult(results, "Baseline_6_64", "164.gzip")
                  .stats.get("vp_used"),
              0.0);

    unsetenv("EOLE_WARMUP");
    unsetenv("EOLE_INSTS");
}

TEST(Experiment, FindResultDiesOnMissing)
{
    std::vector<RunResult> results;
    EXPECT_DEATH((void)findResult(results, "nope", "nothing"),
                 "no result");
}

TEST(Experiment, DeterministicAcrossRuns)
{
    setenv("EOLE_WARMUP", "1000", 1);
    setenv("EOLE_INSTS", "10000", 1);
    const std::vector<SimConfig> cfgs = {configs::eole(4, 64)};
    const std::vector<std::string> names = {"458.sjeng"};
    const auto a = runGrid(cfgs, names);
    const auto b = runGrid(cfgs, names);
    EXPECT_DOUBLE_EQ(a[0].stats.get("cycles"), b[0].stats.get("cycles"));
    EXPECT_DOUBLE_EQ(a[0].stats.get("early_executed"),
                     b[0].stats.get("early_executed"));
    unsetenv("EOLE_WARMUP");
    unsetenv("EOLE_INSTS");
}
