/**
 * @file
 * The paper's hybrid VTAGE-2DStride value predictor (Table 2).
 *
 * Both components predict every eligible µ-op and both train at
 * commit. Arbitration favours a confident tagged VTAGE hit (context
 * captured), then a confident 2D-Stride prediction (computational
 * patterns), then whichever component predicts at all (VTAGE base
 * last) -- maximizing usable coverage, which is exactly what EOLE
 * wants, since every predicted single-cycle µ-op is one fewer µ-op in
 * the OoO engine (§3.3).
 */

#ifndef EOLE_VPRED_HYBRID_HH
#define EOLE_VPRED_HYBRID_HH

#include <memory>

#include "vpred/stride.hh"
#include "vpred/vtage.hh"

namespace eole {

class HybridVtage2DStride : public ValuePredictor
{
  public:
    HybridVtage2DStride(const VpConfig &config, std::uint64_t seed);

    std::vector<std::pair<int, int>> foldSpecs() const override;
    void bindHistory(const GlobalHistory &hist,
                     std::size_t fold_base) override;

    VpLookup predict(Addr pc) override;
    void commit(Addr pc, RegVal actual, const VpLookup &lookup) override;
    void squash(Addr pc, const VpLookup &lookup) override;
    const char *name() const override { return "VTAGE-2DStride"; }

    /** Functional-warming fast path: both components predict and
     *  train directly, skipping the pipeline path's per-lookup
     *  sub-record heap allocations (the arbitration chooser is
     *  stateless, so component state evolves identically). */
    void warmUpdate(const TraceUop &uop) override;

    /** Concatenated component snapshots (the arbitration chooser is
     *  stateless, so the two sub-predictors are the whole state). */
    void snapshotState(std::ostream &os) const override;
    void restoreState(std::istream &is) override;

    Vtage &vtage() { return *vt; }
    StridePredictor &stride() { return *sp; }

  private:
    std::unique_ptr<Vtage> vt;
    std::unique_ptr<StridePredictor> sp;
};

} // namespace eole

#endif // EOLE_VPRED_HYBRID_HH
