# Empty dependencies file for plan_file.
# This may be replaced when dependencies are built.
