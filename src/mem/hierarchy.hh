/**
 * @file
 * The assembled memory hierarchy of Table 1: split L1I/L1D over a
 * unified L2 with a stride prefetcher, backed by DDR3-like DRAM.
 */

#ifndef EOLE_MEM_HIERARCHY_HH
#define EOLE_MEM_HIERARCHY_HH

#include <memory>

#include "common/stats.hh"
#include "isa/warmable.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/prefetcher.hh"

namespace eole {

/** Memory-hierarchy geometry (Table 1 defaults). String-addressable
 *  as "mem.*" ("mem.l1i.*"/"mem.l1d.*"/"mem.l2.*"/"mem.dram.*"/
 *  "mem.prefetch.*") via the parameter registry (sim/params.hh); new
 *  fields must be registered there. */
struct MemConfig
{
    CacheConfig l1i{"l1i", 32 * 1024, 4, 64, 2, 64};
    CacheConfig l1d{"l1d", 32 * 1024, 4, 64, 2, 64};
    CacheConfig l2{"l2", 2 * 1024 * 1024, 16, 64, 12, 64};
    DramConfig dram;
    PrefetcherConfig prefetch;
    bool prefetchEnabled = true;
};

class MemHierarchy : public WarmableComponent
{
  public:
    explicit MemHierarchy(const MemConfig &config = MemConfig{})
        : dram(std::make_unique<Dram>(config.dram)),
          l2(std::make_unique<Cache>(
              config.l2,
              [this](Addr a, bool w, Cycle t) {
                  return dram->access(a, w, t);
              })),
          l1i(std::make_unique<Cache>(
              config.l1i,
              [this](Addr a, bool w, Cycle t) {
                  return l2->access(a, w, t);
              })),
          l1d(std::make_unique<Cache>(
              config.l1d,
              [this](Addr a, bool w, Cycle t) {
                  return l2->access(a, w, t);
              })),
          prefetcher(config.prefetch),
          fetchLineMask(~static_cast<Addr>(config.l1i.lineBytes - 1))
    {
        if (config.prefetchEnabled)
            prefetcher.attach(l2.get());
    }

    /** I-cache line mask; the fetch stage and the warming path must
     *  use the same line granularity (fetch one access per line). */
    Addr fetchLine(Addr pc) const { return pc & fetchLineMask; }

    // The level-linking lambdas capture `this`; relocation would leave
    // them dangling.
    MemHierarchy(const MemHierarchy &) = delete;
    MemHierarchy &operator=(const MemHierarchy &) = delete;
    MemHierarchy(MemHierarchy &&) = delete;
    MemHierarchy &operator=(MemHierarchy &&) = delete;

    /** Instruction fetch: one line access. */
    Cycle
    fetchAccess(Addr pc, Cycle now)
    {
        return l1i->access(pc, false, now);
    }

    /**
     * Data load by the instruction at @p pc. The prefetcher observes
     * the access (it is trained on L1D demand traffic and fills L2).
     */
    Cycle
    loadAccess(Addr pc, Addr addr, Cycle now)
    {
        prefetcher.observe(pc, addr, now);
        return l1d->access(addr, false, now);
    }

    /** Data store (performed at/after commit; see DESIGN.md). */
    Cycle
    storeAccess(Addr pc, Addr addr, Cycle now)
    {
        prefetcher.observe(pc, addr, now);
        return l1d->access(addr, true, now);
    }

    Cache &l1iCache() { return *l1i; }
    Cache &l1dCache() { return *l1d; }
    Cache &l2Cache() { return *l2; }
    Dram &dramCtrl() { return *dram; }

    /**
     * Functional warming (isa/warmable.hh): touch the I-cache once per
     * fetched line (as the fetch stage does) and the D-side for every
     * load/store, on an internal pseudo-clock that advances one cycle
     * per µ-op. Tags, LRU, prefetcher training and DRAM row state warm
     * up; latencies are discarded.
     */
    void
    warmUpdate(const TraceUop &uop) override
    {
        ++warmClock;
        const Addr line = uop.pc & fetchLineMask;
        if (line != warmFetchLine) {
            warmFetchLine = line;
            (void)fetchAccess(uop.pc, warmClock);
        }
        if (uop.isLoad())
            (void)loadAccess(uop.pc, uop.effAddr, warmClock);
        else if (uop.isStore())
            (void)storeAccess(uop.pc, uop.effAddr, warmClock);
    }

    /** Advance the warming pseudo-clock past @p now so a detailed run
     *  following a warming pass never observes fills scheduled in its
     *  future (Core::functionalWarm aligns the clocks). */
    void
    syncWarmClock(Cycle now)
    {
        warmClock = std::max(warmClock, now);
    }

    /** Current warming pseudo-clock (Core::functionalWarm re-aligns
     *  the core clock to it after a warming pass). */
    Cycle warmClockNow() const { return warmClock; }

    /**
     * Serialize the complete warmed state (isa/warmable.hh contract):
     * all three cache levels, DRAM bank/bus state, the prefetcher
     * training table and the warming pseudo-clock. Statistic counters
     * are excluded (measurement state, zeroed by Core::resetTiming).
     */
    void
    snapshotState(std::ostream &os) const override
    {
        SnapshotWriter w(os);
        w.tag("mem-hierarchy").u64(1);
        w.end();
        w.tag("clock").u64(warmClock).u64(warmFetchLine);
        w.end();
        l1i->snapshotState(os);
        l1d->snapshotState(os);
        l2->snapshotState(os);
        dram->snapshotState(os);
        prefetcher.snapshotState(os);
    }

    /** Restore into a same-geometry hierarchy; subsequent accesses are
     *  decision-identical (pinned by tests/test_ckpt_state.cc). */
    void
    restoreState(std::istream &is) override
    {
        SnapshotReader r(is, "mem-hierarchy");
        r.line("mem-hierarchy");
        r.fatalIf(r.u64("version") != 1, "unsupported version");
        r.endLine();
        r.line("clock");
        warmClock = r.u64("warmClock");
        warmFetchLine = r.u64("warmFetchLine");
        r.endLine();
        l1i->restoreState(r);
        l1d->restoreState(r);
        l2->restoreState(r);
        dram->restoreState(r);
        prefetcher.restoreState(r);
    }

    /** Zero every statistic counter in the hierarchy; cache tags, LRU,
     *  MSHR, DRAM row and prefetcher training state are all kept. */
    void
    resetStats()
    {
        l1i->resetStats();
        l1d->resetStats();
        l2->resetStats();
        dram->resetStats();
        prefetcher.resetStats();
    }

    StatRecord
    record() const
    {
        StatRecord r;
        r.addAll("l1i.", l1i->record());
        r.addAll("l1d.", l1d->record());
        r.addAll("l2.", l2->record());
        r.add("dram.reads", static_cast<double>(dram->readCount()));
        r.add("dram.writes", static_cast<double>(dram->writeCount()));
        r.add("prefetches_issued",
              static_cast<double>(prefetcher.issuedCount()));
        return r;
    }

  private:
    std::unique_ptr<Dram> dram;
    std::unique_ptr<Cache> l2;
    std::unique_ptr<Cache> l1i;
    std::unique_ptr<Cache> l1d;
    StridePrefetcher prefetcher;
    Addr fetchLineMask;
    Cycle warmClock = 0;
    Addr warmFetchLine = ~0ULL;
};

} // namespace eole

#endif // EOLE_MEM_HIERARCHY_HH
