/**
 * @file
 * Plan files: ExperimentPlan grids as pure, serializable data — new
 * sweeps without recompiling. `eole run --plan file.plan` parses one
 * of these into the same ExperimentPlan the compiled-in registry
 * (sim/plans.hh) produces, so artifacts, sampling, `--jobs`
 * bit-identity and diffing all apply unchanged.
 *
 * Format: one directive per line, '#' starts a comment.
 *
 *   plan = my_sweep               # required; the artifact plan name
 *   description = what it shows
 *   base = EOLE_4_64              # named config the axes derive from
 *   configs = Baseline_6_64, EOLE_4_64   # explicit named configs
 *   workloads = all               # or a comma list of workload names
 *   seed = 1                      # plan base seed
 *   warmup = 20000                # u-ops (0/absent = env defaults)
 *   measure = 100000
 *   sample = 10:5000:2500         # default sampling spec N:W:D[:B]
 *                                 # (absent = full run; `--sample`
 *                                 # overrides, resolveSampleSpec)
 *   set vp.kind = VTAGE           # registry override, applied to
 *                                 # every config (same as --set)
 *   axis prfBanks = 1, 2, 4, 8    # grid axis over `base`
 *   axis issueWidth = 4, 6        # axes cross-multiply (here: 8 cells)
 *   runlen EOLE_4_64 = 200000     # per-config measured-length override
 *   table ipc "IPC" normalize=EOLE_4_64 columns=EOLE_4_64,Baseline_6_64
 *                                 # optional paper-style table;
 *                                 # columns= picks column configs and
 *                                 # order (comma list, no spaces;
 *                                 # default: every config minus the
 *                                 # normalizer)
 *
 * Config names and axis/set keys resolve through configs::findNamed
 * and the parameter registry (sim/params.hh); grid cells are named
 * `<base>+key=value[+key=value...]` so every cell stays addressable
 * in artifacts and --filter. Errors carry the line number and
 * nearest valid spellings — the CLI exits 2 on them.
 */

#ifndef EOLE_SIM_PLANFILE_HH
#define EOLE_SIM_PLANFILE_HH

#include <string>
#include <vector>

#include "sim/plan.hh"

namespace eole {

/** One grid axis: a registry key crossed over canonical value texts. */
struct GridAxis
{
    std::string key;
    std::vector<std::string> values;
};

/**
 * Cross-multiply @p axes over @p base (first axis slowest). Each cell
 * is deriveConfig(base, "<base>+k=v...", overrides); fatal on unknown
 * keys/invalid values (callers wanting diagnostics validate first, as
 * the plan-file parser does).
 */
std::vector<SimConfig> expandGrid(const SimConfig &base,
                                  const std::vector<GridAxis> &axes);

/**
 * Parse plan-file text. Returns true and fills @p out on success;
 * otherwise false with a diagnostic in @p err ("<origin> line N: ...",
 * including did-you-mean suggestions for misspelled directives, keys,
 * config and workload names).
 */
bool parsePlanText(const std::string &text, const std::string &origin,
                   ExperimentPlan *out, std::string *err);

/** parsePlanText over a file's contents (false + @p err when the file
 *  is unreadable). */
bool loadPlanFile(const std::string &path, ExperimentPlan *out,
                  std::string *err);

} // namespace eole

#endif // EOLE_SIM_PLANFILE_HH
