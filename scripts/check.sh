#!/usr/bin/env bash
# CI entrypoint: tier-1 verify (configure + build + ctest) with short
# run lengths so the experiment grids finish in CI time. The run-length
# env overrides are honoured by sim/experiment.cc (see DESIGN.md §5);
# tests that pin golden values use their own explicit run lengths and
# are unaffected.
#
# Usage: scripts/check.sh [--with-bench]
#   --with-bench   also run the fig13 modularity bench (stage-swap
#                  self-check + the EOLE/OLE/EOE grid) on the short
#                  run lengths.
set -euo pipefail

cd "$(dirname "$0")/.."

export EOLE_WARMUP="${EOLE_WARMUP:-50000}"
export EOLE_INSTS="${EOLE_INSTS:-100000}"

JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "${1:-}" == "--with-bench" ]]; then
    ./build/fig13_modularity
fi

echo "check.sh: OK (warmup=$EOLE_WARMUP, insts=$EOLE_INSTS)"
