/**
 * @file
 * Author a sweep as *data* — the plan-file twin of sweep_plan.cpp.
 *
 *   ./build/plan_file [jobs]
 *
 * Where sweep_plan.cpp builds its ExperimentPlan in C++, this example
 * writes the same kind of grid as plan-file text (base config + axes
 * of key = v1, v2 through the parameter registry, DESIGN.md §9),
 * parses it with parsePlanText — exactly what `eole run --plan
 * file.plan` does — and runs it on the worker pool. It then shows the
 * registry's other face: every cell of the artifact embeds its
 * complete canonical config map, so the grid's axes can be read back
 * out of the results without the plan in hand.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "sim/artifact.hh"
#include "sim/params.hh"
#include "sim/planfile.hh"
#include "sim/sweep.hh"

using namespace eole;

namespace {

// The same text could live in a .plan file next to the binary; eole
// run --plan would accept it unchanged (see examples/README.md).
const char *planText =
    "# EOLE PRF banking vs issue width, as data.\n"
    "plan = bank_width_grid\n"
    "description = PRF banks x issue width over EOLE_4_64\n"
    "base = EOLE_4_64\n"
    "workloads = 164.gzip, 429.mcf, 444.namd\n"
    "warmup = 20000\n"
    "measure = 100000\n"
    "set bp.rasEntries = 16          # applies to every cell\n"
    "axis prfBanks = 1, 4\n"
    "axis issueWidth = 4, 6\n"
    "table ipc \"IPC by banks/width\"\n";

} // namespace

int
main(int argc, char **argv)
{
    // 1. Parse the grid. Errors carry line numbers and did-you-mean
    //    suggestions; the CLI exits 2 on them, we just print.
    ExperimentPlan plan;
    std::string err;
    if (!parsePlanText(planText, "plan_file.cpp", &plan, &err)) {
        std::fprintf(stderr, "plan parse failed: %s\n", err.c_str());
        return 2;
    }
    std::printf("parsed plan \"%s\": %zu configs x %zu workloads\n",
                plan.name.c_str(), plan.configs.size(),
                plan.workloads.size());
    for (const SimConfig &c : plan.configs) {
        std::printf("  %-32s", c.name.c_str());
        // The base+override view: what this cell changes vs defaults
        // (the name override is the printed label itself).
        for (const auto &[key, value] : configOverrides(c)) {
            if (key != "name")
                std::printf(" %s=%s", key.c_str(), value.c_str());
        }
        std::printf("\n");
    }

    // 2. Run it — same engine, same guarantees as compiled-in plans.
    SweepOptions opt;
    opt.jobs = argc > 1 ? std::atoi(argv[1]) : 0;
    const PlanResult result = runPlan(plan, opt);
    printPlanTables(plan, result);

    // 3. Artifacts embed each cell's complete canonical config map:
    //    recover the grid axes from the results alone.
    std::printf("\naxes recovered from the artifact:\n");
    for (const RunResult &cell : result.cells) {
        std::string banks, width;
        for (const auto &[key, value] : cell.params) {
            if (key == "prfBanks")
                banks = value;
            else if (key == "issueWidth")
                width = value;
        }
        std::printf("  %-32s banks=%s width=%s ipc=%.3f\n",
                    cell.config.c_str(), banks.c_str(), width.c_str(),
                    cell.ipc());
    }

    // Round trip: the map survives the JSON artifact byte-for-byte.
    std::stringstream ss(jsonArtifactString(result));
    const PlanResult reread = readJsonArtifact(ss);
    const std::size_t diffs =
        diffArtifacts(result, reread, DiffOptions{}, std::cout);
    std::printf("round-trip diff: %zu difference(s)\n", diffs);
    return diffs == 0 ? 0 : 1;
}
