/**
 * @file
 * TAGE conditional branch predictor (Seznec & Michaud, JILP 2006) with
 * storage-free confidence estimation (Seznec, HPCA 2011).
 *
 * Configuration follows Table 1 of the EOLE paper: 1 base + 12 tagged
 * components, ~15K entries total, 20-cycle minimum misprediction
 * penalty (modeled by the pipeline). The confidence estimate drives
 * Late Execution of very-high-confidence branches: a prediction is
 * "high confidence" when the providing counter is saturated, which
 * empirically yields misprediction rates below ~0.5% (§3.3).
 */

#ifndef EOLE_BPRED_TAGE_HH
#define EOLE_BPRED_TAGE_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/sat_counter.hh"
#include "common/types.hh"
#include "bpred/history.hh"
#include "isa/snapshot.hh"

namespace eole {

/** TAGE geometry. Defaults follow the paper's 1+12 / 15K-entry setup.
 *  String-addressable as "bp.tage.*" via the parameter registry
 *  (sim/params.hh); new fields must be registered there. */
struct TageConfig
{
    int numTagged = 12;
    int taggedLog2Entries = 10;   //!< 1K entries per tagged component
    int baseLog2Entries = 12;     //!< 4K-entry bimodal base
    int tagBits = 12;
    int ctrBits = 3;
    int uBits = 2;
    int minHist = 4;
    int maxHist = 640;
    /** Periodic useful-bit reset interval (branches). */
    std::uint64_t uResetPeriod = 256 * 1024;
};

/** Per-lookup state carried by a branch until commit-time training. */
struct TageLookup
{
    static constexpr int maxComps = 16;
    std::uint32_t idx[maxComps] = {};
    std::uint16_t tag[maxComps] = {};
    std::uint32_t baseIdx = 0;
    int provider = -1;            //!< -1 = base predictor provided
    int altProvider = -1;         //!< alternate (next-longest hit)
    bool providerPred = false;
    bool altPred = false;         //!< alt (or base) prediction
    bool usedAlt = false;         //!< newly-allocated entry bypassed
    bool predTaken = false;
    bool highConf = false;
};

/**
 * The TAGE predictor. The caller owns the GlobalHistory (shared with
 * other history-indexed structures) and passes it at lookup; the fold
 * specs this predictor requires are exposed by foldSpecs().
 */
class Tage
{
  public:
    explicit Tage(const TageConfig &config, std::uint64_t seed = 0x7a6e);

    /**
     * History fold specs: for each tagged component, one index fold and
     * two tag folds. Register these (in order, starting at
     * @p fold_base) with the shared GlobalHistory.
     */
    std::vector<std::pair<int, int>> foldSpecs() const;

    /**
     * Predict the direction of the conditional branch at @p pc.
     *
     * @param pc branch byte PC
     * @param hist global history (folds registered via foldSpecs)
     * @param fold_base index of this predictor's first fold in hist
     * @param out lookup record to carry until training
     * @return predicted direction
     */
    bool predict(Addr pc, const GlobalHistory &hist, std::size_t fold_base,
                 TageLookup &out);

    /**
     * Train with the resolved outcome (call in commit order, using the
     * lookup record captured at fetch).
     */
    void update(Addr pc, bool taken, const TageLookup &lookup);

    /** History length of tagged component @p i (tests/inspection). */
    int histLength(int i) const { return histLens[i]; }

    /** Serialize tables, meta-predictor, update counter and RNG as
     *  canonical text (isa/snapshot.hh). */
    void snapshotState(std::ostream &os) const;

    /** Restore into a same-geometry instance (fatal with section/line
     *  context on mismatch or malformed input). */
    void restoreState(SnapshotReader &r);

  private:
    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        SignedSatCounter ctr;
        std::uint8_t u = 0;
    };

    std::uint32_t baseIndex(Addr pc) const;
    std::uint32_t taggedIndex(Addr pc, const GlobalHistory &hist,
                              std::size_t fold_base, int comp) const;
    std::uint16_t taggedTag(Addr pc, const GlobalHistory &hist,
                            std::size_t fold_base, int comp) const;

    TageConfig cfg;
    std::vector<int> histLens;
    std::vector<std::vector<TaggedEntry>> tagged;
    std::vector<SignedSatCounter> base;
    /** use_alt_on_newly_allocated bias counter (TAGE standard). */
    SignedSatCounter useAltOnNa;
    Rng rng;
    std::uint64_t updates = 0;
};

} // namespace eole

#endif // EOLE_BPRED_TAGE_HH
