/**
 * @file
 * Named experiment plans: every figure and table of the paper's
 * evaluation (plus the ablations that grew around it) as a declarative
 * ExperimentPlan the sweep engine can execute. The per-figure bench
 * binaries are thin wrappers over this registry, and the `eole` CLI
 * can list, run, filter and diff any entry.
 */

#ifndef EOLE_SIM_PLANS_HH
#define EOLE_SIM_PLANS_HH

#include <string>
#include <vector>

#include "sim/plan.hh"

namespace eole {
namespace plans {

/** All registered plan names, in presentation order. */
const std::vector<std::string> &allNames();

/** Is @p name a registered plan? */
bool exists(const std::string &name);

/** Build a plan by name (fatal on unknown name). */
ExperimentPlan get(const std::string &name);

} // namespace plans
} // namespace eole

#endif // EOLE_SIM_PLANS_HH
