#include "pipeline/stages/levt.hh"

#include "common/logging.hh"
#include "common/pipetrace.hh"
#include "common/profiler.hh"
#include "isa/functional.hh"
#include "pipeline/pipeline_state.hh"

namespace eole {

LevtStage::LevtStage(const SimConfig &cfg) : vpEnabled(cfg.vpEnabled())
{
}

void
LevtStage::tick(PipelineState &)
{
    // Work happens at the ROB head, driven by CommitStage (see the
    // file comment); nothing to do on the free-running tick.
}

int
LevtStage::readNeeds(const PipelineState &st, const DynInst &di,
                     int *banks_out) const
{
    int n = 0;
    if (di.lateExecutable()) {
        // Operand reads for Late Execution.
        for (int i = 0; i < 2; ++i) {
            const RegIndex src = i == 0 ? di.uop().src1 : di.uop().src2;
            if (src == invalidReg)
                continue;
            banks_out[n++] = st.bankOfReg(di.uop().srcClass[i], di.physSrc[i]);
        }
    } else if (di.uop().vpEligible() && vpEnabled) {
        // Validation (predicted) / training (all eligible) result read.
        banks_out[n++] = st.bankOfReg(di.uop().dstClass, di.physDst);
    }
    return n;
}

bool
LevtStage::reservePorts(PipelineState &st, const DynInst &di)
{
    int banks[4];
    const int nreads = readNeeds(st, di, banks);
    if (nreads > 0 && !st.ports.tryLevtReads(banks, nreads)) {
        ++s.commitPortStalls;
        return false;
    }
    return true;
}

void
LevtStage::lateExecute(PipelineState &st, const DynInstPtr &di)
{
    if (di->lateExecAlu) {
        const RegVal a = st.readOperand(*di, 0);
        const RegVal b = st.readOperand(*di, 1);
        di->computedValue = execAlu(di->uop().opc, a, b, di->uop().imm);
        di->hasComputedValue = true;
        di->completed = true;
        ++s.lateExecutedAlu;
        if (st.tracer && st.tracer->wants(di->seq))
            st.tracer->event(st.now, di->seq, PipeEvent::Exec, "le=alu");
    } else if (di->lateExecBranch) {
        di->completed = true;
        ++s.lateExecutedBranches;
        if (st.tracer && st.tracer->wants(di->seq))
            st.tracer->event(st.now, di->seq, PipeEvent::Exec, "le=br");
        if (di->bp.mispredict)
            st.resolveMispredictedBranch(di);
    }
}

bool
LevtStage::validate(PipelineState &st, const DynInstPtr &di)
{
    if (!di->predictionUsed)
        return false;
    panic_if(!di->hasComputedValue,
             "predicted µ-op %llu commits without a result",
             (unsigned long long)di->seq);
    const bool mispredict = di->computedValue != di->predictedValue;
    if (!mispredict) {
        ++s.vpCorrectUsed;
    } else {
        ++s.vpMispredictSquashes;
        // Fix the PRF if the prediction was still live there.
        st.prfOf(di->uop().dstClass).overwriteValue(di->physDst,
                                                  di->computedValue);
    }
    return mispredict;
}

void
LevtStage::train(PipelineState &st, const DynInstPtr &di)
{
    if (vpEnabled && di->vpLookupValid) {
        prof::ScopedTimer vp_timer(prof::ModelVpred);
        st.vp->commit(di->uop().pc, di->uop().result, di->vp);
    }
}

void
LevtStage::resetStats()
{
    s = Stats{};
}

void
LevtStage::addStats(CoreStats &out) const
{
    out.lateExecutedAlu += s.lateExecutedAlu;
    out.lateExecutedBranches += s.lateExecutedBranches;
    out.vpCorrectUsed += s.vpCorrectUsed;
    out.vpMispredictSquashes += s.vpMispredictSquashes;
    out.commitPortStalls += s.commitPortStalls;
}

} // namespace eole
