/**
 * @file
 * Workload registry: 19 synthetic SPEC-like kernels.
 *
 * Each kernel is a real program (authored with the Assembler, executed
 * functionally by the KernelVM) engineered to reproduce the traits the
 * paper's mechanisms key on for the corresponding SPEC benchmark:
 * value-predictability mix, branch behaviour, memory footprint/pattern,
 * and ILP. See DESIGN.md §5 for the substitution rationale.
 */

#ifndef EOLE_WORKLOADS_WORKLOAD_HH
#define EOLE_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/frozen_trace.hh"
#include "isa/kernel_vm.hh"
#include "isa/static_inst.hh"
#include "isa/trace_source.hh"

namespace eole {

/** A buildable workload. */
struct Workload
{
    std::string name;       //!< e.g. "164.gzip"
    bool isFp = false;      //!< SPEC FP (vs INT) suite member
    std::size_t memBytes = 0;
    Program program;
    std::function<void(KernelVM &)> init;

    /** Optional shared pre-executed stream (sim/trace_cache.hh). When
     *  set, makeTrace() replays it instead of running a live VM; the
     *  two backings are bit-identical. */
    std::shared_ptr<const FrozenTrace> frozen;

    /** Optional resume point inside `frozen` (isa/checkpoint.hh): the
     *  run starts at the checkpoint's µ-op with its architectural
     *  register state. Requires `frozen`; used by the sampling
     *  subsystem (sim/sample/) to start measurement intervals
     *  mid-workload. */
    std::shared_ptr<const Checkpoint> start;

    /** The workload IS its frozen trace (loaded from an eole-trace-v1
     *  file; see workloads::bindTraceFile): there is no program to
     *  re-record from, so freeze() serves clamped views of `frozen`
     *  instead of running a VM. */
    bool fileBacked = false;

    /** Construct a fresh trace source for one simulation run. */
    TraceSource
    makeTrace() const
    {
        if (frozen) {
            return start ? TraceSource(frozen, *start)
                         : TraceSource(frozen);
        }
        panic_if(start != nullptr,
                 "workload %s: a checkpointed start requires a frozen "
                 "trace", name.c_str());
        return TraceSource(program, memBytes, init);
    }

    /** Record this workload's first @p max_uops µ-ops for replay. A
     *  file-backed workload cannot re-record; it returns a clamped
     *  prefix view of the loaded trace — decision-identical to what a
     *  recording of the same length would hold, and a hard error when
     *  the file holds fewer µ-ops than an incomplete replay needs. */
    std::shared_ptr<const FrozenTrace>
    freeze(std::uint64_t max_uops) const
    {
        if (fileBacked) {
            fatal_if(!frozen->complete && frozen->uops.size() < max_uops,
                     "trace file for workload %s holds %zu µ-ops but "
                     "this run needs %llu; re-record with a larger "
                     "--uops", name.c_str(), frozen->uops.size(),
                     (unsigned long long)max_uops);
            return clampTrace(frozen, max_uops);
        }
        return recordTrace(program, memBytes, init, max_uops, name);
    }
};

namespace workloads {

/** Names of all 19 benchmarks, in the paper's Table 3 order. */
const std::vector<std::string> &allNames();

/** Build a workload by name (fatal on unknown name). Besides the
 *  registry names, "torture:<seed>" builds a seeded random program
 *  from the differential torture generator — usable anywhere a
 *  workload name is accepted (plans, sampling) but not listed in
 *  allNames(). Names bound by bindTraceFile() resolve to their
 *  file-backed trace and shadow a same-named generator. */
Workload build(const std::string &name);

/**
 * Load the eole-trace-v1 file at @p path (mmap-backed, see
 * src/trace/trace_file.hh) and register its embedded workload name:
 * from then on build() of that name returns the file-backed workload.
 * This is how `file:<path>` specs become plan-addressable — the
 * canonical name is the one recorded in the file, so cells, seeds,
 * shard ownership and store keys are byte-identical to the generator
 * path.
 *
 * @param name_out the embedded canonical name
 * @param err offset diagnostic on a missing/corrupt file
 * @return false (with @p err) on failure; nothing is registered.
 */
bool bindTraceFile(const std::string &path, std::string *name_out,
                   std::string *err);

/** Drop every bindTraceFile() registration (test isolation). */
void clearBoundTraces();

/** Build every workload. */
std::vector<Workload> buildAll();

// Individual builders (one per SPEC benchmark analog).
Workload makeGzip();     //!< 164.gzip: LZ hashing, data-dependent branches
Workload makeWupwise();  //!< 168.wupwise: predictable-index FP streams
Workload makeApplu();    //!< 173.applu: 5-point stencil, high ILP FP
Workload makeVpr();      //!< 175.vpr: placement cost, abs-diff kernels
Workload makeArt();      //!< 179.art: neural match, highly repetitive values
Workload makeCrafty();   //!< 186.crafty: bitboard immediate-ALU chains
Workload makeParser();   //!< 197.parser: linked-list chasing, branchy
Workload makeVortex();   //!< 255.vortex: call/ret heavy record updates
Workload makeBzip2();    //!< 401.bzip2: counting sort, ld-mod-st aliasing
Workload makeGcc();      //!< 403.gcc: indirect jumps, irregular mix
Workload makeGamess();   //!< 416.gamess: dense FP with index arithmetic
Workload makeMcf();      //!< 429.mcf: huge-footprint pointer chase
Workload makeMilc();     //!< 433.milc: streaming FP, low predictability
Workload makeNamd();     //!< 444.namd: force loops, massive offload
Workload makeGobmk();    //!< 445.gobmk: hard branches, board scans
Workload makeHmmer();    //!< 456.hmmer: Viterbi DP, high ILP, random data
Workload makeSjeng();    //!< 458.sjeng: search mix, hash probes
Workload makeH264ref();  //!< 464.h264ref: SAD loops on slowly varying data
Workload makeLbm();      //!< 470.lbm: lattice streaming, memory bound

/** Simple synthetic micro-workloads used by tests and microbenches. */
namespace micro {

/** Serial dependency chain of addi (IPC -> 1). */
Workload depChain();
/** Fully independent int ALU stream (IPC -> issue width). */
Workload independent();
/** Tight loop with an almost-always-taken back edge. */
Workload loopTaken(int body_len = 6);
/** Branch whose direction alternates every iteration. */
Workload togglingBranch();
/** Strided load stream with strided values (VP-friendly). */
Workload stridedLoads();
/** Same-address load/store ping-pong (forwarding stress). */
Workload storeLoadForward();
/** Random-direction branch (bp stress), seeded deterministically. */
Workload randomBranch(std::uint64_t seed = 7);

} // namespace micro

} // namespace workloads
} // namespace eole

#endif // EOLE_WORKLOADS_WORKLOAD_HH
