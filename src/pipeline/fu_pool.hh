/**
 * @file
 * Functional-unit pool model (Table 1: 6 ALU, 4 MulDiv, 6 FP,
 * 4 FpMulDiv, 4 load/store ports; divide units are not pipelined).
 */

#ifndef EOLE_PIPELINE_FU_POOL_HH
#define EOLE_PIPELINE_FU_POOL_HH

#include <algorithm>
#include <vector>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace eole {

/**
 * Per-cycle issue-port and busy-unit accounting. Pipelined classes are
 * limited by issues-per-cycle; unpipelined classes (divides) also
 * occupy their unit until completion.
 */
class FuPool
{
  public:
    FuPool(int alu, int mul_div, int fp, int fp_mul_div, int mem_ports)
        : aluCount(alu), mulDivCount(mul_div), fpCount(fp),
          fpMulDivCount(fp_mul_div), memPorts(mem_ports),
          mulDivBusy(mul_div, 0), fpMulDivBusy(fp_mul_div, 0)
    {
    }

    /** Start a new cycle: reset per-cycle port counters. */
    void
    newCycle()
    {
        aluUsed = 0;
        mulDivUsed = 0;
        fpUsed = 0;
        fpMulDivUsed = 0;
        memUsed = 0;
    }

    /** Can a µ-op of @p cls issue at cycle @p now? */
    bool
    canIssue(OpClass cls, Cycle now) const
    {
        switch (cls) {
          case OpClass::IntAlu:
          case OpClass::Branch:
            return aluUsed < aluCount;
          case OpClass::IntMul:
            return mulDivUsed < mulDivCount && freeUnit(mulDivBusy, now);
          case OpClass::IntDiv:
            return mulDivUsed < mulDivCount && freeUnit(mulDivBusy, now);
          case OpClass::FpAlu:
            return fpUsed < fpCount;
          case OpClass::FpMul:
            return fpMulDivUsed < fpMulDivCount
                && freeUnit(fpMulDivBusy, now);
          case OpClass::FpDiv:
            return fpMulDivUsed < fpMulDivCount
                && freeUnit(fpMulDivBusy, now);
          case OpClass::MemRead:
          case OpClass::MemWrite:
            return memUsed < memPorts;
          default:
            return true;
        }
    }

    /** Account an issue; @p done is the completion cycle. */
    void
    issue(OpClass cls, Cycle now, Cycle done)
    {
        switch (cls) {
          case OpClass::IntAlu:
          case OpClass::Branch:
            ++aluUsed;
            break;
          case OpClass::IntMul:
            ++mulDivUsed;
            break;
          case OpClass::IntDiv:
            ++mulDivUsed;
            occupy(mulDivBusy, now, done);
            break;
          case OpClass::FpAlu:
            ++fpUsed;
            break;
          case OpClass::FpMul:
            ++fpMulDivUsed;
            break;
          case OpClass::FpDiv:
            ++fpMulDivUsed;
            occupy(fpMulDivBusy, now, done);
            break;
          case OpClass::MemRead:
          case OpClass::MemWrite:
            ++memUsed;
            break;
          default:
            break;
        }
    }

  private:
    static bool
    freeUnit(const std::vector<Cycle> &busy, Cycle now)
    {
        return std::any_of(busy.begin(), busy.end(),
                           [now](Cycle c) { return c <= now; });
    }

    static void
    occupy(std::vector<Cycle> &busy, Cycle now, Cycle done)
    {
        for (Cycle &c : busy) {
            if (c <= now) {
                c = done;
                return;
            }
        }
    }

    int aluCount, mulDivCount, fpCount, fpMulDivCount, memPorts;
    int aluUsed = 0, mulDivUsed = 0, fpUsed = 0, fpMulDivUsed = 0,
        memUsed = 0;
    std::vector<Cycle> mulDivBusy;
    std::vector<Cycle> fpMulDivBusy;
};

} // namespace eole

#endif // EOLE_PIPELINE_FU_POOL_HH
