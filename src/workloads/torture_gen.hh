/**
 * @file
 * Seeded random-but-always-terminating program generator, shared by
 * the differential torture harness (tests/test_torture.cc) and the
 * checkpoint round-trip suite (tests/test_sample.cc).
 *
 * Programs mix ALU/memory/FP work, data-dependent forward branches,
 * calls/returns and indirect jumps inside a bounded counted outer
 * loop, so every generated program halts. All memory accesses stay
 * inside tortureMemBytes by construction (masked bases, bounded
 * offsets).
 */

#ifndef EOLE_WORKLOADS_TORTURE_GEN_HH
#define EOLE_WORKLOADS_TORTURE_GEN_HH

#include <cstdint>

#include "isa/static_inst.hh"

namespace eole {
namespace workloads {

/** VM data-memory size every generated program assumes. */
constexpr std::size_t tortureMemBytes = 8192;

/**
 * Generate a random terminating program.
 *
 * Register conventions: r1..r15 data, r16..r18 masked address
 * scratch, r27 jump-target scratch, r28 outer-loop counter, r31 link.
 * All memory addresses are masked into [0, 4095] with offsets
 * <= 4088, so every architectural access stays inside
 * tortureMemBytes. Every intra-loop branch is forward; the only back
 * edge is the counted outer loop, so the program always halts.
 *
 * @param loop_iterations outer-loop trip-count override; 0 keeps the
 *        seeded default of 8..24. The generated body is identical for
 *        a given seed either way — the override only stretches the
 *        dynamic length, which is what sampled-mode harnesses need
 *        (the "torture:<seed>[:<iters>]" workload names).
 */
Program generateTortureProgram(std::uint64_t seed,
                               std::uint64_t loop_iterations = 0);

} // namespace workloads
} // namespace eole

#endif // EOLE_WORKLOADS_TORTURE_GEN_HH
