#include "vpred/value_predictor.hh"

#include "common/logging.hh"
#include "vpred/fcm.hh"
#include "vpred/hybrid.hh"
#include "vpred/stride.hh"
#include "vpred/vtage.hh"

namespace eole {

const char *
vpKindName(VpKind kind)
{
    switch (kind) {
      case VpKind::None: return "none";
      case VpKind::LastValue: return "LVP";
      case VpKind::Stride: return "Stride";
      case VpKind::TwoDeltaStride: return "2D-Stride";
      case VpKind::Vtage: return "VTAGE";
      case VpKind::Fcm: return "FCM";
      case VpKind::HybridVtage2DStride: return "VTAGE-2DStride";
      default: return "???";
    }
}

const char *
vpLookupAnnot(const VpLookup &lookup)
{
    return lookup.confident ? "vp=conf" : "vp=unconf";
}

std::unique_ptr<ValuePredictor>
createValuePredictor(const VpConfig &config, std::uint64_t seed)
{
    switch (config.kind) {
      case VpKind::None:
        return nullptr;
      case VpKind::LastValue:
        return std::make_unique<LastValuePredictor>(config, seed);
      case VpKind::Stride:
        return std::make_unique<StridePredictor>(config, false, seed);
      case VpKind::TwoDeltaStride:
        return std::make_unique<StridePredictor>(config, true, seed);
      case VpKind::Vtage:
        return std::make_unique<Vtage>(config, seed);
      case VpKind::Fcm:
        return std::make_unique<FcmPredictor>(config, seed);
      case VpKind::HybridVtage2DStride:
        return std::make_unique<HybridVtage2DStride>(config, seed);
      default:
        panic("unknown value predictor kind");
    }
}

} // namespace eole
