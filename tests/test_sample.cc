/**
 * @file
 * Tests for the checkpointed statistical-sampling subsystem
 * (isa/checkpoint.hh, isa/warmable.hh, sim/sample/).
 *
 * The correctness anchor is exactness of the checkpoint round trip:
 * serialize -> restore -> run must commit exactly the same µ-op
 * stream as a straight-through run, pinned here with the torture-test
 * program generator across random programs and split points. On top
 * of that, the statistical layer is held to the engine's determinism
 * contract (byte-identical artifacts across --jobs and cache
 * settings) and to a validation suite: sampled mean IPC must fall
 * within its own reported 95% confidence interval of the full-run
 * IPC for every (workload x config) cell it runs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hh"
#include "isa/checkpoint.hh"
#include "isa/kernel_vm.hh"
#include "pipeline/core.hh"
#include "sim/artifact.hh"
#include "sim/configs.hh"
#include "sim/plans.hh"
#include "sim/sample/sample.hh"
#include "workloads/torture_gen.hh"
#include "workloads/workload.hh"

using namespace eole;
using workloads::generateTortureProgram;
using workloads::tortureMemBytes;

namespace {

/** The commit-stream fields we hold a restored run to. */
struct CommitRecord
{
    SeqNum seq;
    Addr pc;
    Opcode opc;
    RegVal result;
    Addr effAddr;
    bool taken;

    bool
    operator==(const CommitRecord &o) const
    {
        return seq == o.seq && pc == o.pc && opc == o.opc
            && result == o.result && effAddr == o.effAddr
            && taken == o.taken;
    }
};

CommitRecord
recordOf(const DynInst &di)
{
    CommitRecord r{};
    r.seq = di.seq;
    r.pc = di.uop().pc;
    r.opc = di.uop().opc;
    r.result = di.hasDst() ? di.computedValue
                               : (di.uop().isStore() ? di.uop().result : 0);
    r.effAddr =
        (di.uop().isLoad() || di.uop().isStore()) ? di.uop().effAddr : 0;
    r.taken = di.uop().isBranch() ? di.uop().taken : false;
    return r;
}

/** Run @p w under @p cfg to completion, capturing the commit stream. */
std::vector<CommitRecord>
commitStream(const SimConfig &cfg, const Workload &w, std::size_t cap)
{
    std::vector<CommitRecord> got;
    Core core(cfg, w);
    core.setCommitHook(
        [&](const DynInst &di) { got.push_back(recordOf(di)); });
    core.run(cap + 64, cap * 300 + 200000);
    return got;
}

std::string
reproLine(std::uint64_t seed)
{
    return "repro: EOLE_SAMPLE_SEED=" + std::to_string(seed)
        + " ./build/test_sample";
}

/** The 2x2 smoke plan at explicit run lengths (env-independent). */
ExperimentPlan
sampledTinyPlan()
{
    ExperimentPlan p = plans::get("smoke");
    p.warmup = 4000;
    p.measure = 30000;
    return p;
}

} // namespace

// ============================ Checkpoints ================================

TEST(Checkpoint, CaptureAtMatchesLiveVM)
{
    const std::uint64_t base = envU64("EOLE_SAMPLE_SEED", 0x5A3);
    for (std::uint64_t r = 0; r < 8; ++r) {
        const std::uint64_t seed = base + r;
        Workload w;
        w.name = "torture-" + std::to_string(seed);
        w.memBytes = tortureMemBytes;
        w.program = generateTortureProgram(seed);

        const auto trace = w.freeze(1u << 21);
        ASSERT_TRUE(trace->complete) << reproLine(seed);
        const std::uint64_t len = trace->uops.size();

        KernelVM vm(w.program, w.memBytes);
        TraceUop u;
        for (const std::uint64_t split :
             {std::uint64_t(0), len / 3, len / 2, len}) {
            while (vm.executedUops() < split)
                ASSERT_TRUE(vm.step(u)) << reproLine(seed);
            const Checkpoint fromVm = captureFromVM(vm, w.name);
            const Checkpoint fromTrace = captureAt(*trace, w.name, split);
            EXPECT_TRUE(fromVm == fromTrace)
                << "split " << split << "; " << reproLine(seed);
        }
    }
}

TEST(Checkpoint, SerializationRoundTripsByteStable)
{
    Workload w;
    w.name = "torture with spaces";  // exercise the length prefix
    w.memBytes = tortureMemBytes;
    w.program = generateTortureProgram(0xC0FFEE);
    const auto trace = w.freeze(1u << 21);
    ASSERT_TRUE(trace->complete);

    const Checkpoint ckpt =
        captureAt(*trace, w.name, trace->uops.size() / 2);
    const std::string bytes = checkpointString(ckpt);
    const Checkpoint back = checkpointFromString(bytes);
    EXPECT_TRUE(back == ckpt);
    // Canonical: re-serializing produces identical bytes.
    EXPECT_EQ(checkpointString(back), bytes);
    EXPECT_NE(bytes.find("eole-ckpt-v1"), std::string::npos);
}

TEST(Checkpoint, RejectsMalformedDocuments)
{
    EXPECT_DEATH((void)checkpointFromString("bogus"), "schema");
    EXPECT_DEATH((void)checkpointFromString("eole-ckpt-v1\nworkload"),
                 "");
    // A corrupt length must be a diagnostic, not a bad_alloc.
    EXPECT_DEATH((void)checkpointFromString(
                     "eole-ckpt-v1\nworkload 18446744073709551615 x"),
                 "implausible");
    EXPECT_DEATH((void)checkpointFromString(
                     "eole-ckpt-v1\nworkload 9 abc"),
                 "truncated");
}

TEST(Checkpoint, RoundTripIsExactCommitForCommit)
{
    // The acceptance anchor: serialize -> restore -> run equals the
    // straight-through run commit-for-commit, across random torture
    // programs, split points and configurations (including EOLE with
    // value prediction, whose squash machinery must cope with a
    // mid-stream start).
    const std::uint64_t base = envU64("EOLE_SAMPLE_SEED", 0x5A3);
    const SimConfig cfgs[] = {
        configs::baseline(6, 64),
        configs::eole(4, 64),
    };

    for (std::uint64_t r = 0; r < 6; ++r) {
        const std::uint64_t seed = base + 100 + r;
        Workload w;
        w.name = "torture-" + std::to_string(seed);
        w.memBytes = tortureMemBytes;
        w.program = generateTortureProgram(seed);
        w.frozen = w.freeze(1u << 21);
        ASSERT_TRUE(w.frozen->complete) << reproLine(seed);
        const std::uint64_t len = w.frozen->uops.size();

        for (const SimConfig &cfg : cfgs) {
            const auto ref = commitStream(cfg, w, len);
            ASSERT_EQ(ref.size(), len) << cfg.name << "; "
                                       << reproLine(seed);

            for (const std::uint64_t split :
                 {len / 4, len / 2, (3 * len) / 4}) {
                // Serialize and restore through the canonical text
                // form — the restored object, not the original, seeds
                // the run.
                const Checkpoint ckpt =
                    captureAt(*w.frozen, w.name, split);
                const Checkpoint restored =
                    checkpointFromString(checkpointString(ckpt));

                Workload resumed = w;
                resumed.start = std::make_shared<Checkpoint>(restored);
                const auto got =
                    commitStream(cfg, resumed, len - split);
                ASSERT_EQ(got.size(), len - split)
                    << cfg.name << " split " << split << "; "
                    << reproLine(seed);
                for (std::size_t i = 0; i < got.size(); ++i) {
                    ASSERT_TRUE(got[i] == ref[split + i])
                        << cfg.name << " split " << split
                        << ": commit #" << i << " diverges; "
                        << reproLine(seed);
                }
            }
        }
    }
}

TEST(Checkpoint, FunctionalWarmDoesNotPerturbArchitecture)
{
    // Warming the predictors/caches before a checkpointed run must not
    // change a single committed value — it only moves timing.
    const std::uint64_t seed = envU64("EOLE_SAMPLE_SEED", 0x5A3) + 500;
    Workload w;
    w.name = "torture-" + std::to_string(seed);
    w.memBytes = tortureMemBytes;
    w.program = generateTortureProgram(seed);
    w.frozen = w.freeze(1u << 21);
    ASSERT_TRUE(w.frozen->complete);
    const std::uint64_t len = w.frozen->uops.size();
    const std::uint64_t split = len / 2;

    const SimConfig cfg = configs::eole(4, 64);
    const auto ref = commitStream(cfg, w, len);
    ASSERT_EQ(ref.size(), len);

    Workload resumed = w;
    resumed.start = std::make_shared<Checkpoint>(
        captureAt(*w.frozen, w.name, split));

    std::vector<CommitRecord> got;
    Core core(cfg, resumed);
    core.functionalWarm(*w.frozen, 0, split);
    core.setCommitHook(
        [&](const DynInst &di) { got.push_back(recordOf(di)); });
    core.run(len - split + 64, len * 300 + 200000);
    ASSERT_EQ(got.size(), len - split) << reproLine(seed);
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_TRUE(got[i] == ref[split + i])
            << "commit #" << i << " diverges after warming; "
            << reproLine(seed);
    }
}

TEST(Warming, ResetTimingOpensACleanMeasurementWindow)
{
    // resetTiming must zero the memory-hierarchy counters (so a
    // sampled interval's record() covers only the measured window),
    // while plain resetStats leaves them accumulating — the full-run
    // golden records pin that accumulation.
    const Workload w = workloads::build("164.gzip");
    const SimConfig cfg = configs::eole(6, 64);

    Core a(cfg, w);
    a.run(5000, 2000000);
    a.resetStats();
    const double accumulating = a.record().get("mem.l1d.hits");
    EXPECT_GT(accumulating, 0.0);  // warmup traffic still visible

    Core b(cfg, w);
    b.run(5000, 2000000);
    b.resetTiming();
    EXPECT_EQ(b.record().get("mem.l1d.hits"), 0.0);
    EXPECT_EQ(b.record().get("mem.dram.reads"), 0.0);
    EXPECT_EQ(b.record().get("cycles"), 0.0);
    // The window then accumulates only its own traffic.
    b.run(5000, 2000000);
    EXPECT_GT(b.record().get("mem.l1d.hits"), 0.0);
    EXPECT_LT(b.record().get("mem.l1d.hits"), accumulating);
}

TEST(Warming, BranchWarmUpdateMatchesPredictRepairCommit)
{
    // BranchUnit::warmUpdate is a snapshot-free fast path; pin its
    // state-equivalence to the literal predict -> repair-on-mispredict
    // -> commit sequence by warming two identically-seeded units over
    // the same stream and requiring identical predictions afterwards.
    const std::uint64_t base = envU64("EOLE_SAMPLE_SEED", 0x5A3) + 900;
    std::size_t branches = 0;
    for (std::uint64_t r = 0; r < 12; ++r) {
        Workload w;
        w.memBytes = tortureMemBytes;
        w.program = generateTortureProgram(base + r);
        const auto trace = w.freeze(1u << 21);
        ASSERT_TRUE(trace->complete);

        const BpConfig bp;
        BranchUnit fast(bp, {}, 0x1234);
        BranchUnit ref(bp, {}, 0x1234);

        const std::size_t warm_len = trace->uops.size() / 2;
        for (std::size_t i = 0; i < warm_len; ++i) {
            const TraceUop &u = trace->uops[i];
            fast.warmUpdate(u);
            if (!u.isBranch())
                continue;
            BranchUnit::SnapshotPtr pre;
            const BranchPrediction p = ref.predictBranch(u, pre);
            if (p.mispredict)
                ref.repairAfterBranch(u, pre);
            ref.commitBranch(u, p);
        }

        // Both units must now predict the tail identically.
        for (std::size_t i = warm_len; i < trace->uops.size(); ++i) {
            const TraceUop &u = trace->uops[i];
            if (!u.isBranch())
                continue;
            ++branches;
            BranchUnit::SnapshotPtr pf, pr;
            const BranchPrediction a = fast.predictBranch(u, pf);
            const BranchPrediction b = ref.predictBranch(u, pr);
            ASSERT_EQ(a.predTaken, b.predTaken) << "µ-op " << i;
            ASSERT_EQ(a.predTarget, b.predTarget) << "µ-op " << i;
            ASSERT_EQ(a.highConf, b.highConf) << "µ-op " << i;
            ASSERT_EQ(a.mispredict, b.mispredict) << "µ-op " << i;
            if (a.mispredict) {
                fast.repairAfterBranch(u, pf);
                ref.repairAfterBranch(u, pr);
            }
            fast.commitBranch(u, a);
            ref.commitBranch(u, b);
        }
    }
    EXPECT_GT(branches, 200u);
}

// ======================= Interval placement ==============================

TEST(Sampling, PlacementIsSystematicDeterministicAndBounded)
{
    SampleSpec spec;
    spec.intervals = 10;
    spec.intervalUops = 1000;
    spec.detailUops = 500;

    const std::uint64_t warmup = 50000, measure = 200000;
    const auto a = placeIntervals(warmup, measure, spec, 42);
    const auto b = placeIntervals(warmup, measure, spec, 42);
    EXPECT_EQ(a, b);  // deterministic
    ASSERT_EQ(a.size(), 10u);

    const std::uint64_t period = measure / spec.intervals;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_GE(a[i], warmup);
        EXPECT_GE(a[i], spec.detailUops);
        EXPECT_LE(a[i] + spec.intervalUops, warmup + measure);
        if (i > 0) {
            EXPECT_EQ(a[i] - a[i - 1], period);  // systematic spacing
        }
    }

    // The phase depends on the cell seed.
    const auto c = placeIntervals(warmup, measure, spec, 43);
    EXPECT_NE(a, c);

    // Region too small for N intervals: clamped, never overlapping the
    // region end.
    const auto d = placeIntervals(1000, 2500, spec, 7);
    ASSERT_EQ(d.size(), 2u);
    for (const std::uint64_t s : d)
        EXPECT_LE(s + spec.intervalUops, 3500u);
}

TEST(Sampling, PlacementStaysDisjointWhenDetailClampBites)
{
    // Regression: a D larger than the early systematic positions used
    // to clamp several intervals onto the same start, double-counting
    // one measurement and biasing the CI narrow. Clamped placements
    // must stay pairwise disjoint (and may shrink below N instead).
    SampleSpec spec;
    spec.intervals = 4;
    spec.intervalUops = 2000;
    spec.detailUops = 10000;  // > warmup + early periods

    for (std::uint64_t seed : {1ULL, 42ULL, 0xE01EULL}) {
        const auto s = placeIntervals(2000, 20000, spec, seed);
        ASSERT_GE(s.size(), 1u);
        for (std::size_t i = 1; i < s.size(); ++i)
            EXPECT_GE(s[i], s[i - 1] + spec.intervalUops)
                << "seed " << seed << " interval " << i;
        // All but the guaranteed first interval stay inside the region.
        for (std::size_t i = 1; i < s.size(); ++i)
            EXPECT_LE(s[i] + spec.intervalUops, 22000u);
        for (const std::uint64_t start : s)
            EXPECT_GE(start, spec.detailUops);
    }
}

TEST(Sampling, MeanCi95MatchesHandComputation)
{
    const MeanCi ci = meanCi95({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(ci.mean, 2.0);
    EXPECT_DOUBLE_EQ(ci.stddev, 1.0);
    // t(df=2, 97.5%) = 4.303; half-width = 4.303 / sqrt(3).
    EXPECT_NEAR(ci.ci95, 4.303 / std::sqrt(3.0), 1e-9);

    EXPECT_DOUBLE_EQ(meanCi95({}).mean, 0.0);
    const MeanCi one = meanCi95({1.5});
    EXPECT_DOUBLE_EQ(one.mean, 1.5);
    EXPECT_DOUBLE_EQ(one.ci95, 0.0);
}

// ========================= Sampled sweeps ================================

TEST(Sampling, JobCountAndCacheDoNotChangeTheArtifactBytes)
{
    const ExperimentPlan plan = sampledTinyPlan();
    SampleSpec spec;
    spec.intervals = 5;
    spec.intervalUops = 2000;
    spec.detailUops = 1000;

    SweepOptions serial;
    serial.jobs = 1;
    SweepOptions wide;
    wide.jobs = 8;
    SweepOptions live;
    live.useTraceCache = false;

    const std::string a =
        jsonArtifactString(runSampledPlan(plan, spec, serial));
    const std::string b =
        jsonArtifactString(runSampledPlan(plan, spec, wide));
    const std::string c =
        jsonArtifactString(runSampledPlan(plan, spec, live));
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
    EXPECT_NE(a.find("\"sample\": {\"intervals\": 5"), std::string::npos);
}

TEST(Sampling, ArtifactRoundTripsSampleFields)
{
    const ExperimentPlan plan = sampledTinyPlan();
    SampleSpec spec;
    spec.intervals = 3;
    spec.intervalUops = 1500;
    spec.detailUops = 700;
    const PlanResult res = runSampledPlan(plan, spec);

    std::stringstream json;
    writeJsonArtifact(json, res);
    const PlanResult back = readJsonArtifact(json);
    EXPECT_EQ(back.sample.intervals, spec.intervals);
    EXPECT_EQ(back.sample.intervalUops, spec.intervalUops);
    EXPECT_EQ(back.sample.detailUops, spec.detailUops);
    EXPECT_EQ(jsonArtifactString(back), jsonArtifactString(res));

    ASSERT_FALSE(res.cells.empty());
    for (const RunResult &cell : res.cells) {
        EXPECT_GT(cell.stats.get("ipc"), 0.0);
        EXPECT_TRUE(cell.stats.has("ipc_ci95"));
        EXPECT_EQ(cell.stats.get("sample_interval_uops"),
                  double(spec.intervalUops));
        EXPECT_EQ(cell.stats.get("sample_detail_uops"),
                  double(spec.detailUops));
        EXPECT_GT(cell.stats.get("sample_intervals"), 0.0);
    }
}

TEST(Sampling, SampleSpecParsesAndRejects)
{
    const SampleSpec s = parseSampleSpec("20:10000:5000");
    EXPECT_EQ(s.intervals, 20u);
    EXPECT_EQ(s.intervalUops, 10000u);
    EXPECT_EQ(s.detailUops, 5000u);
    EXPECT_EQ(s.warmBound, 0u);  // default: full-prefix warming
    EXPECT_EQ(sampleSpecString(s), "20:10000:5000:0");

    const SampleSpec d = parseSampleSpec("8:6000");
    EXPECT_EQ(d.detailUops, 3000u);  // D defaults to W/2

    const SampleSpec b = parseSampleSpec("8:6000:3000:0");
    EXPECT_EQ(b.warmBound, 0u);  // explicit 0 = unbounded warming
    const SampleSpec b2 = parseSampleSpec("8:6000:3000:75000");
    EXPECT_EQ(b2.warmBound, 75000u);

    EXPECT_DEATH((void)parseSampleSpec("oops"), "sample spec");
    EXPECT_DEATH((void)parseSampleSpec("8"), "sample spec");
    EXPECT_DEATH((void)parseSampleSpec("0:100:10"), "positive");
    EXPECT_DEATH((void)parseSampleSpec("8:100:10:9:4"), "sample spec");
    // strtoull would wrap negatives to ~2^64; they must be rejected.
    EXPECT_DEATH((void)parseSampleSpec("4:-100:50"), "sample spec");
    EXPECT_DEATH((void)parseSampleSpec("-4:100"), "sample spec");
    EXPECT_DEATH((void)parseSampleSpec("4:100:+10"), "sample spec");
}

TEST(Sampling, WarmOnceRestoreMatchesContinuousRewarmExactly)
{
    // The warm-once differential: a v2 restore-based sampled run must
    // measure EXACTLY what the legacy B=0 per-interval continuous
    // re-warming run measures (same warmed state ⇒ same
    // measurements), across 2 configs x 2 torture workloads. Only the
    // cost accounting (sample_warm_uops, sample_restored_intervals)
    // may differ — the restore path warms each cell's prefix once.
    ExperimentPlan plan;
    plan.name = "warm_once_diff";
    plan.configs = {configs::baselineVp(6, 64), configs::eole(4, 64)};
    plan.workloads = {"torture:3101:600", "torture:3102:600"};
    plan.warmup = 1000;
    plan.measure = 12000;

    SampleSpec spec;
    spec.intervals = 4;
    spec.intervalUops = 800;
    spec.detailUops = 400;

    SweepOptions restore_opt;
    SweepOptions rewarm_opt;
    rewarm_opt.sampleRewarm = true;

    const PlanResult a = runSampledPlan(plan, spec, restore_opt);
    const PlanResult b = runSampledPlan(plan, spec, rewarm_opt);
    ASSERT_EQ(a.cells.size(), 4u);
    ASSERT_EQ(b.cells.size(), a.cells.size());

    std::size_t measured = 0;
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        const RunResult &ra = a.cells[i];
        const RunResult &rb = b.cells[i];
        ASSERT_EQ(ra.config, rb.config);
        ASSERT_EQ(ra.workload, rb.workload);
        for (const char *stat :
             {"ipc", "ipc_ci95", "ipc_stddev", "cycles",
              "committed_uops", "sample_intervals"}) {
            EXPECT_EQ(ra.stats.get(stat), rb.stats.get(stat))
                << ra.config << "/" << ra.workload << " " << stat;
        }
        // The restore path really ran on checkpoints; the re-warm
        // path never does.
        EXPECT_GT(ra.stats.get("sample_restored_intervals"), 0.0)
            << ra.config << "/" << ra.workload;
        EXPECT_EQ(rb.stats.get("sample_restored_intervals"), 0.0);
        // And it warmed strictly less (once per cell, not per
        // interval) while measuring the same µ-ops.
        EXPECT_LT(ra.stats.get("sample_warm_uops"),
                  rb.stats.get("sample_warm_uops"))
            << ra.config << "/" << ra.workload;
        if (ra.stats.get("committed_uops") > 0.0)
            ++measured;
    }
    EXPECT_GT(measured, 0u);

    // The restore path keeps the engine's determinism contract:
    // byte-identical artifacts across --jobs.
    SweepOptions wide = restore_opt;
    wide.jobs = 8;
    EXPECT_EQ(jsonArtifactString(runSampledPlan(plan, spec, wide)),
              jsonArtifactString(a));
}

TEST(Sampling, SampledIpcFallsWithinItsCiOfTheFullRun)
{
    // The validation suite of the acceptance criteria: for 4 workloads
    // x 2 configurations (VP baseline and EOLE), the sampled mean IPC
    // must land within its own reported 95% CI of the full-run IPC.
    // Deterministic: fixed seeds, fixed lengths — once green, always
    // green.
    ExperimentPlan plan;
    plan.name = "sample_validation";
    plan.configs = {configs::baselineVp(6, 64), configs::eole(6, 64)};
    plan.workloads = {"164.gzip", "186.crafty", "458.sjeng",
                      "444.namd"};
    plan.warmup = 10000;
    plan.measure = 120000;

    SampleSpec spec;
    spec.intervals = 12;
    spec.intervalUops = 3000;
    spec.detailUops = 2000;

    const PlanResult full = runPlan(plan);
    const PlanResult sampled = runSampledPlan(plan, spec);

    for (const RunResult &cell : sampled.cells) {
        const RunResult *ref = full.find(cell.config, cell.workload);
        ASSERT_NE(ref, nullptr);
        const double full_ipc = ref->ipc();
        const double mean = cell.stats.get("ipc");
        const double ci = cell.stats.get("ipc_ci95");
        EXPECT_GT(ci, 0.0) << cell.config << "/" << cell.workload;
        EXPECT_LE(std::fabs(mean - full_ipc), ci)
            << cell.config << "/" << cell.workload << ": sampled "
            << mean << " +/- " << ci << " vs full " << full_ipc;
    }
}
