/**
 * @file
 * Config-driven assembly of the stage pipeline.
 *
 * The Core conductor owns a StagePipeline: the stage objects in tick
 * order (back of the pipe first, so a µ-op spends at least one cycle
 * in every structure) plus the squash unwind order (rename's output
 * buffer restores its map entries before the ROB walk; the IQ prune
 * runs after the ROB walk marked dead entries).
 *
 * buildDefaultPipeline() instantiates stages from the SimConfig: the
 * LE/VT pre-commit stage exists only when value prediction or Late
 * Execution is configured. Benches and experiments can swap in custom
 * Stage implementations with replace() to instrument or vary a single
 * stage without touching the rest of the pipeline.
 */

#ifndef EOLE_PIPELINE_STAGES_PIPELINE_BUILDER_HH
#define EOLE_PIPELINE_STAGES_PIPELINE_BUILDER_HH

#include <memory>
#include <string>
#include <vector>

#include "pipeline/stages/stage.hh"
#include "sim/config.hh"

namespace eole {

struct StagePipeline
{
    /** Stages in tick order (commit side first, fetch last). */
    std::vector<std::unique_ptr<Stage>> stages;

    /** Squash/redirect unwind order (subset of stages, non-owning). */
    std::vector<Stage *> squashOrder;

    /** Find a stage by its name() ("fetch", "rename", ...); nullptr
     *  when absent (e.g. "levt" on a VP-less pipeline). */
    Stage *byName(const std::string &stage_name) const;

    /**
     * Replace the stage called @p stage_name with @p replacement
     * (which must report the same name()), rewiring the squash order
     * and the commit->LE/VT link. Fatal if no such stage exists.
     */
    void replace(const std::string &stage_name,
                 std::unique_ptr<Stage> replacement);

    /** Re-establish cross-stage links (commit -> LE/VT). */
    void wire();
};

/** Build the standard seven-stage EOLE pipeline for @p cfg. */
StagePipeline buildDefaultPipeline(const SimConfig &cfg);

} // namespace eole

#endif // EOLE_PIPELINE_STAGES_PIPELINE_BUILDER_HH
