file(REMOVE_RECURSE
  "CMakeFiles/test_torture.dir/tests/test_torture.cc.o"
  "CMakeFiles/test_torture.dir/tests/test_torture.cc.o.d"
  "test_torture"
  "test_torture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_torture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
