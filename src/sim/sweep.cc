#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "common/env.hh"
#include "common/logging.hh"
#include "pipeline/core.hh"
#include "sim/params.hh"
#include "sim/store.hh"
#include "sim/telemetry.hh"
#include "sim/trace_cache.hh"
#include "workloads/workload.hh"

namespace eole {

const RunResult *
PlanResult::find(const std::string &config, const std::string &workload) const
{
    for (const RunResult &c : cells) {
        if (c.config == config && c.workload == workload)
            return &c;
    }
    return nullptr;
}

void
validatePlanConfigs(const ExperimentPlan &plan)
{
    for (std::size_t i = 0; i < plan.configs.size(); ++i) {
        for (std::size_t j = i + 1; j < plan.configs.size(); ++j) {
            fatal_if(plan.configs[i].name == plan.configs[j].name,
                     "plan %s: duplicate config name %s", plan.name.c_str(),
                     plan.configs[i].name.c_str());
        }
    }
}

void
runOnWorkerPool(std::size_t num_jobs, int jobs_option,
                const std::function<void(std::size_t job, int worker)> &body)
{
    std::atomic<std::size_t> next{0};
    auto worker = [&](int me) {
        for (;;) {
            const std::size_t j = next.fetch_add(1);
            if (j >= num_jobs)
                return;
            body(j, me);
        }
    };
    const std::size_t nthreads = std::min<std::size_t>(
        jobs_option > 0 ? jobs_option : runnerThreads(), num_jobs);
    if (nthreads <= 1) {
        worker(0);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t)
        pool.emplace_back(worker, static_cast<int>(t));
    for (auto &t : pool)
        t.join();
}

void
runOnWorkerPool(std::size_t num_jobs, int jobs_option,
                const std::function<void(std::size_t)> &body)
{
    runOnWorkerPool(num_jobs, jobs_option,
                    [&](std::size_t j, int) { body(j); });
}

PlanResult
runPlan(const ExperimentPlan &plan, const SweepOptions &options)
{
    validatePlanConfigs(plan);

    PlanResult out;
    out.plan = plan.name;
    out.seed = plan.seed;
    // Precedence documented in common/env.hh: option > plan > env >
    // default.
    out.warmup = resolveRunLength(options.warmup, plan.warmup,
                                  "EOLE_WARMUP", defaultWarmupUops);
    out.measure = resolveRunLength(options.measure, plan.measure,
                                   "EOLE_INSTS", defaultMeasureUops);
    out.filter = options.filter;

    // Expand matched cells. Result slots are config-major (the artifact
    // order); jobs run workload-major so configurations sharing one
    // workload's frozen trace cluster together and the trace can be
    // dropped once its last job completes.
    struct Job
    {
        std::size_t cfg;
        std::size_t wl;
        std::size_t slot;
    };
    std::vector<Job> jobs;
    std::vector<std::size_t> jobsPerWorkload(plan.workloads.size(), 0);
    // A shard slice behaves exactly like a filter: unowned cells never
    // expand into jobs, slots or artifact cells (sim/shard.hh carries
    // the global slot numbering partial artifacts merge by).
    const auto matched = [&](std::size_t c, std::size_t w) {
        return cellMatches(options.filter, plan.configs[c].name,
                           plan.workloads[w])
            && options.shard.owns(plan.seed, plan.configs[c].seed,
                                  plan.configs[c].name,
                                  plan.workloads[w]);
    };
    for (std::size_t w = 0; w < plan.workloads.size(); ++w) {
        for (std::size_t c = 0; c < plan.configs.size(); ++c) {
            if (matched(c, w)) {
                jobs.push_back(Job{c, w, 0});
                ++jobsPerWorkload[w];
            }
        }
    }
    // Assign config-major output slots.
    out.cells.resize(jobs.size());
    {
        std::vector<Job *> byCell;
        byCell.reserve(jobs.size());
        for (Job &j : jobs)
            byCell.push_back(&j);
        std::size_t slot = 0;
        for (std::size_t c = 0; c < plan.configs.size(); ++c) {
            for (Job *j : byCell) {
                if (j->cfg == c)
                    j->slot = slot++;
            }
        }
    }
    for (const Job &j : jobs) {
        RunResult &cell = out.cells[j.slot];
        cell.config = plan.configs[j.cfg].name;
        cell.workload = plan.workloads[j.wl];
        cell.seed = jobSeed(plan.seed, plan.configs[j.cfg].seed,
                            cell.config, cell.workload);
        // The canonical config map of the cell as declared by the plan
        // (the per-job seed the cell actually ran with is the "seed"
        // field above; the map records the config's own seed knob).
        cell.params = configKeyValues(plan.configs[j.cfg]);
    }
    if (options.telemetry) {
        for (const RunResult &cell : out.cells)
            options.telemetry->cellQueued(cell.config, cell.workload);
    }

    // Content-addressed store, serial pre-pass: a cell whose key (the
    // complete canonical inputs — config map, workload, seed, resolved
    // lengths; sim/store.hh) already resolves loads its stats and
    // sheds its job. The payload round-trips %.17g-exactly, so hit
    // cells and computed cells serialize byte-identically.
    std::vector<std::string> cellKey(out.cells.size());
    std::vector<char> cellCached(out.cells.size(), 0);
    if (options.store) {
        for (std::size_t i = 0; i < out.cells.size(); ++i) {
            RunResult &cell = out.cells[i];
            StoreKey key;
            key.kind = "cell";
            key.config = cell.config;
            key.params = cell.params;
            key.workload = cell.workload;
            key.seed = cell.seed;
            key.warmup = out.warmup;
            key.measure =
                resolveMeasureFor(options.measure, plan, cell.config);
            cellKey[i] = storeKeyHash(key);
            std::string payload;
            if (!options.store->get(cellKey[i], &payload))
                continue;
            std::string err;
            fatal_if(!tryParseCellPayload(payload, &cell.stats, &err),
                     "store %s: object %s: %s (delete the store "
                     "directory to rebuild it)",
                     options.store->directory().c_str(),
                     cellKey[i].c_str(), err.c_str());
            cellCached[i] = 1;
            ++out.storeHits;
        }
        std::erase_if(jobs, [&](const Job &j) {
            if (!cellCached[j.slot])
                return false;
            --jobsPerWorkload[j.wl];
            return true;
        });
    }
    // Serial post-pass, shared by both exits below: freshly computed
    // cells enter the store under the keys derived above.
    const auto storeFinish = [&] {
        if (!options.store)
            return;
        for (std::size_t i = 0; i < out.cells.size(); ++i) {
            if (cellCached[i])
                continue;
            StoreKey key;
            key.kind = "cell";
            key.config = out.cells[i].config;
            key.params = out.cells[i].params;
            key.workload = out.cells[i].workload;
            key.seed = out.cells[i].seed;
            key.warmup = out.warmup;
            key.measure = resolveMeasureFor(options.measure, plan,
                                            out.cells[i].config);
            options.store->put(key,
                               cellPayloadText(out.cells[i].stats));
            ++out.storeComputed;
        }
        options.store->flush();
        if (options.telemetry)
            options.telemetry->storeCounts(out.storeHits, out.storeComputed);
    };

    if (jobs.empty()) {
        storeFinish();
        return out;
    }

    // Trace-cache sizing: the stream a job consumes is bounded by the
    // committed target of both run() calls plus the in-flight window.
    // Per-config `runlen` overrides can lengthen individual jobs, so
    // recordings are sized for the longest config in the plan.
    std::uint64_t longestMeasure = out.measure;
    for (const SimConfig &c : plan.configs) {
        longestMeasure = std::max(
            longestMeasure, resolveMeasureFor(options.measure, plan, c.name));
    }
    const std::uint64_t traceUopsNeeded =
        out.warmup + longestMeasure + maxInflightUops(plan);

    TraceCache cache;
    std::vector<std::atomic<std::size_t>> remaining(plan.workloads.size());
    for (std::size_t w = 0; w < plan.workloads.size(); ++w)
        remaining[w].store(jobsPerWorkload[w], std::memory_order_relaxed);

    std::atomic<std::size_t> done{0};
    std::mutex progressMu;

    runOnWorkerPool(jobs.size(), options.jobs, [&](std::size_t j,
                                                   int worker) {
        const Job &job = jobs[j];
        SimConfig cfg = plan.configs[job.cfg];
        RunResult &cell = out.cells[job.slot];
        cfg.seed = cell.seed;

        if (options.telemetry)
            options.telemetry->jobStart("cell", cell.config, cell.workload,
                                        worker);
        const auto t0 = std::chrono::steady_clock::now();

        Workload w = workloads::build(cell.workload);
        if (options.useTraceCache)
            w.frozen = cache.get(w, traceUopsNeeded);

        {
            const std::uint64_t measure =
                resolveMeasureFor(options.measure, plan, cfg.name);
            const std::uint64_t maxCycles =
                (out.warmup + measure) * 60 + 1000000;
            Core core(cfg, w);
            if (options.tracer)
                core.setPipeTracer(options.tracer);
            core.run(out.warmup, maxCycles);
            core.resetStats();
            core.run(measure, maxCycles);
            cell.stats = core.record();
        }
        w.frozen.reset();
        if (remaining[job.wl].fetch_sub(1) == 1)
            cache.drop(cell.workload);

        if (options.telemetry) {
            const double wall_ms = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0).count();
            options.telemetry->jobFinish("cell", cell.config, cell.workload,
                                         worker, wall_ms, true);
        }
        const std::size_t finished = done.fetch_add(1) + 1;
        if (options.progress) {
            std::lock_guard<std::mutex> lock(progressMu);
            options.progress(finished, jobs.size(), cell);
        }
    });
    if (options.telemetry && options.useTraceCache)
        options.telemetry->traceCacheCounts(cache.hitCount(),
                                            cache.missCount(),
                                            cache.fileHitCount(),
                                            cache.fileMissCount(),
                                            cache.evictCount());
    storeFinish();
    return out;
}

void
printPlanTables(const ExperimentPlan &plan, const PlanResult &result)
{
    for (const TableSpec &table : plan.tables) {
        // A row is printable when every column cell (and the normalizer
        // cell) survived the filter.
        std::vector<const std::string *> rows;
        for (const std::string &w : plan.workloads) {
            bool whole = true;
            for (const std::string &c : table.columns)
                whole = whole && result.find(c, w) != nullptr;
            if (!table.normalizeTo.empty())
                whole = whole && result.find(table.normalizeTo, w) != nullptr;
            if (whole)
                rows.push_back(&w);
        }
        if (rows.empty()) {
            std::printf("\n== %s == (no cells matched filter \"%s\")\n",
                        table.title.c_str(), result.filter.c_str());
            continue;
        }

        std::printf("\n== %s ==\n", table.title.c_str());
        std::printf("%-14s", "benchmark");
        for (const auto &c : table.columns)
            std::printf(" %22s", c.c_str());
        std::printf("\n");

        std::vector<std::vector<double>> columns(table.columns.size());
        for (const std::string *w : rows) {
            std::printf("%-14s", w->c_str());
            double base = 1.0;
            if (!table.normalizeTo.empty())
                base = result.find(table.normalizeTo, *w)
                           ->stats.get(table.stat);
            for (std::size_t c = 0; c < table.columns.size(); ++c) {
                const double v =
                    result.find(table.columns[c], *w)->stats.get(table.stat);
                const double shown =
                    table.normalizeTo.empty() ? v : v / base;
                columns[c].push_back(shown);
                std::printf(" %22.3f", shown);
            }
            std::printf("\n");
        }
        std::printf("%-14s", table.normalizeTo.empty() ? "mean" : "geomean");
        for (std::size_t c = 0; c < table.columns.size(); ++c) {
            double m;
            if (table.normalizeTo.empty()) {
                double sum = 0.0;
                for (double v : columns[c])
                    sum += v;
                m = columns[c].empty() ? 0.0 : sum / columns[c].size();
            } else {
                m = geomean(columns[c]);
            }
            std::printf(" %22.3f", m);
        }
        std::printf("\n");
    }
    std::fflush(stdout);
}

} // namespace eole
