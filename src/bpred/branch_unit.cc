#include "bpred/branch_unit.hh"

#include "isa/snapshot.hh"

namespace eole {

namespace {

std::vector<std::pair<int, int>>
combinedSpecs(const Tage &tage,
              const std::vector<std::pair<int, int>> &extra,
              std::size_t &extra_base_out)
{
    auto specs = tage.foldSpecs();
    extra_base_out = specs.size();
    specs.insert(specs.end(), extra.begin(), extra.end());
    return specs;
}

} // namespace

BranchUnit::BranchUnit(const BpConfig &config,
                       const std::vector<std::pair<int, int>> &extra_folds,
                       std::uint64_t seed)
    : cfg(config), tage(config.tage, seed),
      hist(combinedSpecs(tage, extra_folds, extraBase)),
      btb(config.btbLog2Entries, config.btbWays), ras(config.rasEntries),
      confTable(config.confLog2Entries > 0
                    ? (1u << config.confLog2Entries) : 0, 0)
{
}

std::uint8_t &
BranchUnit::confSlot(Addr pc)
{
    return confTable[(pc >> 2) & (confTable.size() - 1)];
}

BranchUnit::SnapshotPtr
BranchUnit::currentSnapshot()
{
    if (!cached) {
        SnapshotPtr s = snapPool.allocate();
        hist.snapshotInto(s->hist);
        ras.snapshotInto(s->ras);
        cached = std::move(s);
    }
    return cached;
}

void
BranchUnit::speculativeApply(const TraceUop &uop, bool taken, Addr target)
{
    if (uop.isCondBr())
        hist.push(taken);
    if (uop.isCall())
        ras.push(uop.pc + uopBytes);
    else if (uop.isRet())
        (void)ras.pop();
    (void)target;
    cached.reset();
}

BranchPrediction
BranchUnit::predictBranch(const TraceUop &uop, SnapshotPtr &pre_out)
{
    pre_out = currentSnapshot();

    BranchPrediction bp;
    if (uop.isCondBr()) {
        bp.predTaken = tage.predict(uop.pc, hist, 0, bp.tage);
        bp.highConf = bp.tage.highConf;
        if (!confTable.empty() && bp.highConf) {
            const std::uint8_t full = (1u << cfg.confBits) - 1;
            bp.highConf = confSlot(uop.pc) == full;
        }
        if (bp.predTaken) {
            bp.predTarget = btb.lookup(uop.pc);
            bp.btbMiss = bp.predTarget == 0;
        } else {
            bp.predTarget = uop.pc + uopBytes;
        }
    } else if (uop.isRet()) {
        bp.predTaken = true;
        // Peek then re-push so speculativeApply sees a consistent stack.
        bp.predTarget = ras.pop();
        ras.push(bp.predTarget);
    } else if (uop.opc == Opcode::Jr) {
        bp.predTaken = true;
        bp.predTarget = btb.lookup(uop.pc);
    } else {
        // Direct jmp/call: target known at decode.
        bp.predTaken = true;
        bp.predTarget = btb.lookup(uop.pc);
        bp.btbMiss = bp.predTarget == 0;
        if (bp.btbMiss)
            bp.predTarget = uop.nextPc;  // decode supplies it (bubble)
    }

    // Oracle comparison (the penalty is applied at resolution time).
    const bool dir_wrong = bp.predTaken != uop.taken;
    const bool tgt_wrong = bp.predTaken && uop.taken && !bp.btbMiss
        && bp.predTarget != uop.nextPc;
    bp.mispredict = dir_wrong || tgt_wrong;

    // Speculative state advances with the *predicted* direction.
    speculativeApply(uop, bp.predTaken, bp.predTarget);
    return bp;
}

void
BranchUnit::repairAfterBranch(const TraceUop &uop, const SnapshotPtr &pre)
{
    hist.restore(pre->hist);
    ras.restore(pre->ras);
    cached.reset();
    speculativeApply(uop, uop.taken, uop.nextPc);
}

void
BranchUnit::restoreTo(const SnapshotPtr &snap)
{
    hist.restore(snap->hist);
    ras.restore(snap->ras);
    cached.reset();
}

void
BranchUnit::warmUpdate(const TraceUop &uop)
{
    if (!uop.isBranch())
        return;
    // State-equivalent to predictBranch + repair-on-mispredict +
    // commitBranch (pinned by tests/test_sample.cc) without the
    // snapshot machinery: in this trace-driven front end, fetch never
    // advances past an unrepaired mispredict, so the net speculative
    // effect of predict-then-repair is always "apply the actual
    // outcome".
    BranchPrediction bp;
    if (uop.isCondBr()) {
        bp.predTaken = tage.predict(uop.pc, hist, 0, bp.tage);
        hist.push(uop.taken);
    }
    commitBranch(uop, bp);  // TAGE + JRS confidence + BTB training
    if (uop.isCall())
        ras.push(uop.pc + uopBytes);
    else if (uop.isRet())
        (void)ras.pop();
    cached.reset();
}

void
BranchUnit::snapshotState(std::ostream &os) const
{
    SnapshotWriter w(os);
    w.tag("branch-unit").u64(1);
    w.end();
    tage.snapshotState(os);
    hist.snapshotState(os);
    btb.snapshotState(os);
    ras.snapshotState(os);
    w.tag("conf").u64(confTable.size());
    w.end();
    w.tag("conf.t");
    for (const std::uint8_t c : confTable)
        w.u64(c);
    w.end();
}

void
BranchUnit::restoreState(std::istream &is)
{
    SnapshotReader r(is, "branch-unit");
    r.line("branch-unit");
    r.fatalIf(r.u64("version") != 1, "unsupported version");
    r.endLine();
    tage.restoreState(r);
    hist.restoreState(r);
    btb.restoreState(r);
    ras.restoreState(r);
    r.line("conf");
    r.fatalIf(r.u64("entries") != confTable.size(),
              "confidence-table size mismatch");
    r.endLine();
    r.line("conf.t");
    const std::uint64_t full = (1u << cfg.confBits) - 1;
    for (std::uint8_t &c : confTable)
        c = static_cast<std::uint8_t>(r.u64Max("ctr", full));
    r.endLine();
    cached.reset();
}

void
BranchUnit::commitBranch(const TraceUop &uop, const BranchPrediction &bp)
{
    if (uop.isCondBr()) {
        tage.update(uop.pc, uop.taken, bp.tage);
        if (!confTable.empty()) {
            std::uint8_t &c = confSlot(uop.pc);
            const std::uint8_t full = (1u << cfg.confBits) - 1;
            if (bp.predTaken == uop.taken) {
                if (c < full)
                    ++c;
            } else {
                c = 0;
            }
        }
    }
    // Keep targets of taken control transfers in the BTB (returns are
    // served by the RAS).
    if (uop.taken && !uop.isRet())
        btb.update(uop.pc, uop.nextPc);
}

} // namespace eole
