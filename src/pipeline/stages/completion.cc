#include "pipeline/stages/completion.hh"

#include "pipeline/pipeline_state.hh"

namespace eole {

void
CompletionStage::tick(PipelineState &st)
{
    while (!st.completions.empty() && st.completions.begin()->first <= st.now) {
        auto node = st.completions.extract(st.completions.begin());
        for (const DynInstPtr &di : node.mapped()) {
            if (di->squashed)
                continue;
            di->completed = true;
            di->completeCycle = st.now;
            if (di->isBranch() && di->bp.mispredict && !di->lateExecBranch)
                st.resolveMispredictedBranch(di);
        }
    }
}

} // namespace eole
