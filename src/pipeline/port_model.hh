/**
 * @file
 * PRF bank write/read port accounting for EOLE (§6.3 of the paper).
 *
 * Two port classes are constrained (a value of 0 means unconstrained):
 *  - EE/prediction write ports per bank, consumed at Dispatch when
 *    Early-Execution results and used predictions are written;
 *  - LE/VT read ports per bank, consumed in the pre-commit stage by
 *    Late Execution operand reads, validation reads of predicted
 *    results, and predictor-training reads of VP-eligible results
 *    (Fig 11 sweeps 2/3/4 ports per bank).
 *
 * The OoO engine's own ports are not constrained: the paper sizes them
 * by issue width, which the configurations vary directly.
 */

#ifndef EOLE_PIPELINE_PORT_MODEL_HH
#define EOLE_PIPELINE_PORT_MODEL_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace eole {

class PrfPortModel
{
  public:
    /**
     * @param num_banks PRF banks (per register class; banks are
     *        mirrored across INT/FP files as in the paper's layout)
     * @param ee_writes_per_bank 0 = unconstrained
     * @param levt_reads_per_bank 0 = unconstrained
     */
    PrfPortModel(int num_banks, int ee_writes_per_bank,
                 int levt_reads_per_bank)
        : banks(num_banks), eeWriteLimit(ee_writes_per_bank),
          levtReadLimit(levt_reads_per_bank), eeWrites(num_banks, 0),
          levtReads(num_banks, 0)
    {
    }

    void
    newCycle()
    {
        std::fill(eeWrites.begin(), eeWrites.end(), 0);
        std::fill(levtReads.begin(), levtReads.end(), 0);
    }

    /** Try to consume one EE/prediction write port on @p bank. */
    bool
    tryEeWrite(int bank)
    {
        panic_if(bank < 0 || bank >= banks, "bad bank %d", bank);
        if (eeWriteLimit != 0 && eeWrites[bank] >= eeWriteLimit)
            return false;
        ++eeWrites[bank];
        return true;
    }

    /**
     * Try to consume LE/VT read ports for a set of bank demands
     * atomically (all or nothing).
     *
     * @param bank_needs one entry per required read (bank index)
     * @param count number of valid entries
     */
    bool
    tryLevtReads(const int *bank_needs, int count)
    {
        if (levtReadLimit == 0)
            return true;
        // Two-phase: check then consume.
        for (int b = 0; b < banks; ++b)
            scratch_needs(b) = 0;
        for (int i = 0; i < count; ++i)
            ++scratch_needs(bank_needs[i]);
        for (int b = 0; b < banks; ++b) {
            if (levtReads[b] + scratch_needs(b) > levtReadLimit)
                return false;
        }
        for (int b = 0; b < banks; ++b)
            levtReads[b] += scratch_needs(b);
        return true;
    }

    int numBanks() const { return banks; }

  private:
    int &scratch_needs(int b) { return scratch[static_cast<size_t>(b)]; }

    int banks;
    int eeWriteLimit;
    int levtReadLimit;
    std::vector<int> eeWrites;
    std::vector<int> levtReads;
    std::vector<int> scratch = std::vector<int>(64, 0);
};

} // namespace eole

#endif // EOLE_PIPELINE_PORT_MODEL_HH
