/**
 * @file
 * Aggregate per-run core statistics.
 *
 * Counters are owned by the individual pipeline stages (and by the
 * shared PipelineState for cross-stage events); Core::stats() folds
 * them into this flat struct so experiment code, benches and tests see
 * one record with unchanged field and stat names.
 */

#ifndef EOLE_PIPELINE_CORE_STATS_HH
#define EOLE_PIPELINE_CORE_STATS_HH

#include <cstdint>

#include "common/stats.hh"

namespace eole {

/** Aggregate per-run statistics. */
struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t committedUops = 0;

    // Branches.
    std::uint64_t condBranches = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t highConfBranches = 0;
    std::uint64_t highConfMispredicts = 0;
    std::uint64_t btbMissBubbles = 0;

    // Value prediction.
    std::uint64_t vpEligible = 0;
    std::uint64_t vpPredictionsUsed = 0;
    std::uint64_t vpCorrectUsed = 0;
    std::uint64_t vpMispredictSquashes = 0;

    // EOLE.
    std::uint64_t earlyExecuted = 0;
    std::uint64_t lateExecutedAlu = 0;
    std::uint64_t lateExecutedBranches = 0;

    // Memory.
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t storeToLoadForwards = 0;
    std::uint64_t memOrderViolations = 0;

    // Stalls.
    std::uint64_t renameBankStalls = 0;
    std::uint64_t dispatchPortStalls = 0;
    std::uint64_t commitPortStalls = 0;
    std::uint64_t robFullStalls = 0;
    std::uint64_t iqFullStalls = 0;

    // Occupancy.
    std::uint64_t iqOccupancySum = 0;
    std::uint64_t dispatchedToIQ = 0;

    double ipc() const { return ratio(double(committedUops), double(cycles)); }

    StatRecord record() const;
};

} // namespace eole

#endif // EOLE_PIPELINE_CORE_STATS_HH
