# Empty compiler generated dependencies file for abl_fpc.
# This may be replaced when dependencies are built.
