/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses.
 *
 * Since the sweep engine, each figure is a named ExperimentPlan
 * (sim/plans.hh) and the per-figure binaries are thin wrappers around
 * runFigure(). The `eole` CLI drives the same plans with more control
 * (--jobs, --filter, --out, diff); these binaries remain for
 * one-command reproduction of a figure.
 */

#ifndef EOLE_BENCH_BENCH_COMMON_HH
#define EOLE_BENCH_BENCH_COMMON_HH

#include <cstdio>

#include "sim/configs.hh"
#include "sim/experiment.hh"
#include "sim/plans.hh"
#include "sim/sweep.hh"
#include "workloads/workload.hh"

namespace eole {

inline void
announce(const char *fig, const char *what)
{
    std::printf("%s: %s\n", fig, what);
    std::printf("warmup=%llu uops, measure=%llu uops, threads=%d "
                "(override: EOLE_WARMUP / EOLE_INSTS / EOLE_THREADS)\n",
                (unsigned long long)warmupUops(),
                (unsigned long long)measureUops(), runnerThreads());
}

/** Run a named plan with env-default settings and print its tables. */
inline int
runFigure(const char *plan_name)
{
    const ExperimentPlan plan = plans::get(plan_name);
    announce(plan.name.c_str(), plan.description.c_str());
    const PlanResult result = runPlan(plan);
    printPlanTables(plan, result);
    return 0;
}

} // namespace eole

#endif // EOLE_BENCH_BENCH_COMMON_HH
