# Empty compiler generated dependencies file for fig04_late_exec.
# This may be replaced when dependencies are built.
