/**
 * @file
 * Saturating counter templates used throughout the predictors.
 */

#ifndef EOLE_COMMON_SAT_COUNTER_HH
#define EOLE_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace eole {

/**
 * Unsigned saturating counter with a compile-time-free bit width.
 *
 * Used for branch/value confidence estimation. The counter saturates at
 * [0, maxVal] and never wraps.
 */
class SatCounter
{
  public:
    SatCounter() = default;

    /**
     * @param bits counter width in bits (1..31)
     * @param initial initial count
     */
    explicit SatCounter(unsigned bits, unsigned initial = 0)
        : maxVal((1u << bits) - 1), count(initial)
    {
        panic_if(bits == 0 || bits > 31, "bad counter width %u", bits);
        panic_if(initial > maxVal, "initial value %u exceeds max %u",
                 initial, maxVal);
    }

    /** Increment, saturating at the maximum. @return true if it moved. */
    bool
    increment()
    {
        if (count < maxVal) {
            ++count;
            return true;
        }
        return false;
    }

    /** Decrement, saturating at zero. @return true if it moved. */
    bool
    decrement()
    {
        if (count > 0) {
            --count;
            return true;
        }
        return false;
    }

    void reset(unsigned value = 0) { count = value > maxVal ? maxVal : value; }

    bool isSaturated() const { return count == maxVal; }
    bool isZero() const { return count == 0; }
    unsigned value() const { return count; }
    unsigned max() const { return maxVal; }

  private:
    unsigned maxVal = 1;
    unsigned count = 0;
};

/**
 * Signed saturating counter in [-2^(bits-1), 2^(bits-1)-1], as used by
 * TAGE prediction counters. "Taken" is predicted when the value is >= 0.
 */
class SignedSatCounter
{
  public:
    SignedSatCounter() = default;

    explicit SignedSatCounter(unsigned bits, int initial = 0)
        : minVal(-(1 << (bits - 1))), maxVal((1 << (bits - 1)) - 1),
          count(initial)
    {
        panic_if(bits < 1 || bits > 31, "bad counter width %u", bits);
        panic_if(initial < minVal || initial > maxVal,
                 "initial value %d out of range", initial);
    }

    /** Move the counter toward taken (true) or not-taken (false). */
    void
    update(bool taken)
    {
        if (taken) {
            if (count < maxVal)
                ++count;
        } else {
            if (count > minVal)
                --count;
        }
    }

    bool predictTaken() const { return count >= 0; }

    /**
     * Weak counter check: -1 or 0 (the two central states). Newly
     * allocated TAGE entries start weak.
     */
    bool isWeak() const { return count == 0 || count == -1; }

    /** Saturated in either direction: the highest-confidence states. */
    bool isSaturated() const { return count == minVal || count == maxVal; }

    void reset(int value) { count = value; }
    int value() const { return count; }
    int min() const { return minVal; }
    int max() const { return maxVal; }

  private:
    int minVal = -2;
    int maxVal = 1;
    int count = 0;
};

} // namespace eole

#endif // EOLE_COMMON_SAT_COUNTER_HH
