/**
 * @file
 * Tests for the on-disk trace subsystem (src/trace/): eole-trace-v1
 * write/load round-trips, clamped prefix views, the bound-registry
 * `file:` workload path and its byte-identical sweep artifacts, the
 * trace cache's budget-exempt file accounting, a seeded corruption
 * fuzzer over the loader, and the RV64I ingestion frontend's golden
 * µ-op stream.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.hh"
#include "sim/artifact.hh"
#include "sim/plans.hh"
#include "sim/store.hh"
#include "sim/sweep.hh"
#include "sim/trace_cache.hh"
#include "trace/rv64_ingest.hh"
#include "trace/trace_file.hh"
#include "workloads/workload.hh"

using namespace eole;

namespace {

namespace fs = std::filesystem;

/** A unique scratch directory, removed on scope exit. */
struct TempDir
{
    fs::path dir;

    explicit TempDir(const std::string &tag)
    {
        static int counter = 0;
        dir = fs::temp_directory_path()
            / ("eole_trace_test_" + tag + "_" + std::to_string(::getpid())
               + "_" + std::to_string(counter++));
        fs::create_directories(dir);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(dir, ec);
    }

    std::string path(const std::string &leaf) const
    {
        return (dir / leaf).string();
    }
};

/** Bound traces are process-global; undo them even if a test fails. */
struct BoundTraceGuard
{
    ~BoundTraceGuard() { workloads::clearBoundTraces(); }
};

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    EXPECT_TRUE(is.good() || is.eof()) << path;
    return os.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(os.good()) << path;
}

/** Record a torture workload and write it as a trace file. */
std::shared_ptr<const FrozenTrace>
writeTortureTrace(const std::string &wl, std::uint64_t max_uops,
                  const std::string &path)
{
    const Workload w = workloads::build(wl);
    const auto trace = w.freeze(max_uops);
    std::string err;
    EXPECT_TRUE(writeTraceFile(*trace, path, "generated", &err)) << err;
    return trace;
}

void
expectSameUop(const TraceUop &a, const TraceUop &b, std::size_t i)
{
    EXPECT_EQ(a.pc, b.pc) << "µ-op " << i;
    EXPECT_EQ(a.sidx, b.sidx) << "µ-op " << i;
    EXPECT_EQ(a.opc, b.opc) << "µ-op " << i;
    EXPECT_EQ(a.dst, b.dst) << "µ-op " << i;
    EXPECT_EQ(a.src1, b.src1) << "µ-op " << i;
    EXPECT_EQ(a.src2, b.src2) << "µ-op " << i;
    EXPECT_EQ(a.imm, b.imm) << "µ-op " << i;
    EXPECT_EQ(a.memSize, b.memSize) << "µ-op " << i;
    EXPECT_EQ(a.srcVals[0], b.srcVals[0]) << "µ-op " << i;
    EXPECT_EQ(a.srcVals[1], b.srcVals[1]) << "µ-op " << i;
    EXPECT_EQ(a.result, b.result) << "µ-op " << i;
    EXPECT_EQ(a.effAddr, b.effAddr) << "µ-op " << i;
    EXPECT_EQ(a.taken, b.taken) << "µ-op " << i;
    EXPECT_EQ(a.nextPc, b.nextPc) << "µ-op " << i;
    EXPECT_EQ(a.dstClass, b.dstClass) << "µ-op " << i;
    EXPECT_EQ(a.srcClass[0], b.srcClass[0]) << "µ-op " << i;
    EXPECT_EQ(a.srcClass[1], b.srcClass[1]) << "µ-op " << i;
}

} // namespace

// ------------------------- round trip ------------------------------------

TEST(TraceFile, RoundTripIsLossless)
{
    TempDir tmp("roundtrip");
    const std::string path = tmp.path("t7.trace");
    const auto orig = writeTortureTrace("torture:7", 50000, path);

    std::string err;
    const auto back = loadTraceFile(path, &err);
    ASSERT_NE(back, nullptr) << err;

    EXPECT_TRUE(back->mmapBacked);
    EXPECT_EQ(back->residentBytes(), 0u);
    EXPECT_EQ(back->bytes(), orig->bytes());
    EXPECT_EQ(back->name, "torture:7");
    EXPECT_EQ(back->complete, orig->complete);
    EXPECT_EQ(back->isFp, orig->isFp);
    for (int r = 0; r < numArchIntRegs; ++r)
        EXPECT_EQ(back->initIntRegs[r], orig->initIntRegs[r]) << r;
    for (int r = 0; r < numArchFpRegs; ++r)
        EXPECT_EQ(back->initFpRegs[r], orig->initFpRegs[r]) << r;

    ASSERT_EQ(back->uops.size(), orig->uops.size());
    for (std::size_t i = 0; i < orig->uops.size(); ++i)
        expectSameUop(orig->uops[i], back->uops[i], i);
}

TEST(TraceFile, WritesAreByteStable)
{
    // Two independent serializations of the same stream must be
    // cmp-equal — padding must never leak into the file.
    TempDir tmp("stable");
    writeTortureTrace("torture:9", 50000, tmp.path("a.trace"));
    writeTortureTrace("torture:9", 50000, tmp.path("b.trace"));
    EXPECT_EQ(slurp(tmp.path("a.trace")), slurp(tmp.path("b.trace")));
}

TEST(TraceFile, InfoMatchesTheHeader)
{
    TempDir tmp("info");
    const std::string path = tmp.path("t7.trace");
    const auto orig = writeTortureTrace("torture:7", 50000, path);

    TraceFileInfo info;
    std::string err;
    ASSERT_TRUE(readTraceFileInfo(path, &info, &err)) << err;
    EXPECT_EQ(info.name, "torture:7");
    EXPECT_EQ(info.source, "generated");
    EXPECT_EQ(info.uopCount, orig->uops.size());
    EXPECT_EQ(info.complete, orig->complete);
    EXPECT_FALSE(info.isFp);
    EXPECT_EQ(info.fileBytes, fs::file_size(path));
}

TEST(TraceFile, WriterRejectsAnOverlongName)
{
    TempDir tmp("longname");
    FrozenTrace t;
    t.name = std::string(traceFileNameBytes, 'x');
    t.seal();
    std::string err;
    EXPECT_FALSE(writeTraceFile(t, tmp.path("bad.trace"), "generated",
                                &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(fs::exists(tmp.path("bad.trace")));
}

// ------------------------- clamped views ---------------------------------

TEST(TraceFile, ClampReturnsSharedPrefixViews)
{
    const Workload w = workloads::build("torture:7");
    const auto full = w.freeze(50000);
    ASSERT_TRUE(full->complete);

    // Fits: same object, not a copy.
    EXPECT_EQ(clampTrace(full, full->uops.size()), full);
    EXPECT_EQ(clampTrace(full, 1u << 20), full);

    // Cut: a borrowed prefix marked incomplete.
    const auto cut = clampTrace(full, 100);
    ASSERT_NE(cut, nullptr);
    EXPECT_EQ(cut->uops.size(), 100u);
    EXPECT_FALSE(cut->complete);
    EXPECT_EQ(cut->uops.begin(), full->uops.begin());  // no copy
    EXPECT_EQ(cut->name, full->name);
    EXPECT_EQ(cut->initIntRegs[5], full->initIntRegs[5]);
}

TEST(TraceFile, FreezeDiesWhenAnIncompleteFileIsTooShort)
{
    TempDir tmp("short");
    BoundTraceGuard guard;

    // A deliberately cut recording: incomplete prefix on disk.
    const Workload w = workloads::build("torture:11");
    const auto full = w.freeze(50000);
    const auto cut = clampTrace(full, 64);
    std::string err;
    ASSERT_TRUE(writeTraceFile(*cut, tmp.path("cut.trace"), "generated",
                               &err)) << err;

    std::string canonical;
    ASSERT_TRUE(workloads::bindTraceFile(tmp.path("cut.trace"),
                                         &canonical, &err)) << err;
    const Workload bound = workloads::build(canonical);
    ASSERT_TRUE(bound.fileBacked);
    EXPECT_EQ(bound.freeze(64)->uops.size(), 64u);
    EXPECT_DEATH((void)bound.freeze(50000), "re-record");
}

// ------------------------- file: binding ---------------------------------

TEST(Workloads, FileBindingShadowsTheGenerator)
{
    TempDir tmp("bind");
    BoundTraceGuard guard;
    const std::string path = tmp.path("t7.trace");
    writeTortureTrace("torture:7", 50000, path);

    EXPECT_FALSE(workloads::build("torture:7").fileBacked);

    std::string canonical, err;
    ASSERT_TRUE(workloads::bindTraceFile(path, &canonical, &err)) << err;
    EXPECT_EQ(canonical, "torture:7");

    const Workload w = workloads::build("torture:7");
    EXPECT_TRUE(w.fileBacked);
    ASSERT_NE(w.frozen, nullptr);
    EXPECT_TRUE(w.frozen->mmapBacked);

    workloads::clearBoundTraces();
    EXPECT_FALSE(workloads::build("torture:7").fileBacked);
}

TEST(Workloads, BindReportsLoaderDiagnostics)
{
    TempDir tmp("binderr");
    std::string canonical, err;
    EXPECT_FALSE(workloads::bindTraceFile(tmp.path("absent.trace"),
                                          &canonical, &err));
    EXPECT_FALSE(err.empty());

    spit(tmp.path("junk.trace"), "this is not a trace file at all");
    EXPECT_FALSE(workloads::bindTraceFile(tmp.path("junk.trace"),
                                          &canonical, &err));
    EXPECT_FALSE(err.empty());
}

TEST(Sweep, FileBackedArtifactsAreByteIdentical)
{
    // The tentpole guarantee: the same 2x2 grid produces cmp-equal
    // JSON whether the workloads run from the generator registry or
    // from recorded eole-trace-v1 files.
    TempDir tmp("bytes");
    BoundTraceGuard guard;

    ExperimentPlan p = plans::get("smoke");
    p.workloads = {"torture:3", "torture:4"};
    p.warmup = 2000;
    p.measure = 20000;

    const std::string live = jsonArtifactString(runPlan(p));

    for (const char *wl : {"torture:3", "torture:4"}) {
        const std::string path =
            tmp.path(std::string(wl) + ".trace");
        writeTortureTrace(wl, 200000, path);
        std::string canonical, err;
        ASSERT_TRUE(workloads::bindTraceFile(path, &canonical, &err))
            << err;
        ASSERT_EQ(canonical, wl);
    }

    const std::string replayed = jsonArtifactString(runPlan(p));
    EXPECT_EQ(live, replayed);
}

// ------------------------- cache accounting ------------------------------

TEST(TraceCacheT, FileTracesAreBudgetExemptAndCountedSeparately)
{
    TempDir tmp("cache");
    BoundTraceGuard guard;
    const std::string path = tmp.path("t7.trace");
    writeTortureTrace("torture:7", 50000, path);
    std::string canonical, err;
    ASSERT_TRUE(workloads::bindTraceFile(path, &canonical, &err)) << err;

    // A zero-byte RAM budget blocks every generated recording but no
    // mmap-backed file (resident bytes ≈ 0 by construction).
    setenv("EOLE_TRACE_CACHE_MB", "0", 1);
    TraceCache cache;
    const Workload file_wl = workloads::build("torture:7");
    ASSERT_TRUE(file_wl.fileBacked);

    const auto t = cache.get(file_wl, 100);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->residentBytes(), 0u);
    EXPECT_EQ(cache.fileMissCount(), 1u);
    EXPECT_EQ(cache.fileHitCount(), 0u);

    (void)cache.get(file_wl, 100);
    EXPECT_EQ(cache.fileHitCount(), 1u);

    // Totals fold both populations; the generated-only counters stay
    // untouched by the file path.
    EXPECT_EQ(cache.hitCount(), 1u);
    EXPECT_EQ(cache.missCount(), 1u);

    const Workload gen_wl = workloads::build("164.gzip");
    EXPECT_EQ(cache.get(gen_wl, 100000), nullptr);  // over budget
    unsetenv("EOLE_TRACE_CACHE_MB");

    EXPECT_EQ(cache.evictCount(), 0u);
    cache.drop(file_wl.name);
    EXPECT_EQ(cache.evictCount(), 1u);
}

// ------------------------- corruption fuzzer -----------------------------

TEST(TraceFile, FuzzedFilesAreRejectedNotCrashed)
{
    TempDir tmp("fuzz");
    const std::string path = tmp.path("t7.trace");
    writeTortureTrace("torture:7", 50000, path);
    const std::string good = slurp(path);
    ASSERT_GT(good.size(),
              traceFileHeaderBytes + traceFileFooterBytes);

    const std::string mut = tmp.path("mut.trace");
    std::string err;
    std::uint64_t rng = 0x9e3779b97f4a7c15ULL;  // fixed seed
    const auto next = [&rng]() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };

    // Truncations: structural boundaries plus seeded random cuts.
    std::vector<std::size_t> cuts = {0, 1, 7, 8, 63,
                                     traceFileHeaderBytes - 1,
                                     traceFileHeaderBytes,
                                     good.size() - traceFileFooterBytes,
                                     good.size() - 1};
    for (int i = 0; i < 24; ++i)
        cuts.push_back(next() % good.size());
    for (const std::size_t cut : cuts) {
        spit(mut, good.substr(0, cut));
        err.clear();
        EXPECT_EQ(loadTraceFile(mut, &err), nullptr) << "cut=" << cut;
        EXPECT_FALSE(err.empty()) << "cut=" << cut;
    }

    // Bit flips anywhere in the file: every byte is covered by the
    // header checks or the checksum, so any flip must be rejected.
    for (int i = 0; i < 48; ++i) {
        std::string bad = good;
        const std::size_t at = next() % bad.size();
        bad[at] = static_cast<char>(bad[at] ^ (1u << (next() % 8)));
        spit(mut, bad);
        err.clear();
        EXPECT_EQ(loadTraceFile(mut, &err), nullptr) << "flip@" << at;
        EXPECT_FALSE(err.empty()) << "flip@" << at;
    }

    // Splice: header of one valid file, body of another — the count /
    // checksum cross-checks must catch the franken-file.
    const std::string other_path = tmp.path("t9.trace");
    writeTortureTrace("torture:9", 50000, other_path);
    const std::string other = slurp(other_path);
    spit(mut, good.substr(0, traceFileHeaderBytes)
              + other.substr(traceFileHeaderBytes));
    err.clear();
    EXPECT_EQ(loadTraceFile(mut, &err), nullptr);
    EXPECT_FALSE(err.empty());

    // A layout-hash mismatch must be rejected even when the checksum
    // is made internally consistent again.
    {
        std::string bad = good;
        bad[32] = static_cast<char>(bad[32] ^ 0x01);
        const std::string body =
            bad.substr(0, bad.size() - traceFileFooterBytes);
        const std::string sum = sha256Hex(body);
        bad.replace(bad.size() - 64, 64, sum);
        spit(mut, bad);
        err.clear();
        EXPECT_EQ(loadTraceFile(mut, &err), nullptr);
        EXPECT_NE(err.find("layout"), std::string::npos) << err;
    }

    // The original is still pristine (fuzzing wrote copies only).
    EXPECT_NE(loadTraceFile(path, &err), nullptr) << err;
}

// ------------------------- store objects ---------------------------------

TEST(TraceFile, StoreRoundTripsTraceObjects)
{
    TempDir tmp("store");
    const std::string path = tmp.path("t7.trace");
    writeTortureTrace("torture:7", 50000, path);
    const std::string bytes = slurp(path);

    StoreKey key;
    key.kind = "trace";
    key.workload = "torture:7";
    key.content = sha256Hex(bytes);

    // The content field participates in the address: different bytes,
    // different object.
    StoreKey other = key;
    other.content = sha256Hex(bytes + "x");
    EXPECT_NE(storeKeyHash(key), storeKeyHash(other));

    Store store(tmp.path("store"));
    store.put(key, bytes);
    std::string back;
    ASSERT_TRUE(store.get(storeKeyHash(key), &back));
    EXPECT_EQ(back, bytes);  // binary payloads survive exactly
}

// ------------------------- RV64I ingestion -------------------------------

namespace {

std::shared_ptr<const FrozenTrace>
ingest(const std::string &text, std::string *err)
{
    std::istringstream is(text);
    return ingestRv64Log(is, "rv64:test", err);
}

void
expectIngestError(const std::string &text, const std::string &needle)
{
    std::string err;
    EXPECT_EQ(ingest(text, &err), nullptr) << text;
    EXPECT_NE(err.find(needle), std::string::npos)
        << "\"" << err << "\" lacks \"" << needle << "\"";
}

} // namespace

TEST(Rv64Ingest, GoldenUopStream)
{
    // Seven committed RV64I instructions exercising the interesting
    // cracks: ALU immediate, LUI, a sign-extended halfword load
    // (3 µops), a store carrying the full register, and a call/return
    // pair whose link value lives in the synthetic µ-op PC space.
    const std::string log =
        "# golden ingestion input\n"
        "reg x5 7\n"
        "reg x11 0x100\n"
        "mem 0x100 0x0807060504030201\n"
        "1000 00328393\n"   // addi x7, x5, 3        -> 10
        "1004 123454b7\n"   // lui  x9, 0x12345
        "1008 00259503\n"   // lh   x10, 2(x11)      -> 0x0403
        "100c 00a5a423\n"   // sw   x10, 8(x11)
        "1010 008000ef\n"   // jal  x1, +8           (call 0x1018)
        "1018 00008067\n"   // jalr x0, 0(x1)        (ret -> 0x1014)
        "1014 40a38633\n";  // sub  x12, x7, x10     -> 10 - 0x403

    std::string err;
    const auto t = ingest(log, &err);
    ASSERT_NE(t, nullptr) << err;
    EXPECT_TRUE(t->complete);
    EXPECT_EQ(t->name, "rv64:test");
    EXPECT_EQ(t->initIntRegs[5], 7u);
    EXPECT_EQ(t->initIntRegs[11], 0x100u);
    EXPECT_EQ(t->initIntRegs[0], 0u);

    // Static µ-op indices follow sorted-pc order: 0x1000→0, 0x1004→1,
    // 0x1008→2..4 (lh cracks to 3), 0x100c→5, 0x1010→6, 0x1014→7,
    // 0x1018→8.
    const auto pc = [](std::uint32_t sidx) {
        return codeBase + sidx * uopBytes;
    };
    ASSERT_EQ(t->uops.size(), 9u);

    const TraceUop &addi = t->uops[0];
    EXPECT_EQ(addi.opc, Opcode::Addi);
    EXPECT_EQ(addi.pc, pc(0));
    EXPECT_EQ(addi.dst, 7);
    EXPECT_EQ(addi.src1, 5);
    EXPECT_EQ(addi.imm, 3);
    EXPECT_EQ(addi.srcVals[0], 7u);
    EXPECT_EQ(addi.result, 10u);
    EXPECT_EQ(addi.nextPc, pc(1));

    const TraceUop &lui = t->uops[1];
    EXPECT_EQ(lui.opc, Opcode::Movi);
    EXPECT_EQ(lui.result, 0x12345000u);
    EXPECT_EQ(lui.nextPc, pc(2));

    const TraceUop &ld = t->uops[2];
    EXPECT_EQ(ld.opc, Opcode::Ld);
    EXPECT_EQ(ld.dst, 10);
    EXPECT_EQ(ld.src1, 11);
    EXPECT_EQ(ld.imm, 2);
    EXPECT_EQ(ld.memSize, 2);
    EXPECT_EQ(ld.effAddr, 0x102u);
    EXPECT_EQ(ld.result, 0x0403u);  // zero-extended raw load
    const TraceUop &shl = t->uops[3];
    EXPECT_EQ(shl.opc, Opcode::Shli);
    EXPECT_EQ(shl.imm, 48);
    EXPECT_EQ(shl.result, 0x0403ULL << 48);
    const TraceUop &sar = t->uops[4];
    EXPECT_EQ(sar.opc, Opcode::Sari);
    EXPECT_EQ(sar.imm, 48);
    EXPECT_EQ(sar.result, 0x0403u);  // positive half: sext is identity

    const TraceUop &st = t->uops[5];
    EXPECT_EQ(st.opc, Opcode::St);
    EXPECT_EQ(st.src1, 11);
    EXPECT_EQ(st.src2, 10);
    EXPECT_EQ(st.imm, 8);
    EXPECT_EQ(st.memSize, 4);
    EXPECT_EQ(st.effAddr, 0x108u);
    EXPECT_EQ(st.result, 0x0403u);  // full register, commit-check form
    EXPECT_EQ(st.nextPc, pc(6));

    const TraceUop &call = t->uops[6];
    EXPECT_EQ(call.opc, Opcode::Call);
    EXPECT_EQ(call.pc, pc(6));
    EXPECT_EQ(call.dst, 1);
    EXPECT_TRUE(call.taken);
    EXPECT_EQ(call.result, pc(7));  // synthetic link: µ-op after me
    EXPECT_EQ(call.nextPc, pc(8));

    const TraceUop &ret = t->uops[7];
    EXPECT_EQ(ret.opc, Opcode::Ret);
    EXPECT_EQ(ret.pc, pc(8));
    EXPECT_EQ(ret.src1, 1);
    EXPECT_EQ(ret.srcVals[0], pc(7));
    EXPECT_TRUE(ret.taken);
    EXPECT_EQ(ret.nextPc, pc(7));

    const TraceUop &sub = t->uops[8];
    EXPECT_EQ(sub.opc, Opcode::Sub);
    EXPECT_EQ(sub.pc, pc(7));
    EXPECT_EQ(sub.dst, 12);
    EXPECT_EQ(sub.srcVals[0], 10u);
    EXPECT_EQ(sub.srcVals[1], 0x0403u);
    EXPECT_EQ(sub.result, static_cast<RegVal>(10 - 0x0403));
}

TEST(Rv64Ingest, GoldenStreamSurvivesAFileRoundTrip)
{
    TempDir tmp("ingestrt");
    const std::string log =
        "reg x5 7\n"
        "1000 00328393\n"   // addi x7, x5, 3
        "1004 407282b3\n";  // sub  x5, x5, x7
    std::string err;
    const auto t = ingest(log, &err);
    ASSERT_NE(t, nullptr) << err;
    ASSERT_TRUE(writeTraceFile(*t, tmp.path("g.trace"), "rv64i", &err))
        << err;
    const auto back = loadTraceFile(tmp.path("g.trace"), &err);
    ASSERT_NE(back, nullptr) << err;
    ASSERT_EQ(back->uops.size(), t->uops.size());
    for (std::size_t i = 0; i < t->uops.size(); ++i)
        expectSameUop(t->uops[i], back->uops[i], i);
}

TEST(Rv64Ingest, IngestedTracesRunThroughTheTimingModel)
{
    TempDir tmp("ingestrun");
    BoundTraceGuard guard;
    // A counted loop long enough to cover warmup + measurement (a
    // complete trace ends the run when it runs out; there is no wrap).
    std::string log = "reg x5 0\nreg x6 1200\n";
    for (int i = 0; i < 1200; ++i) {
        log += "1000 00128293\n";  // addi x5, x5, 1
        log += "1004 fe62cee3\n";  // blt  x5, x6, -4
    }
    log += "1008 00028513\n";      // addi x10, x5, 0
    std::string err;
    const auto t = ingest(log, &err);
    ASSERT_NE(t, nullptr) << err;
    ASSERT_TRUE(writeTraceFile(*t, tmp.path("loop.trace"), "rv64i",
                               &err)) << err;

    std::string canonical;
    ASSERT_TRUE(workloads::bindTraceFile(tmp.path("loop.trace"),
                                         &canonical, &err)) << err;
    EXPECT_EQ(canonical, "rv64:test");

    ExperimentPlan p = plans::get("smoke");
    p.configs.resize(1);
    p.workloads = {canonical};
    p.warmup = 200;
    p.measure = 2000;
    const PlanResult res = runPlan(p);
    ASSERT_EQ(res.cells.size(), 1u);
    EXPECT_GT(res.cells[0].ipc(), 0.0);
    EXPECT_GE(res.cells[0].stats.get("committed_uops"), 2000.0);
}

TEST(Rv64Ingest, RejectsWhatItCannotRepresent)
{
    // Compressed instructions.
    expectIngestError("1000 0001\n", "compressed");
    // System instructions.
    expectIngestError("1000 00000073\n", "line 1");
    // Unsigned division.
    expectIngestError("1000 0273d2b3\n", "line 1");  // divu x5,x7,x7
    // Signed division by zero diverges from RISC-V semantics.
    expectIngestError("1000 0273c2b3\n", "zero");    // div x5,x7,x7; x7=0
    // Control-flow divergence: fall-through must land on the next line.
    expectIngestError("1000 00128293\n"
                      "2000 00128293\n", "diverges");
    // Seeds after the first instruction.
    expectIngestError("1000 00128293\n"
                      "reg x5 1\n"
                      "1004 00128293\n", "seed");
    // Self-modifying code: one pc, two encodings.
    expectIngestError("1000 00128293\n"
                      "1004 00130313\n"
                      "1000 00128513\n", "encoding");
    // A nonzero x0 seed is meaningless.
    expectIngestError("reg x0 5\n1000 00128293\n", "x0");
}
