/**
 * @file
 * ExperimentPlan: a declarative (configuration x workload) sweep grid.
 *
 * A plan is pure data — configs, workload names, run lengths, a base
 * seed and the paper-style tables to print — expanded by the sweep
 * engine (sim/sweep.hh) into independent jobs. Every figure of the
 * paper is a named plan in sim/plans.hh; the per-figure bench binaries
 * and the `eole` CLI both drive plans through the same engine.
 *
 * Seeding discipline: each job's SimConfig::seed is derived
 * deterministically from (plan seed, config seed, config name,
 * workload name), so a cell's random streams (FPC transitions,
 * predictor tie-breaks) do not depend on job scheduling, worker count
 * or execution order — the foundation of the engine's
 * bit-identical-regardless-of-`--jobs` guarantee.
 */

#ifndef EOLE_SIM_PLAN_HH
#define EOLE_SIM_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace eole {

/** One paper-style table over the grid (see printPlanTables). */
struct TableSpec
{
    std::string title;
    std::string stat;            //!< StatRecord name, e.g. "ipc"
    std::vector<std::string> columns;  //!< config names, column order
    std::string normalizeTo;     //!< config dividing each row ("" = abs)
};

/** Declarative sweep grid. */
struct ExperimentPlan
{
    std::string name;
    std::string description;
    std::vector<SimConfig> configs;        //!< names must be unique
    std::vector<std::string> workloads;    //!< registry names
    std::uint64_t seed = 1;                //!< base for per-job seeds
    std::uint64_t warmup = 0;              //!< µ-ops; 0 = EOLE_WARMUP
    std::uint64_t measure = 0;             //!< µ-ops; 0 = EOLE_INSTS
    std::vector<TableSpec> tables;

    std::size_t gridSize() const { return configs.size() * workloads.size(); }
};

/**
 * Deterministic per-job seed: a function of the plan seed, the
 * config's own seed knob and the cell's (config, workload) identity
 * only — never of scheduling. Stable across platforms, thread counts
 * and job orderings. Folding in SimConfig::seed keeps configs that
 * differ only in their seed distinguishable (seed studies).
 */
std::uint64_t jobSeed(std::uint64_t plan_seed, std::uint64_t config_seed,
                      const std::string &config,
                      const std::string &workload);

/**
 * Upper bound on µ-ops fetched but not yet committed under any of the
 * plan's configurations (front-end pipe + rename buffer + ROB, plus
 * slack). Used to size frozen-trace recordings so a replay never runs
 * off the end of the prefix.
 */
std::uint64_t maxInflightUops(const ExperimentPlan &plan);

/** Does "config/workload" contain @p filter (empty matches all)? */
bool cellMatches(const std::string &filter, const std::string &config,
                 const std::string &workload);

} // namespace eole

#endif // EOLE_SIM_PLAN_HH
