#include "sim/telemetry.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <sstream>

#include "common/build_info.hh"
#include "common/logging.hh"
#include "sim/json.hh"

namespace eole {

namespace {

std::string
hostName()
{
    char buf[256] = {};
    if (gethostname(buf, sizeof(buf) - 1) != 0)
        return "unknown";
    return buf;
}

std::string
jstr(const std::string &s)
{
    std::ostringstream os;
    jsonWriteEscaped(os, s);
    return os.str();
}

std::string
jms(double ms)
{
    return csprintf("%.3f", ms);
}

} // namespace

TelemetrySink::TelemetrySink(const std::string &path)
    : os(path), start(std::chrono::steady_clock::now())
{
    fatal_if(!os, "cannot open telemetry file %s", path.c_str());
}

double
TelemetrySink::elapsedMs() const
{
    const auto d = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(d).count();
}

void
TelemetrySink::emit(const std::string &body)
{
    std::lock_guard<std::mutex> lock(mu);
    os << "{\"ev\":" << body << "}\n";
    os.flush();
}

void
TelemetrySink::runStart(const std::string &command, const std::string &plan,
                        std::uint64_t seed, std::uint64_t warmup,
                        std::uint64_t measure, const std::string &filter,
                        const std::string &sample, int jobs,
                        std::size_t cells, int shard_host, int shard_hosts)
{
    std::ostringstream b;
    b << "\"run_start\",\"t_ms\":" << jms(elapsedMs())
      << ",\"command\":" << jstr(command) << ",\"plan\":" << jstr(plan)
      << ",\"seed\":" << seed << ",\"warmup\":" << warmup
      << ",\"measure\":" << measure << ",\"filter\":" << jstr(filter)
      << ",\"sample\":" << jstr(sample) << ",\"jobs\":" << jobs
      << ",\"cells\":" << cells;
    if (shard_hosts > 0)
        b << ",\"shard_host\":" << shard_host
          << ",\"shard_hosts\":" << shard_hosts;
    b << ",\"host\":" << jstr(hostName())
      << ",\"build\":" << jstr(buildInfoString());
    emit(b.str());
}

void
TelemetrySink::cellQueued(const std::string &config,
                          const std::string &workload)
{
    std::ostringstream b;
    b << "\"cell_queued\",\"t_ms\":" << jms(elapsedMs())
      << ",\"config\":" << jstr(config)
      << ",\"workload\":" << jstr(workload);
    emit(b.str());
}

void
TelemetrySink::jobStart(const char *kind, const std::string &config,
                        const std::string &workload, int worker,
                        long interval)
{
    std::ostringstream b;
    b << "\"job_start\",\"t_ms\":" << jms(elapsedMs())
      << ",\"kind\":" << jstr(kind) << ",\"config\":" << jstr(config)
      << ",\"workload\":" << jstr(workload) << ",\"worker\":" << worker;
    if (interval >= 0)
        b << ",\"interval\":" << interval;
    emit(b.str());
}

void
TelemetrySink::jobFinish(const char *kind, const std::string &config,
                         const std::string &workload, int worker,
                         double wall_ms, bool ok, long interval)
{
    std::ostringstream b;
    b << "\"job_finish\",\"t_ms\":" << jms(elapsedMs())
      << ",\"kind\":" << jstr(kind) << ",\"config\":" << jstr(config)
      << ",\"workload\":" << jstr(workload) << ",\"worker\":" << worker
      << ",\"wall_ms\":" << jms(wall_ms)
      << ",\"ok\":" << (ok ? "true" : "false");
    if (interval >= 0)
        b << ",\"interval\":" << interval;
    emit(b.str());
}

void
TelemetrySink::storeCounts(std::size_t hits, std::size_t computed)
{
    std::ostringstream b;
    b << "\"store\",\"t_ms\":" << jms(elapsedMs()) << ",\"hits\":" << hits
      << ",\"computed\":" << computed;
    emit(b.str());
}

void
TelemetrySink::traceCacheCounts(std::uint64_t hits, std::uint64_t misses,
                                std::uint64_t file_hits,
                                std::uint64_t file_misses,
                                std::uint64_t evicts)
{
    std::ostringstream b;
    b << "\"trace_cache\",\"t_ms\":" << jms(elapsedMs())
      << ",\"hits\":" << hits << ",\"misses\":" << misses
      << ",\"file_hits\":" << file_hits
      << ",\"file_misses\":" << file_misses
      << ",\"evicts\":" << evicts;
    emit(b.str());
}

void
TelemetrySink::runFinish(std::size_t cells)
{
    std::ostringstream b;
    b << "\"run_finish\",\"t_ms\":" << jms(elapsedMs())
      << ",\"cells\":" << cells;
    emit(b.str());
}

void
TelemetrySink::runAborted(const std::string &reason)
{
    std::ostringstream b;
    b << "\"run_aborted\",\"t_ms\":" << jms(elapsedMs())
      << ",\"reason\":" << jstr(reason);
    emit(b.str());
}

// --- Reader ----------------------------------------------------------------

double
TelemetryEvent::num(const std::string &key, double fallback) const
{
    const auto it = nums.find(key);
    return it == nums.end() ? fallback : it->second;
}

std::string
TelemetryEvent::str(const std::string &key) const
{
    const auto it = strs.find(key);
    return it == strs.end() ? std::string() : it->second;
}

namespace {

/** One flat JSONL line: {"k":v,...} with string/number/bool values
 *  (bools land in nums as 0/1). The writer above only emits this
 *  shape; anything else is a malformed stream worth stopping on. */
TelemetryEvent
parseLine(const std::string &line, std::size_t lineno)
{
    TelemetryEvent ev;
    std::size_t pos = 0;
    const auto skipWs = [&] {
        while (pos < line.size()
               && std::isspace(static_cast<unsigned char>(line[pos])))
            ++pos;
    };
    const auto expect = [&](char c) {
        skipWs();
        fatal_if(pos >= line.size() || line[pos] != c,
                 "telemetry line %zu: expected '%c' at offset %zu", lineno,
                 c, pos);
        ++pos;
    };
    const auto parseStr = [&] {
        expect('"');
        std::string out;
        while (pos < line.size() && line[pos] != '"') {
            char c = line[pos++];
            if (c == '\\') {
                fatal_if(pos >= line.size(),
                         "telemetry line %zu: truncated escape", lineno);
                const char e = line[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  default:
                    fatal("telemetry line %zu: unsupported escape \\%c",
                          lineno, e);
                }
            } else {
                out += c;
            }
        }
        expect('"');
        return out;
    };

    expect('{');
    while (true) {
        const std::string key = parseStr();
        expect(':');
        skipWs();
        fatal_if(pos >= line.size(), "telemetry line %zu: truncated",
                 lineno);
        const char c = line[pos];
        if (c == '"') {
            const std::string v = parseStr();
            if (key == "ev")
                ev.ev = v;
            else
                ev.strs[key] = v;
        } else if (c == 't' || c == 'f') {
            const bool v = c == 't';
            while (pos < line.size()
                   && std::isalpha(static_cast<unsigned char>(line[pos])))
                ++pos;
            ev.nums[key] = v ? 1 : 0;
        } else {
            char *end = nullptr;
            const double v = std::strtod(line.c_str() + pos, &end);
            fatal_if(end == line.c_str() + pos,
                     "telemetry line %zu: expected value for \"%s\"",
                     lineno, key.c_str());
            pos = static_cast<std::size_t>(end - line.c_str());
            ev.nums[key] = v;
        }
        skipWs();
        if (pos < line.size() && line[pos] == ',') {
            ++pos;
            continue;
        }
        break;
    }
    expect('}');
    fatal_if(ev.ev.empty(), "telemetry line %zu: missing \"ev\" tag",
             lineno);
    return ev;
}

} // namespace

std::vector<TelemetryEvent>
readTelemetry(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open telemetry file %s", path.c_str());
    std::vector<TelemetryEvent> out;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        out.push_back(parseLine(line, lineno));
    }
    return out;
}

void
summarizeTelemetry(const std::vector<std::string> &paths, std::ostream &out)
{
    struct WorkerAgg { std::size_t jobs = 0; double busyMs = 0; };
    // Workers are per-stream (shards on different hosts both have a
    // worker 0), so key them by (file, worker).
    std::map<std::pair<std::size_t, int>, WorkerAgg> workers;
    std::set<std::string> cells;
    std::size_t jobsTotal = 0, jobsOk = 0;
    std::uint64_t storeHits = 0, storeComputed = 0;
    std::uint64_t cacheHits = 0, cacheMisses = 0;
    bool sawStore = false, sawCache = false;
    std::size_t aborted = 0, finished = 0;
    double spanMs = 0;
    std::string slowestCell, slowestKind;
    double slowestMs = -1;

    for (std::size_t f = 0; f < paths.size(); ++f) {
        double first = -1, last = 0;
        for (const TelemetryEvent &ev : readTelemetry(paths[f])) {
            const double t = ev.num("t_ms");
            if (first < 0)
                first = t;
            last = std::max(last, t);
            if (ev.ev == "cell_queued") {
                cells.insert(ev.str("config") + "/" + ev.str("workload"));
            } else if (ev.ev == "job_finish") {
                ++jobsTotal;
                if (ev.num("ok") != 0)
                    ++jobsOk;
                auto &w = workers[{f, static_cast<int>(ev.num("worker"))}];
                ++w.jobs;
                w.busyMs += ev.num("wall_ms");
                if (ev.num("wall_ms") > slowestMs) {
                    slowestMs = ev.num("wall_ms");
                    slowestCell =
                        ev.str("config") + "/" + ev.str("workload");
                    slowestKind = ev.str("kind");
                }
            } else if (ev.ev == "store") {
                sawStore = true;
                storeHits += static_cast<std::uint64_t>(ev.num("hits"));
                storeComputed +=
                    static_cast<std::uint64_t>(ev.num("computed"));
            } else if (ev.ev == "trace_cache") {
                sawCache = true;
                cacheHits += static_cast<std::uint64_t>(ev.num("hits"));
                cacheMisses +=
                    static_cast<std::uint64_t>(ev.num("misses"));
            } else if (ev.ev == "run_aborted") {
                ++aborted;
            } else if (ev.ev == "run_finish") {
                ++finished;
            }
        }
        if (first >= 0)
            spanMs += last - first;
    }

    out << "telemetry summary: " << paths.size() << " stream"
        << (paths.size() == 1 ? "" : "s") << ", span " << csprintf("%.1f",
        spanMs) << " ms, " << finished << " finished, " << aborted
        << " aborted\n";
    out << "  jobs: " << jobsTotal << " (" << jobsOk << " ok)\n";
    for (const auto &[key, w] : workers) {
        const double util = spanMs > 0 ? 100.0 * w.busyMs / spanMs : 0;
        out << csprintf("  worker %zu.%d: %zu jobs, busy %.1f ms (%.1f%%)",
                        key.first, key.second, w.jobs, w.busyMs, util)
            << "\n";
    }
    if (slowestMs >= 0) {
        out << csprintf("  critical path: %s (%s, %.1f ms)",
                        slowestCell.c_str(), slowestKind.c_str(), slowestMs)
            << "\n";
    }
    if (sawStore)
        out << "  store: " << storeHits << " cached, " << storeComputed
            << " computed\n";
    if (sawCache)
        out << "  trace cache: " << cacheHits << " hits, " << cacheMisses
            << " misses\n";
    out << "  cells (" << cells.size() << "):\n";
    for (const std::string &cell : cells)
        out << "    " << cell << "\n";
}

} // namespace eole
