/**
 * @file
 * Reflective parameter registry: every field of SimConfig — including
 * the nested BpConfig, VpConfig and MemConfig sub-structs — bound to a
 * canonical dotted string key ("issueWidth", "vp.vtage.tagBits",
 * "mem.l1d.sizeBytes", ...) with type, default, range/enum validation
 * and a doc string.
 *
 * One declaration site (the ParamRegistry constructor in params.cc)
 * drives everything that addresses configuration as data:
 *  - get/set-by-key with validation (`eole run --set key=value`),
 *  - canonical key=value serialization (configText / configKeyValues),
 *    which is byte-stable: serialize -> parse -> serialize is the
 *    identity (pinned in tests/test_params.cc),
 *  - plan files (sim/planfile.hh): grids as a base config plus axes of
 *    key = v1, v2, v3 — new sweeps without recompiling,
 *  - artifacts (sim/artifact.hh): every cell embeds its complete
 *    canonical config map, and `eole diff` reports config drift,
 *  - `eole describe`: dump any named config against the defaults.
 *
 * Adding a field to SimConfig (or a nested config struct) without
 * registering it here is a bug: tests/test_params.cc pins the golden
 * default key=value map, so the reviewer sees the omission.
 */

#ifndef EOLE_SIM_PARAMS_HH
#define EOLE_SIM_PARAMS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.hh"

namespace eole {

/** One registered parameter: key, metadata and typed accessors. */
struct ParamInfo
{
    std::string key;      //!< canonical dotted key, e.g. "vp.vtage.tagBits"
    std::string type;     //!< "int", "u64", "bool", "string", "enum",
                          //!< "double-list"
    std::string doc;      //!< one-line description
    std::string defaultValue;  //!< canonical text in a default SimConfig

    /** Inclusive numeric range ("int"/"u64"); unused otherwise. */
    std::uint64_t minValue = 0;
    std::uint64_t maxValue = 0;

    /** Accepted spellings for "enum" parameters. */
    std::vector<std::string> enumValues;

    /** Canonical text of the parameter's current value in @p c. */
    std::function<std::string(const SimConfig &c)> get;

    /** Parse, validate and assign; returns "" on success, else a
     *  diagnostic. On error the config is left untouched. */
    std::function<std::string(SimConfig &c, const std::string &value)> set;
};

/**
 * The registry: a singleton table of ParamInfo in canonical order
 * (SimConfig declaration order, nested structs under their prefix).
 * Canonical order is the serialization order, so it is part of the
 * byte-stability contract.
 */
class ParamRegistry
{
  public:
    static const ParamRegistry &instance();

    const std::vector<ParamInfo> &params() const { return table; }

    /** Look up a key; nullptr when unknown (callers own the loud-exit
     *  formatting — see suggest()). */
    const ParamInfo *find(const std::string &key) const;

    /** All registered keys, canonical order. */
    std::vector<std::string> keys() const;

    /** Nearest registered keys to a misspelled @p key (for exit-2
     *  diagnostics). */
    std::vector<std::string> suggest(const std::string &key,
                                     std::size_t n = 3) const;

    /** Current canonical text of @p key in @p c (fatal on unknown). */
    std::string get(const SimConfig &c, const std::string &key) const;

    /** Validated set-by-key (fatal on unknown key or invalid value —
     *  the API form for compiled-in configs; CLI paths wanting exit 2
     *  use trySet). */
    void set(SimConfig &c, const std::string &key,
             const std::string &value) const;

    /** As set(), but returns "" on success or a diagnostic (including
     *  nearest-key suggestions for unknown keys) instead of dying. */
    std::string trySet(SimConfig &c, const std::string &key,
                       const std::string &value) const;

  private:
    ParamRegistry();

    std::vector<ParamInfo> table;
    std::map<std::string, std::size_t> index;
};

/** Complete (key, canonical value) map of @p c, canonical order. */
std::vector<std::pair<std::string, std::string>>
configKeyValues(const SimConfig &c);

/** Only the entries of configKeyValues that differ from a
 *  default-constructed SimConfig (the base+override view). */
std::vector<std::pair<std::string, std::string>>
configOverrides(const SimConfig &c);

/** Canonical text form: one "key = value" line per parameter, in
 *  canonical order. The inverse of parseConfigText; serialize -> parse
 *  -> serialize is byte-stable. */
std::string configText(const SimConfig &c);

/** Apply a configText document (or any subset of "key = value" lines;
 *  '#' comments and blank lines ignored) onto a default SimConfig.
 *  Returns "" and fills @p out on success, else a diagnostic naming
 *  the offending line. */
std::string parseConfigText(const std::string &text, SimConfig *out);

/**
 * Base+override construction: copy @p base, rename it to @p name and
 * apply the (key, value) overrides through the registry (fatal on an
 * unknown key or invalid value — overrides here are compiled in, so a
 * failure is a programming error). This is how sim/configs.cc and
 * sim/plans.cc derive every hand-rolled variant, proving the string
 * API carries the paper's full figure set.
 */
SimConfig deriveConfig(
    const SimConfig &base, const std::string &name,
    const std::vector<std::pair<std::string, std::string>> &overrides);

} // namespace eole

#endif // EOLE_SIM_PARAMS_HH
