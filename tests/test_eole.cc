/**
 * @file
 * Tests for the EOLE mechanisms themselves: Early-Execution
 * eligibility rules (§3.2), Late-Execution routing (§3.3), the
 * EE block availability tracking, PRF port/bank accounting (§6.3),
 * and end-to-end properties of the EOLE/OLE/EOE configurations.
 */

#include <gtest/gtest.h>

#include "pipeline/stages/early_exec.hh"
#include "pipeline/port_model.hh"
#include "isa/assembler.hh"
#include "pipeline/core.hh"
#include "sim/configs.hh"
#include "workloads/workload.hh"

using namespace eole;

// --------------------------- EarlyExecBlock ------------------------------

TEST(EarlyExecBlock, PublishVisibleInSameAndNextGroupOnly)
{
    EarlyExecBlock ee(1);
    RegVal v = 0;
    ee.beginGroup();
    ee.publish(RegClass::Int, 40, 7);
    EXPECT_TRUE(ee.available(RegClass::Int, 40, v));  // same group
    EXPECT_EQ(v, 7u);
    ee.beginGroup();
    EXPECT_TRUE(ee.available(RegClass::Int, 40, v));  // previous group
    ee.beginGroup();
    EXPECT_FALSE(ee.available(RegClass::Int, 40, v)); // two groups: gone
}

TEST(EarlyExecBlock, ClassesAreDistinct)
{
    EarlyExecBlock ee(1);
    RegVal v = 0;
    ee.beginGroup();
    ee.publish(RegClass::Int, 5, 123);
    EXPECT_FALSE(ee.available(RegClass::Fp, 5, v));
    EXPECT_TRUE(ee.available(RegClass::Int, 5, v));
}

TEST(EarlyExecBlock, ResetDropsEverything)
{
    EarlyExecBlock ee(1);
    RegVal v = 0;
    ee.beginGroup();
    ee.publish(RegClass::Int, 9, 1);
    ee.beginGroup();
    ee.publish(RegClass::Int, 10, 2);
    ee.reset();
    EXPECT_FALSE(ee.available(RegClass::Int, 9, v));
    EXPECT_FALSE(ee.available(RegClass::Int, 10, v));
}

// ---------------------------- PrfPortModel -------------------------------

TEST(PrfPortModel, EeWriteLimitPerBank)
{
    PrfPortModel p(4, 2, 0);
    EXPECT_TRUE(p.tryEeWrite(1));
    EXPECT_TRUE(p.tryEeWrite(1));
    EXPECT_FALSE(p.tryEeWrite(1));   // bank 1 exhausted
    EXPECT_TRUE(p.tryEeWrite(2));    // other banks unaffected
    p.newCycle();
    EXPECT_TRUE(p.tryEeWrite(1));    // budget refreshed
}

TEST(PrfPortModel, LevtReadsAreAtomic)
{
    PrfPortModel p(2, 0, 2);
    const int both_bank0[2] = {0, 0};
    EXPECT_TRUE(p.tryLevtReads(both_bank0, 2));
    // Bank 0 is now full; a request touching it must fail as a whole
    // and must not consume the other bank's budget.
    const int mixed[2] = {0, 1};
    EXPECT_FALSE(p.tryLevtReads(mixed, 2));
    const int bank1[2] = {1, 1};
    EXPECT_TRUE(p.tryLevtReads(bank1, 2));
}

TEST(PrfPortModel, UnlimitedWhenZero)
{
    PrfPortModel p(1, 0, 0);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(p.tryEeWrite(0));
    int banks[4] = {0, 0, 0, 0};
    EXPECT_TRUE(p.tryLevtReads(banks, 4));
}

// ----------------------- EE eligibility end-to-end -----------------------

namespace {

CoreStats
runWorkload(const SimConfig &cfg, const Workload &w, std::uint64_t uops)
{
    Core core(cfg, w);
    core.run(uops, uops * 200 + 100000);
    return core.stats();
}

Workload
wrapProgram(const char *name, Program p,
            std::function<void(KernelVM &)> init = nullptr)
{
    Workload w;
    w.name = name;
    w.memBytes = 0x1000;
    w.program = std::move(p);
    w.init = std::move(init);
    return w;
}

} // namespace

TEST(EarlyExecution, ImmediateChainsAreCaptured)
{
    // movi + dependent immediate-ALU cascade inside one fetch group:
    // everything is EE-eligible (operands: immediate or same-group EE).
    Assembler a;
    const IntReg x = 1, y = 2, z = 3;
    Label top = a.newLabel();
    a.bind(top);
    a.movi(x, 10);
    a.addi(y, x, 1);
    a.shli(z, y, 2);
    a.xori(z, z, 5);
    a.jmp(top);
    const CoreStats s = runWorkload(configs::eole(6, 64),
                                    wrapProgram("micro.immchain",
                                                a.finish()),
                                    40000);
    EXPECT_GT(double(s.earlyExecuted) / s.committedUops, 0.75);
}

TEST(EarlyExecution, OperandsNeverComeFromThePrf)
{
    // y's producer (x) is renamed long before: x is loop-invariant
    // after iteration 1 and lives in the PRF. Per §3.2 the EE block
    // cannot read the PRF, and x is not predictable in the front-end
    // window (mov has no immediate), so `add y, x, x` never EEs...
    // except via value prediction of x's producer. Disable VP to
    // isolate the rule.
    Assembler a;
    const IntReg x = 1, y = 2, acc = 3;
    Label top = a.newLabel();
    a.movi(x, 42);         // executed once, far from the loop body
    a.bind(top);
    a.add(y, x, x);        // operand only available from the PRF
    a.add(acc, acc, y);
    a.jmp(top);
    SimConfig cfg = configs::eole(6, 64);
    cfg.vp.kind = VpKind::None;  // EE without VP: bypass/immediates only
    const CoreStats s = runWorkload(
        cfg, wrapProgram("micro.prfoperand", a.finish()), 30000);
    // Only the very first iteration (where the movi is still on the
    // local bypass) may early-execute; the steady state cannot.
    EXPECT_LE(s.earlyExecuted, 5u);
}

TEST(EarlyExecution, PredictedProducersEnableEE)
{
    // Same shape, but the producer is a stride-predictable addi whose
    // prediction travels with the group: the dependent ALU µ-op can
    // early-execute using the predicted operand (§3.2).
    Assembler a;
    const IntReg x = 1, y = 2, acc = 3;
    Label top = a.newLabel();
    a.bind(top);
    a.addi(x, x, 3);       // stride-predictable producer
    a.add(y, x, x);        // same-group consumer of the prediction
    a.add(acc, acc, y);
    a.jmp(top);
    const CoreStats s = runWorkload(
        configs::eole(6, 64), wrapProgram("micro.predop", a.finish()),
        60000);
    EXPECT_GT(double(s.earlyExecuted) / s.committedUops, 0.2);
}

TEST(EarlyExecution, TwoStagesCaptureMoreThanOne)
{
    SimConfig one = configs::eole(6, 64);
    SimConfig two = configs::eole(6, 64);
    two.eeStages = 2;
    const Workload w = workloads::build("186.crafty");
    const CoreStats s1 = runWorkload(one, w, 80000);
    const CoreStats s2 = runWorkload(two, w, 80000);
    const double f1 = double(s1.earlyExecuted) / s1.committedUops;
    const double f2 = double(s2.earlyExecuted) / s2.committedUops;
    EXPECT_GE(f2, f1);  // Fig 2 property
}

TEST(EarlyExecution, MultiCycleOpsAreNeverEe)
{
    // Mul/div/FP are excluded from EE by construction (§3.2); a kernel
    // of muls over immediates must show zero EE among the muls. The
    // movi feeding them still EEs, so check the fraction is bounded by
    // the movi share.
    Assembler a;
    const IntReg x = 1, y = 2;
    Label top = a.newLabel();
    a.bind(top);
    a.movi(x, 7);
    a.mul(y, x, x);
    a.mul(y, y, x);
    a.jmp(top);
    const CoreStats s = runWorkload(configs::eole(6, 64),
                                    wrapProgram("micro.mulonly",
                                                a.finish()),
                                    20000);
    EXPECT_LE(double(s.earlyExecuted) / s.committedUops, 0.26);
}

// ----------------------- LE routing end-to-end ---------------------------

TEST(LateExecution, PredictedAluBypassesTheIq)
{
    // Independent stride-predictable chains: predicted single-cycle
    // ALU µ-ops are late-executed, not dispatched to the IQ.
    const CoreStats s = runWorkload(configs::ole(6, 64, 1, 0),
                                    workloads::micro::independent(),
                                    60000);
    EXPECT_GT(double(s.lateExecutedAlu) / s.committedUops, 0.7);
    // The IQ now only sees the jmp: dispatched-to-IQ is tiny.
    EXPECT_LT(double(s.dispatchedToIQ) / s.committedUops, 0.25);
}

TEST(LateExecution, HighConfidenceBranchesResolveLate)
{
    const CoreStats s = runWorkload(configs::ole(6, 64, 1, 0),
                                    workloads::micro::loopTaken(), 60000);
    EXPECT_GT(s.lateExecutedBranches, 0u);
    // Essentially no extra mispredictions from late resolution.
    EXPECT_LT(double(s.branchMispredicts) / s.committedUops, 0.002);
}

TEST(LateExecution, HostileBranchesStayInTheOoOEngine)
{
    const CoreStats s = runWorkload(configs::ole(6, 64, 1, 0),
                                    workloads::micro::randomBranch(),
                                    60000);
    // The 50/50 branch must not be late-executed (confidence filter).
    EXPECT_LT(double(s.lateExecutedBranches)
                  / std::max<std::uint64_t>(1, s.condBranches),
              0.02);
}

TEST(LateExecution, DisjointFromEarlyExecution)
{
    // Fig 4's accounting: a µ-op is counted EE or LE, never both.
    const CoreStats s = runWorkload(configs::eole(6, 64),
                                    workloads::build("444.namd"), 120000);
    EXPECT_LE(s.earlyExecuted + s.lateExecutedAlu + s.lateExecutedBranches,
              s.committedUops);
    EXPECT_GT(s.earlyExecuted, 0u);
    EXPECT_GT(s.lateExecutedAlu, 0u);
}

// ----------------------- Banking & ports end-to-end ----------------------

TEST(Banking, RenameStallsOnlyWithBanks)
{
    // A loop with exactly 8 destinations per iteration keeps the
    // rotating bank cursor phase-locked: the two FP destinations
    // always land in the same two banks. With a small FP file and a
    // window-filling divide, those two banks run dry while the flat
    // (single-bank) file still has registers -- the Fig 10 imbalance.
    Assembler a;
    const IntReg d = 1, one = 20;
    Label top = a.newLabel();
    a.bind(top);
    a.div(d, d, one);                      // serializer: fills the ROB
    for (int k = 0; k < 5; ++k)
        a.addi(IntReg(2 + k), IntReg(2 + k), 1);
    a.fadd(FpReg(1), FpReg(1), FpReg(10));
    a.fadd(FpReg(2), FpReg(2), FpReg(10));
    a.jmp(top);
    Workload w = wrapProgram("micro.classmix", a.finish(),
                             [](KernelVM &vm) {
                                 vm.setIntReg(1, 1 << 30);
                                 vm.setIntReg(20, 1);
                             });

    SimConfig flat_cfg = configs::eole(4, 64);
    flat_cfg.physFpRegs = 128;
    SimConfig banked_cfg = configs::eoleBanked(4, 64, 8);
    banked_cfg.physFpRegs = 128;
    const CoreStats flat = runWorkload(flat_cfg, w, 60000);
    const CoreStats banked = runWorkload(banked_cfg, w, 60000);
    EXPECT_EQ(flat.renameBankStalls, 0u);
    EXPECT_GT(banked.renameBankStalls, 0u);
    // Fig 10: the imbalance cost is small.
    EXPECT_GT(banked.ipc() / flat.ipc(), 0.85);
}

TEST(Banking, FourBanksCostLittle)
{
    const Workload w = workloads::micro::independent();
    const CoreStats flat = runWorkload(configs::eole(4, 64), w, 80000);
    const CoreStats b4 = runWorkload(configs::eoleBanked(4, 64, 4), w,
                                     80000);
    EXPECT_GT(b4.ipc() / flat.ipc(), 0.95);
}

TEST(Ports, LevtReadLimitCreatesCommitStallsNotDeadlock)
{
    // Two-source predictable adds: each late-executed µ-op needs two
    // LE/VT operand reads, so an 8-wide commit group wants 16 reads --
    // double what 4 banks x 2 ports provide.
    Assembler a;
    Label top = a.newLabel();
    a.bind(top);
    for (int k = 0; k < 10; ++k)
        a.add(IntReg(1 + k), IntReg(1 + k), IntReg(15));
    a.jmp(top);
    Workload w = wrapProgram("micro.twosrc", a.finish(),
                             [](KernelVM &vm) { vm.setIntReg(15, 3); });

    const CoreStats free_ports =
        runWorkload(configs::eole(6, 64), w, 80000);
    const CoreStats p2 =
        runWorkload(configs::eoleConstrained(6, 64, 4, 2), w, 80000);
    EXPECT_GT(p2.commitPortStalls, 0u);
    EXPECT_GT(p2.ipc(), 0.0);
    // Fig 11: 2 ports/bank is noticeably slower, but functional.
    EXPECT_LT(p2.ipc(), free_ports.ipc());
}

TEST(Ports, FourPortsPerBankNearlyFree)
{
    const Workload w = workloads::build("456.hmmer");
    const CoreStats free_ports =
        runWorkload(configs::eole(4, 64), w, 80000);
    const CoreStats p4 =
        runWorkload(configs::eoleConstrained(4, 64, 4, 4), w, 80000);
    EXPECT_GT(p4.ipc() / free_ports.ipc(), 0.93);  // Fig 11 property
}

TEST(Ports, SingleLevtPortIsRejected)
{
    EXPECT_DEATH(
        {
            SimConfig cfg = configs::eoleConstrained(4, 64, 4, 1);
            Workload w = workloads::micro::depChain();
            Core core(cfg, w);
        },
        "read ports");
}

// ----------------------------- Modularity --------------------------------

TEST(Modularity, OleDisablesEeAndEoeDisablesLe)
{
    const Workload w = workloads::build("444.namd");
    const CoreStats ole_s = runWorkload(configs::ole(4, 64, 4, 4), w,
                                        80000);
    const CoreStats eoe_s = runWorkload(configs::eoe(4, 64, 4, 4), w,
                                        80000);
    EXPECT_EQ(ole_s.earlyExecuted, 0u);
    EXPECT_GT(ole_s.lateExecutedAlu, 0u);
    EXPECT_EQ(eoe_s.lateExecutedAlu, 0u);
    EXPECT_EQ(eoe_s.lateExecutedBranches, 0u);
    EXPECT_GT(eoe_s.earlyExecuted, 0u);
}

TEST(Modularity, EoleUpperBoundsItsParts)
{
    // Offload of full EOLE >= offload of either OLE or EOE alone.
    const Workload w = workloads::build("179.art");
    const auto full = runWorkload(configs::eole(4, 64), w, 80000);
    const auto le_only = runWorkload(configs::ole(4, 64, 1, 0), w, 80000);
    const auto ee_only = runWorkload(configs::eoe(4, 64, 1, 0), w, 80000);
    const auto offload = [](const CoreStats &s) {
        return double(s.earlyExecuted + s.lateExecutedAlu
                      + s.lateExecutedBranches)
            / s.committedUops;
    };
    EXPECT_GE(offload(full) + 0.02, offload(le_only));
    EXPECT_GE(offload(full) + 0.02, offload(ee_only));
}

// -------------------------- Headline property ----------------------------

TEST(Headline, EoleRecoversNarrowIssueLoss)
{
    // The paper's core claim (Fig 7/12) on an EE/LE-friendly workload:
    // EOLE_4 recovers (most of) the loss Baseline_VP_4 suffers vs
    // Baseline_VP_6.
    const Workload w = workloads::build("444.namd");
    const auto vp6 = runWorkload(configs::baselineVp(6, 64), w, 120000);
    const auto vp4 = runWorkload(configs::baselineVp(4, 64), w, 120000);
    const auto eole4 = runWorkload(configs::eole(4, 64), w, 120000);
    EXPECT_LE(vp4.ipc(), vp6.ipc() + 0.01);
    EXPECT_GT(eole4.ipc(), vp4.ipc() * 0.999);
    EXPECT_GT(eole4.ipc() / vp6.ipc(), 0.95);
}
