/**
 * @file
 * VTAGE context-based value predictor (Perais & Seznec, HPCA 2014).
 *
 * Like the ITTAGE indirect-branch predictor, VTAGE selects a predicted
 * *value* using the program counter hashed with geometrically
 * increasing lengths of global branch history. Its key property (§2 of
 * the EOLE paper) is that it does not need the previous value of the
 * instruction to predict the current one, so it needs no in-flight
 * value tracking and tolerates deep pipelines naturally.
 *
 * Structure (Table 2): 8192-entry tagless last-value base + 6 tagged
 * components of 1024 entries, tags of 12+rank bits, 3-bit FPC
 * confidence, 1-bit usefulness, history lengths {2,4,8,16,32,64}.
 */

#ifndef EOLE_VPRED_VTAGE_HH
#define EOLE_VPRED_VTAGE_HH

#include <vector>

#include "common/random.hh"
#include "isa/snapshot.hh"
#include "vpred/fpc.hh"
#include "vpred/value_predictor.hh"

namespace eole {

class Vtage : public ValuePredictor
{
  public:
    Vtage(const VpConfig &config, std::uint64_t seed);

    std::vector<std::pair<int, int>> foldSpecs() const override;
    void bindHistory(const GlobalHistory &hist,
                     std::size_t fold_base) override;

    VpLookup predict(Addr pc) override;
    void commit(Addr pc, RegVal actual, const VpLookup &lookup) override;
    const char *name() const override { return "VTAGE"; }

    void snapshotState(std::ostream &os) const override;
    void restoreState(std::istream &is) override;
    /** Hybrid embedding: restore from an already-open reader. */
    void restoreStateBody(SnapshotReader &r);

    int histLength(int comp) const { return histLens[comp]; }

  private:
    struct BaseEntry
    {
        RegVal value = 0;
        std::uint8_t conf = 0;
    };

    // Widest member first so the entry packs into 16 bytes instead of
    // 24 — the tagged components are the predictor's cache footprint.
    struct TaggedEntry
    {
        RegVal value = 0;
        std::uint16_t tag = 0;
        std::uint8_t conf = 0;
        std::uint8_t u = 0;
        bool valid = false;
    };

    std::uint32_t baseIndex(Addr pc) const;
    std::uint32_t taggedIndex(Addr pc, int comp) const;
    std::uint16_t taggedTag(Addr pc, int comp) const;
    int tagBitsOf(int comp) const;

    VpConfig cfg;
    std::vector<int> histLens;
    std::vector<BaseEntry> base;
    std::vector<std::vector<TaggedEntry>> tagged;
    const GlobalHistory *hist = nullptr;
    std::size_t foldBase = 0;
    Fpc fpc;
    Rng rng;
};

} // namespace eole

#endif // EOLE_VPRED_VTAGE_HH
